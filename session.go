package focus

import (
	"fmt"

	"focus/internal/cluster"
	"focus/internal/index"
	"focus/internal/ingest"
	"focus/internal/parallel"
	"focus/internal/query"
	"focus/internal/tune"
	"focus/internal/video"
	"focus/internal/vision"
)

// Session is one stream's lifecycle: tune → ingest → query.
type Session struct {
	sys    *System
	stream *video.Stream

	sweep     *tune.SweepResult
	selection *tune.Selection
	ix        *index.Index
	engine    *query.Engine
	stats     ingest.Stats
	genOpts   GenOptions
}

// Stream exposes the underlying synthetic stream.
func (sess *Session) Stream() *video.Stream { return sess.stream }

// Name returns the stream name.
func (sess *Session) Name() string { return sess.stream.Spec.Name }

// Selection returns the tuner's outcome (nil before Tune/Ingest).
func (sess *Session) Selection() *tune.Selection { return sess.selection }

// Sweep returns the tuner's full sweep (nil before Tune/Ingest).
func (sess *Session) Sweep() *tune.SweepResult { return sess.sweep }

// Index returns the stream's top-K index (nil before Ingest).
func (sess *Session) Index() *index.Index { return sess.ix }

// IngestStats returns the last ingestion's counters.
func (sess *Session) IngestStats() ingest.Stats { return sess.stats }

// freshStream rebuilds the deterministic stream so each pass (tuning,
// ingestion, evaluation) replays identical video from the start, the way a
// recorded stream can be re-read from storage.
func (sess *Session) freshStream() (*video.Stream, error) {
	return video.NewStream(sess.stream.Spec, sess.sys.space, sess.sys.cfg.Seed)
}

// Tune runs the parameter sweep (§4.4) over the given window and selects a
// configuration per the system's policy and targets.
func (sess *Session) Tune(opts GenOptions) error {
	tuneOpts := tune.DefaultOptions()
	if sess.sys.cfg.TuneOptions != nil {
		tuneOpts = *sess.sys.cfg.TuneOptions
	}
	st, err := sess.freshStream()
	if err != nil {
		return err
	}
	sweep, err := tune.Sweep(st, sess.sys.space, sess.sys.zoo, tuneOpts, opts)
	if err != nil {
		return err
	}
	sel, err := sweep.Select(sess.sys.cfg.Targets, sess.sys.cfg.Policy)
	if err != nil {
		return err
	}
	sess.sweep = sweep
	sess.selection = sel
	sess.sys.meter.AddTraining(sweep.EstimationGPUMS)
	return nil
}

// UseSelection installs a previously computed tuner outcome so Ingest can
// proceed without re-running the sweep — restoring a stored tuning, or
// sharing one sweep across replayed systems (the scaling benchmarks do
// this to keep tuning out of their timed regions).
func (sess *Session) UseSelection(sel *tune.Selection) { sess.selection = sel }

// Ingest indexes the stream window with the tuned configuration, running
// the tuner first if it has not run yet. It replaces any previous index.
func (sess *Session) Ingest(opts GenOptions) error {
	if sess.selection == nil {
		if err := sess.Tune(opts); err != nil {
			return err
		}
	}
	chosen := sess.selection.Chosen
	tuneOpts := tune.DefaultOptions()
	if sess.sys.cfg.TuneOptions != nil {
		tuneOpts = *sess.sys.cfg.TuneOptions
	}
	cfg := ingest.Config{
		Model:              chosen.Model,
		K:                  chosen.K,
		ClusterThreshold:   chosen.T,
		PixelDiffThreshold: tuneOpts.PixelDiffThreshold,
	}
	st, err := sess.freshStream()
	if err != nil {
		return err
	}
	worker, err := ingest.NewWorker(st, sess.sys.space, cfg, &sess.sys.meter)
	if err != nil {
		return err
	}
	ix, err := worker.Run(opts)
	if err != nil {
		return err
	}
	sess.ix = ix
	sess.stats = worker.Stats()
	sess.genOpts = opts
	sess.engine, err = query.NewEngine(ix, sess.sys.zoo.GT, sess.sys.space,
		sess.gtFunc(), &sess.sys.meter)
	if err != nil {
		return err
	}
	if sess.sys.cfg.StorePath != "" {
		if err := ix.Save(sess.sys.store); err != nil {
			return fmt.Errorf("focus: persisting index: %w", err)
		}
	}
	return nil
}

// gtFunc builds the stream-consistent GT-CNN oracle used to verify cluster
// centroids at query time.
func (sess *Session) gtFunc() query.GTFunc {
	sys := sess.sys
	st := sess.stream
	return func(m cluster.Member) vision.ClassID {
		return sys.zoo.GT.Top1Class(sys.space, m.TrueClass, st.CNNSource(m.Seed, "gt"))
	}
}

// LoadIndex restores a previously persisted index for this stream from the
// system's store, instead of re-ingesting.
func (sess *Session) LoadIndex() error {
	if sess.sys.cfg.StorePath == "" {
		return fmt.Errorf("focus: system has no persistent store")
	}
	ix, err := index.Load(sess.sys.store, sess.Name())
	if err != nil {
		return err
	}
	sess.ix = ix
	sess.engine, err = query.NewEngine(ix, sess.sys.zoo.GT, sess.sys.space,
		sess.gtFunc(), &sess.sys.meter)
	return err
}

// QueryOptions mirror query.Options at the public API.
type QueryOptions struct {
	// Kx lowers the retrieval cut below the indexed K (§5); 0 = full K.
	Kx int
	// StartSec/EndSec restrict the time window; EndSec <= 0 = unbounded.
	StartSec, EndSec float64
	// MaxClusters caps examined clusters for batched retrieval.
	MaxClusters int
}

// StreamResult is the result of one query against one stream.
type StreamResult = query.Result

// QueryClass answers "find frames with objects of class c" on this stream.
func (sess *Session) QueryClass(c vision.ClassID, opts QueryOptions) (*StreamResult, error) {
	if sess.engine == nil {
		return nil, fmt.Errorf("focus: stream %q has not been ingested", sess.Name())
	}
	return sess.engine.Query(c, query.Options{
		Kx:          opts.Kx,
		StartSec:    opts.StartSec,
		EndSec:      opts.EndSec,
		MaxClusters: opts.MaxClusters,
		NumGPUs:     sess.sys.cfg.NumGPUs,
	})
}

// Query is a cross-stream query.
type Query struct {
	// Class is the queried class name (e.g. "car").
	Class string
	// Streams restricts the query to these stream names; empty = all.
	Streams []string
	// Options apply to every stream.
	Options QueryOptions
	// Workers bounds the cross-stream fan-out: 0 runs one query worker per
	// stream (§5), 1 queries streams one at a time — the sequential
	// reference for cross-stream scaling. Both produce bit-identical
	// results. Within each stream, GT-CNN verification batches across
	// Config.NumGPUs workers either way; NumGPUs=1 is its sequential
	// reference.
	Workers int
}

// Result aggregates per-stream results of one query.
type Result struct {
	Class vision.ClassID
	// PerStream holds each stream's result, keyed by stream name.
	PerStream map[string]*StreamResult
	// LatencyMS is the query latency with streams processed in parallel
	// by their own workers (§5): the slowest stream bounds it.
	LatencyMS float64
	// GPUTimeMS is the total GPU time across streams.
	GPUTimeMS float64
	// TotalFrames counts returned frames across streams.
	TotalFrames int
}

// Query runs a class query across the selected (or all) ingested streams.
// Streams are queried by concurrent per-stream workers (§5): the slowest
// stream bounds the wall-clock latency, and per-stream results merge in
// stream order so the aggregate is identical to a sequential pass.
func (s *System) Query(q Query) (*Result, error) {
	id, err := s.ClassID(q.Class)
	if err != nil {
		return nil, err
	}
	names := q.Streams
	if len(names) == 0 {
		for _, sess := range s.Sessions() {
			if sess.engine != nil {
				names = append(names, sess.Name())
			}
		}
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("focus: no ingested streams to query")
	}
	sessions := make([]*Session, len(names))
	for i, name := range names {
		if sessions[i] = s.sessions[name]; sessions[i] == nil {
			return nil, fmt.Errorf("focus: unknown stream %q", name)
		}
	}
	workers := parallel.StreamWorkers(len(names), q.Workers)
	perStream, err := parallel.Map(workers, len(names), func(i int) (*StreamResult, error) {
		sr, err := sessions[i].QueryClass(id, q.Options)
		if err != nil {
			return nil, fmt.Errorf("focus: querying %q: %w", names[i], err)
		}
		return sr, nil
	})
	if err != nil {
		return nil, err
	}
	res := &Result{Class: id, PerStream: make(map[string]*StreamResult, len(names))}
	for i, sr := range perStream {
		res.PerStream[names[i]] = sr
		res.GPUTimeMS += sr.GPUTimeMS
		if sr.LatencyMS > res.LatencyMS {
			res.LatencyMS = sr.LatencyMS
		}
		res.TotalFrames += len(sr.Frames)
	}
	return res, nil
}

// IngestAll tunes (when needed) and ingests every registered stream with
// concurrent per-stream ingest workers, mirroring the paper's deployment of
// one worker process per stream (§5). The shared GPU meter and index store
// are safe under the concurrency; each stream's index is identical to what
// a sequential Ingest would build.
func (s *System) IngestAll(opts GenOptions) error {
	return s.IngestAllWorkers(opts, 0)
}

// IngestAllWorkers is IngestAll with an explicit worker bound: 0 runs one
// worker per stream, 1 forces the sequential reference path.
func (s *System) IngestAllWorkers(opts GenOptions, workers int) error {
	sessions := s.Sessions()
	if len(sessions) == 0 {
		return fmt.Errorf("focus: no streams to ingest")
	}
	n := parallel.StreamWorkers(len(sessions), workers)
	return parallel.ForEach(n, len(sessions), func(i int) error {
		if err := sessions[i].Ingest(opts); err != nil {
			return fmt.Errorf("focus: ingesting %q: %w", sessions[i].Name(), err)
		}
		return nil
	})
}
