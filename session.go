package focus

import (
	"fmt"
	"sync"

	"focus/internal/cluster"
	"focus/internal/index"
	"focus/internal/ingest"
	"focus/internal/parallel"
	"focus/internal/query"
	"focus/internal/tune"
	"focus/internal/video"
	"focus/internal/vision"
)

// Session is one stream's lifecycle: tune → ingest → query. Ingestion runs
// either as a one-shot window (Ingest) or continuously in the background
// (StartLive/AdvanceLive), with queries allowed while ingestion is still
// advancing: every query executes against the session's ingest watermark, a
// sealed frame horizon that makes its answer independent of how far the
// ingester has raced ahead.
type Session struct {
	sys    *System
	stream *video.Stream

	// mu guards the mutable fields below. The ingest/tune hot paths run
	// outside the lock; only publishing their outcome takes it, so queries
	// (readers) never block behind frame processing.
	mu        sync.RWMutex
	sweep     *tune.SweepResult
	selection *tune.Selection
	ix        *index.Index
	engine    *query.Engine
	stats     ingest.Stats
	genOpts   GenOptions
	watermark float64
	live      *liveState
}

// liveState is the machinery of a live (incrementally advancing) ingestion:
// a generator goroutine replays the deterministic stream into a channel, and
// AdvanceLive pulls frames from it up to the requested horizon. Only the
// single ingester goroutine driving AdvanceLive touches these fields after
// StartLive.
type liveState struct {
	worker   *ingest.Worker
	frames   chan *video.Frame
	genErr   chan error
	stop     chan struct{}
	stopOnce sync.Once
	pending  *video.Frame
	horizon  float64
	// done is guarded by the session mutex: the ingester sets it, any
	// goroutine may observe it through Session.LiveDone.
	done bool
	// savedID is the index cluster-ID high-water mark of the last completed
	// checkpoint round; only the ingester goroutine (CheckpointLive) touches
	// it after StartLive/RestoreLive.
	savedID index.ClusterID
}

// Stream exposes the underlying synthetic stream.
func (sess *Session) Stream() *video.Stream { return sess.stream }

// Name returns the stream name.
func (sess *Session) Name() string { return sess.stream.Spec.Name }

// Selection returns the tuner's outcome (nil before Tune/Ingest).
func (sess *Session) Selection() *tune.Selection {
	sess.mu.RLock()
	defer sess.mu.RUnlock()
	return sess.selection
}

// Sweep returns the tuner's full sweep (nil before Tune/Ingest).
func (sess *Session) Sweep() *tune.SweepResult {
	sess.mu.RLock()
	defer sess.mu.RUnlock()
	return sess.sweep
}

// Index returns the stream's top-K index (nil before Ingest).
func (sess *Session) Index() *index.Index {
	sess.mu.RLock()
	defer sess.mu.RUnlock()
	return sess.ix
}

// IngestStats returns the last ingestion's counters. During live ingestion
// it reflects the last published watermark, not the ingester's in-flight
// frame.
func (sess *Session) IngestStats() ingest.Stats {
	sess.mu.RLock()
	defer sess.mu.RUnlock()
	return sess.stats
}

// Watermark returns the session's ingest watermark: the stream time up to
// which the index is sealed and queryable. One-shot ingestion publishes the
// whole window at completion; live ingestion advances it chunk by chunk.
// Zero means nothing is queryable yet.
func (sess *Session) Watermark() float64 {
	sess.mu.RLock()
	defer sess.mu.RUnlock()
	return sess.watermark
}

func (sess *Session) queryEngine() *query.Engine {
	sess.mu.RLock()
	defer sess.mu.RUnlock()
	return sess.engine
}

// freshStream rebuilds the deterministic stream so each pass (tuning,
// ingestion, evaluation) replays identical video from the start, the way a
// recorded stream can be re-read from storage.
func (sess *Session) freshStream() (*video.Stream, error) {
	return video.NewStream(sess.stream.Spec, sess.sys.space, sess.sys.cfg.Seed)
}

// Tune runs the parameter sweep (§4.4) over the given window and selects a
// configuration per the system's policy and targets.
func (sess *Session) Tune(opts GenOptions) error {
	tuneOpts := tune.DefaultOptions()
	if sess.sys.cfg.TuneOptions != nil {
		tuneOpts = *sess.sys.cfg.TuneOptions
	}
	st, err := sess.freshStream()
	if err != nil {
		return err
	}
	sweep, err := tune.Sweep(st, sess.sys.space, sess.sys.zoo, tuneOpts, opts)
	if err != nil {
		return err
	}
	sel, err := sweep.Select(sess.sys.cfg.Targets, sess.sys.cfg.Policy)
	if err != nil {
		return err
	}
	sess.mu.Lock()
	sess.sweep = sweep
	sess.selection = sel
	sess.mu.Unlock()
	sess.sys.meter.AddTraining(sweep.EstimationGPUMS)
	return nil
}

// UseSelection installs a previously computed tuner outcome so Ingest can
// proceed without re-running the sweep — restoring a stored tuning, or
// sharing one sweep across replayed systems (the scaling benchmarks do
// this to keep tuning out of their timed regions).
func (sess *Session) UseSelection(sel *tune.Selection) {
	sess.mu.Lock()
	sess.selection = sel
	sess.mu.Unlock()
}

// isLive reports whether a live ingestion owns this session.
func (sess *Session) isLive() bool {
	sess.mu.RLock()
	defer sess.mu.RUnlock()
	return sess.live != nil
}

// newIngestWorker builds an ingest worker from the tuner's chosen
// configuration, tuning first when no selection exists yet. It also returns
// the fresh stream replay the worker was built over, for callers that drive
// generation themselves (live ingestion).
func (sess *Session) newIngestWorker(opts GenOptions) (*ingest.Worker, *video.Stream, error) {
	if sess.Selection() == nil {
		if err := sess.Tune(opts); err != nil {
			return nil, nil, err
		}
	}
	chosen := sess.Selection().Chosen
	tuneOpts := tune.DefaultOptions()
	if sess.sys.cfg.TuneOptions != nil {
		tuneOpts = *sess.sys.cfg.TuneOptions
	}
	cfg := ingest.Config{
		Model:              chosen.Model,
		K:                  chosen.K,
		ClusterThreshold:   chosen.T,
		PixelDiffThreshold: tuneOpts.PixelDiffThreshold,
	}
	st, err := sess.freshStream()
	if err != nil {
		return nil, nil, err
	}
	worker, err := ingest.NewWorker(st, sess.sys.space, cfg, &sess.sys.meter)
	if err != nil {
		return nil, nil, err
	}
	return worker, st, nil
}

// Ingest indexes the stream window with the tuned configuration, running
// the tuner first if it has not run yet. It replaces any previous index and
// publishes the whole window as the session's watermark. A session that is
// ingesting live rejects one-shot ingestion: the two pipelines would fight
// over the session's index and stats.
func (sess *Session) Ingest(opts GenOptions) error {
	if sess.isLive() {
		return fmt.Errorf("focus: stream %q is ingesting live; stop it before a one-shot Ingest", sess.Name())
	}
	worker, _, err := sess.newIngestWorker(opts)
	if err != nil {
		return err
	}
	ix, err := worker.Run(opts)
	if err != nil {
		return err
	}
	engine, err := query.NewEngine(ix, sess.sys.zoo.GT, sess.sys.space,
		sess.gtFunc(), &sess.sys.meter)
	if err != nil {
		return err
	}
	sess.mu.Lock()
	if sess.live != nil {
		sess.mu.Unlock()
		return fmt.Errorf("focus: stream %q started ingesting live mid-Ingest", sess.Name())
	}
	sess.ix = ix
	sess.stats = worker.Stats()
	sess.genOpts = opts
	sess.engine = engine
	sess.watermark = opts.DurationSec
	sess.mu.Unlock()
	if sess.sys.cfg.StorePath != "" {
		if err := ix.Save(sess.sys.store); err != nil {
			return fmt.Errorf("focus: persisting index: %w", err)
		}
		// A full save supersedes any live checkpoint; leaving the snapshot
		// record behind would make a later cold start resurrect stale state.
		if err := sess.clearLiveCheckpoint(); err != nil {
			return fmt.Errorf("focus: clearing stale checkpoint: %w", err)
		}
	}
	return nil
}

// StartLive begins a continuous background-style ingestion of the window:
// the deterministic stream replays through a generator goroutine, and each
// AdvanceLive call processes frames up to a new watermark. Queries are
// allowed immediately (they see an empty horizon until the first advance)
// and run concurrently with the ingester. Tuning runs first if the session
// has no selection yet.
//
// The live index is bit-identical, cluster for cluster, to what a one-shot
// Ingest of the same window builds; the watermark only controls how much of
// it a query may see.
func (sess *Session) StartLive(opts GenOptions) error {
	sess.mu.RLock()
	already := sess.live != nil
	sess.mu.RUnlock()
	if already {
		return fmt.Errorf("focus: stream %q is already ingesting live", sess.Name())
	}
	worker, st, err := sess.newIngestWorker(opts)
	if err != nil {
		return err
	}
	worker.Begin(opts)
	engine, err := query.NewEngine(worker.Index(), sess.sys.zoo.GT, sess.sys.space,
		sess.gtFunc(), &sess.sys.meter)
	if err != nil {
		return err
	}
	live := &liveState{
		worker:  worker,
		frames:  make(chan *video.Frame, 64),
		genErr:  make(chan error, 1),
		stop:    make(chan struct{}),
		horizon: opts.DurationSec,
	}
	sess.mu.Lock()
	if sess.live != nil {
		sess.mu.Unlock()
		return fmt.Errorf("focus: stream %q is already ingesting live", sess.Name())
	}
	sess.ix = worker.Index()
	sess.engine = engine
	sess.genOpts = opts
	sess.stats = ingest.Stats{}
	sess.watermark = 0
	sess.live = live
	sess.mu.Unlock()
	go func() {
		err := st.Generate(opts, func(f *video.Frame) error {
			select {
			case live.frames <- f:
				return nil
			case <-live.stop:
				return errLiveStopped
			}
		})
		close(live.frames)
		live.genErr <- err
	}()
	return nil
}

var errLiveStopped = fmt.Errorf("focus: live ingestion stopped")

// AdvanceLive processes live frames with timestamps at or below toSec and
// then publishes toSec (clamped to the window) as the session's watermark,
// so queries gain a strictly larger sealed horizon. Processing is inclusive
// of the boundary: a cluster spilled while processing the frame at exactly
// toSec is stamped SealSec == toSec, so it must be in the index before a
// query pinned to toSec can run — otherwise it would appear retroactively
// at an already-published watermark. When the stream is
// exhausted the remaining clusters are flushed and the watermark lands on
// the window end; further calls are no-ops. Only one goroutine — the
// session's ingester — may call AdvanceLive.
func (sess *Session) AdvanceLive(toSec float64) (float64, error) {
	sess.mu.RLock()
	live := sess.live
	done := live != nil && live.done
	sess.mu.RUnlock()
	if live == nil {
		return 0, fmt.Errorf("focus: stream %q has no live ingestion", sess.Name())
	}
	if done {
		return sess.Watermark(), nil
	}
	if toSec > live.horizon {
		toSec = live.horizon
	}
	finished := false
	for {
		f := live.pending
		live.pending = nil
		if f == nil {
			var ok bool
			f, ok = <-live.frames
			if !ok {
				err := <-live.genErr
				live.genErr <- err // stay readable: retries and StopLive re-read it
				if err == errLiveStopped {
					// StopLive aborted generation mid-window: freeze at the
					// current watermark without flushing — the index must
					// never claim a horizon whose frames were not processed.
					sess.mu.Lock()
					live.done = true
					wm := sess.watermark
					sess.mu.Unlock()
					return wm, nil
				}
				if err != nil {
					return sess.Watermark(), err
				}
				live.worker.Finish()
				finished = true
				toSec = live.horizon
				break
			}
		}
		if f.TimeSec > toSec {
			live.pending = f
			break
		}
		live.worker.ProcessFrame(f)
	}
	sess.mu.Lock()
	if toSec > sess.watermark {
		sess.watermark = toSec
	}
	if finished {
		live.done = true
	}
	sess.stats = live.worker.Stats()
	wm := sess.watermark
	sess.mu.Unlock()
	return wm, nil
}

// LiveDone reports whether a live ingestion has consumed its whole window.
func (sess *Session) LiveDone() bool {
	sess.mu.RLock()
	defer sess.mu.RUnlock()
	return sess.live != nil && sess.live.done
}

// StopLive aborts a live ingestion's generator goroutine without flushing:
// the watermark stays wherever the last AdvanceLive left it. It must be
// called from the ingester goroutine (or after it has stopped), never
// concurrently with AdvanceLive. Safe to call repeatedly, and whether or
// not the stream already finished; queries keep working against the sealed
// horizon.
func (sess *Session) StopLive() {
	sess.mu.RLock()
	live := sess.live
	sess.mu.RUnlock()
	if live == nil {
		return
	}
	live.stopOnce.Do(func() { close(live.stop) })
	// Unblock the generator if it is parked on a full frames channel, then
	// let it exit; the channel close marks the end.
	for range live.frames {
	}
}

// gtFunc builds the stream-consistent GT-CNN oracle used to verify cluster
// centroids at query time.
func (sess *Session) gtFunc() query.GTFunc {
	sys := sess.sys
	st := sess.stream
	return func(m cluster.Member) vision.ClassID {
		return sys.zoo.GT.Top1Class(sys.space, m.TrueClass, st.CNNSource(m.Seed, "gt"))
	}
}

// LoadIndex restores a previously persisted index for this stream from the
// system's store, instead of re-ingesting.
func (sess *Session) LoadIndex() error {
	if sess.sys.cfg.StorePath == "" {
		return fmt.Errorf("focus: system has no persistent store")
	}
	if sess.isLive() {
		return fmt.Errorf("focus: stream %q is ingesting live; stop it before LoadIndex", sess.Name())
	}
	ix, err := index.Load(sess.sys.store, sess.Name())
	if err != nil {
		return err
	}
	engine, err := query.NewEngine(ix, sess.sys.zoo.GT, sess.sys.space,
		sess.gtFunc(), &sess.sys.meter)
	if err != nil {
		return err
	}
	sess.mu.Lock()
	sess.ix = ix
	sess.engine = engine
	sess.watermark = ix.Meta().DurationSec
	sess.mu.Unlock()
	return nil
}

// QueryOptions mirror query.Options at the public API.
type QueryOptions struct {
	// Kx lowers the retrieval cut below the indexed K (§5); 0 = full K.
	Kx int
	// StartSec/EndSec restrict the time window; EndSec <= 0 = unbounded.
	StartSec, EndSec float64
	// MaxClusters caps examined clusters for batched retrieval.
	MaxClusters int
	// AtSec, when positive, executes the query at that ingest watermark:
	// only clusters sealed at or before it are considered, so the answer is
	// a pure function of the watermark even while ingestion keeps running.
	// Zero queries everything indexed so far; negative pins the query to
	// the empty horizon (nothing sealed yet).
	AtSec float64
}

// StreamResult is the result of one query against one stream.
type StreamResult = query.Result

// QueryClass answers "find frames with objects of class c" on this stream.
func (sess *Session) QueryClass(c vision.ClassID, opts QueryOptions) (*StreamResult, error) {
	engine := sess.queryEngine()
	if engine == nil {
		return nil, fmt.Errorf("focus: stream %q has not been ingested", sess.Name())
	}
	return engine.Query(c, query.Options{
		Kx:          opts.Kx,
		StartSec:    opts.StartSec,
		EndSec:      opts.EndSec,
		MaxClusters: opts.MaxClusters,
		MaxSealSec:  opts.AtSec,
		NumGPUs:     sess.sys.cfg.NumGPUs,
	})
}

// Query is a cross-stream query.
type Query struct {
	// Class is the queried class name (e.g. "car").
	Class string
	// Streams restricts the query to these stream names; empty = all.
	Streams []string
	// Options apply to every stream.
	Options QueryOptions
	// AtWatermarks pins individual streams to per-stream ingest watermarks,
	// overriding Options.AtSec for the named streams. The serve layer
	// queries with the watermark vector it snapshotted at admission, so a
	// cached result and a re-execution at the same vector are identical.
	AtWatermarks map[string]float64
	// Workers bounds the cross-stream fan-out: 0 runs one query worker per
	// stream (§5), 1 queries streams one at a time — the sequential
	// reference for cross-stream scaling. Both produce bit-identical
	// results. Within each stream, GT-CNN verification batches across
	// Config.NumGPUs workers either way; NumGPUs=1 is its sequential
	// reference.
	Workers int
}

// Result aggregates per-stream results of one query.
type Result struct {
	Class vision.ClassID
	// PerStream holds each stream's result, keyed by stream name.
	PerStream map[string]*StreamResult
	// LatencyMS is the query latency with streams processed in parallel
	// by their own workers (§5): the slowest stream bounds it.
	LatencyMS float64
	// GPUTimeMS is the total GPU time across streams.
	GPUTimeMS float64
	// TotalFrames counts returned frames across streams.
	TotalFrames int
}

// Query runs a class query across the selected (or all) ingested streams.
// Streams are queried by concurrent per-stream workers (§5): the slowest
// stream bounds the wall-clock latency, and per-stream results merge in
// stream order so the aggregate is identical to a sequential pass.
func (s *System) Query(q Query) (*Result, error) {
	id, err := s.ClassID(q.Class)
	if err != nil {
		return nil, err
	}
	names := q.Streams
	if len(names) == 0 {
		for _, sess := range s.Sessions() {
			if sess.queryEngine() != nil {
				names = append(names, sess.Name())
			}
		}
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("focus: no ingested streams to query")
	}
	sessions := make([]*Session, len(names))
	for i, name := range names {
		if sessions[i] = s.Session(name); sessions[i] == nil {
			return nil, fmt.Errorf("focus: unknown stream %q", name)
		}
	}
	workers := parallel.StreamWorkers(len(names), q.Workers)
	perStream, err := parallel.Map(workers, len(names), func(i int) (*StreamResult, error) {
		opts := q.Options
		if at, ok := q.AtWatermarks[names[i]]; ok {
			if at <= 0 {
				// Watermark 0 means nothing is sealed yet: pin the query to
				// the empty horizon instead of falling back to "unbounded".
				at = -1
			}
			opts.AtSec = at
		}
		sr, err := sessions[i].QueryClass(id, opts)
		if err != nil {
			return nil, fmt.Errorf("focus: querying %q: %w", names[i], err)
		}
		return sr, nil
	})
	if err != nil {
		return nil, err
	}
	res := &Result{Class: id, PerStream: make(map[string]*StreamResult, len(names))}
	for i, sr := range perStream {
		res.PerStream[names[i]] = sr
		res.GPUTimeMS += sr.GPUTimeMS
		if sr.LatencyMS > res.LatencyMS {
			res.LatencyMS = sr.LatencyMS
		}
		res.TotalFrames += len(sr.Frames)
	}
	return res, nil
}

// IngestAll tunes (when needed) and ingests every registered stream with
// concurrent per-stream ingest workers, mirroring the paper's deployment of
// one worker process per stream (§5). The shared GPU meter and index store
// are safe under the concurrency; each stream's index is identical to what
// a sequential Ingest would build.
func (s *System) IngestAll(opts GenOptions) error {
	return s.IngestAllWorkers(opts, 0)
}

// IngestAllWorkers is IngestAll with an explicit worker bound: 0 runs one
// worker per stream, 1 forces the sequential reference path.
func (s *System) IngestAllWorkers(opts GenOptions, workers int) error {
	sessions := s.Sessions()
	if len(sessions) == 0 {
		return fmt.Errorf("focus: no streams to ingest")
	}
	n := parallel.StreamWorkers(len(sessions), workers)
	return parallel.ForEach(n, len(sessions), func(i int) error {
		if err := sessions[i].Ingest(opts); err != nil {
			return fmt.Errorf("focus: ingesting %q: %w", sessions[i].Name(), err)
		}
		return nil
	})
}
