package focus

import (
	"path/filepath"
	"sync"
	"testing"

	"focus/internal/query"
	"focus/internal/tune"
)

// parallelTestStreams are three Table 1 presets of different types, so the
// determinism checks cover generic and specialized ingest models.
var parallelTestStreams = []string{"auburn_c", "bend", "msnbc"}

// buildFleet registers the test streams on a fresh system.
func buildFleet(t *testing.T, cfg Config) (*System, []*Session) {
	t.Helper()
	sys := newTestSystem(t, cfg)
	sessions := make([]*Session, len(parallelTestStreams))
	for i, name := range parallelTestStreams {
		sess, err := sys.AddTable1Stream(name)
		if err != nil {
			t.Fatal(err)
		}
		sessions[i] = sess
	}
	return sys, sessions
}

// requireSameStreamResult compares every observable field of two per-stream
// query results.
func requireSameStreamResult(t *testing.T, stream string, seq, par *query.Result) {
	t.Helper()
	if seq.ExaminedClusters != par.ExaminedClusters ||
		seq.MatchedClusters != par.MatchedClusters ||
		seq.GTInferences != par.GTInferences ||
		seq.GPUTimeMS != par.GPUTimeMS ||
		seq.LatencyMS != par.LatencyMS ||
		seq.ViaOther != par.ViaOther {
		t.Fatalf("%s: result counters diverge: sequential %+v vs parallel %+v", stream, seq, par)
	}
	if len(seq.Frames) != len(par.Frames) {
		t.Fatalf("%s: %d frames sequential vs %d parallel", stream, len(seq.Frames), len(par.Frames))
	}
	for i := range seq.Frames {
		if seq.Frames[i] != par.Frames[i] {
			t.Fatalf("%s: frame[%d] = %d sequential vs %d parallel", stream, i, seq.Frames[i], par.Frames[i])
		}
	}
	if len(seq.Segments) != len(par.Segments) {
		t.Fatalf("%s: %d segments sequential vs %d parallel", stream, len(seq.Segments), len(par.Segments))
	}
	for i := range seq.Segments {
		if seq.Segments[i] != par.Segments[i] {
			t.Fatalf("%s: segment[%d] diverges", stream, i)
		}
	}
}

// TestParallelPathsBitIdentical is the determinism contract of the parallel
// execution layer: concurrent multi-stream ingest and cross-stream query
// fan-out (including batched GT-CNN verification) must reproduce the
// sequential reference paths exactly — same indexes, same frames, same
// counters, same simulated latency.
func TestParallelPathsBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("slow end-to-end test; nightly runs the full suite")
	}
	opts := GenOptions{DurationSec: 90, SampleEvery: 1}

	seqSys, seqSessions := buildFleet(t, Config{})
	if err := seqSys.IngestAllWorkers(opts, 1); err != nil {
		t.Fatal(err)
	}
	parSys, parSessions := buildFleet(t, Config{})
	if err := parSys.IngestAll(opts); err != nil {
		t.Fatal(err)
	}

	for i, seq := range seqSessions {
		par := parSessions[i]
		if seq.IngestStats() != par.IngestStats() {
			t.Errorf("%s: ingest stats diverge: %+v sequential vs %+v parallel",
				seq.Name(), seq.IngestStats(), par.IngestStats())
		}
		if seq.Index().NumClusters() != par.Index().NumClusters() {
			t.Errorf("%s: %d clusters sequential vs %d parallel",
				seq.Name(), seq.Index().NumClusters(), par.Index().NumClusters())
		}
	}

	// Cold-cache cross-stream queries, then a warm repeat: both must match
	// field for field, with the fan-out bounded by the slowest stream.
	for _, class := range []string{"car", "person"} {
		for pass := 0; pass < 2; pass++ {
			seqRes, err := seqSys.Query(Query{Class: class, Workers: 1})
			if err != nil {
				t.Fatal(err)
			}
			parRes, err := parSys.Query(Query{Class: class})
			if err != nil {
				t.Fatal(err)
			}
			if seqRes.TotalFrames != parRes.TotalFrames ||
				seqRes.LatencyMS != parRes.LatencyMS ||
				seqRes.GPUTimeMS != parRes.GPUTimeMS {
				t.Fatalf("class %s pass %d: aggregate diverges: %+v vs %+v",
					class, pass, seqRes, parRes)
			}
			for name, sr := range seqRes.PerStream {
				pr, ok := parRes.PerStream[name]
				if !ok {
					t.Fatalf("class %s: stream %s missing from parallel result", class, name)
				}
				requireSameStreamResult(t, name, sr, pr)
			}
		}
	}
}

// TestIngestAllSharedStateRace drives the full parallel surface against the
// shared meter and a persistent store at once: concurrent per-stream ingest
// (which also runs the tuner concurrently), then overlapping cross-stream
// queries, per-stream queries and meter snapshots. Run under -race this is
// the data-race gate for the execution layer.
func TestIngestAllSharedStateRace(t *testing.T) {
	// A trimmed search space with lenient targets: this test gates data
	// races, not tuning quality, and must stay affordable under -race.
	topts := tune.DefaultOptions()
	topts.LsCandidates = []int{20}
	topts.TCandidates = []float64{2.5, 3.0}
	topts.KCandidates = []int{4, 16, 60}
	topts.MaxSampleSightings = 600
	store := filepath.Join(t.TempDir(), "focus.db")
	sys, sessions := buildFleet(t, Config{
		StorePath:   store,
		Targets:     tune.Targets{Recall: 0.5, Precision: 0.5},
		TuneOptions: &topts,
	})
	opts := GenOptions{DurationSec: 60, SampleEvery: 1}
	if err := sys.IngestAll(opts); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for round := 0; round < 3; round++ {
		for _, class := range []string{"car", "person", "bus"} {
			wg.Add(1)
			go func(class string) {
				defer wg.Done()
				if _, err := sys.Query(Query{Class: class}); err != nil {
					t.Errorf("query %s: %v", class, err)
				}
			}(class)
		}
		for _, sess := range sessions {
			wg.Add(1)
			go func(sess *Session) {
				defer wg.Done()
				id, err := sys.ClassID("car")
				if err != nil {
					t.Error(err)
					return
				}
				if _, err := sess.QueryClass(id, QueryOptions{}); err != nil {
					t.Errorf("%s: %v", sess.Name(), err)
				}
			}(sess)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = sys.GPUMeter()
		}()
	}
	wg.Wait()

	// The persistent store must hold every stream's index after the
	// concurrent ingest.
	for _, sess := range sessions {
		if err := sess.LoadIndex(); err != nil {
			t.Errorf("%s: reloading persisted index: %v", sess.Name(), err)
		}
	}
}
