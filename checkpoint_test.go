package focus

import (
	"path/filepath"
	"testing"
)

// queryClassesMatch asserts that two sessions answer identically for a set
// of classes at the given watermark pins.
func queryClassesMatch(t *testing.T, want, got *Session, wantAt, gotAt float64, classes []string) {
	t.Helper()
	for _, class := range classes {
		id, err := want.sys.ClassID(class)
		if err != nil {
			t.Fatal(err)
		}
		w, err := want.QueryClass(id, QueryOptions{AtSec: wantAt})
		if err != nil {
			t.Fatal(err)
		}
		g, err := got.QueryClass(id, QueryOptions{AtSec: gotAt})
		if err != nil {
			t.Fatal(err)
		}
		if len(w.Frames) != len(g.Frames) ||
			w.ExaminedClusters != g.ExaminedClusters ||
			w.MatchedClusters != g.MatchedClusters {
			t.Errorf("class %s: want %d frames (%d/%d clusters), got %d frames (%d/%d clusters)",
				class, len(w.Frames), w.MatchedClusters, w.ExaminedClusters,
				len(g.Frames), g.MatchedClusters, g.ExaminedClusters)
			continue
		}
		for i := range w.Frames {
			if w.Frames[i] != g.Frames[i] {
				t.Errorf("class %s: frame[%d] %d vs %d", class, i, w.Frames[i], g.Frames[i])
				break
			}
		}
	}
}

// TestCheckpointRestoreBitIdentical crashes a live ingestion past its last
// checkpoint — including a torn checkpoint round whose cluster records
// landed but whose snapshot record did not — restores it in a fresh system,
// finishes the window, and requires the result to be bit-identical to a
// process that never crashed: same stats, same cluster count, same answers
// at the pre-crash watermark and at the final horizon.
func TestCheckpointRestoreBitIdentical(t *testing.T) {
	const window = 60
	opts := GenOptions{DurationSec: window, SampleEvery: 1}
	classes := []string{"car", "person", "truck"}
	storePath := filepath.Join(t.TempDir(), "index.fkv")

	// Reference: the uncrashed run.
	ref := newTestSystem(t, liveTestConfig())
	refSess, err := ref.AddTable1Stream("auburn_c")
	if err != nil {
		t.Fatal(err)
	}
	if err := refSess.Ingest(opts); err != nil {
		t.Fatal(err)
	}

	// Run A: live ingest with a checkpoint at 20s, then progress past it
	// that the crash will throw away.
	cfgA := liveTestConfig()
	cfgA.StorePath = storePath
	sysA := newTestSystem(t, cfgA)
	sessA, err := sysA.AddTable1Stream("auburn_c")
	if err != nil {
		t.Fatal(err)
	}
	sessA.UseSelection(refSess.Selection())
	if err := sessA.StartLive(opts); err != nil {
		t.Fatal(err)
	}
	if _, err := sessA.AdvanceLive(20); err != nil {
		t.Fatal(err)
	}
	if err := sessA.CheckpointLive(); err != nil {
		t.Fatal(err)
	}
	if _, err := sessA.AdvanceLive(33.7); err != nil {
		t.Fatal(err)
	}
	// Simulate a checkpoint round interrupted mid-write: the delta's cluster
	// records reach the log but the committing snapshot record does not.
	// Restore must ignore them and regenerate identical records from the
	// tail replay.
	if _, err := sessA.Index().SaveDelta(sysA.store, sessA.live.savedID); err != nil {
		t.Fatal(err)
	}
	if err := sysA.store.Sync(); err != nil {
		t.Fatal(err)
	}
	sessA.StopLive() // the "crash": generator gone, no further checkpoints

	// Run B: cold start from the checkpoint, finish the window in chunks
	// deliberately unlike run A's.
	cfgB := liveTestConfig()
	cfgB.StorePath = storePath
	sysB := newTestSystem(t, cfgB)
	sessB, err := sysB.AddTable1Stream("auburn_c")
	if err != nil {
		t.Fatal(err)
	}
	restored, err := sessB.RestoreLive()
	if err != nil {
		t.Fatal(err)
	}
	if !restored {
		t.Fatal("RestoreLive found no checkpoint")
	}
	defer sessB.StopLive()
	if got := sessB.Watermark(); got != 20 {
		t.Fatalf("restored watermark %v, want 20", got)
	}
	if sel := sessB.Selection(); sel == nil ||
		sel.Chosen.K != refSess.Selection().Chosen.K ||
		sel.Chosen.T != refSess.Selection().Chosen.T ||
		sel.Chosen.Model.Name != refSess.Selection().Chosen.Model.Name {
		t.Fatalf("restored selection diverges: %+v vs %+v", sel, refSess.Selection())
	}

	// The pre-crash watermark answers must match the reference before any
	// tail replay happens.
	queryClassesMatch(t, refSess, sessB, 20, 20, classes)

	for _, to := range []float64{26.1, 41, 55.5, window + 3} {
		if _, err := sessB.AdvanceLive(to); err != nil {
			t.Fatal(err)
		}
	}
	if !sessB.LiveDone() {
		t.Fatal("restored live ingest did not finish")
	}
	if a, b := refSess.IngestStats(), sessB.IngestStats(); a != b {
		t.Errorf("ingest stats diverge: reference %+v, restored %+v", a, b)
	}
	if a, b := refSess.Index().NumClusters(), sessB.Index().NumClusters(); a != b {
		t.Errorf("cluster counts diverge: reference %d, restored %d", a, b)
	}
	queryClassesMatch(t, refSess, sessB, 0, window, classes)

	// Checkpoint the finished window, crash again, and restore: a Done
	// checkpoint must come back complete with no generator needed.
	if err := sessB.CheckpointLive(); err != nil {
		t.Fatal(err)
	}
	cfgC := liveTestConfig()
	cfgC.StorePath = storePath
	sysC := newTestSystem(t, cfgC)
	sessC, err := sysC.AddTable1Stream("auburn_c")
	if err != nil {
		t.Fatal(err)
	}
	restored, err = sessC.RestoreLive()
	if err != nil {
		t.Fatal(err)
	}
	if !restored {
		t.Fatal("RestoreLive found no finished checkpoint")
	}
	if !sessC.LiveDone() {
		t.Fatal("Done checkpoint restored as unfinished")
	}
	if got := sessC.Watermark(); got != window {
		t.Fatalf("restored final watermark %v, want %v", got, window)
	}
	if a, b := refSess.IngestStats(), sessC.IngestStats(); a != b {
		t.Errorf("ingest stats diverge after Done restore: reference %+v, restored %+v", a, b)
	}
	queryClassesMatch(t, refSess, sessC, 0, window, classes)
	sessC.StopLive()
}

// TestRestoreLiveWithoutCheckpoint verifies the fresh-boot path: no snapshot
// record means RestoreLive reports (false, nil) and the caller falls back to
// a normal StartLive.
func TestRestoreLiveWithoutCheckpoint(t *testing.T) {
	cfg := liveTestConfig()
	cfg.StorePath = filepath.Join(t.TempDir(), "index.fkv")
	sys := newTestSystem(t, cfg)
	sess, err := sys.AddTable1Stream("auburn_c")
	if err != nil {
		t.Fatal(err)
	}
	restored, err := sess.RestoreLive()
	if err != nil {
		t.Fatal(err)
	}
	if restored {
		t.Fatal("RestoreLive claimed a checkpoint on an empty store")
	}
	if sess.HasLiveCheckpoint() {
		t.Fatal("HasLiveCheckpoint true on an empty store")
	}
}
