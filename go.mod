module focus

go 1.24
