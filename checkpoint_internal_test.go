package focus

import (
	"path/filepath"
	"reflect"

	"focus/internal/cluster"
	"testing"
)

// TestRestoredWorkerSnapshotDeepEqual requires that restore yields
// a worker whose snapshot deeply equals the checkpointed one, and advancing
// both the original (uncrashed) and restored sessions through identical
// chunks must keep their worker snapshots deeply equal.
func TestRestoredWorkerSnapshotDeepEqual(t *testing.T) {
	const window = 60
	opts := GenOptions{DurationSec: window, SampleEvery: 1}
	storePath := filepath.Join(t.TempDir(), "index.fkv")

	cfgA := liveTestConfig()
	cfgA.StorePath = storePath
	sysA := newTestSystem(t, cfgA)
	sessA, err := sysA.AddTable1Stream("auburn_c")
	if err != nil {
		t.Fatal(err)
	}
	if err := sessA.StartLive(opts); err != nil {
		t.Fatal(err)
	}
	defer sessA.StopLive()
	if _, err := sessA.AdvanceLive(20); err != nil {
		t.Fatal(err)
	}
	if err := sessA.CheckpointLive(); err != nil {
		t.Fatal(err)
	}
	orig, err := sessA.live.worker.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	cfgB := liveTestConfig()
	cfgB.StorePath = storePath
	sysB := newTestSystem(t, cfgB)
	sessB, err := sysB.AddTable1Stream("auburn_c")
	if err != nil {
		t.Fatal(err)
	}
	restored, err := sessB.RestoreLive()
	if err != nil {
		t.Fatal(err)
	}
	if !restored {
		t.Fatal("no checkpoint")
	}
	defer sessB.StopLive()
	got, err := sessB.live.worker.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(orig, got) {
		t.Errorf("restored snapshot diverges immediately")
		diffSnapshots(t, orig, got)
	}

	am := sessA.live.worker.Index().Meta()
	bm := sessB.live.worker.Index().Meta()
	if !reflect.DeepEqual(am, bm) {
		t.Errorf("meta diverges: %+v vs %+v", am, bm)
	}
	if a, b := sessA.live.worker.Index().NextID(), sessB.live.worker.Index().NextID(); a != b {
		t.Errorf("index NextID diverges: %d vs %d", a, b)
	}
	if a, b := sessA.live.worker.Index().IngestSec(), sessB.live.worker.Index().IngestSec(); a != b {
		t.Errorf("index IngestSec diverges: %v vs %v", a, b)
	}

	selA, selB := sessA.Selection().Chosen, sessB.Selection().Chosen
	if selA.K != selB.K || selA.T != selB.T || selA.Model.Name != selB.Model.Name ||
		selA.Model.CostMS() != selB.Model.CostMS() {
		t.Errorf("selection diverges: %+v vs %+v", selA, selB)
	}

	for i, to := range []float64{26.1, 41, 55.5} {
		if _, err := sessA.AdvanceLive(to); err != nil {
			t.Fatal(err)
		}
		if _, err := sessB.AdvanceLive(to); err != nil {
			t.Fatal(err)
		}
		sa, err := sessA.live.worker.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		sb, err := sessB.live.worker.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(sa, sb) {
			t.Errorf("snapshots diverge after chunk %d (to=%v)", i, to)
			diffSnapshots(t, sa, sb)
			break
		}
	}
}

func diffSnapshots(t *testing.T, a, b interface{}) {
	t.Helper()
	av := reflect.ValueOf(a)
	bv := reflect.ValueOf(b)
	for i := 0; i < av.NumField(); i++ {
		name := av.Type().Field(i).Name
		if !reflect.DeepEqual(av.Field(i).Interface(), bv.Field(i).Interface()) {
			if name == "Engine" {
				ea := av.Field(i).Interface().(cluster.EngineSnapshot)
				eb := bv.Field(i).Interface().(cluster.EngineSnapshot)
				if ea.NextID != eb.NextID || ea.TotalMembers != eb.TotalMembers || ea.TotalSpilled != eb.TotalSpilled {
					t.Errorf("  Engine counters differ: %d/%d/%d vs %d/%d/%d",
						ea.NextID, ea.TotalMembers, ea.TotalSpilled, eb.NextID, eb.TotalMembers, eb.TotalSpilled)
				}
				if len(ea.Active) != len(eb.Active) {
					t.Errorf("  Engine.Active lengths differ: %d vs %d", len(ea.Active), len(eb.Active))
					continue
				}
				for k := range ea.Active {
					ca, cb := ea.Active[k], eb.Active[k]
					if reflect.DeepEqual(ca, cb) {
						continue
					}
					cav, cbv := reflect.ValueOf(ca), reflect.ValueOf(cb)
					for j := 0; j < cav.NumField(); j++ {
						cn := cav.Type().Field(j).Name
						if !reflect.DeepEqual(cav.Field(j).Interface(), cbv.Field(j).Interface()) {
							t.Errorf("  Active[%d] (ID %d) field %s differs:\n    a=%v\n    b=%v",
								k, ca.ID, cn, cav.Field(j).Interface(), cbv.Field(j).Interface())
						}
					}
					break
				}
				continue
			}
			t.Errorf("  field %s differs: %v vs %v", name, av.Field(i).Interface(), bv.Field(i).Interface())
		}
	}
}
