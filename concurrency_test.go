package focus

import (
	"sync"
	"testing"

	"focus/internal/vision"
)

// TestParallelStreamIngestion mirrors the paper's deployment model (§5):
// one worker process per stream, all ingesting concurrently into one
// system. The result must be identical to serial ingestion.
func TestParallelStreamIngestion(t *testing.T) {
	if testing.Short() {
		t.Skip("slow end-to-end test; nightly runs the full suite")
	}
	names := []string{"auburn_c", "bend", "msnbc"}
	opts := GenOptions{DurationSec: 90, SampleEvery: 1}

	run := func(parallel bool) map[string]int {
		sys := newTestSystem(t, Config{})
		sessions := make([]*Session, len(names))
		for i, n := range names {
			sess, err := sys.AddTable1Stream(n)
			if err != nil {
				t.Fatal(err)
			}
			sessions[i] = sess
		}
		if parallel {
			var wg sync.WaitGroup
			errs := make([]error, len(sessions))
			for i, sess := range sessions {
				wg.Add(1)
				go func(i int, sess *Session) {
					defer wg.Done()
					errs[i] = sess.Ingest(opts)
				}(i, sess)
			}
			wg.Wait()
			for _, err := range errs {
				if err != nil {
					t.Fatal(err)
				}
			}
		} else {
			for _, sess := range sessions {
				if err := sess.Ingest(opts); err != nil {
					t.Fatal(err)
				}
			}
		}
		out := make(map[string]int)
		for _, sess := range sessions {
			out[sess.Name()] = sess.Index().NumClusters()
		}
		return out
	}

	serial := run(false)
	concurrent := run(true)
	for n, want := range serial {
		if got := concurrent[n]; got != want {
			t.Errorf("%s: %d clusters concurrent vs %d serial", n, got, want)
		}
	}
}

// TestConcurrentQueries exercises the query engine's thread safety: many
// goroutines querying different classes of one session simultaneously.
func TestConcurrentQueries(t *testing.T) {
	if testing.Short() {
		t.Skip("slow end-to-end test; nightly runs the full suite")
	}
	sys := newTestSystem(t, Config{})
	sess, err := sys.AddTable1Stream("auburn_c")
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Ingest(GenOptions{DurationSec: 120, SampleEvery: 1}); err != nil {
		t.Fatal(err)
	}
	classes := []vision.ClassID{0, 1, 2, 3, 4, 5, 12, 13, 20, 22}
	// Baseline answers, serial.
	want := make([]int, len(classes))
	for i, c := range classes {
		res, err := sess.QueryClass(c, QueryOptions{})
		if err != nil {
			t.Fatal(err)
		}
		want[i] = len(res.Frames)
	}
	var wg sync.WaitGroup
	for round := 0; round < 4; round++ {
		for i, c := range classes {
			wg.Add(1)
			go func(i int, c vision.ClassID) {
				defer wg.Done()
				res, err := sess.QueryClass(c, QueryOptions{})
				if err != nil {
					t.Errorf("class %d: %v", c, err)
					return
				}
				if len(res.Frames) != want[i] {
					t.Errorf("class %d: %d frames concurrent vs %d serial",
						c, len(res.Frames), want[i])
				}
			}(i, c)
		}
	}
	wg.Wait()
}
