// Quickstart: the minimal end-to-end use of the Focus public API.
//
// It builds a system, registers one of the paper's Table 1 traffic streams,
// ingests a five-minute window (the tuner picks the cheap CNN, K and T
// automatically), and answers one "after-the-fact" query: find all frames
// that contain cars.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"focus"
)

func main() {
	// A system with the paper's defaults: 95% recall / 95% precision
	// targets, balanced ingest/query trade-off, a 10-GPU query cluster.
	sys, err := focus.New(focus.Config{})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	// Register the commercial-intersection traffic camera from Table 1.
	sess, err := sys.AddTable1Stream("auburn_c")
	if err != nil {
		log.Fatal(err)
	}

	// Ingest five minutes of video at 30 fps. Under the hood this samples
	// the stream, selects the ingest CNN and its parameters (§4.4),
	// classifies every moving object with the cheap CNN, clusters similar
	// objects, and builds the top-K index.
	window := focus.GenOptions{DurationSec: 300, SampleEvery: 1}
	if err := sess.Ingest(window); err != nil {
		log.Fatal(err)
	}
	chosen := sess.Selection().Chosen
	st := sess.IngestStats()
	fmt.Printf("ingested %d sightings with %s (K=%d, T=%.1f): %d clusters\n",
		st.Sightings, chosen.Model.Name, chosen.K, chosen.T, st.Clusters)
	fmt.Printf("ingest GPU time: %.1fs (the GT-CNN would have needed %.1fs)\n",
		st.IngestGPUMS/1000, float64(st.Sightings)*13.0/1000)

	// Query: find all frames with cars.
	res, err := sys.Query(focus.Query{Class: "car"})
	if err != nil {
		log.Fatal(err)
	}
	sr := res.PerStream["auburn_c"]
	fmt.Printf("\nquery \"car\": %d frames in %d one-second segments\n",
		len(sr.Frames), len(sr.Segments))
	fmt.Printf("verified %d cluster centroids with the GT-CNN in %.0fms\n",
		sr.GTInferences, sr.LatencyMS)
	fmt.Printf("Query-all would have classified all %d sightings: ~%.0fms on the same GPUs\n",
		st.Sightings, float64(st.Sightings)*13.0/10)
}
