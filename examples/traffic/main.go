// Traffic investigation: the paper's motivating scenario (§1). After an
// incident, an investigator queries several object classes over a specific
// time window of a traffic camera and needs answers in seconds, not hours.
//
// The example ingests two traffic streams, runs time-ranged queries for
// multiple vehicle classes, and compares Focus's GPU cost and latency
// against both baselines (Ingest-all and Query-all) on the same window.
//
// Run with:
//
//	go run ./examples/traffic
package main

import (
	"fmt"
	"log"

	"focus"
	"focus/internal/baseline"
)

func main() {
	sys, err := focus.New(focus.Config{})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	// Two cameras near the incident site.
	streams := []string{"auburn_c", "city_a_d"}
	window := focus.GenOptions{DurationSec: 300, SampleEvery: 1}
	totalSightings := 0
	var focusIngestMS float64
	for _, name := range streams {
		sess, err := sys.AddTable1Stream(name)
		if err != nil {
			log.Fatal(err)
		}
		if err := sess.Ingest(window); err != nil {
			log.Fatal(err)
		}
		st := sess.IngestStats()
		totalSightings += st.Sightings
		focusIngestMS += st.IngestGPUMS
		fmt.Printf("[%s] indexed %d sightings into %d clusters with %s\n",
			name, st.Sightings, st.Clusters, sess.Selection().Chosen.Model.Name)
	}

	// The incident happened between t=60s and t=180s. Query the classes an
	// investigator would chase: cars, buses, trucks, motorcycles.
	fmt.Println("\ninvestigating window 60s..180s:")
	investigated := []string{"car", "bus", "truck", "motorcycle"}
	var focusQueryMS float64
	for _, class := range investigated {
		res, err := sys.Query(focus.Query{
			Class:   class,
			Streams: streams,
			Options: focus.QueryOptions{StartSec: 60, EndSec: 180},
		})
		if err != nil {
			log.Fatal(err)
		}
		focusQueryMS += res.GPUTimeMS
		fmt.Printf("  %-11s %5d frames across %d cameras, latency %6.0fms\n",
			class, res.TotalFrames, len(res.PerStream), res.LatencyMS)
	}

	// Compare against the baselines on the same hardware.
	gt := sys.Zoo().GT
	ingestAll := baseline.IngestAllGPUMS(gt, totalSightings)
	queryAll := baseline.QueryAllLatencyMS(gt, totalSightings, 10) * float64(len(investigated))
	fmt.Printf("\ncost comparison over %d sightings:\n", totalSightings)
	fmt.Printf("  Ingest-all GPU cost:  %8.1fs   Focus ingest: %6.1fs (%.0fx cheaper)\n",
		ingestAll/1000, focusIngestMS/1000, ingestAll/focusIngestMS)
	fmt.Printf("  Query-all latency:    %8.1fs   Focus queries: %5.1fs total GPU\n",
		queryAll/1000, focusQueryMS/1000)
}
