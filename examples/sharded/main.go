// Sharded scale-out: three streams split across two focus-serve shards
// behind a scatter-gather router, with the routed answers checked against
// one System holding everything.
//
// When the corpus outgrows one process, streams become the unit of
// placement: each shard is an ordinary focus-serve over its subset, and
// focus-router presents them as a single endpoint whose merged answers
// are bit-identical to a single-node deployment (DESIGN.md §6). This
// example boots the whole topology in-process over loopback HTTP:
//
//  1. two shards (uneven: 2 streams vs 1) with live background ingest,
//  2. a router discovering ownership and health from the shards,
//  3. one single-class and one compound /v1/query through the router,
//     issued with the typed focus/client package,
//  4. the same executions replayed on a reference single-node System at
//     the merged watermark vector — and compared.
//
// Run with:
//
//	go run ./examples/sharded
package main

import (
	"context"
	"fmt"
	"log"
	"net/http/httptest"
	"time"

	"focus"
	"focus/api"
	"focus/client"
	"focus/internal/router"
	"focus/internal/serve"
)

func newSystem(streams ...string) *focus.System {
	sys, err := focus.New(focus.Config{
		Targets:     focus.Targets{Recall: 0.9, Precision: 0.9},
		TuneOptions: serve.QuickTuneOptions(),
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, name := range streams {
		if _, err := sys.AddTable1Stream(name); err != nil {
			log.Fatal(err)
		}
	}
	return sys
}

func main() {
	window := focus.GenOptions{DurationSec: 90, SampleEvery: 1}
	tuneWindow := focus.GenOptions{DurationSec: 45, SampleEvery: 1}

	// Shards: two focus-serve processes in miniature, uneven on purpose.
	smap := &router.ShardMap{}
	placement := [][]string{{"auburn_c", "jacksonh"}, {"city_a_d"}}
	fmt.Println("booting 2 shards (tuning + live ingest)…")
	for i, streams := range placement {
		sys := newSystem(streams...)
		defer sys.Close()
		srv := serve.New(sys, serve.Config{Window: window, TuneWindow: tuneWindow, ChunkSec: 5})
		if err := srv.Start(); err != nil {
			log.Fatal(err)
		}
		defer srv.Stop()
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		name := fmt.Sprintf("shard-%d", i)
		smap.Shards = append(smap.Shards, router.ShardSpec{Name: name, URL: ts.URL})
		fmt.Printf("  %s (%s) owns %v\n", name, ts.URL, streams)
	}

	// Reference: the same corpus on one node, ingested to the full window.
	fmt.Println("booting the reference single-node system…")
	ref := newSystem("auburn_c", "jacksonh", "city_a_d")
	defer ref.Close()
	for _, sess := range ref.Sessions() {
		if err := sess.Tune(tuneWindow); err != nil {
			log.Fatal(err)
		}
	}
	if err := ref.IngestAll(window); err != nil {
		log.Fatal(err)
	}

	rt, err := router.New(router.Config{Map: smap, Refresh: 250 * time.Millisecond})
	if err != nil {
		log.Fatal(err)
	}
	if err := rt.Start(); err != nil {
		log.Fatal(err)
	}
	defer rt.Stop()
	front := httptest.NewServer(rt.Handler())
	defer front.Close()

	// Let the background ingesters seal some video on every shard.
	time.Sleep(2 * time.Second)

	// One routed single-class query (a one-leaf plan) through the typed
	// client…
	cli := client.New(front.URL)
	qr, err := cli.Query(context.Background(), &api.QueryRequest{Expr: "car"})
	if err != nil {
		log.Fatal(err)
	}
	vector := qr.Watermarks
	fmt.Printf("\nrouted /v1/query {expr: car}: %d frames across %d streams at vector %v\n",
		qr.TotalFrames, len(qr.Streams), vector)

	// …replayed directly on the reference System at the merged vector.
	direct, err := ref.Query(focus.Query{Class: "car", AtWatermarks: vector})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("direct single-node execution at the same vector: %d frames\n", direct.TotalFrames)
	if direct.TotalFrames != qr.TotalFrames {
		log.Fatalf("MISMATCH: routed %d vs direct %d", qr.TotalFrames, direct.TotalFrames)
	}

	// Same exercise for a compound plan, top-5 across both shards.
	pr, err := cli.Query(context.Background(), &api.QueryRequest{
		Expr: "car & person", TopK: 5, At: vector,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nrouted /v1/query \"car & person\" top-5 at the same vector:\n")
	for _, it := range pr.Items {
		fmt.Printf("  %-9s frame %-5d t=%5.1fs score %.2f\n", it.Stream, it.Frame, it.TimeSec, it.Score)
	}
	dplan, err := ref.PlanQuery("car & person", focus.PlanOptions{TopK: 5, AtWatermarks: vector})
	if err != nil {
		log.Fatal(err)
	}
	if len(pr.Items) != len(dplan.Items) {
		log.Fatalf("MISMATCH: routed %d items vs direct %d", len(pr.Items), len(dplan.Items))
	}
	for i, it := range dplan.Items {
		r := pr.Items[i]
		if r.Stream != it.Stream || r.Frame != int64(it.Frame) || r.Score != it.Score {
			log.Fatalf("MISMATCH at rank %d: routed %+v vs direct %+v", i, r, it)
		}
	}
	fmt.Println("\nrouted answers match the single-node reference, item for item.")
}
