// Temporal track queries: Seq/Within/Dur/Region/Vel predicates over
// object tracks.
//
// Boolean plans answer "which frames" — a ranked list of moments. Track
// queries answer "which objects did what": each stream's sightings are
// assembled into per-object tracks (the same adjacency the ingest
// clusterer already maintains), and temporal operators select tracks by
// behavior — how long an object lingered (dur), how fast it moved (vel),
// where it went (region), and in what order (seq), optionally within a
// time bound (within). Class leaves still run through the coarse-then-
// refine index: a track query only pays GT-CNN verdicts for the clusters
// its boolean gate leaves three-valued, and the verdict cache is shared
// with every other query form.
//
// This example ingests two Table 1 streams and asks three questions:
//
//  1. loiterers: cars visible for at least 5 seconds,
//  2. crossers: objects that swept left-to-right across the frame,
//  3. the same query paged through a cursor (identical ranking).
//
// Run with:
//
//	go run ./examples/tracks
package main

import (
	"fmt"
	"log"

	"focus"
)

func main() {
	sys, err := focus.New(focus.Config{})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	for _, name := range []string{"auburn_c", "jacksonh"} {
		if _, err := sys.AddTable1Stream(name); err != nil {
			log.Fatal(err)
		}
	}
	window := focus.GenOptions{DurationSec: 120, SampleEvery: 1}
	fmt.Println("ingesting 2 streams (tuning + indexing)…")
	if err := sys.IngestAll(window); err != nil {
		log.Fatal(err)
	}

	// 1. Loiterers: cars on screen for 5 seconds or more, best matches
	// first. The "car" leaf is the boolean gate — only clusters it leaves
	// unresolved cost a GT-CNN verdict; dur() itself is free, computed
	// from track geometry.
	res, err := sys.TrackQuery("car & dur(5)", focus.TrackOptions{TopK: 5})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncar & dur(5), top 5 (paid %d GT inferences):\n", res.Stats.GTInferences)
	for i, it := range res.Items {
		fmt.Printf("  %2d. %-9s track %-4d object %-4d %5.1fs..%.1fs (%d sightings) score %.2f\n",
			i+1, it.Stream, it.Track, it.Object, it.StartSec, it.EndSec, it.Sightings, it.Score)
	}

	// 2. Crossers: tracks that entered the left third of the scene and
	// later reached the right third — seq() requires the steps in order.
	// within(20, …) bounds the whole sweep to 20 seconds. (The synthetic
	// scene is 160x96; regions are in those pixels.)
	const crossing = "within(20, seq(region(0,0,53,96), region(107,0,160,96)))"
	res, err = sys.TrackQuery(crossing, focus.TrackOptions{TopK: 5})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%s, top 5:\n", crossing)
	for i, it := range res.Items {
		fmt.Printf("  %2d. %-9s track %-4d object %-4d %5.1fs..%.1fs score %.2f\n",
			i+1, it.Stream, it.Track, it.Object, it.StartSec, it.EndSec, it.Score)
	}

	// 3. Paged: the cursor refines clusters only as far as each page
	// needs, and still emits exactly the one-shot ranking — the same
	// paged == one-shot contract every other query form keeps.
	cur, err := sys.TrackCursor("car & dur(5)", focus.TrackOptions{TopK: 5})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nthe same track query, paged 2 at a time:")
	for !cur.Done() {
		page, err := cur.Next(2)
		if err != nil {
			log.Fatal(err)
		}
		if len(page) > 0 {
			fmt.Printf("  page: %d track(s), first = %s track %d (score %.2f)\n",
				len(page), page[0].Stream, page[0].Track, page[0].Score)
		}
	}
	st := cur.Stats()
	fmt.Printf("\npaged run cost: %d GT inferences, %.0fms GPU — the verdict cache\n", st.GTInferences, st.GPUTimeMS)
	fmt.Println("from step 1 made re-verification free; only new clusters pay.")
}
