// Surveillance archive: a rarely-queried camera where wasted ingest work
// dominates cost (§4.4, §6.4). The operator runs the Opt-Ingest policy —
// the cheapest possible indexing — accepting slower queries on the rare
// occasion an investigator needs the footage. The example also shows the
// OTHER-class path (§4.3): querying a class the specialized ingest CNN was
// not trained on, and persisting/reloading the index across "restarts".
//
// Run with:
//
//	go run ./examples/surveillance
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"focus"
)

func main() {
	dir, err := os.MkdirTemp("", "focus-surveillance")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	storePath := filepath.Join(dir, "indexes.kv")

	// Opt-Ingest: minimize the always-on indexing cost of a camera that is
	// almost never queried.
	sys, err := focus.New(focus.Config{Policy: focus.OptIngest, StorePath: storePath})
	if err != nil {
		log.Fatal(err)
	}
	sess, err := sys.AddTable1Stream("lausanne")
	if err != nil {
		log.Fatal(err)
	}
	if err := sess.Ingest(focus.GenOptions{DurationSec: 300, SampleEvery: 1}); err != nil {
		log.Fatal(err)
	}
	chosen := sess.Selection().Chosen
	st := sess.IngestStats()
	fmt.Printf("archived %d sightings with %s at %.2fms per inference\n",
		st.Sightings, chosen.Model.Name, chosen.Model.CostMS())
	fmt.Printf("ingest duty cycle: 1 GPU busy %.2f%% of the time (Ingest-all: %.0f%%)\n",
		100*st.IngestGPUMS/(300*1000), 100*float64(st.Sightings)*13/(300*1000))
	if err := sys.Close(); err != nil {
		log.Fatal(err)
	}

	// Weeks later: an investigator reopens the archive and asks about a
	// stolen handbag and — unusually for this camera — a dog.
	sys2, err := focus.New(focus.Config{Policy: focus.OptIngest, StorePath: storePath})
	if err != nil {
		log.Fatal(err)
	}
	defer sys2.Close()
	sess2, err := sys2.AddTable1Stream("lausanne")
	if err != nil {
		log.Fatal(err)
	}
	if err := sess2.LoadIndex(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nreloaded index: %d clusters, ingest model %s (specialized on %d classes)\n",
		sess2.Index().NumClusters(), sess2.Index().Meta().ModelName,
		len(sess2.Index().Meta().SpecialClasses))

	for _, class := range []string{"handbag", "dog", "umbrella"} {
		id, err := sys2.ClassID(class)
		if err != nil {
			log.Fatal(err)
		}
		res, err := sess2.QueryClass(id, focus.QueryOptions{})
		if err != nil {
			log.Fatal(err)
		}
		route := "specialized index"
		if res.ViaOther {
			route = "OTHER postings (§4.3)"
		}
		fmt.Printf("  %-9s %4d frames, %3d centroids verified, %5.0fms, via %s\n",
			class, len(res.Frames), res.GTInferences, res.LatencyMS, route)
	}
}
