// Compound queries: boolean multi-class predicates with ranked, paged
// results.
//
// The paper's query model is single-class ("find all frames with cars");
// real investigations compose classes: "red-light windows with a car AND a
// pedestrian but NO bus, best matches first, first page fast". This example
// ingests two Table 1 streams and runs that query three ways:
//
//  1. one-shot, top-10 by aggregate confidence,
//  2. paged through a cursor (identical ranking, first page early),
//  3. with a per-leaf time window built through the AST.
//
// Run with:
//
//	go run ./examples/compound
package main

import (
	"fmt"
	"log"

	"focus"
)

func main() {
	sys, err := focus.New(focus.Config{})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	for _, name := range []string{"auburn_c", "jacksonh"} {
		if _, err := sys.AddTable1Stream(name); err != nil {
			log.Fatal(err)
		}
	}
	window := focus.GenOptions{DurationSec: 120, SampleEvery: 1}
	fmt.Println("ingesting 2 streams (tuning + indexing)…")
	if err := sys.IngestAll(window); err != nil {
		log.Fatal(err)
	}

	// 1. One shot: the ten best frames with a car and a person but no bus.
	// GT-CNN verdicts are shared across the three predicate leaves — a
	// cluster mentioned by all of them is verified once.
	res, err := sys.PlanQuery("car & person & !bus", focus.PlanOptions{TopK: 10})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncar & person & !bus, top 10 (paid %d GT inferences):\n", res.Stats.GTInferences)
	for i, it := range res.Items {
		fmt.Printf("  %2d. %-9s frame %-6d t=%5.1fs score %.2f\n",
			i+1, it.Stream, it.Frame, it.TimeSec, it.Score)
	}

	// 2. Paged: the cursor extends the per-leaf cluster budgets only as far
	// as each page needs, and still emits exactly the one-shot ranking.
	cur, err := sys.PlanCursor("car & person & !bus", focus.PlanOptions{TopK: 10})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nthe same plan, paged 4 at a time:")
	for !cur.Done() {
		page, err := cur.Next(4)
		if err != nil {
			log.Fatal(err)
		}
		if len(page) > 0 {
			fmt.Printf("  page: %d item(s), first = %s frame %d (score %.2f)\n",
				len(page), page[0].Stream, page[0].Frame, page[0].Score)
		}
	}

	// 3. Per-leaf options through the AST: cars from the first minute only,
	// still excluding buses anywhere.
	p, err := sys.CompilePlanExpr(&focus.PlanAnd{Children: []focus.PlanExpr{
		&focus.PlanLeaf{Class: "car", Opts: focus.PlanLeafOptions{EndSec: 60}},
		&focus.PlanNot{Child: &focus.PlanLeaf{Class: "bus"}},
	}})
	if err != nil {
		log.Fatal(err)
	}
	windowed, err := sys.ExecutePlan(p, focus.PlanOptions{TopK: 5})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%s, top 5:\n", p.Canonical())
	for i, it := range windowed.Items {
		fmt.Printf("  %2d. %-9s frame %-6d t=%5.1fs score %.2f\n",
			i+1, it.Stream, it.Frame, it.TimeSec, it.Score)
	}
}
