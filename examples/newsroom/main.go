// Newsroom archive search: a news channel with long-dwelling studio shots.
// A producer wants "some shots of studio suits, fast" and only later the full
// result set — the batched retrieval and dynamic-Kx features of §5 — on an
// Opt-Query system where query latency is what matters.
//
// Run with:
//
//	go run ./examples/newsroom
package main

import (
	"fmt"
	"log"

	"focus"
)

func main() {
	sys, err := focus.New(focus.Config{Policy: focus.OptQuery})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	sess, err := sys.AddTable1Stream("msnbc")
	if err != nil {
		log.Fatal(err)
	}
	if err := sess.Ingest(focus.GenOptions{DurationSec: 300, SampleEvery: 1}); err != nil {
		log.Fatal(err)
	}
	st := sess.IngestStats()
	fmt.Printf("news stream indexed: %d sightings, %.0f%% deduplicated by pixel differencing\n",
		st.Sightings, 100*st.DedupRate())
	fmt.Printf("(news anchors barely move: pixel differencing pays off, §4.2)\n\n")

	suit, err := sys.ClassID("suit")
	if err != nil {
		log.Fatal(err)
	}

	// First batch: "show me something now". A low Kx plus a cluster cap
	// retrieves only the most confident clusters (§5).
	quick, err := sess.QueryClass(suit, focus.QueryOptions{Kx: 1, MaxClusters: 10})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("quick batch (Kx=1, 10 clusters): %d frames in %.0fms\n",
		len(quick.Frames), quick.LatencyMS)

	// Full retrieval at the indexed K. Centroids already verified in the
	// quick batch are cached, so the incremental cost is only the rest.
	full, err := sess.QueryClass(suit, focus.QueryOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("full retrieval:               %d frames, %d new GT verifications, %.0fms\n",
		len(full.Frames), full.GTInferences, full.LatencyMS)

	// The anchor query every archive search starts with.
	person, err := sys.ClassID("person")
	if err != nil {
		log.Fatal(err)
	}
	res, err := sess.QueryClass(person, focus.QueryOptions{})
	if err != nil {
		log.Fatal(err)
	}
	queryAllMS := float64(st.Sightings) * 13.0 / 10
	fmt.Printf("\n\"person\" over the archive:    %d frames in %.0fms (Query-all: %.0fms, %.0fx slower)\n",
		len(res.Frames), res.LatencyMS, queryAllMS, queryAllMS/res.LatencyMS)
}
