package focus

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"

	"focus/internal/index"
)

// This file is the library half of live stream handoff: exporting a sealed
// stream's checkpoint records from one System's store and importing them
// into another's, so a destination shard restores the stream bit-identically
// at the sealed watermark (RestoreLive) and replays the deterministic tail
// from there. The serve layer drives it over the /v1/admin/* endpoints; the
// protocol and its crash story live in DESIGN.md §12.

// HandoffRecord is one raw store record of a stream's handoff payload.
type HandoffRecord struct {
	// Key is the store key.
	Key string
	// Value is the record's raw bytes.
	Value []byte
}

// epochKey is the store key holding a stream's ownership epoch.
func epochKey(stream string) string { return "focus/epoch/" + stream }

// pendingKey marks an imported stream whose handoff has not been committed
// (activated) yet: a destination crashing mid-handoff must not cold-start
// into serving a stream the cluster never flipped to it.
func pendingKey(stream string) string { return "focus/handoff/pending/" + stream }

// StreamEpoch returns the stream's ownership epoch: 0 for a stream that
// never moved, incremented by each handoff. Epochs break ties when two
// shards report the same stream mid-cutover — the higher epoch owns it.
func (s *System) StreamEpoch(name string) uint64 {
	raw, ok := s.store.Get(epochKey(name))
	if !ok || len(raw) != 8 {
		return 0
	}
	return binary.BigEndian.Uint64(raw)
}

// SetStreamEpoch persists the stream's ownership epoch.
func (s *System) SetStreamEpoch(name string, epoch uint64) error {
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], epoch)
	if err := s.store.Put(epochKey(name), buf[:]); err != nil {
		return fmt.Errorf("focus: persisting epoch for %q: %w", name, err)
	}
	return s.store.Sync()
}

// PendingImport reports whether the stream was imported but its handoff
// never committed (the activation marker is still pending).
func (s *System) PendingImport(name string) bool {
	_, ok := s.store.Get(pendingKey(name))
	return ok
}

// PendingImports lists every stream with an uncommitted import marker in
// the store — handoffs interrupted before activation, left for the boot
// path to discard.
func (s *System) PendingImports() []string {
	var names []string
	const prefix = "focus/handoff/pending/"
	s.store.Scan(prefix, func(k string, _ []byte) bool {
		names = append(names, k[len(prefix):])
		return true
	})
	return names
}

// DiscardPendingImport deletes the store records of an uncommitted import:
// the handoff never reached its ownership flip, so this system does not
// own the stream and must not cold-start into serving its imported
// checkpoint. A no-op when no pending marker exists.
func (s *System) DiscardPendingImport(name string) error {
	if !s.PendingImport(name) {
		return nil
	}
	return s.deleteStreamRecords(name)
}

// CommitImport clears the stream's pending-import marker: the handoff
// reached the point of no return and this system owns the stream.
func (s *System) CommitImport(name string) error {
	if _, ok := s.store.Get(pendingKey(name)); !ok {
		return nil
	}
	if err := s.store.Delete(pendingKey(name)); err != nil {
		return fmt.Errorf("focus: clearing pending import for %q: %w", name, err)
	}
	return s.store.Sync()
}

// ExportStream returns a stream's handoff payload: its generative spec,
// the sealed watermark, and the store records of its latest live
// checkpoint — index metadata, the committed cluster records, and the
// snapshot commit point. The caller must have sealed the stream first
// (a final CheckpointLive with ingestion parked), so the records are a
// consistent cut and the watermark is frozen.
func (s *System) ExportStream(name string) (StreamSpec, float64, []HandoffRecord, error) {
	sess := s.Session(name)
	if sess == nil {
		return StreamSpec{}, 0, nil, fmt.Errorf("focus: unknown stream %q", name)
	}
	raw, ok := s.store.Get(snapKey(name))
	if !ok {
		return StreamSpec{}, 0, nil, fmt.Errorf("focus: stream %q has no checkpoint to export", name)
	}
	var snap liveSnapshot
	if err := gob.NewDecoder(bytes.NewReader(raw)).Decode(&snap); err != nil {
		return StreamSpec{}, 0, nil, fmt.Errorf("focus: decode snapshot for %q: %w", name, err)
	}
	recs := []HandoffRecord{{Key: snapKey(name), Value: raw}}
	if meta, ok := s.store.Get(index.MetaKey(name)); ok {
		recs = append(recs, HandoffRecord{Key: index.MetaKey(name), Value: meta})
	} else {
		return StreamSpec{}, 0, nil, fmt.Errorf("focus: stream %q has no index metadata to export", name)
	}
	prefix := index.ClusterKeyPrefix(name)
	var scanErr error
	s.store.Scan(prefix, func(k string, v []byte) bool {
		id, ok := index.ClusterKeyID(k, prefix)
		if !ok {
			scanErr = fmt.Errorf("focus: malformed cluster key %q", k)
			return false
		}
		// Records at or past the snapshot's high-water mark belong to an
		// uncommitted checkpoint round; the destination's tail replay
		// regenerates them bit-identically.
		if id < snap.IndexNextID {
			recs = append(recs, HandoffRecord{Key: k, Value: v})
		}
		return true
	})
	if scanErr != nil {
		return StreamSpec{}, 0, nil, scanErr
	}
	return sess.Stream().Spec, snap.Watermark, recs, nil
}

// ImportStream installs an exported stream on this system: the handoff
// records are written to the store (with a pending-import marker, so a
// crash before the handoff commits never cold-starts into serving it), the
// stream is registered, and its live state is restored from the imported
// checkpoint — watermark, index, and mid-stream ingest state exactly as
// the source sealed them. The tail replays deterministically from there:
// both systems must share the same Config.Seed, or answers diverge.
//
// The caller activates the stream with CommitImport once ownership flips;
// until then it should keep the stream hidden from clients. On failure the
// partial import is rolled back.
func (s *System) ImportStream(spec StreamSpec, epoch uint64, recs []HandoffRecord) (*Session, error) {
	name := spec.Name
	if name == "" {
		return nil, fmt.Errorf("focus: import needs a named stream spec")
	}
	if s.Session(name) != nil {
		return nil, fmt.Errorf("focus: stream %q already registered", name)
	}
	cleanup := func() {
		_ = s.deleteStreamRecords(name)
	}
	for _, rec := range recs {
		if err := s.store.Put(rec.Key, rec.Value); err != nil {
			cleanup()
			return nil, fmt.Errorf("focus: importing %q: %w", name, err)
		}
	}
	if err := s.store.Put(pendingKey(name), []byte{1}); err != nil {
		cleanup()
		return nil, fmt.Errorf("focus: importing %q: %w", name, err)
	}
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], epoch)
	if err := s.store.Put(epochKey(name), buf[:]); err != nil {
		cleanup()
		return nil, fmt.Errorf("focus: importing %q: %w", name, err)
	}
	if err := s.store.Sync(); err != nil {
		cleanup()
		return nil, fmt.Errorf("focus: importing %q: %w", name, err)
	}
	sess, err := s.AddStream(spec)
	if err != nil {
		cleanup()
		return nil, err
	}
	restored, err := sess.RestoreLive()
	if err == nil && !restored {
		err = fmt.Errorf("focus: imported records for %q hold no checkpoint", name)
	}
	if err != nil {
		s.sessionMu.Lock()
		delete(s.sessions, name)
		s.sessionMu.Unlock()
		cleanup()
		return nil, err
	}
	return sess, nil
}

// RemoveStream unregisters a stream and deletes its store records (index,
// checkpoint, epoch, markers). The session's live ingestion must be
// stopped, or owned by a goroutine that has exited: RemoveStream stops the
// generator itself but must not race a concurrent AdvanceLive. In-flight
// queries holding the session finish against its frozen state.
func (s *System) RemoveStream(name string) error {
	s.sessionMu.Lock()
	sess, ok := s.sessions[name]
	if ok {
		delete(s.sessions, name)
	}
	s.sessionMu.Unlock()
	if !ok {
		return fmt.Errorf("focus: unknown stream %q", name)
	}
	sess.StopLive()
	return s.deleteStreamRecords(name)
}

// deleteStreamRecords removes every store record belonging to a stream.
func (s *System) deleteStreamRecords(name string) error {
	keys := []string{snapKey(name), index.MetaKey(name), epochKey(name), pendingKey(name)}
	s.store.Scan(index.ClusterKeyPrefix(name), func(k string, _ []byte) bool {
		keys = append(keys, k)
		return true
	})
	for _, k := range keys {
		if _, ok := s.store.Get(k); !ok {
			continue
		}
		if err := s.store.Delete(k); err != nil {
			return fmt.Errorf("focus: deleting records of %q: %w", name, err)
		}
	}
	return s.store.Sync()
}
