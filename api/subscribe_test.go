package api

import (
	"io"
	"reflect"
	"sort"
	"strings"
	"testing"

	"focus/internal/plan"
	"focus/internal/track"
	"focus/internal/video"
)

func validHello() *SubscribeEvent {
	return &SubscribeEvent{V: SSEVersion, Type: EventHello, Hello: &SubscribeHello{
		Expr: "(car&person)", Form: FormRanked, Streams: []string{"auburn_c", "jacksonh"}, TopK: 5,
	}}
}

func validDelta() *SubscribeEvent {
	return &SubscribeEvent{V: SSEVersion, Type: EventDelta, Delta: &Delta{
		From:       WatermarkVector{"auburn_c": 0, "jacksonh": 0},
		To:         WatermarkVector{"auburn_c": 5, "jacksonh": 5},
		Items:      []Item{{Stream: "auburn_c", Frame: 30, TimeSec: 1, Segment: 1, Score: 1.5}},
		TotalItems: 1, GTInferences: 3, GPUTimeMS: 2.5,
	}}
}

// TestSubscribeEventValidate pins the event contract: exactly the payload
// shape the type demands, nothing else.
func TestSubscribeEventValidate(t *testing.T) {
	good := []*SubscribeEvent{
		validHello(),
		validDelta(),
		{V: SSEVersion, Type: EventDrop, Reason: ReasonSlowConsumer, Resume: WatermarkVector{"a": 5}},
		{V: SSEVersion, Type: EventBye, Reason: ReasonComplete},
		{V: SSEVersion, Type: EventBye, Reason: ReasonDraining},
	}
	for _, ev := range good {
		if err := ev.Validate(); err != nil {
			t.Errorf("Validate(%+v) = %v, want nil", ev, err)
		}
	}
	bad := []*SubscribeEvent{
		{V: 0, Type: EventBye, Reason: ReasonComplete},
		{V: 2, Type: EventBye, Reason: ReasonComplete},
		{V: SSEVersion, Type: "surprise"},
		{V: SSEVersion, Type: EventHello},
		{V: SSEVersion, Type: EventHello, Hello: &SubscribeHello{Expr: "car", Form: "frames"}},
		{V: SSEVersion, Type: EventHello, Hello: validHello().Hello, Delta: validDelta().Delta},
		{V: SSEVersion, Type: EventDelta},
		{V: SSEVersion, Type: EventDelta, Delta: &Delta{To: WatermarkVector{"a": 1}}},
		{V: SSEVersion, Type: EventDelta, Delta: &Delta{From: WatermarkVector{"a": 0}}},
		{V: SSEVersion, Type: EventDelta, Delta: &Delta{
			From: WatermarkVector{"a": 0}, To: WatermarkVector{"a": 1}, TotalItems: -1}},
		{V: SSEVersion, Type: EventDelta, Delta: validDelta().Delta, Hello: validHello().Hello},
		{V: SSEVersion, Type: EventDrop},
		{V: SSEVersion, Type: EventDrop, Reason: ReasonSlowConsumer, Hello: validHello().Hello},
		{V: SSEVersion, Type: EventBye},
		{V: SSEVersion, Type: EventBye, Reason: ReasonComplete, Delta: validDelta().Delta},
	}
	for _, ev := range bad {
		if err := ev.Validate(); err == nil {
			t.Errorf("Validate(%+v) accepted an invalid event", ev)
		}
	}
}

// TestSSEFrameRoundTrip pins encode/decode as exact inverses for every
// event type.
func TestSSEFrameRoundTrip(t *testing.T) {
	events := []*SubscribeEvent{
		validHello(),
		validDelta(),
		{V: SSEVersion, Type: EventDrop, Reason: ReasonSlowConsumer, Resume: WatermarkVector{"a": 5}},
		{V: SSEVersion, Type: EventBye, Reason: ReasonComplete},
	}
	for _, ev := range events {
		frame, err := EncodeSSEFrame(ev)
		if err != nil {
			t.Fatalf("EncodeSSEFrame(%+v): %v", ev, err)
		}
		back, err := DecodeSSEFrame(frame)
		if err != nil {
			t.Fatalf("DecodeSSEFrame(%q): %v", frame, err)
		}
		if !reflect.DeepEqual(ev, back) {
			t.Fatalf("round trip drifted:\nsent: %+v\ngot:  %+v", ev, back)
		}
	}
	if _, err := EncodeSSEFrame(&SubscribeEvent{V: SSEVersion, Type: "nope"}); err == nil {
		t.Fatal("EncodeSSEFrame accepted an invalid event")
	}
}

// TestDecodeSSEFrameGrammar exercises the SSE field grammar the decoder
// accepts (comments, CRLF, multi-line data, ignorable fields) and the
// forged shapes it must reject.
func TestDecodeSSEFrameGrammar(t *testing.T) {
	byeData := `{"v":1,"type":"bye","reason":"complete"}`
	accept := []string{
		"event: bye\ndata: " + byeData + "\n\n",
		"event: bye\ndata: " + byeData + "\n",
		"event: bye\ndata: " + byeData,
		"event: bye\r\ndata: " + byeData + "\r\n\r\n",
		": a comment\nevent: bye\ndata: " + byeData + "\n\n",
		"id: 7\nretry: 100\nevent: bye\ndata: " + byeData + "\n\n",
		// Data split across lines joins with newlines — still valid JSON.
		"event: bye\ndata: {\"v\":1,\"type\":\"bye\",\ndata: \"reason\":\"complete\"}\n\n",
	}
	for _, frame := range accept {
		ev, err := DecodeSSEFrame([]byte(frame))
		if err != nil {
			t.Errorf("DecodeSSEFrame(%q): %v", frame, err)
			continue
		}
		if ev.Type != EventBye || ev.Reason != ReasonComplete {
			t.Errorf("DecodeSSEFrame(%q) = %+v", frame, ev)
		}
	}
	reject := []string{
		"",
		"data: " + byeData + "\n\n", // no event field
		"event: bye\n\n",            // no data
		"event: delta\ndata: " + byeData + "\n\n",   // type mismatch
		"event: bye\ndata: not json\n\n",            // bad payload
		"event: bye\ndata: {}\n\n",                  // fails validation
		"bogus line\n",                              // no separator
		"poke: x\nevent: bye\ndata: " + byeData,     // unknown field
		"event: bye\ndata: " + byeData + "\n\nmore", // content past terminator
		"event: bye\ndata: {\"v\":1,\"type\":\"bye\",\"reason\":\"complete\",\"x\":1}\n\n", // unknown JSON field
	}
	for _, frame := range reject {
		if ev, err := DecodeSSEFrame([]byte(frame)); err == nil {
			t.Errorf("DecodeSSEFrame(%q) accepted: %+v", frame, ev)
		}
	}
}

// TestSSEReader pins the stream framing: frames split on blank lines, io.EOF
// between frames, io.ErrUnexpectedEOF inside one.
func TestSSEReader(t *testing.T) {
	var stream strings.Builder
	events := []*SubscribeEvent{validHello(), validDelta(), {V: SSEVersion, Type: EventBye, Reason: ReasonComplete}}
	for _, ev := range events {
		frame, err := EncodeSSEFrame(ev)
		if err != nil {
			t.Fatal(err)
		}
		stream.Write(frame)
	}
	rd := NewSSEReader(strings.NewReader(stream.String()))
	for i, want := range events {
		got, err := rd.Next()
		if err != nil {
			t.Fatalf("event %d: %v", i, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("event %d: got %+v, want %+v", i, got, want)
		}
	}
	if _, err := rd.Next(); err != io.EOF {
		t.Fatalf("after last frame: %v, want io.EOF", err)
	}
	rd = NewSSEReader(strings.NewReader("event: bye\ndata: {\"v\":1,"))
	if _, err := rd.Next(); err != io.ErrUnexpectedEOF {
		t.Fatalf("mid-frame EOF: %v, want io.ErrUnexpectedEOF", err)
	}
}

// TestRankComparatorsMatchEngine pins the wire-layer comparators to the
// engine's: ItemRankBefore must agree with plan.RankBefore and
// TrackRankBefore with track.RankBefore on every ordered pair, ties
// included, or routed merges and delta diffs would drift from the
// rankings servers actually emit.
func TestRankComparatorsMatchEngine(t *testing.T) {
	var items []Item
	for _, score := range []float64{2.5, 1.0} {
		for _, stream := range []string{"a", "b"} {
			for _, frame := range []int64{10, 40} {
				items = append(items, Item{Stream: stream, Frame: frame, Score: score})
			}
		}
	}
	for _, a := range items {
		for _, b := range items {
			pa := plan.Item{Stream: a.Stream, Frame: video.FrameID(a.Frame), Score: a.Score}
			pb := plan.Item{Stream: b.Stream, Frame: video.FrameID(b.Frame), Score: b.Score}
			if ItemRankBefore(a, b) != plan.RankBefore(pa, pb) {
				t.Fatalf("ItemRankBefore(%+v, %+v) disagrees with plan.RankBefore", a, b)
			}
		}
	}
	var tracks []TrackItem
	for _, score := range []float64{2.5, 1.0} {
		for _, stream := range []string{"a", "b"} {
			for _, start := range []float64{1.5, 8} {
				for _, id := range []int64{0, 3} {
					tracks = append(tracks, TrackItem{Stream: stream, StartSec: start, Track: id, Score: score})
				}
			}
		}
	}
	for _, a := range tracks {
		for _, b := range tracks {
			ta := track.Item{Stream: a.Stream, StartSec: a.StartSec, Track: a.Track, Score: a.Score}
			tb := track.Item{Stream: b.Stream, StartSec: b.StartSec, Track: b.Track, Score: b.Score}
			if TrackRankBefore(a, b) != track.RankBefore(ta, tb) {
				t.Fatalf("TrackRankBefore(%+v, %+v) disagrees with track.RankBefore", a, b)
			}
		}
	}
}

func sortItems(items []Item) []Item {
	out := append([]Item(nil), items...)
	sort.Slice(out, func(i, j int) bool { return ItemRankBefore(out[i], out[j]) })
	return out
}

func sortTracks(items []TrackItem) []TrackItem {
	out := append([]TrackItem(nil), items...)
	sort.Slice(out, func(i, j int) bool { return TrackRankBefore(out[i], out[j]) })
	return out
}

// TestDiffApplyItems pins the delta algebra on the ranked form: applying
// diff(prev, next) to prev reconstructs next exactly, additions and
// retractions included, and diffs compose across intermediate states.
func TestDiffApplyItems(t *testing.T) {
	it := func(stream string, frame int64, score float64) Item {
		return Item{Stream: stream, Frame: frame, TimeSec: float64(frame) / 30, Segment: frame / 30, Score: score}
	}
	s0 := []Item{}
	s1 := sortItems([]Item{it("a", 30, 2), it("b", 60, 1.5)})
	// s2 retracts b/60, rescores a/30 (same frame, new score: a
	// remove+add pair), and appends two new frames.
	s2 := sortItems([]Item{it("a", 30, 2.5), it("a", 90, 1.2), it("b", 120, 0.7)})
	s3 := sortItems([]Item{it("a", 30, 2.5), it("a", 90, 1.2)})

	states := [][]Item{s0, s1, s2, s3}
	state := append([]Item(nil), s0...)
	for i := 1; i < len(states); i++ {
		added, removed := DiffItems(states[i-1], states[i])
		d := &Delta{
			From: WatermarkVector{"a": float64(i - 1)}, To: WatermarkVector{"a": float64(i)},
			Items: added, RemovedItems: removed, TotalItems: len(states[i]),
		}
		var err error
		state, err = ApplyDeltaItems(state, d)
		if err != nil {
			t.Fatalf("applying delta %d: %v", i, err)
		}
		if !reflect.DeepEqual(state, states[i]) {
			t.Fatalf("state after delta %d: %v, want %v", i, state, states[i])
		}
	}
	// Composition: one diff from genesis to the last state reconstructs it
	// in a single step too.
	added, removed := DiffItems(s0, s3)
	if len(removed) != 0 {
		t.Fatalf("diff from empty has removals: %v", removed)
	}
	state, err := ApplyDeltaItems(nil, &Delta{
		From: WatermarkVector{"a": 0}, To: WatermarkVector{"a": 3},
		Items: added, TotalItems: len(s3),
	})
	if err != nil || !reflect.DeepEqual(state, s3) {
		t.Fatalf("one-step reassembly: %v (%v), want %v", state, err, s3)
	}
}

// TestDiffApplyTracks covers the tracks form, including the
// same-rank-key replacement case (a track that grew new sightings while
// keeping its score, start and ID).
func TestDiffApplyTracks(t *testing.T) {
	tr := func(stream string, id int64, start, score float64, sightings int) TrackItem {
		return TrackItem{Stream: stream, Track: id, Object: id, StartFrame: int64(start * 30),
			EndFrame: int64(start*30) + 50, StartSec: start, EndSec: start + 2, Sightings: sightings, Score: score}
	}
	prev := sortTracks([]TrackItem{tr("a", 0, 1, 2, 4), tr("b", 1, 3, 1, 6)})
	next := sortTracks([]TrackItem{tr("a", 0, 1, 2, 9), tr("a", 2, 6, 0.5, 3)})
	added, removed := DiffTracks(prev, next)
	// a/0 keeps its rank key but changed Sightings: must surface as a
	// removal plus an addition, never a silent in-place mutation.
	if len(added) != 2 || len(removed) != 2 {
		t.Fatalf("diff: added %v removed %v", added, removed)
	}
	state, err := ApplyDeltaTracks(prev, &Delta{
		From: WatermarkVector{"a": 1}, To: WatermarkVector{"a": 2},
		Tracks: added, RemovedTracks: removed, TotalItems: len(next),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(state, next) {
		t.Fatalf("state %v, want %v", state, next)
	}
}

// TestApplyDeltaRejectsProtocolViolations: a delta that does not fit the
// reassembled state must error, never corrupt it.
func TestApplyDeltaRejectsProtocolViolations(t *testing.T) {
	base := sortItems([]Item{{Stream: "a", Frame: 30, Score: 2}})
	cases := []*Delta{
		// Removes an item the state does not hold.
		{RemovedItems: []Item{{Stream: "a", Frame: 60, Score: 1}}, TotalItems: 0},
		// Adds an item already present.
		{Items: []Item{{Stream: "a", Frame: 30, Score: 2}}, TotalItems: 2},
		// Declares the wrong total.
		{Items: []Item{{Stream: "b", Frame: 30, Score: 1}}, TotalItems: 5},
	}
	for i, d := range cases {
		if _, err := ApplyDeltaItems(base, d); err == nil {
			t.Errorf("case %d: ApplyDeltaItems accepted a bad delta", i)
		}
	}
	baseT := sortTracks([]TrackItem{{Stream: "a", Track: 1, Score: 2}})
	casesT := []*Delta{
		{RemovedTracks: []TrackItem{{Stream: "a", Track: 2, Score: 1}}, TotalItems: 0},
		{Tracks: []TrackItem{{Stream: "a", Track: 1, Score: 2}}, TotalItems: 2},
		{Tracks: []TrackItem{{Stream: "b", Track: 1, Score: 1}}, TotalItems: 5},
	}
	for i, d := range casesT {
		if _, err := ApplyDeltaTracks(baseT, d); err == nil {
			t.Errorf("case %d: ApplyDeltaTracks accepted a bad delta", i)
		}
	}
}

// TestVectorsEqual pins vector equality semantics.
func TestVectorsEqual(t *testing.T) {
	a := WatermarkVector{"x": 5, "y": 10}
	if !VectorsEqual(a, WatermarkVector{"y": 10, "x": 5}) {
		t.Fatal("equal vectors compared unequal")
	}
	for _, b := range []WatermarkVector{nil, {"x": 5}, {"x": 5, "y": 11}, {"x": 5, "z": 10}, {"x": 5, "y": 10, "z": 0}} {
		if VectorsEqual(a, b) {
			t.Fatalf("VectorsEqual(%v, %v) = true", a, b)
		}
	}
	if !VectorsEqual(nil, WatermarkVector{}) {
		t.Fatal("nil and empty vectors should compare equal")
	}
}
