// Package api is the versioned wire contract of the Focus query service —
// the one JSON surface spoken by focus-serve, focus-router, the focus CLI's
// server mode, the load generator, and any external client (through the
// typed focus/client package).
//
// The contract, in one paragraph: POST /v1/query takes a QueryRequest
// whose predicate Expr covers the whole workload shape — a single-class
// query is just a one-leaf plan ("car"), a compound query is the general
// form ("car & person & !bus") — executed across the selected streams at a
// watermark vector snapshotted at admission (or pinned explicitly via At,
// or implicitly via Cursor). Responses come in two forms (QueryResponse.
// Form): "ranked" — confidence-ranked items, pageable through an opaque
// watermark-stable cursor — and "frames" — per-stream frame/segment detail
// for bare one-leaf queries, the shape the paper's single-class query
// reports. Every non-2xx response carries a structured Error with a
// machine-readable Code; clients branch on codes, never on message strings
// or headers. GET /v1/streams and GET /v1/stats are the operational
// surface.
//
// Three invariants make the surface cacheable and shardable:
//
//   - Purity: at a fixed watermark vector, a response is a pure function
//     of (canonical expr, options, vector). Responses echo the executed
//     canonical form, options, and vector so any reader can replay them.
//   - Cursor stability: a cursor token freezes the canonical plan form,
//     the resolved stream set, and the pinned watermark vector along with
//     the offset, so every page of one paged read is served from the same
//     pinned execution — pages concatenate bit-identically to the one-shot
//     answer no matter how far ingest advances between pages.
//   - Transparency: a router fronting many shards speaks exactly this
//     contract on both sides, and its merged responses are bit-identical
//     to a single node holding every stream.
//
// The legacy endpoints (GET /query, POST /plan) remain as deprecated shims
// over this surface; see DESIGN.md §7 for the full wire contract and
// OPERATIONS.md for the operator's view (error table, curl walkthrough).
package api

// Version is the wire-contract version segment every v1 path starts with.
const Version = "v1"

// Canonical v1 endpoint paths. Servers mount exactly these; clients and
// the router build URLs from them so the two can never drift.
const (
	// PathQuery answers QueryRequest (POST).
	PathQuery = "/v1/query"
	// PathStreams lists per-stream ingest status (GET).
	PathStreams = "/v1/streams"
	// PathStats serves service counters (GET); the payload is
	// deployment-specific (focus-serve and focus-router report different
	// counter sets), so it is served as raw JSON.
	PathStats = "/v1/stats"
)

// Legacy (pre-v1) endpoint paths, kept as deprecated shims that translate
// into the v1 handler. Responses are byte-identical to the pre-v1 wire
// format and additionally carry a "Deprecation: true" header; servers
// count their use in the stats legacy_requests counter so operators can
// track client migration.
const (
	// PathLegacyQuery is the deprecated GET single-class query endpoint.
	PathLegacyQuery = "/query"
	// PathLegacyPlan is the deprecated POST compound-plan endpoint.
	PathLegacyPlan = "/plan"
)

// DeprecationHeader is set to "true" on every legacy-shim response.
const DeprecationHeader = "Deprecation"
