package api

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// WatermarkVector maps stream names to pinned ingest watermarks (stream
// seconds). A non-positive watermark pins the stream to the empty horizon
// (nothing sealed yet). It is the shared consistency currency of the wire
// contract: requests pin with it, responses echo the vector they executed
// at, and cursors freeze it so every page reads one pinned execution.
type WatermarkVector map[string]float64

// Clone returns a copy of the vector (nil stays nil).
func (v WatermarkVector) Clone() WatermarkVector {
	if v == nil {
		return nil
	}
	out := make(WatermarkVector, len(v))
	for name, at := range v {
		out[name] = at
	}
	return out
}

// ParseWatermarkVector parses the legacy `at` query-parameter form:
// comma-separated stream@seconds pairs ("auburn_c@35,jacksonh@40"). The v1
// surface carries vectors as JSON objects; this textual form survives on
// the legacy GET /query shim and in CLI flags.
func ParseWatermarkVector(v string) (WatermarkVector, error) {
	out := make(WatermarkVector)
	for _, pair := range strings.Split(v, ",") {
		pair = strings.TrimSpace(pair)
		if pair == "" {
			continue
		}
		name, sec, ok := strings.Cut(pair, "@")
		if !ok || name == "" {
			return nil, fmt.Errorf("bad at entry %q: want stream@seconds", pair)
		}
		f, err := strconv.ParseFloat(sec, 64)
		if err != nil {
			return nil, fmt.Errorf("bad at entry %q: %v", pair, err)
		}
		out[name] = f
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty at parameter")
	}
	return out, nil
}

// FormatWatermarkVector renders a vector in the `at` parameter form,
// streams sorted by name. Inverse of ParseWatermarkVector.
func FormatWatermarkVector(vector WatermarkVector) string {
	names := make([]string, 0, len(vector))
	for n := range vector {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s@%g", n, vector[n])
	}
	return b.String()
}

// NormalizeStreams trims, deduplicates and sorts a requested stream-name
// list — the one canonical form every endpoint uses. Deduplication matters
// for correctness (a repeated name would execute the stream twice and
// double-count aggregates); sorting matters for caching (equivalent
// requests must render the same key) and for cursors (the frozen stream
// set must be order-independent).
func NormalizeStreams(names []string) []string {
	seen := make(map[string]bool, len(names))
	var out []string
	for _, name := range names {
		if name = strings.TrimSpace(name); name != "" && !seen[name] {
			seen[name] = true
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}
