package api

import (
	"encoding/base64"
	"encoding/json"
	"fmt"
	"strings"
)

// Cursor is the decoded form of the opaque page token. It freezes
// everything a later page needs to be served from the same pinned
// execution as the first: the canonical plan form, the resolved stream
// set, the leaf options and TopK, the pinned watermark vector, and the
// offset of the next item. Because the vector is frozen, pages are
// watermark-stable by construction — however far ingest advances between
// page fetches, every page reads the one execution pinned at At, and the
// concatenation of all pages is bit-identical to the one-shot answer.
//
// The token is opaque to clients (an implementation detail that may
// change); servers decode it with DecodeCursor and re-encode the advanced
// offset with Encode. Tokens are deterministic: the same cursor state
// always encodes to the same string.
type Cursor struct {
	// Expr is the canonical predicate form.
	Expr string `json:"expr"`
	// Streams is the resolved (normalized, explicit) stream set.
	Streams []string `json:"streams"`
	// TopK, Kx, Start, End and MaxClusters echo the executed options.
	TopK        int     `json:"top_k,omitempty"`
	Kx          int     `json:"kx,omitempty"`
	Start       float64 `json:"start,omitempty"`
	End         float64 `json:"end,omitempty"`
	MaxClusters int     `json:"max_clusters,omitempty"`
	// At is the pinned watermark vector of the execution.
	At WatermarkVector `json:"at"`
	// Offset is the index of the first item of the next page.
	Offset int `json:"offset"`
	// Form is the response form the continued read pages: FormTracks for
	// a temporal (tracks-form) execution, empty for ranked — tokens
	// minted before the tracks form existed decode as ranked.
	Form string `json:"form,omitempty"`
	// Mode is the execution mode in canonical form: ModeEarlyExit for an
	// early-exit execution, empty for exact — tokens minted before modes
	// existed decode as exact.
	Mode string `json:"mode,omitempty"`
}

// cursorPrefix versions the token format so a future format change can be
// told apart from corruption.
const cursorPrefix = "v1."

// Encode renders the cursor as its opaque wire token.
func (c *Cursor) Encode() string {
	data, err := json.Marshal(c)
	if err != nil {
		// Cursor holds only marshalable fields; this cannot happen.
		panic(fmt.Sprintf("api: encoding cursor: %v", err))
	}
	return cursorPrefix + base64.RawURLEncoding.EncodeToString(data)
}

// DecodeCursor parses an opaque page token back into its Cursor. It
// validates shape, not semantics: the server still re-checks the pinned
// vector against its streams (a token can outlive a stream, or arrive at
// a server that never owned it).
func DecodeCursor(token string) (*Cursor, error) {
	raw, ok := strings.CutPrefix(token, cursorPrefix)
	if !ok {
		return nil, fmt.Errorf("bad cursor: missing %q version prefix", cursorPrefix)
	}
	data, err := base64.RawURLEncoding.DecodeString(raw)
	if err != nil {
		return nil, fmt.Errorf("bad cursor: %v", err)
	}
	var c Cursor
	if err := json.Unmarshal(data, &c); err != nil {
		return nil, fmt.Errorf("bad cursor: %v", err)
	}
	if c.Expr == "" {
		return nil, fmt.Errorf("bad cursor: empty expr")
	}
	if len(c.Streams) == 0 {
		return nil, fmt.Errorf("bad cursor: empty stream set")
	}
	if c.Offset < 0 {
		return nil, fmt.Errorf("bad cursor: negative offset")
	}
	// A server never mints negative options; a token carrying them is
	// forged or corrupted and must be rejected here — the execution layers
	// deliberately skip re-validating cursor fields (the token is trusted
	// to be exactly what a server minted).
	if c.TopK < 0 || c.Kx < 0 || c.MaxClusters < 0 || c.Start < 0 || c.End < 0 {
		return nil, fmt.Errorf("bad cursor: negative option")
	}
	if c.Form != "" && c.Form != FormTracks {
		return nil, fmt.Errorf("bad cursor: unknown form %q", c.Form)
	}
	// Servers mint Mode in canonical form (exact = empty), so anything but
	// the two canonical values is forged or corrupted.
	if c.Mode != "" && c.Mode != ModeEarlyExit {
		return nil, fmt.Errorf("bad cursor: unknown mode %q", c.Mode)
	}
	if c.Mode == ModeEarlyExit && (c.Form == FormTracks || c.TopK < 1) {
		return nil, fmt.Errorf("bad cursor: mode %q needs a ranked execution with top_k >= 1", ModeEarlyExit)
	}
	return &c, nil
}

// CursorForRequest decodes a cursor-bearing request, enforcing the one
// rule every server applies identically: a cursor request carries only
// the token (and optionally Limit) — everything else is frozen inside the
// token and must be zero. Shared by the serve layer and the router so the
// two can never diverge on cursor-request semantics.
func CursorForRequest(req *QueryRequest) (*Cursor, *Error) {
	if req.Expr != "" || len(req.Streams) > 0 || req.TopK != 0 || req.Kx != 0 ||
		req.Start != 0 || req.End != 0 || req.MaxClusters != 0 || len(req.At) > 0 ||
		req.Form != "" || req.Mode != "" {
		return nil, Errorf(CodeBadCursor,
			"a cursor request must carry only cursor (and optionally limit); everything else is frozen in the token")
	}
	cur, err := DecodeCursor(req.Cursor)
	if err != nil {
		return nil, Errorf(CodeBadCursor, "%v", err)
	}
	return cur, nil
}

// ContinuationToken mints the next-page token after serving pageLen items
// at offset out of total, or "" when the read was unpaged (limit <= 0) or
// is exhausted. The cursor value carries the frozen execution identity
// (expr, streams, options, pinned vector); its Offset is overwritten.
// Shared by the serve layer and the router so paging can never diverge.
func ContinuationToken(c Cursor, limit, offset, pageLen, total int) string {
	next := offset + pageLen
	if limit <= 0 || next >= total {
		return ""
	}
	c.Offset = next
	return c.Encode()
}

// PageItems slices a ranked item list to the requested page; limit 0
// means everything from offset on. Always returns a non-nil slice so an
// empty page serializes as [] rather than null. The one shared slicing
// implementation — routed pages must equal single-node pages.
func PageItems(items []Item, limit, offset int) []Item {
	if offset >= len(items) {
		return []Item{}
	}
	items = items[offset:]
	if limit > 0 && limit < len(items) {
		items = items[:limit]
	}
	return items
}

// PageTracks is PageItems for the tracks form: same slicing, same non-nil
// guarantee, shared by the serve layer and the router.
func PageTracks(tracks []TrackItem, limit, offset int) []TrackItem {
	if offset >= len(tracks) {
		return []TrackItem{}
	}
	tracks = tracks[offset:]
	if limit > 0 && limit < len(tracks) {
		tracks = tracks[:limit]
	}
	return tracks
}
