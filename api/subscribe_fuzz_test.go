package api

import (
	"reflect"
	"testing"
)

// FuzzDecodeSSEFrame feeds arbitrary bytes to the subscription frame
// decoder: it must never panic, must reject anything the encoder would
// not have produced from a valid event (clients trust decoded events —
// the Subscriber applies deltas straight into its reassembled state, so
// this gate is the only thing between a forged frame and a corrupted
// subscription), and every accepted frame must survive an
// encode/decode round-trip exactly.
func FuzzDecodeSSEFrame(f *testing.F) {
	for _, ev := range []*SubscribeEvent{
		{V: SSEVersion, Type: EventHello, Hello: &SubscribeHello{
			Expr: "(car&person)", Form: FormRanked, Streams: []string{"auburn_c"}, TopK: 5}},
		{V: SSEVersion, Type: EventHello, Hello: &SubscribeHello{
			Expr: "(car&dur(2,0))", Form: FormTracks, Streams: []string{"auburn_c", "jacksonh"}}},
		{V: SSEVersion, Type: EventDelta, Delta: &Delta{
			From:         WatermarkVector{"auburn_c": 0},
			To:           WatermarkVector{"auburn_c": 5},
			Items:        []Item{{Stream: "auburn_c", Frame: 30, TimeSec: 1, Segment: 1, Score: 1.5}},
			RemovedItems: []Item{{Stream: "auburn_c", Frame: 60, TimeSec: 2, Segment: 2, Score: 0.5}},
			TotalItems:   1, GTInferences: 3, GPUTimeMS: 2.5}},
		{V: SSEVersion, Type: EventDelta, Delta: &Delta{
			From: WatermarkVector{"a": 5},
			To:   WatermarkVector{"a": 10},
			Tracks: []TrackItem{{Stream: "a", Track: 1, Object: 2, StartFrame: 30, EndFrame: 90,
				StartSec: 1, EndSec: 3, Sightings: 4, Score: 2.25}},
			TotalItems: 1}},
		{V: SSEVersion, Type: EventDrop, Reason: ReasonSlowConsumer, Resume: WatermarkVector{"a": 5}},
		{V: SSEVersion, Type: EventBye, Reason: ReasonComplete},
		{V: SSEVersion, Type: EventBye, Reason: ReasonDraining},
	} {
		frame, err := EncodeSSEFrame(ev)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(frame)
	}
	for _, forged := range []string{
		"",
		"event: bye\n\n",
		"data: {\"v\":1,\"type\":\"bye\",\"reason\":\"complete\"}\n\n",
		"event: delta\ndata: {\"v\":1,\"type\":\"bye\",\"reason\":\"complete\"}\n\n",
		"event: bye\ndata: {}\n\n",
		"event: bye\ndata: not json\n\n",
		": comment only\n\n",
		"event: bye\r\ndata: {\"v\":1,\"type\":\"bye\",\"reason\":\"complete\"}\r\n\r\n",
	} {
		f.Add([]byte(forged))
	}
	f.Fuzz(func(t *testing.T, frame []byte) {
		ev, err := DecodeSSEFrame(frame)
		if err != nil {
			if ev != nil {
				t.Fatalf("DecodeSSEFrame(%q) returned both an event and an error", frame)
			}
			return
		}
		// The decoder's validation contract: whatever it accepts must be a
		// valid event of a known type.
		if verr := ev.Validate(); verr != nil {
			t.Fatalf("DecodeSSEFrame(%q) accepted an invalid event: %v", frame, verr)
		}
		// Encode/decode fixpoint: re-framing the event loses nothing.
		reframed, err := EncodeSSEFrame(ev)
		if err != nil {
			t.Fatalf("accepted event of %q does not re-encode: %v", frame, err)
		}
		again, err := DecodeSSEFrame(reframed)
		if err != nil {
			t.Fatalf("re-encoded frame of %q does not decode: %v", frame, err)
		}
		if !reflect.DeepEqual(ev, again) {
			t.Fatalf("event drifted across encode/decode:\nfirst:  %+v\nsecond: %+v", ev, again)
		}
	})
}
