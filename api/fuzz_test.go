package api

import (
	"reflect"
	"testing"
)

// FuzzDecodeCursor feeds arbitrary page tokens to the decoder: it must
// never panic, must reject anything a server would not have minted (the
// execution layers trust decoded cursors and skip re-validation, so this
// gate is the only thing between a forged token and the executor), and
// every accepted cursor must survive an encode/decode round-trip exactly
// — otherwise a continuation token would drift from the execution it
// pins.
func FuzzDecodeCursor(f *testing.F) {
	for _, c := range []*Cursor{
		{Expr: "(car&person)", Streams: []string{"auburn_c", "jacksonh"},
			TopK: 5, At: WatermarkVector{"auburn_c": 30, "jacksonh": 12}, Offset: 2},
		{Expr: "(car&person)", Streams: []string{"auburn_c"},
			TopK: 5, At: WatermarkVector{"auburn_c": 30}, Offset: 0, Mode: ModeEarlyExit},
		{Expr: "(car&dur(2,0))", Streams: []string{"auburn_c"},
			At: WatermarkVector{"auburn_c": 30}, Form: FormTracks, Offset: 1},
		{Expr: "car", Streams: []string{"s"}, Kx: 3, Start: 1, End: 9, MaxClusters: 7,
			At: WatermarkVector{"s": 4}},
	} {
		f.Add(c.Encode())
	}
	for _, garbage := range []string{
		"", "v1.", "v1.!!!", "v2.e30", "v1.e30", // e30 is base64 for "{}"
		"v1.bm90IGpzb24",         // not json
		"v1.eyJleHByIjoiY2FyIn0", // {"expr":"car"}: no streams
	} {
		f.Add(garbage)
	}
	f.Fuzz(func(t *testing.T, token string) {
		c, err := DecodeCursor(token)
		if err != nil {
			if c != nil {
				t.Fatalf("DecodeCursor(%q) returned both a cursor and an error", token)
			}
			return
		}
		// Invariants of every accepted cursor — the decoder's validation
		// contract, which downstream executors rely on without re-checking.
		if c.Expr == "" || len(c.Streams) == 0 || c.Offset < 0 ||
			c.TopK < 0 || c.Kx < 0 || c.MaxClusters < 0 || c.Start < 0 || c.End < 0 {
			t.Fatalf("DecodeCursor(%q) accepted an invalid cursor: %+v", token, c)
		}
		if c.Form != "" && c.Form != FormTracks {
			t.Fatalf("DecodeCursor(%q) accepted unknown form %q", token, c.Form)
		}
		if c.Mode != "" && c.Mode != ModeEarlyExit {
			t.Fatalf("DecodeCursor(%q) accepted unknown mode %q", token, c.Mode)
		}
		if c.Mode == ModeEarlyExit && (c.Form == FormTracks || c.TopK < 1) {
			t.Fatalf("DecodeCursor(%q) accepted an impossible early-exit cursor: %+v", token, c)
		}
		// Encode/decode fixpoint: re-minting the token loses nothing.
		again, err := DecodeCursor(c.Encode())
		if err != nil {
			t.Fatalf("re-encoded cursor of %q does not decode: %v", token, err)
		}
		if !reflect.DeepEqual(c, again) {
			t.Fatalf("cursor drifted across encode/decode:\nfirst:  %+v\nsecond: %+v", c, again)
		}
	})
}
