package api

// QueryRequest is the POST /v1/query body. A single-class query is a
// one-leaf plan: {"expr": "car"}. Exactly one of Expr or Cursor must be
// set — Cursor continues a paged read and carries everything else (the
// canonical expr, the resolved streams, the options, the pinned watermark
// vector, and the offset) inside the token.
type QueryRequest struct {
	// Expr is the predicate: a class name ("car") or a boolean composition
	// ("(car | truck) & person & !bus"). Required unless Cursor is set.
	Expr string `json:"expr,omitempty"`
	// Streams restricts execution to these stream names; empty = every
	// stream the service (or cluster) serves.
	Streams []string `json:"streams,omitempty"`
	// TopK caps the ranked result; 0 ranks every matching frame. Setting
	// TopK selects the ranked response form even for one-leaf exprs.
	TopK int `json:"top_k,omitempty"`
	// Kx, Start, End and MaxClusters apply to every predicate leaf, with
	// single-class query semantics (Kx cuts retrieval below the indexed K,
	// Start/End window the stream time, MaxClusters caps examined
	// clusters).
	Kx          int     `json:"kx,omitempty"`
	Start       float64 `json:"start,omitempty"`
	End         float64 `json:"end,omitempty"`
	MaxClusters int     `json:"max_clusters,omitempty"`
	// Limit requests a page of at most Limit ranked items (0 = all).
	// Setting Limit selects the ranked form; the response's Cursor field
	// then continues the read from the next offset at the same pinned
	// watermark vector.
	Limit int `json:"limit,omitempty"`
	// Cursor continues a paged read started by an earlier response. When
	// set, every other field except Limit must be zero.
	Cursor string `json:"cursor,omitempty"`
	// At pins named streams to explicit ingest watermarks instead of the
	// admission-time snapshot. Pins ahead of a stream's sealed watermark
	// are rejected with code pin_ahead; pins naming streams outside the
	// query's target set are rejected with code bad_request.
	At WatermarkVector `json:"at,omitempty"`
	// Form optionally forces the response form. Empty picks the natural
	// form (frames for a bare one-leaf request, tracks for a temporal
	// expression, ranked otherwise); FormRanked forces the ranked form
	// for one-leaf requests too. The frames form cannot be forced — it
	// only exists for bare one-leaf plans — and the tracks form cannot be
	// forced onto boolean expressions (nor ranked onto temporal ones):
	// the expression's shape decides between ranked and tracks.
	Form string `json:"form,omitempty"`
	// Mode selects the execution mode for ranked queries. Empty and
	// ModeExact both denote the exact mode (the default, bit-identical to
	// every pre-mode release): the full ranking, provably final before a
	// single item is returned. ModeEarlyExit opts into the approximate
	// ExSample-style mode: verification budget chases the streams where
	// results have been surfacing and the query stops as soon as top_k
	// verified items are in hand, so top_k >= 1 is required. Early-exit
	// answers keep the verification guarantee — every returned item is
	// GT-verified with its exact-mode score — but not the ranking
	// guarantee (the items are the top of the discovered set, not
	// necessarily the global top K). Deterministic per request, so
	// cacheable; the two modes never share a cache entry. Rejected
	// (bad_request) on temporal (tracks-form) expressions.
	Mode string `json:"mode,omitempty"`
	// AllowPartial opts into degraded answers from a sharded deployment:
	// when some shards are unreachable, the router returns the healthy
	// shards' merged answer with the Partial marker set instead of failing
	// the whole query with shard_down. Never implicit — the default stays
	// all-or-nothing — and single-node services ignore it (their answers
	// are never partial). Partial responses remain verifiable: the echoed
	// watermark vector covers exactly the streams that answered.
	AllowPartial bool `json:"allow_partial,omitempty"`
}

// Execution modes (QueryRequest.Mode / QueryResponse.Mode).
const (
	// ModeExact is the default: exact, bit-identical ranked execution.
	ModeExact = "exact"
	// ModeEarlyExit is the opt-in approximate mode: budget-allocated
	// verification that stops at top_k verified results.
	ModeEarlyExit = "early_exit"
)

// NormalizeMode validates a wire mode and returns its canonical internal
// form: "" for exact ("" and "exact" denote the same pure function, so
// they normalize to one cache key), ModeEarlyExit for early_exit. Shared
// by the serve layer and the router so mode admission can never diverge.
func NormalizeMode(mode string, topK int) (string, *Error) {
	switch mode {
	case "", ModeExact:
		return "", nil
	case ModeEarlyExit:
		if topK < 1 {
			return "", Errorf(CodeBadRequest,
				"mode %q requires top_k >= 1 (early exit needs a result cap to stop at)", ModeEarlyExit)
		}
		return ModeEarlyExit, nil
	default:
		return "", Errorf(CodeBadRequest, "unknown mode %q (use %q or %q)", mode, ModeExact, ModeEarlyExit)
	}
}

// Response forms (QueryResponse.Form).
const (
	// FormRanked is the compound/primary form: Items ranked by aggregate
	// class confidence, pageable via Cursor.
	FormRanked = "ranked"
	// FormFrames is the per-stream detail form a bare one-leaf request
	// (no TopK, no Limit, no Cursor) is answered in: per-stream frames,
	// segments, and cluster/cost counters.
	FormFrames = "frames"
	// FormTracks is the temporal form: expressions containing a temporal
	// operator (seq, within, dur, region, vel) are answered with ranked
	// object tracks instead of frames, pageable via Cursor like the
	// ranked form.
	FormTracks = "tracks"
)

// QueryResponse is the POST /v1/query payload. Form tells the two shapes
// apart: "ranked" responses carry Items/TotalItems/Cursor, "frames"
// responses carry Streams/TotalFrames. Either way the executed canonical
// expr, options, and watermark vector are echoed back, so a verifier can
// replay the exact execution as a direct library call, and Cached reports
// whether the answer came from the result cache (cost counters then
// describe the original execution — no new GT-CNN work happened).
type QueryResponse struct {
	// Expr is the canonical form of the executed predicate — the form the
	// result cache keys on.
	Expr string `json:"expr"`
	// Form is FormRanked or FormFrames.
	Form string `json:"form"`
	// Watermarks is the watermark vector the execution was pinned to.
	Watermarks WatermarkVector `json:"watermarks"`

	// Items is the (page of the) ranked result; ranked form only.
	Items []Item `json:"items,omitempty"`
	// TotalItems counts the full execution's ranked items, however the
	// page was sliced; ranked form only.
	TotalItems int `json:"total_items,omitempty"`
	// Cursor continues the read after this page; empty when the ranking is
	// exhausted (the paging loop's termination signal) or when the request
	// did not page (no Limit). Ranked form only.
	Cursor string `json:"cursor,omitempty"`

	// Streams holds each stream's frame-level answer; frames form only.
	Streams map[string]*StreamResult `json:"streams,omitempty"`
	// TotalFrames counts returned frames across streams; frames form only.
	TotalFrames int `json:"total_frames,omitempty"`

	// Tracks is the (page of the) ranked track result; tracks form only.
	// TotalItems and Cursor page it exactly as they page Items.
	Tracks []TrackItem `json:"tracks,omitempty"`

	// TopK, Kx, Start, End and MaxClusters echo the executed options.
	TopK        int     `json:"top_k,omitempty"`
	Kx          int     `json:"kx,omitempty"`
	Start       float64 `json:"start,omitempty"`
	End         float64 `json:"end,omitempty"`
	MaxClusters int     `json:"max_clusters,omitempty"`
	// Mode echoes the executed mode in canonical form: empty for exact
	// (keeping exact responses byte-identical to pre-mode releases),
	// ModeEarlyExit for early-exit answers.
	Mode string `json:"mode,omitempty"`

	// GTInferences, GPUTimeMS and LatencyMS are the execution's cost.
	GTInferences int     `json:"gt_inferences"`
	GPUTimeMS    float64 `json:"gpu_time_ms"`
	LatencyMS    float64 `json:"latency_ms"`
	// Cached is true when the response was served from the result cache.
	Cached bool `json:"cached"`
	// Partial marks a degraded answer: the request set AllowPartial and one
	// or more shards could not be reached, so the answer covers only the
	// streams in Watermarks. Nil on complete answers — a response is never
	// silently partial.
	Partial *PartialInfo `json:"partial,omitempty"`
}

// PartialInfo describes what a partial answer is missing. The streams
// listed here are exactly the ones absent from the response's watermark
// vector; re-running the query without AllowPartial would fail with
// shard_down naming one of the missing shards.
type PartialInfo struct {
	// MissingShards names the shards that did not answer.
	MissingShards []string `json:"missing_shards"`
	// MissingStreams names the requested streams those shards own.
	MissingStreams []string `json:"missing_streams"`
}

// TrackItem is one ranked result of a tracks-form response: an object
// track on a stream with its aggregate class-confidence score.
type TrackItem struct {
	// Stream names the stream the track belongs to.
	Stream string `json:"stream"`
	// Track is the track's ID within its stream's assembly at the pinned
	// watermark (dense, deterministic for a given vector).
	Track int64 `json:"track"`
	// Object is the physical object the track follows.
	Object int64 `json:"object"`
	// StartFrame/EndFrame and StartSec/EndSec bound the track.
	StartFrame int64   `json:"start_frame"`
	EndFrame   int64   `json:"end_frame"`
	StartSec   float64 `json:"start_sec"`
	EndSec     float64 `json:"end_sec"`
	// Sightings is the number of detections in the track.
	Sightings int `json:"sightings"`
	// Score is the aggregate class confidence the ranking orders by.
	Score float64 `json:"score"`
}

// Item is one ranked result of a ranked-form response.
type Item struct {
	// Stream names the stream the frame belongs to.
	Stream string `json:"stream"`
	// Frame is the frame number within the stream.
	Frame int64 `json:"frame"`
	// TimeSec is the frame's stream time.
	TimeSec float64 `json:"time_sec"`
	// Segment is the one-second segment the frame falls in.
	Segment int64 `json:"segment"`
	// Score is the aggregate class confidence the ranking orders by.
	Score float64 `json:"score"`
}

// StreamResult is one stream's share of a frames-form response.
type StreamResult struct {
	// Watermark is the ingest watermark this stream's answer is pinned to.
	Watermark float64 `json:"watermark"`
	// Frames are the matching frame numbers, ascending.
	Frames []int64 `json:"frames"`
	// Segments are the matching one-second segments, ascending.
	Segments []int64 `json:"segments"`
	// ExaminedClusters and MatchedClusters count the index clusters the
	// query examined and matched; GTInferences counts GT-CNN invocations.
	ExaminedClusters int `json:"examined_clusters"`
	MatchedClusters  int `json:"matched_clusters"`
	GTInferences     int `json:"gt_inferences"`
	// GPUTimeMS and LatencyMS are this stream's execution cost.
	GPUTimeMS float64 `json:"gpu_time_ms"`
	LatencyMS float64 `json:"latency_ms"`
	// ViaOther is true when the class was answered through the OTHER
	// cluster fallback.
	ViaOther bool `json:"via_other"`
}

// StreamStatus is one entry of the GET /v1/streams payload. A router
// annotates each entry with the owning Shard; a single focus-serve leaves
// it empty.
type StreamStatus struct {
	// Shard names the shard serving this stream (router responses only).
	Shard string `json:"shard,omitempty"`
	// Name, Type and Location identify the stream.
	Name     string `json:"name"`
	Type     string `json:"type"`
	Location string `json:"location"`
	// Watermark is the stream's current sealed ingest horizon; WindowSec
	// its full configured window; IngestDone whether the window is fully
	// ingested.
	Watermark  float64 `json:"watermark"`
	WindowSec  float64 `json:"window_sec"`
	IngestDone bool    `json:"ingest_done"`
	// Frames, Sightings, CNNInfers, DedupRate, Clusters and IngestGPUMS
	// summarize ingest-time work so far.
	Frames      int     `json:"frames"`
	Sightings   int     `json:"sightings"`
	CNNInfers   int     `json:"cnn_inferences"`
	DedupRate   float64 `json:"dedup_rate"`
	Clusters    int     `json:"clusters"`
	IngestGPUMS float64 `json:"ingest_gpu_ms"`
	// Model, K and T are the tuner's chosen ingest configuration.
	Model string  `json:"model,omitempty"`
	K     int     `json:"k,omitempty"`
	T     float64 `json:"t,omitempty"`
	// Epoch is the stream's ownership epoch: bumped each time a live
	// handoff moves the stream to another shard, so a router observing
	// the same stream from two shards mid-cutover resolves ownership to
	// the higher epoch. Zero (omitted) for streams that never moved.
	Epoch uint64 `json:"epoch,omitempty"`
}
