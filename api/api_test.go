package api

import (
	"net/http"
	"reflect"
	"testing"
)

// TestParseWatermarkVector pins the `at` parameter grammar both ways.
func TestParseWatermarkVector(t *testing.T) {
	v, err := ParseWatermarkVector("b@40, a@35.5,c@-1")
	if err != nil {
		t.Fatal(err)
	}
	want := WatermarkVector{"a": 35.5, "b": 40, "c": -1}
	if !reflect.DeepEqual(v, want) {
		t.Fatalf("parsed %v, want %v", v, want)
	}
	if got := FormatWatermarkVector(v); got != "a@35.5,b@40,c@-1" {
		t.Fatalf("formatted %q", got)
	}
	round, err := ParseWatermarkVector(FormatWatermarkVector(v))
	if err != nil || !reflect.DeepEqual(round, v) {
		t.Fatalf("round trip lost data: %v (%v)", round, err)
	}
	for _, bad := range []string{"", " , ", "a", "a@", "a@x", "@5"} {
		if _, err := ParseWatermarkVector(bad); err == nil {
			t.Errorf("ParseWatermarkVector(%q) accepted", bad)
		}
	}
}

func TestNormalizeStreams(t *testing.T) {
	got := NormalizeStreams([]string{" b", "a", "b", "", "  ", "a "})
	if !reflect.DeepEqual(got, []string{"a", "b"}) {
		t.Fatalf("normalized %v", got)
	}
	if NormalizeStreams(nil) != nil {
		t.Fatal("nil input should stay nil")
	}
}

// TestCursorRoundTrip: tokens are deterministic, opaque-but-decodable, and
// preserve every frozen field.
func TestCursorRoundTrip(t *testing.T) {
	c := &Cursor{
		Expr:    "(car&person&!bus)",
		Streams: []string{"auburn_c", "jacksonh"},
		TopK:    25,
		Kx:      2,
		Start:   5,
		End:     120,
		At:      WatermarkVector{"auburn_c": 35, "jacksonh": 40.5},
		Offset:  10,
	}
	tok := c.Encode()
	if tok2 := c.Encode(); tok2 != tok {
		t.Fatalf("cursor encoding is not deterministic: %q vs %q", tok, tok2)
	}
	back, err := DecodeCursor(tok)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, c) {
		t.Fatalf("round trip lost data:\n%+v\nvs\n%+v", back, c)
	}
}

func TestCursorRejectsGarbage(t *testing.T) {
	good := (&Cursor{Expr: "car", Streams: []string{"a"}, At: WatermarkVector{"a": 1}}).Encode()
	// Forged tokens carrying options no server would mint must be rejected
	// at decode — the execution layers trust decoded cursors and skip
	// re-validation.
	forgedKx := (&Cursor{Expr: "car", Streams: []string{"a"}, Kx: -1, At: WatermarkVector{"a": 1}}).Encode()
	forgedOffset := (&Cursor{Expr: "car", Streams: []string{"a"}, Offset: -2, At: WatermarkVector{"a": 1}}).Encode()
	for _, bad := range []string{
		"",
		"nonsense",
		"v2." + good[3:],        // wrong version prefix
		"v1.!!!not-base64!!!",   // not base64
		"v1.e30",                // decodes to {} — empty expr
		good + "corrupt-suffix", // trailing garbage breaks base64
		forgedKx,
		forgedOffset,
	} {
		if _, err := DecodeCursor(bad); err == nil {
			t.Errorf("DecodeCursor(%q) accepted", bad)
		}
	}
	if _, err := DecodeCursor(good); err != nil {
		t.Fatalf("control token rejected: %v", err)
	}
}

// TestContinuationAndPaging pins the shared paging helpers both layers
// slice and mint with.
func TestContinuationAndPaging(t *testing.T) {
	items := []Item{{Frame: 0}, {Frame: 1}, {Frame: 2}, {Frame: 3}, {Frame: 4}}
	if got := PageItems(items, 2, 1); len(got) != 2 || got[0].Frame != 1 {
		t.Fatalf("PageItems(2,1) = %+v", got)
	}
	if got := PageItems(items, 0, 3); len(got) != 2 {
		t.Fatalf("PageItems(0,3) = %+v", got)
	}
	if got := PageItems(items, 2, 99); got == nil || len(got) != 0 {
		t.Fatalf("past-the-end page must be empty and non-nil, got %#v", got)
	}
	base := Cursor{Expr: "car", Streams: []string{"a"}, At: WatermarkVector{"a": 1}}
	if tok := ContinuationToken(base, 0, 0, 5, 5); tok != "" {
		t.Fatal("unpaged read minted a cursor")
	}
	if tok := ContinuationToken(base, 2, 3, 2, 5); tok != "" {
		t.Fatal("exhausted read minted a cursor")
	}
	tok := ContinuationToken(base, 2, 0, 2, 5)
	cur, err := DecodeCursor(tok)
	if err != nil || cur.Offset != 2 || cur.Expr != "car" {
		t.Fatalf("continuation decoded to %+v (%v)", cur, err)
	}
}

// TestErrorEnvelope pins code→status mapping and envelope decoding, the
// two halves every client and the router rely on.
func TestErrorEnvelope(t *testing.T) {
	statuses := map[Code]int{
		CodeBadRequest:    400,
		CodeBadExpr:       400,
		CodeBadCursor:     400,
		CodeUnknownStream: 400,
		CodePinAhead:      400,
		CodeOverloaded:    429,
		CodeDraining:      503,
		CodeShardDown:     503,
		CodeNotReady:      503,
		CodeUnavailable:   503,
		CodeInternal:      500,
	}
	for code, want := range statuses {
		if got := (&Error{Code: code}).HTTPStatus(); got != want {
			t.Errorf("%s → %d, want %d", code, got, want)
		}
	}

	// A structured envelope round-trips code, message and shard.
	e := DecodeError(503, []byte(`{"error":{"code":"draining","message":"shard x is draining","shard":"x"}}`))
	if e.Code != CodeDraining || e.Shard != "x" {
		t.Fatalf("decoded %+v", e)
	}
	if !IsCode(e, CodeDraining) || IsCode(e, CodeOverloaded) {
		t.Fatal("IsCode misclassifies")
	}

	// Non-envelope bodies degrade to a status-inferred code with the raw
	// body as message (a proxy 502, a legacy string error).
	e = DecodeError(http.StatusTooManyRequests, []byte(`{"error":"overloaded: queue full"}`))
	if e.Code != CodeOverloaded {
		t.Fatalf("legacy 429 decoded as %+v", e)
	}
	e = DecodeError(http.StatusBadGateway, []byte("<html>bad gateway</html>"))
	if e.Code != CodeInternal || e.Message == "" {
		t.Fatalf("opaque 502 decoded as %+v", e)
	}
}
