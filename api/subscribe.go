package api

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// PathSubscribe is the standing-query endpoint (POST, answers as a
// server-sent-event stream of SubscribeEvent frames).
const PathSubscribe = "/v1/subscribe"

// SSEVersion is the subscription frame-format version every event carries;
// decoders reject frames from a different major revision instead of
// misreading them.
const SSEVersion = 1

// SubscribeRequest is the POST /v1/subscribe body: a standing query. The
// predicate, stream set and options mean exactly what they mean on
// QueryRequest; the response is not one answer but a stream of deltas that
// track the answer as ingest watermarks advance.
type SubscribeRequest struct {
	// Expr is the predicate, as on QueryRequest. Required.
	Expr string `json:"expr"`
	// Streams restricts the subscription to these streams; empty = every
	// stream the service (or cluster) serves.
	Streams []string `json:"streams,omitempty"`
	// TopK, Kx, Start, End and MaxClusters apply as on QueryRequest: the
	// subscription tracks the answer of exactly that query shape.
	TopK        int     `json:"top_k,omitempty"`
	Kx          int     `json:"kx,omitempty"`
	Start       float64 `json:"start,omitempty"`
	End         float64 `json:"end,omitempty"`
	MaxClusters int     `json:"max_clusters,omitempty"`
	// Form optionally forces the response form: FormRanked (default for
	// boolean predicates) or FormTracks (default, and required, for
	// temporal predicates). The frames form has no delta shape and cannot
	// be subscribed to.
	Form string `json:"form,omitempty"`
	// Mode selects the ranked execution mode, as on QueryRequest.
	Mode string `json:"mode,omitempty"`
	// From resumes a subscription: the last watermark vector a previous
	// stream of deltas was delivered through. The first delta picks up
	// exactly there — no gaps, no duplicates. Empty subscribes from
	// genesis (the empty horizon); then the first delta carries the whole
	// current answer. When set, From must cover exactly the subscription's
	// resolved streams.
	From WatermarkVector `json:"from,omitempty"`
}

// SubscribeHello is the payload of the first event on every subscription
// stream: the resolved subscription in canonical form, echoed so the
// client can verify what it is tracking (and a resuming client can check
// it reattached to the same pure function).
type SubscribeHello struct {
	// Expr is the canonical predicate form.
	Expr string `json:"expr"`
	// Form is FormRanked or FormTracks.
	Form string `json:"form"`
	// Streams is the resolved target stream set, sorted.
	Streams []string `json:"streams"`
	// TopK, Kx, Start, End, MaxClusters and Mode echo the resolved options.
	TopK        int     `json:"top_k,omitempty"`
	Kx          int     `json:"kx,omitempty"`
	Start       float64 `json:"start,omitempty"`
	End         float64 `json:"end,omitempty"`
	MaxClusters int     `json:"max_clusters,omitempty"`
	Mode        string  `json:"mode,omitempty"`
}

// Delta is one edit of a subscription's answer: the difference between the
// query's full result at vector From and at vector To. Applying every
// delta in order from genesis reconstructs, bit for bit, the one-shot
// answer pinned at the last delta's To vector — the subscription analogue
// of the paged==one-shot invariant.
//
// Most advances only append (newly sealed clusters surface new matches),
// but answers are not monotone under watermark growth: a late-sealed
// cluster can raise an earlier frame's aggregate score, negation can
// retract a frame once the negated class verifies, TopK can displace
// items, and track identities are reassigned per vector. Removed items
// carry the full structs being retracted so application can verify them.
type Delta struct {
	// From and To are the watermark vectors the delta spans: it edits the
	// answer at From into the answer at To. A client's next delta always
	// has From equal to the previous delta's To.
	From WatermarkVector `json:"from"`
	To   WatermarkVector `json:"to"`

	// Items are the ranked items present at To but not at From, in rank
	// order; RemovedItems the ones present at From but not at To. Ranked
	// form only.
	Items        []Item `json:"items,omitempty"`
	RemovedItems []Item `json:"removed_items,omitempty"`

	// Tracks and RemovedTracks are the tracks-form counterparts.
	Tracks        []TrackItem `json:"tracks,omitempty"`
	RemovedTracks []TrackItem `json:"removed_tracks,omitempty"`

	// TotalItems is the full answer's size at To — the reassembled state's
	// expected length, a cheap cross-check after every application.
	TotalItems int `json:"total_items"`

	// GTInferences and GPUTimeMS are the cost of the evaluation that
	// produced this delta. Thanks to the engine's shared verdict cache the
	// marginal cost covers only clusters sealed since the last evaluation,
	// and all subscribers of one coalesced group share a single evaluation.
	GTInferences int     `json:"gt_inferences"`
	GPUTimeMS    float64 `json:"gpu_time_ms"`
}

// Subscription event types (SubscribeEvent.Type).
const (
	// EventHello opens every stream: payload SubscribeHello.
	EventHello = "hello"
	// EventDelta carries one Delta.
	EventDelta = "delta"
	// EventDrop ends a stream whose consumer fell behind the bounded event
	// queue: everything up to Resume was delivered (never a wrong or
	// partial delta); reconnect with From=Resume to continue gap-free.
	EventDrop = "drop"
	// EventBye ends a stream deliberately: Reason "complete" (every
	// stream's window fully ingested — no further advances will come) or
	// "draining" (the server is leaving rotation).
	EventBye = "bye"
)

// Terminal reasons (SubscribeEvent.Reason).
const (
	// ReasonComplete: ingest finished; the answer is final.
	ReasonComplete = "complete"
	// ReasonDraining: the server is draining for a restart.
	ReasonDraining = "draining"
	// ReasonSlowConsumer: the client outran the bounded event queue.
	ReasonSlowConsumer = "slow_consumer"
	// ReasonShardLost: a routed subscription lost one of its per-shard
	// legs (shard down, draining, or misbehaving); everything up to the
	// drop's Resume vector was delivered. Resubscribe with From=Resume
	// once the cluster heals.
	ReasonShardLost = "shard_lost"
	// ReasonMoved: the subscription touched a stream that was handed off
	// to another shard. Everything up to the delivered vector is intact;
	// resubscribing with From at that vector resumes against the new
	// owner (client.Subscriber does this transparently).
	ReasonMoved = "moved"
)

// SubscribeEvent is one frame of a subscription stream. Exactly one
// payload field is set, matching Type.
type SubscribeEvent struct {
	// V is the frame-format version (SSEVersion).
	V int `json:"v"`
	// Type is one of the Event* constants.
	Type string `json:"type"`
	// Hello is set on EventHello frames.
	Hello *SubscribeHello `json:"hello,omitempty"`
	// Delta is set on EventDelta frames.
	Delta *Delta `json:"delta,omitempty"`
	// Reason is set on EventDrop and EventBye frames.
	Reason string `json:"reason,omitempty"`
	// Resume is set on EventDrop frames: the vector through which deltas
	// were fully delivered; resubscribe with From=Resume.
	Resume WatermarkVector `json:"resume,omitempty"`
}

// Validate checks the event's internal consistency: version, a known
// type, and the payload shape that type demands. Both the encoder and the
// decoder enforce it, so a malformed event can neither be emitted nor
// accepted.
func (ev *SubscribeEvent) Validate() error {
	if ev.V != SSEVersion {
		return fmt.Errorf("subscribe event version %d, want %d", ev.V, SSEVersion)
	}
	switch ev.Type {
	case EventHello:
		if ev.Hello == nil {
			return fmt.Errorf("hello event without hello payload")
		}
		if ev.Delta != nil {
			return fmt.Errorf("hello event carrying a delta payload")
		}
		if ev.Hello.Form != FormRanked && ev.Hello.Form != FormTracks {
			return fmt.Errorf("hello form %q: want %q or %q", ev.Hello.Form, FormRanked, FormTracks)
		}
	case EventDelta:
		if ev.Delta == nil {
			return fmt.Errorf("delta event without delta payload")
		}
		if ev.Hello != nil {
			return fmt.Errorf("delta event carrying a hello payload")
		}
		if len(ev.Delta.From) == 0 || len(ev.Delta.To) == 0 {
			return fmt.Errorf("delta event with empty from/to vector")
		}
		if ev.Delta.TotalItems < 0 {
			return fmt.Errorf("delta event with negative total_items")
		}
	case EventDrop:
		if ev.Reason == "" {
			return fmt.Errorf("drop event without a reason")
		}
		if ev.Hello != nil || ev.Delta != nil {
			return fmt.Errorf("drop event carrying a payload")
		}
	case EventBye:
		if ev.Reason == "" {
			return fmt.Errorf("bye event without a reason")
		}
		if ev.Hello != nil || ev.Delta != nil {
			return fmt.Errorf("bye event carrying a payload")
		}
	default:
		return fmt.Errorf("unknown subscribe event type %q", ev.Type)
	}
	return nil
}

// EncodeSSEFrame renders the event as one server-sent-event frame:
//
//	event: <type>
//	data: <single-line JSON>
//	<blank line>
//
// The event is validated first; DecodeSSEFrame returns exactly the input
// for every frame this produces.
func EncodeSSEFrame(ev *SubscribeEvent) ([]byte, error) {
	if err := ev.Validate(); err != nil {
		return nil, err
	}
	data, err := json.Marshal(ev)
	if err != nil {
		return nil, err
	}
	var b bytes.Buffer
	fmt.Fprintf(&b, "event: %s\ndata: %s\n\n", ev.Type, data)
	return b.Bytes(), nil
}

// DecodeSSEFrame parses one server-sent-event frame into a validated
// SubscribeEvent. It accepts the standard SSE field grammar — "event:" and
// "data:" fields (multiple data lines join with newlines), ":" comment
// lines, and ignorable "id:"/"retry:" fields — and then enforces the
// subscription contract: the JSON payload must validate and its type must
// match the frame's event field. Anything else is an error, never a
// silently skipped or misread event.
func DecodeSSEFrame(frame []byte) (*SubscribeEvent, error) {
	eventType := ""
	terminated := false
	var data []string
	for _, line := range strings.Split(strings.TrimSuffix(string(frame), "\n"), "\n") {
		line = strings.TrimSuffix(line, "\r")
		switch {
		case line == "":
			// Blank line: the frame terminator. This decoder handles
			// exactly one frame, so content after it is an error, not a
			// silently merged second frame.
			if eventType != "" || len(data) > 0 {
				terminated = true
			}
		case terminated:
			return nil, fmt.Errorf("sse frame continues past its blank-line terminator")
		case strings.HasPrefix(line, ":"):
			// Comment line, ignored per the SSE grammar.
		default:
			field, value, ok := strings.Cut(line, ":")
			if !ok {
				return nil, fmt.Errorf("sse frame line %q: no field separator", line)
			}
			value = strings.TrimPrefix(value, " ")
			switch field {
			case "event":
				eventType = value
			case "data":
				data = append(data, value)
			case "id", "retry":
				// Valid SSE fields this protocol does not use.
			default:
				return nil, fmt.Errorf("sse frame field %q: not part of the subscribe protocol", field)
			}
		}
	}
	if eventType == "" {
		return nil, fmt.Errorf("sse frame without an event field")
	}
	if len(data) == 0 {
		return nil, fmt.Errorf("sse frame without a data field")
	}
	var ev SubscribeEvent
	dec := json.NewDecoder(strings.NewReader(strings.Join(data, "\n")))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&ev); err != nil {
		return nil, fmt.Errorf("sse frame data: %v", err)
	}
	if err := ev.Validate(); err != nil {
		return nil, err
	}
	if ev.Type != eventType {
		return nil, fmt.Errorf("sse frame event field %q does not match payload type %q", eventType, ev.Type)
	}
	return &ev, nil
}

// SSEReader reads subscription frames off a stream, one blank-line-
// terminated frame at a time, decoding each through DecodeSSEFrame.
type SSEReader struct {
	r *bufio.Reader
}

// NewSSEReader wraps a subscription response body.
func NewSSEReader(r io.Reader) *SSEReader {
	return &SSEReader{r: bufio.NewReader(r)}
}

// Next returns the next event, or io.EOF when the stream ends cleanly
// between frames. A stream ending mid-frame is io.ErrUnexpectedEOF.
func (s *SSEReader) Next() (*SubscribeEvent, error) {
	var frame bytes.Buffer
	sawLine := false
	for {
		line, err := s.r.ReadString('\n')
		if err != nil {
			if err == io.EOF && frame.Len() == 0 && line == "" {
				return nil, io.EOF
			}
			if err == io.EOF {
				return nil, io.ErrUnexpectedEOF
			}
			return nil, err
		}
		if line == "\n" || line == "\r\n" {
			if !sawLine {
				// Leading blank lines between frames are padding.
				continue
			}
			return DecodeSSEFrame(frame.Bytes())
		}
		sawLine = true
		frame.WriteString(line)
	}
}

// ItemRankBefore reports whether a ranks strictly before b in the ranked
// form's total order: score descending, then stream ascending, then frame
// ascending. It mirrors the engine's ordering (internal/plan.RankBefore)
// on the wire type; the equivalence is pinned by tests so the two can
// never drift.
func ItemRankBefore(a, b Item) bool {
	if a.Score != b.Score {
		return a.Score > b.Score
	}
	if a.Stream != b.Stream {
		return a.Stream < b.Stream
	}
	return a.Frame < b.Frame
}

// TrackRankBefore mirrors internal/track's ordering on the wire type:
// score descending, then stream, then start time, then track ID.
func TrackRankBefore(a, b TrackItem) bool {
	if a.Score != b.Score {
		return a.Score > b.Score
	}
	if a.Stream != b.Stream {
		return a.Stream < b.Stream
	}
	if a.StartSec != b.StartSec {
		return a.StartSec < b.StartSec
	}
	return a.Track < b.Track
}

// DiffItems computes the edit from one rank-ordered ranked answer to
// another: added holds next's items absent from prev (in rank order),
// removed prev's items absent from next. Equality is whole-struct — a
// frame whose score changed is a removal plus an addition. Diffs compose:
// applying diff(a,b) then diff(b,c) equals applying diff(a,c).
func DiffItems(prev, next []Item) (added, removed []Item) {
	i, j := 0, 0
	for i < len(prev) && j < len(next) {
		switch {
		case prev[i] == next[j]:
			i++
			j++
		case ItemRankBefore(prev[i], next[j]):
			removed = append(removed, prev[i])
			i++
		case ItemRankBefore(next[j], prev[i]):
			added = append(added, next[j])
			j++
		default:
			// Same rank key, different struct: replace.
			removed = append(removed, prev[i])
			added = append(added, next[j])
			i++
			j++
		}
	}
	removed = append(removed, prev[i:]...)
	added = append(added, next[j:]...)
	return added, removed
}

// DiffTracks is DiffItems for the tracks form.
func DiffTracks(prev, next []TrackItem) (added, removed []TrackItem) {
	i, j := 0, 0
	for i < len(prev) && j < len(next) {
		switch {
		case prev[i] == next[j]:
			i++
			j++
		case TrackRankBefore(prev[i], next[j]):
			removed = append(removed, prev[i])
			i++
		case TrackRankBefore(next[j], prev[i]):
			added = append(added, next[j])
			j++
		default:
			removed = append(removed, prev[i])
			added = append(added, next[j])
			i++
			j++
		}
	}
	removed = append(removed, prev[i:]...)
	added = append(added, next[j:]...)
	return added, removed
}

// ApplyDeltaItems applies one ranked-form delta to a reassembled state and
// returns the new state. Every removed item must be present, every added
// item absent, the result must stay rank-ordered, and its length must
// equal the delta's TotalItems — any violation is a protocol error, never
// a silently wrong state.
func ApplyDeltaItems(state []Item, d *Delta) ([]Item, error) {
	out := make([]Item, 0, len(state)+len(d.Items)-len(d.RemovedItems))
	i, r := 0, 0
	for i < len(state) {
		if r < len(d.RemovedItems) && state[i] == d.RemovedItems[r] {
			i++
			r++
			continue
		}
		out = append(out, state[i])
		i++
	}
	if r < len(d.RemovedItems) {
		return nil, fmt.Errorf("delta removes item %+v not present in the reassembled state", d.RemovedItems[r])
	}
	merged := make([]Item, 0, len(out)+len(d.Items))
	i, a := 0, 0
	for i < len(out) && a < len(d.Items) {
		switch {
		case out[i] == d.Items[a]:
			return nil, fmt.Errorf("delta adds item %+v already present in the reassembled state", d.Items[a])
		case ItemRankBefore(out[i], d.Items[a]):
			merged = append(merged, out[i])
			i++
		case ItemRankBefore(d.Items[a], out[i]):
			merged = append(merged, d.Items[a])
			a++
		default:
			return nil, fmt.Errorf("delta adds item %+v colliding with %+v at the same rank", d.Items[a], out[i])
		}
	}
	merged = append(merged, out[i:]...)
	merged = append(merged, d.Items[a:]...)
	if len(merged) != d.TotalItems {
		return nil, fmt.Errorf("reassembled state has %d items, delta declares %d", len(merged), d.TotalItems)
	}
	return merged, nil
}

// ApplyDeltaTracks is ApplyDeltaItems for the tracks form.
func ApplyDeltaTracks(state []TrackItem, d *Delta) ([]TrackItem, error) {
	out := make([]TrackItem, 0, len(state)+len(d.Tracks)-len(d.RemovedTracks))
	i, r := 0, 0
	for i < len(state) {
		if r < len(d.RemovedTracks) && state[i] == d.RemovedTracks[r] {
			i++
			r++
			continue
		}
		out = append(out, state[i])
		i++
	}
	if r < len(d.RemovedTracks) {
		return nil, fmt.Errorf("delta removes track %+v not present in the reassembled state", d.RemovedTracks[r])
	}
	merged := make([]TrackItem, 0, len(out)+len(d.Tracks))
	i, a := 0, 0
	for i < len(out) && a < len(d.Tracks) {
		switch {
		case out[i] == d.Tracks[a]:
			return nil, fmt.Errorf("delta adds track %+v already present in the reassembled state", d.Tracks[a])
		case TrackRankBefore(out[i], d.Tracks[a]):
			merged = append(merged, out[i])
			i++
		case TrackRankBefore(d.Tracks[a], out[i]):
			merged = append(merged, d.Tracks[a])
			a++
		default:
			return nil, fmt.Errorf("delta adds track %+v colliding with %+v at the same rank", d.Tracks[a], out[i])
		}
	}
	merged = append(merged, out[i:]...)
	merged = append(merged, d.Tracks[a:]...)
	if len(merged) != d.TotalItems {
		return nil, fmt.Errorf("reassembled state has %d tracks, delta declares %d", len(merged), d.TotalItems)
	}
	return merged, nil
}

// VectorsEqual reports whether two watermark vectors pin the same horizon:
// same streams, same watermarks.
func VectorsEqual(a, b WatermarkVector) bool {
	if len(a) != len(b) {
		return false
	}
	for n, at := range a {
		bt, ok := b[n]
		if !ok || at != bt {
			return false
		}
	}
	return true
}
