package api

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
)

// Code is a machine-readable error class. Clients branch on codes — retry
// on overloaded, back off and route around draining, surface bad_* to the
// caller — never on message strings, status codes alone, or headers.
type Code string

// The v1 error codes. Every non-2xx v1 response carries exactly one.
const (
	// CodeBadRequest rejects a malformed request (bad JSON, negative
	// parameters, wrong method, conflicting fields).
	CodeBadRequest Code = "bad_request"
	// CodeBadExpr rejects a predicate that does not compile: syntax
	// errors, unknown classes, unanchored negations.
	CodeBadExpr Code = "bad_expr"
	// CodeBadCursor rejects a cursor token that does not decode or that
	// was combined with fields it is supposed to replace.
	CodeBadCursor Code = "bad_cursor"
	// CodeUnknownStream rejects a request naming a stream (in Streams or
	// At) the service does not serve.
	CodeUnknownStream Code = "unknown_stream"
	// CodePinAhead rejects a watermark pin beyond a stream's sealed
	// ingest horizon: the answer there is not yet a pure function of the
	// vector, so serving (and caching) it would be incoherent.
	CodePinAhead Code = "pin_ahead"
	// CodeOverloaded reports admission-control rejection (the query queue
	// is full). Retrying after a short backoff is exactly right.
	CodeOverloaded Code = "overloaded"
	// CodeDraining reports a server (or, via Shard, one shard of a
	// cluster) deliberately leaving rotation for a restart. Load tooling
	// treats it as expected during a rolling restart, unlike other 5xx.
	CodeDraining Code = "draining"
	// CodeShardDown reports a routed request touching a shard that is
	// unreachable or not ready; Shard names it.
	CodeShardDown Code = "shard_down"
	// CodeNotReady reports a server still booting (tuning streams).
	CodeNotReady Code = "not_ready"
	// CodeUnavailable reports a dependency failure that is none of the
	// more specific unavailability codes (e.g. a shard answered garbage).
	CodeUnavailable Code = "unavailable"
	// CodeInternal reports an unexpected server-side execution failure.
	CodeInternal Code = "internal"
)

// Error is the structured error every non-2xx v1 response carries,
// wrapped in an Envelope. It implements the error interface, so the typed
// client returns it directly.
type Error struct {
	// Code is the machine-readable class.
	Code Code `json:"code"`
	// Message is the human-readable detail. Not a contract surface:
	// clients must branch on Code.
	Message string `json:"message"`
	// Shard names the shard behind a routed failure (draining, shard_down
	// and shard-attributed overloaded/unavailable errors).
	Shard string `json:"shard,omitempty"`
}

// Error implements the error interface.
func (e *Error) Error() string {
	if e.Shard != "" {
		return fmt.Sprintf("%s (shard %s): %s", e.Code, e.Shard, e.Message)
	}
	return fmt.Sprintf("%s: %s", e.Code, e.Message)
}

// HTTPStatus maps the code to the response status the server writes (and
// the client saw).
func (e *Error) HTTPStatus() int {
	switch e.Code {
	case CodeBadRequest, CodeBadExpr, CodeBadCursor, CodeUnknownStream, CodePinAhead:
		return http.StatusBadRequest
	case CodeOverloaded:
		return http.StatusTooManyRequests
	case CodeDraining, CodeShardDown, CodeNotReady, CodeUnavailable:
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

// Errorf builds an *Error with a formatted message.
func Errorf(code Code, format string, args ...any) *Error {
	return &Error{Code: code, Message: fmt.Sprintf(format, args...)}
}

// IsCode reports whether err is an *Error carrying the given code.
func IsCode(err error, code Code) bool {
	e, ok := err.(*Error)
	return ok && e.Code == code
}

// Envelope is the wire shape of every non-2xx v1 body:
// {"error":{"code":...,"message":...}}.
type Envelope struct {
	// Err is the structured error.
	Err *Error `json:"error"`
}

// DecodeError reconstructs the *Error of a non-2xx response from its
// status and body. Bodies that are not a v1 envelope (a proxy's HTML 502,
// a legacy string error) degrade to a code inferred from the status with
// the raw body as the message, so callers always get a usable *Error.
func DecodeError(status int, body []byte) *Error {
	var env Envelope
	if err := json.Unmarshal(body, &env); err == nil && env.Err != nil && env.Err.Code != "" {
		return env.Err
	}
	msg := strings.TrimSpace(string(body))
	if msg == "" {
		msg = http.StatusText(status)
	}
	var code Code
	switch status {
	case http.StatusBadRequest:
		code = CodeBadRequest
	case http.StatusTooManyRequests:
		code = CodeOverloaded
	case http.StatusServiceUnavailable:
		code = CodeUnavailable
	default:
		code = CodeInternal
	}
	return &Error{Code: code, Message: msg}
}
