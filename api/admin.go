package api

import "encoding/json"

// This file defines the v1 admin wire contract behind live resharding: the
// shard-to-shard stream-handoff endpoints a coordinator drives on
// focus-serve processes, and the reshard endpoint on the router that
// drives them. Like /drain, the admin surface shares the query listener
// and carries no authentication: deployments must keep it inside the
// trust boundary (OPERATIONS.md §7).

// The admin endpoint paths. Seal, resume, export, import, activate and
// release are served by focus-serve shards; reshard by the router.
const (
	// PathAdminSeal parks a stream's ingestion at a watermark boundary
	// after a durable checkpoint, so its state can be exported while the
	// answer surface stays frozen and consistent.
	PathAdminSeal = "/v1/admin/seal"
	// PathAdminResume releases a sealed stream back to normal ingestion
	// (the abort path of a handoff).
	PathAdminResume = "/v1/admin/resume"
	// PathAdminExport returns a sealed stream's checkpoint records — the
	// shard-to-shard handoff payload.
	PathAdminExport = "/v1/admin/export"
	// PathAdminImport restores an exported stream on the destination
	// shard, hidden from queries and ownership reports until activated.
	PathAdminImport = "/v1/admin/import"
	// PathAdminActivate unhides an imported stream and resumes its live
	// ingestion tail on the destination shard.
	PathAdminActivate = "/v1/admin/activate"
	// PathAdminRelease removes a stream from a shard: subscriptions end
	// with a typed "moved" bye, the session is unregistered, and its store
	// records are deleted. The source side of a completed handoff, and the
	// destination side of an aborted one.
	PathAdminRelease = "/v1/admin/release"
	// PathAdminReshard is the router's admin surface: POST a target shard
	// map and the router executes the placement diff as live per-stream
	// handoffs.
	PathAdminReshard = "/v1/admin/reshard"
)

// AdminStreamRequest names the stream an admin verb operates on. Seal,
// resume, activate, release and export all take this body.
type AdminStreamRequest struct {
	// Stream is the target stream name.
	Stream string `json:"stream"`
}

// SealResponse reports the outcome of PathAdminSeal: the watermark the
// stream is parked at and its current ownership epoch.
type SealResponse struct {
	// Stream echoes the sealed stream.
	Stream string `json:"stream"`
	// Watermark is the sealed ingest horizon; the stream's answers are
	// frozen at this boundary until it is resumed or released.
	Watermark float64 `json:"watermark"`
	// Epoch is the stream's current ownership epoch on this shard; a
	// handoff installs Epoch+1 on the destination.
	Epoch uint64 `json:"epoch"`
}

// HandoffRecord is one embedded-store record of a stream's handoff
// payload. Values are raw store bytes (base64 on the wire).
type HandoffRecord struct {
	// Key is the store key.
	Key string `json:"key"`
	// Value is the record's raw bytes.
	Value []byte `json:"value"`
}

// StreamExport is the handoff payload PathAdminExport returns and
// PathAdminImport consumes: everything a destination shard needs to serve
// the stream bit-identically from the sealed watermark onward.
type StreamExport struct {
	// Stream is the stream name.
	Stream string `json:"stream"`
	// Spec is the stream's generative spec (the serve layer's JSON
	// encoding of focus.StreamSpec), opaque at this layer.
	Spec json.RawMessage `json:"spec"`
	// Watermark is the sealed horizon the records capture.
	Watermark float64 `json:"watermark"`
	// Epoch is the ownership epoch the destination must install — the
	// coordinator sets it to the source epoch + 1 before importing, so
	// duplicate ownership reports during the cutover resolve to the
	// destination.
	Epoch uint64 `json:"epoch"`
	// Records are the stream's checkpoint records: index metadata, the
	// committed cluster records, and the snapshot commit point.
	Records []HandoffRecord `json:"records"`
}

// AdminShardSpec names one shard of a proposed shard map.
type AdminShardSpec struct {
	// Name is the shard's stable identity (rendezvous hashing keys on it).
	Name string `json:"name"`
	// URL is the shard's base URL.
	URL string `json:"url"`
}

// AdminShardMap is the wire form of a shard map: the same JSON shape as
// the router's shard-map file (shards + optional pins).
type AdminShardMap struct {
	// Shards is the shard roster.
	Shards []AdminShardSpec `json:"shards"`
	// Pins force named streams onto named shards.
	Pins map[string]string `json:"pins,omitempty"`
}

// ReshardRequest is the body of PathAdminReshard: the target shard map
// the router should transition the cluster to.
type ReshardRequest struct {
	// Map is the target placement.
	Map AdminShardMap `json:"map"`
	// DryRun computes and returns the move plan without executing it.
	DryRun bool `json:"dry_run,omitempty"`
}

// Reshard move states reported in ReshardMove.State.
const (
	// MoveDone: the stream was handed off and ownership flipped.
	MoveDone = "done"
	// MoveFailed: the handoff failed before the ownership flip and was
	// aborted; the source still owns the stream.
	MoveFailed = "failed"
	// MovePlanned: reported by dry runs — the stream would move.
	MovePlanned = "planned"
)

// ReshardMove is one stream's transition in a reshard: where it was, where
// it went, and how the handoff ended.
type ReshardMove struct {
	// Stream is the moved stream.
	Stream string `json:"stream"`
	// From and To name the source and destination shards.
	From string `json:"from"`
	To   string `json:"to"`
	// State is MoveDone, MoveFailed, or MovePlanned.
	State string `json:"state"`
	// Watermark is the sealed boundary the ownership flipped at (done
	// moves only).
	Watermark float64 `json:"watermark,omitempty"`
	// Epoch is the ownership epoch installed on the destination (done
	// moves only).
	Epoch uint64 `json:"epoch,omitempty"`
	// Error carries the failure detail of a failed move.
	Error string `json:"error,omitempty"`
}

// ReshardResponse reports a reshard's outcome: the per-stream moves (empty
// when the target map changes nothing) and summary counts.
type ReshardResponse struct {
	// Moves are the per-stream transitions, in execution order.
	Moves []ReshardMove `json:"moves"`
	// Moved and Failed count completed and failed handoffs; DryRun echoes
	// the request's flag.
	Moved  int  `json:"moved"`
	Failed int  `json:"failed"`
	DryRun bool `json:"dry_run,omitempty"`
}
