package focus

import (
	"fmt"

	"focus/internal/plan"
)

// Compound (multi-class boolean) queries: the plan layer composes the
// single-class primitives into predicates like "car & person & !bus",
// executed across streams with the same watermark-pinning contract as
// Query. See internal/plan for the execution model.

// PlanOptions tune one compound-query execution.
type PlanOptions struct {
	// Streams restricts the plan to these stream names; empty = every
	// ingested stream.
	Streams []string
	// TopK caps the ranked result; 0 returns every matching frame.
	TopK int
	// Leaf applies to every predicate leaf that does not carry its own
	// options: Kx, StartSec/EndSec and MaxClusters have query.Options
	// semantics. (AtSec inside Leaf is ignored; watermarks come from AtSec
	// / AtWatermarks below.)
	Leaf QueryOptions
	// AtSec, when positive, pins every stream to that ingest watermark;
	// zero queries everything indexed so far; negative pins to the empty
	// horizon. Same semantics as QueryOptions.AtSec.
	AtSec float64
	// AtWatermarks pins individual streams, overriding AtSec, exactly like
	// Query.AtWatermarks — the serve layer passes the vector it snapshotted
	// at admission.
	AtWatermarks map[string]float64
	// StepClusters is the per-leaf cluster budget each paging refinement
	// round adds (0 = default).
	StepClusters int
	// Workers bounds the cross-stream fan-out; 0 = one worker per stream,
	// 1 = the sequential reference. Results are bit-identical either way.
	Workers int
	// EarlyExit opts into the approximate ExSample-style mode: GT-CNN
	// verification budget is allocated to the streams where results have
	// been surfacing (Thompson sampling over per-stream discovery rates)
	// and execution stops as soon as TopK verified items are in hand.
	// Requires TopK >= 1. Every returned item is still GT-verified with
	// its exact-mode score, and the answer is deterministic per (plan,
	// options, watermark vector) — but it is the top of the discovered
	// set, not necessarily the global top K. See internal/plan's
	// ExecuteEarlyExit for the full contract.
	EarlyExit bool
}

// PlanItem is one ranked compound-query result.
type PlanItem = plan.Item

// PlanResult is a completed compound-query execution.
type PlanResult = plan.Result

// PlanCursor pages through a compound query's ranked results.
type PlanCursor = plan.Cursor

// Re-exported AST types so applications can build plans with per-leaf
// options (which the text syntax cannot spell) from the root package:
//
//	sys.CompilePlanExpr(&focus.PlanAnd{Children: []focus.PlanExpr{
//	    &focus.PlanLeaf{Class: "car", Opts: focus.PlanLeafOptions{EndSec: 120}},
//	    &focus.PlanNot{Child: &focus.PlanLeaf{Class: "bus"}},
//	}})
type (
	// PlanExpr is a predicate AST node (leaf, and, or, not).
	PlanExpr = plan.Expr
	// PlanLeaf is one single-class predicate with optional leaf options.
	PlanLeaf = plan.Leaf
	// PlanAnd is a conjunction of predicates.
	PlanAnd = plan.And
	// PlanOr is a disjunction of predicates.
	PlanOr = plan.Or
	// PlanNot negates a predicate.
	PlanNot = plan.Not
	// PlanLeafOptions are per-leaf retrieval knobs (Kx, window, budget).
	PlanLeafOptions = plan.LeafOptions
)

// CompilePlan parses and compiles a predicate expression ("car & person &
// !bus") against this system's class space.
func (s *System) CompilePlan(expr string) (*plan.Plan, error) {
	ast, err := plan.Parse(expr)
	if err != nil {
		return nil, err
	}
	return plan.Compile(ast, s.ClassID)
}

// CompilePlanExpr compiles a caller-built AST (the way to attach per-leaf
// windows or budgets, which the text syntax cannot spell).
func (s *System) CompilePlanExpr(e plan.Expr) (*plan.Plan, error) {
	return plan.Compile(e, s.ClassID)
}

// planTargets resolves the streams and watermark vector a plan executes
// against, mirroring Query's per-stream pinning.
func (s *System) planTargets(opts PlanOptions) ([]plan.Target, error) {
	names := opts.Streams
	if len(names) == 0 {
		for _, sess := range s.Sessions() {
			if sess.queryEngine() != nil {
				names = append(names, sess.Name())
			}
		}
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("focus: no ingested streams to query")
	}
	seen := make(map[string]bool, len(names))
	targets := make([]plan.Target, len(names))
	for i, name := range names {
		if seen[name] {
			// A duplicate would execute the stream twice and emit every
			// matching frame twice into the merged ranking.
			return nil, fmt.Errorf("focus: stream %q listed twice in plan streams", name)
		}
		seen[name] = true
		sess := s.Session(name)
		if sess == nil {
			return nil, fmt.Errorf("focus: unknown stream %q", name)
		}
		engine := sess.queryEngine()
		if engine == nil {
			return nil, fmt.Errorf("focus: stream %q has not been ingested", name)
		}
		at := opts.AtSec
		if v, ok := opts.AtWatermarks[name]; ok {
			at = v
			if at <= 0 {
				// Watermark 0 means nothing is sealed yet: pin to the empty
				// horizon instead of falling back to "unbounded".
				at = -1
			}
		}
		targets[i] = plan.Target{
			Stream:    name,
			Engine:    engine,
			Watermark: at,
			NumGPUs:   s.cfg.NumGPUs,
		}
	}
	return targets, nil
}

func (s *System) planExecOptions(opts PlanOptions) plan.Options {
	return plan.Options{
		TopK: opts.TopK,
		DefaultLeaf: plan.LeafOptions{
			Kx:          opts.Leaf.Kx,
			StartSec:    opts.Leaf.StartSec,
			EndSec:      opts.Leaf.EndSec,
			MaxClusters: opts.Leaf.MaxClusters,
		},
		StepClusters: opts.StepClusters,
		Workers:      opts.Workers,
	}
}

// ExecutePlan runs a compiled plan to completion (or to TopK) across the
// selected streams and returns the confidence-ranked result. At a fixed
// watermark vector the answer is a pure function of (plan, options,
// vector), so it can be cached exactly like a single-class query.
func (s *System) ExecutePlan(p *plan.Plan, opts PlanOptions) (*PlanResult, error) {
	targets, err := s.planTargets(opts)
	if err != nil {
		return nil, err
	}
	if opts.EarlyExit {
		return plan.ExecuteEarlyExit(p, targets, s.planExecOptions(opts))
	}
	return plan.Execute(p, targets, s.planExecOptions(opts))
}

// NewPlanCursor starts a paged execution of a compiled plan: Next(n)
// returns the next n items of the final ranking, extending the per-leaf
// cluster budgets only as far as each page needs. Pages concatenate to
// exactly what ExecutePlan returns for the same options and watermark
// vector.
func (s *System) NewPlanCursor(p *plan.Plan, opts PlanOptions) (*PlanCursor, error) {
	if opts.EarlyExit {
		// Early-exit answers are bounded by TopK and materialize in one
		// shot; the serve layer pages the materialized result instead.
		return nil, fmt.Errorf("focus: early-exit mode has no incremental cursor (execute the plan and page the result)")
	}
	targets, err := s.planTargets(opts)
	if err != nil {
		return nil, err
	}
	return plan.NewCursor(p, targets, s.planExecOptions(opts))
}

// PlanQuery compiles and executes a predicate expression in one call:
// sys.PlanQuery("car & person & !bus", focus.PlanOptions{TopK: 10}).
func (s *System) PlanQuery(expr string, opts PlanOptions) (*PlanResult, error) {
	p, err := s.CompilePlan(expr)
	if err != nil {
		return nil, err
	}
	return s.ExecutePlan(p, opts)
}

// PlanCursor compiles a predicate expression and starts a paged execution.
func (s *System) PlanCursor(expr string, opts PlanOptions) (*PlanCursor, error) {
	p, err := s.CompilePlan(expr)
	if err != nil {
		return nil, err
	}
	return s.NewPlanCursor(p, opts)
}

// PlanQuery runs a compound query against this stream only.
func (sess *Session) PlanQuery(expr string, opts PlanOptions) (*PlanResult, error) {
	opts.Streams = []string{sess.Name()}
	return sess.sys.PlanQuery(expr, opts)
}

// PlanCursor starts a paged compound query against this stream only.
func (sess *Session) PlanCursor(expr string, opts PlanOptions) (*PlanCursor, error) {
	opts.Streams = []string{sess.Name()}
	return sess.sys.PlanCursor(expr, opts)
}
