package focus

import (
	"path/filepath"
	"testing"

	"focus/internal/baseline"
	"focus/internal/stats"
	"focus/internal/video"
	"focus/internal/vision"
)

// testWindow is the stream window integration tests run over: long enough
// for stable statistics, short enough to keep the suite fast.
var testWindow = GenOptions{DurationSec: 180, SampleEvery: 1}

func newTestSystem(t testing.TB, cfg Config) *System {
	t.Helper()
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sys.Close() })
	return sys
}

func TestConfigDefaults(t *testing.T) {
	sys := newTestSystem(t, Config{})
	if sys.cfg.Seed != 1 || sys.cfg.NumGPUs != DefaultNumGPUs {
		t.Errorf("defaults not applied: %+v", sys.cfg)
	}
	if sys.cfg.Targets.Recall != 0.95 || sys.cfg.Policy != Balance {
		t.Errorf("defaults not applied: %+v", sys.cfg)
	}
}

func TestAddStreamValidation(t *testing.T) {
	sys := newTestSystem(t, Config{})
	if _, err := sys.AddTable1Stream("no_such_stream"); err == nil {
		t.Error("unknown stream accepted")
	}
	if _, err := sys.AddTable1Stream("bend"); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.AddTable1Stream("bend"); err == nil {
		t.Error("duplicate stream accepted")
	}
	if sys.Session("bend") == nil || sys.Session("absent") != nil {
		t.Error("Session lookup wrong")
	}
}

func TestClassID(t *testing.T) {
	sys := newTestSystem(t, Config{})
	id, err := sys.ClassID("car")
	if err != nil || id != 0 {
		t.Errorf("ClassID(car) = %v, %v", id, err)
	}
	if _, err := sys.ClassID("warp_drive"); err == nil {
		t.Error("unknown class accepted")
	}
}

func TestQueryBeforeIngestFails(t *testing.T) {
	sys := newTestSystem(t, Config{})
	sess, err := sys.AddTable1Stream("bend")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.QueryClass(0, QueryOptions{}); err == nil {
		t.Error("query before ingest succeeded")
	}
	if _, err := sys.Query(Query{Class: "car"}); err == nil {
		t.Error("system query with no ingested streams succeeded")
	}
}

// TestEndToEndMeetsTargets is the headline integration test: tune, ingest
// and query a stream, then verify against GT-CNN ground truth that the
// configured accuracy targets hold and that Focus beats both baselines by
// the order of magnitude the paper reports.
func TestEndToEndMeetsTargets(t *testing.T) {
	if testing.Short() {
		t.Skip("slow end-to-end test; nightly runs the full suite")
	}
	sys := newTestSystem(t, Config{})
	sess, err := sys.AddTable1Stream("auburn_c")
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Ingest(testWindow); err != nil {
		t.Fatal(err)
	}

	// Ground truth over the same window.
	st, err := sess.freshStream()
	if err != nil {
		t.Fatal(err)
	}
	truth, err := stats.ComputeGroundTruth(st, sys.Space(), sys.Zoo().GT, testWindow)
	if err != nil {
		t.Fatal(err)
	}

	ingestStats := sess.IngestStats()
	if ingestStats.Sightings != truth.TotalSightings {
		t.Fatalf("ingest saw %d sightings, truth %d", ingestStats.Sightings, truth.TotalSightings)
	}

	// Accuracy per dominant class (the paper's evaluation protocol, §6.1),
	// with a small slack for sampling error between the tuner's estimate
	// window and the full window.
	const slack = 0.03
	var agg stats.PRStats
	queryAll := baseline.QueryAllLatencyMS(sys.Zoo().GT, truth.TotalSightings, sys.cfg.NumGPUs)
	var latencies []float64
	for _, c := range truth.DominantClasses(3) {
		res, err := sess.QueryClass(c, QueryOptions{})
		if err != nil {
			t.Fatal(err)
		}
		pr := truth.EvaluateFrames(c, res.Frames)
		agg.Add(pr)
		latencies = append(latencies, res.LatencyMS)
		if pr.Recall() < sys.cfg.Targets.Recall-slack {
			t.Errorf("class %s: recall %.3f below target %.2f",
				sys.Space().Name(c), pr.Recall(), sys.cfg.Targets.Recall)
		}
		if pr.Precision() < sys.cfg.Targets.Precision-slack {
			t.Errorf("class %s: precision %.3f below target %.2f",
				sys.Space().Name(c), pr.Precision(), sys.cfg.Targets.Precision)
		}
	}
	if agg.Recall() < sys.cfg.Targets.Recall-slack/2 {
		t.Errorf("aggregate recall %.3f below target", agg.Recall())
	}

	// Ingest factor: an order of magnitude or more cheaper than Ingest-all
	// (paper: 48–98× under Balance).
	ingestAll := baseline.IngestAllGPUMS(sys.Zoo().GT, truth.TotalSightings)
	ingestFactor := ingestAll / ingestStats.IngestGPUMS
	if ingestFactor < 10 {
		t.Errorf("ingest only %.1f× cheaper than Ingest-all", ingestFactor)
	}
	// Query factor: mean latency across dominant classes well below
	// Query-all (paper: 11–57×).
	meanLatency := stats.Mean(latencies)
	if meanLatency <= 0 {
		t.Fatal("zero query latency")
	}
	queryFactor := queryAll / meanLatency
	if queryFactor < 8 {
		t.Errorf("query only %.1f× faster than Query-all", queryFactor)
	}
	t.Logf("auburn_c: ingest %.0f× cheaper, query %.0f× faster, recall %.3f precision %.3f",
		ingestFactor, queryFactor, agg.Recall(), agg.Precision())
}

func TestTuneSelectsViableConfig(t *testing.T) {
	if testing.Short() {
		t.Skip("slow end-to-end test; nightly runs the full suite")
	}
	sys := newTestSystem(t, Config{})
	sess, err := sys.AddTable1Stream("jacksonh")
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Tune(testWindow); err != nil {
		t.Fatal(err)
	}
	sel := sess.Selection()
	if sel == nil {
		t.Fatal("no selection after Tune")
	}
	if !sel.Chosen.Viable(sys.cfg.Targets) {
		t.Error("chosen config not viable")
	}
	if len(sel.Pareto) == 0 || len(sel.Viable) < len(sel.Pareto) {
		t.Error("pareto/viable sets inconsistent")
	}
	// Tuning charges GT sampling to the training meter.
	if sys.GPUMeter().TrainMS <= 0 {
		t.Error("estimation GPU time not accounted")
	}
}

func TestPolicyTradeoffEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("slow end-to-end test; nightly runs the full suite")
	}
	// Figure 1: Opt-Ingest ingests cheaper but queries slower than
	// Opt-Query, with Balance in between, all meeting targets.
	type outcome struct {
		ingestMS float64
		queryMS  float64
	}
	run := func(policy Policy) outcome {
		sys := newTestSystem(t, Config{Policy: policy})
		sess, err := sys.AddTable1Stream("auburn_c")
		if err != nil {
			t.Fatal(err)
		}
		if err := sess.Ingest(testWindow); err != nil {
			t.Fatal(err)
		}
		st, _ := sess.freshStream()
		truth, err := stats.ComputeGroundTruth(st, sys.Space(), sys.Zoo().GT, testWindow)
		if err != nil {
			t.Fatal(err)
		}
		var lat []float64
		for _, c := range truth.DominantClasses(3) {
			res, err := sess.QueryClass(c, QueryOptions{})
			if err != nil {
				t.Fatal(err)
			}
			lat = append(lat, res.LatencyMS)
		}
		return outcome{ingestMS: sess.IngestStats().IngestGPUMS, queryMS: stats.Mean(lat)}
	}
	oi := run(OptIngest)
	ob := run(Balance)
	oq := run(OptQuery)
	if oi.ingestMS > ob.ingestMS*1.001 || ob.ingestMS > oq.ingestMS*1.001 {
		t.Errorf("ingest ordering violated: optI=%.0f balance=%.0f optQ=%.0f",
			oi.ingestMS, ob.ingestMS, oq.ingestMS)
	}
	if oq.queryMS > ob.queryMS*1.001 {
		t.Errorf("query ordering violated: balance=%.0f optQ=%.0f", ob.queryMS, oq.queryMS)
	}
}

func TestCrossStreamQuery(t *testing.T) {
	sys := newTestSystem(t, Config{})
	short := GenOptions{DurationSec: 120, SampleEvery: 1}
	for _, name := range []string{"auburn_c", "bend"} {
		sess, err := sys.AddTable1Stream(name)
		if err != nil {
			t.Fatal(err)
		}
		if err := sess.Ingest(short); err != nil {
			t.Fatal(err)
		}
	}
	res, err := sys.Query(Query{Class: "car"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerStream) != 2 {
		t.Fatalf("queried %d streams", len(res.PerStream))
	}
	if res.TotalFrames == 0 {
		t.Error("no frames for cars on traffic streams")
	}
	// Latency is the max across per-stream worker latencies.
	var max, sum float64
	for _, sr := range res.PerStream {
		if sr.LatencyMS > max {
			max = sr.LatencyMS
		}
		sum += sr.GPUTimeMS
	}
	if res.LatencyMS != max {
		t.Errorf("latency %.1f != max %.1f", res.LatencyMS, max)
	}
	if res.GPUTimeMS != sum {
		t.Errorf("gpu %.1f != sum %.1f", res.GPUTimeMS, sum)
	}
	// Restricting to one stream works.
	one, err := sys.Query(Query{Class: "car", Streams: []string{"bend"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(one.PerStream) != 1 {
		t.Error("stream restriction ignored")
	}
	if _, err := sys.Query(Query{Class: "car", Streams: []string{"ghost"}}); err == nil {
		t.Error("unknown stream accepted")
	}
}

func TestIndexPersistenceRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "focus.kv")
	short := GenOptions{DurationSec: 120, SampleEvery: 1}

	sys := newTestSystem(t, Config{StorePath: path})
	sess, err := sys.AddTable1Stream("auburn_c")
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Ingest(short); err != nil {
		t.Fatal(err)
	}
	want, err := sess.QueryClass(0, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}

	// A new system loads the persisted index and answers identically.
	sys2 := newTestSystem(t, Config{StorePath: path})
	sess2, err := sys2.AddTable1Stream("auburn_c")
	if err != nil {
		t.Fatal(err)
	}
	if err := sess2.LoadIndex(); err != nil {
		t.Fatal(err)
	}
	got, err := sess2.QueryClass(0, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Frames) != len(want.Frames) {
		t.Fatalf("frames %d != %d after reload", len(got.Frames), len(want.Frames))
	}
	for i := range got.Frames {
		if got.Frames[i] != want.Frames[i] {
			t.Fatal("frame sets differ after reload")
		}
	}
}

func TestLoadIndexWithoutStore(t *testing.T) {
	sys := newTestSystem(t, Config{})
	sess, err := sys.AddTable1Stream("bend")
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.LoadIndex(); err == nil {
		t.Error("LoadIndex without a store succeeded")
	}
}

func TestDynamicKxReducesLatency(t *testing.T) {
	if testing.Short() {
		t.Skip("slow end-to-end test; nightly runs the full suite")
	}
	sys := newTestSystem(t, Config{})
	sess, err := sys.AddTable1Stream("auburn_c")
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Ingest(testWindow); err != nil {
		t.Fatal(err)
	}
	if sess.Selection().Chosen.K < 2 {
		t.Skip("chosen K too small to cut")
	}
	full, err := sess.QueryClass(0, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Fresh system so cached verdicts do not mask the effect.
	sys2 := newTestSystem(t, Config{})
	sess2, _ := sys2.AddTable1Stream("auburn_c")
	if err := sess2.Ingest(testWindow); err != nil {
		t.Fatal(err)
	}
	cut, err := sess2.QueryClass(0, QueryOptions{Kx: 1})
	if err != nil {
		t.Fatal(err)
	}
	if cut.ExaminedClusters > full.ExaminedClusters {
		t.Errorf("Kx=1 examined %d > full %d", cut.ExaminedClusters, full.ExaminedClusters)
	}
	if len(cut.Frames) > len(full.Frames) {
		t.Error("Kx cut returned more frames than full K")
	}
}

func TestOtherClassQueryEndToEnd(t *testing.T) {
	// §4.3: with a specialized ingest model, querying a class outside Ls
	// must still work through the OTHER postings.
	sys := newTestSystem(t, Config{})
	sess, err := sys.AddTable1Stream("auburn_c")
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Ingest(testWindow); err != nil {
		t.Fatal(err)
	}
	chosen := sess.Selection().Chosen
	if !chosen.Model.Specialized {
		t.Skip("tuner picked a generic model; no OTHER routing to test")
	}
	// Find a class present in ground truth but outside the specialized set.
	st, _ := sess.freshStream()
	truth, err := stats.ComputeGroundTruth(st, sys.Space(), sys.Zoo().GT, testWindow)
	if err != nil {
		t.Fatal(err)
	}
	var rare vision.ClassID = -999
	for _, c := range truth.PresentClasses() {
		if !chosen.Model.Recognizes(c) {
			rare = c
			break
		}
	}
	if rare == -999 {
		t.Skip("no out-of-Ls class present in window")
	}
	res, err := sess.QueryClass(rare, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.ViaOther {
		t.Error("query for unspecialized class not routed via OTHER")
	}
	pr := truth.EvaluateFrames(rare, res.Frames)
	// OTHER-routed queries are still verified by the GT-CNN, so precision
	// holds even for rare classes; recall depends on OTHER detection.
	if pr.Precision() < 0.85 {
		t.Errorf("OTHER-routed precision %.3f", pr.Precision())
	}
}

func TestTimeRangedQuery(t *testing.T) {
	sys := newTestSystem(t, Config{})
	sess, err := sys.AddTable1Stream("auburn_c")
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Ingest(testWindow); err != nil {
		t.Fatal(err)
	}
	full, err := sess.QueryClass(0, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	half, err := sess.QueryClass(0, QueryOptions{StartSec: 0, EndSec: testWindow.DurationSec / 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(half.Frames) >= len(full.Frames) {
		t.Skip("no cars in second half; cannot compare")
	}
	for _, f := range half.Frames {
		if float64(f)/video.NativeFPS > testWindow.DurationSec/2 {
			t.Fatalf("frame %d outside requested window", f)
		}
	}
}
