// Command focus-router fronts a sharded focus-serve cluster: it loads a
// shard map (or builds one from -shards), discovers which streams each
// shard serves, health-checks them in the background, and answers POST
// /v1/query by scatter-gather — speaking the same v1 wire contract
// (focus/api) to clients and to shards, merging failures by structured
// error code — with answers bit-identical to a single focus-serve holding
// every stream. See OPERATIONS.md for the deployment runbook and the
// shard-map file format.
//
// Usage:
//
//	focus-router -addr :7070 -map cluster.json
//	focus-router -addr :7070 -shards shard-0=http://127.0.0.1:7071,shard-1=http://127.0.0.1:7072
//	focus-router -map cluster.json -print-assignment auburn_c,jacksonh,city_a_d
//
// Endpoints: POST /v1/query (cursor paging over the merged ranking), GET
// /v1/streams (shard-annotated), GET /v1/stats (router counters +
// per-shard health), the deprecated GET /query and POST /plan shims
// (same legacy wire format as focus-serve's shims), and GET /healthz
// (ok / degraded / unavailable).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"focus/internal/router"
)

func main() {
	addr := flag.String("addr", ":7070", "listen address")
	mapPath := flag.String("map", "", "shard-map JSON file (see OPERATIONS.md)")
	shardsArg := flag.String("shards", "", "inline shard roster: name=url,name=url (alternative to -map)")
	refresh := flag.Duration("refresh", 2*time.Second, "shard health/ownership poll interval")
	timeout := flag.Duration("timeout", 30*time.Second, "per-shard request timeout")
	shardRetries := flag.Int("shard-retries", 2, "per-shard sub-request retries on transient failures (transport errors, 429, typed unavailable/not_ready); negative disables")
	shardBackoff := flag.Duration("shard-backoff", 50*time.Millisecond, "base backoff between sub-request retries (doubled per attempt, jittered, Retry-After honored)")
	probationPolls := flag.Int("probation-polls", 3, "consecutive healthy polls a recovered shard must string together before it is routed to again")
	strict := flag.Bool("strict-placement", false, "fail startup when a shard serves streams the map assigns elsewhere")
	printAssignment := flag.String("print-assignment", "", "print the map's shard assignment for these comma-separated streams and exit")
	diffMap := flag.String("diff-map", "", "with -print-assignment: also load this target shard-map JSON and print which of the streams would move (reshard planning, offline)")
	flag.Parse()

	m, err := loadMap(*mapPath, *shardsArg)
	if err != nil {
		log.Fatalf("focus-router: %v", err)
	}

	if *printAssignment != "" {
		// Operator tool: derive each shard's -streams flag from the map
		// before any process is booted.
		byShard := make(map[string][]string)
		for _, st := range splitCSV(*printAssignment) {
			shard := m.Assign(st)
			byShard[shard.Name] = append(byShard[shard.Name], st)
		}
		names := make([]string, 0, len(byShard))
		for n := range byShard {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			sort.Strings(byShard[n])
			spec, _ := m.Shard(n)
			fmt.Printf("%s\t%s\t-streams %s\n", n, spec.URL, strings.Join(byShard[n], ","))
		}
		if *diffMap != "" {
			// Reshard planning: diff this map's assignment against the
			// target map's, stream by stream — the offline preview of what
			// POST /v1/admin/reshard would move.
			target, err := router.LoadShardMap(*diffMap)
			if err != nil {
				log.Fatalf("focus-router: -diff-map: %v", err)
			}
			streams := splitCSV(*printAssignment)
			sort.Strings(streams)
			moves := 0
			for _, st := range streams {
				from, to := m.Assign(st), target.Assign(st)
				if from.Name == to.Name {
					continue
				}
				moves++
				fmt.Printf("move\t%s\t%s -> %s\n", st, from.Name, to.Name)
			}
			fmt.Printf("%d of %d streams would move\n", moves, len(streams))
		}
		return
	}
	if *diffMap != "" {
		log.Fatalf("focus-router: -diff-map requires -print-assignment (it is an offline planning tool)")
	}

	rt, err := router.New(router.Config{
		Map:             m,
		Refresh:         *refresh,
		Timeout:         *timeout,
		ShardRetries:    *shardRetries,
		ShardBackoff:    *shardBackoff,
		ProbationPolls:  *probationPolls,
		StrictPlacement: *strict,
	})
	if err != nil {
		log.Fatalf("focus-router: %v", err)
	}
	log.Printf("focus-router: discovering %d shards…", len(m.Shards))
	if err := rt.Start(); err != nil {
		log.Fatalf("focus-router: %v", err)
	}
	defer rt.Stop()
	for _, sh := range rt.Snapshot().Shards {
		log.Printf("focus-router: shard %s (%s) %s, owns %s",
			sh.Name, sh.URL, sh.State, strings.Join(sh.Streams, ","))
	}

	httpSrv := &http.Server{Addr: *addr, Handler: rt.Handler()}
	go func() {
		log.Printf("focus-router: listening on %s", *addr)
		if err := httpSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			log.Fatalf("focus-router: %v", err)
		}
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Print("focus-router: shutting down")
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		log.Printf("focus-router: shutdown: %v", err)
	}
}

// loadMap builds the shard map from exactly one of -map / -shards.
func loadMap(mapPath, shardsArg string) (*router.ShardMap, error) {
	switch {
	case mapPath != "" && shardsArg != "":
		return nil, fmt.Errorf("give either -map or -shards, not both")
	case mapPath != "":
		return router.LoadShardMap(mapPath)
	case shardsArg != "":
		m := &router.ShardMap{}
		for _, ent := range splitCSV(shardsArg) {
			name, url, ok := strings.Cut(ent, "=")
			if !ok {
				return nil, fmt.Errorf("bad -shards entry %q: want name=url", ent)
			}
			m.Shards = append(m.Shards, router.ShardSpec{Name: name, URL: url})
		}
		if err := m.Validate(); err != nil {
			return nil, err
		}
		return m, nil
	default:
		return nil, fmt.Errorf("one of -map or -shards is required")
	}
}

func splitCSV(s string) []string {
	var out []string
	for _, v := range strings.Split(s, ",") {
		if v = strings.TrimSpace(v); v != "" {
			out = append(out, v)
		}
	}
	return out
}
