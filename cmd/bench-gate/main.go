// Command bench-gate is the CI bench-regression gate: it compares the most
// recent run in a fresh BENCH_parallel.json trajectory against the
// committed baseline floors and exits non-zero when any scaling point lost
// more than the baseline's tolerance (or stopped being bit-identical to the
// sequential reference).
//
// Usage:
//
//	bench-gate -fresh BENCH_parallel.json -baseline ci/bench-baseline.json
package main

import (
	"flag"
	"fmt"
	"os"

	"focus/internal/scalebench"
)

func main() {
	fresh := flag.String("fresh", "BENCH_parallel.json", "trajectory file produced by focus-bench -parallel")
	baseline := flag.String("baseline", "ci/bench-baseline.json", "committed baseline floors")
	flag.Parse()

	b, err := scalebench.LoadBaseline(*baseline)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench-gate:", err)
		os.Exit(2)
	}
	rep, err := scalebench.LatestRun(*fresh)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench-gate:", err)
		os.Exit(2)
	}

	fmt.Printf("bench-gate: fresh run %s (GOMAXPROCS %d, %d points) vs %s (tolerance %.0f%%)\n",
		rep.When, rep.GOMAXPROCS, len(rep.Points), *baseline, 100*b.Tolerance)
	for _, p := range rep.Points {
		fmt.Printf("  streams=%-3d ingest %.2fx  query %.2fx  identical=%v\n",
			p.Streams, p.IngestSpeedup, p.QuerySpeedup, p.Identical)
	}
	if rep.Raw != nil {
		fmt.Printf("  raw         ivf %.2fx (identical=%v)  early-exit ratio %.2f (%d items)\n",
			rep.Raw.IVFSpeedup, rep.Raw.IVFIdentical, rep.Raw.EarlyExitRatio, rep.Raw.EarlyExitItems)
	}
	failures := b.Check(rep)
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintln(os.Stderr, "FAIL:", f)
		}
		os.Exit(1)
	}
	fmt.Println("PASS: all scaling points within tolerance")
}
