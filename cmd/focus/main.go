// Command focus is the CLI for the Focus video-query system: ingest
// synthetic Table 1 streams, run class queries against the resulting top-K
// indexes, inspect the tuner's trade-off space, and print stream
// characterizations. With -server, query and plan run against a live
// focus-serve or focus-router endpoint through the typed v1 client
// instead of the local library.
//
// Usage:
//
//	focus streams
//	focus classes [-n 30]
//	focus ingest  -stream auburn_c [-duration 240] [-policy balance] [-store focus.kv]
//	focus query   -stream auburn_c -class car [-start 0 -end 120] [-kx 2] [-store focus.kv]
//	focus query   -server http://localhost:7070 -class car [-stream auburn_c]
//	focus plan    -streams auburn_c,jacksonh -expr 'car & person & !bus' [-top 10] [-page 5]
//	focus plan    -server http://localhost:7070 -expr 'car & person & !bus' [-top 10] [-page 5]
//	focus tracks  -streams auburn_c,jacksonh -expr 'car & dur(30)' [-top 10] [-page 5]
//	focus tracks  -server http://localhost:7070 -expr 'seq(region(0,0,160,720), region(160,0,320,720))'
//	focus subscribe -server http://localhost:7070 -expr 'car & person' [-streams auburn_c] [-max-deltas 5]
//	focus reshard -server http://localhost:7070 -map new-cluster.json [-dry-run]
//	focus sweep   -stream auburn_c [-duration 240]
//	focus characterize -stream auburn_c [-duration 240]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"text/tabwriter"

	"focus"
	"focus/api"
	"focus/client"
	"focus/internal/stats"
	"focus/internal/tune"
	"focus/internal/video"
	"focus/internal/vision"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "streams":
		err = cmdStreams()
	case "classes":
		err = cmdClasses(os.Args[2:])
	case "ingest":
		err = cmdIngest(os.Args[2:])
	case "query":
		err = cmdQuery(os.Args[2:])
	case "plan":
		err = cmdPlan(os.Args[2:])
	case "tracks":
		err = cmdTracks(os.Args[2:])
	case "subscribe":
		err = cmdSubscribe(os.Args[2:])
	case "reshard":
		err = cmdReshard(os.Args[2:])
	case "sweep":
		err = cmdSweep(os.Args[2:])
	case "characterize":
		err = cmdCharacterize(os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "focus: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "focus:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `focus <command> [flags]

commands:
  streams        list the Table 1 stream presets
  classes        list queryable class names
  ingest         tune and ingest a stream window, print the chosen config
  query          answer "find frames with class X" against an ingested stream
  plan           answer a compound query like 'car & person & !bus', ranked and paged
  tracks         answer a temporal query like 'car & dur(30)' over object tracks
  subscribe      hold a standing query against a live service and stream its answer deltas
  reshard        transition a live cluster to a new shard map through its router
  sweep          print the tuner's Pareto boundary for a stream
  characterize   print a stream's ground-truth characterization`)
}

func cmdStreams() error {
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "NAME\tTYPE\tLOCATION\tDESCRIPTION")
	for _, s := range video.Table1Specs() {
		fmt.Fprintf(w, "%s\t%s\t%s\t%s\n", s.Name, s.Type, s.Location, s.Description)
	}
	return w.Flush()
}

func cmdClasses(args []string) error {
	fs := flag.NewFlagSet("classes", flag.ExitOnError)
	n := fs.Int("n", 30, "how many class names to print")
	seed := fs.Uint64("seed", 1, "system seed")
	fs.Parse(args)
	sys, err := focus.New(focus.Config{Seed: *seed})
	if err != nil {
		return err
	}
	defer sys.Close()
	for c := 0; c < *n; c++ {
		fmt.Println(sys.Space().Name(vision.ClassID(c)))
	}
	return nil
}

func cmdIngest(args []string) error {
	fs := flag.NewFlagSet("ingest", flag.ExitOnError)
	stream := fs.String("stream", "auburn_c", "Table 1 stream name")
	duration := fs.Float64("duration", 240, "window length in seconds")
	sampleEvery := fs.Int("sample-every", 1, "frame sampling stride (1 = 30fps)")
	policy := fs.String("policy", "balance", "balance | opt-ingest | opt-query")
	store := fs.String("store", "", "persist the index to this path")
	seed := fs.Uint64("seed", 1, "system seed")
	fs.Parse(args)

	sys, err := focus.New(focus.Config{
		Seed: *seed, Policy: focus.Policy(*policy), StorePath: *store,
	})
	if err != nil {
		return err
	}
	defer sys.Close()
	sess, err := sys.AddTable1Stream(*stream)
	if err != nil {
		return err
	}
	opts := focus.GenOptions{DurationSec: *duration, SampleEvery: *sampleEvery}
	if err := sess.Ingest(opts); err != nil {
		return err
	}
	chosen := sess.Selection().Chosen
	ws := sess.IngestStats()
	fmt.Printf("stream %s: ingested %.0fs at %.1f fps\n", *stream, *duration, opts.EffectiveFPS())
	fmt.Printf("  chosen config: model=%s K=%d T=%.1f (est recall %.3f, est precision %.3f)\n",
		chosen.Model.Name, chosen.K, chosen.T, chosen.EstRecall, chosen.EstPrecision)
	fmt.Printf("  sightings=%d cnn-inferences=%d dedup=%.1f%% clusters=%d\n",
		ws.Sightings, ws.CNNInferences, 100*ws.DedupRate(), ws.Clusters)
	fmt.Printf("  ingest GPU: %.1fs (Ingest-all would need %.1fs → %.0fx cheaper)\n",
		ws.IngestGPUMS/1000, float64(ws.Sightings)*13/1000,
		float64(ws.Sightings)*13/ws.IngestGPUMS)
	if *store != "" {
		fmt.Printf("  index persisted to %s\n", *store)
	}
	return nil
}

func cmdQuery(args []string) error {
	fs := flag.NewFlagSet("query", flag.ExitOnError)
	stream := fs.String("stream", "auburn_c", "Table 1 stream name (with -server, empty = every served stream)")
	class := fs.String("class", "car", "class name to query")
	duration := fs.Float64("duration", 240, "window length in seconds (when re-ingesting)")
	start := fs.Float64("start", 0, "window start (seconds)")
	end := fs.Float64("end", 0, "window end (seconds, 0 = unbounded)")
	kx := fs.Int("kx", 0, "dynamic Kx cut (0 = indexed K)")
	maxClusters := fs.Int("max-clusters", 0, "batched retrieval cap")
	store := fs.String("store", "", "load a persisted index from this path")
	server := fs.String("server", "", "base URL of a running focus-serve or focus-router; queries it over /v1 instead of the local library")
	seed := fs.Uint64("seed", 1, "system seed")
	fs.Parse(args)

	if *server != "" {
		req := &api.QueryRequest{
			Expr:        *class,
			Kx:          *kx,
			Start:       *start,
			End:         *end,
			MaxClusters: *maxClusters,
		}
		if *stream != "" {
			req.Streams = []string{*stream}
		}
		resp, err := client.New(*server).Query(context.Background(), req)
		if err != nil {
			return err
		}
		return printServedQuery(*server, resp)
	}

	sys, err := focus.New(focus.Config{Seed: *seed, StorePath: *store})
	if err != nil {
		return err
	}
	defer sys.Close()
	sess, err := sys.AddTable1Stream(*stream)
	if err != nil {
		return err
	}
	if *store != "" {
		if err := sess.LoadIndex(); err != nil {
			return fmt.Errorf("loading persisted index (run `focus ingest -store %s` first?): %w", *store, err)
		}
	} else {
		fmt.Fprintln(os.Stderr, "no -store given; ingesting fresh (this tunes + indexes the stream)")
		if err := sess.Ingest(focus.GenOptions{DurationSec: *duration, SampleEvery: 1}); err != nil {
			return err
		}
	}
	id, err := sys.ClassID(*class)
	if err != nil {
		return err
	}
	res, err := sess.QueryClass(id, focus.QueryOptions{
		Kx: *kx, StartSec: *start, EndSec: *end, MaxClusters: *maxClusters,
	})
	if err != nil {
		return err
	}
	fmt.Printf("query %q on %s: %d frames in %d segments\n",
		*class, *stream, len(res.Frames), len(res.Segments))
	fmt.Printf("  clusters examined=%d matched=%d gt-inferences=%d\n",
		res.ExaminedClusters, res.MatchedClusters, res.GTInferences)
	fmt.Printf("  latency %.0fms GPU-time %.0fms (via OTHER: %v)\n",
		res.LatencyMS, res.GPUTimeMS, res.ViaOther)
	max := len(res.Segments)
	if max > 10 {
		max = 10
	}
	if max > 0 {
		fmt.Printf("  first segments (s): %v\n", res.Segments[:max])
	}
	return nil
}

func cmdPlan(args []string) error {
	fs := flag.NewFlagSet("plan", flag.ExitOnError)
	streams := fs.String("streams", "auburn_c", "comma-separated Table 1 stream names (with -server, empty = every served stream)")
	expr := fs.String("expr", "", "compound predicate, e.g. 'car & person & !bus'")
	top := fs.Int("top", 10, "top-K results by aggregate confidence (0 = all)")
	page := fs.Int("page", 0, "page size: stream results through the paging cursor (0 = one shot)")
	duration := fs.Float64("duration", 240, "window length in seconds (when re-ingesting)")
	kx := fs.Int("kx", 0, "per-leaf dynamic Kx cut (0 = indexed K)")
	maxClusters := fs.Int("max-clusters", 0, "per-leaf retrieval cap")
	mode := fs.String("mode", "", "execution mode: exact (default) or early_exit (approximate: stop at -top verified results, requires -top >= 1)")
	store := fs.String("store", "", "load persisted indexes from this path")
	server := fs.String("server", "", "base URL of a running focus-serve or focus-router; plans over /v1 instead of the local library")
	seed := fs.Uint64("seed", 1, "system seed")
	fs.Parse(args)
	if *expr == "" {
		return fmt.Errorf("plan: -expr is required (e.g. -expr 'car & person & !bus')")
	}
	normMode, aerr := api.NormalizeMode(*mode, *top)
	if aerr != nil {
		return fmt.Errorf("plan: %s", aerr.Message)
	}

	if *server != "" {
		return servedPlan(*server, *streams, *expr, *top, *page, *kx, *maxClusters, normMode)
	}

	sys, err := focus.New(focus.Config{Seed: *seed, StorePath: *store})
	if err != nil {
		return err
	}
	defer sys.Close()
	var names []string
	for _, name := range strings.Split(*streams, ",") {
		if name = strings.TrimSpace(name); name == "" {
			continue
		}
		names = append(names, name)
		sess, err := sys.AddTable1Stream(name)
		if err != nil {
			return err
		}
		if *store != "" {
			if err := sess.LoadIndex(); err != nil {
				return fmt.Errorf("loading persisted index (run `focus ingest -store %s` first?): %w", *store, err)
			}
		} else {
			fmt.Fprintf(os.Stderr, "no -store given; ingesting %s fresh (this tunes + indexes the stream)\n", name)
			if err := sess.Ingest(focus.GenOptions{DurationSec: *duration, SampleEvery: 1}); err != nil {
				return err
			}
		}
	}

	compiled, err := sys.CompilePlan(*expr)
	if err != nil {
		return err
	}
	opts := focus.PlanOptions{
		Streams:   names,
		TopK:      *top,
		Leaf:      focus.QueryOptions{Kx: *kx, MaxClusters: *maxClusters},
		EarlyExit: normMode == api.ModeEarlyExit,
	}
	if opts.EarlyExit && *page > 0 {
		return fmt.Errorf("plan: -page needs the exact mode's incremental cursor; early_exit answers at most -top results in one shot")
	}
	fmt.Printf("plan %s over %s:\n", compiled.Canonical(), strings.Join(names, ","))

	printItems := func(items []focus.PlanItem, from int) {
		for i, it := range items {
			fmt.Printf("  %3d. %-10s frame %-8d t=%6.1fs  score %.2f\n",
				from+i+1, it.Stream, it.Frame, it.TimeSec, it.Score)
		}
	}
	if *page > 0 {
		cur, err := sys.NewPlanCursor(compiled, opts)
		if err != nil {
			return err
		}
		n := 0
		for !cur.Done() {
			items, err := cur.Next(*page)
			if err != nil {
				return err
			}
			if len(items) > 0 {
				fmt.Printf("  -- page (%d results) --\n", len(items))
				printItems(items, n)
				n += len(items)
			}
		}
		st := cur.Stats()
		fmt.Printf("  %d results; gt-inferences=%d gpu-time=%.0fms latency=%.0fms\n",
			n, st.GTInferences, st.GPUTimeMS, st.LatencyMS)
		return nil
	}
	res, err := sys.ExecutePlan(compiled, opts)
	if err != nil {
		return err
	}
	printItems(res.Items, 0)
	fmt.Printf("  %d results; gt-inferences=%d gpu-time=%.0fms latency=%.0fms\n",
		len(res.Items), res.Stats.GTInferences, res.Stats.GPUTimeMS, res.Stats.LatencyMS)
	for name, ss := range res.Stats.PerStream {
		fmt.Printf("  %s: verified=%d skipped=%d clusters across %d leaves\n",
			name, ss.VerifiedClusters, ss.SkippedClusters, len(ss.Leaves))
	}
	return nil
}

func cmdTracks(args []string) error {
	fs := flag.NewFlagSet("tracks", flag.ExitOnError)
	streams := fs.String("streams", "auburn_c", "comma-separated Table 1 stream names (with -server, empty = every served stream)")
	expr := fs.String("expr", "", "temporal predicate, e.g. 'car & dur(30)' or 'person & seq(region(0,0,160,720), region(160,0,320,720))'")
	top := fs.Int("top", 10, "top-K tracks by aggregate confidence (0 = all)")
	page := fs.Int("page", 0, "page size: stream results through the paging cursor (0 = one shot)")
	duration := fs.Float64("duration", 240, "window length in seconds (when re-ingesting)")
	kx := fs.Int("kx", 0, "per-leaf dynamic Kx cut (0 = indexed K)")
	maxClusters := fs.Int("max-clusters", 0, "per-leaf retrieval cap")
	store := fs.String("store", "", "load persisted indexes from this path")
	server := fs.String("server", "", "base URL of a running focus-serve or focus-router; queries over /v1 instead of the local library")
	seed := fs.Uint64("seed", 1, "system seed")
	fs.Parse(args)
	if *expr == "" {
		return fmt.Errorf("tracks: -expr is required (e.g. -expr 'car & dur(30)')")
	}

	if *server != "" {
		return servedTracks(*server, *streams, *expr, *top, *page, *kx, *maxClusters)
	}

	sys, err := focus.New(focus.Config{Seed: *seed, StorePath: *store})
	if err != nil {
		return err
	}
	defer sys.Close()
	var names []string
	for _, name := range strings.Split(*streams, ",") {
		if name = strings.TrimSpace(name); name == "" {
			continue
		}
		names = append(names, name)
		sess, err := sys.AddTable1Stream(name)
		if err != nil {
			return err
		}
		if *store != "" {
			if err := sess.LoadIndex(); err != nil {
				return fmt.Errorf("loading persisted index (run `focus ingest -store %s` first?): %w", *store, err)
			}
		} else {
			fmt.Fprintf(os.Stderr, "no -store given; ingesting %s fresh (this tunes + indexes the stream)\n", name)
			if err := sess.Ingest(focus.GenOptions{DurationSec: *duration, SampleEvery: 1}); err != nil {
				return err
			}
		}
	}

	compiled, err := sys.CompileTrackQuery(*expr)
	if err != nil {
		return err
	}
	opts := focus.TrackOptions{
		Streams: names,
		TopK:    *top,
		Leaf:    focus.QueryOptions{Kx: *kx, MaxClusters: *maxClusters},
	}
	fmt.Printf("tracks %s over %s:\n", compiled.Canonical(), strings.Join(names, ","))

	printTracks := func(items []focus.TrackItem, from int) {
		for i, it := range items {
			fmt.Printf("  %3d. %-10s track %-4d object %-6d %.1fs..%.1fs (%d sightings)  score %.2f\n",
				from+i+1, it.Stream, it.Track, it.Object, it.StartSec, it.EndSec, it.Sightings, it.Score)
		}
	}
	if *page > 0 {
		cur, err := sys.NewTrackCursor(compiled, opts)
		if err != nil {
			return err
		}
		n := 0
		for !cur.Done() {
			items, err := cur.Next(*page)
			if err != nil {
				return err
			}
			if len(items) > 0 {
				fmt.Printf("  -- page (%d results) --\n", len(items))
				printTracks(items, n)
				n += len(items)
			}
		}
		st := cur.Stats()
		fmt.Printf("  %d tracks; gt-inferences=%d gpu-time=%.0fms latency=%.0fms\n",
			n, st.GTInferences, st.GPUTimeMS, st.LatencyMS)
		return nil
	}
	res, err := sys.ExecuteTrackQuery(compiled, opts)
	if err != nil {
		return err
	}
	printTracks(res.Items, 0)
	fmt.Printf("  %d tracks; gt-inferences=%d gpu-time=%.0fms latency=%.0fms\n",
		len(res.Items), res.Stats.GTInferences, res.Stats.GPUTimeMS, res.Stats.LatencyMS)
	return nil
}

// cmdSubscribe holds a standing query against a live service: it opens
// POST /v1/subscribe through the typed client, prints the resolved hello,
// then renders every answer delta as it arrives, together with the
// reassembled answer size at the delivered watermark vector. It runs
// until the server ends the stream (complete or draining) or -max-deltas
// is reached. Subscriptions are a service feature — there is no local
// library mode.
func cmdReshard(args []string) error {
	fs := flag.NewFlagSet("reshard", flag.ExitOnError)
	server := fs.String("server", "", "base URL of a running focus-router (required)")
	mapPath := fs.String("map", "", "target shard-map JSON file (required; same format as focus-router -map)")
	dryRun := fs.Bool("dry-run", false, "plan only: print which streams would move, move nothing")
	fs.Parse(args)
	if *server == "" {
		return fmt.Errorf("reshard: -server is required (the router executes the transition)")
	}
	if *mapPath == "" {
		return fmt.Errorf("reshard: -map is required (the target shard map)")
	}
	raw, err := os.ReadFile(*mapPath)
	if err != nil {
		return fmt.Errorf("reshard: %w", err)
	}
	var m api.AdminShardMap
	if err := json.Unmarshal(raw, &m); err != nil {
		return fmt.Errorf("reshard: parsing %s: %w", *mapPath, err)
	}
	resp, err := client.New(*server).Reshard(context.Background(), m, *dryRun)
	if err != nil {
		return err
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "STREAM\tFROM\tTO\tSTATE\tWATERMARK\tERROR")
	for _, mv := range resp.Moves {
		fmt.Fprintf(w, "%s\t%s\t%s\t%s\t%g\t%s\n", mv.Stream, mv.From, mv.To, mv.State, mv.Watermark, mv.Error)
	}
	w.Flush()
	if resp.DryRun {
		fmt.Printf("dry run: %d streams would move\n", len(resp.Moves))
		return nil
	}
	fmt.Printf("moved %d streams, %d failed\n", resp.Moved, resp.Failed)
	if resp.Failed > 0 {
		return fmt.Errorf("reshard: %d moves failed (sources still own those streams; fix and re-run)", resp.Failed)
	}
	return nil
}

func cmdSubscribe(args []string) error {
	fs := flag.NewFlagSet("subscribe", flag.ExitOnError)
	server := fs.String("server", "", "base URL of a running focus-serve or focus-router (required)")
	expr := fs.String("expr", "", "predicate to track, e.g. 'car & person' or 'car & dur(30)'")
	streams := fs.String("streams", "", "comma-separated stream names (empty = every served stream)")
	maxDeltas := fs.Int("max-deltas", 0, "close after this many deltas (0 = until the server ends the stream)")
	kx := fs.Int("kx", 0, "per-leaf dynamic Kx cut (0 = indexed K)")
	start := fs.Float64("start", 0, "window start (seconds)")
	end := fs.Float64("end", 0, "window end (seconds, 0 = unbounded)")
	maxClusters := fs.Int("max-clusters", 0, "per-leaf retrieval cap")
	fs.Parse(args)
	if *server == "" {
		return fmt.Errorf("subscribe: -server is required (standing queries are served by focus-serve or focus-router)")
	}
	if *expr == "" {
		return fmt.Errorf("subscribe: -expr is required (e.g. -expr 'car & person')")
	}
	req := &api.SubscribeRequest{
		Expr:        *expr,
		Kx:          *kx,
		Start:       *start,
		End:         *end,
		MaxClusters: *maxClusters,
	}
	for _, name := range strings.Split(*streams, ",") {
		if name = strings.TrimSpace(name); name != "" {
			req.Streams = append(req.Streams, name)
		}
	}
	sub, err := client.New(*server).Subscribe(context.Background(), req)
	if err != nil {
		return err
	}
	defer sub.Close()
	h := sub.Hello()
	fmt.Printf("subscribed to %s (%s form) over %v via %s\n", h.Expr, h.Form, h.Streams, *server)
	for n := 0; ; {
		d, err := sub.Recv()
		if err == io.EOF {
			fmt.Printf("server ended the subscription: %s\n", sub.Reason())
			return nil
		}
		if err != nil {
			return err
		}
		n++
		if h.Form == api.FormTracks {
			fmt.Printf("delta %d: +%d -%d tracks → %d total at %v (gt-inferences=%d gpu-time=%.0fms)\n",
				n, len(d.Tracks), len(d.RemovedTracks), d.TotalItems, d.To, d.GTInferences, d.GPUTimeMS)
		} else {
			fmt.Printf("delta %d: +%d -%d items → %d total at %v (gt-inferences=%d gpu-time=%.0fms)\n",
				n, len(d.Items), len(d.RemovedItems), d.TotalItems, d.To, d.GTInferences, d.GPUTimeMS)
		}
		for _, it := range d.Items {
			fmt.Printf("  + %-10s frame %-8d t=%6.1fs  score %.2f\n", it.Stream, it.Frame, it.TimeSec, it.Score)
		}
		for _, it := range d.RemovedItems {
			fmt.Printf("  - %-10s frame %-8d t=%6.1fs  score %.2f\n", it.Stream, it.Frame, it.TimeSec, it.Score)
		}
		for _, tr := range d.Tracks {
			fmt.Printf("  + %-10s track %-4d object %-6d %.1fs..%.1fs (%d sightings)  score %.2f\n",
				tr.Stream, tr.Track, tr.Object, tr.StartSec, tr.EndSec, tr.Sightings, tr.Score)
		}
		for _, tr := range d.RemovedTracks {
			fmt.Printf("  - %-10s track %-4d object %-6d %.1fs..%.1fs (%d sightings)  score %.2f\n",
				tr.Stream, tr.Track, tr.Object, tr.StartSec, tr.EndSec, tr.Sightings, tr.Score)
		}
		if *maxDeltas > 0 && n >= *maxDeltas {
			fmt.Printf("closing after %d deltas; resume later with from=%v\n", n, sub.Vector())
			return nil
		}
	}
}

// servedTracks runs a temporal track query against a live endpoint,
// one-shot or page by page through the opaque cursor.
func servedTracks(server, streams, expr string, top, page, kx, maxClusters int) error {
	req := &api.QueryRequest{
		Expr:        expr,
		TopK:        top,
		Kx:          kx,
		MaxClusters: maxClusters,
		Form:        api.FormTracks,
	}
	for _, name := range strings.Split(streams, ",") {
		if name = strings.TrimSpace(name); name != "" {
			req.Streams = append(req.Streams, name)
		}
	}
	cli := client.New(server)
	printTracks := func(items []api.TrackItem, from int) {
		for i, it := range items {
			fmt.Printf("  %3d. %-10s track %-4d object %-6d %.1fs..%.1fs (%d sightings)  score %.2f\n",
				from+i+1, it.Stream, it.Track, it.Object, it.StartSec, it.EndSec, it.Sightings, it.Score)
		}
	}
	fmt.Printf("tracks %s via %s:\n", expr, server)
	if page > 0 {
		pager := cli.TrackPager(req, page)
		n := 0
		for pager.More() {
			items, err := pager.Next(context.Background())
			if err != nil {
				return err
			}
			if len(items) > 0 {
				fmt.Printf("  -- page (%d results) --\n", len(items))
				printTracks(items, n)
				n += len(items)
			}
		}
		last := pager.Last()
		fmt.Printf("  %d tracks at vector %v; gt-inferences=%d gpu-time=%.0fms latency=%.0fms\n",
			n, last.Watermarks, last.GTInferences, last.GPUTimeMS, last.LatencyMS)
		return nil
	}
	resp, err := cli.Query(context.Background(), req)
	if err != nil {
		return err
	}
	printTracks(resp.Tracks, 0)
	fmt.Printf("  %d tracks at vector %v; gt-inferences=%d gpu-time=%.0fms latency=%.0fms (cached: %v)\n",
		resp.TotalItems, resp.Watermarks, resp.GTInferences, resp.GPUTimeMS, resp.LatencyMS, resp.Cached)
	return nil
}

// printServedQuery renders a frames-form v1 response the way the library
// path prints a direct query, stream by stream.
func printServedQuery(server string, resp *api.QueryResponse) error {
	names := make([]string, 0, len(resp.Streams))
	for name := range resp.Streams {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Printf("query %q via %s: %d frames across %d streams (cached: %v)\n",
		resp.Expr, server, resp.TotalFrames, len(resp.Streams), resp.Cached)
	for _, name := range names {
		sr := resp.Streams[name]
		fmt.Printf("  %s@%g: %d frames in %d segments (examined=%d matched=%d gt-inferences=%d via OTHER: %v)\n",
			name, sr.Watermark, len(sr.Frames), len(sr.Segments),
			sr.ExaminedClusters, sr.MatchedClusters, sr.GTInferences, sr.ViaOther)
		max := len(sr.Segments)
		if max > 10 {
			max = 10
		}
		if max > 0 {
			fmt.Printf("    first segments (s): %v\n", sr.Segments[:max])
		}
	}
	fmt.Printf("  latency %.0fms GPU-time %.0fms\n", resp.LatencyMS, resp.GPUTimeMS)
	return nil
}

// servedPlan runs a ranked plan against a live endpoint, one-shot or
// page by page through the opaque cursor.
func servedPlan(server, streams, expr string, top, page, kx, maxClusters int, mode string) error {
	req := &api.QueryRequest{
		Expr:        expr,
		TopK:        top,
		Kx:          kx,
		MaxClusters: maxClusters,
		Form:        api.FormRanked,
		Mode:        mode,
	}
	for _, name := range strings.Split(streams, ",") {
		if name = strings.TrimSpace(name); name != "" {
			req.Streams = append(req.Streams, name)
		}
	}
	cli := client.New(server)
	printItems := func(items []api.Item, from int) {
		for i, it := range items {
			fmt.Printf("  %3d. %-10s frame %-8d t=%6.1fs  score %.2f\n",
				from+i+1, it.Stream, it.Frame, it.TimeSec, it.Score)
		}
	}
	fmt.Printf("plan %s via %s:\n", expr, server)
	if page > 0 {
		pager := cli.Pager(req, page)
		n := 0
		for pager.More() {
			items, err := pager.Next(context.Background())
			if err != nil {
				return err
			}
			if len(items) > 0 {
				fmt.Printf("  -- page (%d results) --\n", len(items))
				printItems(items, n)
				n += len(items)
			}
		}
		last := pager.Last()
		fmt.Printf("  %d results at vector %v; gt-inferences=%d gpu-time=%.0fms latency=%.0fms\n",
			n, last.Watermarks, last.GTInferences, last.GPUTimeMS, last.LatencyMS)
		return nil
	}
	resp, err := cli.Query(context.Background(), req)
	if err != nil {
		return err
	}
	printItems(resp.Items, 0)
	fmt.Printf("  %d results at vector %v; gt-inferences=%d gpu-time=%.0fms latency=%.0fms (cached: %v)\n",
		resp.TotalItems, resp.Watermarks, resp.GTInferences, resp.GPUTimeMS, resp.LatencyMS, resp.Cached)
	return nil
}

func cmdSweep(args []string) error {
	fs := flag.NewFlagSet("sweep", flag.ExitOnError)
	stream := fs.String("stream", "auburn_c", "Table 1 stream name")
	duration := fs.Float64("duration", 240, "window length in seconds")
	recall := fs.Float64("recall", 0.95, "recall target")
	precision := fs.Float64("precision", 0.95, "precision target")
	seed := fs.Uint64("seed", 1, "system seed")
	fs.Parse(args)

	sys, err := focus.New(focus.Config{
		Seed:    *seed,
		Targets: focus.Targets{Recall: *recall, Precision: *precision},
	})
	if err != nil {
		return err
	}
	defer sys.Close()
	sess, err := sys.AddTable1Stream(*stream)
	if err != nil {
		return err
	}
	if err := sess.Tune(focus.GenOptions{DurationSec: *duration, SampleEvery: 1}); err != nil {
		return err
	}
	sel := sess.Selection()
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "MODEL\tK\tT\tNORM-INGEST\tNORM-QUERY\tEST-RECALL\tEST-PRECISION\tCHOSEN")
	for _, c := range sel.Pareto {
		mark := ""
		if c == sel.Chosen {
			mark = "<= " + string(tune.Balance)
		}
		fmt.Fprintf(w, "%s\t%d\t%.1f\t%.5f\t%.5f\t%.3f\t%.3f\t%s\n",
			c.Model.Name, c.K, c.T, c.NormIngest, c.NormQuery, c.EstRecall, c.EstPrecision, mark)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Printf("%d viable configurations, %d on the Pareto boundary\n",
		len(sel.Viable), len(sel.Pareto))
	return nil
}

func cmdCharacterize(args []string) error {
	fs := flag.NewFlagSet("characterize", flag.ExitOnError)
	stream := fs.String("stream", "auburn_c", "Table 1 stream name")
	duration := fs.Float64("duration", 240, "window length in seconds")
	seed := fs.Uint64("seed", 1, "system seed")
	fs.Parse(args)

	sys, err := focus.New(focus.Config{Seed: *seed})
	if err != nil {
		return err
	}
	defer sys.Close()
	sess, err := sys.AddTable1Stream(*stream)
	if err != nil {
		return err
	}
	truth, err := stats.ComputeGroundTruth(sess.Stream(), sys.Space(), sys.Zoo().GT,
		video.GenOptions{DurationSec: *duration, SampleEvery: 1})
	if err != nil {
		return err
	}
	fmt.Printf("stream %s over %.0fs:\n", *stream, *duration)
	fmt.Printf("  frames=%d empty=%.1f%% sightings=%d\n", truth.TotalFrames,
		100*float64(truth.EmptyFrames)/float64(truth.TotalFrames), truth.TotalSightings)
	fmt.Printf("  classes present: %d\n", len(truth.PresentClasses()))
	fmt.Println("  dominant classes (by positive segments):")
	for _, c := range truth.DominantClasses(8) {
		fmt.Printf("    %-16s %4d segments\n", sys.Space().Name(c), len(truth.Positives[c]))
	}
	return nil
}
