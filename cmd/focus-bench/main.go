// Command focus-bench regenerates the paper's tables and figures end to
// end and writes them as text (and optionally CSV) for EXPERIMENTS.md.
//
// Usage:
//
//	focus-bench [-duration 240] [-gpus 10] [-run fig7,fig8] [-csv-dir out/]
//
// Without -run it executes the full suite in paper order. Expect several
// minutes at the default scale; -duration scales fidelity against runtime.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"focus/internal/experiments"
	"focus/internal/tune"
)

func main() {
	duration := flag.Float64("duration", 240, "per-stream window length in seconds")
	sampleEvery := flag.Int("sample-every", 1, "frame sampling stride (1 = 30fps)")
	gpus := flag.Int("gpus", 10, "query-time GPU parallelism")
	seed := flag.Uint64("seed", 1, "simulation seed")
	recall := flag.Float64("recall", 0.95, "recall target")
	precision := flag.Float64("precision", 0.95, "precision target")
	run := flag.String("run", "", "comma-separated experiment names (default: all)")
	csvDir := flag.String("csv-dir", "", "also write each table as CSV into this directory")
	list := flag.Bool("list", false, "list experiment names and exit")
	flag.Parse()

	if *list {
		for _, n := range experiments.Names() {
			fmt.Println(n)
		}
		return
	}

	cfg := experiments.DefaultConfig()
	cfg.DurationSec = *duration
	cfg.SampleEvery = *sampleEvery
	cfg.NumGPUs = *gpus
	cfg.Seed = *seed
	cfg.Targets = tune.Targets{Recall: *recall, Precision: *precision}
	env := experiments.NewEnv(cfg)

	names := experiments.Names()
	if *run != "" {
		names = strings.Split(*run, ",")
	}

	fmt.Printf("# Focus experiment suite — window %.0fs/stream, %d GPUs, targets %.0f%%/%.0f%%, seed %d\n\n",
		cfg.DurationSec, cfg.NumGPUs, 100*cfg.Targets.Recall, 100*cfg.Targets.Precision, cfg.Seed)

	start := time.Now()
	for _, name := range names {
		name = strings.TrimSpace(name)
		t0 := time.Now()
		tables, err := env.Run(name)
		if err != nil {
			fmt.Fprintf(os.Stderr, "focus-bench: %s: %v\n", name, err)
			os.Exit(1)
		}
		for _, tb := range tables {
			if err := tb.Render(os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, "focus-bench:", err)
				os.Exit(1)
			}
			if *csvDir != "" {
				if err := writeCSV(*csvDir, tb); err != nil {
					fmt.Fprintln(os.Stderr, "focus-bench:", err)
					os.Exit(1)
				}
			}
		}
		fmt.Printf("(%s finished in %.1fs)\n\n", name, time.Since(t0).Seconds())
	}
	fmt.Printf("# suite finished in %.1fs\n", time.Since(start).Seconds())
}

func writeCSV(dir string, tb *experiments.Table) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	name := strings.NewReplacer(" ", "_", "§", "sec").Replace(tb.ID) + ".csv"
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		return err
	}
	defer f.Close()
	return tb.CSV(f)
}
