// Command focus-bench regenerates the paper's tables and figures end to
// end and writes them as text (and optionally CSV) for EXPERIMENTS.md.
//
// Usage:
//
//	focus-bench [-duration 240] [-gpus 10] [-run fig7,fig8] [-csv-dir out/]
//	focus-bench -parallel [-streams 1,4,16] [-parallel-out BENCH_parallel.json]
//
// Without -run it executes the full suite in paper order. Expect several
// minutes at the default scale; -duration scales fidelity against runtime.
//
// -parallel runs the multi-stream scaling benchmark instead: concurrent
// ingest and cross-stream query fan-out versus their sequential reference
// paths, appending the measured speedups to a JSON trajectory file.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"time"

	"focus/internal/experiments"
	"focus/internal/scalebench"
	"focus/internal/tune"
)

func runtimeGOMAXPROCS() int { return runtime.GOMAXPROCS(0) }

func main() {
	duration := flag.Float64("duration", 240, "per-stream window length in seconds")
	sampleEvery := flag.Int("sample-every", 1, "frame sampling stride (1 = 30fps)")
	gpus := flag.Int("gpus", 10, "query-time GPU parallelism")
	seed := flag.Uint64("seed", 1, "simulation seed")
	recall := flag.Float64("recall", 0.95, "recall target")
	precision := flag.Float64("precision", 0.95, "precision target")
	run := flag.String("run", "", "comma-separated experiment names (default: all)")
	csvDir := flag.String("csv-dir", "", "also write each table as CSV into this directory")
	list := flag.Bool("list", false, "list experiment names and exit")
	par := flag.Bool("parallel", false, "run the multi-stream scaling benchmark instead of the paper suite")
	streams := flag.String("streams", "1,4,16", "stream counts for -parallel")
	parDuration := flag.Float64("parallel-duration", 60, "per-stream window for -parallel, in seconds")
	parOut := flag.String("parallel-out", "BENCH_parallel.json", "trajectory file for -parallel")
	flag.Parse()

	if *list {
		for _, n := range experiments.Names() {
			fmt.Println(n)
		}
		return
	}

	if *par {
		runParallel(*streams, *parDuration, *sampleEvery, *gpus, *seed, *parOut)
		return
	}

	cfg := experiments.DefaultConfig()
	cfg.DurationSec = *duration
	cfg.SampleEvery = *sampleEvery
	cfg.NumGPUs = *gpus
	cfg.Seed = *seed
	cfg.Targets = tune.Targets{Recall: *recall, Precision: *precision}
	env := experiments.NewEnv(cfg)

	names := experiments.Names()
	if *run != "" {
		names = strings.Split(*run, ",")
	}

	fmt.Printf("# Focus experiment suite — window %.0fs/stream, %d GPUs, targets %.0f%%/%.0f%%, seed %d\n\n",
		cfg.DurationSec, cfg.NumGPUs, 100*cfg.Targets.Recall, 100*cfg.Targets.Precision, cfg.Seed)

	start := time.Now()
	for _, name := range names {
		name = strings.TrimSpace(name)
		t0 := time.Now()
		tables, err := env.Run(name)
		if err != nil {
			fmt.Fprintf(os.Stderr, "focus-bench: %s: %v\n", name, err)
			os.Exit(1)
		}
		for _, tb := range tables {
			if err := tb.Render(os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, "focus-bench:", err)
				os.Exit(1)
			}
			if *csvDir != "" {
				if err := writeCSV(*csvDir, tb); err != nil {
					fmt.Fprintln(os.Stderr, "focus-bench:", err)
					os.Exit(1)
				}
			}
		}
		fmt.Printf("(%s finished in %.1fs)\n\n", name, time.Since(t0).Seconds())
	}
	fmt.Printf("# suite finished in %.1fs\n", time.Since(start).Seconds())
}

// runParallel executes the scaling benchmark and appends BENCH_parallel.json.
func runParallel(streams string, duration float64, sampleEvery, gpus int, seed uint64, out string) {
	cfg := scalebench.DefaultConfig()
	cfg.DurationSec = duration
	cfg.SampleEvery = sampleEvery
	cfg.NumGPUs = gpus
	cfg.Seed = seed
	cfg.StreamCounts = cfg.StreamCounts[:0]
	for _, s := range strings.Split(streams, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || n < 1 {
			fmt.Fprintf(os.Stderr, "focus-bench: bad stream count %q\n", s)
			os.Exit(1)
		}
		cfg.StreamCounts = append(cfg.StreamCounts, n)
	}

	fmt.Printf("# Focus parallel scaling — window %.0fs/stream, %d GPUs, pace %v/GPU-ms, GOMAXPROCS %d\n\n",
		cfg.DurationSec, cfg.NumGPUs, cfg.GPUPace, runtimeGOMAXPROCS())
	progress := func(format string, args ...any) {
		fmt.Printf(format+"\n", args...)
	}
	rep, err := scalebench.Run(cfg, progress)
	if err != nil {
		fmt.Fprintln(os.Stderr, "focus-bench:", err)
		os.Exit(1)
	}
	fmt.Println("raw-speed suite (stream-count independent)")
	if rep.Raw, err = scalebench.RunRaw(cfg.Seed, progress); err != nil {
		fmt.Fprintln(os.Stderr, "focus-bench:", err)
		os.Exit(1)
	}
	fmt.Printf("\n%-8s %12s %12s %9s %12s %12s %9s %10s\n",
		"streams", "ingest-seq", "ingest-par", "speedup", "query-seq", "query-par", "speedup", "identical")
	for _, p := range rep.Points {
		fmt.Printf("%-8d %11.2fs %11.2fs %8.2fx %11.2fs %11.2fs %8.2fx %10v\n",
			p.Streams, p.IngestSeqSec, p.IngestParSec, p.IngestSpeedup,
			p.QuerySeqSec, p.QueryParSec, p.QuerySpeedup, p.Identical)
	}
	fmt.Printf("\nivf %.2fx vs linear (identical=%v)  early-exit %.2f of exact GPU cost (%d items)\n",
		rep.Raw.IVFSpeedup, rep.Raw.IVFIdentical, rep.Raw.EarlyExitRatio, rep.Raw.EarlyExitItems)
	if err := scalebench.AppendJSON(out, rep); err != nil {
		fmt.Fprintln(os.Stderr, "focus-bench:", err)
		os.Exit(1)
	}
	fmt.Printf("\n# appended to %s\n", out)
}

func writeCSV(dir string, tb *experiments.Table) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	name := strings.NewReplacer(" ", "_", "§", "sec").Replace(tb.ID) + ".csv"
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		return err
	}
	defer f.Close()
	return tb.CSV(f)
}
