// Command doccheck is the documentation lint gate for Go code, the
// companion of cmd/mdcheck's markdown gate: every package must carry a
// package comment, and every exported top-level identifier in library
// packages must carry a doc comment. It exists because this repo treats
// godoc as part of the contract layer — package comments state each
// package's role and invariants (DESIGN.md points at them), and an
// undocumented exported identifier is an API nobody agreed to.
//
// Rules, deliberately narrower than a style linter:
//
//   - Every package (including main packages and cmd/ tools) needs a
//     package doc comment in at least one file.
//   - In non-main packages, every exported func, method on an exported
//     type, type, var and const needs a doc comment (for var/const
//     blocks, a comment on the block or on the spec counts).
//   - Test files, struct fields and interface methods are not checked.
//
// Usage:
//
//	doccheck .          # every package under the directory, recursively
//	doccheck ./internal/serve ./cmd/focus-router
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

func main() {
	args := os.Args[1:]
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "usage: doccheck <dir>...")
		os.Exit(2)
	}
	dirs := map[string]bool{}
	for _, arg := range args {
		err := filepath.WalkDir(arg, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() {
				switch d.Name() {
				case ".git", "vendor", "node_modules", "testdata":
					return filepath.SkipDir
				}
				return nil
			}
			if strings.HasSuffix(d.Name(), ".go") && !strings.HasSuffix(d.Name(), "_test.go") {
				dirs[filepath.Dir(path)] = true
			}
			return nil
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "doccheck:", err)
			os.Exit(2)
		}
	}
	sorted := make([]string, 0, len(dirs))
	for d := range dirs {
		sorted = append(sorted, d)
	}
	sort.Strings(sorted)

	problems := 0
	for _, dir := range sorted {
		for _, p := range checkDir(dir) {
			fmt.Fprintln(os.Stderr, "doccheck:", p)
			problems++
		}
	}
	if problems > 0 {
		fmt.Fprintf(os.Stderr, "doccheck: %d missing doc comment(s) across %d package dir(s)\n", problems, len(sorted))
		os.Exit(1)
	}
	fmt.Printf("doccheck: %d package dir(s) clean\n", len(sorted))
}

// checkDir parses one package directory (non-test files only) and returns
// a description of every missing doc comment.
func checkDir(dir string) []string {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return []string{err.Error()}
	}
	var out []string
	for name, pkg := range pkgs {
		hasPkgDoc := false
		for _, f := range pkg.Files {
			if f.Doc != nil && len(strings.TrimSpace(f.Doc.Text())) > 0 {
				hasPkgDoc = true
			}
		}
		if !hasPkgDoc {
			out = append(out, fmt.Sprintf("%s: package %s has no package comment", dir, name))
		}
		if name == "main" {
			// Command packages: the package comment is the usage doc; their
			// exported identifiers (there should be none) are not an API.
			continue
		}
		// Deterministic file order.
		files := make([]string, 0, len(pkg.Files))
		for fname := range pkg.Files {
			files = append(files, fname)
		}
		sort.Strings(files)
		for _, fname := range files {
			out = append(out, checkFile(fset, pkg.Files[fname])...)
		}
	}
	sort.Strings(out)
	return out
}

// checkFile reports exported top-level identifiers without doc comments.
func checkFile(fset *token.FileSet, f *ast.File) []string {
	var out []string
	missing := func(pos token.Pos, kind, name string) {
		p := fset.Position(pos)
		out = append(out, fmt.Sprintf("%s:%d: exported %s %s has no doc comment", p.Filename, p.Line, kind, name))
	}
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if !d.Name.IsExported() || d.Doc != nil {
				continue
			}
			if d.Recv != nil {
				base, exported := receiverBase(d.Recv)
				if !exported {
					continue
				}
				missing(d.Pos(), "method", base+"."+d.Name.Name)
				continue
			}
			missing(d.Pos(), "function", d.Name.Name)
		case *ast.GenDecl:
			switch d.Tok {
			case token.TYPE:
				for _, spec := range d.Specs {
					ts := spec.(*ast.TypeSpec)
					if ts.Name.IsExported() && d.Doc == nil && ts.Doc == nil && ts.Comment == nil {
						missing(ts.Pos(), "type", ts.Name.Name)
					}
				}
			case token.VAR, token.CONST:
				// A doc on the block covers every spec inside it — the
				// idiomatic form for enum-style const groups.
				if d.Doc != nil {
					continue
				}
				for _, spec := range d.Specs {
					vs := spec.(*ast.ValueSpec)
					if vs.Doc != nil || vs.Comment != nil {
						continue
					}
					for _, n := range vs.Names {
						if n.IsExported() {
							missing(n.Pos(), strings.ToLower(d.Tok.String()), n.Name)
						}
					}
				}
			}
		}
	}
	return out
}

// receiverBase resolves a method receiver to its base type name and
// whether that type is exported.
func receiverBase(recv *ast.FieldList) (string, bool) {
	if len(recv.List) == 0 {
		return "", false
	}
	t := recv.List[0].Type
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
		case *ast.IndexExpr: // generic receiver T[P]
			t = x.X
		case *ast.IndexListExpr:
			t = x.X
		case *ast.Ident:
			return x.Name, x.IsExported()
		default:
			return "", false
		}
	}
}
