// Command covergate is the CI coverage-floor gate: it reads a merged Go
// coverage profile and a committed per-package floor file, computes each
// floored package's statement coverage, and exits non-zero when any
// package dropped below its floor. Packages without a floor are reported
// but never gate — floors are added deliberately, one package at a time,
// and only ratcheted upward once the new level has held.
//
// Usage:
//
//	go test -short -coverprofile=cover.out ./...
//	covergate -profile cover.out -floors ci/coverage-floor.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path"
	"sort"
	"strconv"
	"strings"
)

// Floors is the committed floor file layout.
type Floors struct {
	// Packages maps an import path to its minimum statement coverage in
	// percent (e.g. "focus/internal/cluster": 85).
	Packages map[string]float64 `json:"packages"`
}

// pkgCover accumulates statement counts for one package.
type pkgCover struct {
	total   int
	covered int
}

func (p pkgCover) percent() float64 {
	if p.total == 0 {
		return 0
	}
	return 100 * float64(p.covered) / float64(p.total)
}

func main() {
	profile := flag.String("profile", "cover.out", "merged coverage profile from go test -coverprofile")
	floors := flag.String("floors", "ci/coverage-floor.json", "committed per-package coverage floors")
	flag.Parse()

	fl, err := loadFloors(*floors)
	if err != nil {
		fmt.Fprintln(os.Stderr, "covergate:", err)
		os.Exit(2)
	}
	byPkg, err := parseProfile(*profile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "covergate:", err)
		os.Exit(2)
	}

	pkgs := make([]string, 0, len(fl.Packages))
	for pkg := range fl.Packages {
		pkgs = append(pkgs, pkg)
	}
	sort.Strings(pkgs)

	var failed bool
	for _, pkg := range pkgs {
		floor := fl.Packages[pkg]
		cov, ok := byPkg[pkg]
		if !ok {
			fmt.Fprintf(os.Stderr, "FAIL: %s: no statements in profile (package untested or renamed)\n", pkg)
			failed = true
			continue
		}
		got := cov.percent()
		status := "ok  "
		if got < floor {
			status = "FAIL"
			failed = true
		}
		// The signed delta against the floor is the ratchet signal: a
		// package holding several points of headroom is a candidate for a
		// deliberate floor raise; one hovering near zero is about to flap.
		fmt.Printf("%s %-32s %6.1f%% (floor %.1f%%, %+.1f vs floor, %d/%d statements)\n",
			status, pkg, got, floor, got-floor, cov.covered, cov.total)
	}
	if failed {
		fmt.Fprintln(os.Stderr, "covergate: coverage dropped below a committed floor")
		os.Exit(1)
	}
	fmt.Println("PASS: all floored packages at or above their coverage floors")
}

func loadFloors(path string) (*Floors, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var fl Floors
	if err := json.Unmarshal(data, &fl); err != nil {
		return nil, fmt.Errorf("parsing floors %s: %w", path, err)
	}
	if len(fl.Packages) == 0 {
		return nil, fmt.Errorf("floors %s has no packages", path)
	}
	for pkg, floor := range fl.Packages {
		if floor <= 0 || floor > 100 {
			return nil, fmt.Errorf("floors %s: %s floor %v out of (0, 100]", path, pkg, floor)
		}
	}
	return &fl, nil
}

// parseProfile reads a coverage profile ("mode:" header then one line per
// statement block: file.go:sl.sc,el.ec numStmts hitCount) and aggregates
// statement totals per import path.
func parseProfile(file string) (map[string]pkgCover, error) {
	f, err := os.Open(file)
	if err != nil {
		return nil, err
	}
	defer f.Close()

	byPkg := make(map[string]pkgCover)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "mode:") {
			continue
		}
		// <file>:<positions> <numStmts> <hitCount>
		fields := strings.Fields(line)
		if len(fields) != 3 {
			return nil, fmt.Errorf("%s:%d: malformed profile line %q", file, lineNo, line)
		}
		colon := strings.LastIndex(fields[0], ":")
		if colon < 0 {
			return nil, fmt.Errorf("%s:%d: malformed location %q", file, lineNo, fields[0])
		}
		pkg := path.Dir(fields[0][:colon])
		stmts, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("%s:%d: bad statement count %q", file, lineNo, fields[1])
		}
		hits, err := strconv.Atoi(fields[2])
		if err != nil {
			return nil, fmt.Errorf("%s:%d: bad hit count %q", file, lineNo, fields[2])
		}
		cov := byPkg[pkg]
		cov.total += stmts
		if hits > 0 {
			cov.covered += stmts
		}
		byPkg[pkg] = cov
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(byPkg) == 0 {
		return nil, fmt.Errorf("profile %s contains no statement blocks", file)
	}
	return byPkg, nil
}
