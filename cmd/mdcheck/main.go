// Command mdcheck is the documentation lint gate: it scans markdown files
// for inline links and image references and fails when a relative target
// does not exist on disk, so DESIGN.md/README.md can't drift into pointing
// at renamed or deleted files. External links (http/https/mailto) and pure
// in-page anchors are skipped — CI must not depend on the network.
//
// Usage:
//
//	mdcheck README.md DESIGN.md
//	mdcheck .            # every *.md under the directory, recursively
package main

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// linkRe matches inline markdown links/images: [text](target) / ![alt](target).
// Reference-style definitions are rare in this repo and left to reviewers.
var linkRe = regexp.MustCompile(`!?\[[^\]]*\]\(([^)\s]+)(?:\s+"[^"]*")?\)`)

func main() {
	args := os.Args[1:]
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "usage: mdcheck <file.md|dir>...")
		os.Exit(2)
	}
	var files []string
	for _, arg := range args {
		info, err := os.Stat(arg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mdcheck:", err)
			os.Exit(2)
		}
		if !info.IsDir() {
			files = append(files, arg)
			continue
		}
		err = filepath.WalkDir(arg, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() && (d.Name() == ".git" || d.Name() == "node_modules") {
				return filepath.SkipDir
			}
			if !d.IsDir() && strings.HasSuffix(d.Name(), ".md") {
				files = append(files, path)
			}
			return nil
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "mdcheck:", err)
			os.Exit(2)
		}
	}

	broken := 0
	for _, file := range files {
		for _, b := range checkFile(file) {
			fmt.Fprintln(os.Stderr, "mdcheck:", b)
			broken++
		}
	}
	if broken > 0 {
		fmt.Fprintf(os.Stderr, "mdcheck: %d broken link(s) across %d file(s)\n", broken, len(files))
		os.Exit(1)
	}
	fmt.Printf("mdcheck: %d file(s) clean\n", len(files))
}

// checkFile returns a description of every broken relative link in one
// markdown file.
func checkFile(file string) []string {
	raw, err := os.ReadFile(file)
	if err != nil {
		return []string{err.Error()}
	}
	var out []string
	dir := filepath.Dir(file)
	for lineNo, line := range strings.Split(string(raw), "\n") {
		for _, m := range linkRe.FindAllStringSubmatch(line, -1) {
			target := m[1]
			if skipTarget(target) {
				continue
			}
			// Drop any in-page fragment; the file part must exist.
			if i := strings.IndexByte(target, '#'); i >= 0 {
				target = target[:i]
				if target == "" {
					continue // pure anchor
				}
			}
			resolved := filepath.Join(dir, filepath.FromSlash(target))
			if _, err := os.Stat(resolved); err != nil {
				out = append(out, fmt.Sprintf("%s:%d: broken link %q (%s)",
					file, lineNo+1, m[1], resolved))
			}
		}
	}
	return out
}

// skipTarget reports link targets the checker does not validate: external
// schemes and absolute URLs.
func skipTarget(t string) bool {
	for _, prefix := range []string{"http://", "https://", "mailto:", "ftp://", "//"} {
		if strings.HasPrefix(t, prefix) {
			return true
		}
	}
	return false
}
