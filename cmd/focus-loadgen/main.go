// Command focus-loadgen drives a focus-serve instance — or a sharded
// focus-router cluster — with deterministic closed-loop load over the v1
// wire API (through the typed focus/client package): single-class
// frames-form traffic, optionally mixed with compound ranked plans
// (-plans/-plan-every), temporal track queries (-tracks/-track-every),
// cursor-paged reads (-page-every), deprecated legacy-shim requests
// (-legacy-every, covering the migration surface), and standing queries
// (-subscribe-every: POST /v1/subscribe streams whose deltas are
// reassembled client-side and verified against a direct execution at the
// delivered watermark vector).
// It reports throughput, latency percentiles and error counts, and it is
// the CI smoke/soak gate:
//
//   - -boot starts one in-process service and verifies every sampled
//     response (plain and plan) against a direct library execution at the
//     same watermark vector.
//   - -boot-cluster N starts N in-process focus-serve shards (streams
//     placed by a shard map), a focus-router in front of them, and a
//     reference focus.System holding every stream; sampled routed
//     responses are verified against the reference system at the merged
//     watermark vector — the scatter-gather stack must never change an
//     answer. -drain-one-after additionally drains the last shard mid-run
//     to exercise 503-during-drain semantics. -chaos-kill-after instead
//     runs the crash-recovery drill: the last shard is killed the way
//     SIGKILL would (connections severed, store abandoned unsynced),
//     left dead for -chaos-down-for seconds, then restarted on the same
//     address and store — it must cold-start from its checkpoint, clients
//     must only ever see typed shard_down/unavailable rejections (or
//     partial answers when -allow-partial-every opts in) during the
//     outage, and the post-recovery answer at the pinned pre-crash
//     watermark must be bit-identical.
//     -reshard-after runs the live-reshard drill: mid-run a fresh empty
//     shard joins the cluster and the router live-reshards one stream
//     onto it (seal → export → import → activate → flip → release) while
//     the clients keep querying — the move must complete cleanly, clients
//     must only ever see the allowed typed transients, and the moved
//     stream's pre-move answer, pinned at the same watermark vector, must
//     be bit-identical on the new owner.
//
// Either way it exits non-zero on any unexpected status, transport error,
// served-vs-direct mismatch, or p99 above the committed budget.
//
// Usage:
//
//	focus-loadgen -url http://127.0.0.1:7070 [-clients 16] [-run-seconds 30]
//	focus-loadgen -boot [-streams auburn_c,jacksonh,city_a_d] [-window 240]
//	              [-clients 16] [-run-seconds 30] [-max-p99 500] [-verify-every 1]
//	              [-plans 'car & person & !bus; (car | truck) & person'] [-plan-every 4]
//	focus-loadgen -boot-cluster 2 [-streams auburn_c,jacksonh,city_a_d]
//	              [-clients 16] [-run-seconds 30] [-drain-one-after 25]
//	focus-loadgen -boot-cluster 2 -run-seconds 45 -chaos-kill-after 15
//	              [-chaos-down-for 5] [-checkpoint-every 1] [-allow-partial-every 4]
//	focus-loadgen -boot-cluster 2 -run-seconds 45 -reshard-after 15
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	"focus"
	"focus/internal/loadgen"
	"focus/internal/serve"
)

func main() {
	url := flag.String("url", "", "base URL of a running focus-serve or focus-router (mutually exclusive with -boot/-boot-cluster)")
	boot := flag.Bool("boot", false, "boot an in-process focus-serve and drive it (enables served-vs-direct verification)")
	bootCluster := flag.Int("boot-cluster", 0, "boot N in-process shards + a router + a reference system and drive the router (enables cross-shard verification)")
	drainOneAfter := flag.Float64("drain-one-after", 0, "in -boot-cluster mode, drain the last shard after this many seconds (0 = never)")
	chaosKillAfter := flag.Float64("chaos-kill-after", 0, "in -boot-cluster mode, kill the last shard (sever connections, abandon its store unsynced) after this many seconds (0 = never)")
	chaosDownFor := flag.Float64("chaos-down-for", 5, "in chaos mode, how many seconds the killed shard stays dead before restarting from its checkpoint")
	checkpointEvery := flag.Int("checkpoint-every", 0, "in chaos mode, shard checkpoint cadence in ingest chunks (0 = every chunk)")
	reshardAfter := flag.Float64("reshard-after", 0, "in -boot-cluster mode, join a fresh empty shard after this many seconds and live-reshard one stream onto it under load (0 = never)")
	allowPartialEvery := flag.Int("allow-partial-every", 0, "every Nth whole-corpus query opts into allow_partial degraded answers (0 = never; chaos mode defaults to 4)")
	faultErrorRate := flag.Float64("fault-error-rate", 0, "in -boot-cluster mode, arm every shard's fault injector: probability (0..1) that a data-plane request fails with a typed 503 \"unavailable\" (the router's sub-request retries must absorb most of them)")
	faultLatency := flag.Duration("fault-latency", 0, "in -boot-cluster mode, extra injected latency on every shard data-plane request")
	clients := flag.Int("clients", 16, "concurrent closed-loop clients")
	runSeconds := flag.Float64("run-seconds", 30, "load duration in seconds")
	seed := flag.Uint64("seed", 1, "deterministic client seed")
	classesArg := flag.String("classes", "", "comma-separated class pool (default: dominant classes of the streams in -boot mode, car,person otherwise)")
	zipfAlpha := flag.Float64("zipf", 1.1, "class popularity skew")
	verifyEvery := flag.Int("verify-every", 1, "verify every Nth OK response per client in -boot mode (0 = never)")
	plans := flag.String("plans", "", "semicolon-separated compound plan expressions mixed into the load (e.g. 'car & person & !bus; car | truck')")
	planEvery := flag.Int("plan-every", 0, "every Nth request per client is a POST /plan from -plans (0 = never)")
	tracks := flag.String("tracks", "", "semicolon-separated temporal track expressions mixed into the load (e.g. 'car & dur(5); person & vel(1)')")
	trackEvery := flag.Int("track-every", 0, "every Nth request per client is a tracks-form query from -tracks (0 = never)")
	singleStreamEvery := flag.Int("single-stream-every", 0, "every Nth plain query targets one stream instead of the whole corpus (0 = never; -boot-cluster defaults to 3 so healthy shards stay exercised during a drain)")
	planTopK := flag.Int("plan-top-k", 10, "top_k for plan requests")
	earlyExitEvery := flag.Int("early-exit-every", 0, "every Nth plan request per client runs in early-exit mode (mode=early_exit: stop at -plan-top-k verified items; 0 = plans always exact)")
	legacyEvery := flag.Int("legacy-every", 0, "every Nth request per client goes through the deprecated /query or /plan shim instead of /v1/query (0 = v1 only)")
	pageEvery := flag.Int("page-every", 0, "every Nth plan request per client is a cursor-paged read (0 = one-shot only)")
	pageSize := flag.Int("page-size", 5, "page limit for cursor-paged plan reads")
	subscribeEvery := flag.Int("subscribe-every", 0, "every Nth request per client opens a POST /v1/subscribe standing query over a -plans or -tracks predicate, collects deltas, and verifies the reassembled answer (0 = never)")
	subscribeFor := flag.Duration("subscribe-for", 2*time.Second, "how long each opened subscription collects deltas before verification")
	maxP99 := flag.Float64("max-p99", 0, "fail if p99 latency exceeds this many milliseconds (0 = no budget)")
	jsonOut := flag.Bool("json", false, "print the report as JSON")

	// -boot service shape.
	streams := flag.String("streams", "auburn_c,jacksonh,city_a_d", "streams for -boot")
	window := flag.Float64("window", 240, "ingest horizon seconds for -boot")
	tuneWindow := flag.Float64("tune-window", 60, "tuning window seconds for -boot")
	chunk := flag.Float64("chunk", 5, "watermark chunk seconds for -boot")
	ingestInterval := flag.Duration("ingest-interval", 500*time.Millisecond, "pause between ingest steps for -boot")
	workers := flag.Int("workers", 8, "query workers for -boot")
	queue := flag.Int("queue", 16, "admission queue depth for -boot")
	recall := flag.Float64("recall", 0.9, "tuner recall target for -boot")
	precision := flag.Float64("precision", 0.9, "tuner precision target for -boot")
	flag.Parse()

	modes := 0
	for _, on := range []bool{*url != "", *boot, *bootCluster > 0} {
		if on {
			modes++
		}
	}
	if modes != 1 {
		fmt.Fprintln(os.Stderr, "focus-loadgen: exactly one of -url, -boot or -boot-cluster is required")
		os.Exit(2)
	}

	cfg := loadgen.Config{
		BaseURL:           *url,
		Clients:           *clients,
		Duration:          time.Duration(*runSeconds * float64(time.Second)),
		Seed:              *seed,
		ZipfAlpha:         *zipfAlpha,
		VerifyEvery:       *verifyEvery,
		PlanEvery:         *planEvery,
		PlanTopK:          *planTopK,
		EarlyExitEvery:    *earlyExitEvery,
		TrackEvery:        *trackEvery,
		SingleStreamEvery: *singleStreamEvery,
		LegacyEvery:       *legacyEvery,
		PageEvery:         *pageEvery,
		PageSize:          *pageSize,
		SubscribeEvery:    *subscribeEvery,
		SubscribeFor:      *subscribeFor,
	}
	cfg.AllowPartialEvery = *allowPartialEvery
	chaos := chaosSpec{
		KillAfter:       time.Duration(*chaosKillAfter * float64(time.Second)),
		DownFor:         time.Duration(*chaosDownFor * float64(time.Second)),
		CheckpointEvery: *checkpointEvery,
	}
	if chaos.enabled() && *bootCluster == 0 {
		fmt.Fprintln(os.Stderr, "focus-loadgen: -chaos-kill-after requires -boot-cluster")
		os.Exit(2)
	}
	if chaos.enabled() && *chaosKillAfter+*chaosDownFor >= *runSeconds {
		fmt.Fprintln(os.Stderr, "focus-loadgen: the chaos schedule (-chaos-kill-after + -chaos-down-for) must complete within -run-seconds")
		os.Exit(2)
	}
	reshard := reshardSpec{After: time.Duration(*reshardAfter * float64(time.Second))}
	if reshard.enabled() && *bootCluster == 0 {
		fmt.Fprintln(os.Stderr, "focus-loadgen: -reshard-after requires -boot-cluster")
		os.Exit(2)
	}
	if reshard.enabled() && *reshardAfter >= *runSeconds {
		fmt.Fprintln(os.Stderr, "focus-loadgen: -reshard-after must fire within -run-seconds")
		os.Exit(2)
	}
	fault := serve.FaultConfig{ErrorRate: *faultErrorRate, Latency: *faultLatency, Seed: *seed}
	if fault.Active() && *bootCluster == 0 {
		fmt.Fprintln(os.Stderr, "focus-loadgen: -fault-error-rate/-fault-latency require -boot-cluster")
		os.Exit(2)
	}
	if *bootCluster > 0 {
		// A drain (or a chaos kill, or armed fault injection) is only
		// acceptable when this run causes one; and during an outage, only
		// single-stream queries against healthy shards can keep succeeding,
		// so make sure some are issued.
		cfg.AcceptDraining = *drainOneAfter > 0
		// A live reshard briefly rejects traffic on the moving stream with
		// the same typed transients an outage produces (unavailable /
		// not_ready around the cutover), so the drill opts into them too.
		cfg.AcceptOutage = chaos.enabled() || reshard.enabled() || fault.ErrorRate > 0
		if cfg.SingleStreamEvery == 0 {
			cfg.SingleStreamEvery = 3
		}
		if chaos.enabled() && cfg.AllowPartialEvery == 0 {
			// A chaos drill should also exercise the degraded-answer path:
			// some whole-corpus queries keep succeeding partially while the
			// victim is down.
			cfg.AllowPartialEvery = 4
		}
	}
	if *classesArg != "" {
		cfg.Classes = splitCSV(*classesArg)
	}
	for _, expr := range strings.Split(*plans, ";") {
		if expr = strings.TrimSpace(expr); expr != "" {
			cfg.Plans = append(cfg.Plans, expr)
		}
	}
	for _, expr := range strings.Split(*tracks, ";") {
		if expr = strings.TrimSpace(expr); expr != "" {
			cfg.Tracks = append(cfg.Tracks, expr)
		}
	}

	var shutdown func()
	chaosChecks := func() []string { return nil }
	if *boot {
		var err error
		shutdown, err = bootService(&cfg, *streams, *window, *tuneWindow, *chunk,
			*ingestInterval, *workers, *queue, *seed, *recall, *precision)
		if err != nil {
			log.Fatalf("focus-loadgen: %v", err)
		}
		defer shutdown()
	}
	if *bootCluster > 0 {
		var err error
		shutdown, chaosChecks, err = bootShardedCluster(&cfg, *bootCluster, *streams, *window, *tuneWindow, *chunk,
			*ingestInterval, *workers, *queue, *seed, *recall, *precision, *drainOneAfter, chaos, reshard, fault)
		if err != nil {
			log.Fatalf("focus-loadgen: %v", err)
		}
		defer shutdown()
	}
	if len(cfg.Classes) == 0 {
		cfg.Classes = []string{"car", "person"}
	}
	if len(cfg.Streams) == 0 {
		// -boot fills this from its registered streams; for -url runs the
		// -streams flag doubles as the single-stream pool.
		cfg.Streams = splitCSV(*streams)
	}

	log.Printf("focus-loadgen: %d clients for %.0fs against %s (classes: %s)",
		cfg.Clients, cfg.Duration.Seconds(), cfg.BaseURL, strings.Join(cfg.Classes, ","))
	rep, err := loadgen.Run(cfg)
	if err != nil {
		log.Fatalf("focus-loadgen: %v", err)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		_ = enc.Encode(rep)
	} else {
		printReport(rep)
	}

	failures := rep.Failures()
	// The chaos checks join on the kill/restart sequence, so run them
	// before tearing the cluster down.
	failures = append(failures, chaosChecks()...)
	if *maxP99 > 0 && rep.P99MS > *maxP99 {
		failures = append(failures, fmt.Sprintf("p99 %.1fms exceeds budget %.1fms", rep.P99MS, *maxP99))
	}
	if cfg.AcceptDraining && rep.Draining == 0 {
		// The drain exercise is the point of -drain-one-after: a run that
		// never observed a marked 503 (drain POST failed, timer fired too
		// late) silently skipped the semantics this gate exists to test —
		// and ran with a loosened 503 policy to boot.
		failures = append(failures, "drain requested but no draining 503s were observed")
	}
	if chaos.enabled() && rep.Outage == 0 {
		// Same reasoning for the chaos drill: a run that never saw a typed
		// outage rejection didn't actually exercise the outage window it
		// loosened the gate for. (Fault-rate runs don't require leaks —
		// the router's retries absorbing every injected error is success,
		// and the retries themselves are asserted by the cluster checks.)
		failures = append(failures, "chaos kill requested but no outage-typed rejections were observed")
	}
	if chaos.enabled() && cfg.AllowPartialEvery > 0 && rep.Partials == 0 {
		failures = append(failures, "chaos run mixed in allow_partial but no partial responses were observed")
	}
	if rep.OK == 0 {
		failures = append(failures, "no successful responses at all")
	}
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintln(os.Stderr, "FAIL:", f)
		}
		os.Exit(1)
	}
	fmt.Println("PASS")
}

// bootService starts an in-process focus-serve on a loopback port, fills in
// cfg.BaseURL/Verifier/Classes, and returns its shutdown function.
func bootService(cfg *loadgen.Config, streams string, window, tuneWindow, chunk float64,
	ingestInterval time.Duration, workers, queue int, seed uint64, recall, precision float64) (func(), error) {
	sys, err := focus.New(focus.Config{
		Seed:        seed,
		Targets:     focus.Targets{Recall: recall, Precision: precision},
		TuneOptions: serve.QuickTuneOptions(),
	})
	if err != nil {
		return nil, err
	}
	names := splitCSV(streams)
	var dominant []string
	seen := make(map[string]bool)
	for _, name := range names {
		sess, err := sys.AddTable1Stream(name)
		if err != nil {
			sys.Close()
			return nil, err
		}
		for _, c := range sess.Stream().DominantClasses(4) {
			cn := sys.Space().Name(c)
			if !seen[cn] {
				seen[cn] = true
				dominant = append(dominant, cn)
			}
		}
	}
	if len(cfg.Classes) == 0 {
		cfg.Classes = dominant
	}

	srv := serve.New(sys, serve.Config{
		Window:         focus.GenOptions{DurationSec: window, SampleEvery: 1},
		TuneWindow:     focus.GenOptions{DurationSec: tuneWindow, SampleEvery: 1},
		ChunkSec:       chunk,
		IngestInterval: ingestInterval,
		QueryWorkers:   workers,
		QueueDepth:     queue,
	})
	log.Printf("focus-loadgen: booting service (%d streams, window %.0fs, tune %.0fs)…",
		len(names), window, tuneWindow)
	t0 := time.Now()
	if err := srv.Start(); err != nil {
		sys.Close()
		return nil, err
	}
	log.Printf("focus-loadgen: service ready in %.1fs", time.Since(t0).Seconds())

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		srv.Stop()
		sys.Close()
		return nil, err
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go func() { _ = httpSrv.Serve(ln) }()

	cfg.BaseURL = "http://" + ln.Addr().String()
	if cfg.VerifyEvery > 0 {
		cfg.Verifier = loadgen.NewDirectVerifier(sys)
		cfg.PlanVerifier = loadgen.NewDirectPlanVerifier(sys)
		cfg.TrackVerifier = loadgen.NewDirectTrackVerifier(sys)
		cfg.DeltaVerifier = loadgen.NewDeltaVerifier(sys)
	}
	return func() {
		_ = httpSrv.Close()
		srv.Stop()
		stats := srv.Snapshot()
		log.Printf("focus-loadgen: service saw %d queries, %d cache hits, %d misses, %d rejected; watermarks %v",
			stats.Queries, stats.CacheHits, stats.CacheMisses, stats.Rejected, stats.Watermarks)
		sys.Close()
	}, nil
}

func printReport(r *loadgen.Report) {
	fmt.Printf("clients           %d\n", r.Clients)
	fmt.Printf("elapsed           %.1fs\n", r.ElapsedSec)
	fmt.Printf("requests          %d (%.1f req/s)\n", r.Requests, r.ThroughputRPS)
	fmt.Printf("ok / rejected     %d / %d\n", r.OK, r.Rejected)
	if r.Draining > 0 {
		fmt.Printf("draining 503s     %d\n", r.Draining)
	}
	if r.Outage > 0 {
		fmt.Printf("outage 503s       %d\n", r.Outage)
	}
	if r.Partials > 0 {
		fmt.Printf("partial answers   %d\n", r.Partials)
	}
	fmt.Printf("cache hits        %d\n", r.CacheHits)
	if r.PlanRequests > 0 {
		fmt.Printf("plan requests     %d (verified: %d, cursor-paged: %d, early-exit: %d)\n",
			r.PlanRequests, r.PlanVerified, r.PagedRequests, r.EarlyExitRequests)
	}
	if r.TrackRequests > 0 {
		fmt.Printf("track requests    %d (verified: %d)\n", r.TrackRequests, r.TrackVerified)
	}
	if r.LegacyRequests > 0 {
		fmt.Printf("legacy requests   %d\n", r.LegacyRequests)
	}
	if r.Subscriptions > 0 || r.SubscriptionShortfall != "" {
		fmt.Printf("subscriptions     %d (deltas: %d, verified: %d)\n",
			r.Subscriptions, r.DeltaEvents, r.SubscriptionsVerified)
	}
	fmt.Printf("verified          %d (mismatches: %d)\n", r.Verified, len(r.Mismatches))
	fmt.Printf("latency ms        p50 %.2f  p90 %.2f  p99 %.2f  max %.2f\n",
		r.P50MS, r.P90MS, r.P99MS, r.MaxMS)
	if len(r.Unexpected) > 0 {
		fmt.Printf("unexpected        %v\n", r.Unexpected)
	}
	if r.NetErrors > 0 {
		fmt.Printf("net errors        %d %v\n", r.NetErrors, r.ErrorSamples)
	}
}

func splitCSV(s string) []string {
	var out []string
	for _, v := range strings.Split(s, ",") {
		if v = strings.TrimSpace(v); v != "" {
			out = append(out, v)
		}
	}
	return out
}
