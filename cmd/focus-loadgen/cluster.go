package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/http"
	"sort"
	"sync"
	"time"

	"focus"
	"focus/client"
	"focus/internal/loadgen"
	"focus/internal/router"
	"focus/internal/serve"
)

// shardProc is one in-process shard: its own focus.System and serve.Server
// behind a loopback listener — the same topology as N focus-serve
// processes, minus the process boundary.
type shardProc struct {
	name    string
	url     string
	sys     *focus.System
	srv     *serve.Server
	httpSrv *http.Server
}

// bootShardedCluster starts n in-process focus-serve shards (streams
// placed round-robin through ShardMap pins), a router fronting them over
// real loopback HTTP, and a reference focus.System that tunes and ingests
// every stream the same way the shards do. It points cfg at the router and
// installs verifiers that replay sampled routed responses on the reference
// system at the exact merged watermark vector — pinning the acceptance
// contract "routed answers are bit-identical to a single System holding
// all streams". drainAfter > 0 additionally drains the last shard via its
// admin endpoint mid-run.
func bootShardedCluster(cfg *loadgen.Config, n int, streams string, window, tuneWindow, chunk float64,
	ingestInterval time.Duration, workers, queue int, seed uint64, recall, precision float64,
	drainAfter float64) (func(), error) {
	names := splitCSV(streams)
	sort.Strings(names)
	if n < 2 {
		return nil, fmt.Errorf("-boot-cluster needs at least 2 shards, got %d", n)
	}
	if n > len(names) {
		return nil, fmt.Errorf("-boot-cluster %d shards need at least that many streams, got %d", n, len(names))
	}

	// Placement: round-robin pins over the sorted stream names, so every
	// shard owns at least one stream. (Real deployments can leave streams
	// unpinned and let rendezvous hashing place them; the CLI pins for
	// balance at tiny stream counts.)
	smap := &router.ShardMap{Pins: make(map[string]string, len(names))}
	perShard := make([][]string, n)
	for i, st := range names {
		shard := i % n
		smap.Pins[st] = shardName(shard)
		perShard[shard] = append(perShard[shard], st)
	}

	fcfg := focus.Config{
		Seed:        seed,
		Targets:     focus.Targets{Recall: recall, Precision: precision},
		TuneOptions: serve.QuickTuneOptions(),
	}
	windowOpts := focus.GenOptions{DurationSec: window, SampleEvery: 1}
	tuneOpts := focus.GenOptions{DurationSec: tuneWindow, SampleEvery: 1}

	var cleanup []func()
	shutdown := func() {
		for i := len(cleanup) - 1; i >= 0; i-- {
			cleanup[i]()
		}
	}
	fail := func(err error) (func(), error) {
		shutdown()
		return nil, err
	}

	// Build every shard system and expose its listener up front: readiness
	// is probed over HTTP (503 until Start finishes), like a real rollout.
	shards := make([]*shardProc, n)
	var dominant []string
	seen := make(map[string]bool)
	for i := range shards {
		sys, err := focus.New(fcfg)
		if err != nil {
			return fail(err)
		}
		cleanup = append(cleanup, func() { sys.Close() })
		for _, st := range perShard[i] {
			sess, err := sys.AddTable1Stream(st)
			if err != nil {
				return fail(err)
			}
			for _, c := range sess.Stream().DominantClasses(4) {
				if cn := sys.Space().Name(c); !seen[cn] {
					seen[cn] = true
					dominant = append(dominant, cn)
				}
			}
		}
		srv := serve.New(sys, serve.Config{
			Window:         windowOpts,
			TuneWindow:     tuneOpts,
			ChunkSec:       chunk,
			IngestInterval: ingestInterval,
			QueryWorkers:   workers,
			QueueDepth:     queue,
		})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return fail(err)
		}
		httpSrv := &http.Server{Handler: srv.Handler()}
		go func() { _ = httpSrv.Serve(ln) }()
		sh := &shardProc{
			name:    shardName(i),
			url:     "http://" + ln.Addr().String(),
			sys:     sys,
			srv:     srv,
			httpSrv: httpSrv,
		}
		shards[i] = sh
		cleanup = append(cleanup, func() { _ = sh.httpSrv.Close(); sh.srv.Stop() })
		smap.Shards = append(smap.Shards, router.ShardSpec{Name: sh.name, URL: sh.url})
	}

	// Reference system: all streams in one focus.System, tuned over the
	// same window as the shards and ingested one-shot to the full horizon,
	// so it can answer any watermark vector the shards reach mid-ingest.
	refSys, err := focus.New(fcfg)
	if err != nil {
		return fail(err)
	}
	cleanup = append(cleanup, func() { refSys.Close() })
	for _, st := range names {
		if _, err := refSys.AddTable1Stream(st); err != nil {
			return fail(err)
		}
	}

	// Boot the shards and the reference ingest concurrently: each shard
	// tunes its own streams, the reference tunes and ingests all of them.
	log.Printf("focus-loadgen: booting %d shards + reference system (%d streams, window %.0fs, tune %.0fs)…",
		n, len(names), window, tuneWindow)
	t0 := time.Now()
	errs := make([]error, n+1)
	var wg sync.WaitGroup
	for i, sh := range shards {
		wg.Add(1)
		go func(i int, sh *shardProc) {
			defer wg.Done()
			errs[i] = sh.srv.Start()
		}(i, sh)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for _, sess := range refSys.Sessions() {
			if err := sess.Tune(tuneOpts); err != nil {
				errs[n] = err
				return
			}
		}
		errs[n] = refSys.IngestAll(windowOpts)
	}()
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return fail(err)
		}
	}
	log.Printf("focus-loadgen: shards + reference ready in %.1fs", time.Since(t0).Seconds())

	rt, err := router.New(router.Config{
		Map: smap,
		// Poll fast so a mid-run drain is noticed well within the drain
		// grace an operator would configure.
		Refresh: 250 * time.Millisecond,
	})
	if err != nil {
		return fail(err)
	}
	if err := rt.Start(); err != nil {
		return fail(err)
	}
	cleanup = append(cleanup, rt.Stop)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return fail(err)
	}
	routerSrv := &http.Server{Handler: rt.Handler()}
	go func() { _ = routerSrv.Serve(ln) }()
	cleanup = append(cleanup, func() { _ = routerSrv.Close() })
	cfg.BaseURL = "http://" + ln.Addr().String()
	for _, sh := range rt.Snapshot().Shards {
		log.Printf("focus-loadgen: shard %s (%s) owns %v", sh.Name, sh.URL, sh.Streams)
	}

	if len(cfg.Classes) == 0 {
		cfg.Classes = dominant
	}
	cfg.Streams = names
	if cfg.VerifyEvery > 0 {
		cfg.Verifier = loadgen.NewDirectVerifier(refSys)
		cfg.PlanVerifier = loadgen.NewDirectPlanVerifier(refSys)
	}

	if drainAfter > 0 {
		last := shards[len(shards)-1]
		timer := time.AfterFunc(time.Duration(drainAfter*float64(time.Second)), func() {
			log.Printf("focus-loadgen: draining shard %s (%s)", last.name, last.url)
			if err := client.New(last.url).Drain(context.Background()); err != nil {
				log.Printf("focus-loadgen: drain request failed: %v", err)
			}
		})
		// A drain scheduled past the end of the run must not fire into the
		// torn-down cluster and log a spurious failure after the report.
		cleanup = append(cleanup, func() { timer.Stop() })
	}

	cleanup = append(cleanup, func() {
		stats := rt.Snapshot()
		log.Printf("focus-loadgen: router saw %d queries, %d plans, %d shard requests, %d rejected, %d unavailable",
			stats.Queries, stats.PlanQueries, stats.ShardRequests, stats.Rejected, stats.Unavailable)
	})
	return shutdown, nil
}

func shardName(i int) string { return fmt.Sprintf("shard-%d", i) }
