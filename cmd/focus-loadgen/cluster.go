package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"sync"
	"time"

	"focus"
	"focus/api"
	"focus/client"
	"focus/internal/loadgen"
	"focus/internal/router"
	"focus/internal/serve"
)

// shardProc is one in-process shard: its own focus.System and serve.Server
// behind a loopback listener — the same topology as N focus-serve
// processes, minus the process boundary. The chaos drill replaces sys, srv
// and httpSrv mid-run (under mu) when it kills and restarts the shard.
type shardProc struct {
	mu      sync.Mutex
	name    string
	url     string
	addr    string   // host:port, re-bound on restart so the shard map stays valid
	streams []string // owned streams, re-registered on restart
	fcfg    focus.Config
	scfg    serve.Config
	sys     *focus.System
	srv     *serve.Server
	httpSrv *http.Server
}

// chaosSpec parameterizes the kill/restart fault drill in -boot-cluster
// mode: KillAfter into the run the last shard is killed the way a SIGKILL
// would (connections severed, store abandoned without flush or sync),
// left dead for DownFor, then restarted on the same address and store —
// which must cold-start from its latest checkpoint. Zero KillAfter
// disables the drill.
type chaosSpec struct {
	KillAfter       time.Duration
	DownFor         time.Duration
	CheckpointEvery int // shard checkpoint cadence in ingest chunks (0 = every chunk)
}

func (c chaosSpec) enabled() bool { return c.KillAfter > 0 }

// reshardSpec parameterizes the live-reshard drill in -boot-cluster mode:
// After seconds into the run a fresh, empty shard joins the cluster and
// the router is asked to live-reshard one stream onto it — an N→N+1 grow
// transition under full traffic. Zero After disables the drill.
type reshardSpec struct {
	After time.Duration
}

func (r reshardSpec) enabled() bool { return r.After > 0 }

// chaosRun collects a drill's asynchronous assertions; checks() joins on
// it after the load run and returns them as gate failures. Both the
// kill/restart and the live-reshard drill report through one.
type chaosRun struct {
	mu       sync.Mutex
	failures []string
	done     chan struct{}
	timers   []*time.Timer
	cleanup  []func()
}

func (c *chaosRun) fail(format string, args ...any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.failures = append(c.failures, fmt.Sprintf(format, args...))
}

// stop cancels pending drill timers and tears down anything the drill
// booted mid-run (the joined shard, for the reshard drill).
func (c *chaosRun) stop() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, t := range c.timers {
		t.Stop()
	}
	for i := len(c.cleanup) - 1; i >= 0; i-- {
		c.cleanup[i]()
	}
	c.cleanup = nil
}

// bootShardedCluster starts n in-process focus-serve shards (streams
// placed round-robin through ShardMap pins), a router fronting them over
// real loopback HTTP, and a reference focus.System that tunes and ingests
// every stream the same way the shards do. It points cfg at the router and
// installs verifiers that replay sampled routed responses on the reference
// system at the exact merged watermark vector — pinning the acceptance
// contract "routed answers are bit-identical to a single System holding
// all streams". drainAfter > 0 additionally drains the last shard via its
// admin endpoint mid-run; chaos.enabled() instead kills and restarts it
// (see chaosSpec); fault.Active() arms every shard's fault-injection
// middleware, which the router's sub-request retries must mostly absorb.
// The returned checks function blocks until any armed chaos drill
// finishes and returns its failures; call it after the run, before
// shutdown.
func bootShardedCluster(cfg *loadgen.Config, n int, streams string, window, tuneWindow, chunk float64,
	ingestInterval time.Duration, workers, queue int, seed uint64, recall, precision float64,
	drainAfter float64, chaos chaosSpec, reshard reshardSpec, fault serve.FaultConfig) (func(), func() []string, error) {
	names := splitCSV(streams)
	sort.Strings(names)
	if n < 2 {
		return nil, nil, fmt.Errorf("-boot-cluster needs at least 2 shards, got %d", n)
	}
	if n > len(names) {
		return nil, nil, fmt.Errorf("-boot-cluster %d shards need at least that many streams, got %d", n, len(names))
	}

	// Placement: round-robin pins over the sorted stream names, so every
	// shard owns at least one stream. (Real deployments can leave streams
	// unpinned and let rendezvous hashing place them; the CLI pins for
	// balance at tiny stream counts.)
	smap := &router.ShardMap{Pins: make(map[string]string, len(names))}
	perShard := make([][]string, n)
	for i, st := range names {
		shard := i % n
		smap.Pins[st] = shardName(shard)
		perShard[shard] = append(perShard[shard], st)
	}

	fcfg := focus.Config{
		Seed:        seed,
		Targets:     focus.Targets{Recall: recall, Precision: precision},
		TuneOptions: serve.QuickTuneOptions(),
	}
	windowOpts := focus.GenOptions{DurationSec: window, SampleEvery: 1}
	tuneOpts := focus.GenOptions{DurationSec: tuneWindow, SampleEvery: 1}
	scfg := serve.Config{
		Window:         windowOpts,
		TuneWindow:     tuneOpts,
		ChunkSec:       chunk,
		IngestInterval: ingestInterval,
		QueryWorkers:   workers,
		QueueDepth:     queue,
		Fault:          fault,
	}
	if fault.Active() {
		log.Printf("focus-loadgen: FAULT INJECTION ARMED on every shard (error-rate %.2f, latency %s)",
			fault.ErrorRate, fault.Latency)
	}

	var cleanup []func()
	shutdown := func() {
		for i := len(cleanup) - 1; i >= 0; i-- {
			cleanup[i]()
		}
	}
	fail := func(err error) (func(), func() []string, error) {
		shutdown()
		return nil, nil, err
	}

	// The chaos drill needs durable shards: each gets its own data
	// directory so the restarted shard can cold-start from the checkpoints
	// the killed one published.
	var dataDir string
	if chaos.enabled() {
		var err error
		dataDir, err = os.MkdirTemp("", "focus-chaos-")
		if err != nil {
			return nil, nil, err
		}
		cleanup = append(cleanup, func() { _ = os.RemoveAll(dataDir) })
	}

	// Build every shard system and expose its listener up front: readiness
	// is probed over HTTP (503 until Start finishes), like a real rollout.
	shards := make([]*shardProc, n)
	var dominant []string
	seen := make(map[string]bool)
	for i := range shards {
		sh := &shardProc{name: shardName(i), streams: perShard[i], fcfg: fcfg, scfg: scfg}
		if chaos.enabled() {
			shardDir := filepath.Join(dataDir, sh.name)
			if err := os.MkdirAll(shardDir, 0o755); err != nil {
				return fail(err)
			}
			sh.fcfg.StorePath = filepath.Join(shardDir, "focus.kv")
			sh.scfg.DataDir = shardDir
			sh.scfg.StoreName = "focus.kv"
			sh.scfg.CheckpointEvery = chaos.CheckpointEvery
		}
		sys, err := focus.New(sh.fcfg)
		if err != nil {
			return fail(err)
		}
		sh.sys = sys
		cleanup = append(cleanup, func() {
			sh.mu.Lock()
			defer sh.mu.Unlock()
			sh.sys.Close()
		})
		for _, st := range sh.streams {
			sess, err := sys.AddTable1Stream(st)
			if err != nil {
				return fail(err)
			}
			for _, c := range sess.Stream().DominantClasses(4) {
				if cn := sys.Space().Name(c); !seen[cn] {
					seen[cn] = true
					dominant = append(dominant, cn)
				}
			}
		}
		sh.srv = serve.New(sys, sh.scfg)
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return fail(err)
		}
		sh.addr = ln.Addr().String()
		sh.url = "http://" + sh.addr
		sh.httpSrv = &http.Server{Handler: sh.srv.Handler()}
		go func(srv *http.Server) { _ = srv.Serve(ln) }(sh.httpSrv)
		shards[i] = sh
		cleanup = append(cleanup, func() {
			sh.mu.Lock()
			defer sh.mu.Unlock()
			_ = sh.httpSrv.Close()
			sh.srv.Stop()
		})
		smap.Shards = append(smap.Shards, router.ShardSpec{Name: sh.name, URL: sh.url})
	}

	// Reference system: all streams in one focus.System, tuned over the
	// same window as the shards and ingested one-shot to the full horizon,
	// so it can answer any watermark vector the shards reach mid-ingest.
	refSys, err := focus.New(fcfg)
	if err != nil {
		return fail(err)
	}
	cleanup = append(cleanup, func() { refSys.Close() })
	for _, st := range names {
		if _, err := refSys.AddTable1Stream(st); err != nil {
			return fail(err)
		}
	}

	// Boot the shards and the reference ingest concurrently: each shard
	// tunes its own streams, the reference tunes and ingests all of them.
	log.Printf("focus-loadgen: booting %d shards + reference system (%d streams, window %.0fs, tune %.0fs)…",
		n, len(names), window, tuneWindow)
	t0 := time.Now()
	errs := make([]error, n+1)
	var wg sync.WaitGroup
	for i, sh := range shards {
		wg.Add(1)
		go func(i int, sh *shardProc) {
			defer wg.Done()
			errs[i] = sh.srv.Start()
		}(i, sh)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for _, sess := range refSys.Sessions() {
			if err := sess.Tune(tuneOpts); err != nil {
				errs[n] = err
				return
			}
		}
		errs[n] = refSys.IngestAll(windowOpts)
	}()
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return fail(err)
		}
	}
	log.Printf("focus-loadgen: shards + reference ready in %.1fs", time.Since(t0).Seconds())

	rt, err := router.New(router.Config{
		Map: smap,
		// Poll fast so a mid-run drain or kill is noticed well within the
		// grace an operator would configure.
		Refresh: 250 * time.Millisecond,
	})
	if err != nil {
		return fail(err)
	}
	if err := rt.Start(); err != nil {
		return fail(err)
	}
	cleanup = append(cleanup, rt.Stop)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return fail(err)
	}
	routerSrv := &http.Server{Handler: rt.Handler()}
	go func() { _ = routerSrv.Serve(ln) }()
	cleanup = append(cleanup, func() { _ = routerSrv.Close() })
	cfg.BaseURL = "http://" + ln.Addr().String()
	for _, sh := range rt.Snapshot().Shards {
		log.Printf("focus-loadgen: shard %s (%s) owns %v", sh.Name, sh.URL, sh.Streams)
	}

	if len(cfg.Classes) == 0 {
		cfg.Classes = dominant
	}
	cfg.Streams = names
	if cfg.VerifyEvery > 0 {
		cfg.Verifier = loadgen.NewDirectVerifier(refSys)
		// Routed early-exit answers match no single-node replay (each shard
		// runs its own sampler), so the subset verifier checks them against
		// the reference system's exhaustive exact ranking; exact-mode plan
		// responses still get the strict item-for-item verifier inside it.
		cfg.PlanVerifier = loadgen.NewSubsetPlanVerifier(refSys)
		cfg.TrackVerifier = loadgen.NewDirectTrackVerifier(refSys)
		// Routed subscriptions are always exact and unbounded (the router
		// refuses top_k and early-exit standing queries), so the strict
		// reference replay applies to their reassembled answers too.
		cfg.DeltaVerifier = loadgen.NewDeltaVerifier(refSys)
	}

	if drainAfter > 0 {
		last := shards[len(shards)-1]
		timer := time.AfterFunc(time.Duration(drainAfter*float64(time.Second)), func() {
			log.Printf("focus-loadgen: draining shard %s (%s)", last.name, last.url)
			if err := client.New(last.url).Drain(context.Background()); err != nil {
				log.Printf("focus-loadgen: drain request failed: %v", err)
			}
		})
		// A drain scheduled past the end of the run must not fire into the
		// torn-down cluster and log a spurious failure after the report.
		cleanup = append(cleanup, func() { timer.Stop() })
	}

	var drill, rdrill *chaosRun
	if chaos.enabled() {
		drill = armChaosDrill(chaos, shards[len(shards)-1], cfg.Classes[0])
		cleanup = append(cleanup, drill.stop)
	}
	if reshard.enabled() {
		rdrill = armReshardDrill(reshard, shards, smap, fcfg, scfg, cfg.BaseURL, cfg.Classes[0])
		cleanup = append(cleanup, rdrill.stop)
	}
	checks := func() []string {
		var out []string
		if fault.ErrorRate > 0 && rt.Snapshot().ShardRetries == 0 {
			// The injected errors are transient by construction, so the
			// router must have retried at least once — zero retries means
			// the fault path never fired or retries are broken.
			out = append(out, "fault injection armed but the router never retried a sub-request")
		}
		join := func(d *chaosRun, what string, grace time.Duration) {
			if d == nil {
				return
			}
			select {
			case <-d.done:
			case <-time.After(grace):
				d.fail("%s drill did not complete: still pending after the run", what)
			}
			d.mu.Lock()
			out = append(out, d.failures...)
			d.mu.Unlock()
		}
		join(drill, "chaos", chaos.DownFor+60*time.Second)
		join(rdrill, "reshard", 60*time.Second)
		return out
	}

	cleanup = append(cleanup, func() {
		stats := rt.Snapshot()
		log.Printf("focus-loadgen: router saw %d queries, %d plans, %d shard requests, %d rejected, %d unavailable, %d sub-request retries, %d partial responses",
			stats.Queries, stats.PlanQueries, stats.ShardRequests, stats.Rejected, stats.Unavailable,
			stats.ShardRetries, stats.PartialResponses)
	})
	return shutdown, checks, nil
}

// armChaosDrill schedules the kill/restart sequence against the victim
// shard: capture a pre-crash answer for one of its streams, sever every
// connection and abandon the store (the in-process equivalent of SIGKILL
// — buffered writes are lost, nothing is flushed), then after the outage
// window restart the shard on the same address and store and assert it
// (a) cold-started from a checkpoint and (b) still answers the pre-crash
// query bit-identically at the pinned pre-crash watermark vector.
func armChaosDrill(spec chaosSpec, victim *shardProc, class string) *chaosRun {
	drill := &chaosRun{done: make(chan struct{})}
	probe := &api.QueryRequest{Expr: class, Streams: victim.streams[:1]}
	var pre *api.QueryResponse

	kill := func() {
		vcli := client.New(victim.url, client.WithRetries(3, 50*time.Millisecond))
		var err error
		pre, err = vcli.Query(context.Background(), probe)
		if err != nil {
			drill.fail("pre-crash probe of %s failed: %v", victim.name, err)
		}
		log.Printf("focus-loadgen: CHAOS killing shard %s (%s): abandoning store, severing connections", victim.name, victim.url)
		victim.mu.Lock()
		// Abandon first: once the "process" is dead nothing may persist.
		// The graceful Stop that follows only reaps the ingest goroutines;
		// its checkpoint-on-stop fails against the dead store by design.
		_ = victim.sys.Abandon()
		_ = victim.httpSrv.Close()
		victim.srv.Stop()
		victim.mu.Unlock()
	}

	restart := func() {
		defer close(drill.done)
		log.Printf("focus-loadgen: CHAOS restarting shard %s on %s", victim.name, victim.addr)
		sys, err := focus.New(victim.fcfg)
		if err != nil {
			drill.fail("chaos restart: reopen store: %v", err)
			return
		}
		for _, st := range victim.streams {
			if _, err := sys.AddTable1Stream(st); err != nil {
				drill.fail("chaos restart: re-register %s: %v", st, err)
				sys.Close()
				return
			}
		}
		srv := serve.New(sys, victim.scfg)
		t0 := time.Now()
		if err := srv.Start(); err != nil {
			drill.fail("chaos restart: serve start: %v", err)
			sys.Close()
			return
		}
		snap := srv.Snapshot()
		if snap.RestoredStreams == 0 {
			drill.fail("chaos restart: shard %s re-tuned from scratch instead of restoring a checkpoint", victim.name)
		}
		ln, err := net.Listen("tcp", victim.addr)
		if err != nil {
			drill.fail("chaos restart: re-bind %s: %v", victim.addr, err)
			srv.Stop()
			sys.Close()
			return
		}
		httpSrv := &http.Server{Handler: srv.Handler()}
		go func() { _ = httpSrv.Serve(ln) }()
		victim.mu.Lock()
		victim.sys, victim.srv, victim.httpSrv = sys, srv, httpSrv
		victim.mu.Unlock()
		log.Printf("focus-loadgen: CHAOS shard %s back in %.1fs (%d streams restored from checkpoint); watermarks %v",
			victim.name, time.Since(t0).Seconds(), snap.RestoredStreams, snap.Watermarks)

		if pre != nil {
			verifyPostRecovery(drill, victim, pre)
		}
	}

	drill.mu.Lock()
	drill.timers = append(drill.timers, time.AfterFunc(spec.KillAfter, func() {
		kill()
		drill.mu.Lock()
		drill.timers = append(drill.timers, time.AfterFunc(spec.DownFor, restart))
		drill.mu.Unlock()
	}))
	drill.mu.Unlock()
	return drill
}

// armReshardDrill schedules the live-reshard drill: After into the run, a
// fresh empty shard joins the cluster and the router is asked to
// live-reshard the first shard's first stream onto it, while the loadgen
// clients keep hammering the router. The drill asserts the move completes
// (one move, state done, zero failures) and that a pre-move probe,
// re-asked pinned at the same watermark vector once the move lands, is
// answered bit-identically by the new owner. The clients' verifiers hold
// every sampled response to the reference answer throughout, so a cutover
// glitch beyond the allowed typed transients fails the run on its own.
func armReshardDrill(spec reshardSpec, shards []*shardProc, smap *router.ShardMap,
	fcfg focus.Config, scfg serve.Config, routerURL, class string) *chaosRun {
	drill := &chaosRun{done: make(chan struct{})}
	src := shards[0]
	mover := src.streams[0]

	run := func() {
		defer close(drill.done)
		rcli := client.New(routerURL, client.WithRetries(3, 100*time.Millisecond))
		pre, err := rcli.Query(context.Background(), &api.QueryRequest{Expr: class, Streams: []string{mover}})
		if err != nil {
			drill.fail("pre-move probe of %q failed: %v", mover, err)
			return
		}

		// Join: boot the new shard with no streams. It shares the cluster's
		// seed, so the imported checkpoint's deterministic tail replays
		// identically on it.
		newName := shardName(len(shards))
		escfg := scfg
		escfg.AllowNoStreams = true
		sys, err := focus.New(fcfg)
		if err != nil {
			drill.fail("reshard join: %v", err)
			return
		}
		srv := serve.New(sys, escfg)
		if err := srv.Start(); err != nil {
			drill.fail("reshard join: serve start: %v", err)
			sys.Close()
			return
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			drill.fail("reshard join: listen: %v", err)
			srv.Stop()
			sys.Close()
			return
		}
		httpSrv := &http.Server{Handler: srv.Handler()}
		go func() { _ = httpSrv.Serve(ln) }()
		drill.mu.Lock()
		drill.cleanup = append(drill.cleanup, func() {
			_ = httpSrv.Close()
			srv.Stop()
			sys.Close()
		})
		drill.mu.Unlock()
		newURL := "http://" + ln.Addr().String()
		log.Printf("focus-loadgen: RESHARD shard %s joining at %s; moving %q off %s", newName, newURL, mover, src.name)

		// Target map: the same roster plus the joining shard, with the
		// moving stream re-pinned onto it.
		target := api.AdminShardMap{Pins: make(map[string]string, len(smap.Pins))}
		for st, sh := range smap.Pins {
			target.Pins[st] = sh
		}
		target.Pins[mover] = newName
		for _, sh := range shards {
			target.Shards = append(target.Shards, api.AdminShardSpec{Name: sh.name, URL: sh.url})
		}
		target.Shards = append(target.Shards, api.AdminShardSpec{Name: newName, URL: newURL})

		t0 := time.Now()
		resp, err := rcli.Reshard(context.Background(), target, false)
		if err != nil {
			drill.fail("reshard to %d shards failed: %v", len(target.Shards), err)
			return
		}
		if resp.Failed != 0 || resp.Moved != 1 || len(resp.Moves) != 1 {
			drill.fail("reshard moved %d / failed %d, want exactly one clean move: %+v",
				resp.Moved, resp.Failed, resp.Moves)
			return
		}
		mv := resp.Moves[0]
		log.Printf("focus-loadgen: RESHARD %q moved %s → %s in %.1fs (sealed at %.0f, epoch %d)",
			mv.Stream, mv.From, mv.To, time.Since(t0).Seconds(), mv.Watermark, mv.Epoch)

		// The new owner must answer the pre-move probe bit-identically at
		// the pinned pre-move vector. Right after the flip its replayed
		// ingest tail may still be catching up, so transient typed
		// rejections are retried.
		req := &api.QueryRequest{Expr: pre.Expr, Streams: []string{mover}, At: pre.Watermarks}
		deadline := time.Now().Add(45 * time.Second)
		for {
			post, err := rcli.Query(context.Background(), req)
			if err != nil {
				transient := api.IsCode(err, api.CodePinAhead) || api.IsCode(err, api.CodeNotReady) ||
					api.IsCode(err, api.CodeUnavailable) || api.IsCode(err, api.CodeShardDown)
				if transient && time.Now().Before(deadline) {
					time.Sleep(250 * time.Millisecond)
					continue
				}
				drill.fail("post-move pinned replay of %q failed: %v", mover, err)
				return
			}
			if err := compareAnswers(pre, post); err != nil {
				drill.fail("post-move answer drifted for %q: %v", mover, err)
			} else {
				log.Printf("focus-loadgen: RESHARD post-move answer for %q@%v is bit-identical", pre.Expr, pre.Watermarks)
			}
			return
		}
	}

	drill.mu.Lock()
	drill.timers = append(drill.timers, time.AfterFunc(spec.After, run))
	drill.mu.Unlock()
	return drill
}

// verifyPostRecovery re-issues the pre-crash probe against the restarted
// shard, pinned At the pre-crash watermark vector, and asserts the answer
// is bit-identical. Right after restart the replayed ingest tail may not
// have re-reached that horizon yet, so pin_ahead/not_ready rejections are
// retried until the watermark catches up.
func verifyPostRecovery(drill *chaosRun, victim *shardProc, pre *api.QueryResponse) {
	req := &api.QueryRequest{Expr: pre.Expr, Streams: victim.streams[:1], At: pre.Watermarks}
	vcli := client.New(victim.url, client.WithRetries(0, 0))
	deadline := time.Now().Add(45 * time.Second)
	for {
		post, err := vcli.Query(context.Background(), req)
		if err != nil {
			transient := api.IsCode(err, api.CodePinAhead) || api.IsCode(err, api.CodeNotReady) ||
				api.IsCode(err, api.CodeUnavailable) || api.IsCode(err, api.CodeOverloaded)
			if transient && time.Now().Before(deadline) {
				time.Sleep(250 * time.Millisecond)
				continue
			}
			drill.fail("post-recovery pinned replay on %s failed: %v", victim.name, err)
			return
		}
		if err := compareAnswers(pre, post); err != nil {
			drill.fail("post-recovery answer drifted on %s: %v", victim.name, err)
		} else {
			log.Printf("focus-loadgen: CHAOS post-recovery answer for %q@%v is bit-identical", pre.Expr, pre.Watermarks)
		}
		return
	}
}

// compareAnswers asserts two frames-form responses carry the same answer:
// same pinned vector, frames, segments and cluster counts per stream.
// Cost counters (GT inferences, GPU time, latency) legitimately differ
// between executions and are not compared.
func compareAnswers(a, b *api.QueryResponse) error {
	if !reflect.DeepEqual(a.Watermarks, b.Watermarks) {
		return fmt.Errorf("watermarks %v vs %v", a.Watermarks, b.Watermarks)
	}
	if a.TotalFrames != b.TotalFrames {
		return fmt.Errorf("total frames %d vs %d", a.TotalFrames, b.TotalFrames)
	}
	if len(a.Streams) != len(b.Streams) {
		return fmt.Errorf("%d vs %d streams", len(a.Streams), len(b.Streams))
	}
	for name, sa := range a.Streams {
		sb := b.Streams[name]
		if sb == nil {
			return fmt.Errorf("stream %s missing from second answer", name)
		}
		if sa.Watermark != sb.Watermark ||
			!reflect.DeepEqual(sa.Frames, sb.Frames) || !reflect.DeepEqual(sa.Segments, sb.Segments) ||
			sa.ExaminedClusters != sb.ExaminedClusters || sa.MatchedClusters != sb.MatchedClusters ||
			sa.ViaOther != sb.ViaOther {
			return fmt.Errorf("stream %s answers differ: {wm %v frames %v segs %v} vs {wm %v frames %v segs %v}",
				name, sa.Watermark, sa.Frames, sa.Segments, sb.Watermark, sb.Frames, sb.Segments)
		}
	}
	return nil
}

func shardName(i int) string { return fmt.Sprintf("shard-%d", i) }
