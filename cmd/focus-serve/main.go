// Command focus-serve runs Focus as a resident query service: registered
// streams ingest continuously in the background while the HTTP API serves
// class queries to many concurrent clients, with watermark-consistent
// results, a shared result cache, and admission control.
//
// Usage:
//
//	focus-serve [-addr :7070] [-streams auburn_c,jacksonh | all]
//	            [-window 240] [-chunk 5] [-ingest-interval 500ms]
//	            [-workers 8] [-queue 16] [-cache 4096]
//	            [-quick-tune] [-recall 0.95] [-precision 0.95]
//	            [-drain-grace 10s]
//	            [-data-dir /var/lib/focus] [-checkpoint-every 1]
//	            [-fault-error-rate 0.2] [-fault-latency 50ms]
//	            [-fault-blackhole-after 30s] [-fault-blackhole-for 10s]
//
// With -data-dir the shard is durable: the store and MANIFEST.json live in
// that directory, live ingestion checkpoints every -checkpoint-every
// chunks, and a restarted process cold-starts from the latest checkpoint
// (replaying only the ingest tail) instead of re-tuning — see
// OPERATIONS.md §"Durability and crash recovery". The -fault-* flags arm
// the fault-injection middleware for chaos drills; never in production.
//
// Endpoints (see focus/api for the wire contract and OPERATIONS.md for
// the operator walkthrough):
//
//	POST /v1/query  — the primary query surface: {"expr": "car & person & !bus",
//	                  "top_k": 10, ...} — a single class is a one-leaf plan
//	                  ({"expr": "car"}); paging via the opaque watermark-stable
//	                  cursor; structured error codes
//	GET /v1/streams — per-stream watermarks, ingest progress, chosen configs
//	GET /v1/stats   — service counters (cache, admission, legacy_requests, GPU meter)
//	GET /query, POST /plan — deprecated pre-v1 shims (byte-identical legacy
//	                  wire format, Deprecation header, counted in legacy_requests)
//	GET /healthz    — readiness (503 while tuning or draining, with a status body)
//	POST /drain     — leave rotation: new queries get "draining" until the process exits
//
// The listener comes up before tuning finishes, answering 503 on /healthz
// until the service is ready — the readiness probe a router (or k8s) needs.
// On SIGTERM the server drains first (in-flight queries finish, new ones
// are rejected with the draining marker, the router routes around it) and
// exits after -drain-grace. A second signal exits immediately.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"focus"
	"focus/internal/serve"
	"focus/internal/video"
)

func main() {
	addr := flag.String("addr", ":7070", "listen address")
	streams := flag.String("streams", "auburn_c,jacksonh,city_a_d", "comma-separated Table 1 stream names, \"all\", or \"none\" (boot empty and receive streams via live handoff)")
	window := flag.Float64("window", 240, "per-stream ingest horizon in seconds")
	sampleEvery := flag.Int("sample-every", 1, "frame sampling stride (1 = 30fps)")
	tuneWindow := flag.Float64("tune-window", 0, "tuning window in seconds (0 = same as -window)")
	chunk := flag.Float64("chunk", 5, "watermark granularity in stream seconds")
	ingestInterval := flag.Duration("ingest-interval", 500*time.Millisecond, "real-time pause between background ingest steps (0 = full speed)")
	workers := flag.Int("workers", 8, "concurrent query executions")
	queue := flag.Int("queue", 16, "queued queries before new arrivals get 429")
	cacheCap := flag.Int("cache", 4096, "result cache capacity (responses)")
	seed := flag.Uint64("seed", 1, "system seed")
	gpus := flag.Int("gpus", focus.DefaultNumGPUs, "query-time GPU parallelism")
	quickTune := flag.Bool("quick-tune", true, "use the trimmed boot-time parameter sweep")
	recall := flag.Float64("recall", 0.95, "tuner recall target")
	precision := flag.Float64("precision", 0.95, "tuner precision target")
	drainGrace := flag.Duration("drain-grace", 10*time.Second, "how long to serve draining 503s after SIGTERM before exiting")
	handoffTTL := flag.Duration("handoff-ttl", serve.DefaultHandoffTTL, "how long a half-done handoff may hold state: a sealed stream auto-resumes ingestion, and an unactivated import is auto-discarded, this long after the step that created it")
	dataDir := flag.String("data-dir", "", "durable data directory: the index store (focus.kv) and MANIFEST.json live here, live ingestion checkpoints into it, and a restart cold-starts from the latest checkpoint (empty = in-memory, nothing survives a crash)")
	checkpointEvery := flag.Int("checkpoint-every", 0, "checkpoint each stream every N ingest chunks (0 = every chunk, negative = never); effective only with -data-dir")
	faultErrorRate := flag.Float64("fault-error-rate", 0, "FAULT INJECTION: probability (0..1) that a data-plane request is rejected with a typed 503 \"unavailable\"")
	faultLatency := flag.Duration("fault-latency", 0, "FAULT INJECTION: extra latency added to every data-plane request")
	faultBlackholeAfter := flag.Duration("fault-blackhole-after", 0, "FAULT INJECTION: sever every connection (including /healthz) starting this long after the first request")
	faultBlackholeFor := flag.Duration("fault-blackhole-for", 0, "FAULT INJECTION: how long the blackhole window lasts")
	faultSeed := flag.Uint64("fault-seed", 0, "FAULT INJECTION: deterministic seed for the error-rate coin (0 = 1)")
	flag.Parse()

	cfg := focus.Config{
		Seed:    *seed,
		NumGPUs: *gpus,
		Targets: focus.Targets{Recall: *recall, Precision: *precision},
	}
	if *quickTune {
		cfg.TuneOptions = serve.QuickTuneOptions()
	}
	const storeName = "focus.kv"
	if *dataDir != "" {
		if err := os.MkdirAll(*dataDir, 0o755); err != nil {
			log.Fatalf("focus-serve: %v", err)
		}
		cfg.StorePath = filepath.Join(*dataDir, storeName)
	}
	sys, err := focus.New(cfg)
	if err != nil {
		log.Fatalf("focus-serve: %v", err)
	}
	defer sys.Close()

	names := streamNames(*streams)
	for _, name := range names {
		if _, err := sys.AddTable1Stream(name); err != nil {
			log.Fatalf("focus-serve: %v", err)
		}
	}

	// -streams none boots an empty elastic shard: it joins the cluster
	// with nothing and receives its share through live handoff when the
	// router reshards onto it.
	allowEmpty := len(names) == 0

	scfg := serve.Config{
		Window:          focus.GenOptions{DurationSec: *window, SampleEvery: *sampleEvery},
		TuneWindow:      focus.GenOptions{DurationSec: *tuneWindow, SampleEvery: *sampleEvery},
		ChunkSec:        *chunk,
		IngestInterval:  *ingestInterval,
		QueryWorkers:    *workers,
		QueueDepth:      *queue,
		CacheCapacity:   *cacheCap,
		CheckpointEvery: *checkpointEvery,
		AllowNoStreams:  allowEmpty,
		HandoffTTL:      *handoffTTL,
		Fault: serve.FaultConfig{
			ErrorRate:      *faultErrorRate,
			Latency:        *faultLatency,
			BlackholeAfter: *faultBlackholeAfter,
			BlackholeFor:   *faultBlackholeFor,
			Seed:           *faultSeed,
		},
	}
	if *dataDir != "" {
		scfg.DataDir = *dataDir
		scfg.StoreName = storeName
	}
	if scfg.Fault.Active() {
		log.Printf("focus-serve: FAULT INJECTION ARMED (error-rate %.2f, latency %s, blackhole %s after %s) — never run this in production",
			*faultErrorRate, *faultLatency, *faultBlackholeFor, *faultBlackholeAfter)
	}
	srv := serve.New(sys, scfg)
	// Listen before tuning: /healthz answers 503 "not ready" during boot so
	// a router (or an orchestrator's readiness probe) can watch the shard
	// come up instead of getting connection refused.
	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	go func() {
		log.Printf("focus-serve: listening on %s", *addr)
		if err := httpSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			log.Fatalf("focus-serve: %v", err)
		}
	}()

	log.Printf("focus-serve: tuning %d streams (window %.0fs)…", len(names), *window)
	t0 := time.Now()
	if err := srv.Start(); err != nil {
		log.Fatalf("focus-serve: %v", err)
	}
	defer srv.Stop()
	log.Printf("focus-serve: ready in %.1fs, ingesting %s in the background", time.Since(t0).Seconds(), strings.Join(names, ", "))

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	// Drain first: reject new queries with the draining marker while the
	// router's health poll takes this shard out of rotation; in-flight
	// queries finish. A second signal skips the grace period.
	srv.StartDrain()
	log.Printf("focus-serve: draining for %s (signal again to exit now)", *drainGrace)
	select {
	case <-sig:
	case <-time.After(*drainGrace):
	}
	log.Print("focus-serve: shutting down")
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		log.Printf("focus-serve: shutdown: %v", err)
	}
}

func streamNames(arg string) []string {
	if strings.TrimSpace(arg) == "none" {
		return nil
	}
	if strings.TrimSpace(arg) == "all" {
		specs := video.Table1Specs()
		names := make([]string, len(specs))
		for i, s := range specs {
			names[i] = s.Name
		}
		return names
	}
	var names []string
	for _, n := range strings.Split(arg, ",") {
		if n = strings.TrimSpace(n); n != "" {
			names = append(names, n)
		}
	}
	if len(names) == 0 {
		fmt.Fprintln(os.Stderr, "focus-serve: no streams given (use -streams none for an empty elastic shard)")
		os.Exit(2)
	}
	return names
}
