package focus

import (
	"focus/internal/plan"
	"focus/internal/track"
)

// Temporal (track-predicate) queries: the track layer assembles object
// sightings into per-stream tracks and evaluates predicates like
// "car & within(5, seq(region(...), region(...)))" over them, with the
// same watermark-pinning contract as PlanQuery. Expressions containing a
// temporal operator (seq, within, dur, region, vel) execute here; purely
// boolean expressions belong on PlanQuery. See internal/track for the
// execution model.

// TrackOptions tune one temporal-query execution. The fields mirror
// PlanOptions; DefaultLeaf's window and cluster budget additionally shape
// which sealed clusters contribute sightings to track assembly.
type TrackOptions struct {
	// Streams restricts the query to these stream names; empty = every
	// ingested stream.
	Streams []string
	// TopK caps the ranked result; 0 returns every matching track.
	TopK int
	// Leaf applies to every class leaf that does not carry its own
	// options, and its StartSec/EndSec/MaxClusters also bound track
	// assembly. (AtSec inside Leaf is ignored; watermarks come from AtSec
	// / AtWatermarks below.)
	Leaf QueryOptions
	// AtSec, when positive, pins every stream to that ingest watermark;
	// zero queries everything indexed so far; negative pins to the empty
	// horizon. Same semantics as QueryOptions.AtSec.
	AtSec float64
	// AtWatermarks pins individual streams, overriding AtSec, exactly
	// like Query.AtWatermarks.
	AtWatermarks map[string]float64
	// StepClusters is how many dominant clusters each paging refinement
	// round verifies (0 = default).
	StepClusters int
	// Workers bounds the cross-stream fan-out; 0 = one worker per stream,
	// 1 = the sequential reference. Results are bit-identical either way.
	Workers int
}

// TrackItem is one ranked temporal-query result.
type TrackItem = track.Item

// TrackResult is a completed temporal-query execution.
type TrackResult = track.Result

// TrackPageCursor pages through a temporal query's ranked results.
type TrackPageCursor = track.Cursor

// CompileTrackQuery parses and compiles a temporal predicate expression
// ("car & dur(30)") against this system's class space. The expression
// must contain at least one temporal operator.
func (s *System) CompileTrackQuery(expr string) (*track.Plan, error) {
	ast, err := plan.Parse(expr)
	if err != nil {
		return nil, err
	}
	return track.Compile(ast, s.ClassID)
}

// CompileTrackExpr compiles a caller-built AST (the way to attach
// per-leaf windows or budgets, which the text syntax cannot spell).
func (s *System) CompileTrackExpr(e plan.Expr) (*track.Plan, error) {
	return track.Compile(e, s.ClassID)
}

func (s *System) trackTargets(opts TrackOptions) ([]plan.Target, error) {
	// Track executions resolve streams and watermarks exactly like plan
	// executions: same defaults, same per-stream pinning.
	return s.planTargets(PlanOptions{
		Streams:      opts.Streams,
		AtSec:        opts.AtSec,
		AtWatermarks: opts.AtWatermarks,
	})
}

func (s *System) trackExecOptions(opts TrackOptions) track.Options {
	return track.Options{
		TopK: opts.TopK,
		DefaultLeaf: plan.LeafOptions{
			Kx:          opts.Leaf.Kx,
			StartSec:    opts.Leaf.StartSec,
			EndSec:      opts.Leaf.EndSec,
			MaxClusters: opts.Leaf.MaxClusters,
		},
		StepClusters: opts.StepClusters,
		Workers:      opts.Workers,
	}
}

// ExecuteTrackQuery runs a compiled track plan to completion (or to
// TopK) across the selected streams and returns the confidence-ranked
// result. At a fixed watermark vector the answer is a pure function of
// (plan, options, vector), so it can be cached exactly like a plan query.
func (s *System) ExecuteTrackQuery(p *track.Plan, opts TrackOptions) (*TrackResult, error) {
	targets, err := s.trackTargets(opts)
	if err != nil {
		return nil, err
	}
	return track.Execute(p, targets, s.trackExecOptions(opts))
}

// NewTrackCursor starts a paged execution of a compiled track plan:
// Next(n) returns the next n items of the final ranking, extending the
// per-stream verification budgets only as far as each page needs. Pages
// concatenate to exactly what ExecuteTrackQuery returns for the same
// options and watermark vector.
func (s *System) NewTrackCursor(p *track.Plan, opts TrackOptions) (*TrackPageCursor, error) {
	targets, err := s.trackTargets(opts)
	if err != nil {
		return nil, err
	}
	return track.NewCursor(p, targets, s.trackExecOptions(opts))
}

// TrackQuery compiles and executes a temporal predicate expression in
// one call: sys.TrackQuery("car & dur(30)", focus.TrackOptions{TopK: 10}).
func (s *System) TrackQuery(expr string, opts TrackOptions) (*TrackResult, error) {
	p, err := s.CompileTrackQuery(expr)
	if err != nil {
		return nil, err
	}
	return s.ExecuteTrackQuery(p, opts)
}

// TrackCursor compiles a temporal expression and starts a paged execution.
func (s *System) TrackCursor(expr string, opts TrackOptions) (*TrackPageCursor, error) {
	p, err := s.CompileTrackQuery(expr)
	if err != nil {
		return nil, err
	}
	return s.NewTrackCursor(p, opts)
}

// TrackQuery runs a temporal query against this stream only.
func (sess *Session) TrackQuery(expr string, opts TrackOptions) (*TrackResult, error) {
	opts.Streams = []string{sess.Name()}
	return sess.sys.TrackQuery(expr, opts)
}

// TrackCursor starts a paged temporal query against this stream only.
func (sess *Session) TrackCursor(expr string, opts TrackOptions) (*TrackPageCursor, error) {
	opts.Streams = []string{sess.Name()}
	return sess.sys.TrackCursor(expr, opts)
}
