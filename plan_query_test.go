package focus

import (
	"sync"
	"testing"

	"focus/internal/video"
)

// planTestWindow keeps compound-query integration tests fast; the trimmed
// liveTuneOptions sweep is reused for the same reason.
var planTestWindow = GenOptions{DurationSec: 45, SampleEvery: 1}

// newPlanSystem builds and ingests a fresh system over the given streams —
// for tests that need cold GT-verdict caches and meters.
func newPlanSystem(t testing.TB, streams ...string) *System {
	t.Helper()
	sys := newTestSystem(t, liveTestConfig())
	for _, name := range streams {
		if _, err := sys.AddTable1Stream(name); err != nil {
			t.Fatal(err)
		}
	}
	if err := sys.IngestAll(planTestWindow); err != nil {
		t.Fatal(err)
	}
	return sys
}

// The shared 4-stream system most plan tests query: ingesting it once
// amortizes the dominant cost (tune + ingest) across the suite. Queries
// never mutate it beyond warming the GT-verdict cache, which changes costs
// but never answers; tests that assert on cost use newPlanSystem instead.
var (
	planSharedOnce sync.Once
	planShared     *System
	planSharedErr  error
)

var planSharedStreams = []string{"auburn_c", "bend", "city_a_d", "jacksonh"}

func sharedPlanSystem(t testing.TB) *System {
	t.Helper()
	planSharedOnce.Do(func() {
		sys, err := New(liveTestConfig())
		if err != nil {
			planSharedErr = err
			return
		}
		for _, name := range planSharedStreams {
			if _, err := sys.AddTable1Stream(name); err != nil {
				planSharedErr = err
				return
			}
		}
		if err := sys.IngestAll(planTestWindow); err != nil {
			planSharedErr = err
			return
		}
		planShared = sys
	})
	if planSharedErr != nil {
		t.Fatal(planSharedErr)
	}
	return planShared
}

// frameSet collects one stream's single-class answer as a set.
func frameSet(t testing.TB, sys *System, stream, class string) map[video.FrameID]bool {
	t.Helper()
	id, err := sys.ClassID(class)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Session(stream).QueryClass(id, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[video.FrameID]bool, len(res.Frames))
	for _, f := range res.Frames {
		out[f] = true
	}
	return out
}

// itemsByStream groups plan items per stream as frame sets.
func itemsByStream(items []PlanItem) map[string]map[video.FrameID]bool {
	out := make(map[string]map[video.FrameID]bool)
	for _, it := range items {
		if out[it.Stream] == nil {
			out[it.Stream] = make(map[video.FrameID]bool)
		}
		out[it.Stream][it.Frame] = true
	}
	return out
}

// TestPlanMatchesSetAlgebra pins the compound semantics to the composable
// single-class reference: "car & person & !bus" must return exactly
// frames(car) ∩ frames(person) − frames(bus), per stream, and
// "(car | bus) & person" exactly (frames(car) ∪ frames(bus)) ∩
// frames(person).
func TestPlanMatchesSetAlgebra(t *testing.T) {
	streams := []string{"auburn_c", "jacksonh"}
	sys := sharedPlanSystem(t)

	type want func(car, person, bus map[video.FrameID]bool, f video.FrameID) bool
	cases := []struct {
		expr string
		want want
	}{
		{"car & person & !bus", func(car, person, bus map[video.FrameID]bool, f video.FrameID) bool {
			return car[f] && person[f] && !bus[f]
		}},
		{"(car | bus) & person", func(car, person, bus map[video.FrameID]bool, f video.FrameID) bool {
			return (car[f] || bus[f]) && person[f]
		}},
	}
	for _, tc := range cases {
		res, err := sys.PlanQuery(tc.expr, PlanOptions{Streams: streams})
		if err != nil {
			t.Fatalf("%s: %v", tc.expr, err)
		}
		got := itemsByStream(res.Items)
		for _, stream := range streams {
			car := frameSet(t, sys, stream, "car")
			person := frameSet(t, sys, stream, "person")
			bus := frameSet(t, sys, stream, "bus")
			universe := make(map[video.FrameID]bool)
			for f := range car {
				universe[f] = true
			}
			for f := range person {
				universe[f] = true
			}
			for f := range bus {
				universe[f] = true
			}
			wantN := 0
			for f := range universe {
				if tc.want(car, person, bus, f) {
					wantN++
					if !got[stream][f] {
						t.Errorf("%s on %s: frame %d missing from plan result", tc.expr, stream, f)
					}
				} else if got[stream][f] {
					t.Errorf("%s on %s: frame %d should not match", tc.expr, stream, f)
				}
			}
			if gotN := len(got[stream]); gotN != wantN {
				t.Errorf("%s on %s: %d frames, want %d", tc.expr, stream, gotN, wantN)
			}
		}
		// Ranking: scores non-increasing, ties broken by (stream, frame).
		for i := 1; i < len(res.Items); i++ {
			a, b := res.Items[i-1], res.Items[i]
			if b.Score > a.Score || (b.Score == a.Score &&
				(b.Stream < a.Stream || (b.Stream == a.Stream && b.Frame < a.Frame))) {
				t.Errorf("%s: items %d/%d out of rank order: %+v then %+v", tc.expr, i-1, i, a, b)
			}
		}
	}
}

// TestPlanPagedEqualsOneShot is the paging contract over a 4-stream system:
// a compound plan paged with Next(n) — any n, including across TopK — must
// emit exactly the one-shot ranking at the same watermark vector, item for
// item, and likewise with the sequential cross-stream reference (Workers=1).
func TestPlanPagedEqualsOneShot(t *testing.T) {
	sys := sharedPlanSystem(t)

	const expr = "car & person & !bus"
	for _, topK := range []int{10, 0} {
		oneShot, err := sys.PlanQuery(expr, PlanOptions{TopK: topK})
		if err != nil {
			t.Fatal(err)
		}
		seq, err := sys.PlanQuery(expr, PlanOptions{TopK: topK, Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		if len(seq.Items) != len(oneShot.Items) {
			t.Fatalf("TopK=%d: sequential fan-out returned %d items, parallel %d",
				topK, len(seq.Items), len(oneShot.Items))
		}
		for i := range seq.Items {
			if seq.Items[i] != oneShot.Items[i] {
				t.Fatalf("TopK=%d item %d: sequential %+v != parallel %+v",
					topK, i, seq.Items[i], oneShot.Items[i])
			}
		}
		for _, pageSize := range []int{1, 3, 7} {
			cur, err := sys.PlanCursor(expr, PlanOptions{TopK: topK, StepClusters: 2})
			if err != nil {
				t.Fatal(err)
			}
			var paged []PlanItem
			for !cur.Done() {
				page, err := cur.Next(pageSize)
				if err != nil {
					t.Fatal(err)
				}
				if len(page) == 0 && !cur.Done() {
					t.Fatal("empty page before exhaustion")
				}
				paged = append(paged, page...)
			}
			if len(paged) != len(oneShot.Items) {
				t.Fatalf("TopK=%d pageSize=%d: paged %d items, one-shot %d",
					topK, pageSize, len(paged), len(oneShot.Items))
			}
			for i := range paged {
				if paged[i] != oneShot.Items[i] {
					t.Fatalf("TopK=%d pageSize=%d item %d: paged %+v != one-shot %+v",
						topK, pageSize, i, paged[i], oneShot.Items[i])
				}
			}
		}
	}
}

// TestPlanVerificationDeduped is the cost contract: however many predicate
// leaves mention a cluster, the GT-CNN runs at most once per cluster — the
// GPU meter's query-op delta must equal the plan's paid inferences and the
// count of distinct clusters verified, and re-running the plan must cost
// zero new GPU operations (§6.7 carried over to compound queries).
func TestPlanVerificationDeduped(t *testing.T) {
	if testing.Short() {
		t.Skip("needs a freshly ingested system (cold verdict cache); nightly runs it")
	}
	sys := newPlanSystem(t, "auburn_c", "jacksonh")

	before := sys.GPUMeter()
	res, err := sys.PlanQuery("car & person & !bus", PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	after := sys.GPUMeter()

	unique, perLeafVerified := 0, 0
	for _, ss := range res.Stats.PerStream {
		unique += ss.VerifiedClusters
		for _, ls := range ss.Leaves {
			perLeafVerified += ls.Verified
		}
	}
	delta := after.QueryOps - before.QueryOps
	if delta != int64(res.Stats.GTInferences) {
		t.Errorf("meter query ops delta %d != plan GTInferences %d", delta, res.Stats.GTInferences)
	}
	if delta != int64(unique) {
		t.Errorf("meter query ops delta %d != distinct verified clusters %d: some object was verified twice", delta, unique)
	}
	if perLeafVerified <= unique {
		t.Errorf("per-leaf verified total %d not greater than distinct %d: leaves did not overlap, dedup untested", perLeafVerified, unique)
	}

	// Second execution: identical answer, zero new GT-CNN work.
	again, err := sys.PlanQuery("car & person & !bus", PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if sys.GPUMeter().QueryOps != after.QueryOps {
		t.Errorf("re-running the plan paid %d new GPU ops, want 0",
			sys.GPUMeter().QueryOps-after.QueryOps)
	}
	if len(again.Items) != len(res.Items) {
		t.Fatalf("re-run returned %d items, first run %d", len(again.Items), len(res.Items))
	}
	for i := range again.Items {
		if again.Items[i] != res.Items[i] {
			t.Fatalf("re-run item %d: %+v != %+v", i, again.Items[i], res.Items[i])
		}
	}
}

// TestPlanUnanchoredRejected: predicates whose matches are not bounded by
// any positive leaf must be rejected at compile time.
func TestPlanUnanchoredRejected(t *testing.T) {
	sys := newTestSystem(t, liveTestConfig())
	for _, expr := range []string{"!bus", "car | !bus", "!(car & bus)"} {
		if _, err := sys.CompilePlan(expr); err == nil {
			t.Errorf("unanchored plan %q accepted", expr)
		}
	}
	for _, expr := range []string{"car", "car & !bus", "!(!car)", "truck & !(car | bus)"} {
		if _, err := sys.CompilePlan(expr); err != nil {
			t.Errorf("anchored plan %q rejected: %v", expr, err)
		}
	}
}

// TestPlanDuplicateStreamRejected: a repeated stream name would emit every
// matching frame twice into the merged ranking.
func TestPlanDuplicateStreamRejected(t *testing.T) {
	sys := sharedPlanSystem(t)
	_, err := sys.PlanQuery("car", PlanOptions{Streams: []string{"auburn_c", "auburn_c"}})
	if err == nil {
		t.Fatal("duplicate stream list accepted")
	}
}

// TestPlanNegativeWatermarkMatchesNothing pins the MaxSealSec contract for
// plan leaves: a negative watermark is the empty horizon — before anything
// was sealed — so every leaf retrieves nothing and the plan matches
// nothing, without any GT-CNN work.
func TestPlanNegativeWatermarkMatchesNothing(t *testing.T) {
	sys := sharedPlanSystem(t)

	before := sys.GPUMeter()
	res, err := sys.PlanQuery("car & person & !bus", PlanOptions{Streams: []string{"auburn_c"}, AtSec: -1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Items) != 0 {
		t.Fatalf("negative watermark returned %d items, want 0", len(res.Items))
	}
	if after := sys.GPUMeter(); after.QueryOps != before.QueryOps {
		t.Errorf("empty-horizon plan paid %d GPU ops", after.QueryOps-before.QueryOps)
	}
	// The same pin through the per-stream vector.
	res, err = sys.PlanQuery("car & person & !bus", PlanOptions{
		Streams:      []string{"auburn_c"},
		AtWatermarks: map[string]float64{"auburn_c": -5},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Items) != 0 {
		t.Fatalf("negative vector watermark returned %d items, want 0", len(res.Items))
	}
}

// TestPlanPagedBitIdenticalUnderLiveIngest is the watermark purity contract
// for compound queries: with ingestion racing ahead on every stream, a plan
// pinned to a watermark vector must return identical results paged and
// one-shot, no matter how far live ingest advances between pages. Run under
// -race this also proves the planner never touches unsynchronized session
// state.
func TestPlanPagedBitIdenticalUnderLiveIngest(t *testing.T) {
	streams := []string{"auburn_c", "jacksonh"}
	sys := newTestSystem(t, liveTestConfig())
	for _, name := range streams {
		if _, err := sys.AddTable1Stream(name); err != nil {
			t.Fatal(err)
		}
	}
	window := GenOptions{DurationSec: 45, SampleEvery: 1}
	for _, name := range streams {
		if err := sys.Session(name).StartLive(window); err != nil {
			t.Fatal(err)
		}
	}
	// Seal a prefix, pin the vector there, then let ingesters race ahead
	// while plan executions run against the pinned vector.
	vector := make(map[string]float64, len(streams))
	for _, name := range streams {
		wm, err := sys.Session(name).AdvanceLive(20)
		if err != nil {
			t.Fatal(err)
		}
		vector[name] = wm
	}

	var wg sync.WaitGroup
	wg.Add(len(streams))
	for _, name := range streams {
		go func(name string) {
			defer wg.Done()
			sess := sys.Session(name)
			for to := 25.0; to <= window.DurationSec+5; to += 5 {
				if _, err := sess.AdvanceLive(to); err != nil {
					t.Error(err)
					return
				}
			}
		}(name)
	}

	const expr = "car & person & !bus"
	opts := PlanOptions{TopK: 10, AtWatermarks: vector, StepClusters: 2}
	oneShot, err := sys.PlanQuery(expr, opts)
	if err != nil {
		t.Fatal(err)
	}
	cur, err := sys.PlanCursor(expr, opts)
	if err != nil {
		t.Fatal(err)
	}
	var paged []PlanItem
	for !cur.Done() {
		page, err := cur.Next(3)
		if err != nil {
			t.Fatal(err)
		}
		paged = append(paged, page...)
	}
	wg.Wait()
	for _, name := range streams {
		sys.Session(name).StopLive()
	}

	if len(paged) != len(oneShot.Items) {
		t.Fatalf("paged %d items, one-shot %d", len(paged), len(oneShot.Items))
	}
	for i := range paged {
		if paged[i] != oneShot.Items[i] {
			t.Fatalf("item %d under live ingest: paged %+v != one-shot %+v", i, paged[i], oneShot.Items[i])
		}
	}
	// And the pinned answer must survive ingestion having finished.
	final, err := sys.PlanQuery(expr, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(final.Items) != len(oneShot.Items) {
		t.Fatalf("post-ingest re-run %d items, pinned run %d", len(final.Items), len(oneShot.Items))
	}
	for i := range final.Items {
		if final.Items[i] != oneShot.Items[i] {
			t.Fatalf("post-ingest item %d: %+v != %+v", i, final.Items[i], oneShot.Items[i])
		}
	}
}
