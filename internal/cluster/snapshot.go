package cluster

import (
	"fmt"

	"focus/internal/vision"
)

// This file is the clustering engine's checkpoint seam. An Engine's behavior
// depends on more than its exported fields: the order of the active slice
// decides nearest-centroid tie-breaks, idle retirement order, and which
// cluster "smallest" resolves to under size ties, so a faithful snapshot must
// preserve it exactly. Snapshot/NewEngineFromSnapshot round-trip every
// behavior-bearing field; restoring and continuing an ingestion produces an
// index bit-identical to one that never stopped.

// RepCandidateSnapshot is the persisted form of one representative-reservoir
// entry. Slice order matters: replacement scans pick the first strictly-worst
// entry, and Representative breaks distance ties by position.
type RepCandidateSnapshot struct {
	Member  Member
	Feature vision.FeatureVec
	AddDist float64
}

// ClusterSnapshot is the persisted form of one ACTIVE (not yet spilled)
// cluster. Spilled clusters live in the index as ClusterRecords and are not
// part of an engine snapshot.
type ClusterSnapshot struct {
	ID        int64
	Centroid  vision.FeatureVec
	Members   []Member
	ClassConf map[vision.ClassID]float64
	NScored   int
	RepCands  []RepCandidateSnapshot
	LastTouch float64
}

// EngineSnapshot is the persisted form of a whole engine mid-ingestion.
// Active preserves slice order.
type EngineSnapshot struct {
	NextID       int64
	TotalMembers int
	TotalSpilled int
	Active       []ClusterSnapshot
}

// Snapshot captures the engine's complete mutable state. The caller must
// guarantee no concurrent Add/Flush (the ingest worker owns the engine, so
// its driving goroutine qualifies).
func (e *Engine) Snapshot() EngineSnapshot {
	snap := EngineSnapshot{
		NextID:       e.nextID,
		TotalMembers: e.totalMembers,
		TotalSpilled: e.totalSpilled,
		Active:       make([]ClusterSnapshot, len(e.active)),
	}
	for i, c := range e.active {
		cs := ClusterSnapshot{
			ID:        c.ID,
			Centroid:  c.Centroid.Clone(),
			Members:   append([]Member(nil), c.Members...),
			ClassConf: make(map[vision.ClassID]float64, len(c.classConf)),
			NScored:   c.nScored,
			RepCands:  make([]RepCandidateSnapshot, len(c.repCandidates)),
			LastTouch: c.lastTouch,
		}
		for cl, conf := range c.classConf {
			cs.ClassConf[cl] = conf
		}
		for j, rc := range c.repCandidates {
			cs.RepCands[j] = RepCandidateSnapshot{
				Member:  rc.member,
				Feature: rc.feature.Clone(),
				AddDist: rc.addDist,
			}
		}
		snap.Active[i] = cs
	}
	return snap
}

// NewEngineFromSnapshot rebuilds an engine exactly as Snapshot captured it.
// cfg must be the same configuration the snapshotted engine ran with;
// onSpill is re-attached fresh (callbacks cannot be persisted).
func NewEngineFromSnapshot(cfg Config, onSpill func(*Cluster), snap EngineSnapshot) (*Engine, error) {
	e, err := NewEngine(cfg, onSpill)
	if err != nil {
		return nil, err
	}
	e.nextID = snap.NextID
	e.totalMembers = snap.TotalMembers
	e.totalSpilled = snap.TotalSpilled
	e.active = make([]*Cluster, len(snap.Active))
	for i, cs := range snap.Active {
		if cs.ID >= snap.NextID {
			return nil, fmt.Errorf("cluster: snapshot cluster ID %d >= NextID %d", cs.ID, snap.NextID)
		}
		c := &Cluster{
			ID:        cs.ID,
			Centroid:  cs.Centroid.Clone(),
			Members:   append([]Member(nil), cs.Members...),
			classConf: make(map[vision.ClassID]float64, len(cs.ClassConf)),
			nScored:   cs.NScored,
			// centroidNorm is a pure function of the centroid; recomputing
			// with the same routine reproduces the exact float64.
			centroidNorm:  vision.Norm(cs.Centroid),
			lastTouch:     cs.LastTouch,
			repCandidates: make([]repCandidate, len(cs.RepCands)),
			cell:          -1,
		}
		for cl, conf := range cs.ClassConf {
			c.classConf[cl] = conf
		}
		for j, rc := range cs.RepCands {
			c.repCandidates[j] = repCandidate{
				member:  rc.Member,
				feature: rc.Feature.Clone(),
				addDist: rc.AddDist,
			}
		}
		e.active[i] = c
	}
	return e, nil
}

// FindActive returns the active cluster with the given ID, or nil. Restored
// ingest workers use it to re-link association-table entries to the clusters
// a snapshot rebuilt.
func (e *Engine) FindActive(id int64) *Cluster {
	for _, c := range e.active {
		if c.ID == id {
			return c
		}
	}
	return nil
}

// SpilledPlaceholder returns a cluster that reports itself spilled. Restored
// ingest workers use it to rebuild pixel-diff association entries whose
// predecessor's cluster was already spilled at snapshot time: the entry only
// needs AddDeduplicated to refuse it (falling back to the scored path),
// exactly as the real spilled cluster would have.
func SpilledPlaceholder(id int64) *Cluster {
	return &Cluster{ID: id, spilled: true, cell: -1}
}
