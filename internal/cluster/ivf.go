package cluster

import (
	"math"

	"focus/internal/vision"
)

// The nearest-centroid scan is the hottest loop of ingest: O(M·d) exact
// work per scored sighting. The IVF (inverted-file) index cuts the
// constant without changing a single answer: active centroids are bucketed
// into a handful of cells by a coarse k-means quantizer, each cell carries
// its center and a radius (the exact maximum of its members' cached
// center distances), and a query visits cells in center-distance order,
// skipping a whole cell when the triangle inequality proves none of its
// members can beat — or even tie — the best distance so far:
//
//	‖f − c‖ ≥ ‖f − center‖ − ‖c − center‖ ≥ ‖f − center‖ − radius
//
// Every prune is a strict lower-bound argument, so the selected cluster
// and its distance are bit-identical to the reference linear scan
// (nearestLinear below, kept forever as the property-test oracle). Ties
// need care: the linear scan keeps the first — lowest-ID, since the
// active slice is append-only in ID order — cluster achieving the minimum
// distance, so the IVF path breaks exact distance ties by cluster ID, re-
// deriving the full distance when the bounded kernel stopped at the bound
// with only a partial sum in hand.
//
// The quantizer is rebuilt from scratch (deterministic k-means over the
// active centroids, seeded by position in the ID-ordered active slice)
// after enough structural churn, a long enough add streak, or when the
// active population drifts far from the size it was built for; between
// rebuilds, inserts assign to the nearest cell, removals detach, and
// centroid drift refreshes the member's exact center distance and the
// owning cell's radius, preserving the invariant the pruning rests on.

const (
	// ivfMinActive is the population below which the index stays off: for
	// a couple dozen centroids the linear scan's norm pruning already wins
	// and cell bookkeeping is pure overhead.
	ivfMinActive = 24
	// ivfMaxCells caps the quantizer size; cells beyond √M add center
	// distance computations without pruning more members.
	ivfMaxCells = 64
	// ivfRebuildMutations is how many structural mutations (inserts and
	// removals) are tolerated before the quantizer is rebuilt, and
	// ivfRebuildAdds caps how long a quantizer may serve regardless, so a
	// join-heavy workload whose centroids slowly drift away from their
	// cells still gets repartitioned. Both amortize rebuild cost to a
	// fraction of one linear scan per Add.
	ivfRebuildMutations = 1024
	ivfRebuildAdds      = 1024
	// ivfKMeansIters is the number of Lloyd assignment passes per rebuild;
	// the quantizer only affects speed, not answers, so a rough partition
	// is enough.
	ivfKMeansIters = 2
	// ivfDistSlack and ivfKernelSlack make the cell prune conservative
	// against floating-point rounding: the distance kernels subtract
	// float32 coordinates (relative error ≤ 2⁻²⁴ per term), so a computed
	// center distance or radius can be off by ~1.2e-7 relative and the
	// bounded kernel's value can sit the same sliver below the true
	// squared distance. Padding the lower bound additively by
	// (dist+radius)·ivfDistSlack and the comparison by ivfKernelSlack
	// makes the prune provably never discard a candidate the linear scan
	// would have kept, at a pruning-power cost that is measurably zero.
	ivfDistSlack   = 4e-7
	ivfKernelSlack = 1e-6
)

// assignCell finds the nearest center to a cluster centroid, pruning with
// cached norms (the same ‖c−q‖² ≥ (‖c‖−‖q‖)² argument as the scans) and
// the bounded kernel. Returns the cell index and the exact squared
// distance to it.
func assignCell(centers []vision.FeatureVec, norms []float64, c *Cluster) (int, float64) {
	bestCell, bestD := 0, math.Inf(1)
	for j := range centers {
		if gap := norms[j] - c.centroidNorm; gap*gap > bestD {
			continue
		}
		if d := vision.SquaredL2DistanceBounded(centers[j], c.Centroid, bestD); d < bestD {
			bestCell, bestD = j, d
		}
	}
	return bestCell, bestD
}

// ivfCell is one inverted-file bucket: a coarse center, the active
// clusters assigned to it, and an upper bound on how far any member's
// centroid sits from the center.
type ivfCell struct {
	center  vision.FeatureVec
	radius  float64
	members []*Cluster
}

// ivfIndex is the engine's coarse quantizer state plus the scratch buffers
// that keep the nearest() hot path allocation-free.
type ivfIndex struct {
	enabled     bool
	cells       []ivfCell
	builtActive int // len(active) at the last rebuild
	mutations   int // inserts + removals since the last rebuild
	adds        int // scored Adds since the last rebuild
	// scratch, sized to len(cells) at rebuild
	dist  []float64
	order []int
}

// nearestIVF returns exactly what nearestLinear would: the lowest-ID
// active cluster at minimum centroid distance, and that distance.
func (e *Engine) nearestIVF(f vision.FeatureVec) (*Cluster, float64) {
	ix := &e.ivf
	fNorm := vision.Norm(f)
	for i := range ix.cells {
		ix.dist[i] = vision.L2Distance(ix.cells[i].center, f)
		ix.order[i] = i
	}
	// Insertion sort by center distance (ties by cell index): the cell
	// count is tiny and the scratch reuse keeps this allocation-free.
	for i := 1; i < len(ix.order); i++ {
		for j := i; j > 0 && ix.dist[ix.order[j]] < ix.dist[ix.order[j-1]]; j-- {
			ix.order[j], ix.order[j-1] = ix.order[j-1], ix.order[j]
		}
	}
	var best *Cluster
	bestD := math.Inf(1)
	for _, ci := range ix.order {
		cell := &ix.cells[ci]
		// A member of this cell is at least (center distance − radius)
		// away; if that lower bound — shaved by the rounding slack —
		// already exceeds the best squared distance, nothing inside can
		// win or tie.
		lb := ix.dist[ci] - cell.radius - (ix.dist[ci]+cell.radius)*ivfDistSlack
		if lb > 0 && lb*lb > bestD*(1+ivfKernelSlack) {
			continue
		}
		dci := ix.dist[ci]
		for _, c := range cell.members {
			// Ring prune: ‖f−c‖ ≥ |‖f−center‖ − ‖c−center‖|, both factors
			// already in hand, so most members of a mismatched ring are
			// skipped with one multiply.
			lbm := math.Abs(dci-c.centerDist) - (dci+c.centerDist)*ivfDistSlack
			if lbm > 0 && lbm*lbm > bestD*(1+ivfKernelSlack) {
				continue
			}
			// Same norm-gap prune as the linear scan: ‖c−f‖² ≥ (‖c‖−‖f‖)²,
			// so a gap exceeding bestD is strictly worse — it cannot tie.
			// The kernel slack keeps this prune strictly weaker than the
			// linear scan's, so it can never skip the linear winner.
			if gap := c.centroidNorm - fNorm; gap*gap > bestD*(1+ivfKernelSlack) {
				continue
			}
			d := vision.SquaredL2DistanceBounded(c.Centroid, f, bestD)
			if d < bestD {
				best, bestD = c, d
			} else if d == bestD && best != nil && c.ID < best.ID {
				// The bounded kernel stops at the bound with a partial sum,
				// so d == bestD here may be a coincidence of the early
				// exit, not a true tie. The linear scan resolves ties in ID
				// order; confirm with the full distance before letting the
				// lower ID win.
				if vision.SquaredL2Distance(c.Centroid, f) == bestD {
					best = c
				}
			}
		}
	}
	return best, math.Sqrt(bestD)
}

// ivfMaybeRebuild turns the index on or off for the current population and
// rebuilds the quantizer when enough structure has changed. Called once
// per scored Add, after all spills.
func (e *Engine) ivfMaybeRebuild() {
	n := len(e.active)
	if n < ivfMinActive {
		if e.ivf.enabled {
			e.ivf.enabled = false
			e.ivf.cells = nil
		}
		return
	}
	e.ivf.adds++
	if !e.ivf.enabled || e.ivf.mutations >= ivfRebuildMutations ||
		e.ivf.adds >= ivfRebuildAdds ||
		n > e.ivf.builtActive*2 || n*2 < e.ivf.builtActive {
		e.ivfRebuild()
	}
}

// ivfRebuild runs a deterministic k-means over the active centroids and
// reassigns every cluster to its nearest cell. Initial centers are spread
// across the ID-ordered active slice, so the same active set always yields
// the same quantizer.
func (e *Engine) ivfRebuild() {
	n := len(e.active)
	k := int(math.Sqrt(float64(n)))
	if k < 2 {
		k = 2
	}
	if k > ivfMaxCells {
		k = ivfMaxCells
	}
	if k > n {
		k = n
	}
	dim := len(e.active[0].Centroid)
	centers := make([]vision.FeatureVec, k)
	norms := make([]float64, k)
	for i := range centers {
		centers[i] = e.active[i*n/k].Centroid.Clone()
		norms[i] = vision.Norm(centers[i])
	}
	assign := make([]int, n)
	assignD := make([]float64, n)
	sums := make([][]float64, k)
	counts := make([]int, k)
	for i := range sums {
		sums[i] = make([]float64, dim)
	}
	for iter := 0; iter < ivfKMeansIters; iter++ {
		for i, c := range e.active {
			assign[i], assignD[i] = assignCell(centers, norms, c)
		}
		if iter == ivfKMeansIters-1 {
			// Centers are not moved after the last assignment, so the
			// final pass below can reuse it verbatim.
			break
		}
		for j := range sums {
			for d := range sums[j] {
				sums[j][d] = 0
			}
			counts[j] = 0
		}
		for i, c := range e.active {
			j := assign[i]
			counts[j]++
			for d, v := range c.Centroid {
				sums[j][d] += float64(v)
			}
		}
		for j := range centers {
			if counts[j] == 0 {
				continue // empty cell keeps its old center
			}
			inv := 1 / float64(counts[j])
			for d := range centers[j] {
				centers[j][d] = float32(sums[j][d] * inv)
			}
			norms[j] = vision.Norm(centers[j])
		}
	}
	for j := range counts {
		counts[j] = 0
	}
	for i := range e.active {
		counts[assign[i]]++
	}
	cells := make([]ivfCell, k)
	for j := range cells {
		cells[j].center = centers[j]
		if counts[j] > 0 {
			cells[j].members = make([]*Cluster, 0, counts[j])
		}
	}
	for i, c := range e.active {
		j := assign[i]
		c.cell = j
		c.centerDist = math.Sqrt(assignD[i])
		cells[j].members = append(cells[j].members, c)
		if c.centerDist > cells[j].radius {
			cells[j].radius = c.centerDist
		}
	}
	e.ivf.enabled = true
	e.ivf.cells = cells
	e.ivf.builtActive = n
	e.ivf.mutations = 0
	e.ivf.adds = 0
	if cap(e.ivf.dist) < k {
		e.ivf.dist = make([]float64, k)
		e.ivf.order = make([]int, k)
	}
	e.ivf.dist = e.ivf.dist[:k]
	e.ivf.order = e.ivf.order[:k]
}

// ivfInsert assigns a newly created cluster to its nearest cell.
func (e *Engine) ivfInsert(c *Cluster) {
	if !e.ivf.enabled {
		return
	}
	bestCell, bestD := 0, math.Inf(1)
	for j := range e.ivf.cells {
		if d := vision.SquaredL2DistanceBounded(e.ivf.cells[j].center, c.Centroid, bestD); d < bestD {
			bestCell, bestD = j, d
		}
	}
	cell := &e.ivf.cells[bestCell]
	c.cell = bestCell
	c.centerDist = math.Sqrt(bestD)
	cell.members = append(cell.members, c)
	if c.centerDist > cell.radius {
		cell.radius = c.centerDist
	}
	e.ivf.mutations++
}

// ivfRemove detaches a cluster from its cell, tightening the cell radius
// when the departing cluster was the one defining it.
func (e *Engine) ivfRemove(c *Cluster) {
	if !e.ivf.enabled || c.cell < 0 {
		return
	}
	cell := &e.ivf.cells[c.cell]
	for i, x := range cell.members {
		if x == c {
			cell.members[i] = cell.members[len(cell.members)-1]
			cell.members = cell.members[:len(cell.members)-1]
			break
		}
	}
	if c.centerDist >= cell.radius {
		cell.recomputeRadius()
	}
	c.cell = -1
	e.ivf.mutations++
}

// ivfDrift accounts for a centroid update: the cluster stays in its cell
// with a fresh exact center distance, and the cell radius is kept exactly
// equal to the largest member center distance — looser radii would erode
// the cell prune as join-heavy workloads drift centroids around.
func (e *Engine) ivfDrift(c *Cluster) {
	if !e.ivf.enabled || c.cell < 0 {
		return
	}
	cell := &e.ivf.cells[c.cell]
	old := c.centerDist
	c.centerDist = vision.L2Distance(cell.center, c.Centroid)
	if c.centerDist >= cell.radius {
		cell.radius = c.centerDist
	} else if old >= cell.radius {
		cell.recomputeRadius()
	}
}

// recomputeRadius restores radius = max member center distance from the
// cached per-member distances; called when the defining member shrank or
// left.
func (cell *ivfCell) recomputeRadius() {
	r := 0.0
	for _, m := range cell.members {
		if m.centerDist > r {
			r = m.centerDist
		}
	}
	cell.radius = r
}
