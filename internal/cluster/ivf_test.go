package cluster

import (
	"math"
	"testing"

	"focus/internal/simrand"
	"focus/internal/vision"
)

// The IVF index must be invisible: an engine with the index on and an
// engine forced onto the reference linear scan, fed the same sightings,
// must evolve bit-identically — same cluster chosen for every Add, same
// centroids to the last float bit, same spill sequence — across spill and
// retirement churn, quantizer rebuild boundaries, and degenerate feature
// geometries. These tests are the permanent oracle for that claim;
// nearestLinear exists so they can diff against it forever.

// ivfScenario is one randomized feature regime for the side-by-side
// property test.
type ivfScenario struct {
	name    string
	cfg     Config
	adds    int
	dim     int
	centers int     // gaussian mixture components (0 = integer grid)
	noise   float64 // per-coordinate sighting noise
	gridMax int     // grid half-width when centers == 0
	dtSec   float64 // timestamp advance per add (drives idle retirement)
	// wantIVF asserts the index actually turned on at least once, so a
	// scenario cannot vacuously pass with the index off.
	wantIVF bool
}

func ivfScenarios() []ivfScenario {
	return []ivfScenario{
		{
			// Realistic regime: full-width features from a mixture, cap and
			// idle churn, member-count spills, long enough to cross several
			// quantizer rebuilds.
			name:    "gaussian32",
			cfg:     Config{Threshold: 3.0, MaxActive: 64, IdleTimeoutSec: 60, MaxMembers: 50},
			adds:    3000,
			dim:     vision.FeatureDim,
			centers: 40,
			noise:   0.8,
			dtSec:   0.1,
			wantIVF: true,
		},
		{
			// One-dimensional vectors: the quantizer and all pruning bounds
			// must hold in the thinnest possible space.
			name:    "dim1",
			cfg:     Config{Threshold: 0.3, MaxActive: 48, IdleTimeoutSec: 30},
			adds:    2000,
			dim:     1,
			centers: 25,
			noise:   1.5,
			dtSec:   0.05,
			wantIVF: true,
		},
		{
			// Degenerate integer grid: many exactly-equal distances, so the
			// (distance, lowest-ID) tie-break is exercised constantly.
			name:    "grid-ties",
			cfg:     Config{Threshold: 0.5, MaxActive: 40},
			adds:    2500,
			dim:     2,
			gridMax: 3,
			wantIVF: true,
		},
		{
			// Population oscillates around ivfMinActive: aggressive idle
			// retirement repeatedly disables and re-enables the index, so
			// every on/off boundary is crossed many times.
			name:    "minactive-churn",
			cfg:     Config{Threshold: 1.0, MaxActive: 40, IdleTimeoutSec: 7},
			adds:    2500,
			dim:     8,
			centers: 60,
			noise:   0.5,
			dtSec:   0.2,
			wantIVF: true,
		},
	}
}

// mixtureCenters precomputes the scenario's gaussian mixture components.
func (sc *ivfScenario) mixtureCenters() []vision.FeatureVec {
	if sc.centers == 0 {
		return nil
	}
	centers := make([]vision.FeatureVec, sc.centers)
	for c := range centers {
		cs := simrand.New(7).Derive("ivf-center", sc.name).DeriveN(int64(c))
		v := make(vision.FeatureVec, sc.dim)
		for d := range v {
			v[d] = float32(cs.NormFloat64() * 4)
		}
		centers[c] = v
	}
	return centers
}

// drawFeature generates one sighting feature for a scenario.
func (sc *ivfScenario) drawFeature(src *simrand.Source, centers []vision.FeatureVec) vision.FeatureVec {
	f := make(vision.FeatureVec, sc.dim)
	if sc.centers == 0 {
		span := 2*sc.gridMax + 1
		for d := range f {
			f[d] = float32(src.Intn(span) - sc.gridMax)
		}
		return f
	}
	c := centers[src.Intn(len(centers))]
	for d := range f {
		f[d] = c[d] + float32(src.NormFloat64()*sc.noise)
	}
	return f
}

func compareEngines(t *testing.T, step int, lin, ivf *Engine) {
	t.Helper()
	if len(lin.active) != len(ivf.active) {
		t.Fatalf("step %d: active count linear=%d ivf=%d", step, len(lin.active), len(ivf.active))
	}
	for i := range lin.active {
		a, b := lin.active[i], ivf.active[i]
		if a.ID != b.ID {
			t.Fatalf("step %d: active[%d] ID linear=%d ivf=%d", step, i, a.ID, b.ID)
		}
		if a.nScored != b.nScored || len(a.Members) != len(b.Members) {
			t.Fatalf("step %d: cluster %d membership diverged (scored %d/%d, members %d/%d)",
				step, a.ID, a.nScored, b.nScored, len(a.Members), len(b.Members))
		}
		if math.Float64bits(a.centroidNorm) != math.Float64bits(b.centroidNorm) {
			t.Fatalf("step %d: cluster %d centroidNorm bits diverged", step, a.ID)
		}
		for d := range a.Centroid {
			if math.Float32bits(a.Centroid[d]) != math.Float32bits(b.Centroid[d]) {
				t.Fatalf("step %d: cluster %d centroid[%d] linear=%x ivf=%x",
					step, a.ID, d, math.Float32bits(a.Centroid[d]), math.Float32bits(b.Centroid[d]))
			}
		}
	}
}

// TestIVFMatchesLinearScan is the bit-identicality property test: two
// engines, one with the IVF index and one pinned to the reference linear
// scan, fed identical randomized streams, compared field-for-field after
// every Add. On the IVF engine it additionally diffs nearestIVF against
// nearestLinear on the same state before each insertion — the most direct
// form of the oracle.
func TestIVFMatchesLinearScan(t *testing.T) {
	for _, sc := range ivfScenarios() {
		t.Run(sc.name, func(t *testing.T) {
			linCfg := sc.cfg
			linCfg.LinearScan = true
			var linSpills, ivfSpills []int64
			lin, err := NewEngine(linCfg, func(c *Cluster) { linSpills = append(linSpills, c.ID) })
			if err != nil {
				t.Fatal(err)
			}
			ivf, err := NewEngine(sc.cfg, func(c *Cluster) { ivfSpills = append(ivfSpills, c.ID) })
			if err != nil {
				t.Fatal(err)
			}
			src := simrand.New(42).Derive("ivf-prop", sc.name)
			centers := sc.mixtureCenters()
			sawIVF := false
			for i := 0; i < sc.adds; i++ {
				f := sc.drawFeature(src, centers)
				m := member(i)
				m.TimeSec = float64(i) * sc.dtSec
				if ivf.ivf.enabled {
					sawIVF = true
					b1, d1 := ivf.nearestIVF(f)
					b2, d2 := ivf.nearestLinear(f)
					if b1 != b2 || math.Float64bits(d1) != math.Float64bits(d2) {
						t.Fatalf("step %d: nearest diverged: ivf=(%v, %v) linear=(%v, %v)",
							i, clusterID(b1), d1, clusterID(b2), d2)
					}
				}
				c1 := lin.Add(f, m, nil)
				c2 := ivf.Add(f, m, nil)
				if c1.ID != c2.ID {
					t.Fatalf("step %d: assigned cluster linear=%d ivf=%d", i, c1.ID, c2.ID)
				}
				if len(linSpills) != len(ivfSpills) {
					t.Fatalf("step %d: spill count linear=%d ivf=%d", i, len(linSpills), len(ivfSpills))
				}
				compareEngines(t, i, lin, ivf)
			}
			lin.Flush()
			ivf.Flush()
			if len(linSpills) != len(ivfSpills) {
				t.Fatalf("final spill count linear=%d ivf=%d", len(linSpills), len(ivfSpills))
			}
			for i := range linSpills {
				if linSpills[i] != ivfSpills[i] {
					t.Fatalf("spill[%d] linear=%d ivf=%d", i, linSpills[i], ivfSpills[i])
				}
			}
			if sawIVF != sc.wantIVF {
				t.Fatalf("IVF index enabled=%v, scenario expects %v — scenario lost its bite", sawIVF, sc.wantIVF)
			}
		})
	}
}

func clusterID(c *Cluster) int64 {
	if c == nil {
		return -1
	}
	return c.ID
}

// TestIVFRebuildCrossesMinActive pins the on/off boundary: growing past
// ivfMinActive turns the index on, idle retirement below it turns it off,
// and both transitions leave behavior unchanged (covered by the property
// test above; here we assert the transitions themselves happen).
func TestIVFRebuildCrossesMinActive(t *testing.T) {
	e, _ := newEngine(t, Config{Threshold: 0.1, MaxActive: 2 * ivfMinActive, IdleTimeoutSec: 10})
	for i := 0; i < ivfMinActive-1; i++ {
		e.Add(vec(float32(i)*10), Member{TimeSec: 0}, nil)
	}
	if e.ivf.enabled {
		t.Fatalf("index on below ivfMinActive (%d active)", len(e.active))
	}
	for i := ivfMinActive - 1; i < 2*ivfMinActive-2; i++ {
		e.Add(vec(float32(i)*10), Member{TimeSec: 1}, nil)
	}
	if !e.ivf.enabled {
		t.Fatalf("index still off with %d active", len(e.active))
	}
	// A much later member retires everything idle; the survivor count drops
	// below the minimum and the index must shut off.
	e.Add(vec(-10), Member{TimeSec: 1000}, nil)
	if e.ivf.enabled {
		t.Fatalf("index still on with %d active after retirement", len(e.active))
	}
}

// TestNearestZeroAlloc pins the hot path's allocation behavior: both
// nearest implementations must not allocate at all, and a steady-state
// joining Add must be allocation-free apart from amortized slice growth.
func TestNearestZeroAlloc(t *testing.T) {
	e, _ := newEngine(t, Config{Threshold: 0.5, MaxActive: 128})
	src := simrand.New(9).Derive("ivf-alloc")
	feats := make([]vision.FeatureVec, 64)
	for i := range feats {
		f := make(vision.FeatureVec, vision.FeatureDim)
		for d := range f {
			f[d] = float32(src.NormFloat64() * 10)
		}
		feats[i] = f
		e.Add(f, member(i), nil)
	}
	if !e.ivf.enabled {
		t.Fatal("index off; alloc test needs the IVF path live")
	}
	probe := feats[17]
	if n := testing.AllocsPerRun(200, func() { e.nearestIVF(probe) }); n != 0 {
		t.Errorf("nearestIVF allocates %v per call, want 0", n)
	}
	if n := testing.AllocsPerRun(200, func() { e.nearestLinear(probe) }); n != 0 {
		t.Errorf("nearestLinear allocates %v per call, want 0", n)
	}
	// Warm the member slices past their growth knees, then measure joins.
	for i := 0; i < 4096; i++ {
		e.Add(feats[i%len(feats)], member(i), nil)
	}
	i := 0
	if n := testing.AllocsPerRun(500, func() {
		e.Add(feats[i%len(feats)], member(i), nil)
		i++
	}); n > 0.5 {
		t.Errorf("steady-state Add allocates %v per call, want ~0", n)
	}
}

// benchmarkAdd drives a steady-state engine with `instances` distinct
// object appearances over a cap of maxActive clusters. instances ≤
// maxActive is the regime real streams live in (every live object keeps
// its cluster; joins dominate); instances ≫ maxActive is an adversarial
// LRU-thrash where most adds create a cluster and spill another, which is
// the IVF index's worst case (constant structural churn).
func benchmarkAdd(b *testing.B, linear bool, maxActive, instances int) {
	e, err := NewEngine(Config{Threshold: 2.0, MaxActive: maxActive, LinearScan: linear}, func(*Cluster) {})
	if err != nil {
		b.Fatal(err)
	}
	sp := vision.NewSpace(1)
	model := vision.NewZoo().ByName("resnet18")
	src := simrand.New(3)
	feats := make([]vision.FeatureVec, instances)
	for i := range feats {
		inst := sp.NewInstanceAppearance(vision.ClassID(i%40), src)
		feats[i] = model.ExtractFeatures(inst, src)
	}
	for i := 0; i < 2*instances; i++ { // reach steady state before timing
		e.Add(feats[i%len(feats)], member(i), nil)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Add(feats[i%len(feats)], member(i), nil)
	}
}

func BenchmarkAddLinear(b *testing.B)       { benchmarkAdd(b, true, 256, 200) }
func BenchmarkAddIVF(b *testing.B)          { benchmarkAdd(b, false, 256, 200) }
func BenchmarkAddM512Linear(b *testing.B)   { benchmarkAdd(b, true, 512, 400) }
func BenchmarkAddM512IVF(b *testing.B)      { benchmarkAdd(b, false, 512, 400) }
func BenchmarkAddThrashLinear(b *testing.B) { benchmarkAdd(b, true, 256, 1024) }
func BenchmarkAddThrashIVF(b *testing.B)    { benchmarkAdd(b, false, 256, 1024) }
