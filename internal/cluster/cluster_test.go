package cluster

import (
	"math"
	"testing"
	"testing/quick"

	"focus/internal/simrand"
	"focus/internal/video"
	"focus/internal/vision"
)

func vec(vals ...float32) vision.FeatureVec {
	v := make(vision.FeatureVec, vision.FeatureDim)
	copy(v, vals)
	return v
}

func member(i int) Member {
	return Member{
		Object:    video.ObjectID(i),
		Frame:     video.FrameID(i * 10),
		TimeSec:   float64(i),
		TrueClass: vision.ClassID(i % 7),
		Seed:      int64(i),
	}
}

func newEngine(t testing.TB, cfg Config) (*Engine, *[]*Cluster) {
	t.Helper()
	var spilled []*Cluster
	e, err := NewEngine(cfg, func(c *Cluster) { spilled = append(spilled, c) })
	if err != nil {
		t.Fatal(err)
	}
	return e, &spilled
}

func TestConfigValidation(t *testing.T) {
	if _, err := NewEngine(Config{Threshold: 0, MaxActive: 4}, func(*Cluster) {}); err == nil {
		t.Error("zero threshold accepted")
	}
	if _, err := NewEngine(Config{Threshold: 1, MaxActive: 0}, func(*Cluster) {}); err == nil {
		t.Error("zero MaxActive accepted")
	}
	if _, err := NewEngine(Config{Threshold: 1, MaxActive: 4}, nil); err == nil {
		t.Error("nil spill callback accepted")
	}
}

func TestBasicAssignment(t *testing.T) {
	e, _ := newEngine(t, Config{Threshold: 1.0, MaxActive: 100})
	c1 := e.Add(vec(0, 0), member(1), nil)
	c2 := e.Add(vec(0.5, 0), member(2), nil) // within T of c1
	c3 := e.Add(vec(10, 0), member(3), nil)  // new cluster
	if c1 != c2 {
		t.Error("nearby feature did not join existing cluster")
	}
	if c3 == c1 {
		t.Error("distant feature joined wrong cluster")
	}
	if e.ActiveClusters() != 2 {
		t.Errorf("active clusters = %d, want 2", e.ActiveClusters())
	}
	if e.TotalMembers() != 3 {
		t.Errorf("total members = %d", e.TotalMembers())
	}
	if c1.Size() != 2 {
		t.Errorf("cluster 1 size = %d", c1.Size())
	}
}

func TestCentroidIsRunningMean(t *testing.T) {
	e, _ := newEngine(t, Config{Threshold: 10, MaxActive: 10})
	c := e.Add(vec(0, 0), member(1), nil)
	e.Add(vec(2, 0), member(2), nil)
	e.Add(vec(4, 0), member(3), nil)
	if math.Abs(float64(c.Centroid[0])-2) > 1e-6 {
		t.Errorf("centroid[0] = %v, want 2", c.Centroid[0])
	}
}

func TestThresholdBoundary(t *testing.T) {
	e, _ := newEngine(t, Config{Threshold: 2.0, MaxActive: 10})
	e.Add(vec(0), member(1), nil)
	// Distance exactly at threshold joins; just over creates a new cluster.
	e.Add(vec(2.0), member(2), nil)
	if e.ActiveClusters() != 1 {
		t.Errorf("distance == T should join (got %d clusters)", e.ActiveClusters())
	}
	e.Add(vec(4.01), member(3), nil) // 2.01 away from the centroid at 1.0... recompute
	// centroid after two members is 1.0; 4.01 is 3.01 away > 2 → new cluster
	if e.ActiveClusters() != 2 {
		t.Errorf("distance > T should split (got %d clusters)", e.ActiveClusters())
	}
}

func TestSpillSmallestAtCap(t *testing.T) {
	e, spilled := newEngine(t, Config{Threshold: 0.5, MaxActive: 2})
	e.Add(vec(0), member(1), nil)
	e.Add(vec(0.1), member(2), nil) // cluster A: 2 members
	e.Add(vec(10), member(3), nil)  // cluster B: 1 member
	if len(*spilled) != 0 {
		t.Fatal("premature spill")
	}
	e.Add(vec(20), member(4), nil) // cluster C forces spill of smallest (B or C, both size 1; smallest scan picks first = B)
	if len(*spilled) != 1 {
		t.Fatalf("spilled = %d, want 1", len(*spilled))
	}
	if (*spilled)[0].Size() != 1 {
		t.Errorf("spilled cluster size = %d, want 1 (smallest)", (*spilled)[0].Size())
	}
	if !(*spilled)[0].Spilled() {
		t.Error("spilled cluster not marked")
	}
	if e.ActiveClusters() != 2 {
		t.Errorf("active = %d, want 2", e.ActiveClusters())
	}
}

func TestFlushSpillsAllLargestFirst(t *testing.T) {
	e, spilled := newEngine(t, Config{Threshold: 0.5, MaxActive: 10})
	e.Add(vec(0), member(1), nil)
	e.Add(vec(0.1), member(2), nil)
	e.Add(vec(10), member(3), nil)
	e.Flush()
	if len(*spilled) != 2 {
		t.Fatalf("flushed %d clusters, want 2", len(*spilled))
	}
	if (*spilled)[0].Size() < (*spilled)[1].Size() {
		t.Error("flush should spill largest first")
	}
	if e.ActiveClusters() != 0 {
		t.Error("clusters remain after flush")
	}
	if e.TotalSpilled() != 2 {
		t.Errorf("TotalSpilled = %d", e.TotalSpilled())
	}
}

func TestTopKAggregation(t *testing.T) {
	e, _ := newEngine(t, Config{Threshold: 10, MaxActive: 10})
	c := e.Add(vec(0), member(1), []vision.Prediction{
		{Class: 5, Confidence: 0.8}, {Class: 3, Confidence: 0.1},
	})
	e.Add(vec(0.1), member(2), []vision.Prediction{
		{Class: 5, Confidence: 0.7}, {Class: 9, Confidence: 0.3},
	})
	top := c.TopK(2)
	if len(top) != 2 {
		t.Fatalf("topK len = %d", len(top))
	}
	if top[0].Class != 5 {
		t.Errorf("top class = %d, want 5", top[0].Class)
	}
	if top[1].Class != 9 { // 0.3 > 0.1
		t.Errorf("second class = %d, want 9", top[1].Class)
	}
	// Normalized confidence: class 5 has (0.8+0.7)/2 = 0.75.
	if math.Abs(float64(top[0].Confidence)-0.75) > 1e-6 {
		t.Errorf("top confidence = %v, want 0.75", top[0].Confidence)
	}
	// Oversized k returns all distinct classes.
	if got := len(c.TopK(100)); got != 3 {
		t.Errorf("TopK(100) len = %d, want 3", got)
	}
}

func TestTopKDeterministicTieBreak(t *testing.T) {
	e, _ := newEngine(t, Config{Threshold: 10, MaxActive: 10})
	c := e.Add(vec(0), member(1), []vision.Prediction{
		{Class: 9, Confidence: 0.5}, {Class: 2, Confidence: 0.5},
	})
	top := c.TopK(2)
	if top[0].Class != 2 || top[1].Class != 9 {
		t.Errorf("tie-break order = %v", top)
	}
}

func TestAddDeduplicated(t *testing.T) {
	e, spilled := newEngine(t, Config{Threshold: 0.5, MaxActive: 1})
	c := e.Add(vec(0), member(1), []vision.Prediction{{Class: 1, Confidence: 0.9}})
	if !e.AddDeduplicated(c, member(2)) {
		t.Fatal("dedup add to live cluster failed")
	}
	if c.Size() != 2 {
		t.Errorf("size = %d", c.Size())
	}
	// Dedup members don't shift the centroid or confidences.
	if c.nScored != 1 {
		t.Errorf("nScored = %d, want 1", c.nScored)
	}
	// Force the cluster to spill, then dedup add must fail.
	e.Add(vec(10), member(3), nil)
	e.Add(vec(20), member(4), nil)
	if len(*spilled) == 0 {
		t.Fatal("no spill at cap 1")
	}
	target := (*spilled)[0]
	if e.AddDeduplicated(target, member(5)) {
		t.Error("dedup add to spilled cluster succeeded")
	}
	if e.AddDeduplicated(nil, member(6)) {
		t.Error("dedup add to nil cluster succeeded")
	}
}

func TestRepresentativeNearCentroid(t *testing.T) {
	e, _ := newEngine(t, Config{Threshold: 100, MaxActive: 10, RepCandidates: 4})
	// Members on a line; the final centroid is their mean, and the
	// representative should be the member nearest that mean.
	positions := []float32{0, 1, 2, 3, 4, 5, 6, 7, 8}
	var c *Cluster
	for i, p := range positions {
		c = e.Add(vec(p), member(i), nil)
	}
	rep := c.Representative()
	// Centroid = 4; nearest member positions are 3, 4 or 5 → member index
	// 3, 4, or 5 (reservoir holds a subset, so allow that neighbourhood).
	if rep.Object < 2 || rep.Object > 6 {
		t.Errorf("representative object = %d, want near the centroid", rep.Object)
	}
}

func TestTimeRange(t *testing.T) {
	e, _ := newEngine(t, Config{Threshold: 100, MaxActive: 10})
	c := e.Add(vec(0), Member{TimeSec: 5}, nil)
	e.Add(vec(0.1), Member{TimeSec: 2}, nil)
	e.Add(vec(0.2), Member{TimeSec: 9}, nil)
	min, max := c.TimeRange()
	if min != 2 || max != 9 {
		t.Errorf("time range = [%v, %v], want [2, 9]", min, max)
	}
	empty := &Cluster{}
	if a, b := empty.TimeRange(); a != 0 || b != 0 {
		t.Error("empty cluster time range not zero")
	}
}

func TestSameObjectSightingsCluster(t *testing.T) {
	// Consecutive sightings of the same object (tiny feature jitter) must
	// land in one cluster at a threshold far below class separation
	// (same-instance feature distance ≈ 2.2, same-class cross-instance
	// ≈ 4.4, cross-class ≈ 8 in this feature space).
	sp := vision.NewSpace(1)
	model := vision.NewZoo().ByName("resnet18")
	src := simrand.New(7)
	e, _ := newEngine(t, Config{Threshold: 3.0, MaxActive: 100})

	inst := sp.NewInstanceAppearance(0, src.Derive("obj"))
	var first *Cluster
	for i := 0; i < 30; i++ {
		s := src.DeriveN(int64(i), "sight")
		app := sp.SightingAppearance(inst, s)
		f := model.ExtractFeatures(app, s)
		c := e.Add(f, member(i), nil)
		if first == nil {
			first = c
		} else if c != first {
			t.Fatalf("sighting %d split into a new cluster", i)
		}
	}
}

func TestDifferentClassesSeparate(t *testing.T) {
	// Objects of well-separated classes must not share clusters at a sane
	// threshold.
	sp := vision.NewSpace(1)
	model := vision.NewZoo().ByName("resnet18")
	src := simrand.New(11)
	e, _ := newEngine(t, Config{Threshold: 2.0, MaxActive: 1000})

	classOf := map[*Cluster]vision.ClassID{}
	for c := 0; c < 10; c++ {
		for i := 0; i < 10; i++ {
			s := src.DeriveN(int64(c*100+i), "sep")
			inst := sp.NewInstanceAppearance(vision.ClassID(c), s)
			f := model.ExtractFeatures(sp.SightingAppearance(inst, s), s)
			cl := e.Add(f, Member{TrueClass: vision.ClassID(c)}, nil)
			if prev, ok := classOf[cl]; ok && prev != vision.ClassID(c) {
				t.Fatalf("cluster mixes classes %d and %d at T=2.0", prev, c)
			}
			classOf[cl] = vision.ClassID(c)
		}
	}
}

func TestComplexityLinearInActive(t *testing.T) {
	// The engine never holds more than MaxActive clusters.
	e, _ := newEngine(t, Config{Threshold: 0.01, MaxActive: 16})
	for i := 0; i < 500; i++ {
		e.Add(vec(float32(i)*10), member(i), nil)
		if e.ActiveClusters() > 16 {
			t.Fatalf("active clusters %d exceeds cap", e.ActiveClusters())
		}
	}
}

func TestQuickMembersConserved(t *testing.T) {
	// Property: every added member ends up in exactly one cluster
	// (active or spilled).
	err := quick.Check(func(seed uint16, nRaw uint8) bool {
		n := 10 + int(nRaw)
		var spilled []*Cluster
		e, err := NewEngine(Config{Threshold: 1.5, MaxActive: 8},
			func(c *Cluster) { spilled = append(spilled, c) })
		if err != nil {
			return false
		}
		src := simrand.New(uint64(seed))
		for i := 0; i < n; i++ {
			f := make(vision.FeatureVec, vision.FeatureDim)
			for d := range f {
				f[d] = float32(src.NormFloat64() * 3)
			}
			e.Add(f, member(i), nil)
		}
		e.Flush()
		total := 0
		seen := map[video.ObjectID]bool{}
		for _, c := range spilled {
			total += c.Size()
			for _, m := range c.Members {
				if seen[m.Object] {
					return false // member duplicated across clusters
				}
				seen[m.Object] = true
			}
		}
		return total == n && e.TotalMembers() == n
	}, &quick.Config{MaxCount: 50})
	if err != nil {
		t.Error(err)
	}
}

func BenchmarkAdd(b *testing.B) {
	e, err := NewEngine(Config{Threshold: 2.0, MaxActive: 256}, func(*Cluster) {})
	if err != nil {
		b.Fatal(err)
	}
	sp := vision.NewSpace(1)
	model := vision.NewZoo().ByName("resnet18")
	src := simrand.New(3)
	feats := make([]vision.FeatureVec, 256)
	for i := range feats {
		inst := sp.NewInstanceAppearance(vision.ClassID(i%40), src)
		feats[i] = model.ExtractFeatures(inst, src)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Add(feats[i%len(feats)], member(i), nil)
	}
}
