// Package cluster implements Focus's ingest-time incremental clustering of
// object feature vectors (§4.2).
//
// Requirements from the paper: the algorithm must be single-pass (video
// volume makes quadratic algorithms infeasible), must not assume a number
// of clusters up front, and must adapt to outliers on the fly. The
// implementation follows the paper's heuristic: a new object joins the
// closest existing cluster if its feature vector is within distance T of
// the cluster centroid, otherwise it starts a new cluster; the population
// of "active" clusters is capped at M by spilling the smallest cluster to
// the index, keeping complexity O(M·n).
package cluster

import (
	"fmt"
	"math"

	"focus/internal/video"
	"focus/internal/vision"
)

// Member is one object sighting assigned to a cluster. The ingest pipeline
// stores members (not feature vectors) in the index; feature vectors exist
// only transiently at ingest time (§4.2, "clustering at ingest time ...
// only stores the cluster centroids").
type Member struct {
	// Object and Frame identify the sighting.
	Object video.ObjectID
	Frame  video.FrameID
	// TimeSec is the sighting's timestamp, used for time-ranged queries.
	TimeSec float64
	// TrueClass is the sighting's synthetic ground-truth class, consumed
	// only by the simulated GT-CNN when the query engine classifies this
	// member and by evaluation — never by ingest decisions.
	TrueClass vision.ClassID
	// BBox is the sighting's bounding box in frame coordinates. The track
	// layer associates sightings across adjacent frames by bbox overlap
	// (the same adjacency test ingest uses for pixel-diff deduplication);
	// spatial leaf predicates (region, velocity) read it too. Old
	// checkpoints decode with a zero box, which simply never overlaps.
	BBox video.Rect
	// Seed is the sighting's deterministic CNN seed material.
	Seed int64
}

// Cluster is a group of visually similar sightings. Exported fields are
// safe to read after the cluster is spilled; the engine owns it before.
type Cluster struct {
	// ID is unique within one engine (one stream ingestion).
	ID int64
	// Centroid is the running mean of the feature vectors of scored
	// members.
	Centroid vision.FeatureVec
	// Members are all sightings assigned to the cluster, in arrival order.
	Members []Member
	// classConf accumulates per-class confidence mass from members' top-K
	// rankings; the cluster-level top-K is its highest-mass classes (§3,
	// IT3: "assign to each cluster the top K most likely classes these
	// objects belong to, based on classification confidence").
	classConf map[vision.ClassID]float64
	// nScored is how many members contributed features/rankings (pixel-diff
	// deduplicated members join without either).
	nScored int
	// repCandidates is a small reservoir of members with their features;
	// at spill time the representative ("centroid object", §4.2) is the
	// candidate closest to the final centroid.
	repCandidates []repCandidate
	// centroidNorm caches ‖Centroid‖ so the nearest-centroid scan can prune
	// candidates by the triangle inequality before touching coordinates.
	centroidNorm float64
	spilled      bool
	// lastTouch is the timestamp of the most recent member, for idle
	// retirement.
	lastTouch float64
	// cell is the IVF cell currently holding this cluster (-1 when the
	// index is off or the cluster is detached), and centerDist its exact
	// distance to that cell's center; owned by the engine.
	cell       int
	centerDist float64
}

type repCandidate struct {
	member  Member
	feature vision.FeatureVec
	addDist float64 // distance to the centroid at add time
}

// Size returns the number of member sightings.
func (c *Cluster) Size() int { return len(c.Members) }

// Spilled reports whether the cluster has been handed to the spill callback
// and is no longer active.
func (c *Cluster) Spilled() bool { return c.spilled }

// Representative returns the member whose feature vector is closest to the
// final centroid: the "centroid object" the GT-CNN classifies at query time.
func (c *Cluster) Representative() Member {
	best := 0
	bestD := math.Inf(1)
	for i := range c.repCandidates {
		d := vision.SquaredL2Distance(c.repCandidates[i].feature, c.Centroid)
		if d < bestD {
			bestD = d
			best = i
		}
	}
	return c.repCandidates[best].member
}

// TopK returns the cluster's k highest-confidence classes, descending by
// aggregated confidence mass (ties broken by class ID for determinism).
func (c *Cluster) TopK(k int) []vision.Prediction {
	type entry struct {
		class vision.ClassID
		conf  float64
	}
	entries := make([]entry, 0, len(c.classConf))
	for cl, conf := range c.classConf {
		entries = append(entries, entry{cl, conf})
	}
	// Insertion sort: class-confidence maps are small relative to k.
	for i := 1; i < len(entries); i++ {
		for j := i; j > 0; j-- {
			if entries[j].conf > entries[j-1].conf ||
				(entries[j].conf == entries[j-1].conf && entries[j].class < entries[j-1].class) {
				entries[j], entries[j-1] = entries[j-1], entries[j]
			} else {
				break
			}
		}
	}
	if k > len(entries) {
		k = len(entries)
	}
	out := make([]vision.Prediction, k)
	norm := 0.0
	if c.nScored > 0 {
		norm = 1 / float64(c.nScored)
	}
	for i := 0; i < k; i++ {
		out[i] = vision.Prediction{
			Class:      entries[i].class,
			Confidence: float32(entries[i].conf * norm),
		}
	}
	return out
}

// TimeRange returns the [min, max] member timestamps.
func (c *Cluster) TimeRange() (min, max float64) {
	if len(c.Members) == 0 {
		return 0, 0
	}
	min, max = c.Members[0].TimeSec, c.Members[0].TimeSec
	for _, m := range c.Members[1:] {
		if m.TimeSec < min {
			min = m.TimeSec
		}
		if m.TimeSec > max {
			max = m.TimeSec
		}
	}
	return min, max
}

// Config tunes the clustering engine.
type Config struct {
	// Threshold is T: the maximum centroid distance for joining a cluster.
	Threshold float64
	// MaxActive is M: the cap on concurrently active clusters; exceeding it
	// spills the smallest cluster (other than the one just created, which
	// deserves a chance to grow).
	MaxActive int
	// RepCandidates bounds the representative reservoir per cluster.
	RepCandidates int
	// IdleTimeoutSec, when positive, spills clusters that have not
	// received a member for this many stream seconds: once an object has
	// left the scene (or drifted to a new pose), its cluster can never
	// grow again and only wastes comparisons. Member timestamps must be
	// non-decreasing for this to be meaningful.
	IdleTimeoutSec float64
	// MaxMembers, when positive, spills a cluster once it reaches this
	// many members. Unbounded clusters accrete across visually adjacent
	// classes over long windows (their centroid keeps drifting toward new
	// arrivals), which silently degrades recall when the representative's
	// class stops matching part of the membership.
	MaxMembers int
	// LinearScan forces the reference linear nearest-centroid scan and
	// keeps the IVF index off. The IVF path is bit-identical to the linear
	// scan by construction; this knob exists so benchmarks and property
	// tests can diff the two implementations forever.
	LinearScan bool
}

// DefaultRepCandidates is the default representative-reservoir size.
const DefaultRepCandidates = 8

func (c Config) validate() error {
	if c.Threshold <= 0 {
		return fmt.Errorf("cluster: non-positive threshold %v", c.Threshold)
	}
	if c.MaxActive < 1 {
		return fmt.Errorf("cluster: MaxActive must be >= 1")
	}
	return nil
}

// Engine performs single-pass incremental clustering for one stream's
// ingestion. Not safe for concurrent use: each ingest worker owns one.
type Engine struct {
	cfg     Config
	active  []*Cluster
	nextID  int64
	onSpill func(*Cluster)
	// ivf is the coarse quantizer accelerating nearest(); off until the
	// active population is large enough to pay for it.
	ivf ivfIndex
	// idleScratch is reused by retireIdle so steady-state Adds allocate
	// nothing.
	idleScratch []*Cluster
	// stats
	totalMembers int
	totalSpilled int
}

// NewEngine creates a clustering engine. onSpill receives every finalized
// cluster exactly once (including at Flush); it must not retain the
// engine's locks and may write to the index.
func NewEngine(cfg Config, onSpill func(*Cluster)) (*Engine, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.RepCandidates <= 0 {
		cfg.RepCandidates = DefaultRepCandidates
	}
	if onSpill == nil {
		return nil, fmt.Errorf("cluster: nil spill callback")
	}
	return &Engine{cfg: cfg, onSpill: onSpill}, nil
}

// ActiveClusters returns the number of currently active clusters.
func (e *Engine) ActiveClusters() int { return len(e.active) }

// TotalMembers returns how many members were added across all clusters.
func (e *Engine) TotalMembers() int { return e.totalMembers }

// TotalSpilled returns how many clusters have been spilled so far.
func (e *Engine) TotalSpilled() int { return e.totalSpilled }

// Add assigns a scored sighting (feature vector + ranked classes) to a
// cluster, creating one if no active centroid is within the threshold, and
// returns that cluster. The ranking's confidence mass accumulates into the
// cluster's class profile.
func (e *Engine) Add(feature vision.FeatureVec, m Member, ranked []vision.Prediction) *Cluster {
	best, bestD := e.nearest(feature)
	var c *Cluster
	if best != nil && bestD <= e.cfg.Threshold {
		c = best
		c.updateCentroid(feature)
		e.ivfDrift(c)
	} else {
		c = &Cluster{
			ID:           e.nextID,
			Centroid:     feature.Clone(),
			centroidNorm: vision.Norm(feature),
			classConf:    make(map[vision.ClassID]float64),
			cell:         -1,
		}
		e.nextID++
		e.active = append(e.active, c)
		e.ivfInsert(c)
	}
	c.Members = append(c.Members, m)
	c.nScored++
	c.lastTouch = m.TimeSec
	for _, p := range ranked {
		c.classConf[p.Class] += float64(p.Confidence)
	}
	c.addRepCandidate(m, feature, e.cfg.RepCandidates)
	e.totalMembers++

	e.retireIdle(m.TimeSec)
	if e.cfg.MaxMembers > 0 && c.Size() >= e.cfg.MaxMembers {
		e.remove(c)
		e.spill(c)
	}
	if len(e.active) > e.cfg.MaxActive {
		e.spillSmallestExcept(c)
	}
	if !e.cfg.LinearScan {
		e.ivfMaybeRebuild()
	}
	return c
}

// remove detaches a cluster from the active set without spilling it.
func (e *Engine) remove(c *Cluster) {
	for i, x := range e.active {
		if x == c {
			e.active = append(e.active[:i], e.active[i+1:]...)
			return
		}
	}
}

// retireIdle spills clusters that have been inactive longer than the idle
// timeout: an object that left the scene (or drifted to a new pose) will
// never extend its old cluster again.
func (e *Engine) retireIdle(now float64) {
	if e.cfg.IdleTimeoutSec <= 0 {
		return
	}
	cutoff := now - e.cfg.IdleTimeoutSec
	kept := e.active[:0]
	idle := e.idleScratch[:0]
	for _, c := range e.active {
		if c.lastTouch < cutoff {
			idle = append(idle, c)
		} else {
			kept = append(kept, c)
		}
	}
	e.active = kept
	for _, c := range idle {
		e.spill(c)
	}
	e.idleScratch = idle[:0]
}

// AddDeduplicated assigns a pixel-diff-deduplicated sighting directly to
// the cluster its visually identical predecessor joined, without a feature
// vector or ranking (§4.2 "Pixel Differencing of Objects"). It returns
// false if the cluster has already been spilled, in which case the caller
// must fall back to the scored path.
func (e *Engine) AddDeduplicated(c *Cluster, m Member) bool {
	if c == nil || c.spilled {
		return false
	}
	c.Members = append(c.Members, m)
	c.lastTouch = m.TimeSec
	e.totalMembers++
	if e.cfg.MaxMembers > 0 && c.Size() >= e.cfg.MaxMembers {
		e.remove(c)
		e.spill(c)
	}
	return true
}

// nearest returns the active cluster with the closest centroid, routing to
// the IVF index when it is built and to the reference linear scan
// otherwise. Both paths return bit-identical results; ivf.go states the
// exactness argument.
func (e *Engine) nearest(f vision.FeatureVec) (*Cluster, float64) {
	if e.ivf.enabled && !e.cfg.LinearScan {
		return e.nearestIVF(f)
	}
	return e.nearestLinear(f)
}

// nearestLinear is the reference nearest-centroid implementation: a linear
// scan over active clusters — O(M·d) per scored sighting — pruned with two
// exact shortcuts that leave the selected cluster and its distance
// bit-identical to a full scan:
//
//   - triangle inequality on cached norms: ‖c−f‖² ≥ (‖c‖−‖f‖)², so a
//     centroid whose norm gap already exceeds the best distance is skipped
//     without touching its coordinates;
//   - early-exit accumulation: the squared distance is abandoned mid-sum
//     once it provably cannot beat the current best.
//
// This function is the permanent oracle the IVF property test diffs
// against; do not fold it into the IVF path.
func (e *Engine) nearestLinear(f vision.FeatureVec) (*Cluster, float64) {
	fNorm := vision.Norm(f)
	var best *Cluster
	bestD := math.Inf(1)
	for _, c := range e.active {
		if lb := c.centroidNorm - fNorm; lb*lb > bestD {
			continue
		}
		d := vision.SquaredL2DistanceBounded(c.Centroid, f, bestD)
		if d < bestD {
			bestD = d
			best = c
		}
	}
	return best, math.Sqrt(bestD)
}

// updateCentroid folds a new feature into the running mean.
func (c *Cluster) updateCentroid(f vision.FeatureVec) {
	n := float32(c.nScored)
	for i := range c.Centroid {
		c.Centroid[i] = (c.Centroid[i]*n + f[i]) / (n + 1)
	}
	c.centroidNorm = vision.Norm(c.Centroid)
}

// addRepCandidate maintains the bounded reservoir of representative
// candidates, keeping the members with the smallest add-time centroid
// distance.
func (c *Cluster) addRepCandidate(m Member, f vision.FeatureVec, cap int) {
	d := vision.SquaredL2Distance(f, c.Centroid)
	if len(c.repCandidates) < cap {
		c.repCandidates = append(c.repCandidates, repCandidate{m, f.Clone(), d})
		return
	}
	worst, worstD := -1, d
	for i := range c.repCandidates {
		if c.repCandidates[i].addDist > worstD {
			worstD = c.repCandidates[i].addDist
			worst = i
		}
	}
	if worst >= 0 {
		// Reuse the evicted candidate's feature buffer: once the reservoir
		// is full, steady-state Adds stay allocation-free.
		rc := &c.repCandidates[worst]
		copy(rc.feature, f)
		rc.member = m
		rc.addDist = d
	}
}

// spillSmallestExcept finalizes the active cluster with the fewest members,
// matching the paper's "keep the number of clusters at a constant M by
// removing the smallest ones and storing their data in the top-K index".
// The just-created cluster is exempt — otherwise a full engine would spill
// every new cluster immediately and degenerate into singletons.
func (e *Engine) spillSmallestExcept(except *Cluster) {
	smallest := -1
	for i, c := range e.active {
		if c == except {
			continue
		}
		if smallest < 0 || c.Size() < e.active[smallest].Size() {
			smallest = i
		}
	}
	if smallest < 0 {
		return
	}
	c := e.active[smallest]
	e.active = append(e.active[:smallest], e.active[smallest+1:]...)
	e.spill(c)
}

func (e *Engine) spill(c *Cluster) {
	e.ivfRemove(c)
	c.spilled = true
	e.totalSpilled++
	e.onSpill(c)
}

// Flush spills every remaining active cluster, in descending size order so
// downstream consumers see the most significant clusters first. Call once
// at end of stream.
func (e *Engine) Flush() {
	for len(e.active) > 0 {
		largest := 0
		for i, c := range e.active {
			if c.Size() > e.active[largest].Size() {
				largest = i
			}
		}
		c := e.active[largest]
		e.active = append(e.active[:largest], e.active[largest+1:]...)
		e.spill(c)
	}
}
