// Package baseline implements the paper's two comparison systems (§6.1):
//
//   - Ingest-all: run the GT-CNN on every moving-object sighting at ingest
//     time and store an exact inverted index; queries are free lookups.
//   - Query-all: store nothing at ingest; run the GT-CNN on every sighting
//     in the queried interval at query time.
//
// Both baselines are strengthened with motion detection exactly as in the
// paper (one of NoScope's core filters): frames with no moving objects
// never reach a GPU, for baselines and Focus alike. The sighting counts
// passed to this package must therefore already exclude empty frames, which
// is what the video generator's Sightings and the index's TotalSightings
// provide.
package baseline

import (
	"fmt"
	"sort"

	"focus/internal/gpu"
	"focus/internal/video"
	"focus/internal/vision"
)

// IngestAllGPUMS returns the ingest-time GPU cost of the Ingest-all
// baseline for the given number of sightings: one GT-CNN inference each.
func IngestAllGPUMS(gt *vision.Model, sightings int) float64 {
	return gt.CostMS() * float64(sightings)
}

// QueryAllGPUMS returns the query-time GPU cost of the Query-all baseline
// over an interval containing the given number of sightings.
func QueryAllGPUMS(gt *vision.Model, sightings int) float64 {
	return gt.CostMS() * float64(sightings)
}

// QueryAllLatencyMS returns the Query-all baseline's simulated latency:
// its GPU work spread across numGPUs.
func QueryAllLatencyMS(gt *vision.Model, sightings, numGPUs int) float64 {
	if numGPUs < 1 {
		numGPUs = 1
	}
	return QueryAllGPUMS(gt, sightings) / float64(numGPUs)
}

// InvertedIndex is the Ingest-all baseline's output: an exact mapping from
// GT-CNN class to the frames and segments containing it. Queries against it
// are pure lookups with zero GPU cost (§6.1: "the query latency of
// Ingest-all is 0").
type InvertedIndex struct {
	frames   map[vision.ClassID][]video.FrameID
	segments map[vision.ClassID][]video.SegmentID
	// GPUMS is the ingest GPU time spent building the index.
	GPUMS     float64
	Sightings int
}

// BuildIngestAll runs the Ingest-all baseline over a stream window:
// GT-CNN on every sighting, results into an exact inverted index.
func BuildIngestAll(st *video.Stream, space *vision.Space, gt *vision.Model, opts video.GenOptions, meter *gpu.Meter) (*InvertedIndex, error) {
	frameSets := make(map[vision.ClassID]map[video.FrameID]struct{})
	sightings := 0
	gpuMS := 0.0
	err := st.Generate(opts, func(f *video.Frame) error {
		for i := range f.Sightings {
			s := &f.Sightings[i]
			label := gt.Top1Class(space, s.TrueClass, st.CNNSource(s.Seed, "gt"))
			sightings++
			gpuMS += gt.CostMS()
			if meter != nil {
				meter.AddIngest(gt.CostMS())
			}
			set := frameSets[label]
			if set == nil {
				set = make(map[video.FrameID]struct{})
				frameSets[label] = set
			}
			set[f.ID] = struct{}{}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	ix := &InvertedIndex{
		frames:    make(map[vision.ClassID][]video.FrameID, len(frameSets)),
		segments:  make(map[vision.ClassID][]video.SegmentID, len(frameSets)),
		GPUMS:     gpuMS,
		Sightings: sightings,
	}
	for c, set := range frameSets {
		fs := make([]video.FrameID, 0, len(set))
		for f := range set {
			fs = append(fs, f)
		}
		sort.Slice(fs, func(i, j int) bool { return fs[i] < fs[j] })
		ix.frames[c] = fs
		segSet := make(map[video.SegmentID]struct{})
		for _, f := range fs {
			segSet[video.SegmentOf(float64(f)/video.NativeFPS)] = struct{}{}
		}
		segs := make([]video.SegmentID, 0, len(segSet))
		for s := range segSet {
			segs = append(segs, s)
		}
		sort.Slice(segs, func(i, j int) bool { return segs[i] < segs[j] })
		ix.segments[c] = segs
	}
	return ix, nil
}

// Frames returns the frames containing class c, ascending.
func (ix *InvertedIndex) Frames(c vision.ClassID) []video.FrameID { return ix.frames[c] }

// Segments returns the 1-second segments containing class c, ascending.
func (ix *InvertedIndex) Segments(c vision.ClassID) []video.SegmentID { return ix.segments[c] }

// QueryAll runs the Query-all baseline for one class over a window: GT-CNN
// on every sighting in the window, returning matching frames and the GPU
// cost incurred.
type QueryAllResult struct {
	Frames    []video.FrameID
	Segments  []video.SegmentID
	GPUMS     float64
	LatencyMS float64
	Sightings int
}

// RunQueryAll executes the Query-all baseline for class c.
func RunQueryAll(st *video.Stream, space *vision.Space, gt *vision.Model, opts video.GenOptions, c vision.ClassID, numGPUs int, meter *gpu.Meter) (*QueryAllResult, error) {
	if numGPUs < 1 {
		numGPUs = 1
	}
	res := &QueryAllResult{}
	frameSet := make(map[video.FrameID]struct{})
	segSet := make(map[video.SegmentID]struct{})
	err := st.Generate(opts, func(f *video.Frame) error {
		for i := range f.Sightings {
			s := &f.Sightings[i]
			res.Sightings++
			res.GPUMS += gt.CostMS()
			if meter != nil {
				meter.AddQuery(gt.CostMS())
			}
			label := gt.Top1Class(space, s.TrueClass, st.CNNSource(s.Seed, "gt"))
			if label == c {
				frameSet[f.ID] = struct{}{}
				segSet[video.SegmentOf(f.TimeSec)] = struct{}{}
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	res.LatencyMS = res.GPUMS / float64(numGPUs)
	res.Frames = make([]video.FrameID, 0, len(frameSet))
	for f := range frameSet {
		res.Frames = append(res.Frames, f)
	}
	sort.Slice(res.Frames, func(i, j int) bool { return res.Frames[i] < res.Frames[j] })
	res.Segments = make([]video.SegmentID, 0, len(segSet))
	for s := range segSet {
		res.Segments = append(res.Segments, s)
	}
	sort.Slice(res.Segments, func(i, j int) bool { return res.Segments[i] < res.Segments[j] })
	return res, nil
}

// String renders a short human-readable summary.
func (ix *InvertedIndex) String() string {
	return fmt.Sprintf("ingest-all index: %d classes, %d sightings", len(ix.frames), ix.Sightings)
}
