package baseline

import (
	"testing"

	"focus/internal/gpu"
	"focus/internal/stats"
	"focus/internal/video"
	"focus/internal/vision"
)

func testStream(t testing.TB) (*video.Stream, *vision.Space) {
	t.Helper()
	space := vision.NewSpace(1)
	spec, _ := video.SpecByName("auburn_c")
	st, err := video.NewStream(spec, space, 5)
	if err != nil {
		t.Fatal(err)
	}
	return st, space
}

func TestCostFunctions(t *testing.T) {
	gt := vision.NewZoo().GT
	if c := IngestAllGPUMS(gt, 100); c != 1300 {
		t.Errorf("IngestAll cost = %v", c)
	}
	if c := QueryAllGPUMS(gt, 100); c != 1300 {
		t.Errorf("QueryAll cost = %v", c)
	}
	if l := QueryAllLatencyMS(gt, 100, 10); l != 130 {
		t.Errorf("QueryAll latency = %v", l)
	}
	if l := QueryAllLatencyMS(gt, 100, 0); l != 1300 {
		t.Errorf("QueryAll latency with 0 GPUs = %v", l)
	}
}

func TestIngestAllIndex(t *testing.T) {
	st, space := testStream(t)
	gt := vision.NewZoo().GT
	opts := video.GenOptions{DurationSec: 60, SampleEvery: 1}
	var meter gpu.Meter
	ix, err := BuildIngestAll(st, space, gt, opts, &meter)
	if err != nil {
		t.Fatal(err)
	}
	if ix.Sightings == 0 {
		t.Fatal("no sightings")
	}
	if ix.GPUMS != float64(ix.Sightings)*gt.CostMS() {
		t.Error("GPU cost mismatch")
	}
	if meter.Snapshot().IngestMS != ix.GPUMS {
		t.Error("meter mismatch")
	}
	// The index must be exact: scoring it against ground truth computed
	// with the same GT-CNN gives perfect precision and recall.
	st2, _ := testStream(t)
	truth, err := stats.ComputeGroundTruth(st2, space, gt, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range truth.DominantClasses(3) {
		pr := truth.EvaluateFrames(c, ix.Frames(c))
		if pr.Precision() != 1 || pr.Recall() != 1 {
			t.Errorf("class %d: Ingest-all P=%.3f R=%.3f", c, pr.Precision(), pr.Recall())
		}
		if len(ix.Segments(c)) == 0 {
			t.Errorf("class %d: no segments", c)
		}
	}
	if ix.String() == "" {
		t.Error("empty String()")
	}
}

func TestRunQueryAll(t *testing.T) {
	st, space := testStream(t)
	gt := vision.NewZoo().GT
	opts := video.GenOptions{DurationSec: 60, SampleEvery: 1}

	st2, _ := testStream(t)
	truth, err := stats.ComputeGroundTruth(st2, space, gt, opts)
	if err != nil {
		t.Fatal(err)
	}
	dom := truth.DominantClasses(1)[0]

	var meter gpu.Meter
	res, err := RunQueryAll(st, space, gt, opts, dom, 10, &meter)
	if err != nil {
		t.Fatal(err)
	}
	if res.Sightings != truth.TotalSightings {
		t.Errorf("sightings = %d, want %d", res.Sightings, truth.TotalSightings)
	}
	if res.GPUMS != float64(res.Sightings)*gt.CostMS() {
		t.Error("GPU cost mismatch")
	}
	if res.LatencyMS != res.GPUMS/10 {
		t.Error("latency mismatch")
	}
	pr := truth.EvaluateFrames(dom, res.Frames)
	if pr.Precision() != 1 || pr.Recall() != 1 {
		t.Errorf("Query-all P=%.3f R=%.3f, want perfect", pr.Precision(), pr.Recall())
	}
	if meter.Snapshot().QueryMS != res.GPUMS {
		t.Error("meter mismatch")
	}
}

func TestBaselinesConsistent(t *testing.T) {
	// Ingest-all and Query-all must process the same number of sightings
	// for the same window (both are motion-filtered identically).
	st, space := testStream(t)
	gt := vision.NewZoo().GT
	opts := video.GenOptions{DurationSec: 30, SampleEvery: 1}
	ia, err := BuildIngestAll(st, space, gt, opts, nil)
	if err != nil {
		t.Fatal(err)
	}
	st2, _ := testStream(t)
	qa, err := RunQueryAll(st2, space, gt, opts, 0, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ia.Sightings != qa.Sightings {
		t.Errorf("Ingest-all %d vs Query-all %d sightings", ia.Sightings, qa.Sightings)
	}
}
