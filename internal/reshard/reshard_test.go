package reshard

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"focus/api"
)

// fakeShard is a scriptable admin surface: it records every admin call in
// order and can be told to fail specific paths with a typed error.
type fakeShard struct {
	t    *testing.T
	name string

	mu     sync.Mutex
	calls  []string
	failOn map[string]*api.Error

	sealWM    float64
	sealEpoch uint64
	// gotImport captures the import payload the coordinator shipped.
	gotImport *api.StreamExport

	ts *httptest.Server
}

func newFakeShard(t *testing.T, name string) *fakeShard {
	f := &fakeShard{t: t, name: name, failOn: map[string]*api.Error{}, sealWM: 42.5, sealEpoch: 3}
	f.ts = httptest.NewServer(http.HandlerFunc(f.serve))
	t.Cleanup(f.ts.Close)
	return f
}

func (f *fakeShard) fail(path string, e *api.Error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.failOn[path] = e
}

func (f *fakeShard) serve(w http.ResponseWriter, r *http.Request) {
	op := strings.TrimPrefix(r.URL.Path, "/v1/admin/")
	f.mu.Lock()
	f.calls = append(f.calls, op)
	fail := f.failOn[r.URL.Path]
	f.mu.Unlock()
	if fail != nil {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(fail.HTTPStatus())
		_ = json.NewEncoder(w).Encode(api.Envelope{Err: fail})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	switch r.URL.Path {
	case api.PathAdminSeal:
		_ = json.NewEncoder(w).Encode(api.SealResponse{Stream: "s", Watermark: f.sealWM, Epoch: f.sealEpoch})
	case api.PathAdminExport:
		_ = json.NewEncoder(w).Encode(api.StreamExport{
			Stream: "s", Spec: json.RawMessage(`{"name":"s"}`), Watermark: f.sealWM, Epoch: f.sealEpoch,
			Records: []api.HandoffRecord{{Key: "k", Value: []byte("v")}},
		})
	case api.PathAdminImport:
		var exp api.StreamExport
		_ = json.NewDecoder(r.Body).Decode(&exp)
		f.mu.Lock()
		f.gotImport = &exp
		f.mu.Unlock()
		_ = json.NewEncoder(w).Encode(map[string]string{"status": "imported"})
	default:
		_ = json.NewEncoder(w).Encode(map[string]string{"status": "ok"})
	}
}

func (f *fakeShard) callLog() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]string(nil), f.calls...)
}

// flipRecorder captures the Flip hook's arguments.
type flipRecorder struct {
	mu     sync.Mutex
	stream string
	shard  string
	epoch  uint64
	wm     float64
	calls  int
}

func (fr *flipRecorder) flip(stream, shard string, epoch uint64, wm float64) {
	fr.mu.Lock()
	defer fr.mu.Unlock()
	fr.stream, fr.shard, fr.epoch, fr.wm = stream, shard, epoch, wm
	fr.calls++
}

func testMove(src, dst *fakeShard) Move {
	return Move{Stream: "s", From: "src", To: "dst", FromURL: src.ts.URL, ToURL: dst.ts.URL}
}

func newTestCoordinator(t *testing.T, hooks Hooks) *Coordinator {
	t.Helper()
	c, err := New(Config{Hooks: hooks})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewRequiresFlip(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("New accepted a config without the Flip hook")
	}
}

// TestExecuteMoveHappyPath pins the protocol order, the epoch bump, and
// the flip arguments of a clean move.
func TestExecuteMoveHappyPath(t *testing.T) {
	src, dst := newFakeShard(t, "src"), newFakeShard(t, "dst")
	fr := &flipRecorder{}
	var steps []Step
	c := newTestCoordinator(t, Hooks{
		Flip:   fr.flip,
		OnStep: func(m Move, st Step) error { steps = append(steps, st); return nil },
	})

	res := c.ExecuteMove(testMove(src, dst))
	if res.Failed() || res.Step != StepDone {
		t.Fatalf("clean move ended %+v", res)
	}
	if res.Watermark != 42.5 || res.Epoch != 4 {
		t.Fatalf("result wm/epoch %v/%d, want the sealed watermark and source epoch + 1", res.Watermark, res.Epoch)
	}
	wantSteps := []Step{StepSeal, StepExport, StepImport, StepActivate, StepFlip, StepRelease}
	if fmt.Sprint(steps) != fmt.Sprint(wantSteps) {
		t.Errorf("protocol order %v, want %v", steps, wantSteps)
	}
	if got, want := fmt.Sprint(src.callLog()), "[seal export release]"; got != want {
		t.Errorf("source saw %s, want %s", got, want)
	}
	if got, want := fmt.Sprint(dst.callLog()), "[import activate]"; got != want {
		t.Errorf("destination saw %s, want %s", got, want)
	}
	if fr.calls != 1 || fr.stream != "s" || fr.shard != "dst" || fr.epoch != 4 || fr.wm != 42.5 {
		t.Errorf("flip recorded %+v, want stream s -> dst at epoch 4, wm 42.5", fr)
	}
	if dst.gotImport == nil || dst.gotImport.Epoch != 4 {
		t.Errorf("import shipped epoch %+v, want the bumped epoch 4", dst.gotImport)
	}
}

// TestExecuteMoveAbortsBeforeFlip walks a typed failure through each
// pre-flip step and asserts the abort shape: the source is resumed, the
// destination released only once it holds state, and the flip never runs.
func TestExecuteMoveAbortsBeforeFlip(t *testing.T) {
	cases := []struct {
		failPath  string
		onDest    bool
		step      Step
		wantSrc   string
		wantDst   string
		wantTyped api.Code
	}{
		{api.PathAdminSeal, false, StepSeal, "[seal resume]", "[]", api.CodeUnavailable},
		{api.PathAdminExport, false, StepExport, "[seal export resume]", "[]", api.CodeBadRequest},
		{api.PathAdminImport, true, StepImport, "[seal export resume]", "[import release]", api.CodeDraining},
		{api.PathAdminActivate, true, StepActivate, "[seal export resume]", "[import activate release]", api.CodeNotReady},
	}
	for _, tc := range cases {
		t.Run(string(tc.step), func(t *testing.T) {
			src, dst := newFakeShard(t, "src"), newFakeShard(t, "dst")
			target := src
			if tc.onDest {
				target = dst
			}
			target.fail(tc.failPath, api.Errorf(tc.wantTyped, "scripted failure"))
			fr := &flipRecorder{}
			c := newTestCoordinator(t, Hooks{Flip: fr.flip})

			res := c.ExecuteMove(testMove(src, dst))
			if !res.Failed() || res.Step != tc.step {
				t.Fatalf("move ended %+v, want failure at %s", res, tc.step)
			}
			var typed *api.Error
			if !errors.As(res.Err, &typed) || typed.Code != tc.wantTyped {
				t.Fatalf("failure %v, want typed %s", res.Err, tc.wantTyped)
			}
			if got := fmt.Sprint(src.callLog()); got != tc.wantSrc {
				t.Errorf("source saw %s, want %s", got, tc.wantSrc)
			}
			if got := fmt.Sprint(dst.callLog()); got != tc.wantDst {
				t.Errorf("destination saw %s, want %s", got, tc.wantDst)
			}
			if fr.calls != 0 {
				t.Errorf("flip ran %d times on an aborted move", fr.calls)
			}
		})
	}
}

// TestExecuteMoveRollsForwardAfterFlip: once the flip committed, a failed
// release does not fail the move — the destination owns the stream and the
// unreleased source is the TTL's problem.
func TestExecuteMoveRollsForwardAfterFlip(t *testing.T) {
	src, dst := newFakeShard(t, "src"), newFakeShard(t, "dst")
	src.fail(api.PathAdminRelease, api.Errorf(api.CodeUnavailable, "scripted crash"))
	fr := &flipRecorder{}
	c := newTestCoordinator(t, Hooks{Flip: fr.flip})

	res := c.ExecuteMove(testMove(src, dst))
	if res.Failed() || res.Step != StepDone {
		t.Fatalf("move with a failed release ended %+v, want roll-forward to done", res)
	}
	if fr.calls != 1 {
		t.Fatalf("flip ran %d times", fr.calls)
	}
}

// TestOnStepAbortsAndRollsForward: the crash seam aborts pre-flip steps
// and rolls forward at release.
func TestOnStepAbortsAndRollsForward(t *testing.T) {
	boom := errors.New("boom")
	for _, failAt := range []Step{StepSeal, StepFlip} {
		src, dst := newFakeShard(t, "src"), newFakeShard(t, "dst")
		fr := &flipRecorder{}
		c := newTestCoordinator(t, Hooks{
			Flip: fr.flip,
			OnStep: func(m Move, st Step) error {
				if st == failAt {
					return boom
				}
				return nil
			},
		})
		res := c.ExecuteMove(testMove(src, dst))
		if !res.Failed() || res.Step != failAt || !errors.Is(res.Err, boom) {
			t.Fatalf("OnStep failure at %s ended %+v", failAt, res)
		}
		if fr.calls != 0 {
			t.Fatalf("flip ran despite the %s abort", failAt)
		}
	}

	// At release the flip has committed: the move reports done.
	src, dst := newFakeShard(t, "src"), newFakeShard(t, "dst")
	fr := &flipRecorder{}
	c := newTestCoordinator(t, Hooks{
		Flip: fr.flip,
		OnStep: func(m Move, st Step) error {
			if st == StepRelease {
				return boom
			}
			return nil
		},
	})
	res := c.ExecuteMove(testMove(src, dst))
	if res.Failed() || res.Step != StepDone || fr.calls != 1 {
		t.Fatalf("OnStep failure at release ended %+v (flips %d), want roll-forward", res, fr.calls)
	}
}

// TestExecuteRunsMovesSequentially covers the batch surface: one result
// per move, failures isolated to their own move.
func TestExecuteRunsMovesSequentially(t *testing.T) {
	srcA, dstA := newFakeShard(t, "srcA"), newFakeShard(t, "dstA")
	srcB, dstB := newFakeShard(t, "srcB"), newFakeShard(t, "dstB")
	srcB.fail(api.PathAdminSeal, api.Errorf(api.CodeUnavailable, "scripted failure"))
	fr := &flipRecorder{}
	c := newTestCoordinator(t, Hooks{Flip: fr.flip})

	mA, mB := testMove(srcA, dstA), testMove(srcB, dstB)
	mB.Stream = "other"
	results := c.Execute([]Move{mA, mB})
	if len(results) != 2 {
		t.Fatalf("%d results for 2 moves", len(results))
	}
	if results[0].Failed() || results[1].Step != StepSeal || !results[1].Failed() {
		t.Fatalf("results %+v, want first done and second failed at seal", results)
	}
	if fr.calls != 1 {
		t.Fatalf("flip ran %d times, want once (the clean move)", fr.calls)
	}
}

// TestPostDecodesTransportAndTypedErrors pins the two failure shapes of
// the admin POST helper: transport errors stay untyped, non-2xx bodies
// decode to *api.Error even when they are not a v1 envelope.
func TestPostDecodesTransportAndTypedErrors(t *testing.T) {
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	dead.Close()
	src := newFakeShard(t, "src")
	fr := &flipRecorder{}
	c := newTestCoordinator(t, Hooks{Flip: fr.flip})

	m := Move{Stream: "s", From: "src", To: "dst", FromURL: dead.URL, ToURL: src.ts.URL}
	res := c.ExecuteMove(m)
	if !res.Failed() || res.Step != StepSeal {
		t.Fatalf("move against a dead source ended %+v", res)
	}
	var typed *api.Error
	if errors.As(res.Err, &typed) {
		t.Fatalf("transport failure decoded as typed %v", typed)
	}

	raw := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "nginx says no", http.StatusBadGateway)
	}))
	t.Cleanup(raw.Close)
	m.FromURL = raw.URL
	res = c.ExecuteMove(m)
	if !errors.As(res.Err, &typed) {
		t.Fatalf("non-envelope 502 did not degrade to a typed error: %v", res.Err)
	}
}
