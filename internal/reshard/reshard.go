// Package reshard is the control plane of live shard-map transitions: it
// moves streams between shards with bit-identical answers throughout.
//
// One stream's move is a six-step protocol against the two shards' admin
// surfaces (internal/serve) plus an ownership flip at the router:
//
//	seal     source parks the stream's ingestion at a watermark boundary
//	         behind a durable checkpoint; answers freeze there
//	export   source returns the checkpoint's store records
//	import   destination restores the stream from them — hidden from
//	         queries and ownership reports, epoch bumped by one
//	activate destination commits the import, unhides the stream, and
//	         resumes its live ingestion tail from the sealed watermark
//	flip     the router atomically reroutes the stream to the destination
//	         (the Hooks.Flip callback)
//	release  source drops the stream: standing queries end with a typed
//	         "moved" bye, late queries get a typed unavailable
//
// Both shards replay the same deterministic stream, so the destination's
// tail ingestion is byte-for-byte the computation the source would have
// performed: answers at any watermark vector are bit-identical before,
// during, and after the move. Until the flip, the source keeps serving
// the sealed watermark; after it, the destination serves and advances.
// No step leaves the stream unowned, and every client-visible hiccup in
// the window is a typed not_ready/unavailable.
//
// Crash safety: any failure before the flip aborts the move — the source
// resumes ingestion (or its seal TTL resumes it if the coordinator died
// too), and the destination discards its import (or its import TTL
// does). A failure after the flip rolls forward: the destination owns
// the stream (its higher epoch wins any duplicate report), and a source
// that could not be released auto-resumes into a harmless shadow whose
// answers are identical anyway — the router routes to exactly one owner.
package reshard

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"focus/api"
)

// Step names one stage of a stream move, in protocol order.
type Step string

// The protocol's steps, in execution order; StepDone marks a completed
// move.
const (
	StepSeal     Step = "seal"
	StepExport   Step = "export"
	StepImport   Step = "import"
	StepActivate Step = "activate"
	StepFlip     Step = "flip"
	StepRelease  Step = "release"
	StepDone     Step = "done"
)

// Move is one stream's planned migration between shards.
type Move struct {
	// Stream is the stream to move.
	Stream string
	// From and To name the source and destination shards; FromURL and
	// ToURL are their base URLs.
	From    string
	To      string
	FromURL string
	ToURL   string
}

// Hooks are the coordinator's seams into its host (the router) and into
// tests.
type Hooks struct {
	// Flip atomically reroutes the stream to the destination shard at the
	// given ownership epoch; wm is the sealed watermark the destination
	// resumed from. Called exactly once per successful move, after the
	// destination activated. Required.
	Flip func(stream, shard string, epoch uint64, wm float64)
	// OnStep, when set, is called before each protocol step; returning an
	// error aborts the move there (the crash-matrix tests use it to kill
	// participants at exact protocol points).
	OnStep func(m Move, step Step) error
}

// Config tunes a Coordinator.
type Config struct {
	// Client is the HTTP client used against shard admin endpoints; nil
	// uses a default with a 30s timeout.
	Client *http.Client
	// Hooks wire the coordinator to the router's ownership table (Flip)
	// and to tests (OnStep).
	Hooks Hooks
}

// Coordinator executes planned stream moves, one protocol at a time.
type Coordinator struct {
	client *http.Client
	hooks  Hooks
}

// New builds a Coordinator. Config.Hooks.Flip must be set.
func New(cfg Config) (*Coordinator, error) {
	if cfg.Hooks.Flip == nil {
		return nil, fmt.Errorf("reshard: Config.Hooks.Flip is required")
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Timeout: 30 * time.Second}
	}
	return &Coordinator{client: client, hooks: cfg.Hooks}, nil
}

// Result reports one move's outcome.
type Result struct {
	Move Move
	// Step is the protocol step reached: StepDone on success, else the
	// step that failed.
	Step Step
	// Watermark is the sealed watermark the stream moved at (set once the
	// seal succeeded).
	Watermark float64
	// Epoch is the destination's new ownership epoch (set once the import
	// succeeded).
	Epoch uint64
	// Err is nil on success. A move failing before the flip was aborted:
	// the source still owns the stream. A move failing at or after the
	// flip rolled forward: the destination owns it.
	Err error
}

// Failed reports whether the move failed.
func (r Result) Failed() bool { return r.Err != nil }

// step runs the OnStep test seam for one protocol step.
func (c *Coordinator) step(m Move, st Step) error {
	if c.hooks.OnStep == nil {
		return nil
	}
	if err := c.hooks.OnStep(m, st); err != nil {
		return fmt.Errorf("reshard: %s %q: %w", st, m.Stream, err)
	}
	return nil
}

// ExecuteMove runs one stream's full handoff protocol. On any failure
// before the flip it aborts: the source resumes ingestion and the
// destination's partial import is released (each best-effort — both sides
// also self-heal by TTL). From the flip on it rolls forward.
func (c *Coordinator) ExecuteMove(m Move) Result {
	res := Result{Move: m, Step: StepSeal}
	abort := func(err error, releaseDest bool) Result {
		res.Err = err
		// Best-effort rollback; TTLs on both shards cover a coordinator
		// that dies before (or while) issuing these.
		_, _ = c.post(m.FromURL, api.PathAdminResume, api.AdminStreamRequest{Stream: m.Stream}, nil)
		if releaseDest {
			_, _ = c.post(m.ToURL, api.PathAdminRelease, api.AdminStreamRequest{Stream: m.Stream}, nil)
		}
		return res
	}

	if err := c.step(m, StepSeal); err != nil {
		return abort(err, false)
	}
	var sealed api.SealResponse
	if _, err := c.post(m.FromURL, api.PathAdminSeal, api.AdminStreamRequest{Stream: m.Stream}, &sealed); err != nil {
		return abort(fmt.Errorf("reshard: sealing %q on %s: %w", m.Stream, m.From, err), false)
	}
	res.Watermark = sealed.Watermark

	res.Step = StepExport
	if err := c.step(m, StepExport); err != nil {
		return abort(err, false)
	}
	var export api.StreamExport
	if _, err := c.post(m.FromURL, api.PathAdminExport, api.AdminStreamRequest{Stream: m.Stream}, &export); err != nil {
		return abort(fmt.Errorf("reshard: exporting %q from %s: %w", m.Stream, m.From, err), false)
	}

	res.Step = StepImport
	if err := c.step(m, StepImport); err != nil {
		return abort(err, false)
	}
	// The destination imports at the next ownership epoch: if both shards
	// ever report the stream mid-cutover, the router picks the higher.
	export.Epoch = sealed.Epoch + 1
	res.Epoch = export.Epoch
	if _, err := c.post(m.ToURL, api.PathAdminImport, export, nil); err != nil {
		return abort(fmt.Errorf("reshard: importing %q into %s: %w", m.Stream, m.To, err), true)
	}

	res.Step = StepActivate
	if err := c.step(m, StepActivate); err != nil {
		return abort(err, true)
	}
	if _, err := c.post(m.ToURL, api.PathAdminActivate, api.AdminStreamRequest{Stream: m.Stream}, nil); err != nil {
		return abort(fmt.Errorf("reshard: activating %q on %s: %w", m.Stream, m.To, err), true)
	}

	// The flip is the commit point: from here the destination owns the
	// stream and failures roll forward.
	res.Step = StepFlip
	if err := c.step(m, StepFlip); err != nil {
		return abort(err, true)
	}
	c.hooks.Flip(m.Stream, m.To, export.Epoch, sealed.Watermark)

	res.Step = StepRelease
	if err := c.step(m, StepRelease); err != nil {
		// Post-flip: the destination owns the stream either way. The
		// unreleased source auto-resumes by TTL into a shadow the router
		// never routes to (lower epoch); report the move done.
		res.Err = nil
		res.Step = StepDone
		return res
	}
	// Roll forward whether or not the release lands: the destination owns
	// the stream (higher epoch), and an unreleased source auto-resumes by
	// TTL into a shadow the router never routes to.
	_, _ = c.post(m.FromURL, api.PathAdminRelease, api.AdminStreamRequest{Stream: m.Stream}, nil)
	res.Step = StepDone
	return res
}

// Execute runs the planned moves sequentially — resharding is a
// control-plane activity; one in-flight handoff at a time keeps the
// worst-case query impact to a single stream's typed-retryable window.
func (c *Coordinator) Execute(moves []Move) []Result {
	results := make([]Result, 0, len(moves))
	for _, m := range moves {
		results = append(results, c.ExecuteMove(m))
	}
	return results
}

// post sends one JSON admin request and decodes the response into out
// (when non-nil). Non-2xx responses decode the api error envelope into a
// typed *api.Error.
func (c *Coordinator) post(base, path string, body, out any) (*http.Response, error) {
	raw, err := json.Marshal(body)
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequest(http.MethodPost, base+path, bytes.NewReader(raw))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
		return resp, api.DecodeError(resp.StatusCode, msg)
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return resp, fmt.Errorf("decoding %s response: %w", path, err)
		}
	}
	return resp, nil
}
