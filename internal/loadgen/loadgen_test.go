package loadgen

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"focus/api"
	"focus/internal/simrand"
)

func TestPercentile(t *testing.T) {
	sorted := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	cases := []struct {
		p    float64
		want float64
	}{
		{0.50, 5}, {0.90, 9}, {0.99, 10}, {1.0, 10},
	}
	for _, c := range cases {
		if got := percentile(sorted, c.p); got != c.want {
			t.Errorf("p%.0f = %v, want %v", c.p*100, got, c.want)
		}
	}
	if got := percentile(nil, 0.5); got != 0 {
		t.Errorf("empty percentile = %v, want 0", got)
	}
}

// TestClientSequencesDeterministic: the class sequence each client draws is
// a pure function of (seed, client index).
func TestClientSequencesDeterministic(t *testing.T) {
	classes := []string{"car", "person", "truck", "bus"}
	zipf := simrand.NewZipf(len(classes), 1.1)
	draw := func(client int64, n int) []int {
		src := simrand.New(7).DeriveN(client, "loadgen-client")
		out := make([]int, n)
		for i := range out {
			out[i] = zipf.Sample(src)
		}
		return out
	}
	a, b := draw(3, 50), draw(3, 50)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d diverged: %d vs %d", i, a[i], b[i])
		}
	}
	// Popularity skew: rank 0 must dominate.
	counts := make([]int, len(classes))
	for _, r := range draw(1, 400) {
		counts[r]++
	}
	if counts[0] <= counts[len(counts)-1] {
		t.Errorf("no Zipf skew: counts %v", counts)
	}
}

// TestRunAgainstStubServer exercises the full client loop, status taxonomy
// and verifier plumbing against a scripted v1 handler (with the legacy
// shim stubbed too, so the LegacyEvery mix is covered).
func TestRunAgainstStubServer(t *testing.T) {
	var n atomic.Int64
	var legacyHits atomic.Int64
	framesBody := func(expr string, cached bool) *api.QueryResponse {
		return &api.QueryResponse{
			Expr:       expr,
			Form:       api.FormFrames,
			Cached:     cached,
			Watermarks: api.WatermarkVector{"s": 10},
			Streams: map[string]*api.StreamResult{
				"s": {Watermark: 10, Frames: []int64{1, 2}, Segments: []int64{0}},
			},
			TotalFrames: 2,
		}
	}
	mux := http.NewServeMux()
	mux.HandleFunc(api.PathQuery, func(w http.ResponseWriter, r *http.Request) {
		i := n.Add(1)
		var req api.QueryRequest
		_ = json.NewDecoder(r.Body).Decode(&req)
		if i%5 == 0 { // every 5th request is shed
			w.WriteHeader(http.StatusTooManyRequests)
			_ = json.NewEncoder(w).Encode(api.Envelope{Err: api.Errorf(api.CodeOverloaded, "overloaded")})
			return
		}
		_ = json.NewEncoder(w).Encode(framesBody(req.Expr, i%2 == 0))
	})
	mux.HandleFunc("/query", func(w http.ResponseWriter, r *http.Request) {
		legacyHits.Add(1)
		n.Add(1)
		_ = json.NewEncoder(w).Encode(map[string]any{
			"class": r.URL.Query().Get("class"),
			"streams": map[string]*api.StreamResult{
				"s": {Watermark: 10, Frames: []int64{1, 2}, Segments: []int64{0}},
			},
			"total_frames": 2,
		})
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	var verified atomic.Int64
	rep, err := Run(Config{
		BaseURL:              ts.URL,
		Clients:              4,
		Duration:             500 * time.Millisecond,
		MaxRequestsPerClient: 25,
		Classes:              []string{"car", "person"},
		VerifyEvery:          1,
		LegacyEvery:          10,
		Verifier: func(qr *api.QueryResponse) error {
			verified.Add(1)
			if qr.Form != api.FormFrames {
				t.Errorf("verifier saw %q form", qr.Form)
			}
			if qr.TotalFrames != 2 {
				t.Errorf("verifier saw %d frames", qr.TotalFrames)
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests != 100 {
		t.Errorf("requests %d, want 100 (4 clients x 25)", rep.Requests)
	}
	if rep.OK+rep.Rejected != rep.Requests {
		t.Errorf("ok %d + rejected %d != %d", rep.OK, rep.Rejected, rep.Requests)
	}
	if rep.Rejected == 0 || rep.CacheHits == 0 {
		t.Errorf("taxonomy not exercised: %+v", rep)
	}
	if rep.LegacyRequests == 0 || int64(rep.LegacyRequests) != legacyHits.Load() {
		t.Errorf("legacy mix not exercised: report %d, server saw %d", rep.LegacyRequests, legacyHits.Load())
	}
	if len(rep.Failures()) != 0 {
		t.Errorf("unexpected failures: %v", rep.Failures())
	}
	if rep.Verified == 0 || int(verified.Load()) != rep.Verified {
		t.Errorf("verified %d, callbacks %d", rep.Verified, verified.Load())
	}
}

// TestFailuresFlagUnexpectedStatus: 500s and transport errors must fail a
// gate even when everything else looks healthy.
func TestFailuresFlagUnexpectedStatus(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusInternalServerError)
	}))
	defer ts.Close()
	rep, err := Run(Config{
		BaseURL:              ts.URL,
		Clients:              2,
		Duration:             200 * time.Millisecond,
		MaxRequestsPerClient: 5,
		Classes:              []string{"car"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Failures()) == 0 {
		t.Fatal("500 responses must be reported as failures")
	}
}
