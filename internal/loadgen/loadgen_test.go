package loadgen

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"focus/api"
	"focus/internal/simrand"
)

func TestPercentile(t *testing.T) {
	sorted := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	cases := []struct {
		p    float64
		want float64
	}{
		{0.50, 5}, {0.90, 9}, {0.99, 10}, {1.0, 10},
	}
	for _, c := range cases {
		if got := percentile(sorted, c.p); got != c.want {
			t.Errorf("p%.0f = %v, want %v", c.p*100, got, c.want)
		}
	}
	if got := percentile(nil, 0.5); got != 0 {
		t.Errorf("empty percentile = %v, want 0", got)
	}
}

// TestClientSequencesDeterministic: the class sequence each client draws is
// a pure function of (seed, client index).
func TestClientSequencesDeterministic(t *testing.T) {
	classes := []string{"car", "person", "truck", "bus"}
	zipf := simrand.NewZipf(len(classes), 1.1)
	draw := func(client int64, n int) []int {
		src := simrand.New(7).DeriveN(client, "loadgen-client")
		out := make([]int, n)
		for i := range out {
			out[i] = zipf.Sample(src)
		}
		return out
	}
	a, b := draw(3, 50), draw(3, 50)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d diverged: %d vs %d", i, a[i], b[i])
		}
	}
	// Popularity skew: rank 0 must dominate.
	counts := make([]int, len(classes))
	for _, r := range draw(1, 400) {
		counts[r]++
	}
	if counts[0] <= counts[len(counts)-1] {
		t.Errorf("no Zipf skew: counts %v", counts)
	}
}

// TestRunAgainstStubServer exercises the full client loop, status taxonomy
// and verifier plumbing against a scripted v1 handler (with the legacy
// shim stubbed too, so the LegacyEvery mix is covered).
func TestRunAgainstStubServer(t *testing.T) {
	var n atomic.Int64
	var legacyHits atomic.Int64
	framesBody := func(expr string, cached bool) *api.QueryResponse {
		return &api.QueryResponse{
			Expr:       expr,
			Form:       api.FormFrames,
			Cached:     cached,
			Watermarks: api.WatermarkVector{"s": 10},
			Streams: map[string]*api.StreamResult{
				"s": {Watermark: 10, Frames: []int64{1, 2}, Segments: []int64{0}},
			},
			TotalFrames: 2,
		}
	}
	mux := http.NewServeMux()
	mux.HandleFunc(api.PathQuery, func(w http.ResponseWriter, r *http.Request) {
		i := n.Add(1)
		var req api.QueryRequest
		_ = json.NewDecoder(r.Body).Decode(&req)
		if i%5 == 0 { // every 5th request is shed
			w.WriteHeader(http.StatusTooManyRequests)
			_ = json.NewEncoder(w).Encode(api.Envelope{Err: api.Errorf(api.CodeOverloaded, "overloaded")})
			return
		}
		_ = json.NewEncoder(w).Encode(framesBody(req.Expr, i%2 == 0))
	})
	mux.HandleFunc("/query", func(w http.ResponseWriter, r *http.Request) {
		legacyHits.Add(1)
		n.Add(1)
		_ = json.NewEncoder(w).Encode(map[string]any{
			"class": r.URL.Query().Get("class"),
			"streams": map[string]*api.StreamResult{
				"s": {Watermark: 10, Frames: []int64{1, 2}, Segments: []int64{0}},
			},
			"total_frames": 2,
		})
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	var verified atomic.Int64
	rep, err := Run(Config{
		BaseURL:              ts.URL,
		Clients:              4,
		Duration:             500 * time.Millisecond,
		MaxRequestsPerClient: 25,
		Classes:              []string{"car", "person"},
		VerifyEvery:          1,
		LegacyEvery:          10,
		Verifier: func(qr *api.QueryResponse) error {
			verified.Add(1)
			if qr.Form != api.FormFrames {
				t.Errorf("verifier saw %q form", qr.Form)
			}
			if qr.TotalFrames != 2 {
				t.Errorf("verifier saw %d frames", qr.TotalFrames)
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests != 100 {
		t.Errorf("requests %d, want 100 (4 clients x 25)", rep.Requests)
	}
	if rep.OK+rep.Rejected != rep.Requests {
		t.Errorf("ok %d + rejected %d != %d", rep.OK, rep.Rejected, rep.Requests)
	}
	if rep.Rejected == 0 || rep.CacheHits == 0 {
		t.Errorf("taxonomy not exercised: %+v", rep)
	}
	if rep.LegacyRequests == 0 || int64(rep.LegacyRequests) != legacyHits.Load() {
		t.Errorf("legacy mix not exercised: report %d, server saw %d", rep.LegacyRequests, legacyHits.Load())
	}
	if len(rep.Failures()) != 0 {
		t.Errorf("unexpected failures: %v", rep.Failures())
	}
	if rep.Verified == 0 || int(verified.Load()) != rep.Verified {
		t.Errorf("verified %d, callbacks %d", rep.Verified, verified.Load())
	}
}

// TestFailuresFlagUnexpectedStatus: 500s and transport errors must fail a
// gate even when everything else looks healthy.
func TestFailuresFlagUnexpectedStatus(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusInternalServerError)
	}))
	defer ts.Close()
	rep, err := Run(Config{
		BaseURL:              ts.URL,
		Clients:              2,
		Duration:             200 * time.Millisecond,
		MaxRequestsPerClient: 5,
		Classes:              []string{"car"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Failures()) == 0 {
		t.Fatal("500 responses must be reported as failures")
	}
}

// TestOutageTaxonomyAndPartials pins the chaos-drill accounting: with
// AcceptOutage, typed shard_down rejections land in Report.Outage instead
// of failing the run, and allow_partial responses carrying the Partial
// marker are counted; without the opt-in the same traffic fails the gate.
func TestOutageTaxonomyAndPartials(t *testing.T) {
	okBody := &api.QueryResponse{
		Expr:       "car",
		Form:       api.FormFrames,
		Watermarks: api.WatermarkVector{"s": 10},
		Streams: map[string]*api.StreamResult{
			"s": {Watermark: 10, Frames: []int64{1}, Segments: []int64{0}},
		},
		TotalFrames: 1,
	}
	mux := http.NewServeMux()
	mux.HandleFunc(api.PathQuery, func(w http.ResponseWriter, r *http.Request) {
		var req api.QueryRequest
		_ = json.NewDecoder(r.Body).Decode(&req)
		if req.AllowPartial {
			// Degraded answer: the healthy subset plus the Partial marker.
			partial := *okBody
			partial.Partial = &api.PartialInfo{
				MissingShards:  []string{"shard-1"},
				MissingStreams: []string{"down"},
			}
			_ = json.NewEncoder(w).Encode(&partial)
			return
		}
		if len(req.Streams) == 0 {
			// Whole-corpus without allow_partial hits the dead shard.
			w.WriteHeader(http.StatusServiceUnavailable)
			_ = json.NewEncoder(w).Encode(api.Envelope{
				Err: api.Errorf(api.CodeShardDown, "shard shard-1 is down")})
			return
		}
		_ = json.NewEncoder(w).Encode(okBody)
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	run := func(accept bool) *Report {
		rep, err := Run(Config{
			BaseURL:              ts.URL,
			Clients:              2,
			Duration:             500 * time.Millisecond,
			MaxRequestsPerClient: 20,
			Classes:              []string{"car"},
			Streams:              []string{"s"},
			SingleStreamEvery:    3,
			AllowPartialEvery:    4,
			AcceptOutage:         accept,
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}

	rep := run(true)
	if rep.Outage == 0 {
		t.Fatalf("no outage rejections recorded: %+v", rep)
	}
	if rep.Partials == 0 {
		t.Fatalf("no partial responses recorded: %+v", rep)
	}
	if fails := rep.Failures(); len(fails) != 0 {
		t.Fatalf("chaos-mode run failed the gate: %v", fails)
	}
	if rep.OK+rep.Rejected+rep.Outage != rep.Requests {
		t.Fatalf("accounting leak: ok %d + rejected %d + outage %d != %d",
			rep.OK, rep.Rejected, rep.Outage, rep.Requests)
	}

	// The same traffic without the opt-in must fail loudly.
	if fails := run(false).Failures(); len(fails) == 0 {
		t.Fatal("shard_down rejections passed the gate without AcceptOutage")
	}
}
