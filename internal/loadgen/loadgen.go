// Package loadgen is a deterministic closed-loop load generator for the
// focus-serve HTTP service — or for a focus-router fronting several serve
// shards, whose wire contract is identical: N client goroutines issue
// back-to-back /v1/query requests through the typed focus/client package,
// with Zipf-skewed class popularity (mirroring the skewed query interest
// the paper's streams exhibit, §2.2) — single-class (frames-form) traffic
// optionally mixed with compound ranked plans, temporal track queries,
// cursor-paged reads, and deprecated legacy-shim requests (exercising the
// migration surface).
// It records throughput, a latency histogram, and per-status counts.
// Optional verifiers re-execute sampled responses directly against the
// owning focus.System at the exact watermark vector the service answered
// at, asserting the served result is identical — the serving stack
// (transport, cache, admission, scatter-gather, paging) must never change
// an answer.
//
// "Closed loop" means each client waits for its response before issuing the
// next request, so offered load adapts to service capacity; client request
// sequences are pure functions of (seed, client index).
package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"reflect"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"focus/api"
	"focus/client"
	"focus/internal/simrand"
)

// Config parameterizes one load-generation run.
type Config struct {
	// BaseURL is the service root, e.g. "http://127.0.0.1:7070".
	BaseURL string
	// Clients is the number of concurrent closed-loop clients. Default 16.
	Clients int
	// Duration is the wall-clock run length. Default 10s.
	Duration time.Duration
	// MaxRequestsPerClient additionally caps each client's request count;
	// 0 means duration-bound only.
	MaxRequestsPerClient int
	// Seed drives every client's deterministic request sequence. Default 1.
	Seed uint64
	// Classes is the queryable class-name pool in popularity order; clients
	// draw from it Zipf(ZipfAlpha)-skewed, so a few popular classes draw
	// most of the traffic (and exercise the result cache).
	Classes []string
	// Streams is the stream-name pool for single-stream queries; required
	// when SingleStreamEvery is set.
	Streams []string
	// SingleStreamEvery makes every Nth plain query per client target one
	// deterministically drawn stream from Streams instead of the whole
	// corpus (0 = always whole-corpus). Against a sharded router this is
	// what keeps exercising healthy shards while another shard drains —
	// whole-corpus requests all fail once any shard leaves rotation.
	SingleStreamEvery int
	// AcceptDraining counts structured "draining" rejections as expected
	// (Report.Draining) instead of failures. Set it only when the run
	// deliberately drains a shard; in a steady-state run a draining
	// rejection is as wrong as any other 5xx.
	AcceptDraining bool
	// AcceptOutage counts structured "shard_down", "unavailable" and
	// "not_ready" rejections as expected (Report.Outage) instead of
	// failures. Set it only when the run deliberately kills a shard (a
	// chaos drill); in a steady-state run they are as wrong as any other
	// 5xx. Untyped errors stay failures either way — an outage must
	// surface through the typed taxonomy, never as a bare 500 or a wrong
	// answer.
	AcceptOutage bool
	// AllowPartialEvery makes every Nth plain whole-corpus query per
	// client opt into degraded answers (allow_partial): during a shard
	// outage the router then answers from the healthy shards with the
	// Partial marker set (counted in Report.Partials) instead of failing
	// the query. Partial responses are verified like any other — the
	// echoed watermark vector covers exactly the streams that answered,
	// so the direct replay targets the same healthy subset. 0 = never.
	AllowPartialEvery int
	// ZipfAlpha is the popularity skew. Default 1.1.
	ZipfAlpha float64
	// VerifyEvery verifies every Nth OK response per client through the
	// matching verifier (1 = every response, 0 = never).
	VerifyEvery int
	// Verifier checks one served frames-form response; non-nil errors are
	// recorded as mismatches. See NewDirectVerifier.
	Verifier func(*api.QueryResponse) error
	// Plans is a pool of compound predicate expressions ("car & person &
	// !bus") issued as ranked /v1/query requests, mixed into the
	// single-class stream.
	Plans []string
	// PlanEvery makes every Nth request per client a ranked plan drawn
	// deterministically from Plans (0 = plans never issued).
	PlanEvery int
	// PlanTopK is the top_k for plan requests. Default 10.
	PlanTopK int
	// PlanVerifier checks one served ranked-form response; non-nil errors
	// are recorded as mismatches. See NewDirectPlanVerifier.
	PlanVerifier func(*api.QueryResponse) error
	// EarlyExitEvery makes every Nth plan request per client run in
	// early-exit mode (mode=early_exit on the /v1 request): the service
	// stops at PlanTopK verified items instead of ranking exhaustively.
	// Legacy-shim plan requests always stay exact — the deprecated wire
	// format predates execution modes. Early-exit responses flow through
	// PlanVerifier like any other ranked response; against a router, use
	// NewSubsetPlanVerifier (shard-local samplers make the merged answer
	// differ from any single-node replay). 0 = plans are always exact.
	EarlyExitEvery int
	// Tracks is a pool of temporal predicate expressions ("car & dur(5)",
	// "person & seq(region(...), region(...))") issued as tracks-form
	// /v1/query requests. Temporal queries have no legacy shim — they are
	// always issued through /v1.
	Tracks []string
	// TrackEvery makes every Nth request per client a track query drawn
	// deterministically from Tracks (0 = tracks never issued). When a
	// request lands on both the plan and the track cadence, the plan wins,
	// so adding track traffic never changes which requests the existing
	// plan mix issues.
	TrackEvery int
	// TrackVerifier checks one served tracks-form response; non-nil errors
	// are recorded as mismatches. See NewDirectTrackVerifier.
	TrackVerifier func(*api.QueryResponse) error
	// LegacyEvery routes every Nth request per client through the
	// deprecated legacy shims (GET /query or POST /plan) instead of
	// /v1/query, exercising the migration surface; responses are decoded
	// from the legacy wire format and verified through the same
	// verifiers. 0 = v1 only.
	LegacyEvery int
	// PageEvery makes every Nth plan request per client a cursor-paged
	// read (pages of PageSize items assembled through the opaque cursor,
	// then verified as one response — pinning paged == one-shot ==
	// direct). 0 = plans are always one-shot.
	PageEvery int
	// PageSize is the page limit for cursor-paged reads. Default 5.
	PageSize int
	// SubscribeEvery makes every Nth request per client a standing query:
	// the client opens POST /v1/subscribe with a predicate drawn
	// deterministically from the combined Plans and Tracks pools, collects
	// the opening catch-up delta plus whatever live deltas arrive within
	// SubscribeFor, then closes. When a request lands on both the
	// subscribe cadence and another cadence, the subscription wins —
	// standing-query traffic is the point of the knob. 0 = never.
	SubscribeEvery int
	// SubscribeFor bounds how long each opened subscription keeps
	// collecting deltas before it is verified and closed. Default 2s.
	SubscribeFor time.Duration
	// DeltaVerifier checks one subscription's reassembled answer at the
	// delivered vector; non-nil errors are recorded as mismatches. See
	// NewDeltaVerifier.
	DeltaVerifier DeltaVerifier
	// Timeout bounds each request. Default 30s.
	Timeout time.Duration
}

func (c *Config) applyDefaults() error {
	if c.BaseURL == "" {
		return fmt.Errorf("loadgen: BaseURL is required")
	}
	if len(c.Classes) == 0 {
		return fmt.Errorf("loadgen: at least one class is required")
	}
	if c.Clients <= 0 {
		c.Clients = 16
	}
	if c.Duration <= 0 {
		c.Duration = 10 * time.Second
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.ZipfAlpha <= 0 {
		c.ZipfAlpha = 1.1
	}
	if c.Timeout <= 0 {
		c.Timeout = 30 * time.Second
	}
	if c.PlanTopK <= 0 {
		c.PlanTopK = 10
	}
	if c.PageSize <= 0 {
		c.PageSize = 5
	}
	if c.PlanEvery > 0 && len(c.Plans) == 0 {
		return fmt.Errorf("loadgen: PlanEvery set but no Plans given")
	}
	if len(c.Plans) > 0 && c.PlanEvery <= 0 {
		// Symmetric check: a plan pool that never fires means the plan
		// path silently stops being exercised while looking configured.
		return fmt.Errorf("loadgen: Plans given but PlanEvery is 0 — no plan would ever be issued")
	}
	if c.TrackEvery > 0 && len(c.Tracks) == 0 {
		return fmt.Errorf("loadgen: TrackEvery set but no Tracks given")
	}
	if len(c.Tracks) > 0 && c.TrackEvery <= 0 {
		return fmt.Errorf("loadgen: Tracks given but TrackEvery is 0 — no track query would ever be issued")
	}
	if c.PageEvery > 0 && c.PlanEvery <= 0 && c.TrackEvery <= 0 {
		return fmt.Errorf("loadgen: PageEvery set but no plan or track traffic configured")
	}
	if c.EarlyExitEvery > 0 && c.PlanEvery <= 0 {
		return fmt.Errorf("loadgen: EarlyExitEvery set but no plan traffic configured")
	}
	if c.SingleStreamEvery > 0 && len(c.Streams) == 0 {
		return fmt.Errorf("loadgen: SingleStreamEvery set but no Streams given")
	}
	if c.SubscribeEvery > 0 && len(c.Plans) == 0 && len(c.Tracks) == 0 {
		return fmt.Errorf("loadgen: SubscribeEvery set but no Plans or Tracks given — nothing to subscribe to")
	}
	if c.SubscribeFor <= 0 {
		c.SubscribeFor = 2 * time.Second
	}
	return nil
}

// Report aggregates one run.
type Report struct {
	Clients    int     `json:"clients"`
	ElapsedSec float64 `json:"elapsed_sec"`
	Requests   int     `json:"requests"`
	// OK counts 2xx responses; Rejected counts structured "overloaded"
	// rejections (admission control doing its job under overload — not a
	// failure); Draining counts "draining" rejections when
	// Config.AcceptDraining opted into them (a shard deliberately rolled
	// out of rotation — never silent data loss, since routed queries are
	// all-or-nothing); without the opt-in they land in Unexpected, which
	// counts everything else by status code and fails the run.
	OK       int `json:"ok"`
	Rejected int `json:"rejected"`
	Draining int `json:"draining"`
	// Outage counts shard_down/unavailable/not_ready rejections when
	// Config.AcceptOutage opted into them (a chaos drill killed a shard
	// and the cluster refused loudly rather than answering wrong);
	// Partials counts 2xx responses carrying the Partial marker
	// (allow_partial answers that omitted a dead shard's streams).
	Outage     int         `json:"outage"`
	Partials   int         `json:"partial_responses"`
	Unexpected map[int]int `json:"unexpected,omitempty"`
	NetErrors  int         `json:"net_errors"`
	CacheHits  int         `json:"cache_hits"`
	Verified   int         `json:"verified"`
	// PlanRequests counts the ranked-plan share of Requests; PlanVerified
	// counts plan responses re-executed through PlanVerifier.
	PlanRequests int `json:"plan_requests"`
	PlanVerified int `json:"plan_verified"`
	// TrackRequests counts the tracks-form share of Requests; TrackVerified
	// counts track responses re-executed through TrackVerifier.
	TrackRequests int `json:"track_requests"`
	TrackVerified int `json:"track_verified"`
	// EarlyExitRequests counts the plan requests issued in early-exit mode
	// (a subset of PlanRequests).
	EarlyExitRequests int `json:"early_exit_requests"`
	// LegacyRequests counts requests issued through the deprecated shims;
	// PagedRequests counts cursor-paged plan and track reads.
	LegacyRequests int `json:"legacy_requests"`
	PagedRequests  int `json:"paged_requests"`
	// Subscriptions counts standing queries opened and cleanly closed;
	// DeltaEvents counts the deltas they received (every subscription
	// receives at least its opening catch-up); SubscriptionsVerified
	// counts reassembled answers replayed through DeltaVerifier.
	Subscriptions         int `json:"subscriptions"`
	DeltaEvents           int `json:"delta_events"`
	SubscriptionsVerified int `json:"subscriptions_verified"`
	// SubscriptionShortfall is set when the run was configured to open
	// standing queries (SubscribeEvery) but none completed — a silently
	// unexercised subscription mix must fail the gate, not pass it.
	SubscriptionShortfall string   `json:"subscription_shortfall,omitempty"`
	Mismatches            []string `json:"mismatches,omitempty"`
	// Latency percentiles over successful (2xx) responses, milliseconds.
	P50MS float64 `json:"p50_ms"`
	P90MS float64 `json:"p90_ms"`
	P99MS float64 `json:"p99_ms"`
	MaxMS float64 `json:"max_ms"`
	// ThroughputRPS counts completed requests (any status) per second.
	ThroughputRPS float64 `json:"throughput_rps"`
	// ErrorSamples holds a few representative transport errors.
	ErrorSamples []string `json:"error_samples,omitempty"`
}

// Failures returns the reasons this run should fail a CI gate: any
// non-2xx/overloaded response, any transport error, or any verification
// mismatch. p99 budgets are the caller's to assert (they are
// deployment-specific).
func (r *Report) Failures() []string {
	var out []string
	for status, n := range r.Unexpected {
		out = append(out, fmt.Sprintf("%d responses with unexpected status %d", n, status))
	}
	if r.NetErrors > 0 {
		out = append(out, fmt.Sprintf("%d transport errors (samples: %v)", r.NetErrors, r.ErrorSamples))
	}
	for _, m := range r.Mismatches {
		out = append(out, "served-vs-direct mismatch: "+m)
	}
	if r.SubscriptionShortfall != "" {
		out = append(out, r.SubscriptionShortfall)
	}
	sort.Strings(out)
	return out
}

// clientState accumulates one client's observations; merged after the run.
type clientState struct {
	latenciesMS []float64
	requests    int
	ok          int // all 2xx responses, plain and plan
	rejected    int
	draining    int
	outage      int
	partials    int
	unexpected  map[int]int
	netErrors   int
	cacheHits   int
	// plainOK/planOK drive the verification cadences independently, so
	// mixing plan traffic in never changes which plain responses the
	// "verify every Nth OK" sampling picks.
	plainOK       int
	verified      int
	planRequests  int
	planOK        int
	planVerified  int
	trackRequests int
	trackOK       int
	trackVerified int
	earlyExitReqs int
	legacyReqs    int
	pagedReqs     int
	subs          int
	deltaEvents   int
	subVerified   int
	mismatches    []string
	errSamples    []string
}

// Run executes the load generation and blocks until every client finishes.
func Run(cfg Config) (*Report, error) {
	if err := cfg.applyDefaults(); err != nil {
		return nil, err
	}
	zipf := simrand.NewZipf(len(cfg.Classes), cfg.ZipfAlpha)
	transport := &http.Transport{
		MaxIdleConns:        cfg.Clients * 2,
		MaxIdleConnsPerHost: cfg.Clients * 2,
	}
	httpc := &http.Client{Transport: transport, Timeout: cfg.Timeout}
	defer transport.CloseIdleConnections()
	// Zero retries: the generator must observe raw overload/draining
	// behavior, not have the client paper over it.
	cli := client.New(cfg.BaseURL, client.WithHTTPClient(httpc), client.WithRetries(0, 0))

	deadline := time.Now().Add(cfg.Duration)
	states := make([]*clientState, cfg.Clients)
	var wg sync.WaitGroup
	t0 := time.Now()
	for i := 0; i < cfg.Clients; i++ {
		states[i] = &clientState{unexpected: make(map[int]int)}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			runClient(&cfg, i, zipf, cli, httpc, deadline, states[i])
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(t0)

	rep := &Report{Clients: cfg.Clients, ElapsedSec: elapsed.Seconds(), Unexpected: make(map[int]int)}
	var lat []float64
	for _, st := range states {
		rep.Requests += st.requests
		rep.OK += st.ok
		rep.Rejected += st.rejected
		rep.Draining += st.draining
		rep.Outage += st.outage
		rep.Partials += st.partials
		rep.NetErrors += st.netErrors
		rep.CacheHits += st.cacheHits
		rep.Verified += st.verified
		rep.PlanRequests += st.planRequests
		rep.PlanVerified += st.planVerified
		rep.TrackRequests += st.trackRequests
		rep.TrackVerified += st.trackVerified
		rep.EarlyExitRequests += st.earlyExitReqs
		rep.LegacyRequests += st.legacyReqs
		rep.PagedRequests += st.pagedReqs
		rep.Subscriptions += st.subs
		rep.DeltaEvents += st.deltaEvents
		rep.SubscriptionsVerified += st.subVerified
		for code, n := range st.unexpected {
			rep.Unexpected[code] += n
		}
		for _, m := range st.mismatches {
			if len(rep.Mismatches) < 20 {
				rep.Mismatches = append(rep.Mismatches, m)
			}
		}
		for _, e := range st.errSamples {
			if len(rep.ErrorSamples) < 5 {
				rep.ErrorSamples = append(rep.ErrorSamples, e)
			}
		}
		lat = append(lat, st.latenciesMS...)
	}
	if len(rep.Unexpected) == 0 {
		rep.Unexpected = nil
	}
	sort.Float64s(lat)
	rep.P50MS = percentile(lat, 0.50)
	rep.P90MS = percentile(lat, 0.90)
	rep.P99MS = percentile(lat, 0.99)
	if n := len(lat); n > 0 {
		rep.MaxMS = lat[n-1]
	}
	if elapsed > 0 {
		rep.ThroughputRPS = float64(rep.Requests) / elapsed.Seconds()
	}
	if cfg.SubscribeEvery > 0 && rep.Subscriptions == 0 {
		rep.SubscriptionShortfall = fmt.Sprintf(
			"subscriptions requested (SubscribeEvery=%d) but none completed", cfg.SubscribeEvery)
	}
	return rep, nil
}

// runClient is one closed loop: draw a class (or, every PlanEvery-th
// request, a compound plan), query, record, repeat.
func runClient(cfg *Config, idx int, zipf *simrand.Zipf, cli *client.Client, httpc *http.Client,
	deadline time.Time, st *clientState) {
	src := simrand.New(cfg.Seed).DeriveN(int64(idx), "loadgen-client")
	for time.Now().Before(deadline) {
		if cfg.MaxRequestsPerClient > 0 && st.requests >= cfg.MaxRequestsPerClient {
			return
		}
		st.requests++
		if cfg.SubscribeEvery > 0 && st.requests%cfg.SubscribeEvery == 0 {
			runSubscription(cfg, idx, src, cli, st)
			continue
		}
		legacy := cfg.LegacyEvery > 0 && st.requests%cfg.LegacyEvery == 0
		if cfg.PlanEvery > 0 && st.requests%cfg.PlanEvery == 0 {
			runPlanRequest(cfg, idx, src, cli, httpc, st, legacy)
			continue
		}
		if cfg.TrackEvery > 0 && st.requests%cfg.TrackEvery == 0 {
			runTrackRequest(cfg, idx, src, cli, st)
			continue
		}
		req := &api.QueryRequest{Expr: cfg.Classes[zipf.Sample(src)]}
		if cfg.SingleStreamEvery > 0 && st.requests%cfg.SingleStreamEvery == 0 {
			req.Streams = []string{cfg.Streams[src.Intn(len(cfg.Streams))]}
		}
		// Only whole-corpus requests opt into allow_partial: a single-stream
		// query has nothing to degrade to — losing its one stream should
		// stay a loud typed failure, not an empty "success".
		if cfg.AllowPartialEvery > 0 && len(req.Streams) == 0 &&
			st.requests%cfg.AllowPartialEvery == 0 && !legacy {
			req.AllowPartial = true
		}
		var qr *api.QueryResponse
		var err error
		t0 := time.Now()
		if legacy {
			st.legacyReqs++
			qr, err = legacyQuery(httpc, cfg.BaseURL, req)
		} else {
			qr, err = cli.Query(context.Background(), req)
		}
		// Latency includes the body transfer and decode: what a real client
		// waits for. Measuring at header arrival would let a regression that
		// bloats response bodies slip past the p99 gate.
		latMS := float64(time.Since(t0).Nanoseconds()) / 1e6
		if !st.record(cfg, err) {
			continue
		}
		st.ok++
		st.plainOK++
		st.latenciesMS = append(st.latenciesMS, latMS)
		if qr.Cached {
			st.cacheHits++
		}
		if qr.Partial != nil {
			st.partials++
		}
		if cfg.Verifier != nil && cfg.VerifyEvery > 0 && st.plainOK%cfg.VerifyEvery == 0 {
			st.verified++
			if err := cfg.Verifier(qr); err != nil {
				st.mismatches = append(st.mismatches,
					fmt.Sprintf("client %d expr %q: %v", idx, req.Expr, err))
			}
		}
	}
}

// runPlanRequest issues one ranked plan drawn deterministically from the
// plan pool — one-shot, cursor-paged, or through the legacy shim — and
// records it under the same status taxonomy as plain queries.
func runPlanRequest(cfg *Config, idx int, src *simrand.Source, cli *client.Client, httpc *http.Client,
	st *clientState, legacy bool) {
	expr := cfg.Plans[src.Intn(len(cfg.Plans))]
	req := &api.QueryRequest{Expr: expr, TopK: cfg.PlanTopK}
	st.planRequests++
	if !legacy && cfg.EarlyExitEvery > 0 && st.planRequests%cfg.EarlyExitEvery == 0 {
		req.Mode = api.ModeEarlyExit
		st.earlyExitReqs++
	}
	paged := !legacy && cfg.PageEvery > 0 && st.planRequests%cfg.PageEvery == 0
	var pr *api.QueryResponse
	var err error
	if paged {
		st.pagedReqs++
		pr, err = runPagedPlan(cfg, cli, st, req)
		if !st.record(cfg, err) {
			return
		}
	} else {
		t0 := time.Now()
		if legacy {
			st.legacyReqs++
			pr, err = legacyPlan(httpc, cfg.BaseURL, req)
		} else {
			pr, err = cli.Query(context.Background(), req)
		}
		latMS := float64(time.Since(t0).Nanoseconds()) / 1e6
		if !st.record(cfg, err) {
			return
		}
		st.latenciesMS = append(st.latenciesMS, latMS)
	}
	st.ok++
	st.planOK++
	if pr.Cached {
		st.cacheHits++
	}
	if cfg.PlanVerifier != nil && cfg.VerifyEvery > 0 && st.planOK%cfg.VerifyEvery == 0 {
		st.planVerified++
		if err := cfg.PlanVerifier(pr); err != nil {
			st.mismatches = append(st.mismatches,
				fmt.Sprintf("client %d plan %q: %v", idx, expr, err))
		}
	}
}

// runTrackRequest issues one temporal track query drawn deterministically
// from the track pool — one-shot or cursor-paged — and records it under
// the same status taxonomy as plain queries. Tracks are v1-only: the
// temporal surface postdates the deprecated shims, so there is no legacy
// variant to exercise.
func runTrackRequest(cfg *Config, idx int, src *simrand.Source, cli *client.Client, st *clientState) {
	expr := cfg.Tracks[src.Intn(len(cfg.Tracks))]
	req := &api.QueryRequest{Expr: expr, TopK: cfg.PlanTopK}
	st.trackRequests++
	paged := cfg.PageEvery > 0 && st.trackRequests%cfg.PageEvery == 0
	var tr *api.QueryResponse
	var err error
	if paged {
		st.pagedReqs++
		tr, err = runPagedTracks(cfg, cli, st, req)
		if !st.record(cfg, err) {
			return
		}
	} else {
		t0 := time.Now()
		tr, err = cli.Query(context.Background(), req)
		latMS := float64(time.Since(t0).Nanoseconds()) / 1e6
		if !st.record(cfg, err) {
			return
		}
		st.latenciesMS = append(st.latenciesMS, latMS)
	}
	st.ok++
	st.trackOK++
	if tr.Cached {
		st.cacheHits++
	}
	if cfg.TrackVerifier != nil && cfg.VerifyEvery > 0 && st.trackOK%cfg.VerifyEvery == 0 {
		st.trackVerified++
		if err := cfg.TrackVerifier(tr); err != nil {
			st.mismatches = append(st.mismatches,
				fmt.Sprintf("client %d track %q: %v", idx, expr, err))
		}
	}
}

// runSubscription opens one standing query drawn deterministically from
// the combined plan and track pools, collects its opening catch-up delta
// plus whatever live deltas arrive within SubscribeFor, verifies the
// reassembled answer at the delivered vector, and closes. The latency
// sample is the open — the time to the server's hello frame, which is
// what a subscribing client actually blocks on; delta arrival cadence is
// ingest-driven, not a service latency.
func runSubscription(cfg *Config, idx int, src *simrand.Source, cli *client.Client, st *clientState) {
	n := src.Intn(len(cfg.Plans) + len(cfg.Tracks))
	var expr string
	if n < len(cfg.Plans) {
		expr = cfg.Plans[n]
	} else {
		expr = cfg.Tracks[n-len(cfg.Plans)]
	}
	t0 := time.Now()
	sub, err := cli.Subscribe(context.Background(), &api.SubscribeRequest{Expr: expr})
	latMS := float64(time.Since(t0).Nanoseconds()) / 1e6
	if !st.record(cfg, err) {
		return
	}
	st.latenciesMS = append(st.latenciesMS, latMS)
	// Close ends the collection window: it is the documented way to abort
	// a blocked Recv from another goroutine.
	var expired atomic.Bool
	timer := time.AfterFunc(cfg.SubscribeFor, func() {
		expired.Store(true)
		sub.Close()
	})
	defer timer.Stop()
	defer sub.Close()
	for {
		_, err := sub.Recv()
		if err == nil {
			st.deltaEvents++
			continue
		}
		if !errors.Is(err, io.EOF) && !expired.Load() {
			// Neither a terminal bye nor our own window close. A typed
			// rejection (a shard draining or dying mid-stream) goes through
			// the run's normal outcome taxonomy; anything untyped is a
			// broken delta protocol — a gap, an inapplicable edit — and
			// must fail the run as a mismatch.
			var typed *api.Error
			if errors.As(err, &typed) {
				st.record(cfg, typed)
			} else {
				st.mismatches = append(st.mismatches,
					fmt.Sprintf("client %d subscription %q: %v", idx, expr, err))
			}
			return
		}
		break
	}
	st.ok++
	st.subs++
	if cfg.DeltaVerifier != nil && cfg.VerifyEvery > 0 && st.subs%cfg.VerifyEvery == 0 {
		st.subVerified++
		if err := cfg.DeltaVerifier(sub.Hello(), sub.Vector(), sub.Items(), sub.Tracks()); err != nil {
			st.mismatches = append(st.mismatches,
				fmt.Sprintf("client %d subscription %q at %v: %v", idx, expr, sub.Vector(), err))
		}
	}
}

// runPagedTracks drives one cursor-paged track read page by page, exactly
// as runPagedPlan does for ranked reads: each page fetch is its own
// latency sample, and the pages reassemble into one response the track
// verifier can replay against a direct execution at the pinned vector.
func runPagedTracks(cfg *Config, cli *client.Client, st *clientState, req *api.QueryRequest) (*api.QueryResponse, error) {
	pager := cli.TrackPager(req, cfg.PageSize)
	var out *api.QueryResponse
	var tracks []api.TrackItem
	for pager.More() {
		t0 := time.Now()
		page, err := pager.Next(context.Background())
		latMS := float64(time.Since(t0).Nanoseconds()) / 1e6
		if err != nil {
			return nil, err
		}
		st.latenciesMS = append(st.latenciesMS, latMS)
		resp := pager.Last()
		if out == nil {
			out = resp
		} else if resp.Expr != out.Expr || resp.TotalItems != out.TotalItems ||
			!reflect.DeepEqual(resp.Watermarks, out.Watermarks) {
			return nil, fmt.Errorf("paged track read drifted between pages (expr, total, or pinned watermarks changed)")
		}
		tracks = append(tracks, page...)
	}
	if out == nil {
		return nil, fmt.Errorf("paged track read yielded no pages")
	}
	if len(tracks) != out.TotalItems {
		return nil, fmt.Errorf("pages yielded %d tracks, server reported %d", len(tracks), out.TotalItems)
	}
	assembled := *out
	assembled.Tracks = tracks
	assembled.Cursor = ""
	return &assembled, nil
}

// runPagedPlan drives one cursor-paged ranked read page by page. Each
// page fetch is one HTTP request and is recorded as its own latency
// sample — folding a whole page chain into one observation would distort
// the p99 histogram the CI budget gates on. The pages are reassembled
// into one response (first page's metadata and cost, concatenated items)
// so the ordinary plan verifier can replay it against a direct execution
// at the pinned vector — which is exactly the paged == one-shot ==
// direct invariant, end to end.
func runPagedPlan(cfg *Config, cli *client.Client, st *clientState, req *api.QueryRequest) (*api.QueryResponse, error) {
	pager := cli.Pager(req, cfg.PageSize)
	var out *api.QueryResponse
	var items []api.Item
	for pager.More() {
		t0 := time.Now()
		page, err := pager.Next(context.Background())
		latMS := float64(time.Since(t0).Nanoseconds()) / 1e6
		if err != nil {
			return nil, err
		}
		st.latenciesMS = append(st.latenciesMS, latMS)
		resp := pager.Last()
		if out == nil {
			out = resp
		} else if resp.Expr != out.Expr || resp.TotalItems != out.TotalItems ||
			!reflect.DeepEqual(resp.Watermarks, out.Watermarks) {
			return nil, fmt.Errorf("paged read drifted between pages (expr, total, or pinned watermarks changed)")
		}
		items = append(items, page...)
	}
	if out == nil {
		return nil, fmt.Errorf("paged read yielded no pages")
	}
	if len(items) != out.TotalItems {
		return nil, fmt.Errorf("pages yielded %d items, server reported %d", len(items), out.TotalItems)
	}
	assembled := *out
	assembled.Items = items
	assembled.Cursor = ""
	return &assembled, nil
}

// record classifies one exchange's error outcome (nil err = proceed with
// the OK accounting) and reports whether the response was successful.
func (st *clientState) record(cfg *Config, err error) bool {
	if err == nil {
		return true
	}
	if apiErr, ok := err.(*api.Error); ok {
		switch {
		case apiErr.Code == api.CodeOverloaded:
			st.rejected++
		case cfg.AcceptDraining && apiErr.Code == api.CodeDraining:
			st.draining++
			drainBackoff()
		case cfg.AcceptOutage && (apiErr.Code == api.CodeShardDown ||
			apiErr.Code == api.CodeUnavailable || apiErr.Code == api.CodeNotReady):
			st.outage++
			drainBackoff()
		default:
			st.unexpected[apiErr.HTTPStatus()]++
		}
		return false
	}
	st.netErrors++
	if len(st.errSamples) < 3 {
		st.errSamples = append(st.errSamples, err.Error())
	}
	return false
}

// drainBackoff pauses a closed-loop client after a draining rejection:
// a real client backs off a shard being restarted rather than hammering
// the immediate rejection path at millions of requests per second.
func drainBackoff() { time.Sleep(50 * time.Millisecond) }

// percentile returns the p-th percentile (0..1) of sorted values using
// nearest-rank, 0 when empty.
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(p*float64(len(sorted))+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

// ---- legacy-shim traffic ----
//
// The generator decodes the deprecated wire formats with local mirror
// structs rather than importing the server, the way a not-yet-migrated
// external client would, then converts them to the v1 shape so one
// verifier covers both surfaces.

// legacyQueryResponse mirrors the legacy GET /query payload.
type legacyQueryResponse struct {
	Class       string                       `json:"class"`
	Streams     map[string]*api.StreamResult `json:"streams"`
	TotalFrames int                          `json:"total_frames"`
	Kx          int                          `json:"kx"`
	Start       float64                      `json:"start"`
	End         float64                      `json:"end"`
	MaxClusters int                          `json:"max_clusters"`
	LatencyMS   float64                      `json:"latency_ms"`
	GPUTimeMS   float64                      `json:"gpu_time_ms"`
	Cached      bool                         `json:"cached"`
}

// legacyPlanResponse mirrors the legacy POST /plan payload.
type legacyPlanResponse struct {
	Expr         string             `json:"expr"`
	Items        []api.Item         `json:"items"`
	TotalItems   int                `json:"total_items"`
	Watermarks   map[string]float64 `json:"watermarks"`
	TopK         int                `json:"top_k"`
	Kx           int                `json:"kx"`
	Start        float64            `json:"start"`
	End          float64            `json:"end"`
	MaxClusters  int                `json:"max_clusters"`
	GTInferences int                `json:"gt_inferences"`
	GPUTimeMS    float64            `json:"gpu_time_ms"`
	LatencyMS    float64            `json:"latency_ms"`
	Cached       bool               `json:"cached"`
}

// legacyError adapts a legacy non-2xx response (string error body, status
// code, draining marker header) into the structured *api.Error the record
// path classifies.
func legacyError(resp *http.Response, body []byte) *api.Error {
	var e struct {
		Error string `json:"error"`
	}
	_ = json.Unmarshal(body, &e)
	if resp.StatusCode == http.StatusServiceUnavailable && resp.Header.Get("X-Focus-Draining") != "" {
		err := api.Errorf(api.CodeDraining, "%s", e.Error)
		err.Shard = resp.Header.Get("X-Focus-Draining")
		return err
	}
	return api.DecodeError(resp.StatusCode, body)
}

func legacyQuery(httpc *http.Client, baseURL string, req *api.QueryRequest) (*api.QueryResponse, error) {
	url := baseURL + "/query?class=" + req.Expr
	if len(req.Streams) > 0 {
		url += "&streams=" + req.Streams[0]
	}
	resp, err := httpc.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		return nil, err
	}
	if resp.StatusCode < 200 || resp.StatusCode >= 300 {
		return nil, legacyError(resp, buf.Bytes())
	}
	var lr legacyQueryResponse
	if err := json.Unmarshal(buf.Bytes(), &lr); err != nil {
		return nil, fmt.Errorf("bad legacy /query body: %w", err)
	}
	out := &api.QueryResponse{
		Expr:        lr.Class,
		Form:        api.FormFrames,
		Watermarks:  make(api.WatermarkVector, len(lr.Streams)),
		Streams:     lr.Streams,
		TotalFrames: lr.TotalFrames,
		Kx:          lr.Kx,
		Start:       lr.Start,
		End:         lr.End,
		MaxClusters: lr.MaxClusters,
		GPUTimeMS:   lr.GPUTimeMS,
		LatencyMS:   lr.LatencyMS,
		Cached:      lr.Cached,
	}
	for name, sr := range lr.Streams {
		out.Watermarks[name] = sr.Watermark
		out.GTInferences += sr.GTInferences
	}
	return out, nil
}

func legacyPlan(httpc *http.Client, baseURL string, req *api.QueryRequest) (*api.QueryResponse, error) {
	body, _ := json.Marshal(map[string]any{"expr": req.Expr, "top_k": req.TopK})
	resp, err := httpc.Post(baseURL+"/plan", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		return nil, err
	}
	if resp.StatusCode < 200 || resp.StatusCode >= 300 {
		return nil, legacyError(resp, buf.Bytes())
	}
	var lr legacyPlanResponse
	if err := json.Unmarshal(buf.Bytes(), &lr); err != nil {
		return nil, fmt.Errorf("bad legacy /plan body: %w", err)
	}
	return &api.QueryResponse{
		Expr:         lr.Expr,
		Form:         api.FormRanked,
		Watermarks:   lr.Watermarks,
		Items:        lr.Items,
		TotalItems:   lr.TotalItems,
		TopK:         lr.TopK,
		Kx:           lr.Kx,
		Start:        lr.Start,
		End:          lr.End,
		MaxClusters:  lr.MaxClusters,
		GTInferences: lr.GTInferences,
		GPUTimeMS:    lr.GPUTimeMS,
		LatencyMS:    lr.LatencyMS,
		Cached:       lr.Cached,
	}, nil
}
