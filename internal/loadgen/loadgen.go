// Package loadgen is a deterministic closed-loop load generator for the
// focus-serve HTTP service — or for a focus-router fronting several serve
// shards, whose wire format is identical: N client goroutines issue
// back-to-back /query
// requests with Zipf-skewed class popularity (mirroring the skewed query
// interest the paper's streams exhibit, §2.2) — optionally mixed with
// compound POST /plan requests drawn from a predicate pool — recording
// throughput, a latency histogram, and per-status counts. Optional
// verifiers re-execute sampled responses (plain and plan) directly against
// the owning focus.System at the exact watermark vector the service
// answered at, asserting the served result is identical — the serving
// stack (transport, cache, admission) must never change an answer.
//
// "Closed loop" means each client waits for its response before issuing the
// next request, so offered load adapts to service capacity; client request
// sequences are pure functions of (seed, client index).
package loadgen

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"focus/internal/simrand"
)

// QueryResponse mirrors serve.QueryResponse; loadgen decodes the service's
// JSON wire format rather than importing the server, the way an external
// client would.
type QueryResponse struct {
	Class       string                        `json:"class"`
	Streams     map[string]*StreamQueryResult `json:"streams"`
	TotalFrames int                           `json:"total_frames"`
	Kx          int                           `json:"kx,omitempty"`
	Start       float64                       `json:"start,omitempty"`
	End         float64                       `json:"end,omitempty"`
	MaxClusters int                           `json:"max_clusters,omitempty"`
	LatencyMS   float64                       `json:"latency_ms"`
	GPUTimeMS   float64                       `json:"gpu_time_ms"`
	Cached      bool                          `json:"cached"`
}

// StreamQueryResult mirrors serve.StreamQueryResult.
type StreamQueryResult struct {
	Watermark        float64 `json:"watermark"`
	Frames           []int64 `json:"frames"`
	Segments         []int64 `json:"segments"`
	ExaminedClusters int     `json:"examined_clusters"`
	MatchedClusters  int     `json:"matched_clusters"`
	GTInferences     int     `json:"gt_inferences"`
	GPUTimeMS        float64 `json:"gpu_time_ms"`
	LatencyMS        float64 `json:"latency_ms"`
	ViaOther         bool    `json:"via_other"`
}

// PlanResponse mirrors serve.PlanResponse (the POST /plan wire format).
type PlanResponse struct {
	Expr         string             `json:"expr"`
	Items        []PlanItem         `json:"items"`
	TotalItems   int                `json:"total_items"`
	Watermarks   map[string]float64 `json:"watermarks"`
	TopK         int                `json:"top_k,omitempty"`
	Kx           int                `json:"kx,omitempty"`
	Start        float64            `json:"start,omitempty"`
	End          float64            `json:"end,omitempty"`
	MaxClusters  int                `json:"max_clusters,omitempty"`
	GTInferences int                `json:"gt_inferences"`
	GPUTimeMS    float64            `json:"gpu_time_ms"`
	LatencyMS    float64            `json:"latency_ms"`
	Cached       bool               `json:"cached"`
}

// PlanItem mirrors serve.PlanItem.
type PlanItem struct {
	Stream  string  `json:"stream"`
	Frame   int64   `json:"frame"`
	TimeSec float64 `json:"time_sec"`
	Segment int64   `json:"segment"`
	Score   float64 `json:"score"`
}

// Config parameterizes one load-generation run.
type Config struct {
	// BaseURL is the service root, e.g. "http://127.0.0.1:7070".
	BaseURL string
	// Clients is the number of concurrent closed-loop clients. Default 16.
	Clients int
	// Duration is the wall-clock run length. Default 10s.
	Duration time.Duration
	// MaxRequestsPerClient additionally caps each client's request count;
	// 0 means duration-bound only.
	MaxRequestsPerClient int
	// Seed drives every client's deterministic request sequence. Default 1.
	Seed uint64
	// Classes is the queryable class-name pool in popularity order; clients
	// draw from it Zipf(ZipfAlpha)-skewed, so a few popular classes draw
	// most of the traffic (and exercise the result cache).
	Classes []string
	// Streams is the stream-name pool for single-stream queries; required
	// when SingleStreamEvery is set.
	Streams []string
	// SingleStreamEvery makes every Nth plain query per client target one
	// deterministically drawn stream from Streams instead of the whole
	// corpus (0 = always whole-corpus). Against a sharded router this is
	// what keeps exercising healthy shards while another shard drains —
	// whole-corpus requests all fail once any shard leaves rotation.
	SingleStreamEvery int
	// AcceptDraining counts 503s carrying the X-Focus-Draining marker as
	// expected (Report.Draining) instead of failures. Set it only when the
	// run deliberately drains a shard; in a steady-state run a draining
	// 503 is as wrong as any other 5xx.
	AcceptDraining bool
	// ZipfAlpha is the popularity skew. Default 1.1.
	ZipfAlpha float64
	// VerifyEvery verifies every Nth response per client through Verifier
	// (1 = every response, 0 = never).
	VerifyEvery int
	// Verifier checks one served response; non-nil errors are recorded as
	// mismatches. See focus-loadgen for the served-vs-direct verifier.
	Verifier func(*QueryResponse) error
	// Plans is a pool of compound predicate expressions ("car & person &
	// !bus") issued as POST /plan requests, mixed into the plain query
	// stream.
	Plans []string
	// PlanEvery makes every Nth request per client a /plan request drawn
	// deterministically from Plans (0 = plans never issued).
	PlanEvery int
	// PlanTopK is the top_k for plan requests. Default 10.
	PlanTopK int
	// PlanVerifier checks one served plan response; non-nil errors are
	// recorded as mismatches. See NewDirectPlanVerifier.
	PlanVerifier func(*PlanResponse) error
	// Timeout bounds each request. Default 30s.
	Timeout time.Duration
}

func (c *Config) applyDefaults() error {
	if c.BaseURL == "" {
		return fmt.Errorf("loadgen: BaseURL is required")
	}
	if len(c.Classes) == 0 {
		return fmt.Errorf("loadgen: at least one class is required")
	}
	if c.Clients <= 0 {
		c.Clients = 16
	}
	if c.Duration <= 0 {
		c.Duration = 10 * time.Second
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.ZipfAlpha <= 0 {
		c.ZipfAlpha = 1.1
	}
	if c.Timeout <= 0 {
		c.Timeout = 30 * time.Second
	}
	if c.PlanTopK <= 0 {
		c.PlanTopK = 10
	}
	if c.PlanEvery > 0 && len(c.Plans) == 0 {
		return fmt.Errorf("loadgen: PlanEvery set but no Plans given")
	}
	if len(c.Plans) > 0 && c.PlanEvery <= 0 {
		// Symmetric check: a plan pool that never fires means the /plan
		// path silently stops being exercised while looking configured.
		return fmt.Errorf("loadgen: Plans given but PlanEvery is 0 — no plan would ever be issued")
	}
	if c.SingleStreamEvery > 0 && len(c.Streams) == 0 {
		return fmt.Errorf("loadgen: SingleStreamEvery set but no Streams given")
	}
	return nil
}

// Report aggregates one run.
type Report struct {
	Clients    int     `json:"clients"`
	ElapsedSec float64 `json:"elapsed_sec"`
	Requests   int     `json:"requests"`
	// OK counts 2xx responses; Rejected counts 429s (admission control
	// doing its job under overload — not a failure); Draining counts 503s
	// carrying the X-Focus-Draining marker when Config.AcceptDraining
	// opted into them (a shard deliberately rolled out of rotation — never
	// silent data loss, since routed queries are all-or-nothing); without
	// the opt-in they land in Unexpected, which counts everything else by
	// status code and fails the run.
	OK         int         `json:"ok"`
	Rejected   int         `json:"rejected"`
	Draining   int         `json:"draining"`
	Unexpected map[int]int `json:"unexpected,omitempty"`
	NetErrors  int         `json:"net_errors"`
	CacheHits  int         `json:"cache_hits"`
	Verified   int         `json:"verified"`
	// PlanRequests counts the POST /plan share of Requests; PlanVerified
	// counts plan responses re-executed through PlanVerifier.
	PlanRequests int      `json:"plan_requests"`
	PlanVerified int      `json:"plan_verified"`
	Mismatches   []string `json:"mismatches,omitempty"`
	// Latency percentiles over successful (2xx) responses, milliseconds.
	P50MS float64 `json:"p50_ms"`
	P90MS float64 `json:"p90_ms"`
	P99MS float64 `json:"p99_ms"`
	MaxMS float64 `json:"max_ms"`
	// ThroughputRPS counts completed requests (any status) per second.
	ThroughputRPS float64 `json:"throughput_rps"`
	// ErrorSamples holds a few representative transport errors.
	ErrorSamples []string `json:"error_samples,omitempty"`
}

// Failures returns the reasons this run should fail a CI gate: any
// non-2xx/429 response, any transport error, or any verification mismatch.
// p99 budgets are the caller's to assert (they are deployment-specific).
func (r *Report) Failures() []string {
	var out []string
	for status, n := range r.Unexpected {
		out = append(out, fmt.Sprintf("%d responses with unexpected status %d", n, status))
	}
	if r.NetErrors > 0 {
		out = append(out, fmt.Sprintf("%d transport errors (samples: %v)", r.NetErrors, r.ErrorSamples))
	}
	for _, m := range r.Mismatches {
		out = append(out, "served-vs-direct mismatch: "+m)
	}
	sort.Strings(out)
	return out
}

// clientState accumulates one client's observations; merged after the run.
type clientState struct {
	latenciesMS []float64
	requests    int
	ok          int // all 2xx responses, plain and plan
	rejected    int
	draining    int
	unexpected  map[int]int
	netErrors   int
	cacheHits   int
	// plainOK/planOK drive the verification cadences independently, so
	// mixing plan traffic in never changes which plain responses the
	// "verify every Nth OK" sampling picks.
	plainOK      int
	verified     int
	planRequests int
	planOK       int
	planVerified int
	mismatches   []string
	errSamples   []string
}

// Run executes the load generation and blocks until every client finishes.
func Run(cfg Config) (*Report, error) {
	if err := cfg.applyDefaults(); err != nil {
		return nil, err
	}
	zipf := simrand.NewZipf(len(cfg.Classes), cfg.ZipfAlpha)
	transport := &http.Transport{
		MaxIdleConns:        cfg.Clients * 2,
		MaxIdleConnsPerHost: cfg.Clients * 2,
	}
	httpc := &http.Client{Transport: transport, Timeout: cfg.Timeout}
	defer transport.CloseIdleConnections()

	deadline := time.Now().Add(cfg.Duration)
	states := make([]*clientState, cfg.Clients)
	var wg sync.WaitGroup
	t0 := time.Now()
	for i := 0; i < cfg.Clients; i++ {
		states[i] = &clientState{unexpected: make(map[int]int)}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			runClient(&cfg, i, zipf, httpc, deadline, states[i])
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(t0)

	rep := &Report{Clients: cfg.Clients, ElapsedSec: elapsed.Seconds(), Unexpected: make(map[int]int)}
	var lat []float64
	for _, st := range states {
		rep.Requests += st.requests
		rep.OK += st.ok
		rep.Rejected += st.rejected
		rep.Draining += st.draining
		rep.NetErrors += st.netErrors
		rep.CacheHits += st.cacheHits
		rep.Verified += st.verified
		rep.PlanRequests += st.planRequests
		rep.PlanVerified += st.planVerified
		for code, n := range st.unexpected {
			rep.Unexpected[code] += n
		}
		for _, m := range st.mismatches {
			if len(rep.Mismatches) < 20 {
				rep.Mismatches = append(rep.Mismatches, m)
			}
		}
		for _, e := range st.errSamples {
			if len(rep.ErrorSamples) < 5 {
				rep.ErrorSamples = append(rep.ErrorSamples, e)
			}
		}
		lat = append(lat, st.latenciesMS...)
	}
	if len(rep.Unexpected) == 0 {
		rep.Unexpected = nil
	}
	sort.Float64s(lat)
	rep.P50MS = percentile(lat, 0.50)
	rep.P90MS = percentile(lat, 0.90)
	rep.P99MS = percentile(lat, 0.99)
	if n := len(lat); n > 0 {
		rep.MaxMS = lat[n-1]
	}
	if elapsed > 0 {
		rep.ThroughputRPS = float64(rep.Requests) / elapsed.Seconds()
	}
	return rep, nil
}

// runClient is one closed loop: draw a class (or, every PlanEvery-th
// request, a compound plan), query, record, repeat.
func runClient(cfg *Config, idx int, zipf *simrand.Zipf, httpc *http.Client, deadline time.Time, st *clientState) {
	src := simrand.New(cfg.Seed).DeriveN(int64(idx), "loadgen-client")
	for time.Now().Before(deadline) {
		if cfg.MaxRequestsPerClient > 0 && st.requests >= cfg.MaxRequestsPerClient {
			return
		}
		st.requests++
		if cfg.PlanEvery > 0 && st.requests%cfg.PlanEvery == 0 {
			runPlanRequest(cfg, idx, src, httpc, st)
			continue
		}
		class := cfg.Classes[zipf.Sample(src)]
		url := cfg.BaseURL + "/query?class=" + class
		if cfg.SingleStreamEvery > 0 && st.requests%cfg.SingleStreamEvery == 0 {
			url += "&streams=" + cfg.Streams[src.Intn(len(cfg.Streams))]
		}
		t0 := time.Now()
		resp, err := httpc.Get(url)
		if err != nil {
			st.netErrors++
			if len(st.errSamples) < 3 {
				st.errSamples = append(st.errSamples, err.Error())
			}
			continue
		}
		var qr QueryResponse
		decodeErr := json.NewDecoder(resp.Body).Decode(&qr)
		resp.Body.Close()
		// Latency includes the body transfer and decode: what a real client
		// waits for. Measuring at header arrival would let a regression that
		// bloats response bodies slip past the p99 gate.
		latMS := float64(time.Since(t0).Nanoseconds()) / 1e6
		switch {
		case resp.StatusCode == http.StatusTooManyRequests:
			st.rejected++
		case cfg.AcceptDraining && isDraining(resp):
			st.draining++
			drainBackoff()
		case resp.StatusCode >= 200 && resp.StatusCode < 300:
			st.ok++
			st.plainOK++
			st.latenciesMS = append(st.latenciesMS, latMS)
			if decodeErr != nil {
				st.mismatches = append(st.mismatches,
					fmt.Sprintf("client %d: bad response body for class %q: %v", idx, class, decodeErr))
				continue
			}
			if qr.Cached {
				st.cacheHits++
			}
			if cfg.Verifier != nil && cfg.VerifyEvery > 0 && st.plainOK%cfg.VerifyEvery == 0 {
				st.verified++
				if err := cfg.Verifier(&qr); err != nil {
					st.mismatches = append(st.mismatches,
						fmt.Sprintf("client %d class %q: %v", idx, class, err))
				}
			}
		default:
			st.unexpected[resp.StatusCode]++
		}
	}
}

// runPlanRequest issues one POST /plan drawn deterministically from the
// plan pool and records it under the same status taxonomy as plain queries.
func runPlanRequest(cfg *Config, idx int, src *simrand.Source, httpc *http.Client, st *clientState) {
	expr := cfg.Plans[src.Intn(len(cfg.Plans))]
	body, _ := json.Marshal(map[string]any{"expr": expr, "top_k": cfg.PlanTopK})
	st.planRequests++
	t0 := time.Now()
	resp, err := httpc.Post(cfg.BaseURL+"/plan", "application/json", bytes.NewReader(body))
	if err != nil {
		st.netErrors++
		if len(st.errSamples) < 3 {
			st.errSamples = append(st.errSamples, err.Error())
		}
		return
	}
	var pr PlanResponse
	decodeErr := json.NewDecoder(resp.Body).Decode(&pr)
	resp.Body.Close()
	latMS := float64(time.Since(t0).Nanoseconds()) / 1e6
	switch {
	case resp.StatusCode == http.StatusTooManyRequests:
		st.rejected++
	case cfg.AcceptDraining && isDraining(resp):
		st.draining++
		drainBackoff()
	case resp.StatusCode >= 200 && resp.StatusCode < 300:
		st.ok++
		st.planOK++
		st.latenciesMS = append(st.latenciesMS, latMS)
		if decodeErr != nil {
			st.mismatches = append(st.mismatches,
				fmt.Sprintf("client %d: bad plan response body for %q: %v", idx, expr, decodeErr))
			return
		}
		if pr.Cached {
			st.cacheHits++
		}
		if cfg.PlanVerifier != nil && cfg.VerifyEvery > 0 && st.planOK%cfg.VerifyEvery == 0 {
			st.planVerified++
			if err := cfg.PlanVerifier(&pr); err != nil {
				st.mismatches = append(st.mismatches,
					fmt.Sprintf("client %d plan %q: %v", idx, expr, err))
			}
		}
	default:
		st.unexpected[resp.StatusCode]++
	}
}

// isDraining recognizes the 503s a draining shard (or the router, on its
// behalf) marks with the X-Focus-Draining header — the one 5xx that means
// "rolling restart in progress", not "broken". The header name mirrors
// serve.DrainingHeader; loadgen decodes the wire format instead of
// importing the server, the way an external client would.
func isDraining(resp *http.Response) bool {
	return resp.StatusCode == http.StatusServiceUnavailable &&
		resp.Header.Get("X-Focus-Draining") != ""
}

// drainBackoff pauses a closed-loop client after a draining rejection:
// a real client backs off a shard being restarted rather than hammering
// the immediate 503 path at millions of requests per second.
func drainBackoff() { time.Sleep(50 * time.Millisecond) }

// percentile returns the p-th percentile (0..1) of sorted values using
// nearest-rank, 0 when empty.
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(p*float64(len(sorted))+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}
