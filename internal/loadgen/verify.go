package loadgen

import (
	"fmt"
	"sort"

	"focus"
)

// NewDirectVerifier returns a Verifier that replays a served response as a
// direct library call — focus.System.Query pinned to the exact watermark
// vector the service answered at — and asserts the served answer is
// identical: same frames, same segments, same cluster counts, per stream.
//
// Only answer fields are compared. Cost counters (GTInferences, GPU time,
// latency) legitimately differ between executions of the same query: the
// GT-CNN verdict cache makes later executions cheaper without changing
// answers (§6.7), and a cached service response reports the cost of its
// original execution.
func NewDirectVerifier(sys *focus.System) func(*QueryResponse) error {
	return func(qr *QueryResponse) error {
		names := make([]string, 0, len(qr.Streams))
		vector := make(map[string]float64, len(qr.Streams))
		for name, sr := range qr.Streams {
			names = append(names, name)
			vector[name] = sr.Watermark
		}
		sort.Strings(names)
		res, err := sys.Query(focus.Query{
			Class:        qr.Class,
			Streams:      names,
			AtWatermarks: vector,
		})
		if err != nil {
			return fmt.Errorf("direct query: %w", err)
		}
		if res.TotalFrames != qr.TotalFrames {
			return fmt.Errorf("total frames: served %d, direct %d", qr.TotalFrames, res.TotalFrames)
		}
		for name, served := range qr.Streams {
			direct := res.PerStream[name]
			if direct == nil {
				return fmt.Errorf("stream %s: missing from direct result", name)
			}
			if err := compareStream(name, served, direct); err != nil {
				return err
			}
		}
		return nil
	}
}

func compareStream(name string, served *StreamQueryResult, direct *focus.StreamResult) error {
	if served.ExaminedClusters != direct.ExaminedClusters {
		return fmt.Errorf("stream %s: examined clusters served %d, direct %d",
			name, served.ExaminedClusters, direct.ExaminedClusters)
	}
	if served.MatchedClusters != direct.MatchedClusters {
		return fmt.Errorf("stream %s: matched clusters served %d, direct %d",
			name, served.MatchedClusters, direct.MatchedClusters)
	}
	if served.ViaOther != direct.ViaOther {
		return fmt.Errorf("stream %s: via-other served %v, direct %v",
			name, served.ViaOther, direct.ViaOther)
	}
	if len(served.Frames) != len(direct.Frames) {
		return fmt.Errorf("stream %s: %d frames served, %d direct",
			name, len(served.Frames), len(direct.Frames))
	}
	for i := range served.Frames {
		if served.Frames[i] != int64(direct.Frames[i]) {
			return fmt.Errorf("stream %s: frame[%d] served %d, direct %d",
				name, i, served.Frames[i], direct.Frames[i])
		}
	}
	if len(served.Segments) != len(direct.Segments) {
		return fmt.Errorf("stream %s: %d segments served, %d direct",
			name, len(served.Segments), len(direct.Segments))
	}
	for i := range served.Segments {
		if served.Segments[i] != int64(direct.Segments[i]) {
			return fmt.Errorf("stream %s: segment[%d] served %d, direct %d",
				name, i, served.Segments[i], direct.Segments[i])
		}
	}
	return nil
}
