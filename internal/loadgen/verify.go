package loadgen

import (
	"fmt"
	"sort"

	"focus"
	"focus/api"
)

// NewDirectVerifier returns a verifier for frames-form responses: it
// replays a served response as a direct library call — focus.System.Query
// pinned to the exact watermark vector and leaf options the service
// answered with (the response echoes both back; its canonical one-leaf
// Expr is the class name) — and asserts the served answer is identical:
// same frames, same segments, same cluster counts, per stream. It
// verifies single-node focus-serve responses and router-merged responses
// alike: either way the served answer must equal one direct execution
// over all its streams.
//
// Only answer fields are compared. Cost counters (GTInferences, GPU time,
// latency) legitimately differ between executions of the same query: the
// GT-CNN verdict cache makes later executions cheaper without changing
// answers (§6.7), and a cached service response reports the cost of its
// original execution.
func NewDirectVerifier(sys *focus.System) func(*api.QueryResponse) error {
	return func(qr *api.QueryResponse) error {
		if qr.Form != api.FormFrames {
			return fmt.Errorf("frames verifier got a %q-form response", qr.Form)
		}
		names := vectorStreams(qr.Watermarks)
		res, err := sys.Query(focus.Query{
			Class:   qr.Expr,
			Streams: names,
			Options: focus.QueryOptions{
				Kx:          qr.Kx,
				StartSec:    qr.Start,
				EndSec:      qr.End,
				MaxClusters: qr.MaxClusters,
			},
			AtWatermarks: qr.Watermarks,
		})
		if err != nil {
			return fmt.Errorf("direct query: %w", err)
		}
		if res.TotalFrames != qr.TotalFrames {
			return fmt.Errorf("total frames: served %d, direct %d", qr.TotalFrames, res.TotalFrames)
		}
		if len(qr.Streams) != len(res.PerStream) {
			return fmt.Errorf("streams: served %d, direct %d", len(qr.Streams), len(res.PerStream))
		}
		for name, served := range qr.Streams {
			direct := res.PerStream[name]
			if direct == nil {
				return fmt.Errorf("stream %s: missing from direct result", name)
			}
			if err := compareStream(name, served, direct); err != nil {
				return err
			}
		}
		return nil
	}
}

// NewDirectPlanVerifier returns a verifier for ranked-form responses: it
// replays the served response as a direct library call —
// focus.System.PlanQuery pinned to the exact watermark vector, TopK and
// leaf options the service answered with — and asserts the served ranking
// is identical, item for item: same streams, frames, segments, timestamps
// and scores in the same order. The served Expr is the plan's canonical
// form, which re-parses to the same plan. Responses must be unpaged (or
// reassembled from all pages, e.g. by client.CollectPages — which is
// exactly how the paged-equals-one-shot invariant is pinned end to end).
//
// Early-exit responses (Mode == api.ModeEarlyExit) are replayed with the
// same mode: on a single node, early-exit execution is a deterministic
// pure function of (plan, options, watermark vector), so the served answer
// must still match a direct replay item for item. Responses served by a
// router are the exception — each shard runs its own sampler, so the
// merged early-exit answer matches no single-node execution; verify those
// with NewSubsetPlanVerifier instead.
//
// Cost counters (GTInferences, GPU time, latency) are not compared: the
// shared GT-verdict cache makes later executions cheaper without changing
// answers, and a cached response reports its original execution's cost.
func NewDirectPlanVerifier(sys *focus.System) func(*api.QueryResponse) error {
	return func(pr *api.QueryResponse) error {
		if pr.Form != api.FormRanked {
			return fmt.Errorf("ranked verifier got a %q-form response", pr.Form)
		}
		res, err := sys.PlanQuery(pr.Expr, focus.PlanOptions{
			Streams: vectorStreams(pr.Watermarks),
			TopK:    pr.TopK,
			Leaf: focus.QueryOptions{
				Kx:          pr.Kx,
				StartSec:    pr.Start,
				EndSec:      pr.End,
				MaxClusters: pr.MaxClusters,
			},
			AtWatermarks: pr.Watermarks,
			EarlyExit:    pr.Mode == api.ModeEarlyExit,
		})
		if err != nil {
			return fmt.Errorf("direct plan query: %w", err)
		}
		if len(res.Items) != pr.TotalItems {
			return fmt.Errorf("total items: served %d, direct %d", pr.TotalItems, len(res.Items))
		}
		if len(pr.Items) != len(res.Items) {
			return fmt.Errorf("items: served %d, direct %d (responses must carry all items to verify)",
				len(pr.Items), len(res.Items))
		}
		for i, it := range pr.Items {
			d := res.Items[i]
			if it.Stream != d.Stream || it.Frame != int64(d.Frame) ||
				it.Segment != int64(d.Segment) || it.TimeSec != d.TimeSec || it.Score != d.Score {
				return fmt.Errorf("item %d: served %+v, direct {%s %d %g %d %g}",
					i, it, d.Stream, d.Frame, d.TimeSec, d.Segment, d.Score)
			}
		}
		return nil
	}
}

// NewSubsetPlanVerifier returns a verifier for early-exit ranked
// responses that cannot be replayed exactly — router-merged answers,
// where each shard ran its own sampler over its own streams and no
// single-node execution reproduces the merge. It pins the part of the
// early-exit contract that survives distribution: every served item must
// be a genuinely verified result, i.e. it must appear in the exhaustive
// exact ranking (TopK=0 replays every matching frame) with a
// bit-identical score, the served order must respect the exact-mode
// comparator, and no more than TopK items may be served. Exact-mode
// responses are dispatched to the strict verifier, so this can serve as
// the single PlanVerifier for mixed-mode routed traffic.
func NewSubsetPlanVerifier(sys *focus.System) func(*api.QueryResponse) error {
	strict := NewDirectPlanVerifier(sys)
	return func(pr *api.QueryResponse) error {
		if pr.Form != api.FormRanked {
			return fmt.Errorf("ranked verifier got a %q-form response", pr.Form)
		}
		if pr.Mode != api.ModeEarlyExit {
			return strict(pr)
		}
		if pr.TopK >= 1 && len(pr.Items) > pr.TopK {
			return fmt.Errorf("early exit: served %d items, cap %d", len(pr.Items), pr.TopK)
		}
		res, err := sys.PlanQuery(pr.Expr, focus.PlanOptions{
			Streams: vectorStreams(pr.Watermarks),
			TopK:    0,
			Leaf: focus.QueryOptions{
				Kx:          pr.Kx,
				StartSec:    pr.Start,
				EndSec:      pr.End,
				MaxClusters: pr.MaxClusters,
			},
			AtWatermarks: pr.Watermarks,
		})
		if err != nil {
			return fmt.Errorf("direct plan query: %w", err)
		}
		type key struct {
			stream string
			frame  int64
		}
		exact := make(map[key]api.Item, len(res.Items))
		for _, d := range res.Items {
			exact[key{d.Stream, int64(d.Frame)}] = api.Item{
				Stream:  d.Stream,
				Frame:   int64(d.Frame),
				TimeSec: d.TimeSec,
				Segment: int64(d.Segment),
				Score:   d.Score,
			}
		}
		for i, it := range pr.Items {
			d, ok := exact[key{it.Stream, it.Frame}]
			if !ok {
				return fmt.Errorf("item %d: served %+v not in the exact ranking", i, it)
			}
			if it != d {
				return fmt.Errorf("item %d: served %+v, exact %+v", i, it, d)
			}
			if i > 0 {
				prev := pr.Items[i-1]
				if it.Score > prev.Score ||
					(it.Score == prev.Score && it.Stream < prev.Stream) ||
					(it.Score == prev.Score && it.Stream == prev.Stream && it.Frame < prev.Frame) {
					return fmt.Errorf("item %d: served out of rank order after item %d", i, i-1)
				}
			}
		}
		return nil
	}
}

// NewDirectTrackVerifier returns a verifier for tracks-form responses:
// it replays the served response as a direct library call —
// focus.System.TrackQuery pinned to the exact watermark vector, TopK and
// leaf options the service answered with — and asserts the served track
// ranking is identical, track for track: same streams, track IDs,
// objects, frame and time bounds, sighting counts and scores in the same
// order. The served Expr is the temporal plan's canonical form, which
// re-parses to the same plan. Responses must be unpaged (or reassembled
// from all pages, e.g. by client.CollectTrackPages).
//
// Cost counters (GTInferences, GPU time, latency) are not compared, for
// the same reason as the other verifiers: the shared GT-verdict cache
// makes later executions cheaper without changing answers.
func NewDirectTrackVerifier(sys *focus.System) func(*api.QueryResponse) error {
	return func(tr *api.QueryResponse) error {
		if tr.Form != api.FormTracks {
			return fmt.Errorf("tracks verifier got a %q-form response", tr.Form)
		}
		res, err := sys.TrackQuery(tr.Expr, focus.TrackOptions{
			Streams: vectorStreams(tr.Watermarks),
			TopK:    tr.TopK,
			Leaf: focus.QueryOptions{
				Kx:          tr.Kx,
				StartSec:    tr.Start,
				EndSec:      tr.End,
				MaxClusters: tr.MaxClusters,
			},
			AtWatermarks: tr.Watermarks,
		})
		if err != nil {
			return fmt.Errorf("direct track query: %w", err)
		}
		if len(res.Items) != tr.TotalItems {
			return fmt.Errorf("total tracks: served %d, direct %d", tr.TotalItems, len(res.Items))
		}
		if len(tr.Tracks) != len(res.Items) {
			return fmt.Errorf("tracks: served %d, direct %d (responses must carry all tracks to verify)",
				len(tr.Tracks), len(res.Items))
		}
		for i, it := range tr.Tracks {
			d := res.Items[i]
			if it.Stream != d.Stream || it.Track != d.Track || it.Object != int64(d.Object) ||
				it.StartFrame != int64(d.StartFrame) || it.EndFrame != int64(d.EndFrame) ||
				it.StartSec != d.StartSec || it.EndSec != d.EndSec ||
				it.Sightings != d.Sightings || it.Score != d.Score {
				return fmt.Errorf("track %d: served %+v, direct %+v", i, it, d)
			}
		}
		return nil
	}
}

// DeltaVerifier checks one standing query's reassembled answer — the
// state obtained by applying every delivered delta in order from genesis
// — at the watermark vector the deltas were delivered through. See
// NewDeltaVerifier.
type DeltaVerifier func(hello *api.SubscribeHello, vector api.WatermarkVector,
	items []api.Item, tracks []api.TrackItem) error

// NewDeltaVerifier returns the verifier for subscription traffic: it
// packages the reassembled state as the one-shot response it claims to
// equal — the subscription's resolved options from the hello frame,
// pinned at the delivered vector — and replays it through the matching
// direct verifier. This is the delta contract end to end: concatenating
// every delta from genesis must reconstruct, bit for bit, the one-shot
// answer pinned at the last delta's To vector.
//
// Like the other verifiers it works for single-node responses and
// router-merged subscriptions alike — either way the reassembled answer
// must equal one direct execution over all subscribed streams. (Routed
// subscriptions are always exact and unbounded — the router refuses
// top_k and early-exit standing queries — so the strict replay applies.)
func NewDeltaVerifier(sys *focus.System) DeltaVerifier {
	planV := NewDirectPlanVerifier(sys)
	trackV := NewDirectTrackVerifier(sys)
	return func(hello *api.SubscribeHello, vector api.WatermarkVector,
		items []api.Item, tracks []api.TrackItem) error {
		qr := &api.QueryResponse{
			Expr:        hello.Expr,
			Form:        hello.Form,
			Watermarks:  vector,
			TopK:        hello.TopK,
			Kx:          hello.Kx,
			Start:       hello.Start,
			End:         hello.End,
			MaxClusters: hello.MaxClusters,
			Mode:        hello.Mode,
		}
		if hello.Form == api.FormTracks {
			qr.Tracks = tracks
			qr.TotalItems = len(tracks)
			return trackV(qr)
		}
		qr.Items = items
		qr.TotalItems = len(items)
		return planV(qr)
	}
}

// vectorStreams returns the vector's stream names, sorted.
func vectorStreams(v api.WatermarkVector) []string {
	names := make([]string, 0, len(v))
	for name := range v {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

func compareStream(name string, served *api.StreamResult, direct *focus.StreamResult) error {
	if served.ExaminedClusters != direct.ExaminedClusters {
		return fmt.Errorf("stream %s: examined clusters served %d, direct %d",
			name, served.ExaminedClusters, direct.ExaminedClusters)
	}
	if served.MatchedClusters != direct.MatchedClusters {
		return fmt.Errorf("stream %s: matched clusters served %d, direct %d",
			name, served.MatchedClusters, direct.MatchedClusters)
	}
	if served.ViaOther != direct.ViaOther {
		return fmt.Errorf("stream %s: via-other served %v, direct %v",
			name, served.ViaOther, direct.ViaOther)
	}
	if len(served.Frames) != len(direct.Frames) {
		return fmt.Errorf("stream %s: %d frames served, %d direct",
			name, len(served.Frames), len(direct.Frames))
	}
	for i := range served.Frames {
		if served.Frames[i] != int64(direct.Frames[i]) {
			return fmt.Errorf("stream %s: frame[%d] served %d, direct %d",
				name, i, served.Frames[i], direct.Frames[i])
		}
	}
	if len(served.Segments) != len(direct.Segments) {
		return fmt.Errorf("stream %s: %d segments served, %d direct",
			name, len(served.Segments), len(direct.Segments))
	}
	for i := range served.Segments {
		if served.Segments[i] != int64(direct.Segments[i]) {
			return fmt.Errorf("stream %s: segment[%d] served %d, direct %d",
				name, i, served.Segments[i], direct.Segments[i])
		}
	}
	return nil
}
