package vision

import (
	"math"
	"testing"
	"testing/quick"

	"focus/internal/simrand"
)

func testSpace() *Space { return NewSpace(1234) }

func TestSpaceDeterminism(t *testing.T) {
	a := NewSpace(99)
	b := NewSpace(99)
	for c := 0; c < NumClasses; c += 97 {
		pa, pb := a.Prototype(ClassID(c)), b.Prototype(ClassID(c))
		for d := range pa {
			if pa[d] != pb[d] {
				t.Fatalf("prototype %d differs between identical seeds", c)
			}
		}
	}
}

func TestSpaceNames(t *testing.T) {
	sp := testSpace()
	if sp.Name(0) != "car" {
		t.Errorf("class 0 = %q, want car", sp.Name(0))
	}
	if sp.Name(ClassOther) != "OTHER" {
		t.Errorf("ClassOther name = %q", sp.Name(ClassOther))
	}
	id, ok := sp.ClassByName("bus")
	if !ok || sp.Name(id) != "bus" {
		t.Errorf("ClassByName(bus) = %v, %v", id, ok)
	}
	if _, ok := sp.ClassByName("no_such_class_xyz"); ok {
		t.Error("unknown class resolved")
	}
	if other, ok := sp.ClassByName("OTHER"); !ok || other != ClassOther {
		t.Error("OTHER did not resolve to ClassOther")
	}
}

func TestPrototypesSeparated(t *testing.T) {
	sp := testSpace()
	// Random high-dimensional prototypes should be far apart relative to
	// instance noise: minimum pairwise distance must exceed 4 sigma of the
	// combined instance+sighting noise ball.
	minDist := math.Inf(1)
	for c := 0; c < 200; c++ {
		for o := c + 1; o < 200; o++ {
			d := L2Distance(sp.Prototype(ClassID(c)), sp.Prototype(ClassID(o)))
			if d < minDist {
				minDist = d
			}
		}
	}
	if minDist < 3.0 {
		t.Errorf("minimum prototype separation %.2f too small for reliable clustering", minDist)
	}
}

func TestConfusionPools(t *testing.T) {
	sp := testSpace()
	for _, c := range []ClassID{0, 1, 500, 999} {
		pool := sp.Confusions(c)
		if len(pool) != confusionPoolSize {
			t.Fatalf("class %d pool size %d", c, len(pool))
		}
		seen := map[ClassID]bool{c: true}
		prev := -1.0
		for _, o := range pool {
			if seen[o] {
				t.Fatalf("class %d pool contains duplicate or self: %d", c, o)
			}
			seen[o] = true
			d := SquaredL2Distance(sp.Prototype(c), sp.Prototype(o))
			if prev >= 0 && d < prev {
				t.Fatalf("class %d pool not sorted by distance", c)
			}
			prev = d
		}
	}
}

func TestL2DistanceBasics(t *testing.T) {
	a := FeatureVec{0, 3}
	b := FeatureVec{4, 0}
	if d := L2Distance(a, b); math.Abs(d-5) > 1e-9 {
		t.Errorf("L2Distance = %v, want 5", d)
	}
	if d := SquaredL2Distance(a, b); math.Abs(d-25) > 1e-9 {
		t.Errorf("SquaredL2Distance = %v, want 25", d)
	}
	defer func() {
		if recover() == nil {
			t.Error("dimension mismatch did not panic")
		}
	}()
	L2Distance(FeatureVec{1}, FeatureVec{1, 2})
}

func TestModelCostAnchors(t *testing.T) {
	z := NewZoo()
	if math.Abs(z.GT.CostMS()-GTCostMS) > 1e-9 {
		t.Errorf("GT cost = %v, want %v", z.GT.CostMS(), GTCostMS)
	}
	checks := []struct {
		name     string
		min, max float64 // acceptable CheaperThanGT band
	}{
		{"resnet18", 6, 9},           // paper: ≈7×
		{"resnet18-l3-r112", 18, 45}, // paper: ≈28×
		{"resnet18-l5-r56", 40, 110}, // paper: ≈58×
	}
	for _, c := range checks {
		m := z.ByName(c.name)
		if m == nil {
			t.Fatalf("model %s missing from zoo", c.name)
		}
		f := m.CheaperThanGT()
		if f < c.min || f > c.max {
			t.Errorf("%s cheaper-than-GT = %.1f, want in [%v, %v]", c.name, f, c.min, c.max)
		}
	}
}

func TestZooOrderedByCost(t *testing.T) {
	z := NewZoo()
	for i := 1; i < len(z.Generic); i++ {
		if z.Generic[i].CostMS() > z.Generic[i-1].CostMS() {
			t.Fatalf("zoo not sorted by descending cost at %d", i)
		}
	}
	if z.ByName("resnet152") != z.GT {
		t.Error("ByName(resnet152) != GT")
	}
	if z.ByName("nonexistent") != nil {
		t.Error("ByName(nonexistent) != nil")
	}
}

func TestExpectedRecallAnchors(t *testing.T) {
	z := NewZoo()
	anchors := []struct {
		model string
		k     int
	}{
		{"resnet18", 60},
		{"resnet18-l3-r112", 100},
		{"resnet18-l5-r56", 200},
	}
	for _, a := range anchors {
		m := z.ByName(a.model)
		r := m.ExpectedRecallAtK(a.k)
		if r < 0.85 || r > 0.96 {
			t.Errorf("%s recall@%d = %.3f, want ≈0.90 (Figure 5 anchor)", a.model, a.k, r)
		}
		// Monotonicity in K.
		prev := 0.0
		for k := 1; k <= 400; k *= 2 {
			cur := m.ExpectedRecallAtK(k)
			if cur < prev {
				t.Errorf("%s recall not monotone at K=%d", a.model, k)
			}
			prev = cur
		}
		if m.ExpectedRecallAtK(NumClasses) != 1 {
			t.Errorf("%s recall at full vocabulary != 1", a.model)
		}
	}
	// Cheaper models need larger K for the same recall (Figure 5's second
	// observation).
	r18 := z.ByName("resnet18")
	r56 := z.ByName("resnet18-l5-r56")
	if r18.ExpectedRecallAtK(60) <= r56.ExpectedRecallAtK(60) {
		t.Error("cheaper model should have lower recall at equal K")
	}
}

func TestEmpiricalRecallMatchesAnalytic(t *testing.T) {
	sp := testSpace()
	z := NewZoo()
	m := z.ByName("resnet18")
	src := simrand.New(555)
	const n = 20000
	for _, k := range []int{1, 10, 60, 200} {
		hits := 0
		for i := 0; i < n; i++ {
			s := src.DeriveN(int64(i), "recall", m.Name)
			trueClass := ClassID(i % 50)
			app := sp.NewInstanceAppearance(trueClass, s)
			out := m.Classify(sp, trueClass, app, s, nil, k)
			if out.Contains(trueClass, k) {
				hits++
			}
		}
		got := float64(hits) / n
		want := m.ExpectedRecallAtK(k)
		if math.Abs(got-want) > 0.015 {
			t.Errorf("K=%d: empirical recall %.3f vs analytic %.3f", k, got, want)
		}
	}
}

func TestClassifyOutputInvariants(t *testing.T) {
	sp := testSpace()
	z := NewZoo()
	src := simrand.New(777)
	for _, m := range append([]*Model{z.GT}, z.Generic...) {
		for i := 0; i < 200; i++ {
			s := src.DeriveN(int64(i), "inv", m.Name)
			trueClass := ClassID(s.Intn(NumClasses))
			app := sp.NewInstanceAppearance(trueClass, s)
			out := m.Classify(sp, trueClass, app, s, nil, 50)
			if len(out.Ranked) != 50 {
				t.Fatalf("%s: ranked size %d", m.Name, len(out.Ranked))
			}
			seen := map[ClassID]bool{}
			for j, p := range out.Ranked {
				if seen[p.Class] {
					t.Fatalf("%s: duplicate class %d in ranking", m.Name, p.Class)
				}
				seen[p.Class] = true
				if j > 0 && p.Confidence >= out.Ranked[j-1].Confidence {
					t.Fatalf("%s: confidences not strictly descending at %d", m.Name, j)
				}
			}
			if out.TrueRank <= 50 {
				if out.Ranked[out.TrueRank-1].Class != trueClass {
					t.Fatalf("%s: true class not at its rank %d", m.Name, out.TrueRank)
				}
			} else if seen[trueClass] {
				t.Fatalf("%s: true class present despite rank %d > k", m.Name, out.TrueRank)
			}
			if len(out.Features) != FeatureDim {
				t.Fatalf("%s: feature dim %d", m.Name, len(out.Features))
			}
		}
	}
}

func TestClassifyDeterminism(t *testing.T) {
	sp := testSpace()
	m := NewZoo().ByName("resnet18")
	base := simrand.New(31)
	app := sp.NewInstanceAppearance(3, base.Derive("app"))
	a := m.Classify(sp, 3, app, base.DeriveN(7, "x"), nil, 40)
	b := m.Classify(sp, 3, app, base.DeriveN(7, "x"), nil, 40)
	if a.TrueRank != b.TrueRank {
		t.Fatal("TrueRank not deterministic")
	}
	for i := range a.Ranked {
		if a.Ranked[i] != b.Ranked[i] {
			t.Fatalf("ranking differs at %d", i)
		}
	}
	for i := range a.Features {
		if a.Features[i] != b.Features[i] {
			t.Fatalf("features differ at %d", i)
		}
	}
}

func TestNearestNeighborSameClass(t *testing.T) {
	// §2.2.3: using cheap-CNN feature vectors, the nearest neighbour of an
	// object belongs to the same class >99% of the time.
	sp := testSpace()
	m := NewZoo().ByName("resnet18")
	src := simrand.New(888)

	type obj struct {
		class ClassID
		feat  FeatureVec
	}
	var objs []obj
	// 40 classes, 25 objects each — a busy stream's worth of objects.
	for c := 0; c < 40; c++ {
		for i := 0; i < 25; i++ {
			s := src.DeriveN(int64(c*1000+i), "nn")
			app := sp.NewInstanceAppearance(ClassID(c), s)
			sight := sp.SightingAppearance(app, s)
			objs = append(objs, obj{ClassID(c), m.ExtractFeatures(sight, s)})
		}
	}
	same := 0
	for i := range objs {
		best := -1
		bestD := math.Inf(1)
		for j := range objs {
			if i == j {
				continue
			}
			d := SquaredL2Distance(objs[i].feat, objs[j].feat)
			if d < bestD {
				bestD = d
				best = j
			}
		}
		if objs[best].class == objs[i].class {
			same++
		}
	}
	frac := float64(same) / float64(len(objs))
	if frac < 0.99 {
		t.Errorf("nearest-neighbour same-class fraction = %.4f, want >= 0.99 (§2.2.3)", frac)
	}
}

func TestSelectTopClasses(t *testing.T) {
	hist := map[ClassID]int{1: 100, 2: 50, 3: 200, 4: 5, ClassOther: 999}
	got := SelectTopClasses(hist, 2)
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Errorf("SelectTopClasses = %v, want [1 3]", got)
	}
	if got := SelectTopClasses(hist, 10); len(got) != 4 {
		t.Errorf("oversized ls returned %d classes, want 4", len(got))
	}
	if got := SelectTopClasses(hist, 0); got != nil {
		t.Errorf("ls=0 returned %v", got)
	}
}

func TestSelectTopClassesTieBreak(t *testing.T) {
	hist := map[ClassID]int{9: 10, 4: 10, 7: 10}
	got := SelectTopClasses(hist, 2)
	if len(got) != 2 || got[0] != 4 || got[1] != 7 {
		t.Errorf("tie-break = %v, want [4 7]", got)
	}
}

func TestCoverageOfClasses(t *testing.T) {
	hist := map[ClassID]int{1: 60, 2: 30, 3: 10}
	if c := CoverageOfClasses(hist, []ClassID{1, 2}); math.Abs(c-0.9) > 1e-9 {
		t.Errorf("coverage = %v, want 0.9", c)
	}
	if c := CoverageOfClasses(map[ClassID]int{}, []ClassID{1}); c != 0 {
		t.Errorf("empty histogram coverage = %v", c)
	}
}

func TestTrainSpecialized(t *testing.T) {
	z := NewZoo()
	base := z.ByName("resnet18")
	classes := []ClassID{0, 2, 5, 9, 17}
	m, err := TrainSpecialized(base, SpecializeConfig{LayerKeepFrac: 0.67, InputRes: 56}, classes)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Specialized {
		t.Fatal("model not marked specialized")
	}
	if m.Vocabulary() != 5 {
		t.Errorf("vocabulary = %d", m.Vocabulary())
	}
	if !m.Recognizes(5) || m.Recognizes(6) {
		t.Error("Recognizes wrong")
	}
	// §4.3: specialized models are dramatically cheaper than GT and cheaper
	// than their generic base.
	if m.CheaperThanGT() < 40 {
		t.Errorf("specialized model only %.1f× cheaper than GT", m.CheaperThanGT())
	}
	if m.CostMS() >= base.CostMS() {
		t.Error("specialized model not cheaper than base")
	}
	// §4.3: small K suffices for specialized models.
	if r := m.ExpectedRecallAtK(2); r < 0.93 {
		t.Errorf("specialized recall@2 = %.3f, want >= 0.93", r)
	}
	if r := m.ExpectedRecallAtK(4); r < 0.96 {
		t.Errorf("specialized recall@4 = %.3f, want >= 0.96", r)
	}
}

func TestTrainSpecializedErrors(t *testing.T) {
	z := NewZoo()
	base := z.ByName("resnet18")
	spec, err := TrainSpecialized(base, DefaultSpecializations[0], []ClassID{1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := TrainSpecialized(spec, DefaultSpecializations[0], []ClassID{1}); err == nil {
		t.Error("re-specializing a specialized model should fail")
	}
	if _, err := TrainSpecialized(base, DefaultSpecializations[0], nil); err == nil {
		t.Error("specializing with no classes should fail")
	}
}

func TestSpecializedClassifyOtherClass(t *testing.T) {
	sp := testSpace()
	base := NewZoo().ByName("resnet18")
	m, err := TrainSpecialized(base, SpecializeConfig{LayerKeepFrac: 0.67, InputRes: 80}, []ClassID{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	src := simrand.New(99)
	// Objects of class 900 (not specialized) should be labelled OTHER most
	// of the time.
	hits := 0
	const n = 3000
	for i := 0; i < n; i++ {
		s := src.DeriveN(int64(i), "other")
		app := sp.NewInstanceAppearance(900, s)
		out := m.Classify(sp, 900, app, s, nil, 1)
		if out.Top1() == ClassOther {
			hits++
		}
	}
	frac := float64(hits) / n
	if frac < m.TopProb()-0.05 {
		t.Errorf("OTHER top-1 rate %.3f below model top prob %.3f", frac, m.TopProb())
	}
}

func TestTop1ClassAgreesWithTopProb(t *testing.T) {
	sp := testSpace()
	for _, name := range []string{"resnet152", "resnet18", "resnet18-l5-r56"} {
		m := NewZoo().ByName(name)
		src := simrand.New(1000)
		hits := 0
		const n = 20000
		for i := 0; i < n; i++ {
			s := src.DeriveN(int64(i), "top1", name)
			c := ClassID(i % 100)
			if m.Top1Class(sp, c, s) == c {
				hits++
			}
		}
		got := float64(hits) / n
		if math.Abs(got-m.TopProb()) > 0.02 {
			t.Errorf("%s top-1 accuracy %.3f vs topProb %.3f", name, got, m.TopProb())
		}
	}
}

func TestInterpolate(t *testing.T) {
	x := []float64{0, 1, 2}
	y := []float64{0, 10, 40}
	cases := []struct{ in, want float64 }{
		{-1, 0}, {0, 0}, {0.5, 5}, {1, 10}, {1.5, 25}, {2, 40}, {3, 40},
	}
	for _, c := range cases {
		if got := interpolate(c.in, x, y); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("interpolate(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestQuickRankedAlwaysDistinct(t *testing.T) {
	sp := testSpace()
	m := NewZoo().ByName("resnet18-l5-r56")
	base := simrand.New(2024)
	err := quick.Check(func(objIdx uint16, kRaw uint8) bool {
		k := 1 + int(kRaw)%256
		s := base.DeriveN(int64(objIdx), "quick")
		c := ClassID(int(objIdx) % NumClasses)
		app := sp.NewInstanceAppearance(c, s)
		out := m.Classify(sp, c, app, s, nil, k)
		seen := map[ClassID]bool{}
		for _, p := range out.Ranked {
			if seen[p.Class] {
				return false
			}
			seen[p.Class] = true
		}
		return len(out.Ranked) == min(k, NumClasses)
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Error(err)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func BenchmarkClassifyTop60(b *testing.B) {
	sp := testSpace()
	m := NewZoo().ByName("resnet18")
	base := simrand.New(5)
	app := sp.NewInstanceAppearance(3, base)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := base.DeriveN(int64(i), "bench")
		m.Classify(sp, 3, app, s, nil, 60)
	}
}

func BenchmarkExtractFeatures(b *testing.B) {
	sp := testSpace()
	m := NewZoo().ByName("resnet18")
	base := simrand.New(5)
	app := sp.NewInstanceAppearance(3, base)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.ExtractFeatures(app, base)
	}
}

func TestRankCorrelationPerObject(t *testing.T) {
	// With a per-object rank source, a weak model's misrankings repeat
	// across the object's sightings (§4.1: clustering must not launder a
	// cheap model's errors into accuracy).
	sp := testSpace()
	m := NewZoo().ByName("resnet18-l5-r56")
	base := simrand.New(77)

	matches, trials := 0, 0
	for obj := 0; obj < 300; obj++ {
		rankSrc := func() *simrand.Source { return base.DeriveN(int64(obj), "rank") }
		c := ClassID(obj % 40)
		app := sp.NewInstanceAppearance(c, base.DeriveN(int64(obj), "app"))
		var ranks []int
		for sight := 0; sight < 6; sight++ {
			s := base.DeriveN(int64(obj*100+sight), "s")
			out := m.Classify(sp, c, app, s, rankSrc(), 10)
			ranks = append(ranks, out.TrueRank)
		}
		for _, r := range ranks[1:] {
			trials++
			if r == ranks[0] {
				matches++
			}
		}
	}
	frac := float64(matches) / float64(trials)
	// With rankCorrelation 0.8, pairs agree at least ~0.64 of the time
	// (both correlated), plus chance agreements.
	if frac < 0.55 {
		t.Errorf("object rank repetition rate = %.2f, want >= 0.55", frac)
	}
	// Without a rank source, repetition collapses to chance for this weak
	// model (rank 1 with prob ~0.35).
	matches, trials = 0, 0
	for obj := 0; obj < 300; obj++ {
		c := ClassID(obj % 40)
		app := sp.NewInstanceAppearance(c, base.DeriveN(int64(obj), "app"))
		var ranks []int
		for sight := 0; sight < 6; sight++ {
			s := base.DeriveN(int64(obj*100+sight), "u")
			out := m.Classify(sp, c, app, s, nil, 10)
			ranks = append(ranks, out.TrueRank)
		}
		for _, r := range ranks[1:] {
			trials++
			if r == ranks[0] {
				matches++
			}
		}
	}
	if indep := float64(matches) / float64(trials); indep > frac-0.1 {
		t.Errorf("independent draws repeat at %.2f, correlated at %.2f; expected a clear gap", indep, frac)
	}
}
