// Package vision implements the simulated CNN stack that stands in for the
// paper's ResNet152 ground-truth CNN and its compressed / specialized
// derivatives.
//
// Go has no production deep-learning inference runtime and this module is
// built against the standard library only, so real CNNs are replaced with an
// analytic model that preserves every property Focus consumes:
//
//   - a ranked list of object classes with confidences per inference, whose
//     quality (rank distribution of the true class) follows the calibrated
//     recall-vs-K curves of Figure 5 of the paper;
//   - a feature vector from the "penultimate layer" whose geometry makes
//     visually similar objects close in L2 (>99% nearest-neighbour
//     same-class fraction, §2.2.3);
//   - an analytic inference cost in GPU-ms, anchored to ResNet152 at
//     77 images/s on an NVIDIA K80 (§2.1), i.e. 13 ms per image.
//
// All randomness is derived from deterministic simrand sources so that a
// given (model, object, sighting) always produces the same output.
package vision

import (
	"fmt"
	"math"

	"focus/internal/simrand"
)

// NumClasses is the size of the classifier vocabulary, matching the 1000
// ImageNet classes recognized by ResNet152.
const NumClasses = 1000

// FeatureDim is the dimensionality of the simulated penultimate-layer
// feature vector. Real classifier CNNs emit 512–4096 dims (§2.1); we use a
// compact space with the same geometry so clustering distance computations
// stay cheap.
const FeatureDim = 32

// FeatureVec is a penultimate-layer feature vector.
type FeatureVec []float32

// Clone returns a copy of the vector.
func (f FeatureVec) Clone() FeatureVec {
	c := make(FeatureVec, len(f))
	copy(c, f)
	return c
}

// L2Distance returns the Euclidean distance between two feature vectors.
// It panics if the dimensions differ, which indicates mixed feature spaces.
func L2Distance(a, b FeatureVec) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("vision: L2Distance dimension mismatch %d vs %d", len(a), len(b)))
	}
	var sum float64
	for i := range a {
		d := float64(a[i] - b[i])
		sum += d * d
	}
	return math.Sqrt(sum)
}

// SquaredL2Distance returns the squared Euclidean distance (no sqrt), for
// hot paths that only compare distances.
func SquaredL2Distance(a, b FeatureVec) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("vision: SquaredL2Distance dimension mismatch %d vs %d", len(a), len(b)))
	}
	var sum float64
	for i := range a {
		d := float64(a[i] - b[i])
		sum += d * d
	}
	return sum
}

// SquaredL2DistanceBounded accumulates the squared Euclidean distance in the
// same order as SquaredL2Distance but abandons the scan as soon as the
// partial sum reaches bound, returning that partial sum. Partial sums of
// squares are non-decreasing, so a return value >= bound proves the true
// distance is also >= bound; a return value < bound is the exact distance,
// bit-identical to SquaredL2Distance. This is the early-exit kernel of the
// clustering engine's nearest-centroid scan.
func SquaredL2DistanceBounded(a, b FeatureVec, bound float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("vision: SquaredL2DistanceBounded dimension mismatch %d vs %d", len(a), len(b)))
	}
	var sum float64
	i := 0
	for i < len(a) {
		// Check the bound every 8 coordinates: often enough to skip most of
		// a far vector, rare enough that the branch stays cheap.
		end := i + 8
		if end > len(a) {
			end = len(a)
		}
		for ; i < end; i++ {
			d := float64(a[i] - b[i])
			sum += d * d
		}
		if sum >= bound {
			return sum
		}
	}
	return sum
}

// Norm returns the Euclidean norm of a feature vector.
func Norm(f FeatureVec) float64 {
	var sum float64
	for i := range f {
		sum += float64(f[i]) * float64(f[i])
	}
	return math.Sqrt(sum)
}

// ClassID identifies one of the NumClasses object classes. The special value
// ClassOther is used by specialized models for "none of my Ls classes".
type ClassID int32

// ClassOther is the sentinel class emitted by specialized models for objects
// that do not belong to any of their Ls specialized classes (§4.3).
const ClassOther ClassID = -1

// commonNames seeds the most frequent class identifiers with recognizable
// names so examples and experiment output read like the paper's queries
// (cars, pedestrians, buses...). Remaining classes get synthetic names.
var commonNames = []string{
	"car", "person", "bus", "truck", "bicycle", "motorcycle", "dog",
	"traffic_light", "handbag", "backpack", "umbrella", "suit", "van",
	"taxi", "stroller", "skateboard", "scooter", "bench", "bird", "cat",
	"pickup", "trailer", "minivan", "jeep", "ambulance", "fire_engine",
	"police_van", "limousine", "convertible", "sports_car", "mountain_bike",
	"unicycle", "tram", "trolleybus", "horse", "pigeon", "microphone",
	"desk", "monitor", "necktie", "sunglasses", "hat", "coffee_mug",
	"bottle", "laptop", "cellphone", "book", "newspaper", "flag", "sign",
}

// Space is the shared feature geometry: one prototype vector per class plus
// per-class confusion pools (the classes a imperfect model is most likely to
// rank above the true class). A single Space is shared by every model and
// video stream in an experiment so that features are comparable everywhere.
//
// Prototypes carry semantic group structure: visually related classes
// (car/pickup/minivan/taxi, bicycle/motorcycle, ...) share a group centroid
// and sit closer to each other than to unrelated classes. This is what
// makes cheap models confuse an object with plausible look-alikes, fills
// the top-K index with within-group false entries (the paper's "average
// precision is only 1/K" effect, §4.1), and creates the real risk of
// cross-class cluster merging at large thresholds T (§4.2).
type Space struct {
	protos    []FeatureVec // [NumClasses]
	names     []string
	groups    []int       // class → semantic group
	confusion [][]ClassID // per class: nearest other classes in feature space
}

// numSemanticGroups is how many visual similarity groups the 1000 classes
// fall into.
const numSemanticGroups = 72

// groupSpread is the per-coordinate standard deviation of a class prototype
// around its group centroid. Together with the unit-variance centroids this
// puts within-group class distance around 4.4 and cross-group distance
// around 9 in the default geometry.
const groupSpread = 0.85

// curatedGroups assigns the named head classes to visual groups; the
// remaining classes hash into the rest of the groups.
var curatedGroups = map[ClassID]int{
	// group 0: four-wheeled vehicles
	0: 0, 2: 0, 3: 0, 12: 0, 13: 0, 20: 0, 21: 0, 22: 0, 23: 0, 24: 0,
	25: 0, 26: 0, 27: 0, 28: 0, 29: 0, 32: 0, 33: 0,
	// group 1: two-wheelers and boards
	4: 1, 5: 1, 15: 1, 16: 1, 30: 1, 31: 1,
	// group 2: people and worn items
	1: 2, 11: 2, 39: 2, 40: 2, 41: 2,
	// group 3: animals
	6: 3, 18: 3, 19: 3, 34: 3, 35: 3,
	// group 4: carried items
	8: 4, 9: 4, 10: 4, 14: 4,
	// group 5: studio/desk objects
	36: 5, 37: 5, 38: 5, 42: 5, 43: 5, 44: 5, 45: 5, 46: 5, 47: 5,
	// group 6: street furniture and signage
	7: 6, 17: 6, 48: 6, 49: 6,
}

// confusionPoolSize is how many nearest neighbour classes are precomputed as
// the plausible confusions of each class.
const confusionPoolSize = 24

// NewSpace constructs the deterministic feature geometry for the given seed.
// The same seed always yields identical prototypes, names, groups and
// confusion pools.
func NewSpace(seed uint64) *Space {
	src := simrand.New(seed).Derive("vision", "space")
	s := &Space{
		protos: make([]FeatureVec, NumClasses),
		names:  make([]string, NumClasses),
		groups: make([]int, NumClasses),
	}
	// Group centroids.
	centroids := make([]FeatureVec, numSemanticGroups)
	for g := range centroids {
		gs := src.DeriveN(int64(g), "group")
		v := make(FeatureVec, FeatureDim)
		for d := range v {
			v[d] = float32(gs.NormFloat64())
		}
		centroids[g] = v
	}
	for c := 0; c < NumClasses; c++ {
		g, curated := curatedGroups[ClassID(c)]
		if !curated {
			// Hash the tail classes across the remaining groups.
			g = 7 + int(uint32(c)*2654435761%uint32(numSemanticGroups-7))
		}
		s.groups[c] = g
		cs := src.DeriveN(int64(c), "proto")
		v := make(FeatureVec, FeatureDim)
		for d := range v {
			v[d] = centroids[g][d] + float32(cs.NormFloat64()*groupSpread)
		}
		s.protos[c] = v
		if c < len(commonNames) {
			s.names[c] = commonNames[c]
		} else {
			s.names[c] = fmt.Sprintf("class_%03d", c)
		}
	}
	s.buildConfusionPools()
	return s
}

// Group returns the semantic group of a class.
func (s *Space) Group(c ClassID) int {
	if c == ClassOther {
		return -1
	}
	return s.groups[c]
}

// buildConfusionPools finds, for every class, the confusionPoolSize nearest
// other class prototypes. These are the classes an imperfect model confuses
// the true class with, and the filler entries of synthesized rankings.
func (s *Space) buildConfusionPools() {
	s.confusion = make([][]ClassID, NumClasses)
	type distClass struct {
		d float64
		c ClassID
	}
	for c := 0; c < NumClasses; c++ {
		pool := make([]distClass, 0, NumClasses-1)
		for o := 0; o < NumClasses; o++ {
			if o == c {
				continue
			}
			pool = append(pool, distClass{SquaredL2Distance(s.protos[c], s.protos[o]), ClassID(o)})
		}
		// Partial selection sort for the nearest confusionPoolSize entries:
		// cheap relative to the O(n²) distance computation above, and this
		// runs once per Space.
		n := confusionPoolSize
		if n > len(pool) {
			n = len(pool)
		}
		for i := 0; i < n; i++ {
			min := i
			for j := i + 1; j < len(pool); j++ {
				if pool[j].d < pool[min].d {
					min = j
				}
			}
			pool[i], pool[min] = pool[min], pool[i]
		}
		out := make([]ClassID, n)
		for i := 0; i < n; i++ {
			out[i] = pool[i].c
		}
		s.confusion[c] = out
	}
}

// Prototype returns the prototype feature vector of a class. Callers must
// not mutate the returned slice.
func (s *Space) Prototype(c ClassID) FeatureVec {
	return s.protos[c]
}

// Name returns the human-readable name of a class ("car", "person",
// "class_417"). ClassOther maps to "OTHER".
func (s *Space) Name(c ClassID) string {
	if c == ClassOther {
		return "OTHER"
	}
	return s.names[c]
}

// ClassByName resolves a class name back to its ID, returning false when the
// name is unknown. The lookup is linear; it serves CLI/query parsing, not
// hot paths.
func (s *Space) ClassByName(name string) (ClassID, bool) {
	if name == "OTHER" {
		return ClassOther, true
	}
	for i, n := range s.names {
		if n == name {
			return ClassID(i), true
		}
	}
	return 0, false
}

// Confusions returns the precomputed confusion pool of a class: the other
// classes nearest to it in feature space, nearest first. Callers must not
// mutate the returned slice.
func (s *Space) Confusions(c ClassID) []ClassID {
	return s.confusion[c]
}

// InstanceNoise is the per-coordinate standard deviation separating two
// distinct objects of the same class (different cars look different).
const InstanceNoise = 0.55

// SightingNoise is the per-coordinate standard deviation between two
// sightings of the same object in nearby frames (same car, slightly
// different pose/lighting).
const SightingNoise = 0.12

// NewInstanceAppearance draws the latent appearance vector of a fresh object
// of class c: the class prototype plus instance-level variation.
func (s *Space) NewInstanceAppearance(c ClassID, src *simrand.Source) FeatureVec {
	p := s.protos[c]
	v := make(FeatureVec, FeatureDim)
	for d := range v {
		v[d] = p[d] + float32(src.NormFloat64()*InstanceNoise)
	}
	return v
}

// SightingAppearance derives the per-frame appearance of an object from its
// latent instance appearance: small pose/lighting jitter on top.
func (s *Space) SightingAppearance(instance FeatureVec, src *simrand.Source) FeatureVec {
	v := make(FeatureVec, FeatureDim)
	for d := range v {
		v[d] = instance[d] + float32(src.NormFloat64()*SightingNoise)
	}
	return v
}
