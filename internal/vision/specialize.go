package vision

import (
	"fmt"
	"sort"
)

// SelectTopClasses returns the Ls most frequent classes of a ground-truth
// class histogram, the class list a specialized model is retrained on
// (§4.3). Ties break toward the lower class ID for determinism. When the
// histogram holds fewer than ls classes, all of them are returned.
func SelectTopClasses(hist map[ClassID]int, ls int) []ClassID {
	if ls <= 0 {
		return nil
	}
	type entry struct {
		c ClassID
		n int
	}
	entries := make([]entry, 0, len(hist))
	for c, n := range hist {
		if c == ClassOther || n <= 0 {
			continue
		}
		entries = append(entries, entry{c, n})
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].n != entries[j].n {
			return entries[i].n > entries[j].n
		}
		return entries[i].c < entries[j].c
	})
	if len(entries) > ls {
		entries = entries[:ls]
	}
	out := make([]ClassID, len(entries))
	for i, e := range entries {
		out[i] = e.c
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// CoverageOfClasses returns the fraction of histogram mass covered by the
// given class set, i.e. how many of the stream's objects a specialized
// model classifies natively rather than as OTHER.
func CoverageOfClasses(hist map[ClassID]int, classes []ClassID) float64 {
	set := make(map[ClassID]bool, len(classes))
	for _, c := range classes {
		set[c] = true
	}
	var total, covered int
	for c, n := range hist {
		total += n
		if set[c] {
			covered += n
		}
	}
	if total == 0 {
		return 0
	}
	return float64(covered) / float64(total)
}

// SpecializeConfig describes how aggressively a specialized model compresses
// relative to its base architecture (§4.3: removing 1/3 of the convolutional
// layers and shrinking the input 4× in area yields similar per-stream
// accuracy at ~10× lower cost).
type SpecializeConfig struct {
	// LayerKeepFrac is the fraction of the base model's convolutional
	// layers retained (e.g. 0.67).
	LayerKeepFrac float64
	// InputRes is the specialized input resolution in pixels.
	InputRes int
}

// DefaultSpecializations is the ladder of specialization aggressiveness the
// parameter search explores, gentlest first.
var DefaultSpecializations = []SpecializeConfig{
	{LayerKeepFrac: 0.67, InputRes: 112},
	{LayerKeepFrac: 0.67, InputRes: 80},
	{LayerKeepFrac: 0.50, InputRes: 56},
	{LayerKeepFrac: 0.40, InputRes: 48},
}

// TrainSpecialized "retrains" a specialized variant of base for a stream
// whose frequent classes are given (§4.3). In this reproduction, training is
// simulated: the resulting model's cost follows the analytic cost law for
// the compressed architecture with the reduced class head, and its accuracy
// follows the specialized quality law (far higher top-1 over the small,
// visually constrained vocabulary). The OTHER class is always present in
// the specialized model's output vocabulary.
func TrainSpecialized(base *Model, cfg SpecializeConfig, classes []ClassID) (*Model, error) {
	if base.Specialized {
		return nil, fmt.Errorf("vision: cannot specialize the already-specialized model %q", base.Name)
	}
	if len(classes) == 0 {
		return nil, fmt.Errorf("vision: specialization requires at least one class")
	}
	layers := int(float64(base.Layers)*cfg.LayerKeepFrac + 0.5)
	if layers < 2 {
		layers = 2
	}
	res := cfg.InputRes
	if res > base.InputRes {
		res = base.InputRes
	}
	name := fmt.Sprintf("%s-spec-l%d-r%d-c%d", base.Name, layers, res, len(classes))
	return NewModel(name, base.Family, layers, res, classes), nil
}
