package vision

import (
	"fmt"
	"math"
	"sort"
)

// ArchFamily identifies a CNN architecture family available as a starting
// point for compression, mirroring the user-provided architectures in §4.1
// (ResNet, AlexNet, VGG).
type ArchFamily string

// Architecture families available for compression and specialization.
const (
	FamilyResNet  ArchFamily = "resnet"
	FamilyAlexNet ArchFamily = "alexnet"
	FamilyVGG     ArchFamily = "vgg"
)

// GTCostMS is the inference cost of the ground-truth CNN (ResNet152) in
// simulated GPU milliseconds per image: 77 images/s on an NVIDIA K80 (§2.1).
const GTCostMS = 13.0

// resolutionExponent governs how inference cost scales with input
// resolution. Pure convolution cost would be quadratic in resolution, but
// real networks carry resolution-independent overhead (FC layers, kernel
// launches); an exponent of 1.55 fits the paper's measured cost ratios for
// the Figure 5 models to within ~25%.
const resolutionExponent = 1.55

// baseResolution is the native input resolution of the uncompressed models.
const baseResolution = 224

// Model describes one classifier in the zoo: the ground-truth CNN, a generic
// compressed variant, or a per-stream specialized variant. Models are
// immutable after construction.
type Model struct {
	// Name uniquely identifies the model within a zoo,
	// e.g. "resnet18-l3-r112" or "resnet152".
	Name string
	// Family is the architecture this model derives from.
	Family ArchFamily
	// Layers is the number of convolutional layers retained.
	Layers int
	// InputRes is the input image resolution in pixels.
	InputRes int
	// Specialized reports whether this model was retrained for a specific
	// stream (§4.3). Specialized models classify only SpecialClasses plus
	// ClassOther.
	Specialized bool
	// SpecialClasses is the sorted list of Ls classes a specialized model
	// recognizes; nil for generic models (which recognize all NumClasses).
	SpecialClasses []ClassID

	// costMS is the analytic inference cost in GPU-ms per image.
	costMS float64
	// topProb is the probability the true class is ranked first.
	topProb float64
	// tailDecay is the geometric decay of the true class's rank when it is
	// not first: P(rank = 1+k | rank > 1) ∝ (1-tailDecay)^(k-1).
	tailDecay float64
	// featNoise is the per-coordinate std-dev of feature extraction noise.
	featNoise float64
	// specialSet is a lookup set over SpecialClasses.
	specialSet map[ClassID]bool
}

// CostMS returns the simulated GPU cost of one inference in milliseconds.
func (m *Model) CostMS() float64 { return m.costMS }

// CheaperThanGT returns how many times cheaper this model is than the
// ground-truth CNN, the unit the paper reports model costs in.
func (m *Model) CheaperThanGT() float64 { return GTCostMS / m.costMS }

// FeatureNoise returns the per-coordinate feature extraction noise.
func (m *Model) FeatureNoise() float64 { return m.featNoise }

// TopProb returns the probability that the true class is ranked first.
func (m *Model) TopProb() float64 { return m.topProb }

// TailDecay returns the geometric decay parameter of the true-class rank
// distribution beyond rank one.
func (m *Model) TailDecay() float64 { return m.tailDecay }

// Vocabulary returns the number of classes the model can emit (excluding
// ClassOther for specialized models).
func (m *Model) Vocabulary() int {
	if m.Specialized {
		return len(m.SpecialClasses)
	}
	return NumClasses
}

// Recognizes reports whether the model can emit class c directly (always
// true for generic models).
func (m *Model) Recognizes(c ClassID) bool {
	if !m.Specialized {
		return c >= 0 && int(c) < NumClasses
	}
	return m.specialSet[c]
}

// ExpectedRecallAtK returns the analytic probability that the true class
// appears within the model's top-K output, i.e. the curve of Figure 5. For
// specialized models this is the recall for classes the model recognizes.
func (m *Model) ExpectedRecallAtK(k int) float64 {
	if k <= 0 {
		return 0
	}
	vocab := m.Vocabulary()
	if m.Specialized {
		vocab++ // the OTHER slot
	}
	if k >= vocab {
		return 1
	}
	// rank 1 with topProb; otherwise geometric tail truncated at vocab.
	tail := 1 - m.topProb
	if k == 1 {
		return m.topProb
	}
	// Probability rank in [2, k]: tail * (1 - (1-d)^(k-1)) / (1 - (1-d)^(vocab-1))
	d := m.tailDecay
	num := 1 - math.Pow(1-d, float64(k-1))
	den := 1 - math.Pow(1-d, float64(vocab-1))
	if den <= 0 {
		return 1
	}
	return m.topProb + tail*num/den
}

// archBaseLayers returns the layer count and the per-layer cost coefficient
// of the uncompressed member of each family, calibrated so ResNet152 costs
// GTCostMS and ResNet18 is ~7-8× cheaper (§2.1).
func archParams(f ArchFamily) (fixedMS, perLayerMS float64) {
	switch f {
	case FamilyResNet:
		// Fit to ResNet152@224 = 13ms and ResNet18@224 = 13/7 ms.
		// fixed + 152·b = 13 ; fixed + 18·b = 13/7
		b := (GTCostMS - GTCostMS/7) / (152 - 18)
		return GTCostMS/7 - 18*b, b
	case FamilyAlexNet:
		// AlexNet: 8 layers, roughly 12× cheaper than ResNet152.
		return 0.55, 0.065
	case FamilyVGG:
		// VGG16: 16 layers, roughly on par with ResNet152 per image.
		return 1.0, 0.72
	default:
		panic(fmt.Sprintf("vision: unknown architecture family %q", f))
	}
}

// modelCostMS computes the analytic inference cost for a configuration.
// Specialized models additionally benefit from their reduced fully-connected
// head (fewer output classes).
func modelCostMS(f ArchFamily, layers, inputRes, vocab int) float64 {
	fixed, per := archParams(f)
	resScale := math.Pow(float64(inputRes)/baseResolution, resolutionExponent)
	cost := (fixed + per*float64(layers)) * resScale
	// Head discount: the FC head shrinks with vocabulary. It is a small
	// fraction of total cost; cap the discount at 15%.
	headFrac := 0.15 * (1 - float64(vocab)/NumClasses)
	cost *= 1 - headFrac
	// Floor: kernel launch and memory-transfer overhead never vanish, so
	// no model is more than ~93× cheaper than the GT-CNN per inference
	// (the paper's specialized ingest models reach up to 98×, §3; its
	// 141× Opt-Ingest point includes pixel-differencing savings).
	if cost < 0.14 {
		cost = 0.14
	}
	return cost
}

// qualityForConfig maps a model configuration to its classification quality
// parameters (topProb, tailDecay) and feature noise.
//
// Calibration anchors, from Figure 5 (generic models, full 1000-class
// vocabulary, measured on the lausanne stream):
//
//	CheapCNN1 = ResNet18@224   (≈7× cheaper):  90% recall at K≈60
//	CheapCNN2 = ResNet18-3@112 (≈28× cheaper): 90% recall at K≈100
//	CheapCNN3 = ResNet18-5@56  (≈58× cheaper): 90% recall at K≈200
//
// and the GT-CNN itself, whose residual flicker (§6.1) motivates the paper's
// 1-second voting ground truth.
func qualityForConfig(f ArchFamily, layers, inputRes int, specialized bool, vocab int) (topProb, tailDecay, featNoise float64) {
	// Capacity: a normalized measure of how much signal the configuration
	// retains. Layer share and resolution share both contribute.
	var fullLayers int
	switch f {
	case FamilyResNet:
		fullLayers = 152
	case FamilyAlexNet:
		fullLayers = 8
	case FamilyVGG:
		fullLayers = 16
	}
	layerShare := float64(layers) / float64(fullLayers)
	if layerShare > 1 {
		layerShare = 1
	}
	resShare := float64(inputRes) / baseResolution
	if resShare > 1 {
		resShare = 1
	}
	capacity := math.Pow(layerShare, 0.18) * math.Pow(resShare, 0.35)
	switch f {
	case FamilyAlexNet:
		capacity *= 0.80 // older architecture, lower accuracy ceiling
	case FamilyVGG:
		capacity *= 0.97
	}

	if specialized {
		// Specialization collapses the task to Ls constrained classes
		// (§4.3): far higher top-1, and the rank tail concentrates within
		// the first few positions so K=2–4 reaches the recall targets.
		// The slope on capacity makes aggressive compression pay a real
		// accuracy price, which is what forces larger K (and so higher
		// query latency) for the cheapest specialized models — the ingest
		// vs query trade-off of Figure 6.
		topProb = 0.70 + 0.30*capacity
		if topProb > 0.985 {
			topProb = 0.985
		}
		// Tail decays fast relative to the small vocabulary.
		tailDecay = 0.70
		featNoise = 0.22 * (1.3 - capacity)
		return topProb, tailDecay, featNoise
	}

	// Generic models. Anchors (capacity → topProb, tailDecay):
	//   ResNet152@224: capacity 1.00        → topProb .975 (GT flicker ~2.5%)
	//   ResNet18@224:  capacity .681        → .55, .0252  (90% @ K=60)
	//   ResNet18-3@112: capacity .660·.785  → .45, .0171  (90% @ K=100)
	//   ResNet18-5@56: capacity .643·.616   → .35, .00936 (90% @ K=200)
	c1 := 0.681       // ResNet18@224 capacity under the law above
	c2 := .660 * .785 // = .518
	c3 := .643 * .616 // = .396
	topProb = interpolate(capacity,
		[]float64{0, c3, c2, c1, 1.0},
		[]float64{0.10, 0.35, 0.45, 0.55, 0.975})
	tailDecay = interpolate(capacity,
		[]float64{0, c3, c2, c1, 1.0},
		[]float64{0.004, 0.00936, 0.0171, 0.0252, 0.30})
	// Feature noise: ResNet18-class features give >99% same-class nearest
	// neighbours (§2.2.3); noisier for weaker models.
	featNoise = 0.10 + 0.45*(1-capacity)
	_ = vocab
	return topProb, tailDecay, featNoise
}

// interpolate performs piecewise-linear interpolation of y over knots x
// (x must be ascending). Values outside the range clamp to the end knots.
func interpolate(v float64, x, y []float64) float64 {
	if len(x) != len(y) || len(x) == 0 {
		panic("vision: interpolate requires equal, non-empty knot slices")
	}
	if v <= x[0] {
		return y[0]
	}
	if v >= x[len(x)-1] {
		return y[len(y)-1]
	}
	i := sort.SearchFloat64s(x, v)
	// x[i-1] < v <= x[i]
	t := (v - x[i-1]) / (x[i] - x[i-1])
	return y[i-1] + t*(y[i]-y[i-1])
}

// NewModel constructs a model for an explicit configuration. Most callers
// use Zoo; this constructor serves tests and custom sweeps.
func NewModel(name string, f ArchFamily, layers, inputRes int, special []ClassID) *Model {
	if layers <= 0 {
		panic("vision: model must retain at least one layer")
	}
	if inputRes < 16 {
		panic("vision: input resolution below 16px is not meaningful")
	}
	m := &Model{
		Name:     name,
		Family:   f,
		Layers:   layers,
		InputRes: inputRes,
	}
	vocab := NumClasses
	if special != nil {
		m.Specialized = true
		m.SpecialClasses = append([]ClassID(nil), special...)
		sort.Slice(m.SpecialClasses, func(i, j int) bool { return m.SpecialClasses[i] < m.SpecialClasses[j] })
		m.specialSet = make(map[ClassID]bool, len(special))
		for _, c := range special {
			m.specialSet[c] = true
		}
		vocab = len(special)
	}
	m.costMS = modelCostMS(f, layers, inputRes, vocab)
	m.topProb, m.tailDecay, m.featNoise = qualityForConfig(f, layers, inputRes, m.Specialized, vocab)
	return m
}

// Zoo is the set of candidate ingest models Focus searches over (§4.1): for
// each architecture family, a ladder of compressed variants (layers removed,
// input rescaled), plus the ground-truth model.
type Zoo struct {
	GT      *Model
	Generic []*Model // compression ladder, cheapest last
}

// NewZoo builds the default model zoo. The generic ladder includes the three
// calibrated CheapCNN models of Figure 5 plus additional rungs that give the
// parameter search a dense cost/accuracy frontier.
func NewZoo() *Zoo {
	z := &Zoo{GT: NewModel("resnet152", FamilyResNet, 152, 224, nil)}
	type cfg struct {
		name   string
		f      ArchFamily
		layers int
		res    int
	}
	configs := []cfg{
		{"resnet50", FamilyResNet, 50, 224},
		{"resnet34", FamilyResNet, 34, 224},
		{"resnet18", FamilyResNet, 18, 224}, // CheapCNN1 (≈7×)
		{"resnet18-l2-r160", FamilyResNet, 16, 160},
		{"resnet18-l3-r112", FamilyResNet, 15, 112}, // CheapCNN2 (≈28×)
		{"resnet18-l4-r80", FamilyResNet, 14, 80},
		{"resnet18-l5-r56", FamilyResNet, 13, 56}, // CheapCNN3 (≈58×)
		{"resnet18-l6-r48", FamilyResNet, 12, 48},
		{"vgg16", FamilyVGG, 16, 224},
		{"vgg11-r112", FamilyVGG, 11, 112},
		{"alexnet", FamilyAlexNet, 8, 224},
		{"alexnet-r112", FamilyAlexNet, 8, 112},
	}
	for _, c := range configs {
		z.Generic = append(z.Generic, NewModel(c.name, c.f, c.layers, c.res, nil))
	}
	sort.Slice(z.Generic, func(i, j int) bool { return z.Generic[i].costMS > z.Generic[j].costMS })
	return z
}

// ByName returns the zoo model with the given name, or nil.
func (z *Zoo) ByName(name string) *Model {
	if z.GT.Name == name {
		return z.GT
	}
	for _, m := range z.Generic {
		if m.Name == name {
			return m
		}
	}
	return nil
}
