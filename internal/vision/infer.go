package vision

import (
	"focus/internal/simrand"
)

// Prediction is one entry of a classifier's ranked output: a class and its
// confidence. Confidences within an Output are strictly descending.
type Prediction struct {
	Class      ClassID
	Confidence float32
}

// Output is the result of one simulated CNN inference: the top-k ranked
// classes and the penultimate-layer feature vector.
type Output struct {
	// Ranked holds the k most confident classes, most confident first.
	Ranked []Prediction
	// TrueRank is the 1-based rank at which the model placed the object's
	// effective true class, which may exceed len(Ranked) when the true class
	// fell outside the requested top-k. Exposed for evaluation and tuning;
	// a real system would not know this.
	TrueRank int
	// Features is the extracted feature vector.
	Features FeatureVec
}

// Top1 returns the most confident class of the output.
func (o *Output) Top1() ClassID { return o.Ranked[0].Class }

// Contains reports whether class c appears within the first k entries of the
// ranking (k capped at the available entries).
func (o *Output) Contains(c ClassID, k int) bool {
	if k > len(o.Ranked) {
		k = len(o.Ranked)
	}
	for i := 0; i < k; i++ {
		if o.Ranked[i].Class == c {
			return true
		}
	}
	return false
}

// effectiveTrueClass maps an object's real class to what this model should
// ideally output: the class itself for generic models or recognized classes,
// and ClassOther for specialized models that were not trained on the class
// (§4.3).
func (m *Model) effectiveTrueClass(trueClass ClassID) ClassID {
	if m.Specialized && !m.specialSet[trueClass] {
		return ClassOther
	}
	return trueClass
}

// drawTrueRank samples the 1-based rank the model assigns to the effective
// true class: rank 1 with probability topProb, otherwise a geometric tail
// truncated to the vocabulary size.
func (m *Model) drawTrueRank(src *simrand.Source, vocab int) int {
	if src.Float64() < m.topProb {
		return 1
	}
	r := 2 + src.Geometric(m.tailDecay)
	if r > vocab {
		r = vocab
	}
	return r
}

// outputVocab returns the total number of distinct classes the model can
// emit, including the OTHER slot for specialized models.
func (m *Model) outputVocab() int {
	if m.Specialized {
		return len(m.SpecialClasses) + 1
	}
	return NumClasses
}

// rankCorrelation is the probability that a sighting's true-class rank
// repeats the model's object-stable rank rather than an independent draw.
// Real CNN errors are strongly correlated per object — a model that
// misranks a particular car misranks it in (almost) every frame — which is
// why clustering cannot launder a weak ingest model's mistakes into
// accuracy (§4.1's K must genuinely grow as models get cheaper).
const rankCorrelation = 0.9

// Classify runs one simulated inference for an object sighting.
//
// trueClass is the object's real class (ground truth of the synthetic
// world); appearance is the sighting's latent appearance vector; src must
// be a source derived uniquely for this (model, sighting) pair so repeated
// calls are deterministic; rankSrc, when non-nil, must be derived per
// (model, object) and makes the true-class rank consistent across the
// object's sightings (with rankCorrelation probability); k is how many
// ranked entries to materialize.
//
// The returned ranking places the model's effective true class at a rank
// drawn from the model's calibrated rank law, fills the remaining slots with
// confusable classes (nearest prototypes first, then pseudo-random classes),
// and attaches a feature vector equal to the appearance plus model-dependent
// extraction noise.
func (m *Model) Classify(sp *Space, trueClass ClassID, appearance FeatureVec, src, rankSrc *simrand.Source, k int) *Output {
	if k <= 0 {
		panic("vision: Classify requires k >= 1")
	}
	vocab := m.outputVocab()
	if k > vocab {
		k = vocab
	}
	eff := m.effectiveTrueClass(trueClass)
	var rank int
	if rankSrc != nil && src.Float64() < rankCorrelation {
		rank = m.drawTrueRank(rankSrc, vocab)
	} else {
		rank = m.drawTrueRank(src, vocab)
	}

	out := &Output{
		Ranked:   make([]Prediction, k),
		TrueRank: rank,
		Features: m.ExtractFeatures(appearance, src),
	}
	m.fillRanking(sp, eff, rank, out.Ranked, src)

	// Confidences: geometric decay with light jitter, strictly descending.
	conf := 0.45 + 0.5*m.topProb + 0.04*src.Float64()
	for i := range out.Ranked {
		out.Ranked[i].Confidence = float32(conf)
		decay := 0.55 + 0.1*src.Float64()
		conf *= decay
	}
	return out
}

// fillRanking populates ranked with distinct classes, placing eff at
// position rank-1 when it fits, preferring the true class's confusion pool
// for the top slots and pseudo-random vocabulary members after that.
func (m *Model) fillRanking(sp *Space, eff ClassID, rank int, ranked []Prediction, src *simrand.Source) {
	k := len(ranked)
	var taken classSet
	taken.init(m)
	taken.add(eff)

	// Confusion pool for the true class drives the head of the ranking.
	var pool []ClassID
	if eff != ClassOther {
		pool = sp.Confusions(eff)
	}
	poolIdx := 0
	nextFiller := func() ClassID {
		for poolIdx < len(pool) {
			c := pool[poolIdx]
			poolIdx++
			if m.Recognizes(c) && !taken.has(c) {
				taken.add(c)
				return c
			}
		}
		// Pseudo-random distinct members of the vocabulary, rejection
		// sampled against the taken set.
		for {
			c := m.randomVocabClass(src)
			if !taken.has(c) {
				taken.add(c)
				return c
			}
		}
	}

	for i := 0; i < k; i++ {
		if i == rank-1 {
			ranked[i].Class = eff
			continue
		}
		ranked[i].Class = nextFiller()
	}
}

// randomVocabClass draws a uniform member of the model's output vocabulary
// (which includes ClassOther for specialized models).
func (m *Model) randomVocabClass(src *simrand.Source) ClassID {
	if !m.Specialized {
		return ClassID(src.Intn(NumClasses))
	}
	i := src.Intn(len(m.SpecialClasses) + 1)
	if i == len(m.SpecialClasses) {
		return ClassOther
	}
	return m.SpecialClasses[i]
}

// classSet tracks which classes are already present in a ranking. For
// generic models it is a bitset over NumClasses; for specialized models a
// small map keyed by class.
type classSet struct {
	bits []uint64
	m    map[ClassID]bool
}

func (cs *classSet) init(model *Model) {
	if model.Specialized {
		cs.m = make(map[ClassID]bool, len(model.SpecialClasses)+1)
	} else {
		cs.bits = make([]uint64, (NumClasses+63)/64)
	}
}

func (cs *classSet) add(c ClassID) {
	if cs.m != nil {
		cs.m[c] = true
		return
	}
	if c >= 0 {
		cs.bits[c/64] |= 1 << (uint(c) % 64)
	}
}

func (cs *classSet) has(c ClassID) bool {
	if cs.m != nil {
		return cs.m[c]
	}
	if c < 0 {
		return false
	}
	return cs.bits[c/64]&(1<<(uint(c)%64)) != 0
}

// ExtractFeatures returns the model's penultimate-layer feature vector for
// an appearance: the appearance plus per-coordinate Gaussian extraction
// noise scaled by the model's quality.
func (m *Model) ExtractFeatures(appearance FeatureVec, src *simrand.Source) FeatureVec {
	f := make(FeatureVec, len(appearance))
	for i := range f {
		f[i] = appearance[i] + float32(src.NormFloat64()*m.featNoise)
	}
	return f
}

// Top1Class runs a top-1-only inference and returns just the predicted
// class. It is the fast path used for ground-truth labelling with the
// GT-CNN, where the full ranking is not needed.
func (m *Model) Top1Class(sp *Space, trueClass ClassID, src *simrand.Source) ClassID {
	eff := m.effectiveTrueClass(trueClass)
	if src.Float64() < m.topProb {
		return eff
	}
	// Misclassification: one of the nearest confusable classes the model
	// recognizes; fall back to a random vocabulary member.
	if eff != ClassOther {
		pool := sp.Confusions(eff)
		start := src.Intn(4)
		for i := 0; i < len(pool); i++ {
			c := pool[(start+i)%len(pool)]
			if m.Recognizes(c) {
				return c
			}
		}
	}
	return m.randomVocabClass(src)
}
