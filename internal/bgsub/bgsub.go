// Package bgsub implements background subtraction and moving-object
// extraction, the detection front-end of Focus's ingest pipeline (§5).
//
// The paper uses OpenCV's adaptive Gaussian-mixture background subtraction
// (Zivkovic) because it is orders of magnitude cheaper than detector CNNs
// and more reliable for small objects (§6.1). This package implements a
// single-Gaussian-per-pixel adaptive model with variance-scaled
// thresholding — the same family of algorithm — plus connected-component
// extraction of foreground bounding boxes.
//
// Both Focus and the two baselines (Ingest-all, Query-all) are fed by this
// stage: frames with no moving objects are excluded everywhere, exactly as
// the paper strengthens its baselines with motion detection.
package bgsub

import (
	"fmt"

	"focus/internal/video"
)

// Config tunes the subtractor.
type Config struct {
	// LearningRate is the exponential update factor of the per-pixel
	// background mean/variance (0 < rate <= 1).
	LearningRate float64
	// ThresholdSigma is how many standard deviations a pixel must deviate
	// from the background mean to be foreground.
	ThresholdSigma float64
	// MinRegionArea drops connected components smaller than this many
	// pixels (sensor noise speckles).
	MinRegionArea int
	// WarmupFrames is how many initial frames only train the background
	// model without emitting detections.
	WarmupFrames int
}

// DefaultConfig returns a configuration that works well for the synthetic
// scenes rendered by internal/video.
func DefaultConfig() Config {
	return Config{
		LearningRate:   0.05,
		ThresholdSigma: 4.0,
		MinRegionArea:  12,
		WarmupFrames:   8,
	}
}

func (c Config) validate() error {
	if c.LearningRate <= 0 || c.LearningRate > 1 {
		return fmt.Errorf("bgsub: learning rate %v out of (0, 1]", c.LearningRate)
	}
	if c.ThresholdSigma <= 0 {
		return fmt.Errorf("bgsub: non-positive threshold sigma %v", c.ThresholdSigma)
	}
	if c.MinRegionArea < 1 {
		return fmt.Errorf("bgsub: MinRegionArea must be >= 1")
	}
	if c.WarmupFrames < 0 {
		return fmt.Errorf("bgsub: negative warmup")
	}
	return nil
}

// Subtractor holds the adaptive background model for one stream.
// It is not safe for concurrent use; each stream's ingest worker owns one.
type Subtractor struct {
	cfg    Config
	w, h   int
	mean   []float64
	varr   []float64
	frames int
	// scratch buffers reused across frames
	fg    []bool
	label []int32
}

// minVariance floors the per-pixel variance so a perfectly static synthetic
// background does not make the detector hypersensitive.
const minVariance = 9.0

// New constructs a subtractor for frames of the given dimensions.
func New(w, h int, cfg Config) (*Subtractor, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if w <= 0 || h <= 0 {
		return nil, fmt.Errorf("bgsub: invalid dimensions %dx%d", w, h)
	}
	n := w * h
	s := &Subtractor{
		cfg:   cfg,
		w:     w,
		h:     h,
		mean:  make([]float64, n),
		varr:  make([]float64, n),
		fg:    make([]bool, n),
		label: make([]int32, n),
	}
	for i := range s.varr {
		s.varr[i] = 25 // generous initial variance until the model settles
	}
	return s, nil
}

// Process updates the background model with one frame and returns the
// bounding boxes of detected moving objects. During warmup it returns nil.
func (s *Subtractor) Process(img *video.GrayImage) ([]video.Rect, error) {
	if img.W != s.w || img.H != s.h {
		return nil, fmt.Errorf("bgsub: frame %dx%d does not match model %dx%d", img.W, img.H, s.w, s.h)
	}
	warming := s.frames < s.cfg.WarmupFrames
	s.frames++

	alpha := s.cfg.LearningRate
	if warming {
		// Learn fast during warmup so the first real frames have a usable
		// model.
		alpha = 0.5
	}
	k2 := s.cfg.ThresholdSigma * s.cfg.ThresholdSigma
	for i, p := range img.Pix {
		v := float64(p)
		d := v - s.mean[i]
		isFG := !warming && d*d > k2*maxF(s.varr[i], minVariance)
		s.fg[i] = isFG
		// Foreground pixels update the model slowly (a parked object will
		// eventually be absorbed into the background, which is exactly the
		// "stationary objects are excluded" behaviour of §2.2.1).
		a := alpha
		if isFG {
			a = alpha / 16
		}
		s.mean[i] += a * d
		s.varr[i] += a * (d*d - s.varr[i])
	}
	if warming {
		return nil, nil
	}
	return s.extractRegions(), nil
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// extractRegions labels 8-connected foreground components and returns their
// bounding boxes, dropping regions below MinRegionArea.
func (s *Subtractor) extractRegions() []video.Rect {
	for i := range s.label {
		s.label[i] = 0
	}
	var boxes []video.Rect
	var next int32 = 1
	// Iterative flood fill with an explicit stack (the scene is small; the
	// stack stays tiny).
	var stack []int32
	for y := 0; y < s.h; y++ {
		for x := 0; x < s.w; x++ {
			idx := int32(y*s.w + x)
			if !s.fg[idx] || s.label[idx] != 0 {
				continue
			}
			id := next
			next++
			minX, minY, maxX, maxY := x, y, x, y
			area := 0
			stack = append(stack[:0], idx)
			s.label[idx] = id
			for len(stack) > 0 {
				cur := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				cx, cy := int(cur)%s.w, int(cur)/s.w
				area++
				if cx < minX {
					minX = cx
				}
				if cx > maxX {
					maxX = cx
				}
				if cy < minY {
					minY = cy
				}
				if cy > maxY {
					maxY = cy
				}
				for dy := -1; dy <= 1; dy++ {
					for dx := -1; dx <= 1; dx++ {
						if dx == 0 && dy == 0 {
							continue
						}
						nx, ny := cx+dx, cy+dy
						if nx < 0 || ny < 0 || nx >= s.w || ny >= s.h {
							continue
						}
						n := int32(ny*s.w + nx)
						if s.fg[n] && s.label[n] == 0 {
							s.label[n] = id
							stack = append(stack, n)
						}
					}
				}
			}
			if area >= s.cfg.MinRegionArea {
				boxes = append(boxes, video.Rect{
					X: minX, Y: minY, W: maxX - minX + 1, H: maxY - minY + 1,
				})
			}
		}
	}
	return boxes
}

// IoU computes intersection-over-union of two boxes, the standard detection
// matching metric used by the tests that validate this detector against the
// generator's ground-truth boxes.
func IoU(a, b video.Rect) float64 {
	ix := overlap(a.X, a.X+a.W, b.X, b.X+b.W)
	iy := overlap(a.Y, a.Y+a.H, b.Y, b.Y+b.H)
	inter := ix * iy
	if inter == 0 {
		return 0
	}
	union := a.Area() + b.Area() - inter
	return float64(inter) / float64(union)
}

func overlap(a0, a1, b0, b1 int) int {
	lo, hi := a0, a1
	if b0 > lo {
		lo = b0
	}
	if b1 < hi {
		hi = b1
	}
	if hi <= lo {
		return 0
	}
	return hi - lo
}

// MatchStats summarizes how well detected boxes match ground-truth boxes.
type MatchStats struct {
	GroundTruth int
	Detected    int
	Matched     int // ground-truth boxes with a detection at IoU >= threshold
}

// Recall returns the fraction of ground-truth boxes that were detected.
func (m MatchStats) Recall() float64 {
	if m.GroundTruth == 0 {
		return 1
	}
	return float64(m.Matched) / float64(m.GroundTruth)
}

// Match greedily matches detections against ground truth at the given IoU
// threshold and accumulates statistics.
func Match(gt, det []video.Rect, iouThresh float64) MatchStats {
	stats := MatchStats{GroundTruth: len(gt), Detected: len(det)}
	used := make([]bool, len(det))
	for _, g := range gt {
		best := -1
		bestIoU := iouThresh
		for i, d := range det {
			if used[i] {
				continue
			}
			if v := IoU(g, d); v >= bestIoU {
				bestIoU = v
				best = i
			}
		}
		if best >= 0 {
			used[best] = true
			stats.Matched++
		}
	}
	return stats
}
