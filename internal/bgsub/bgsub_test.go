package bgsub

import (
	"testing"

	"focus/internal/video"
	"focus/internal/vision"
)

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{LearningRate: 0, ThresholdSigma: 3, MinRegionArea: 4},
		{LearningRate: 1.5, ThresholdSigma: 3, MinRegionArea: 4},
		{LearningRate: 0.1, ThresholdSigma: 0, MinRegionArea: 4},
		{LearningRate: 0.1, ThresholdSigma: 3, MinRegionArea: 0},
		{LearningRate: 0.1, ThresholdSigma: 3, MinRegionArea: 4, WarmupFrames: -1},
	}
	for i, c := range bad {
		if _, err := New(10, 10, c); err == nil {
			t.Errorf("config %d accepted: %+v", i, c)
		}
	}
	if _, err := New(0, 10, DefaultConfig()); err == nil {
		t.Error("zero width accepted")
	}
}

func TestWarmupEmitsNothing(t *testing.T) {
	cfg := DefaultConfig()
	s, err := New(8, 8, cfg)
	if err != nil {
		t.Fatal(err)
	}
	img := video.NewGrayImage(8, 8)
	for i := 0; i < cfg.WarmupFrames; i++ {
		det, err := s.Process(img)
		if err != nil {
			t.Fatal(err)
		}
		if det != nil {
			t.Fatalf("warmup frame %d produced detections", i)
		}
	}
}

func TestDimensionMismatch(t *testing.T) {
	s, err := New(8, 8, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Process(video.NewGrayImage(9, 8)); err == nil {
		t.Error("dimension mismatch accepted")
	}
}

// synthetic scene helpers

func flatImage(w, h int, v uint8) *video.GrayImage {
	img := video.NewGrayImage(w, h)
	for i := range img.Pix {
		img.Pix[i] = v
	}
	return img
}

func drawBox(img *video.GrayImage, r video.Rect, v uint8) {
	for y := r.Y; y < r.Y+r.H; y++ {
		for x := r.X; x < r.X+r.W; x++ {
			img.Set(x, y, v)
		}
	}
}

func TestDetectsMovingBox(t *testing.T) {
	cfg := DefaultConfig()
	s, err := New(64, 48, cfg)
	if err != nil {
		t.Fatal(err)
	}
	bg := flatImage(64, 48, 100)
	for i := 0; i < cfg.WarmupFrames+10; i++ {
		if _, err := s.Process(bg); err != nil {
			t.Fatal(err)
		}
	}
	// A bright box should be detected where it is.
	box := video.Rect{X: 10, Y: 10, W: 12, H: 8}
	img := flatImage(64, 48, 100)
	drawBox(img, box, 220)
	det, err := s.Process(img)
	if err != nil {
		t.Fatal(err)
	}
	if len(det) != 1 {
		t.Fatalf("detections = %d, want 1 (%v)", len(det), det)
	}
	if IoU(det[0], box) < 0.8 {
		t.Errorf("detected %+v, IoU %.2f with truth %+v", det[0], IoU(det[0], box), box)
	}
}

func TestStationaryObjectAbsorbed(t *testing.T) {
	// §2.2.1: stationary objects (parked cars) merge into the background
	// and stop being detected.
	cfg := DefaultConfig()
	s, err := New(64, 48, cfg)
	if err != nil {
		t.Fatal(err)
	}
	bg := flatImage(64, 48, 100)
	for i := 0; i < cfg.WarmupFrames+10; i++ {
		s.Process(bg)
	}
	box := video.Rect{X: 20, Y: 20, W: 10, H: 10}
	img := flatImage(64, 48, 100)
	drawBox(img, box, 220)
	// Keep the object perfectly still for many frames.
	detectedAtStart := false
	var lastDet int
	for i := 0; i < 2500; i++ {
		det, err := s.Process(img)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 && len(det) > 0 {
			detectedAtStart = true
		}
		if len(det) > 0 {
			lastDet = i
		}
	}
	if !detectedAtStart {
		t.Fatal("fresh object not detected")
	}
	if lastDet >= 2499 {
		t.Error("stationary object never absorbed into background")
	}
}

func TestNoiseRobustness(t *testing.T) {
	// Sensor noise alone must not produce detections after warmup.
	cfg := DefaultConfig()
	s, err := New(64, 48, cfg)
	if err != nil {
		t.Fatal(err)
	}
	noisy := func(seed int) *video.GrayImage {
		img := flatImage(64, 48, 100)
		for i := range img.Pix {
			img.Pix[i] = uint8(100 + (seed*7+i*13)%5 - 2)
		}
		return img
	}
	for i := 0; i < cfg.WarmupFrames+30; i++ {
		s.Process(noisy(i))
	}
	total := 0
	for i := 0; i < 50; i++ {
		det, _ := s.Process(noisy(1000 + i))
		total += len(det)
	}
	if total > 2 {
		t.Errorf("noise produced %d detections over 50 frames", total)
	}
}

func TestTwoSeparateObjects(t *testing.T) {
	cfg := DefaultConfig()
	s, err := New(64, 48, cfg)
	if err != nil {
		t.Fatal(err)
	}
	bg := flatImage(64, 48, 100)
	for i := 0; i < cfg.WarmupFrames+10; i++ {
		s.Process(bg)
	}
	img := flatImage(64, 48, 100)
	a := video.Rect{X: 5, Y: 5, W: 8, H: 8}
	b := video.Rect{X: 40, Y: 30, W: 10, H: 6}
	drawBox(img, a, 200)
	drawBox(img, b, 20)
	det, err := s.Process(img)
	if err != nil {
		t.Fatal(err)
	}
	stats := Match([]video.Rect{a, b}, det, 0.5)
	if stats.Matched != 2 {
		t.Errorf("matched %d of 2 objects (detections: %v)", stats.Matched, det)
	}
}

func TestMinRegionAreaFilters(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MinRegionArea = 30
	s, err := New(64, 48, cfg)
	if err != nil {
		t.Fatal(err)
	}
	bg := flatImage(64, 48, 100)
	for i := 0; i < cfg.WarmupFrames+10; i++ {
		s.Process(bg)
	}
	img := flatImage(64, 48, 100)
	drawBox(img, video.Rect{X: 5, Y: 5, W: 4, H: 4}, 220) // 16 px < 30
	det, err := s.Process(img)
	if err != nil {
		t.Fatal(err)
	}
	if len(det) != 0 {
		t.Errorf("small region not filtered: %v", det)
	}
}

func TestAgainstRenderedStream(t *testing.T) {
	// End-to-end fidelity: run the subtractor over rendered synthetic video
	// and require decent recall against the generator's ground-truth boxes.
	spec, _ := video.SpecByName("auburn_c")
	st, err := video.NewStream(spec, vision.NewSpace(1), 777)
	if err != nil {
		t.Fatal(err)
	}
	r := video.NewRenderer(st)
	cfg := DefaultConfig()
	sub, err := New(video.SceneWidth, video.SceneHeight, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var agg MatchStats
	frames := 0
	err = st.Generate(video.GenOptions{DurationSec: 20, SampleEvery: 1}, func(f *video.Frame) error {
		img := r.Render(f)
		det, err := sub.Process(img)
		if err != nil {
			return err
		}
		frames++
		if frames <= cfg.WarmupFrames+15 {
			return nil // let the model settle
		}
		gt := make([]video.Rect, 0, len(f.Sightings))
		for _, s := range f.Sightings {
			gt = append(gt, s.BBox)
		}
		st := Match(gt, det, 0.3)
		agg.GroundTruth += st.GroundTruth
		agg.Detected += st.Detected
		agg.Matched += st.Matched
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if agg.GroundTruth < 50 {
		t.Skipf("window too quiet (%d ground-truth boxes)", agg.GroundTruth)
	}
	if r := agg.Recall(); r < 0.7 {
		t.Errorf("detector recall %.2f over rendered stream, want >= 0.7 (gt=%d det=%d)",
			r, agg.GroundTruth, agg.Detected)
	}
}

func TestIoU(t *testing.T) {
	a := video.Rect{X: 0, Y: 0, W: 10, H: 10}
	if v := IoU(a, a); v != 1 {
		t.Errorf("self IoU = %v", v)
	}
	if v := IoU(a, video.Rect{X: 20, Y: 20, W: 5, H: 5}); v != 0 {
		t.Errorf("disjoint IoU = %v", v)
	}
	half := IoU(a, video.Rect{X: 0, Y: 5, W: 10, H: 10})
	if half <= 0.3 || half >= 0.4 { // 50/150
		t.Errorf("half-overlap IoU = %v, want 1/3", half)
	}
}

func TestMatchGreedy(t *testing.T) {
	gt := []video.Rect{{X: 0, Y: 0, W: 10, H: 10}}
	det := []video.Rect{{X: 1, Y: 1, W: 10, H: 10}, {X: 0, Y: 0, W: 10, H: 10}}
	st := Match(gt, det, 0.5)
	if st.Matched != 1 || st.Detected != 2 || st.GroundTruth != 1 {
		t.Errorf("stats = %+v", st)
	}
	if Match(nil, det, 0.5).Recall() != 1 {
		t.Error("recall with no ground truth should be 1")
	}
}

func BenchmarkProcessFrame(b *testing.B) {
	s, err := New(video.SceneWidth, video.SceneHeight, DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	img := flatImage(video.SceneWidth, video.SceneHeight, 100)
	drawBox(img, video.Rect{X: 30, Y: 30, W: 20, H: 12}, 210)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Process(img); err != nil {
			b.Fatal(err)
		}
	}
}
