package query

import (
	"sync"

	"focus/internal/index"
	"focus/internal/vision"
)

// gtCache memoizes the GT-CNN's verdict per cluster. Queries for different
// classes share it: once a centroid has been classified, every future query
// reads the verdict for free (§6.7).
type gtCache struct {
	mu sync.RWMutex
	m  map[index.ClusterID]vision.ClassID
}

func newGTCache() *gtCache {
	return &gtCache{m: make(map[index.ClusterID]vision.ClassID)}
}

func (c *gtCache) get(id index.ClusterID) (vision.ClassID, bool) {
	c.mu.RLock()
	v, ok := c.m[id]
	c.mu.RUnlock()
	return v, ok
}

func (c *gtCache) put(id index.ClusterID, v vision.ClassID) {
	c.mu.Lock()
	c.m[id] = v
	c.mu.Unlock()
}

func (c *gtCache) len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.m)
}
