// Package query implements Focus's query-time path (§3 QT1–QT4): given a
// class X, look up the top-K ingest index for matching clusters (QT2), run
// the expensive GT-CNN on each cluster's centroid object (QT3), and return
// the frames of every cluster whose centroid the GT-CNN confirms as X
// (QT4). The GT-CNN verification step restores the precision that the
// approximate top-K index gives up (§4.1).
//
// Queries can restrict the time range, lower Kx below the indexed K for
// faster-but-lower-recall retrieval, and cap the number of clusters
// examined for batched "give me some results now" retrieval (§5).
package query

import (
	"fmt"
	"sort"

	"focus/internal/cluster"
	"focus/internal/gpu"
	"focus/internal/index"
	"focus/internal/parallel"
	"focus/internal/video"
	"focus/internal/vision"
)

// GTFunc classifies a cluster member with the ground-truth CNN. The engine
// treats it as an expensive oracle: every distinct member classification
// costs GT-CNN GPU time.
type GTFunc func(m cluster.Member) vision.ClassID

// Engine answers queries against one stream's index.
// Safe for concurrent use by multiple queries.
type Engine struct {
	ix     *index.Index
	gt     *vision.Model
	gtFn   GTFunc
	meter  *gpu.Meter
	space  *vision.Space
	gtCost float64

	// gtCache memoizes GT-CNN verdicts per cluster so repeated queries
	// never pay for the same centroid twice (§6.7: "we run GT-CNN per
	// object cluster only once").
	gtCache *gtCache
}

// NewEngine builds a query engine. gtFn must be the stream-consistent
// ground-truth classifier; meter may be nil to skip accounting.
func NewEngine(ix *index.Index, gt *vision.Model, space *vision.Space, gtFn GTFunc, meter *gpu.Meter) (*Engine, error) {
	if ix == nil || gt == nil || gtFn == nil {
		return nil, fmt.Errorf("query: index, GT model and GT function are required")
	}
	return &Engine{
		ix:      ix,
		gt:      gt,
		gtFn:    gtFn,
		meter:   meter,
		space:   space,
		gtCost:  gt.CostMS(),
		gtCache: newGTCache(),
	}, nil
}

// Options tunes one query.
type Options struct {
	// Kx, when in [1, K), restricts retrieval to clusters that rank the
	// class within their top-Kx, trading recall for latency (§5). Zero
	// uses the index's full K.
	Kx int
	// StartSec/EndSec restrict the query to a time window; EndSec <= 0
	// means unbounded.
	StartSec, EndSec float64
	// MaxClusters caps how many clusters are examined, for batched
	// retrieval of "the first few results" (§5). Zero examines all.
	MaxClusters int
	// MaxSealSec, when positive, restricts the query to clusters sealed at
	// or before this ingest watermark. A query at watermark W is a pure
	// function of (class, options, W): ingestion advancing past W never
	// changes its answer, so queries never race a live ingester and results
	// may be cached per watermark. Zero queries everything indexed so far;
	// negative matches nothing (the horizon before any watermark has been
	// published).
	MaxSealSec float64
	// NumGPUs is the parallelism available for GT-CNN verification; the
	// reported latency is the makespan across this many GPUs. Zero means 1.
	NumGPUs int
}

// Result is the answer to one query.
type Result struct {
	// Class is the queried class.
	Class vision.ClassID
	// Frames are the matching frame IDs, ascending and de-duplicated.
	Frames []video.FrameID
	// Segments are the 1-second segments covered by Frames, ascending.
	Segments []video.SegmentID
	// ExaminedClusters is how many clusters were retrieved from the index.
	ExaminedClusters int
	// MatchedClusters is how many of those the GT-CNN confirmed.
	MatchedClusters int
	// GTInferences is how many GT-CNN invocations this query actually paid
	// for (cache hits from earlier queries are free).
	GTInferences int
	// GPUTimeMS is the total GPU time consumed.
	GPUTimeMS float64
	// LatencyMS is the simulated query latency: the GT-CNN verification
	// makespan across NumGPUs.
	LatencyMS float64
	// ViaOther reports that the class was not among the specialized ingest
	// model's classes and was answered through the OTHER postings (§4.3).
	ViaOther bool
}

// Candidates performs the retrieval half of a query (QT1/QT2) without any
// GT-CNN verification: it looks up the clusters that index class c within
// the Kx cut, applies the watermark (MaxSealSec), window, and MaxClusters
// filters, and returns the surviving records in retrieval order — postings
// rank order, the same order Query examines them in. viaOther reports that
// the class was not in a specialized ingest model's vocabulary and was
// routed through the OTHER postings (§4.3).
//
// Retrieval touches only the in-memory index, so callers (the compound
// query planner) use it to estimate a predicate leaf's selectivity before
// spending any GPU time.
func (e *Engine) Candidates(c vision.ClassID, opts Options) (cands []*index.ClusterRecord, viaOther bool, err error) {
	if opts.Kx < 0 || opts.MaxClusters < 0 {
		return nil, false, fmt.Errorf("query: negative Kx or MaxClusters")
	}
	meta := e.ix.Meta()
	lookup := c
	if meta.Specialized && c != vision.ClassOther && !containsClass(meta.SpecialClasses, c) {
		lookup = vision.ClassOther
		viaOther = true
	}
	recs := e.ix.Lookup(lookup, opts.Kx)
	cands = make([]*index.ClusterRecord, 0, len(recs))
	for _, rec := range recs {
		if opts.MaxClusters > 0 && len(cands) >= opts.MaxClusters {
			break
		}
		if opts.MaxSealSec != 0 && rec.SealSec > opts.MaxSealSec {
			continue
		}
		if !overlapsWindow(rec, opts) {
			continue
		}
		cands = append(cands, rec)
	}
	return cands, viaOther, nil
}

// SealedClusters returns the cluster records visible at the options'
// watermark (MaxSealSec, same semantics as Candidates) that overlap the
// options' time window, ascending by cluster ID, capped at MaxClusters.
// No class lookup is involved: this is the retrieval primitive for the
// track layer, which assembles every visible sighting into tracks first
// and consults class postings only afterwards. Like Candidates it touches
// only the in-memory index — no GPU time.
func (e *Engine) SealedClusters(opts Options) ([]*index.ClusterRecord, error) {
	if opts.MaxClusters < 0 {
		return nil, fmt.Errorf("query: negative MaxClusters")
	}
	recs := e.ix.ClustersSealedBy(opts.MaxSealSec)
	out := make([]*index.ClusterRecord, 0, len(recs))
	for _, rec := range recs {
		if opts.MaxClusters > 0 && len(out) >= opts.MaxClusters {
			break
		}
		if !overlapsWindow(rec, opts) {
			continue
		}
		out = append(out, rec)
	}
	return out, nil
}

// ClassStanding reports how class c stands in one cluster's top-Kx cut,
// applying the same OTHER routing as Candidates (§4.3): conf is the
// cluster-level confidence of the looked-up class (0 when absent), inCut
// reports whether its rank is within the effective Kx, and viaOther reports
// that the class was routed through the OTHER postings. A class outside the
// cut can be rejected without a GT-CNN invocation — the index already
// vouches the cluster does not plausibly contain it — which is how the
// track layer prices class predicates before spending GPU time.
func (e *Engine) ClassStanding(rec *index.ClusterRecord, c vision.ClassID, kx int) (conf float64, inCut, viaOther bool) {
	meta := e.ix.Meta()
	lookup := c
	if meta.Specialized && c != vision.ClassOther && !containsClass(meta.SpecialClasses, c) {
		lookup = vision.ClassOther
		viaOther = true
	}
	if kx <= 0 || kx > meta.K {
		kx = meta.K
	}
	for i, p := range rec.TopK {
		if p.Class == lookup {
			return float64(p.Confidence), i < kx, viaOther
		}
	}
	return 0, false, viaOther
}

// BatchVerifier runs GT-CNN verification over batches of cluster records,
// accumulating cost across batches: verdicts are memoized in the engine's
// shared gtCache (an object cluster is never verified twice, §6.7), cache
// misses within a batch fan out across numGPUs workers, and every miss is
// submitted to one simulated GPU pool so LatencyMS reports the makespan of
// all verification this verifier has performed. The compound query planner
// drives one verifier per stream through many incremental batches; Query
// uses one for its single batch. Not safe for concurrent use.
type BatchVerifier struct {
	e       *Engine
	pool    *gpu.Pool
	numGPUs int

	// Inferences counts the GT-CNN invocations actually paid for (cache
	// hits are free); GPUTimeMS is their total simulated cost.
	Inferences int
	GPUTimeMS  float64
}

// NewBatchVerifier builds a verifier scheduling across numGPUs simulated
// GPUs (minimum 1).
func (e *Engine) NewBatchVerifier(numGPUs int) (*BatchVerifier, error) {
	if numGPUs <= 0 {
		numGPUs = 1
	}
	pool, err := gpu.NewPool(numGPUs)
	if err != nil {
		return nil, err
	}
	return &BatchVerifier{e: e, pool: pool, numGPUs: numGPUs}, nil
}

// Verify returns the GT-CNN verdict for each record, in order. Cache misses
// are verified as one batch fanned out across the verifier's GPU workers —
// the whole batch is in hand, so there is no reason to verify one at a time.
// Cache fills, meter charges and simulated-pool submissions then run in
// input order, keeping every counter and the makespan bit-identical to the
// sequential path.
func (v *BatchVerifier) Verify(cands []*index.ClusterRecord) []vision.ClassID {
	e := v.e
	verdicts := make([]vision.ClassID, len(cands))
	misses := make([]int, 0, len(cands))
	for i, rec := range cands {
		if verdict, ok := e.gtCache.get(rec.ID); ok {
			verdicts[i] = verdict
		} else {
			misses = append(misses, i)
		}
	}
	workers := parallel.StreamWorkers(len(misses), v.numGPUs)
	parallel.ForEach(workers, workers, func(w int) error {
		// Strided partition: verification costs are uniform, so stride w
		// balances the batch across workers without coordination. Each
		// worker paces its own share of the simulated GPU stalls.
		var pacer *gpu.Pacer
		if e.meter != nil {
			pacer = e.meter.NewPacer()
		}
		for j := w; j < len(misses); j += workers {
			i := misses[j]
			verdicts[i] = e.gtFn(cands[i].Rep)
			if pacer != nil {
				pacer.Add(e.gtCost)
			}
		}
		if pacer != nil {
			pacer.Flush()
		}
		return nil
	})
	for _, i := range misses {
		e.gtCache.put(cands[i].ID, verdicts[i])
		v.Inferences++
		v.GPUTimeMS += e.gtCost
		v.pool.Submit(e.gtCost)
		if e.meter != nil {
			e.meter.AddQuery(e.gtCost)
		}
	}
	return verdicts
}

// LatencyMS is the simulated makespan of all verification performed so far:
// the query latency across the verifier's GPUs.
func (v *BatchVerifier) LatencyMS() float64 { return v.pool.MakespanMS() }

// Query answers "find all frames containing class c" (§3).
func (e *Engine) Query(c vision.ClassID, opts Options) (*Result, error) {
	// QT1/QT2: retrieve candidate clusters. A class outside a specialized
	// ingest model's vocabulary lives in the OTHER postings (§4.3).
	cands, viaOther, err := e.Candidates(c, opts)
	if err != nil {
		return nil, err
	}
	res := &Result{Class: c, ViaOther: viaOther, ExaminedClusters: len(cands)}

	// QT3: GT-CNN on each centroid object, memoized per cluster.
	verifier, err := e.NewBatchVerifier(opts.NumGPUs)
	if err != nil {
		return nil, err
	}
	verdicts := verifier.Verify(cands)
	res.GTInferences = verifier.Inferences
	res.GPUTimeMS = verifier.GPUTimeMS

	// QT4: the frames of every cluster whose centroid matched.
	frameSet := make(map[video.FrameID]struct{})
	segSet := make(map[video.SegmentID]struct{})
	for i, rec := range cands {
		if verdicts[i] != c {
			continue
		}
		res.MatchedClusters++
		for _, m := range rec.Members {
			if !inWindow(m.TimeSec, opts) {
				continue
			}
			frameSet[m.Frame] = struct{}{}
			segSet[video.SegmentOf(m.TimeSec)] = struct{}{}
		}
	}
	res.LatencyMS = verifier.LatencyMS()

	res.Frames = make([]video.FrameID, 0, len(frameSet))
	for f := range frameSet {
		res.Frames = append(res.Frames, f)
	}
	sort.Slice(res.Frames, func(i, j int) bool { return res.Frames[i] < res.Frames[j] })
	res.Segments = make([]video.SegmentID, 0, len(segSet))
	for s := range segSet {
		res.Segments = append(res.Segments, s)
	}
	sort.Slice(res.Segments, func(i, j int) bool { return res.Segments[i] < res.Segments[j] })
	return res, nil
}

// CachedVerdicts returns how many cluster verdicts are memoized, a measure
// of cross-query GT-CNN reuse (§6.7).
func (e *Engine) CachedVerdicts() int { return e.gtCache.len() }

func overlapsWindow(rec *index.ClusterRecord, opts Options) bool {
	if opts.EndSec > 0 && rec.MinTime > opts.EndSec {
		return false
	}
	if rec.MaxTime < opts.StartSec {
		return false
	}
	return true
}

func inWindow(t float64, opts Options) bool {
	if t < opts.StartSec {
		return false
	}
	if opts.EndSec > 0 && t > opts.EndSec {
		return false
	}
	return true
}

func containsClass(cs []vision.ClassID, c vision.ClassID) bool {
	for _, x := range cs {
		if x == c {
			return true
		}
	}
	return false
}
