package query

import (
	"math"
	"testing"

	"focus/internal/simrand"
)

// TestExSampleDeterministic: two allocators fed the same seed and the same
// pull/reward sequence must make identical decisions — the property the
// early-exit executor's per-seed determinism contract rests on.
func TestExSampleDeterministic(t *testing.T) {
	run := func() []int {
		x := NewExSample(simrand.New(42).Derive("exsample-test"), 5)
		var picks []int
		for i := 0; i < 200; i++ {
			arm, ok := x.Pick()
			if !ok {
				t.Fatal("all arms exhausted unexpectedly")
			}
			// A synthetic but deterministic reward: arm 2 always hits,
			// arm 4 hits every 3rd pull, the rest never do.
			hit := arm == 2 || (arm == 4 && i%3 == 0)
			x.Record(arm, hit)
			picks = append(picks, arm)
		}
		return picks
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("pull %d diverged: %d vs %d", i, a[i], b[i])
		}
	}
}

// TestExSampleConvergesToHotArm: with one arm that always rewards and the
// rest never rewarding, Thompson sampling must concentrate the budget on
// the hot arm — the whole point of ExSample over round-robin.
func TestExSampleConvergesToHotArm(t *testing.T) {
	const hot, arms, pulls = 3, 8, 400
	x := NewExSample(simrand.New(7).Derive("converge"), arms)
	counts := make([]int, arms)
	for i := 0; i < pulls; i++ {
		arm, ok := x.Pick()
		if !ok {
			t.Fatal("arms exhausted")
		}
		x.Record(arm, arm == hot)
		counts[arm]++
	}
	for i, n := range counts {
		if i != hot && n >= counts[hot] {
			t.Fatalf("cold arm %d pulled %d times, hot arm only %d: no convergence (%v)",
				i, n, counts[hot], counts)
		}
	}
	if counts[hot] < pulls/2 {
		t.Errorf("hot arm got %d of %d pulls, want a majority (%v)", counts[hot], pulls, counts)
	}
	// Every cold arm is still explored occasionally: Thompson sampling
	// never starves an arm outright.
	for i, n := range counts {
		if n == 0 {
			t.Errorf("arm %d never pulled at all (%v)", i, counts)
		}
	}
}

// TestExSampleExhaustion: retired arms are never picked again, and Pick
// reports ok=false exactly when every arm is retired.
func TestExSampleExhaustion(t *testing.T) {
	x := NewExSample(simrand.New(1).Derive("exhaust"), 3)
	x.Exhaust(0)
	x.Exhaust(2)
	for i := 0; i < 50; i++ {
		arm, ok := x.Pick()
		if !ok {
			t.Fatal("live arm remains but Pick gave up")
		}
		if arm != 1 {
			t.Fatalf("picked retired arm %d", arm)
		}
		x.Record(arm, false)
	}
	if x.Exhausted() {
		t.Fatal("Exhausted true with a live arm")
	}
	x.Exhaust(1)
	if !x.Exhausted() {
		t.Fatal("Exhausted false with every arm retired")
	}
	if _, ok := x.Pick(); ok {
		t.Fatal("Pick returned an arm after full exhaustion")
	}
}

// TestGammaBetaSampleRanges: the samplers stay in their supports and
// produce sane means over many draws (Gamma(k) has mean k; Beta(a,b) has
// mean a/(a+b)).
func TestGammaBetaSampleRanges(t *testing.T) {
	rng := simrand.New(9).Derive("dist")
	const n = 20000
	var gsum float64
	for i := 0; i < n; i++ {
		g := gammaSample(rng, 4)
		if g <= 0 || math.IsNaN(g) || math.IsInf(g, 0) {
			t.Fatalf("gammaSample out of support: %v", g)
		}
		gsum += g
	}
	if mean := gsum / n; mean < 3.8 || mean > 4.2 {
		t.Errorf("Gamma(4) sample mean %.3f, want ≈4", mean)
	}
	var bsum float64
	for i := 0; i < n; i++ {
		b := betaSample(rng, 3, 1)
		if b < 0 || b > 1 || math.IsNaN(b) {
			t.Fatalf("betaSample out of support: %v", b)
		}
		bsum += b
	}
	if mean := bsum / n; mean < 0.72 || mean > 0.78 {
		t.Errorf("Beta(3,1) sample mean %.3f, want ≈0.75", mean)
	}
}
