package query_test

import (
	"testing"

	"focus/internal/query"
	"focus/internal/vision"
)

// TestBatchedVerificationMatchesSequential pins the determinism contract
// of batched GT-CNN verification: with NumGPUs=1 the cache-miss batch is
// verified inline on the calling goroutine (the sequential reference
// path), with NumGPUs>1 it fans out across workers. Everything except the
// simulated makespan — which legitimately depends on the pool size — must
// be identical, on cold and warm caches.
func TestBatchedVerificationMatchesSequential(t *testing.T) {
	const car = vision.ClassID(0)
	var specs []clusterSpec
	for i := 0; i < 57; i++ {
		verdict := car
		if i%3 == 0 {
			verdict = vision.ClassID(1) // GT refutes every third cluster
		}
		specs = append(specs, clusterSpec{
			topK:    []vision.ClassID{car, 2},
			verdict: verdict,
			times:   []float64{float64(i), float64(i) + 0.5},
		})
	}

	run := func(numGPUs int) (*query.Result, *query.Result) {
		ix, gtFn := buildIndex(t, 2, nil, specs)
		e := newEngine(t, ix, gtFn, nil)
		cold, err := e.Query(car, query.Options{NumGPUs: numGPUs})
		if err != nil {
			t.Fatal(err)
		}
		warm, err := e.Query(car, query.Options{NumGPUs: numGPUs})
		if err != nil {
			t.Fatal(err)
		}
		return cold, warm
	}

	seqCold, seqWarm := run(1)
	parCold, parWarm := run(8)

	if seqCold.GTInferences == 0 {
		t.Fatal("cold query paid no GT inferences; test is vacuous")
	}
	for _, pair := range []struct {
		name     string
		seq, par *query.Result
	}{{"cold", seqCold, parCold}, {"warm", seqWarm, parWarm}} {
		seq, par := pair.seq, pair.par
		if seq.ExaminedClusters != par.ExaminedClusters ||
			seq.MatchedClusters != par.MatchedClusters ||
			seq.GTInferences != par.GTInferences ||
			seq.GPUTimeMS != par.GPUTimeMS {
			t.Fatalf("%s: counters diverge: sequential %+v vs batched %+v", pair.name, seq, par)
		}
		if len(seq.Frames) != len(par.Frames) {
			t.Fatalf("%s: %d frames sequential vs %d batched", pair.name, len(seq.Frames), len(par.Frames))
		}
		for i := range seq.Frames {
			if seq.Frames[i] != par.Frames[i] {
				t.Fatalf("%s: frame[%d] diverges", pair.name, i)
			}
		}
	}
	// The simulated makespan is the one legitimate difference: an 8-GPU
	// pool finishes the same batch ~8x sooner.
	if parCold.LatencyMS >= seqCold.LatencyMS {
		t.Fatalf("8-GPU latency %v not below 1-GPU latency %v",
			parCold.LatencyMS, seqCold.LatencyMS)
	}
	if seqWarm.GTInferences != 0 {
		t.Fatalf("warm query paid %d GT inferences", seqWarm.GTInferences)
	}
}
