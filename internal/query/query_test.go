package query_test

import (
	"testing"

	"focus/internal/cluster"
	"focus/internal/gpu"
	"focus/internal/index"
	"focus/internal/query"
	"focus/internal/video"
	"focus/internal/vision"
)

// buildIndex constructs a hand-crafted index: each entry describes one
// cluster as (topK classes, GT verdict of its representative, member times).
type clusterSpec struct {
	topK    []vision.ClassID
	verdict vision.ClassID
	times   []float64
}

func buildIndex(t *testing.T, k int, specialized []vision.ClassID, specs []clusterSpec) (*index.Index, query.GTFunc) {
	t.Helper()
	meta := index.IngestMeta{Stream: "s", ModelName: "m", K: k, FPS: 30}
	if specialized != nil {
		meta.Specialized = true
		meta.SpecialClasses = specialized
	}
	ix := index.New(meta)
	verdicts := map[int64]vision.ClassID{}
	for i, cs := range specs {
		e, err := cluster.NewEngine(cluster.Config{Threshold: 1000, MaxActive: 10},
			ix.AddCluster)
		if err != nil {
			t.Fatal(err)
		}
		ranked := make([]vision.Prediction, len(cs.topK))
		for j, c := range cs.topK {
			ranked[j] = vision.Prediction{Class: c, Confidence: float32(len(cs.topK) - j)}
		}
		f := make(vision.FeatureVec, vision.FeatureDim)
		for j, tm := range cs.times {
			m := cluster.Member{
				Object:  video.ObjectID(i*100 + j),
				Frame:   video.FrameID(tm * video.NativeFPS),
				TimeSec: tm,
				Seed:    int64(i), // all members share the cluster's seed → rep seed == i
			}
			e.Add(f, m, ranked)
		}
		e.Flush()
		verdicts[int64(i)] = cs.verdict
	}
	gtFn := func(m cluster.Member) vision.ClassID { return verdicts[m.Seed] }
	return ix, gtFn
}

func newEngine(t *testing.T, ix *index.Index, gtFn query.GTFunc, meter *gpu.Meter) *query.Engine {
	t.Helper()
	e, err := query.NewEngine(ix, vision.NewZoo().GT, vision.NewSpace(1), gtFn, meter)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestNewEngineValidation(t *testing.T) {
	ix, gtFn := buildIndex(t, 2, nil, nil)
	if _, err := query.NewEngine(nil, vision.NewZoo().GT, nil, gtFn, nil); err == nil {
		t.Error("nil index accepted")
	}
	if _, err := query.NewEngine(ix, nil, nil, gtFn, nil); err == nil {
		t.Error("nil GT accepted")
	}
	if _, err := query.NewEngine(ix, vision.NewZoo().GT, nil, nil, nil); err == nil {
		t.Error("nil gtFn accepted")
	}
}

func TestBasicQuery(t *testing.T) {
	ix, gtFn := buildIndex(t, 2, nil, []clusterSpec{
		{topK: []vision.ClassID{5, 7}, verdict: 5, times: []float64{1, 2, 3}}, // true class-5 cluster
		{topK: []vision.ClassID{5, 9}, verdict: 9, times: []float64{10, 11}},  // false positive in index
		{topK: []vision.ClassID{8, 2}, verdict: 8, times: []float64{20, 21}},  // unrelated
	})
	var meter gpu.Meter
	e := newEngine(t, ix, gtFn, &meter)
	res, err := e.Query(5, query.Options{NumGPUs: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.ExaminedClusters != 2 {
		t.Errorf("examined = %d, want 2 (both clusters indexing class 5)", res.ExaminedClusters)
	}
	if res.MatchedClusters != 1 {
		t.Errorf("matched = %d, want 1", res.MatchedClusters)
	}
	if len(res.Frames) != 3 {
		t.Errorf("frames = %v", res.Frames)
	}
	if len(res.Segments) != 3 {
		t.Errorf("segments = %v", res.Segments)
	}
	// GPU accounting: two GT inferences at GT cost.
	wantMS := 2 * vision.GTCostMS
	if res.GPUTimeMS != wantMS || res.LatencyMS != wantMS {
		t.Errorf("gpu=%v latency=%v, want %v", res.GPUTimeMS, res.LatencyMS, wantMS)
	}
	if meter.Snapshot().QueryMS != wantMS {
		t.Error("meter mismatch")
	}
	// Frames ascending.
	for i := 1; i < len(res.Frames); i++ {
		if res.Frames[i] <= res.Frames[i-1] {
			t.Error("frames not strictly ascending")
		}
	}
}

func TestVerdictCacheAcrossQueries(t *testing.T) {
	ix, gtFn := buildIndex(t, 2, nil, []clusterSpec{
		{topK: []vision.ClassID{5, 7}, verdict: 5, times: []float64{1}},
	})
	var meter gpu.Meter
	e := newEngine(t, ix, gtFn, &meter)
	r1, err := e.Query(5, query.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r1.GTInferences != 1 {
		t.Fatalf("first query inferences = %d", r1.GTInferences)
	}
	// Querying class 7 examines the same cluster; the verdict is cached
	// (§6.7: GT-CNN runs once per cluster across all queries).
	r2, err := e.Query(7, query.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r2.GTInferences != 0 {
		t.Errorf("second query inferences = %d, want 0 (cached)", r2.GTInferences)
	}
	if r2.LatencyMS != 0 {
		t.Errorf("cached query latency = %v", r2.LatencyMS)
	}
	if r2.MatchedClusters != 0 {
		t.Error("class 7 should not match a cluster whose GT verdict is 5")
	}
	if e.CachedVerdicts() != 1 {
		t.Errorf("cached verdicts = %d", e.CachedVerdicts())
	}
}

func TestKxCutsRetrieval(t *testing.T) {
	ix, gtFn := buildIndex(t, 2, nil, []clusterSpec{
		{topK: []vision.ClassID{5, 7}, verdict: 5, times: []float64{1}}, // 5 at rank 1
		{topK: []vision.ClassID{7, 5}, verdict: 5, times: []float64{2}}, // 5 at rank 2
	})
	e := newEngine(t, ix, gtFn, nil)
	full, err := e.Query(5, query.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if full.ExaminedClusters != 2 {
		t.Fatalf("full K examined = %d", full.ExaminedClusters)
	}
	cut, err := e.Query(5, query.Options{Kx: 1})
	if err != nil {
		t.Fatal(err)
	}
	if cut.ExaminedClusters != 1 {
		t.Errorf("Kx=1 examined = %d, want 1", cut.ExaminedClusters)
	}
}

func TestTimeRangeFilter(t *testing.T) {
	ix, gtFn := buildIndex(t, 1, nil, []clusterSpec{
		{topK: []vision.ClassID{5}, verdict: 5, times: []float64{1, 2}},
		{topK: []vision.ClassID{5}, verdict: 5, times: []float64{100, 101}},
		{topK: []vision.ClassID{5}, verdict: 5, times: []float64{50, 120}}, // straddles
	})
	e := newEngine(t, ix, gtFn, nil)
	res, err := e.Query(5, query.Options{StartSec: 90, EndSec: 110})
	if err != nil {
		t.Fatal(err)
	}
	// Cluster 1 (out of range entirely) must be pruned without GT work.
	if res.ExaminedClusters != 2 {
		t.Errorf("examined = %d, want 2", res.ExaminedClusters)
	}
	// Returned frames must lie within the window: 100, 101 from cluster 2.
	if len(res.Frames) != 2 {
		t.Errorf("frames = %v", res.Frames)
	}
	for _, f := range res.Frames {
		sec := float64(f) / video.NativeFPS
		if sec < 90 || sec > 110 {
			t.Errorf("frame at %.0fs outside window", sec)
		}
	}
}

func TestMaxClustersBatchedRetrieval(t *testing.T) {
	var specs []clusterSpec
	for i := 0; i < 10; i++ {
		specs = append(specs, clusterSpec{
			topK: []vision.ClassID{5}, verdict: 5, times: []float64{float64(i)},
		})
	}
	ix, gtFn := buildIndex(t, 1, nil, specs)
	e := newEngine(t, ix, gtFn, nil)
	res, err := e.Query(5, query.Options{MaxClusters: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.ExaminedClusters != 3 {
		t.Errorf("examined = %d, want 3", res.ExaminedClusters)
	}
	if len(res.Frames) != 3 {
		t.Errorf("frames = %v", res.Frames)
	}
}

func TestOtherClassRouting(t *testing.T) {
	// Specialized index on classes {1, 2}: a query for class 40 must be
	// routed through the OTHER postings and filtered by the GT-CNN (§4.3).
	ix, gtFn := buildIndex(t, 2, []vision.ClassID{1, 2}, []clusterSpec{
		{topK: []vision.ClassID{1, 2}, verdict: 1, times: []float64{1}},
		{topK: []vision.ClassID{vision.ClassOther, 1}, verdict: 40, times: []float64{2, 3}},
		{topK: []vision.ClassID{vision.ClassOther, 2}, verdict: 41, times: []float64{4}},
	})
	e := newEngine(t, ix, gtFn, nil)
	res, err := e.Query(40, query.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.ViaOther {
		t.Error("query not routed via OTHER")
	}
	if res.ExaminedClusters != 2 {
		t.Errorf("examined = %d, want 2 OTHER clusters", res.ExaminedClusters)
	}
	if res.MatchedClusters != 1 || len(res.Frames) != 2 {
		t.Errorf("matched=%d frames=%v", res.MatchedClusters, res.Frames)
	}
	// A specialized class queries directly.
	res, err = e.Query(1, query.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.ViaOther {
		t.Error("specialized class routed via OTHER")
	}
}

func TestQueryParallelism(t *testing.T) {
	var specs []clusterSpec
	for i := 0; i < 40; i++ {
		specs = append(specs, clusterSpec{topK: []vision.ClassID{5}, verdict: 5, times: []float64{float64(i)}})
	}
	ix, gtFn := buildIndex(t, 1, nil, specs)
	e := newEngine(t, ix, gtFn, nil)
	r1, err := e.Query(5, query.Options{NumGPUs: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Fresh engine so the cache doesn't zero the second run.
	e2 := newEngine(t, ix, gtFn, nil)
	r10, err := e2.Query(5, query.Options{NumGPUs: 10})
	if err != nil {
		t.Fatal(err)
	}
	if r10.LatencyMS*9 > r1.LatencyMS {
		t.Errorf("10-GPU latency %v not ~10× below 1-GPU %v", r10.LatencyMS, r1.LatencyMS)
	}
	if r1.GPUTimeMS != r10.GPUTimeMS {
		t.Error("total GPU time should not depend on parallelism")
	}
}

func TestInvalidOptions(t *testing.T) {
	ix, gtFn := buildIndex(t, 1, nil, nil)
	e := newEngine(t, ix, gtFn, nil)
	if _, err := e.Query(5, query.Options{Kx: -1}); err == nil {
		t.Error("negative Kx accepted")
	}
	if _, err := e.Query(5, query.Options{MaxClusters: -2}); err == nil {
		t.Error("negative MaxClusters accepted")
	}
}

func TestQueryAbsentClass(t *testing.T) {
	ix, gtFn := buildIndex(t, 1, nil, []clusterSpec{
		{topK: []vision.ClassID{5}, verdict: 5, times: []float64{1}},
	})
	e := newEngine(t, ix, gtFn, nil)
	res, err := e.Query(999, query.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.ExaminedClusters != 0 || len(res.Frames) != 0 {
		t.Errorf("absent class returned work: %+v", res)
	}
}
