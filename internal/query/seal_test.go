package query_test

import (
	"testing"

	"focus/internal/cluster"
	"focus/internal/index"
	"focus/internal/query"
	"focus/internal/video"
	"focus/internal/vision"
)

// buildSealedIndex makes one cluster per seal time, all indexing class 0
// with a confirming GT verdict.
func buildSealedIndex(t *testing.T, sealTimes []float64) (*index.Index, query.GTFunc) {
	t.Helper()
	ix := index.New(index.IngestMeta{Stream: "s", ModelName: "m", K: 1, FPS: 30})
	for i, at := range sealTimes {
		ix.SetIngestSec(at)
		e, err := cluster.NewEngine(cluster.Config{Threshold: 1000, MaxActive: 4}, ix.AddCluster)
		if err != nil {
			t.Fatal(err)
		}
		f := make(vision.FeatureVec, vision.FeatureDim)
		e.Add(f, cluster.Member{
			Object:  video.ObjectID(i),
			Frame:   video.FrameID(i),
			TimeSec: at,
			Seed:    int64(i),
		}, []vision.Prediction{{Class: 0, Confidence: 1}})
		e.Flush()
	}
	return ix, func(m cluster.Member) vision.ClassID { return 0 }
}

// TestMaxSealSecFiltersByWatermark: positive pins the horizon, zero is
// unbounded (the pre-watermark API), negative matches nothing.
func TestMaxSealSecFiltersByWatermark(t *testing.T) {
	ix, gtFn := buildSealedIndex(t, []float64{5, 10, 15})
	e := newEngine(t, ix, gtFn, nil)
	cases := []struct {
		maxSeal float64
		want    int
	}{
		{0, 3},   // unbounded
		{-1, 0},  // empty horizon: nothing sealed yet
		{4.9, 0}, // before the first seal
		{5, 1},   // boundary is inclusive
		{10, 2},
		{12, 2},
		{15, 3},
		{100, 3},
	}
	for _, c := range cases {
		res, err := e.Query(0, query.Options{MaxSealSec: c.maxSeal})
		if err != nil {
			t.Fatal(err)
		}
		if res.ExaminedClusters != c.want || res.MatchedClusters != c.want {
			t.Errorf("MaxSealSec=%v: examined %d matched %d, want %d",
				c.maxSeal, res.ExaminedClusters, res.MatchedClusters, c.want)
		}
		if len(res.Frames) != c.want {
			t.Errorf("MaxSealSec=%v: %d frames, want %d", c.maxSeal, len(res.Frames), c.want)
		}
	}
}

// TestCandidatesMatchSealSemantics pins the MaxSealSec contract on the
// retrieval-only path compound-plan leaves execute through: Candidates must
// apply exactly the filters Query applies — positive pins the horizon, zero
// is unbounded, negative matches nothing (the horizon before any watermark
// was published) — so a plan leaf at any watermark retrieves precisely the
// clusters the equivalent single-class query would examine.
func TestCandidatesMatchSealSemantics(t *testing.T) {
	ix, gtFn := buildSealedIndex(t, []float64{5, 10, 15})
	e := newEngine(t, ix, gtFn, nil)
	for _, maxSeal := range []float64{0, -1, -100, 4.9, 5, 10, 12, 15, 100} {
		opts := query.Options{MaxSealSec: maxSeal}
		cands, viaOther, err := e.Candidates(0, opts)
		if err != nil {
			t.Fatal(err)
		}
		if viaOther {
			t.Errorf("MaxSealSec=%v: unexpected viaOther", maxSeal)
		}
		res, err := e.Query(0, opts)
		if err != nil {
			t.Fatal(err)
		}
		if len(cands) != res.ExaminedClusters {
			t.Errorf("MaxSealSec=%v: Candidates %d, Query examined %d — leaf retrieval diverges",
				maxSeal, len(cands), res.ExaminedClusters)
		}
		if maxSeal < 0 && len(cands) != 0 {
			t.Errorf("MaxSealSec=%v: %d candidates, want 0 (negative watermark matches nothing)",
				maxSeal, len(cands))
		}
	}
}

// TestMaxSealSecComposesWithOtherOptions: the watermark filter applies
// before the MaxClusters cap, like the time-window filter.
func TestMaxSealSecComposesWithOtherOptions(t *testing.T) {
	ix, gtFn := buildSealedIndex(t, []float64{5, 10, 15, 20})
	e := newEngine(t, ix, gtFn, nil)
	res, err := e.Query(0, query.Options{MaxSealSec: 15, MaxClusters: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.ExaminedClusters != 2 {
		t.Errorf("examined %d, want MaxClusters cap of 2 after seal filtering", res.ExaminedClusters)
	}
	res, err = e.Query(0, query.Options{MaxSealSec: 10, StartSec: 8})
	if err != nil {
		t.Fatal(err)
	}
	// Seal filter keeps the 5s and 10s clusters; the time window then drops
	// the 5s member.
	if res.ExaminedClusters != 1 || len(res.Frames) != 1 {
		t.Errorf("examined %d frames %d, want 1/1", res.ExaminedClusters, len(res.Frames))
	}
}
