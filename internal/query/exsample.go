// ExSample-style budget allocation (see PAPERS.md: "ExSample: Efficient
// Searches on Video Repositories through Adaptive Sampling"). For "find K
// examples" queries the scan order matters enormously: spending GT-CNN
// verdicts round-robin across streams wastes most of the budget on streams
// where the predicate is rare. ExSample's insight is to treat each unit of
// scannable video as a bandit arm whose reward is "this pull discovered a
// new result", maintain a Beta posterior over each arm's discovery rate,
// and always pull the arm with the highest posterior sample (Thompson
// sampling). Arms that keep producing get pulled more; arms that go quiet
// decay toward the prior and are revisited only when the hot arms dry up.
//
// In this system an arm is a (stream, chunk) pair: each stream's candidate
// clusters are consumed in fixed-size chunks (the plan layer's
// StepClusters refinement quantum), so pulling a stream's arm means
// resolving its next chunk. A pull's reward is Bernoulli — did the chunk
// surface at least one new settled result? — which keeps the posterior a
// conjugate Beta(1+hits, 1+misses) with a uniform prior.
//
// All randomness comes from a caller-seeded simrand.Source, so for a fixed
// seed the pull sequence — and therefore the entire early-exit execution —
// is a pure function of the inputs.
package query

import (
	"math"

	"focus/internal/simrand"
)

// ExSample allocates a verification budget across arms by Thompson
// sampling. Not safe for concurrent use.
type ExSample struct {
	rng  *simrand.Source
	arms []exArm
}

type exArm struct {
	trials    int
	hits      int
	exhausted bool
}

// NewExSample builds an allocator over n arms (identified by index, in the
// caller's fixed order) drawing from the given deterministic source.
func NewExSample(rng *simrand.Source, n int) *ExSample {
	return &ExSample{rng: rng, arms: make([]exArm, n)}
}

// Pick returns the arm to pull next: the live arm with the highest
// Thompson sample from its Beta(1+hits, 1+trials-hits) posterior, ties
// broken by lowest index. ok is false when every arm is exhausted.
//
// Posterior samples are drawn for every live arm on every call, in arm
// order, so the random stream consumed is a function of the live-arm set
// and call count only — nothing about timing or scheduling leaks in.
func (x *ExSample) Pick() (arm int, ok bool) {
	best, bestScore := -1, 0.0
	for i := range x.arms {
		a := &x.arms[i]
		if a.exhausted {
			continue
		}
		score := betaSample(x.rng, float64(1+a.hits), float64(1+a.trials-a.hits))
		if best < 0 || score > bestScore {
			best, bestScore = i, score
		}
	}
	if best < 0 {
		return 0, false
	}
	return best, true
}

// Record accounts one pull of the arm: hit reports whether the pull
// discovered at least one new result.
func (x *ExSample) Record(arm int, hit bool) {
	x.arms[arm].trials++
	if hit {
		x.arms[arm].hits++
	}
}

// Exhaust retires an arm: it has nothing left to resolve and will never be
// picked again.
func (x *ExSample) Exhaust(arm int) { x.arms[arm].exhausted = true }

// Exhausted reports whether every arm is retired.
func (x *ExSample) Exhausted() bool {
	for i := range x.arms {
		if !x.arms[i].exhausted {
			return false
		}
	}
	return true
}

// betaSample draws from Beta(a, b) as Ga/(Ga+Gb) with Ga~Gamma(a),
// Gb~Gamma(b). Both shapes are >= 1 here (Beta posterior with a uniform
// prior), so the Marsaglia–Tsang squeeze applies directly.
func betaSample(rng *simrand.Source, a, b float64) float64 {
	ga := gammaSample(rng, a)
	gb := gammaSample(rng, b)
	if ga+gb == 0 {
		return 0.5
	}
	return ga / (ga + gb)
}

// gammaSample draws from Gamma(shape, 1) for shape >= 1 with the
// Marsaglia–Tsang method: x ~ Normal, v = (1+c·x)^3, accept d·v with the
// standard squeeze/log tests. Expected iterations per draw is < 1.06.
func gammaSample(rng *simrand.Source, shape float64) float64 {
	d := shape - 1.0/3.0
	c := 1.0 / (3.0 * math.Sqrt(d))
	for {
		x := rng.NormFloat64()
		v := 1.0 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := rng.Float64()
		if u < 1.0-0.0331*x*x*x*x {
			return d * v
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1.0-v+math.Log(v)) {
			return d * v
		}
	}
}
