package experiments

import (
	"fmt"

	"focus/internal/parallel"
	"focus/internal/stats"
	"focus/internal/tune"
	"focus/internal/video"
)

// Figure6 reproduces Figure 6: the parameter-selection trade-off space for
// auburn_c — the viable configurations, the Pareto boundary, and the three
// policy points.
func (e *Env) Figure6() (*Table, error) {
	sw, err := e.Sweep("auburn_c", e.Cfg.GenOptions(), ModeFull)
	if err != nil {
		return nil, err
	}
	sel, err := sw.Select(e.Cfg.Targets, tune.Balance)
	if err != nil {
		return nil, err
	}
	optI, err := sw.Select(e.Cfg.Targets, tune.OptIngest)
	if err != nil {
		return nil, err
	}
	optQ, err := sw.Select(e.Cfg.Targets, tune.OptQuery)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "Figure 6",
		Title:   "Parameter selection: Pareto boundary of viable configs (auburn_c)",
		Columns: []string{"point", "model", "K", "T", "norm-ingest", "norm-query", "est-recall", "est-prec"},
	}
	mark := func(c tune.Candidate) string {
		switch {
		case c == sel.Chosen:
			return "Balance"
		case c == optI.Chosen:
			return "Opt-Ingest"
		case c == optQ.Chosen:
			return "Opt-Query"
		}
		return ""
	}
	for _, c := range sel.Pareto {
		t.AddRow(mark(c), c.Model.Name, fi(c.K), f2(c.T),
			fmt.Sprintf("%.5f", c.NormIngest), fmt.Sprintf("%.5f", c.NormQuery),
			f3(c.EstRecall), f3(c.EstPrecision))
	}
	t.AddNote("%d viable configurations, %d on the Pareto boundary",
		len(sel.Viable), len(sel.Pareto))
	t.AddNote("paper: Balance minimizes the sum of normalized ingest and query cost")
	return t, nil
}

// Figure1 reproduces Figure 1: the end-to-end trade-off space for a traffic
// stream — Focus under its three policies versus the two baselines, with
// (I, Q) factors.
func (e *Env) Figure1() (*Table, error) {
	t := &Table{
		ID:      "Figure 1",
		Title:   "Ingest cost vs query latency trade-off (auburn_c)",
		Columns: []string{"system", "norm-ingest", "norm-query-latency", "I-factor", "Q-factor", "recall", "precision"},
	}
	opts := e.Cfg.GenOptions()
	for _, policy := range []tune.Policy{tune.OptIngest, tune.Balance, tune.OptQuery} {
		ev, err := e.EvaluatePolicy("auburn_c", policy, e.Cfg.Targets, ModeFull, opts)
		if err != nil {
			return nil, err
		}
		t.AddRow("Focus-"+string(policy),
			fmt.Sprintf("%.5f", 1/ev.IngestFactor),
			fmt.Sprintf("%.5f", 1/ev.QueryFactor),
			fx(ev.IngestFactor), fx(ev.QueryFactor),
			f3(ev.Recall), f3(ev.Precision))
	}
	t.AddRow("Ingest-all", "1.00000", "0.00000", "1x", "-", "1.000", "1.000")
	t.AddRow("Query-all", "0.00000", "1.00000", "-", "1x", "1.000", "1.000")
	t.AddNote("paper (auburn_c): Opt-Ingest (I=141x, Q=46x), Balance (I=86x, Q=56x), Opt-Query (I=26x, Q=63x)")
	return t, nil
}

// Figure7 reproduces Figure 7: per-stream ingest cost versus Ingest-all
// (top) and query latency versus Query-all (bottom) under the Balance
// policy, across all thirteen streams.
func (e *Env) Figure7() (*Table, error) {
	t := &Table{
		ID:    "Figure 7",
		Title: "Focus vs baselines per stream (Balance policy)",
		Columns: []string{"stream", "type", "ingest-cheaper-by", "query-faster-by",
			"recall", "precision", "model", "K", "clusters"},
	}
	opts := e.Cfg.GenOptions()
	specs := video.Table1Specs()
	// Streams evaluate independently — tune, ingest and query all thirteen
	// with concurrent per-stream workers, then emit rows in Table 1 order.
	evals, err := parallel.Map(parallel.CPUWorkers(0), len(specs), func(i int) (*PolicyEval, error) {
		return e.EvaluatePolicy(specs[i].Name, tune.Balance, e.Cfg.Targets, ModeFull, opts)
	})
	if err != nil {
		return nil, err
	}
	var iFactors, qFactors []float64
	for i, ev := range evals {
		iFactors = append(iFactors, ev.IngestFactor)
		qFactors = append(qFactors, ev.QueryFactor)
		t.AddRow(specs[i].Name, string(specs[i].Type), fx(ev.IngestFactor), fx(ev.QueryFactor),
			f3(ev.Recall), f3(ev.Precision), ev.Chosen.Model.Name, fi(ev.Chosen.K), fi(ev.Clusters))
	}
	t.AddNote("average: ingest %.0fx cheaper, query %.0fx faster (paper: 58x and 37x)",
		stats.Mean(iFactors), stats.Mean(qFactors))
	t.AddNote("paper ranges: ingest 43x-98x, query 11x-57x")
	return t, nil
}

// Figure8 reproduces Figure 8: the contribution of each design component —
// generic compressed model, plus specialization, plus clustering — to
// ingest cost (a) and query latency (b).
func (e *Env) Figure8() (*Table, error) {
	t := &Table{
		ID:    "Figure 8",
		Title: "Effect of Focus components (Balance policy)",
		Columns: []string{"stream",
			"ingest: compressed", "+specialized", "+clustering",
			"query: compressed", "+specialized", "+clustering"},
	}
	opts := e.Cfg.GenOptions()
	modes := []SweepMode{ModeCompressedOnly, ModeNoClustering, ModeFull}
	names := video.RepresentativeNames()
	// Fan out per stream, with the three modes evaluated serially inside
	// each worker: the modes of one stream share its memoized ground
	// truth, and evaluating them in one worker avoids three concurrent
	// misses racing to compute it.
	evals, err := parallel.Map(parallel.CPUWorkers(0), len(names), func(ni int) ([]*PolicyEval, error) {
		out := make([]*PolicyEval, len(modes))
		for mi, mode := range modes {
			ev, err := e.EvaluatePolicy(names[ni], tune.Balance, e.Cfg.Targets, mode, opts)
			if err != nil {
				return nil, err
			}
			out[mi] = ev
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	var avgI, avgQ [3][]float64
	for ni, name := range names {
		row := []string{name}
		var iCells, qCells []string
		for mi := range modes {
			ev := evals[ni][mi]
			iCells = append(iCells, fx(ev.IngestFactor))
			qCells = append(qCells, fx(ev.QueryFactor))
			avgI[mi] = append(avgI[mi], ev.IngestFactor)
			avgQ[mi] = append(avgQ[mi], ev.QueryFactor)
		}
		row = append(row, iCells...)
		row = append(row, qCells...)
		t.AddRow(row...)
	}
	t.AddNote("average ingest factors: %s / %s / %s",
		fx(stats.Mean(avgI[0])), fx(stats.Mean(avgI[1])), fx(stats.Mean(avgI[2])))
	t.AddNote("average query factors: %s / %s / %s",
		fx(stats.Mean(avgQ[0])), fx(stats.Mean(avgQ[1])), fx(stats.Mean(avgQ[2])))
	t.AddNote("paper: specialization is the main ingest win; clustering adds up to 56x query speedup at negligible ingest cost")
	return t, nil
}

// Figure9 reproduces Figure 9: the (I, Q) factors of the Opt-Ingest and
// Opt-Query policies per stream, showing the flexibility of the trade-off.
func (e *Env) Figure9() (*Table, error) {
	t := &Table{
		ID:      "Figure 9",
		Title:   "Trade-offs between ingest cost and query latency per stream",
		Columns: []string{"stream", "OptI ingest", "OptI query", "OptQ ingest", "OptQ query"},
	}
	opts := e.Cfg.GenOptions()
	names := video.RepresentativeNames()
	type pair struct{ oi, oq *PolicyEval }
	pairs, err := parallel.Map(parallel.CPUWorkers(0), len(names), func(i int) (pair, error) {
		oi, err := e.EvaluatePolicy(names[i], tune.OptIngest, e.Cfg.Targets, ModeFull, opts)
		if err != nil {
			return pair{}, err
		}
		oq, err := e.EvaluatePolicy(names[i], tune.OptQuery, e.Cfg.Targets, ModeFull, opts)
		if err != nil {
			return pair{}, err
		}
		return pair{oi, oq}, nil
	})
	if err != nil {
		return nil, err
	}
	var oiI, oiQ, oqI, oqQ []float64
	for i, p := range pairs {
		name, oi, oq := names[i], p.oi, p.oq
		oiI = append(oiI, oi.IngestFactor)
		oiQ = append(oiQ, oi.QueryFactor)
		oqI = append(oqI, oq.IngestFactor)
		oqQ = append(oqQ, oq.QueryFactor)
		t.AddRow(name, fx(oi.IngestFactor), fx(oi.QueryFactor),
			fx(oq.IngestFactor), fx(oq.QueryFactor))
	}
	t.AddNote("averages: Opt-Ingest (I=%s, Q=%s), Opt-Query (I=%s, Q=%s)",
		fx(stats.Mean(oiI)), fx(stats.Mean(oiQ)), fx(stats.Mean(oqI)), fx(stats.Mean(oqQ)))
	t.AddNote("paper averages: Opt-Ingest (I=95x, Q=35x), Opt-Query (I=15x, Q=49x)")
	return t, nil
}
