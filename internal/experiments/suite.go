package experiments

import (
	"fmt"
	"io"
	"sort"
)

// Experiment names accepted by Run, in paper order.
var experimentOrder = []string{
	"table1",
	"fig3",
	"occupancy",
	"nnfeatures",
	"fig5",
	"fig6",
	"fig1",
	"fig7",
	"fig8",
	"fig9",
	"fig10-11",
	"fig12-13",
	"sec6.7",
}

// Names returns the runnable experiment identifiers in paper order.
func Names() []string {
	return append([]string(nil), experimentOrder...)
}

// Run executes one experiment by name and returns its tables (most produce
// one; the sensitivity pairs produce two).
func (e *Env) Run(name string) ([]*Table, error) {
	one := func(t *Table, err error) ([]*Table, error) {
		if err != nil {
			return nil, err
		}
		return []*Table{t}, nil
	}
	two := func(a, b *Table, err error) ([]*Table, error) {
		if err != nil {
			return nil, err
		}
		return []*Table{a, b}, nil
	}
	switch name {
	case "table1":
		return one(e.Table1())
	case "fig3":
		return one(e.Figure3())
	case "occupancy":
		return one(e.CharacterizationOccupancy())
	case "nnfeatures":
		return one(e.CharacterizationNNFeatures())
	case "fig5":
		return one(e.Figure5())
	case "fig6":
		return one(e.Figure6())
	case "fig1":
		return one(e.Figure1())
	case "fig7":
		return one(e.Figure7())
	case "fig8":
		return one(e.Figure8())
	case "fig9":
		return one(e.Figure9())
	case "fig10-11":
		return two(e.Figures10And11())
	case "fig12-13":
		return two(e.Figures12And13())
	case "sec6.7":
		return one(e.Section67())
	default:
		known := Names()
		sort.Strings(known)
		return nil, fmt.Errorf("experiments: unknown experiment %q (known: %v)", name, known)
	}
}

// RunAll executes the full suite in paper order, rendering each table to w
// as it completes, and returns all tables.
func (e *Env) RunAll(w io.Writer) ([]*Table, error) {
	var out []*Table
	for _, name := range experimentOrder {
		tables, err := e.Run(name)
		if err != nil {
			return out, fmt.Errorf("experiments: %s: %w", name, err)
		}
		for _, t := range tables {
			if w != nil {
				if err := t.Render(w); err != nil {
					return out, err
				}
			}
			out = append(out, t)
		}
	}
	return out, nil
}
