package experiments

import (
	"focus/internal/stats"
	"focus/internal/tune"
	"focus/internal/video"
)

// sensitivityStreams is the stream subset the sensitivity studies sweep
// (the paper plots a representative subset for legibility; §6.1).
func sensitivityStreams() []string { return video.RepresentativeNames() }

// Figures10And11 reproduce Figures 10 and 11 (§6.5): ingest cost and query
// latency factors under accuracy targets of 95%, 97%, 98% and 99%. The
// parameter sweep is reused across targets — only the viability filter and
// the chosen configuration change.
func (e *Env) Figures10And11() (*Table, *Table, error) {
	targets := []float64{0.95, 0.97, 0.98, 0.99}
	ingestT := &Table{
		ID:      "Figure 10",
		Title:   "Ingest cost sensitivity to accuracy target",
		Columns: []string{"stream", "95%", "97%", "98%", "99%"},
	}
	queryT := &Table{
		ID:      "Figure 11",
		Title:   "Query latency sensitivity to accuracy target",
		Columns: []string{"stream", "95%", "97%", "98%", "99%"},
	}
	opts := e.Cfg.GenOptions()
	avgI := make([][]float64, len(targets))
	avgQ := make([][]float64, len(targets))
	for _, name := range sensitivityStreams() {
		iRow := []string{name}
		qRow := []string{name}
		for ti, tgt := range targets {
			ev, err := e.EvaluatePolicy(name, tune.Balance,
				tune.Targets{Recall: tgt, Precision: tgt}, ModeFull, opts)
			if err != nil {
				// Unattainable targets on a given sample are reported, not
				// fatal: the paper's streams always had viable configs, but
				// a scaled-down window may not at 99%.
				iRow = append(iRow, "n/a")
				qRow = append(qRow, "n/a")
				continue
			}
			iRow = append(iRow, fx(ev.IngestFactor))
			qRow = append(qRow, fx(ev.QueryFactor))
			avgI[ti] = append(avgI[ti], ev.IngestFactor)
			avgQ[ti] = append(avgQ[ti], ev.QueryFactor)
		}
		ingestT.AddRow(iRow...)
		queryT.AddRow(qRow...)
	}
	ingestT.AddNote("averages: %s / %s / %s / %s (paper: ~62x-64x, roughly flat)",
		fx(stats.Mean(avgI[0])), fx(stats.Mean(avgI[1])), fx(stats.Mean(avgI[2])), fx(stats.Mean(avgI[3])))
	queryT.AddNote("averages: %s / %s / %s / %s (paper: 37x / 15x / 12x / 8x, decreasing)",
		fx(stats.Mean(avgQ[0])), fx(stats.Mean(avgQ[1])), fx(stats.Mean(avgQ[2])), fx(stats.Mean(avgQ[3])))
	return ingestT, queryT, nil
}

// Figures12And13 reproduce Figures 12 and 13 (§6.6): sensitivity to frame
// sampling at 30, 10, 5 and 1 fps.
func (e *Env) Figures12And13() (*Table, *Table, error) {
	rates := []struct {
		label       string
		sampleEvery int
	}{
		{"30fps", 1}, {"10fps", 3}, {"5fps", 6}, {"1fps", 30},
	}
	ingestT := &Table{
		ID:      "Figure 12",
		Title:   "Ingest cost sensitivity to frame sampling",
		Columns: []string{"stream", "30fps", "10fps", "5fps", "1fps"},
	}
	queryT := &Table{
		ID:      "Figure 13",
		Title:   "Query latency sensitivity to frame sampling",
		Columns: []string{"stream", "30fps", "10fps", "5fps", "1fps"},
	}
	avgI := make([][]float64, len(rates))
	avgQ := make([][]float64, len(rates))
	for _, name := range sensitivityStreams() {
		iRow := []string{name}
		qRow := []string{name}
		for ri, r := range rates {
			opts := video.GenOptions{DurationSec: e.Cfg.DurationSec, SampleEvery: r.sampleEvery}
			ev, err := e.EvaluatePolicy(name, tune.Balance, e.Cfg.Targets, ModeFull, opts)
			if err != nil {
				iRow = append(iRow, "n/a")
				qRow = append(qRow, "n/a")
				continue
			}
			iRow = append(iRow, fx(ev.IngestFactor))
			qRow = append(qRow, fx(ev.QueryFactor))
			avgI[ri] = append(avgI[ri], ev.IngestFactor)
			avgQ[ri] = append(avgQ[ri], ev.QueryFactor)
		}
		ingestT.AddRow(iRow...)
		queryT.AddRow(qRow...)
	}
	ingestT.AddNote("averages: %s / %s / %s / %s (paper: 62x at 30fps, 58x-64x at lower rates)",
		fx(stats.Mean(avgI[0])), fx(stats.Mean(avgI[1])), fx(stats.Mean(avgI[2])), fx(stats.Mean(avgI[3])))
	queryT.AddNote("averages: %s / %s / %s / %s (paper: degrades with rate, still ~10x at 1fps)",
		fx(stats.Mean(avgQ[0])), fx(stats.Mean(avgQ[1])), fx(stats.Mean(avgQ[2])), fx(stats.Mean(avgQ[3])))
	return ingestT, queryT, nil
}

// Section67 reproduces the §6.7 analysis of extreme query rates:
//
//   - Every class queried: Focus's total cost (ingest + GT-CNN once per
//     cluster) still beats Ingest-all.
//   - Almost nothing queried: running all of Focus's work lazily at query
//     time still beats Query-all.
func (e *Env) Section67() (*Table, error) {
	t := &Table{
		ID:    "§6.7",
		Title: "Applicability under extreme query rates",
		Columns: []string{"stream", "all-queried: cheaper than Ingest-all",
			"lazy Focus: faster than Query-all"},
	}
	opts := e.Cfg.GenOptions()
	var allQ, lazy []float64
	for _, name := range sensitivityStreams() {
		ingestMS, queryMS, ingestAllMS, err := e.QueryAllClasses(name, tune.Balance, e.Cfg.Targets, opts)
		if err != nil {
			return nil, err
		}
		allFactor := ingestAllMS / (ingestMS + queryMS)
		// Lazy Focus: all ingest work plus centroid verification happens at
		// query time; Query-all does one GT inference per sighting (the
		// same GPU total as Ingest-all). Both parallelize over the same
		// GPUs, so the GPU-time ratio equals the latency ratio.
		ev, err := e.EvaluatePolicy(name, tune.Balance, e.Cfg.Targets, ModeFull, opts)
		if err != nil {
			return nil, err
		}
		perQueryGPU := ev.QueryGPUTotalMS / float64(e.Cfg.DominantClasses)
		lazyFactor := ev.IngestAllGPUMS / (ev.IngestGPUMS + perQueryGPU)
		allQ = append(allQ, allFactor)
		lazy = append(lazy, lazyFactor)
		t.AddRow(name, f1(allFactor), f1(lazyFactor))
	}
	t.AddNote("averages: all-queried %.1fx (paper: 4x, up to 6x); lazy %.1fx (paper: 22x, up to 34x)",
		stats.Mean(allQ), stats.Mean(lazy))
	return t, nil
}
