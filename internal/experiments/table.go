package experiments

import (
	"fmt"
	"io"
	"strings"
)

// Table is one experiment's output: the rows/series a figure or table of
// the paper reports, plus free-form notes comparing against the paper's
// numbers.
type Table struct {
	// ID names the paper artifact ("Figure 7", "Table 1", "§6.7").
	ID string
	// Title describes the experiment.
	Title string
	// Columns are the column headers.
	Columns []string
	// Rows are the data rows, already formatted.
	Rows [][]string
	// Notes hold summary lines (averages, paper-reported references).
	Notes []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// AddNote appends a summary note.
func (t *Table) AddNote(format string, args ...interface{}) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Render writes the table as fixed-width text.
func (t *Table) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title); err != nil {
		return err
	}
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) string {
		var b strings.Builder
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			if pad := widths[i] - len(cell); pad > 0 && i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", pad))
			}
		}
		return b.String()
	}
	if _, err := fmt.Fprintln(w, line(t.Columns)); err != nil {
		return err
	}
	total := 0
	for _, wd := range widths {
		total += wd + 2
	}
	if _, err := fmt.Fprintln(w, strings.Repeat("-", total)); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintln(w, line(row)); err != nil {
			return err
		}
	}
	for _, n := range t.Notes {
		if _, err := fmt.Fprintf(w, "note: %s\n", n); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// CSV writes the table in CSV form (for external plotting).
func (t *Table) CSV(w io.Writer) error {
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	cells := make([]string, len(t.Columns))
	for i, c := range t.Columns {
		cells[i] = esc(c)
	}
	if _, err := fmt.Fprintln(w, strings.Join(cells, ",")); err != nil {
		return err
	}
	for _, row := range t.Rows {
		cells = cells[:0]
		for _, c := range row {
			cells = append(cells, esc(c))
		}
		if _, err := fmt.Fprintln(w, strings.Join(cells, ",")); err != nil {
			return err
		}
	}
	return nil
}

func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string { return fmt.Sprintf("%.3f", v) }
func fx(v float64) string { return fmt.Sprintf("%.0fx", v) }
func fi(v int) string     { return fmt.Sprintf("%d", v) }
