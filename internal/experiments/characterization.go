package experiments

import (
	"fmt"
	"math"

	"focus/internal/stats"
	"focus/internal/video"
	"focus/internal/vision"
)

// Table1 reproduces Table 1: the stream inventory, extended with the
// measured scale of each generated stream at the experiment window.
func (e *Env) Table1() (*Table, error) {
	t := &Table{
		ID:      "Table 1",
		Title:   "Video dataset characteristics",
		Columns: []string{"type", "name", "location", "sightings", "objects", "classes", "empty%", "description"},
	}
	opts := e.Cfg.GenOptions()
	for _, spec := range video.Table1Specs() {
		truth, err := e.Truth(spec.Name, opts)
		if err != nil {
			return nil, err
		}
		objects := 0
		for _, n := range truth.ObjectsPerClass {
			objects += n
		}
		t.AddRow(string(spec.Type), spec.Name, spec.Location,
			fi(truth.TotalSightings), fi(objects), fi(len(truth.PresentClasses())),
			f1(100*float64(truth.EmptyFrames)/float64(truth.TotalFrames)),
			spec.Description)
	}
	t.AddNote("window: %.0fs at %.1f fps per stream (paper: 12 hours at 30 fps)",
		e.Cfg.DurationSec, opts.EffectiveFPS())
	return t, nil
}

// Figure3 reproduces Figure 3 (§2.2.2): the skew of per-stream class
// frequency — the share of occurring classes needed to cover 95% of
// objects — plus vocabulary sizes and cross-stream Jaccard overlap.
func (e *Env) Figure3() (*Table, error) {
	t := &Table{
		ID:    "Figure 3",
		Title: "CDF of frequency of object classes (per-stream class skew)",
		Columns: []string{"stream", "classes-occurring", "vocab", "head-for-95%",
			"head-share-of-vocab", "vocab-of-1000"},
	}
	// Class-occurrence statistics need object volume: a short window sees
	// so few objects that the head/tail split is meaningless. Use a long
	// strided window, as for the other characterization measurements.
	opts := video.GenOptions{DurationSec: math.Max(e.Cfg.DurationSec, 3600), SampleEvery: 12}
	sets := make(map[string]map[vision.ClassID]bool)
	for _, name := range video.CharacterizationNames() {
		truth, err := e.Truth(name, opts)
		if err != nil {
			return nil, err
		}
		st, err := e.Stream(name)
		if err != nil {
			return nil, err
		}
		// The measured occurring-class count under-counts the tail at this
		// scale (the paper's windows hold two orders of magnitude more
		// objects); the stream's full vocabulary is the asymptotic value
		// the paper's percentages refer to.
		vocab := len(st.Vocabulary())
		head, occurring := stats.HeadCoverage(truth.ObjectsPerClass, 0.95)
		// Cross-stream overlap is measured on the vocabularies (the classes
		// that occur in the limit), not the finite sample, for the same
		// under-counting reason as the vocab column.
		set := make(map[vision.ClassID]bool)
		for _, c := range st.Vocabulary() {
			set[c] = true
		}
		sets[name] = set
		t.AddRow(name, fi(occurring), fi(vocab), fi(head),
			fmt.Sprintf("%.1f%%", 100*float64(head)/float64(vocab)),
			fmt.Sprintf("%.1f%%", 100*float64(vocab)/vision.NumClasses))
	}
	// Mean pairwise Jaccard of occurring-class sets (paper: 0.46).
	var sum float64
	n := 0
	names := video.CharacterizationNames()
	for i := range names {
		for j := i + 1; j < len(names); j++ {
			sum += stats.Jaccard(sets[names[i]], sets[names[j]])
			n++
		}
	}
	t.AddNote("mean pairwise Jaccard of class sets: %.2f (paper: 0.46)", sum/float64(n))
	t.AddNote("paper: 3%%-10%% of occurring classes cover >=95%% of objects")
	return t, nil
}

// CharacterizationOccupancy reproduces the §2.2.1 measurements: the share
// of frames with no moving objects and the frame share of the most
// frequent class.
func (e *Env) CharacterizationOccupancy() (*Table, error) {
	t := &Table{
		ID:      "§2.2.1",
		Title:   "Excludable video and per-class frame occurrence",
		Columns: []string{"stream", "empty-frames", "top-class", "top-class-frames"},
	}
	opts := e.Cfg.GenOptions()
	for _, name := range video.CharacterizationNames() {
		truth, err := e.Truth(name, opts)
		if err != nil {
			return nil, err
		}
		topClass := vision.ClassID(-1)
		topFrames := 0
		for c, n := range truth.ClassFrames {
			if n > topFrames {
				topFrames = n
				topClass = c
			}
		}
		t.AddRow(name,
			fmt.Sprintf("%.0f%%", 100*float64(truth.EmptyFrames)/float64(truth.TotalFrames)),
			e.Space.Name(topClass),
			fmt.Sprintf("%.0f%%", 100*float64(topFrames)/float64(truth.TotalFrames)))
	}
	t.AddNote("paper: one-third to one-half of frames are empty/stationary;")
	t.AddNote("paper: even the most frequent classes occur in 16%%-43%% of frames")
	return t, nil
}

// CharacterizationNNFeatures reproduces §2.2.3: the fraction of objects
// whose nearest neighbour under cheap-CNN (ResNet18) features belongs to
// the same class, which must exceed 99%.
func (e *Env) CharacterizationNNFeatures() (*Table, error) {
	t := &Table{
		ID:      "§2.2.3",
		Title:   "Nearest-neighbour same-class fraction on cheap-CNN features",
		Columns: []string{"stream", "objects", "same-class-NN"},
	}
	model := e.Zoo.ByName("resnet18")
	// A long window: with heavily skewed class mixes, a short sample
	// leaves many tail classes with a single object, which cannot have a
	// same-class neighbour at all. The paper's 12-hour windows contain
	// thousands of objects per stream.
	opts := video.GenOptions{DurationSec: math.Max(e.Cfg.DurationSec, 3600), SampleEvery: 12}
	for _, name := range video.CharacterizationNames() {
		st, err := e.Stream(name)
		if err != nil {
			return nil, err
		}
		type obj struct {
			class vision.ClassID
			feat  vision.FeatureVec
		}
		var objs []obj
		seen := make(map[video.ObjectID]bool)
		err = st.Generate(opts, func(f *video.Frame) error {
			for i := range f.Sightings {
				s := &f.Sightings[i]
				if seen[s.Object] || len(objs) >= 900 {
					continue
				}
				seen[s.Object] = true
				feat := model.ExtractFeatures(s.Appearance, st.CNNSource(s.Seed, model.Name))
				objs = append(objs, obj{s.TrueClass, feat})
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		if len(objs) < 10 {
			t.AddRow(name, fi(len(objs)), "n/a")
			continue
		}
		// Objects whose class occurs once in the sample cannot have a
		// same-class neighbour; they are a sampling artifact of the scaled
		// window (the paper's 12-hour windows have no such gaps) and are
		// excluded from the measurement.
		classCount := make(map[vision.ClassID]int)
		for i := range objs {
			classCount[objs[i].class]++
		}
		same, measured := 0, 0
		for i := range objs {
			if classCount[objs[i].class] < 2 {
				continue
			}
			measured++
			best, bestD := -1, math.Inf(1)
			for j := range objs {
				if i == j {
					continue
				}
				if d := vision.SquaredL2Distance(objs[i].feat, objs[j].feat); d < bestD {
					bestD, best = d, j
				}
			}
			if objs[best].class == objs[i].class {
				same++
			}
		}
		t.AddRow(name, fi(measured), fmt.Sprintf("%.1f%%", 100*float64(same)/float64(measured)))
	}
	t.AddNote("paper: over 99%% in each video")
	return t, nil
}

// Figure5 reproduces Figure 5: recall vs K for the three calibrated cheap
// CNNs on the lausanne stream, with their cost factors.
func (e *Env) Figure5() (*Table, error) {
	ks := []int{10, 20, 60, 100, 200}
	models := []string{"resnet18", "resnet18-l3-r112", "resnet18-l5-r56"}

	st, err := e.Stream("lausanne")
	if err != nil {
		return nil, err
	}
	type item struct {
		sighting video.Sighting
		gtLabel  vision.ClassID
	}
	// Stride the window so the sample spans many distinct objects: the
	// cheap models' errors are object-correlated, so recall estimates need
	// object diversity more than sighting volume.
	var sample []item
	opts := video.GenOptions{DurationSec: math.Max(e.Cfg.DurationSec, 300), SampleEvery: 6}
	err = st.Generate(opts, func(f *video.Frame) error {
		for i := range f.Sightings {
			if len(sample) >= 8000 {
				return nil
			}
			s := f.Sightings[i]
			sample = append(sample, item{sighting: s})
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i := range sample {
		s := &sample[i].sighting
		sample[i].gtLabel = e.Zoo.GT.Top1Class(e.Space, s.TrueClass, st.CNNSource(s.Seed, "gt"))
	}

	t := &Table{
		ID:      "Figure 5",
		Title:   "Effect of K on recall for three cheap CNNs (lausanne)",
		Columns: append([]string{"model", "cheaper-by"}, mapToStrings(ks)...),
	}
	for _, name := range models {
		m := e.Zoo.ByName(name)
		if m == nil {
			return nil, fmt.Errorf("experiments: model %q missing", name)
		}
		row := []string{name, fx(m.CheaperThanGT())}
		hits := make([]int, len(ks))
		for i := range sample {
			s := &sample[i].sighting
			out := m.Classify(e.Space, s.TrueClass, s.Appearance,
				st.CNNSource(s.Seed, m.Name),
				st.CNNSource(int64(s.Object), m.Name+"#rank"), 256)
			rank := rankOfLabel(out, sample[i].gtLabel, s.TrueClass)
			for j, k := range ks {
				if rank <= k {
					hits[j]++
				}
			}
		}
		for j := range ks {
			row = append(row, fmt.Sprintf("%.0f%%", 100*float64(hits[j])/float64(len(sample))))
		}
		t.AddRow(row...)
	}
	t.AddNote("paper: 90%% recall at K≈60 / 100 / 200 for models 7x / 28x / 58x cheaper")
	return t, nil
}

// rankOfLabel returns the 1-based rank of the GT label within a cheap
// model's output. When the GT label coincides with the synthetic true
// class (the usual case), the model's own TrueRank applies even beyond the
// materialized entries; otherwise the label is searched in the ranking.
func rankOfLabel(out *vision.Output, gtLabel, trueClass vision.ClassID) int {
	if gtLabel == trueClass {
		return out.TrueRank
	}
	for i, p := range out.Ranked {
		if p.Class == gtLabel {
			return i + 1
		}
	}
	return 1 << 30
}

func mapToStrings(ks []int) []string {
	out := make([]string, len(ks))
	for i, k := range ks {
		out[i] = fmt.Sprintf("K=%d", k)
	}
	return out
}
