package experiments

import (
	"bytes"
	"strconv"
	"strings"
	"testing"

	"focus/internal/tune"
)

// testEnv returns an environment at a reduced scale that keeps the suite's
// tests fast while preserving the statistical behaviour under test.
func testEnv() *Env {
	cfg := DefaultConfig()
	cfg.DurationSec = 150
	return NewEnv(cfg)
}

func TestTableRenderAndCSV(t *testing.T) {
	tb := &Table{
		ID:      "Figure X",
		Title:   "demo",
		Columns: []string{"a", "b"},
	}
	tb.AddRow("1", "quoted,cell")
	tb.AddNote("n = %d", 42)
	var buf bytes.Buffer
	if err := tb.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Figure X", "demo", "a", "quoted,cell", "note: n = 42"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	buf.Reset()
	if err := tb.CSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"quoted,cell"`) {
		t.Errorf("CSV did not escape: %s", buf.String())
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	e := testEnv()
	if _, err := e.Run("fig99"); err == nil {
		t.Error("unknown experiment accepted")
	}
	if len(Names()) != 13 {
		t.Errorf("experiment count = %d", len(Names()))
	}
}

func TestTable1(t *testing.T) {
	e := testEnv()
	tb, err := e.Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 13 {
		t.Fatalf("Table 1 rows = %d, want 13", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		sightings, err := strconv.Atoi(row[3])
		if err != nil || sightings <= 0 {
			t.Errorf("stream %s: sightings = %q", row[1], row[3])
		}
	}
}

func TestFigure3SkewInBand(t *testing.T) {
	if testing.Short() {
		t.Skip("slow end-to-end test; nightly runs the full suite")
	}
	e := testEnv()
	tb, err := e.Figure3()
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 6 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		share := strings.TrimSuffix(row[4], "%")
		v, err := strconv.ParseFloat(share, 64)
		if err != nil {
			t.Fatalf("bad head share %q", row[4])
		}
		// Paper: 3-10% of occurring classes cover 95% of objects.
		if v > 15 {
			t.Errorf("%s: head share %.1f%% too flat", row[0], v)
		}
	}
}

func TestFigure5Shape(t *testing.T) {
	e := testEnv()
	tb, err := e.Figure5()
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 3 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	parse := func(s string) float64 {
		v, err := strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
		if err != nil {
			t.Fatalf("bad recall cell %q", s)
		}
		return v
	}
	// Per model: recall non-decreasing in K (columns 2..6 are K=10..200).
	for _, row := range tb.Rows {
		prev := -1.0
		for _, cell := range row[2:] {
			v := parse(cell)
			if v < prev-3 { // small sampling tolerance
				t.Errorf("%s: recall decreased along K: %v", row[0], row[2:])
			}
			prev = v
		}
	}
	// Cheaper model has lower recall at K=60 (column index 4).
	if parse(tb.Rows[0][4]) <= parse(tb.Rows[2][4]) {
		t.Errorf("expensive model should beat cheap model at K=60: %v vs %v",
			tb.Rows[0][4], tb.Rows[2][4])
	}
	// The calibrated anchors: resnet18 near 90% at K=60, l5-r56 near 90%
	// at K=200 (within sampling tolerance).
	if v := parse(tb.Rows[0][4]); v < 80 || v > 100 {
		t.Errorf("resnet18 recall@60 = %v%%, want ≈90", v)
	}
	if v := parse(tb.Rows[2][6]); v < 80 {
		t.Errorf("l5-r56 recall@200 = %v%%, want ≈90", v)
	}
}

func TestFigure6ParetoStructure(t *testing.T) {
	if testing.Short() {
		t.Skip("slow end-to-end test; nightly runs the full suite")
	}
	e := testEnv()
	tb, err := e.Figure6()
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) == 0 {
		t.Fatal("empty Pareto boundary")
	}
	// Boundary must be ascending in ingest and descending in query.
	var prevI, prevQ float64
	for i, row := range tb.Rows {
		ing, err1 := strconv.ParseFloat(row[4], 64)
		qry, err2 := strconv.ParseFloat(row[5], 64)
		if err1 != nil || err2 != nil {
			t.Fatalf("bad cost cells %v", row)
		}
		if i > 0 {
			if ing <= prevI {
				t.Errorf("pareto ingest not ascending at row %d", i)
			}
			if qry >= prevQ {
				t.Errorf("pareto query not descending at row %d", i)
			}
		}
		prevI, prevQ = ing, qry
	}
	// The Balance point must be marked somewhere.
	found := false
	for _, row := range tb.Rows {
		if row[0] == "Balance" {
			found = true
		}
	}
	if !found {
		t.Error("Balance point not on rendered boundary")
	}
}

func TestFigure1TradeoffShape(t *testing.T) {
	if testing.Short() {
		t.Skip("slow end-to-end test; nightly runs the full suite")
	}
	e := testEnv()
	tb, err := e.Figure1()
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 5 {
		t.Fatalf("rows = %d, want 3 policies + 2 baselines", len(tb.Rows))
	}
	get := func(row int, col int) float64 {
		v, err := strconv.ParseFloat(tb.Rows[row][col], 64)
		if err != nil {
			t.Fatalf("bad cell %q", tb.Rows[row][col])
		}
		return v
	}
	optIngestI := get(0, 1) // norm-ingest of Focus-opt-ingest
	balanceI := get(1, 1)
	optQueryQ := get(2, 2)
	balanceQ := get(1, 2)
	if optIngestI > balanceI+1e-9 {
		t.Errorf("Opt-Ingest norm-ingest %v above Balance %v", optIngestI, balanceI)
	}
	if optQueryQ > balanceQ+1e-9 {
		t.Errorf("Opt-Query norm-query %v above Balance %v", optQueryQ, balanceQ)
	}
	// Every Focus point must dwarf both baselines: norm costs well below 1.
	for r := 0; r < 3; r++ {
		if get(r, 1) > 0.3 || get(r, 2) > 0.3 {
			t.Errorf("row %d: Focus point not clearly better than baselines: %v", r, tb.Rows[r])
		}
	}
}

func TestEvaluatePolicyMeetsTargets(t *testing.T) {
	if testing.Short() {
		t.Skip("slow end-to-end test; nightly runs the full suite")
	}
	e := testEnv()
	ev, err := e.EvaluatePolicy("jacksonh", tune.Balance, e.Cfg.Targets, ModeFull, e.Cfg.GenOptions())
	if err != nil {
		t.Fatal(err)
	}
	if ev.Recall < e.Cfg.Targets.Recall-0.04 {
		t.Errorf("recall %.3f well below target", ev.Recall)
	}
	if ev.Precision < e.Cfg.Targets.Precision-0.04 {
		t.Errorf("precision %.3f well below target", ev.Precision)
	}
	if ev.IngestFactor < 10 || ev.QueryFactor < 5 {
		t.Errorf("factors implausibly low: I=%.0f Q=%.0f", ev.IngestFactor, ev.QueryFactor)
	}
	if ev.Clusters <= 0 || ev.Sightings <= 0 {
		t.Error("missing scale counters")
	}
}

func TestFigure8ComponentOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("slow ablation in -short mode")
	}
	e := testEnv()
	opts := e.Cfg.GenOptions()
	// Compare the three modes on one stream: each added component should
	// improve (or at least not hurt) the balanced sum of normalized costs.
	sum := func(mode SweepMode) float64 {
		sw, err := e.Sweep("auburn_c", opts, mode)
		if err != nil {
			t.Fatal(err)
		}
		sel, err := sw.Select(e.Cfg.Targets, tune.Balance)
		if err != nil {
			t.Fatal(err)
		}
		return sel.Chosen.NormIngest + sel.Chosen.NormQuery
	}
	compressed := sum(ModeCompressedOnly)
	specialized := sum(ModeNoClustering)
	full := sum(ModeFull)
	if specialized > compressed+1e-9 {
		t.Errorf("specialization made things worse: %.5f vs %.5f", specialized, compressed)
	}
	if full > specialized+1e-9 {
		t.Errorf("clustering made things worse: %.5f vs %.5f", full, specialized)
	}
}

func TestCharacterizationNNFeatures(t *testing.T) {
	e := testEnv()
	tb, err := e.CharacterizationNNFeatures()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tb.Rows {
		if row[2] == "n/a" {
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimSuffix(row[2], "%"), 64)
		if err != nil {
			t.Fatalf("bad cell %q", row[2])
		}
		if v < 97 {
			t.Errorf("%s: NN same-class %.1f%%, want ≈99%% (§2.2.3)", row[0], v)
		}
	}
}
