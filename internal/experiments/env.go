// Package experiments regenerates every table and figure of the paper's
// evaluation (§2.2 characterization, §6 evaluation) against the synthetic
// substrates. Each experiment returns a Table holding the same rows/series
// the paper reports; the absolute factors depend on the simulation scale,
// but the shapes — who wins, by roughly what factor, where the crossovers
// fall — reproduce the paper (see EXPERIMENTS.md for the side-by-side).
//
// Key types: Env assembles the shared fixtures (streams, tuned selections,
// ingested indexes) one experiment suite reuses across figures; Table is
// the uniform result container every experiment emits (rows of labelled
// float columns, rendered by cmd/focus's `experiments` mode); Suite runs
// the full set with per-stream parallel fan-out. Invariants: experiments
// never mutate shared fixtures after Env construction (figures may run in
// any order or concurrently), and each figure's numbers are a pure
// function of the system seed, so regenerated tables are reproducible bit
// for bit.
package experiments

import (
	"fmt"
	"sync"
	"sync/atomic"

	"focus/internal/baseline"
	"focus/internal/cluster"
	"focus/internal/gpu"
	"focus/internal/ingest"
	"focus/internal/parallel"
	"focus/internal/query"
	"focus/internal/stats"
	"focus/internal/tune"
	"focus/internal/video"
	"focus/internal/vision"
)

// Config scales the experiment suite. The paper evaluates 12-hour windows
// on a GPU testbed; this reproduction runs time-scaled windows whose
// statistics are stable enough to reproduce the factors' shape.
type Config struct {
	// Seed drives all deterministic generation.
	Seed uint64
	// DurationSec is the per-stream window length.
	DurationSec float64
	// SampleEvery is the frame-sampling stride (1 = 30 fps).
	SampleEvery int
	// NumGPUs is the query-time parallelism (the paper reports latencies
	// on a 10-GPU cluster).
	NumGPUs int
	// Targets are the default accuracy targets.
	Targets tune.Targets
	// DominantClasses is how many head classes query metrics average over
	// (§6.1 evaluates "all dominant object classes").
	DominantClasses int
}

// DefaultConfig returns the scale used by the bench harness.
func DefaultConfig() Config {
	return Config{
		Seed:            1,
		DurationSec:     240,
		SampleEvery:     1,
		NumGPUs:         10,
		Targets:         tune.DefaultTargets,
		DominantClasses: 3,
	}
}

// GenOptions returns the generation window for this config.
func (c Config) GenOptions() video.GenOptions {
	return video.GenOptions{DurationSec: c.DurationSec, SampleEvery: c.SampleEvery}
}

// Env memoizes the expensive, reusable artifacts (ground truths, sweeps)
// across experiments so the full suite runs in minutes. Safe for
// concurrent use.
type Env struct {
	Cfg   Config
	Space *vision.Space
	Zoo   *vision.Zoo

	mu     sync.Mutex
	truths map[string]*stats.GroundTruth
	sweeps map[string]*tune.SweepResult
	// inflightSweeps counts sweeps currently computing, so each divides
	// the CPU budget instead of multiplying it when experiments fan out
	// per stream (sweep results are worker-count-invariant by contract).
	inflightSweeps atomic.Int64
}

// NewEnv builds an experiment environment.
func NewEnv(cfg Config) *Env {
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.NumGPUs <= 0 {
		cfg.NumGPUs = 10
	}
	if cfg.DominantClasses <= 0 {
		cfg.DominantClasses = 3
	}
	return &Env{
		Cfg:    cfg,
		Space:  vision.NewSpace(cfg.Seed),
		Zoo:    vision.NewZoo(),
		truths: make(map[string]*stats.GroundTruth),
		sweeps: make(map[string]*tune.SweepResult),
	}
}

// Stream builds a fresh deterministic stream by Table 1 name.
func (e *Env) Stream(name string) (*video.Stream, error) {
	spec, ok := video.SpecByName(name)
	if !ok {
		return nil, fmt.Errorf("experiments: unknown stream %q", name)
	}
	return video.NewStream(spec, e.Space, e.Cfg.Seed)
}

// Truth returns the GT-CNN ground truth for a stream window, memoized.
func (e *Env) Truth(name string, opts video.GenOptions) (*stats.GroundTruth, error) {
	key := fmt.Sprintf("%s/%v/%d", name, opts.DurationSec, opts.SampleEvery)
	e.mu.Lock()
	if t, ok := e.truths[key]; ok {
		e.mu.Unlock()
		return t, nil
	}
	e.mu.Unlock()
	st, err := e.Stream(name)
	if err != nil {
		return nil, err
	}
	t, err := stats.ComputeGroundTruth(st, e.Space, e.Zoo.GT, opts)
	if err != nil {
		return nil, err
	}
	e.mu.Lock()
	e.truths[key] = t
	e.mu.Unlock()
	return t, nil
}

// SweepMode names a tuner restriction for the Figure 8 ablation.
type SweepMode string

// Ablation modes (Figure 8's design points).
const (
	ModeFull           SweepMode = "full"            // compressed + specialized + clustering
	ModeNoClustering   SweepMode = "no-clustering"   // compressed + specialized
	ModeCompressedOnly SweepMode = "compressed-only" // compressed only
)

func (m SweepMode) apply(o *tune.Options) {
	switch m {
	case ModeCompressedOnly:
		o.DisableSpecialization = true
		o.DisableClustering = true
	case ModeNoClustering:
		o.DisableClustering = true
	}
}

// Sweep returns the tuner sweep for (stream, window, mode), memoized.
func (e *Env) Sweep(name string, opts video.GenOptions, mode SweepMode) (*tune.SweepResult, error) {
	key := fmt.Sprintf("%s/%v/%d/%s", name, opts.DurationSec, opts.SampleEvery, mode)
	e.mu.Lock()
	if sw, ok := e.sweeps[key]; ok {
		e.mu.Unlock()
		return sw, nil
	}
	e.mu.Unlock()
	st, err := e.Stream(name)
	if err != nil {
		return nil, err
	}
	topts := tune.DefaultOptions()
	mode.apply(&topts)
	concurrent := int(e.inflightSweeps.Add(1))
	defer e.inflightSweeps.Add(-1)
	if topts.Workers = parallel.CPUWorkers(0) / concurrent; topts.Workers < 1 {
		topts.Workers = 1
	}
	sw, err := tune.Sweep(st, e.Space, e.Zoo, topts, opts)
	if err != nil {
		return nil, err
	}
	e.mu.Lock()
	e.sweeps[key] = sw
	e.mu.Unlock()
	return sw, nil
}

// PolicyEval is one stream evaluated end to end under one configuration.
type PolicyEval struct {
	Stream string
	Policy tune.Policy
	Chosen tune.Candidate

	Sightings int
	Clusters  int
	DedupRate float64

	IngestGPUMS    float64
	IngestAllGPUMS float64
	// IngestFactor is "cheaper than Ingest-all by" (Figure 7 top).
	IngestFactor float64

	MeanQueryLatencyMS float64
	QueryAllLatencyMS  float64
	// QueryFactor is "faster than Query-all by" (Figure 7 bottom).
	QueryFactor float64
	// QueryGPUTotalMS is the summed GPU time of the evaluated queries.
	QueryGPUTotalMS float64

	Recall    float64
	Precision float64
}

// EvaluatePolicy runs the full pipeline for one stream: sweep (memoized),
// policy selection, ingestion, and dominant-class queries scored against
// ground truth.
func (e *Env) EvaluatePolicy(name string, policy tune.Policy, targets tune.Targets, mode SweepMode, opts video.GenOptions) (*PolicyEval, error) {
	sw, err := e.Sweep(name, opts, mode)
	if err != nil {
		return nil, err
	}
	sel, err := sw.Select(targets, policy)
	if err != nil {
		return nil, err
	}
	truth, err := e.Truth(name, opts)
	if err != nil {
		return nil, err
	}

	st, err := e.Stream(name)
	if err != nil {
		return nil, err
	}
	chosen := sel.Chosen
	var meter gpu.Meter
	worker, err := ingest.NewWorker(st, e.Space, ingest.Config{
		Model:              chosen.Model,
		K:                  chosen.K,
		ClusterThreshold:   chosen.T,
		PixelDiffThreshold: tune.DefaultOptions().PixelDiffThreshold,
	}, &meter)
	if err != nil {
		return nil, err
	}
	ix, err := worker.Run(opts)
	if err != nil {
		return nil, err
	}
	ws := worker.Stats()

	gtFn := func(m cluster.Member) vision.ClassID {
		return e.Zoo.GT.Top1Class(e.Space, m.TrueClass, st.CNNSource(m.Seed, "gt"))
	}
	engine, err := query.NewEngine(ix, e.Zoo.GT, e.Space, gtFn, &meter)
	if err != nil {
		return nil, err
	}

	ev := &PolicyEval{
		Stream:         name,
		Policy:         policy,
		Chosen:         chosen,
		Sightings:      ws.Sightings,
		Clusters:       ix.NumClusters(),
		DedupRate:      ws.DedupRate(),
		IngestGPUMS:    ws.IngestGPUMS,
		IngestAllGPUMS: baseline.IngestAllGPUMS(e.Zoo.GT, ws.Sightings),
		QueryAllLatencyMS: baseline.QueryAllLatencyMS(e.Zoo.GT, ws.Sightings,
			e.Cfg.NumGPUs),
	}
	if ev.IngestGPUMS > 0 {
		ev.IngestFactor = ev.IngestAllGPUMS / ev.IngestGPUMS
	}

	// Per-class query latency, aggregated as a frequency-weighted mean:
	// analysts query the heavy classes far more often, and the paper's
	// per-stream latency is dominated by them.
	var pr stats.PRStats
	var latSum, weightSum float64
	for _, c := range truth.DominantClasses(e.Cfg.DominantClasses) {
		res, err := engine.Query(c, query.Options{NumGPUs: e.Cfg.NumGPUs})
		if err != nil {
			return nil, err
		}
		pr.Add(truth.EvaluateFrames(c, res.Frames))
		w := float64(len(truth.Positives[c]))
		latSum += w * res.LatencyMS
		weightSum += w
		ev.QueryGPUTotalMS += res.GPUTimeMS
	}
	if weightSum > 0 {
		ev.MeanQueryLatencyMS = latSum / weightSum
	}
	if ev.MeanQueryLatencyMS > 0 {
		ev.QueryFactor = ev.QueryAllLatencyMS / ev.MeanQueryLatencyMS
	}
	ev.Recall = pr.Recall()
	ev.Precision = pr.Precision()
	return ev, nil
}

// QueryAllClasses classifies every cluster in an evaluated stream's index
// by querying every present class, returning the total query-side GPU time.
// Thanks to the per-cluster verdict cache, the GT-CNN runs at most once per
// cluster across all of the queries (§6.7).
func (e *Env) QueryAllClasses(name string, policy tune.Policy, targets tune.Targets, opts video.GenOptions) (ingestMS, queryMS, ingestAllMS float64, err error) {
	sw, err := e.Sweep(name, opts, ModeFull)
	if err != nil {
		return 0, 0, 0, err
	}
	sel, err := sw.Select(targets, policy)
	if err != nil {
		return 0, 0, 0, err
	}
	st, err := e.Stream(name)
	if err != nil {
		return 0, 0, 0, err
	}
	var meter gpu.Meter
	worker, err := ingest.NewWorker(st, e.Space, ingest.Config{
		Model:              sel.Chosen.Model,
		K:                  sel.Chosen.K,
		ClusterThreshold:   sel.Chosen.T,
		PixelDiffThreshold: tune.DefaultOptions().PixelDiffThreshold,
	}, &meter)
	if err != nil {
		return 0, 0, 0, err
	}
	ix, err := worker.Run(opts)
	if err != nil {
		return 0, 0, 0, err
	}
	gtFn := func(m cluster.Member) vision.ClassID {
		return e.Zoo.GT.Top1Class(e.Space, m.TrueClass, st.CNNSource(m.Seed, "gt"))
	}
	engine, err := query.NewEngine(ix, e.Zoo.GT, e.Space, gtFn, &meter)
	if err != nil {
		return 0, 0, 0, err
	}
	for _, c := range ix.Classes() {
		res, qerr := engine.Query(c, query.Options{NumGPUs: e.Cfg.NumGPUs})
		if qerr != nil {
			return 0, 0, 0, qerr
		}
		queryMS += res.GPUTimeMS
	}
	ws := worker.Stats()
	return ws.IngestGPUMS, queryMS, baseline.IngestAllGPUMS(e.Zoo.GT, ws.Sightings), nil
}
