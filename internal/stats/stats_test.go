package stats

import (
	"math"
	"testing"

	"focus/internal/video"
	"focus/internal/vision"
)

func testGT(t *testing.T, name string, dur float64) (*GroundTruth, *video.Stream, *vision.Space) {
	t.Helper()
	space := vision.NewSpace(1)
	spec, ok := video.SpecByName(name)
	if !ok {
		t.Fatalf("no spec %q", name)
	}
	st, err := video.NewStream(spec, space, 5)
	if err != nil {
		t.Fatal(err)
	}
	gt, err := ComputeGroundTruth(st, space, vision.NewZoo().GT, video.GenOptions{DurationSec: dur, SampleEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	return gt, st, space
}

func TestGroundTruthBasics(t *testing.T) {
	g, _, _ := testGT(t, "auburn_c", 60)
	if g.TotalFrames != 1800 {
		t.Errorf("frames = %d", g.TotalFrames)
	}
	if g.TotalSightings == 0 {
		t.Fatal("no sightings")
	}
	if len(g.Positives) == 0 {
		t.Fatal("no positive segments")
	}
	if g.GTGPUMS != float64(g.TotalSightings)*vision.GTCostMS {
		t.Error("GT GPU accounting wrong")
	}
	// Segment frame counts: 60 segments of 30 frames at full rate.
	if len(g.SegmentFrames) != 60 {
		t.Errorf("segments = %d", len(g.SegmentFrames))
	}
	for seg, n := range g.SegmentFrames {
		if n != 30 {
			t.Errorf("segment %d has %d frames", seg, n)
		}
	}
	// Dominant class of a traffic stream should be a vehicle/person class
	// with many positive segments.
	dom := g.DominantClasses(1)
	if len(dom) != 1 {
		t.Fatal("no dominant class")
	}
	if len(g.Positives[dom[0]]) < 5 {
		t.Errorf("dominant class has only %d positive segments", len(g.Positives[dom[0]]))
	}
}

func TestGroundTruthDeterminism(t *testing.T) {
	a, _, _ := testGT(t, "bend", 30)
	b, _, _ := testGT(t, "bend", 30)
	if a.TotalSightings != b.TotalSightings {
		t.Fatal("sightings differ")
	}
	for c, segs := range a.Positives {
		if len(b.Positives[c]) != len(segs) {
			t.Fatalf("positives for class %d differ", c)
		}
	}
}

func TestVotingSuppressesFlicker(t *testing.T) {
	// The GT-CNN flickers on ~2.5% of sightings; the 50% voting rule must
	// prevent those one-frame labels from becoming positive segments.
	g, _, _ := testGT(t, "auburn_c", 120)
	// Count positive (class, segment) pairs vs raw flicker labels: classes
	// far outside the stream's vocabulary should have almost no positives.
	rare := 0
	for c, segs := range g.Positives {
		if int(c) >= 420 { // outside the street pool: only flicker can produce these
			rare += len(segs)
		}
	}
	if rare > 2 {
		t.Errorf("%d positive segments from out-of-pool classes; voting should suppress flicker", rare)
	}
}

func TestPRStats(t *testing.T) {
	pr := PRStats{TP: 8, FP: 2, FN: 2}
	if p := pr.Precision(); p != 0.8 {
		t.Errorf("precision = %v", p)
	}
	if r := pr.Recall(); r != 0.8 {
		t.Errorf("recall = %v", r)
	}
	empty := PRStats{}
	if empty.Precision() != 1 || empty.Recall() != 1 {
		t.Error("empty stats should be perfect")
	}
	pr.Add(PRStats{TP: 2, FP: 0, FN: 0})
	if pr.TP != 10 {
		t.Error("Add failed")
	}
}

func TestEvaluateSegments(t *testing.T) {
	g := &GroundTruth{
		Positives: map[vision.ClassID]map[video.SegmentID]bool{
			5: {1: true, 2: true, 3: true},
		},
	}
	pr := g.EvaluateSegments(5, []video.SegmentID{1, 2, 9, 2}) // duplicate 2 ignored
	if pr.TP != 2 || pr.FP != 1 || pr.FN != 1 {
		t.Errorf("pr = %+v", pr)
	}
}

func TestEvaluateFramesVoting(t *testing.T) {
	g := &GroundTruth{
		Positives: map[vision.ClassID]map[video.SegmentID]bool{
			5: {0: true},
		},
		SegmentFrames: map[video.SegmentID]int{0: 30, 1: 30},
	}
	// 15 of 30 frames in segment 0 → predicted positive → TP.
	// 5 of 30 frames in segment 1 → below the vote → not predicted.
	var frames []video.FrameID
	for i := 0; i < 15; i++ {
		frames = append(frames, video.FrameID(i))
	}
	for i := 0; i < 5; i++ {
		frames = append(frames, video.FrameID(30+i))
	}
	pr := g.EvaluateFrames(5, frames)
	if pr.TP != 1 || pr.FP != 0 || pr.FN != 0 {
		t.Errorf("pr = %+v", pr)
	}
	// 16 frames in segment 1 → predicted → FP.
	for i := 5; i < 16; i++ {
		frames = append(frames, video.FrameID(30+i))
	}
	pr = g.EvaluateFrames(5, frames)
	if pr.FP != 1 {
		t.Errorf("pr = %+v", pr)
	}
}

func TestQueryAllScoresPerfect(t *testing.T) {
	// The paper's accuracy metric is relative to the GT-CNN: a system that
	// returns exactly the frames the GT-CNN labels as class X must score
	// 100/100. This validates the evaluation rule itself.
	space := vision.NewSpace(1)
	spec, _ := video.SpecByName("auburn_c")
	st, err := video.NewStream(spec, space, 5)
	if err != nil {
		t.Fatal(err)
	}
	gtModel := vision.NewZoo().GT
	opts := video.GenOptions{DurationSec: 90, SampleEvery: 1}
	g, err := ComputeGroundTruth(st, space, gtModel, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Re-derive per-frame GT labels exactly as Query-all would.
	st2, _ := video.NewStream(spec, space, 5)
	perClass := map[vision.ClassID][]video.FrameID{}
	err = st2.Generate(opts, func(f *video.Frame) error {
		seen := map[vision.ClassID]bool{}
		for i := range f.Sightings {
			s := &f.Sightings[i]
			label := gtModel.Top1Class(space, s.TrueClass, st2.CNNSource(s.Seed, "gt"))
			if !seen[label] {
				seen[label] = true
				perClass[label] = append(perClass[label], f.ID)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range g.DominantClasses(3) {
		pr := g.EvaluateFrames(c, perClass[c])
		if pr.Precision() != 1 || pr.Recall() != 1 {
			t.Errorf("class %d: Query-all scores P=%.3f R=%.3f, want 1/1",
				c, pr.Precision(), pr.Recall())
		}
	}
}

func TestHeadCoverage(t *testing.T) {
	counts := map[vision.ClassID]int{1: 90, 2: 5, 3: 3, 4: 1, 5: 1}
	k, total := HeadCoverage(counts, 0.95)
	if k != 2 || total != 5 {
		t.Errorf("HeadCoverage = %d/%d, want 2/5", k, total)
	}
	k, _ = HeadCoverage(counts, 1.0)
	if k != 5 {
		t.Errorf("full coverage needs %d classes", k)
	}
}

func TestJaccard(t *testing.T) {
	a := map[vision.ClassID]bool{1: true, 2: true, 3: true}
	b := map[vision.ClassID]bool{2: true, 3: true, 4: true}
	if j := Jaccard(a, b); math.Abs(j-0.5) > 1e-9 {
		t.Errorf("Jaccard = %v, want 0.5", j)
	}
	if Jaccard(nil, nil) != 1 {
		t.Error("empty sets should have Jaccard 1")
	}
}

func TestCDF(t *testing.T) {
	c := NewCDF([]float64{3, 1, 2})
	if c.X[0] != 1 || c.X[2] != 3 {
		t.Error("CDF not sorted")
	}
	if c.Y[2] != 1 {
		t.Error("CDF does not reach 1")
	}
}

func TestMeans(t *testing.T) {
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Error("Mean wrong")
	}
	if Mean(nil) != 0 {
		t.Error("Mean of empty should be 0")
	}
	if g := GeoMean([]float64{1, 100}); math.Abs(g-10) > 1e-9 {
		t.Errorf("GeoMean = %v", g)
	}
	defer func() {
		if recover() == nil {
			t.Error("GeoMean with non-positive value did not panic")
		}
	}()
	GeoMean([]float64{0})
}

func BenchmarkComputeGroundTruth(b *testing.B) {
	space := vision.NewSpace(1)
	spec, _ := video.SpecByName("auburn_c")
	gt := vision.NewZoo().GT
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, err := video.NewStream(spec, space, 5)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := ComputeGroundTruth(st, space, gt, video.GenOptions{DurationSec: 30, SampleEvery: 1}); err != nil {
			b.Fatal(err)
		}
	}
}
