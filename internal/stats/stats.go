// Package stats implements the paper's evaluation methodology (§6.1) and
// the video characterization measurements of §2.2.
//
// Ground truth follows the paper exactly: every extracted object is
// classified with the GT-CNN (ResNet152), and a class is "present" in a
// one-second segment of video if the GT-CNN reports it in at least 50% of
// the segment's frames — the voting criterion the paper uses to suppress
// the GT-CNN's own frame-to-frame flicker. Query accuracy is measured as
// precision and recall over (class, segment) pairs against that ground
// truth.
package stats

import (
	"fmt"
	"math"
	"sort"

	"focus/internal/video"
	"focus/internal/vision"
)

// GroundTruth holds the GT-CNN-derived truth for one stream window plus the
// characterization statistics of §2.2.
type GroundTruth struct {
	// Positives maps each class to the set of segments it is present in.
	Positives map[vision.ClassID]map[video.SegmentID]bool
	// SegmentFrames counts the emitted frames per segment, the denominator
	// of the 50% vote.
	SegmentFrames map[video.SegmentID]int

	// TotalFrames and EmptyFrames measure occupancy (§2.2.1).
	TotalFrames int
	EmptyFrames int
	// TotalSightings is the number of object sightings labelled.
	TotalSightings int
	// ClassFrames counts, per class, the frames in which the GT-CNN
	// reported the class (§2.2.1's per-class frame occurrence).
	ClassFrames map[vision.ClassID]int
	// ObjectsPerClass counts distinct objects per GT class, the histogram
	// behind Figure 3 and the input to specialization (§4.3).
	ObjectsPerClass map[vision.ClassID]int
	// GTGPUMS is the GPU time this labelling consumed (the Ingest-all
	// baseline's cost for the same window).
	GTGPUMS float64
}

// PresentClasses returns every class with at least one positive segment,
// most positive segments first.
func (g *GroundTruth) PresentClasses() []vision.ClassID {
	type e struct {
		c vision.ClassID
		n int
	}
	var es []e
	for c, segs := range g.Positives {
		if len(segs) > 0 {
			es = append(es, e{c, len(segs)})
		}
	}
	sort.Slice(es, func(i, j int) bool {
		if es[i].n != es[j].n {
			return es[i].n > es[j].n
		}
		return es[i].c < es[j].c
	})
	out := make([]vision.ClassID, len(es))
	for i := range es {
		out[i] = es[i].c
	}
	return out
}

// DominantClasses returns the n classes with the most positive segments,
// the classes the paper evaluates query latency over (§6.1).
func (g *GroundTruth) DominantClasses(n int) []vision.ClassID {
	cs := g.PresentClasses()
	if len(cs) > n {
		cs = cs[:n]
	}
	return cs
}

// ComputeGroundTruth labels a stream window with the GT-CNN and applies the
// 1-second 50% voting criterion. It streams the generation, so memory is
// bounded by the number of distinct (segment, class) pairs.
func ComputeGroundTruth(st *video.Stream, space *vision.Space, gt *vision.Model, opts video.GenOptions) (*GroundTruth, error) {
	g := &GroundTruth{
		Positives:       make(map[vision.ClassID]map[video.SegmentID]bool),
		SegmentFrames:   make(map[video.SegmentID]int),
		ClassFrames:     make(map[vision.ClassID]int),
		ObjectsPerClass: make(map[vision.ClassID]int),
	}
	// Per-segment, per-class count of frames in which GT reported the
	// class; g.SegmentFrames holds the per-segment frame counts for the
	// 50% vote.
	segClassFrames := make(map[video.SegmentID]map[vision.ClassID]int)
	segFrames := g.SegmentFrames
	seenObjects := make(map[video.ObjectID]vision.ClassID)

	frameClasses := make(map[vision.ClassID]bool, 8)
	err := st.Generate(opts, func(f *video.Frame) error {
		g.TotalFrames++
		seg := video.SegmentOf(f.TimeSec)
		segFrames[seg]++
		if len(f.Sightings) == 0 {
			g.EmptyFrames++
			return nil
		}
		for c := range frameClasses {
			delete(frameClasses, c)
		}
		for i := range f.Sightings {
			s := &f.Sightings[i]
			g.TotalSightings++
			label := gt.Top1Class(space, s.TrueClass, st.CNNSource(s.Seed, "gt"))
			g.GTGPUMS += gt.CostMS()
			frameClasses[label] = true
			if _, ok := seenObjects[s.Object]; !ok {
				seenObjects[s.Object] = label
				g.ObjectsPerClass[label]++
			}
		}
		for c := range frameClasses {
			g.ClassFrames[c]++
			m := segClassFrames[seg]
			if m == nil {
				m = make(map[vision.ClassID]int, 4)
				segClassFrames[seg] = m
			}
			m[c]++
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	// 50% vote per segment.
	for seg, classes := range segClassFrames {
		need := float64(segFrames[seg]) / 2
		for c, n := range classes {
			if float64(n) >= need {
				set := g.Positives[c]
				if set == nil {
					set = make(map[video.SegmentID]bool)
					g.Positives[c] = set
				}
				set[seg] = true
			}
		}
	}
	return g, nil
}

// PRStats is a precision/recall measurement over (class, segment) pairs.
type PRStats struct {
	TP, FP, FN int
}

// Precision returns TP/(TP+FP); 1 when nothing was returned.
func (p PRStats) Precision() float64 {
	if p.TP+p.FP == 0 {
		return 1
	}
	return float64(p.TP) / float64(p.TP+p.FP)
}

// Recall returns TP/(TP+FN); 1 when there was nothing to find.
func (p PRStats) Recall() float64 {
	if p.TP+p.FN == 0 {
		return 1
	}
	return float64(p.TP) / float64(p.TP+p.FN)
}

// Add accumulates another measurement.
func (p *PRStats) Add(o PRStats) {
	p.TP += o.TP
	p.FP += o.FP
	p.FN += o.FN
}

// EvaluateSegments scores predicted segments against the ground truth for
// one class.
func (g *GroundTruth) EvaluateSegments(c vision.ClassID, predicted []video.SegmentID) PRStats {
	truth := g.Positives[c]
	var pr PRStats
	seen := make(map[video.SegmentID]bool, len(predicted))
	for _, s := range predicted {
		if seen[s] {
			continue
		}
		seen[s] = true
		if truth[s] {
			pr.TP++
		} else {
			pr.FP++
		}
	}
	for s := range truth {
		if !seen[s] {
			pr.FN++
		}
	}
	return pr
}

// EvaluateFrames scores a returned frame set against ground truth for one
// class using the paper's own voting methodology: a segment counts as
// predicted-positive when at least 50% of its emitted frames were returned.
// Under this rule the Query-all baseline (which returns exactly the frames
// the GT-CNN labels as the class) scores 100% precision and recall by
// construction, making it the reference point the paper's accuracy targets
// are measured against.
func (g *GroundTruth) EvaluateFrames(c vision.ClassID, frames []video.FrameID) PRStats {
	retPerSeg := make(map[video.SegmentID]int)
	seen := make(map[video.FrameID]bool, len(frames))
	for _, f := range frames {
		if seen[f] {
			continue
		}
		seen[f] = true
		retPerSeg[video.SegmentOf(float64(f)/video.NativeFPS)]++
	}
	predicted := make([]video.SegmentID, 0, len(retPerSeg))
	for seg, n := range retPerSeg {
		if float64(n) >= float64(g.SegmentFrames[seg])/2 {
			predicted = append(predicted, seg)
		}
	}
	return g.EvaluateSegments(c, predicted)
}

// CDF describes an empirical cumulative distribution over sorted values.
type CDF struct {
	// X are the sorted values; Y[i] is the cumulative fraction at X[i].
	X []float64
	Y []float64
}

// NewCDF builds the empirical CDF of the given values.
func NewCDF(values []float64) CDF {
	xs := append([]float64(nil), values...)
	sort.Float64s(xs)
	ys := make([]float64, len(xs))
	for i := range xs {
		ys[i] = float64(i+1) / float64(len(xs))
	}
	return CDF{X: xs, Y: ys}
}

// HeadCoverage returns the smallest number of classes (sorted by
// descending count) whose counts sum to at least the given fraction of the
// total — Figure 3's "3%–10% of classes cover 95% of objects" statistic.
func HeadCoverage(counts map[vision.ClassID]int, frac float64) (classes int, totalClasses int) {
	var ns []int
	total := 0
	for _, n := range counts {
		ns = append(ns, n)
		total += n
	}
	sort.Sort(sort.Reverse(sort.IntSlice(ns)))
	cum := 0
	for i, n := range ns {
		cum += n
		if float64(cum) >= frac*float64(total) {
			return i + 1, len(ns)
		}
	}
	return len(ns), len(ns)
}

// Jaccard computes the Jaccard index (intersection over union) of two
// class sets, the cross-stream overlap measure of §2.2.2.
func Jaccard(a, b map[vision.ClassID]bool) float64 {
	inter := 0
	for c := range a {
		if b[c] {
			inter++
		}
	}
	union := len(a) + len(b) - inter
	if union == 0 {
		return 1
	}
	return float64(inter) / float64(union)
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// GeoMean returns the geometric mean of xs, which the paper's "on average
// N× cheaper" factors correspond to. All values must be positive.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		if x <= 0 {
			panic(fmt.Sprintf("stats: GeoMean requires positive values, got %v", x))
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}
