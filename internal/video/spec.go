package video

import "focus/internal/vision"

// StreamType is the domain a stream belongs to, following Table 1.
type StreamType string

// Stream domains from Table 1.
const (
	Traffic      StreamType = "traffic"
	Surveillance StreamType = "surveillance"
	News         StreamType = "news"
)

// StreamSpec is the generative description of one video stream. The presets
// in Table1Specs mirror the paper's Table 1; custom specs can model other
// cameras.
type StreamSpec struct {
	// Name is the stream identifier used throughout experiments
	// (e.g. "auburn_c").
	Name string
	// Type is the stream's domain.
	Type StreamType
	// Location and Description document the stream, mirroring Table 1.
	Location    string
	Description string

	// VocabSize is how many distinct object classes occur in the stream.
	// The paper measures 22–33% of the 1000 classes for less busy streams
	// and 50–69% for news channels (§2.2.2).
	VocabSize int
	// ZipfAlpha is the skew of the class frequency distribution. Larger
	// values concentrate more mass in the head classes.
	ZipfAlpha float64
	// ArrivalPerSec is the mean rate of new objects entering the scene
	// during active daytime periods.
	ArrivalPerSec float64
	// DwellMeanSec is the mean number of seconds an object stays in frame.
	DwellMeanSec float64
	// DwellJitter is the multiplicative lognormal-ish spread of dwell times
	// (0 = constant dwell).
	DwellJitter float64
	// EmptyFrac is the target fraction of time with no moving objects at
	// all (idle gating); §2.2.1 measures one-third to one-half combined
	// with stationary periods.
	EmptyFrac float64
	// NightFactor multiplies the arrival rate during the night half of the
	// capture window.
	NightFactor float64
	// SpeedPxPerFrame is the mean object motion speed at the native frame
	// rate, which drives how quickly an object's pixels change and hence
	// how often ingest-time pixel differencing can deduplicate sightings.
	SpeedPxPerFrame float64
	// PoseDriftTau is the time constant (seconds) of the mean-reverting
	// pose/viewpoint drift along an object's track: sightings closer in
	// time than tau look alike; sightings further apart have drifted to a
	// different appearance. This bounds how many consecutive sightings
	// cluster together — fast-turning traffic has a short tau, a static
	// news anchor a long one.
	PoseDriftTau float64
	// PoseDriftAmp is the stationary per-coordinate amplitude of the pose
	// drift in feature space.
	PoseDriftAmp float64
	// RotationPeriodSec, when positive, models a camera that rotates among
	// several views (church_st in Table 1): every period the scene changes
	// and object appearances shift, which breaks cross-period clustering.
	RotationPeriodSec float64
}

// SceneWidth and SceneHeight are the logical scene dimensions in pixels for
// bounding boxes and rendered frames.
const (
	SceneWidth  = 160
	SceneHeight = 96
)

// NativeFPS is the native capture rate of all streams (§6.1 evaluates at 30
// fps by default and studies subsampling down to 1 fps).
const NativeFPS = 30.0

// streetPoolSize is the number of classes that can plausibly appear in
// street-level video (traffic + surveillance streams draw their
// vocabularies from this shared pool, giving the high intra-domain overlap
// the paper measures).
const streetPoolSize = 420

// newsPoolSize extends the street pool with studio/news-specific classes;
// news vocabularies draw from the union.
const newsPoolSize = 820

// domainCore returns the classes that dominate a domain's streams: the head
// of every stream's Zipf distribution is drawn from its domain core so that
// traffic streams are dominated by vehicles, news streams by people, etc.
func domainCore(t StreamType) []vision.ClassID {
	switch t {
	case Traffic:
		return []vision.ClassID{0 /*car*/, 1 /*person*/, 2 /*bus*/, 3 /*truck*/, 4, /*bicycle*/
			5 /*motorcycle*/, 12 /*van*/, 13 /*taxi*/, 20 /*pickup*/, 22 /*minivan*/}
	case Surveillance:
		return []vision.ClassID{1 /*person*/, 8 /*handbag*/, 9 /*backpack*/, 10, /*umbrella*/
			4 /*bicycle*/, 14 /*stroller*/, 6 /*dog*/, 16 /*scooter*/, 0 /*car*/, 19 /*cat*/}
	case News:
		return []vision.ClassID{1 /*person*/, 11 /*suit*/, 36 /*microphone*/, 37, /*desk*/
			38 /*monitor*/, 39 /*necktie*/, 48 /*flag*/, 40 /*sunglasses*/, 46 /*book*/, 49 /*sign*/}
	default:
		return nil
	}
}

// Table1Specs returns the 13 stream presets mirroring the paper's Table 1.
// Parameters are chosen so the generated streams reproduce the
// characterization in §2.2 (occupancy, class skew, vocabulary sizes) and
// the relative busyness the paper describes per stream in §6.2.
func Table1Specs() []StreamSpec {
	return []StreamSpec{
		{
			Name: "auburn_c", Type: Traffic, Location: "AL, USA",
			Description: "A commercial area intersection in the City of Auburn",
			VocabSize:   260, ZipfAlpha: 1.8, ArrivalPerSec: 0.55,
			DwellMeanSec: 8, DwellJitter: 0.5, EmptyFrac: 0.28, NightFactor: 0.35,
			SpeedPxPerFrame: 2.4, PoseDriftTau: 0.6, PoseDriftAmp: 0.55,
		},
		{
			Name: "auburn_r", Type: Traffic, Location: "AL, USA",
			Description: "A residential area intersection in the City of Auburn",
			VocabSize:   220, ZipfAlpha: 1.9, ArrivalPerSec: 0.16,
			DwellMeanSec: 10, DwellJitter: 0.5, EmptyFrac: 0.38, NightFactor: 0.3,
			SpeedPxPerFrame: 2.0, PoseDriftTau: 0.55, PoseDriftAmp: 0.55,
		},
		{
			Name: "city_a_d", Type: Traffic, Location: "USA",
			Description: "A downtown intersection in City A",
			VocabSize:   300, ZipfAlpha: 1.78, ArrivalPerSec: 0.65,
			DwellMeanSec: 7, DwellJitter: 0.5, EmptyFrac: 0.28, NightFactor: 0.4,
			SpeedPxPerFrame: 2.6, PoseDriftTau: 0.6, PoseDriftAmp: 0.55,
		},
		{
			Name: "city_a_r", Type: Traffic, Location: "USA",
			Description: "A residential area intersection in City A",
			VocabSize:   240, ZipfAlpha: 1.85, ArrivalPerSec: 0.22,
			DwellMeanSec: 9, DwellJitter: 0.5, EmptyFrac: 0.35, NightFactor: 0.3,
			SpeedPxPerFrame: 2.2, PoseDriftTau: 0.55, PoseDriftAmp: 0.55,
		},
		{
			Name: "bend", Type: Traffic, Location: "OR, USA",
			Description: "A road-side camera in the City of Bend",
			VocabSize:   230, ZipfAlpha: 1.9, ArrivalPerSec: 0.2,
			DwellMeanSec: 5, DwellJitter: 0.4, EmptyFrac: 0.35, NightFactor: 0.3,
			SpeedPxPerFrame: 3.5, PoseDriftTau: 0.45, PoseDriftAmp: 0.6,
		},
		{
			Name: "jacksonh", Type: Traffic, Location: "WY, USA",
			Description: "A busy intersection (Town Square) in Jackson Hole",
			VocabSize:   330, ZipfAlpha: 1.75, ArrivalPerSec: 0.85,
			DwellMeanSec: 12, DwellJitter: 0.6, EmptyFrac: 0.25, NightFactor: 0.4,
			SpeedPxPerFrame: 1.8, PoseDriftTau: 0.65, PoseDriftAmp: 0.5,
		},
		{
			Name: "church_st", Type: Surveillance, Location: "VT, USA",
			Description: "A video stream rotating among cameras in a shopping mall (Church Street Marketplace)",
			VocabSize:   320, ZipfAlpha: 1.78, ArrivalPerSec: 0.5,
			DwellMeanSec: 6, DwellJitter: 0.5, EmptyFrac: 0.28, NightFactor: 0.4,
			SpeedPxPerFrame: 1.5, PoseDriftTau: 0.5, PoseDriftAmp: 0.55, RotationPeriodSec: 45,
		},
		{
			Name: "lausanne", Type: Surveillance, Location: "Switzerland",
			Description: "A pedestrian plaza (Place de la Palud) in Lausanne",
			VocabSize:   280, ZipfAlpha: 1.88, ArrivalPerSec: 0.4,
			DwellMeanSec: 20, DwellJitter: 0.7, EmptyFrac: 0.3, NightFactor: 0.4,
			SpeedPxPerFrame: 0.9, PoseDriftTau: 0.38, PoseDriftAmp: 0.5,
		},
		{
			Name: "oxford", Type: Surveillance, Location: "England",
			Description: "A bookshop street in the University of Oxford",
			VocabSize:   250, ZipfAlpha: 1.92, ArrivalPerSec: 0.26,
			DwellMeanSec: 15, DwellJitter: 0.6, EmptyFrac: 0.32, NightFactor: 0.35,
			SpeedPxPerFrame: 1.0, PoseDriftTau: 0.4, PoseDriftAmp: 0.55,
		},
		{
			Name: "sittard", Type: Surveillance, Location: "Netherlands",
			Description: "A market square in Sittard",
			VocabSize:   300, ZipfAlpha: 1.82, ArrivalPerSec: 0.42,
			DwellMeanSec: 15, DwellJitter: 0.6, EmptyFrac: 0.3, NightFactor: 0.35,
			SpeedPxPerFrame: 1.1, PoseDriftTau: 0.45, PoseDriftAmp: 0.5,
		},
		{
			Name: "cnn", Type: News, Location: "USA", Description: "News channel",
			VocabSize: 690, ZipfAlpha: 1.65, ArrivalPerSec: 0.5,
			DwellMeanSec: 30, DwellJitter: 0.8, EmptyFrac: 0.12, NightFactor: 0.9,
			SpeedPxPerFrame: 0.45, PoseDriftTau: 0.3, PoseDriftAmp: 0.55,
		},
		{
			Name: "foxnews", Type: News, Location: "USA", Description: "News channel",
			VocabSize: 550, ZipfAlpha: 1.7, ArrivalPerSec: 0.45,
			DwellMeanSec: 28, DwellJitter: 0.8, EmptyFrac: 0.14, NightFactor: 0.9,
			SpeedPxPerFrame: 0.45, PoseDriftTau: 0.3, PoseDriftAmp: 0.55,
		},
		{
			Name: "msnbc", Type: News, Location: "USA", Description: "News channel",
			VocabSize: 620, ZipfAlpha: 1.68, ArrivalPerSec: 0.48,
			DwellMeanSec: 32, DwellJitter: 0.8, EmptyFrac: 0.13, NightFactor: 0.9,
			SpeedPxPerFrame: 0.45, PoseDriftTau: 0.32, PoseDriftAmp: 0.55,
		},
	}
}

// SpecByName returns the Table 1 preset with the given name, or false.
func SpecByName(name string) (StreamSpec, bool) {
	for _, s := range Table1Specs() {
		if s.Name == name {
			return s, true
		}
	}
	return StreamSpec{}, false
}

// RepresentativeNames returns the 9-stream subset several of the paper's
// figures plot "to improve legibility" (§6.1).
func RepresentativeNames() []string {
	return []string{
		"auburn_c", "city_a_r", "jacksonh",
		"church_st", "lausanne", "sittard",
		"cnn", "foxnews", "msnbc",
	}
}

// CharacterizationNames returns the 6-stream subset used for the §2.2
// characterization study (Figure 3).
func CharacterizationNames() []string {
	return []string{"auburn_c", "jacksonh", "lausanne", "sittard", "cnn", "msnbc"}
}
