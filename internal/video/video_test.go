package video

import (
	"math"
	"testing"

	"focus/internal/vision"
)

const testSeed = 4242

func testSpace() *vision.Space { return vision.NewSpace(1) }

func mustStream(t testing.TB, name string) *Stream {
	t.Helper()
	spec, ok := SpecByName(name)
	if !ok {
		t.Fatalf("no spec %q", name)
	}
	st, err := NewStream(spec, testSpace(), testSeed)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestTable1SpecsComplete(t *testing.T) {
	specs := Table1Specs()
	if len(specs) != 13 {
		t.Fatalf("Table 1 has %d streams, want 13", len(specs))
	}
	byType := map[StreamType]int{}
	seen := map[string]bool{}
	for _, s := range specs {
		if seen[s.Name] {
			t.Errorf("duplicate stream %q", s.Name)
		}
		seen[s.Name] = true
		byType[s.Type]++
	}
	if byType[Traffic] != 6 || byType[Surveillance] != 4 || byType[News] != 3 {
		t.Errorf("domain split = %v, want 6 traffic / 4 surveillance / 3 news", byType)
	}
	for _, name := range RepresentativeNames() {
		if _, ok := SpecByName(name); !ok {
			t.Errorf("representative stream %q not in Table 1", name)
		}
	}
	for _, name := range CharacterizationNames() {
		if _, ok := SpecByName(name); !ok {
			t.Errorf("characterization stream %q not in Table 1", name)
		}
	}
}

func TestNewStreamValidation(t *testing.T) {
	sp := testSpace()
	if _, err := NewStream(StreamSpec{Name: "x", VocabSize: 0, ArrivalPerSec: 1, DwellMeanSec: 1}, sp, 1); err == nil {
		t.Error("zero vocabulary accepted")
	}
	if _, err := NewStream(StreamSpec{Name: "x", VocabSize: 10, ArrivalPerSec: 0, DwellMeanSec: 1}, sp, 1); err == nil {
		t.Error("zero arrival accepted")
	}
}

func TestVocabulary(t *testing.T) {
	st := mustStream(t, "auburn_c")
	vocab := st.Vocabulary()
	if len(vocab) != st.Spec.VocabSize {
		t.Fatalf("vocab size %d, want %d", len(vocab), st.Spec.VocabSize)
	}
	seen := map[vision.ClassID]bool{}
	for _, c := range vocab {
		if seen[c] {
			t.Fatalf("duplicate class %d in vocabulary", c)
		}
		seen[c] = true
		if int(c) >= streetPoolSize {
			t.Errorf("traffic stream contains out-of-pool class %d", c)
		}
	}
	// Head of a traffic stream's distribution is the traffic core: cars on
	// top (§2.2.2).
	if vocab[0] != 0 {
		t.Errorf("most frequent traffic class = %d, want 0 (car)", vocab[0])
	}
	// Zipf head must dominate.
	if st.ClassProb(vocab[0]) < 5*st.ClassProb(vocab[len(vocab)-1]) {
		t.Error("class distribution insufficiently skewed")
	}
}

func TestNewsVocabularyLarger(t *testing.T) {
	cnn := mustStream(t, "cnn")
	auburn := mustStream(t, "auburn_c")
	if len(cnn.Vocabulary()) <= len(auburn.Vocabulary()) {
		t.Error("news vocabulary should exceed traffic vocabulary (§2.2.2)")
	}
	if cnn.Vocabulary()[0] != 1 {
		t.Errorf("most frequent news class = %d, want 1 (person)", cnn.Vocabulary()[0])
	}
}

func TestVocabularyJaccard(t *testing.T) {
	// §2.2.2: average Jaccard index between streams' class sets ≈ 0.46.
	var sets []map[vision.ClassID]bool
	for _, name := range CharacterizationNames() {
		st := mustStream(t, name)
		set := map[vision.ClassID]bool{}
		for _, c := range st.Vocabulary() {
			set[c] = true
		}
		sets = append(sets, set)
	}
	var sum float64
	var n int
	for i := range sets {
		for j := i + 1; j < len(sets); j++ {
			inter, union := 0, 0
			for c := range sets[i] {
				if sets[j][c] {
					inter++
				}
			}
			union = len(sets[i]) + len(sets[j]) - inter
			sum += float64(inter) / float64(union)
			n++
		}
	}
	avg := sum / float64(n)
	if avg < 0.25 || avg > 0.70 {
		t.Errorf("mean vocabulary Jaccard = %.2f, want in [0.25, 0.70] (paper: 0.46)", avg)
	}
}

func TestGenerateDeterminism(t *testing.T) {
	opts := GenOptions{DurationSec: 30, SampleEvery: 1}
	a := mustStream(t, "auburn_c")
	b := mustStream(t, "auburn_c")
	fa, err := a.CollectFrames(opts)
	if err != nil {
		t.Fatal(err)
	}
	fb, err := b.CollectFrames(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(fa) != len(fb) {
		t.Fatalf("frame counts differ: %d vs %d", len(fa), len(fb))
	}
	for i := range fa {
		if len(fa[i].Sightings) != len(fb[i].Sightings) {
			t.Fatalf("frame %d sighting counts differ", i)
		}
		for j := range fa[i].Sightings {
			sa, sb := fa[i].Sightings[j], fb[i].Sightings[j]
			if sa.Object != sb.Object || sa.TrueClass != sb.TrueClass ||
				sa.BBox != sb.BBox || sa.PixelDist != sb.PixelDist || sa.Seed != sb.Seed {
				t.Fatalf("frame %d sighting %d differs: %+v vs %+v", i, j, sa, sb)
			}
			for d := range sa.Appearance {
				if sa.Appearance[d] != sb.Appearance[d] {
					t.Fatalf("frame %d sighting %d appearance differs", i, j)
				}
			}
		}
	}
}

func TestGenerateFrameCountAndOrder(t *testing.T) {
	st := mustStream(t, "bend")
	opts := GenOptions{DurationSec: 20, SampleEvery: 1}
	frames, err := st.CollectFrames(opts)
	if err != nil {
		t.Fatal(err)
	}
	want := int(opts.DurationSec * NativeFPS)
	if len(frames) != want {
		t.Fatalf("frames = %d, want %d", len(frames), want)
	}
	for i, f := range frames {
		if f.ID != FrameID(i) {
			t.Fatalf("frame %d has ID %d", i, f.ID)
		}
		if math.Abs(f.TimeSec-float64(i)/NativeFPS) > 1e-9 {
			t.Fatalf("frame %d has time %v", i, f.TimeSec)
		}
	}
}

func TestGenerateValidation(t *testing.T) {
	st := mustStream(t, "bend")
	if err := st.Generate(GenOptions{DurationSec: 0, SampleEvery: 1}, func(*Frame) error { return nil }); err == nil {
		t.Error("zero duration accepted")
	}
	if err := st.Generate(GenOptions{DurationSec: 5, SampleEvery: 0}, func(*Frame) error { return nil }); err == nil {
		t.Error("zero SampleEvery accepted")
	}
}

func TestEmptyFraction(t *testing.T) {
	// §2.2.1: a sizeable fraction of frames has no moving objects. The
	// spec's EmptyFrac targets the busy (day) half; night idleness pushes
	// the full-window fraction higher still.
	for _, name := range []string{"auburn_r", "jacksonh", "cnn"} {
		st := mustStream(t, name)
		dur := 1200.0
		frames, err := st.CollectFrames(GenOptions{DurationSec: dur, SampleEvery: 6})
		if err != nil {
			t.Fatal(err)
		}
		empty, day := 0, 0
		for _, f := range frames {
			if f.TimeSec >= dur/2 {
				break
			}
			day++
			if len(f.Sightings) == 0 {
				empty++
			}
		}
		frac := float64(empty) / float64(day)
		want := st.Spec.EmptyFrac
		if math.Abs(frac-want) > 0.20 {
			t.Errorf("%s: daytime empty-frame fraction %.2f, spec %.2f", name, frac, want)
		}
	}
}

func TestZipfHeadCoverage(t *testing.T) {
	// Figure 3: 3%–10% of the stream's occurring classes cover >= 95% of
	// objects. Measure over generated objects.
	for _, name := range []string{"auburn_c", "lausanne", "cnn"} {
		st := mustStream(t, name)
		counts := map[vision.ClassID]int{}
		total := 0
		seenObjects := map[ObjectID]bool{}
		err := st.Generate(GenOptions{DurationSec: 2400, SampleEvery: 10}, func(f *Frame) error {
			for _, s := range f.Sightings {
				if !seenObjects[s.Object] {
					seenObjects[s.Object] = true
					counts[s.TrueClass]++
					total++
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if total < 100 {
			t.Fatalf("%s: only %d objects generated", name, total)
		}
		// Sort counts descending and find how many classes reach 95%.
		var cs []int
		for _, n := range counts {
			cs = append(cs, n)
		}
		for i := 0; i < len(cs); i++ {
			for j := i + 1; j < len(cs); j++ {
				if cs[j] > cs[i] {
					cs[i], cs[j] = cs[j], cs[i]
				}
			}
		}
		cum, k := 0, 0
		for _, n := range cs {
			cum += n
			k++
			if float64(cum) >= 0.95*float64(total) {
				break
			}
		}
		frac := float64(k) / float64(len(st.Vocabulary()))
		if frac > 0.15 {
			t.Errorf("%s: %.1f%% of vocabulary needed for 95%% of objects, want head-heavy (<15%%, paper: 3-10%%)", name, 100*frac)
		}
	}
}

func TestDwellControlsSightingsPerObject(t *testing.T) {
	st := mustStream(t, "cnn") // dwell 30s
	counts := map[ObjectID]int{}
	err := st.Generate(GenOptions{DurationSec: 300, SampleEvery: 1}, func(f *Frame) error {
		for _, s := range f.Sightings {
			counts[s.Object]++
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(counts) == 0 {
		t.Fatal("no objects generated")
	}
	var sum float64
	for _, n := range counts {
		sum += float64(n)
	}
	mean := sum / float64(len(counts))
	// Median dwell 30 s at 30 fps = 900 sightings; lognormal mean is higher,
	// truncation at window edges lowers it. Expect hundreds.
	if mean < 200 {
		t.Errorf("mean sightings per object = %.0f, want >= 200 for a news stream", mean)
	}
}

func TestDayNightModulation(t *testing.T) {
	st := mustStream(t, "auburn_r") // NightFactor 0.15
	firstHalf, secondHalf := 0, 0
	dur := 1200.0
	err := st.Generate(GenOptions{DurationSec: dur, SampleEvery: 10}, func(f *Frame) error {
		n := len(f.Sightings)
		if f.TimeSec < dur/2 {
			firstHalf += n
		} else {
			secondHalf += n
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if firstHalf <= secondHalf {
		t.Errorf("day sightings %d <= night sightings %d despite NightFactor %.2f",
			firstHalf, secondHalf, st.Spec.NightFactor)
	}
}

func TestSampleEvery(t *testing.T) {
	st := mustStream(t, "auburn_c")
	full, err := st.CollectFrames(GenOptions{DurationSec: 30, SampleEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	st2 := mustStream(t, "auburn_c")
	sampled, err := st2.CollectFrames(GenOptions{DurationSec: 30, SampleEvery: 30})
	if err != nil {
		t.Fatal(err)
	}
	if len(sampled) != len(full)/30 {
		t.Fatalf("sampled frames = %d, want %d", len(sampled), len(full)/30)
	}
	for _, f := range sampled {
		if f.ID%30 != 0 {
			t.Fatalf("sampled frame ID %d not multiple of 30", f.ID)
		}
	}
}

func TestPixelDistGrowsWithSamplingGap(t *testing.T) {
	meanDist := func(sampleEvery int) float64 {
		st := mustStream(t, "auburn_c")
		var sum float64
		var n int
		err := st.Generate(GenOptions{DurationSec: 60, SampleEvery: sampleEvery}, func(f *Frame) error {
			for _, s := range f.Sightings {
				if s.TrackFrame > 0 {
					sum += s.PixelDist
					n++
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if n == 0 {
			t.Fatal("no repeat sightings")
		}
		return sum / float64(n)
	}
	d1 := meanDist(1)
	d10 := meanDist(10)
	if d10 < 3*d1 {
		t.Errorf("pixel distance at 3 fps (%.2f) should be much larger than at 30 fps (%.2f)", d10, d1)
	}
}

func TestFirstSightingPixelDistLarge(t *testing.T) {
	st := mustStream(t, "bend")
	err := st.Generate(GenOptions{DurationSec: 30, SampleEvery: 1}, func(f *Frame) error {
		for _, s := range f.Sightings {
			if s.TrackFrame == 0 && s.PixelDist < 1e6 {
				t.Fatalf("first sighting of object %d has small PixelDist %v", s.Object, s.PixelDist)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBBoxInScene(t *testing.T) {
	st := mustStream(t, "jacksonh")
	err := st.Generate(GenOptions{DurationSec: 60, SampleEvery: 3}, func(f *Frame) error {
		for _, s := range f.Sightings {
			b := s.BBox
			if b.X < 0 || b.Y < 0 || b.X+b.W > SceneWidth || b.Y+b.H > SceneHeight {
				t.Fatalf("bbox %+v escapes scene", b)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRotationShiftsAppearance(t *testing.T) {
	st := mustStream(t, "church_st")
	off0 := st.rotationOffset(0)
	off1 := st.rotationOffset(st.Spec.RotationPeriodSec + 1)
	if off0 == nil || off1 == nil {
		t.Fatal("rotating stream returned nil offsets")
	}
	var dist float64
	for i := range off0 {
		d := float64(off0[i] - off1[i])
		dist += d * d
	}
	if math.Sqrt(dist) < 1 {
		t.Error("consecutive rotation views have nearly identical offsets")
	}
	// Same view index recurs after a full cycle.
	offCycle := st.rotationOffset(st.Spec.RotationPeriodSec*rotationViews + 1)
	for i := range off0 {
		if off0[i] != offCycle[i] {
			t.Fatal("rotation views do not cycle")
		}
	}
	// Non-rotating streams have no offset.
	if mustStream(t, "bend").rotationOffset(10) != nil {
		t.Error("non-rotating stream has rotation offset")
	}
}

func TestRotationTruncatesDwell(t *testing.T) {
	st := mustStream(t, "church_st")
	period := FrameID(st.Spec.RotationPeriodSec * NativeFPS)
	lastSeen := map[ObjectID]FrameID{}
	firstSeen := map[ObjectID]FrameID{}
	err := st.Generate(GenOptions{DurationSec: 300, SampleEvery: 1}, func(f *Frame) error {
		for _, s := range f.Sightings {
			if _, ok := firstSeen[s.Object]; !ok {
				firstSeen[s.Object] = f.ID
			}
			lastSeen[s.Object] = f.ID
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for id := range firstSeen {
		if firstSeen[id]/period != lastSeen[id]/period {
			t.Fatalf("object %d spans a rotation boundary (%d..%d)", id, firstSeen[id], lastSeen[id])
		}
	}
}

func TestSegmentOf(t *testing.T) {
	if SegmentOf(0.5) != 0 || SegmentOf(1.0) != 1 || SegmentOf(59.99) != 59 {
		t.Error("SegmentOf wrong")
	}
}

func TestRectIntersects(t *testing.T) {
	a := Rect{0, 0, 10, 10}
	if !a.Intersects(Rect{5, 5, 10, 10}) {
		t.Error("overlapping rects not intersecting")
	}
	if a.Intersects(Rect{10, 0, 5, 5}) {
		t.Error("touching rects should not intersect")
	}
	if a.Area() != 100 {
		t.Error("area wrong")
	}
}

func TestRenderDeterminismAndSprites(t *testing.T) {
	st := mustStream(t, "auburn_c")
	frames, err := st.CollectFrames(GenOptions{DurationSec: 10, SampleEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	r := NewRenderer(st)
	var frame *Frame
	for _, f := range frames {
		if len(f.Sightings) > 0 {
			frame = f
			break
		}
	}
	if frame == nil {
		t.Skip("no occupied frame in window")
	}
	img1 := r.Render(frame)
	img2 := r.Render(frame)
	for i := range img1.Pix {
		if img1.Pix[i] != img2.Pix[i] {
			t.Fatal("render not deterministic")
		}
	}
	// Sprite pixels should differ strongly from the empty-scene render.
	empty := r.Render(&Frame{ID: frame.ID, TimeSec: frame.TimeSec})
	s := frame.Sightings[0]
	cx := s.BBox.X + s.BBox.W/2
	cy := s.BBox.Y + s.BBox.H/2
	diff := math.Abs(float64(img1.At(cx, cy)) - float64(empty.At(cx, cy)))
	if diff < 20 {
		t.Errorf("sprite center differs from background by only %.0f", diff)
	}
}

func TestRenderRotatingBackgroundChanges(t *testing.T) {
	st := mustStream(t, "church_st")
	r := NewRenderer(st)
	f0 := &Frame{ID: 0, TimeSec: 0}
	f1 := &Frame{ID: 1, TimeSec: st.Spec.RotationPeriodSec + 1}
	img0 := r.Render(f0)
	img1 := r.Render(f1)
	var diff float64
	for i := range img0.Pix {
		diff += math.Abs(float64(img0.Pix[i]) - float64(img1.Pix[i]))
	}
	if diff/float64(len(img0.Pix)) < 5 {
		t.Error("rotating camera backgrounds nearly identical across views")
	}
}

func TestGrayImageBounds(t *testing.T) {
	g := NewGrayImage(4, 4)
	g.Set(-1, 0, 9)
	g.Set(0, -1, 9)
	g.Set(4, 0, 9)
	if g.At(-1, 0) != 0 || g.At(4, 4) != 0 {
		t.Error("out-of-bounds reads should return 0")
	}
	g.Set(2, 2, 7)
	if g.At(2, 2) != 7 {
		t.Error("in-bounds set/get failed")
	}
}

func BenchmarkGenerate60s(b *testing.B) {
	spec, _ := SpecByName("auburn_c")
	sp := testSpace()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, err := NewStream(spec, sp, testSeed)
		if err != nil {
			b.Fatal(err)
		}
		n := 0
		err = st.Generate(GenOptions{DurationSec: 60, SampleEvery: 1}, func(f *Frame) error {
			n += len(f.Sightings)
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRenderFrame(b *testing.B) {
	st := mustStream(b, "auburn_c")
	frames, err := st.CollectFrames(GenOptions{DurationSec: 5, SampleEvery: 1})
	if err != nil {
		b.Fatal(err)
	}
	r := NewRenderer(st)
	var frame *Frame
	for _, f := range frames {
		if len(f.Sightings) > 2 {
			frame = f
			break
		}
	}
	if frame == nil {
		frame = frames[0]
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Render(frame)
	}
}
