// Package video generates the synthetic video streams that stand in for the
// paper's 13 real traffic, surveillance and news streams (Table 1).
//
// Real recorded video is unavailable in this environment, so each stream is
// a generative model reproducing the statistical properties the paper
// measures and exploits (§2.2):
//
//   - a limited per-stream class vocabulary with a heavily skewed (Zipf)
//     frequency distribution — 3–10% of occurring classes cover ≥95% of
//     objects (Figure 3);
//   - low cross-stream vocabulary overlap (mean Jaccard ≈ 0.46);
//   - temporal redundancy: objects dwell in frame for seconds to minutes,
//     so consecutive sightings of one object are visually similar;
//   - idle/stationary periods: one-third to one-half of frames contain no
//     moving objects (§2.2.1);
//   - day/night activity modulation over the 12-hour capture window.
//
// Streams are generated deterministically from a seed and can optionally
// render small grayscale pixel frames with moving object sprites, which the
// background-subtraction substrate (internal/bgsub) consumes.
package video

import (
	"focus/internal/vision"
)

// FrameID identifies a frame within one stream, numbered from zero at the
// stream's native frame rate.
type FrameID int64

// ObjectID identifies a distinct physical object instance within a stream
// (one car crossing the scene is one object across all its sightings).
type ObjectID int64

// Rect is an axis-aligned bounding box in scene pixel coordinates.
type Rect struct {
	X, Y, W, H int
}

// Intersects reports whether two rectangles overlap.
func (r Rect) Intersects(o Rect) bool {
	return r.X < o.X+o.W && o.X < r.X+r.W && r.Y < o.Y+o.H && o.Y < r.Y+r.H
}

// Area returns the rectangle's area in pixels.
func (r Rect) Area() int { return r.W * r.H }

// Sighting is one detection of one moving object in one frame: the unit of
// work flowing through Focus's ingest pipeline. A Sighting corresponds to
// what background subtraction emits for a moving object (§5).
type Sighting struct {
	// Frame is the frame this sighting belongs to.
	Frame FrameID
	// TimeSec is the frame's timestamp in seconds from stream start.
	TimeSec float64
	// Object is the physical object this sighting belongs to. The ingest
	// pipeline never uses object identity (a real system does not have it);
	// it exists for evaluation and for deriving per-sighting randomness.
	Object ObjectID
	// TrackFrame is the 0-based index of this sighting within the object's
	// lifetime.
	TrackFrame int
	// TrueClass is the object's synthetic ground-truth class. It is hidden
	// from the ingest pipeline and only consumed by the simulated CNNs
	// (which degrade it per their quality laws) and by evaluation.
	TrueClass vision.ClassID
	// Appearance is the latent appearance vector of this sighting: the
	// object's instance appearance plus per-frame pose/lighting jitter and
	// any camera-rotation offset. Simulated CNNs derive features from it.
	Appearance vision.FeatureVec
	// BBox is the detection bounding box in scene coordinates.
	BBox Rect
	// PixelDist is the mean pixel distance between this sighting and the
	// same object's previous emitted sighting, the quantity Focus's
	// ingest-time pixel differencing thresholds on (§4.2). It is +Inf-like
	// large for an object's first sighting.
	PixelDist float64
	// Seed is deterministic per-sighting seed material for the simulated
	// CNN inferences run against this sighting.
	Seed int64
}

// Frame is the set of moving-object sightings visible at one timestamp.
// Frames with no moving objects have an empty Sightings slice; background
// subtraction (and therefore every pipeline in this system, including both
// baselines) skips them.
type Frame struct {
	ID        FrameID
	TimeSec   float64
	Sightings []Sighting
}

// SegmentID identifies a one-second segment of a stream, the granularity at
// which the paper defines ground truth (§6.1): a class is present in a
// segment if the GT-CNN reports it in at least 50% of the segment's frames.
type SegmentID int64

// SegmentOf maps a timestamp to its one-second segment.
func SegmentOf(timeSec float64) SegmentID { return SegmentID(timeSec) }
