package video

import "math"

// GrayImage is a small grayscale frame rendered from a Frame's scene state,
// the input to the background-subtraction substrate.
type GrayImage struct {
	W, H int
	Pix  []uint8 // row-major, len == W*H
}

// NewGrayImage allocates a zeroed image.
func NewGrayImage(w, h int) *GrayImage {
	return &GrayImage{W: w, H: h, Pix: make([]uint8, w*h)}
}

// At returns the pixel at (x, y); out-of-bounds reads return 0.
func (g *GrayImage) At(x, y int) uint8 {
	if x < 0 || y < 0 || x >= g.W || y >= g.H {
		return 0
	}
	return g.Pix[y*g.W+x]
}

// Set writes the pixel at (x, y); out-of-bounds writes are ignored.
func (g *GrayImage) Set(x, y int, v uint8) {
	if x < 0 || y < 0 || x >= g.W || y >= g.H {
		return
	}
	g.Pix[y*g.W+x] = v
}

// Renderer rasterizes frames of one stream into grayscale images: a static
// per-view background plus textured sprites for each sighting, with light
// per-frame sensor noise. It exists so the real background-subtraction code
// path (internal/bgsub) can be exercised against known ground truth.
type Renderer struct {
	stream *Stream
	// backgrounds holds one background per camera view (rotating streams
	// switch among them).
	backgrounds []*GrayImage
}

// NewRenderer builds the renderer and its per-view backgrounds.
func NewRenderer(st *Stream) *Renderer {
	views := 1
	if st.Spec.RotationPeriodSec > 0 {
		views = rotationViews
	}
	r := &Renderer{stream: st}
	for v := 0; v < views; v++ {
		r.backgrounds = append(r.backgrounds, renderBackground(st, v))
	}
	return r
}

// renderBackground builds a deterministic static background for one view: a
// few low-frequency intensity waves that look like pavement/sky gradients.
func renderBackground(st *Stream, view int) *GrayImage {
	src := st.src.DeriveN(int64(view), "background")
	phase1 := src.Float64() * 2 * math.Pi
	phase2 := src.Float64() * 2 * math.Pi
	fx := 1 + src.Float64()*2
	fy := 1 + src.Float64()*2
	img := NewGrayImage(SceneWidth, SceneHeight)
	for y := 0; y < SceneHeight; y++ {
		for x := 0; x < SceneWidth; x++ {
			v := 110 +
				35*math.Sin(phase1+fx*2*math.Pi*float64(x)/SceneWidth) +
				25*math.Cos(phase2+fy*2*math.Pi*float64(y)/SceneHeight)
			img.Set(x, y, clampU8(v))
		}
	}
	return img
}

func clampU8(v float64) uint8 {
	if v < 0 {
		return 0
	}
	if v > 255 {
		return 255
	}
	return uint8(v)
}

// viewAt returns the background view index active at time t.
func (r *Renderer) viewAt(t float64) int {
	if r.stream.Spec.RotationPeriodSec <= 0 {
		return 0
	}
	return int(t/r.stream.Spec.RotationPeriodSec) % len(r.backgrounds)
}

// sensorNoiseAmp is the per-pixel uniform sensor noise amplitude.
const sensorNoiseAmp = 3.0

// Render rasterizes one frame: background view + sensor noise + one sprite
// per sighting.
func (r *Renderer) Render(f *Frame) *GrayImage {
	bg := r.backgrounds[r.viewAt(f.TimeSec)]
	img := NewGrayImage(SceneWidth, SceneHeight)
	copy(img.Pix, bg.Pix)

	noise := r.stream.src.DeriveN(int64(f.ID), "sensor-noise")
	for i := range img.Pix {
		n := (noise.Float64()*2 - 1) * sensorNoiseAmp
		img.Pix[i] = clampU8(float64(img.Pix[i]) + n)
	}
	for i := range f.Sightings {
		r.drawSprite(img, &f.Sightings[i])
	}
	return img
}

// drawSprite fills the sighting's bounding box with a textured sprite whose
// base intensity contrasts with the background and is stable per object, so
// the same object looks the same frame to frame.
func (r *Renderer) drawSprite(img *GrayImage, s *Sighting) {
	osrc := r.stream.src.DeriveN(int64(s.Object), "sprite")
	// Base intensity: far enough from the mid-background band to produce a
	// clean foreground mask. Alternate bright and dark sprites per object.
	var base float64
	if osrc.Bernoulli(0.5) {
		base = 215 + osrc.Float64()*35
	} else {
		base = 8 + osrc.Float64()*35
	}
	tex := osrc.Float64() * 2 * math.Pi
	for dy := 0; dy < s.BBox.H; dy++ {
		for dx := 0; dx < s.BBox.W; dx++ {
			t := 10 * math.Sin(tex+float64(dx)*0.9+float64(dy)*1.3)
			img.Set(s.BBox.X+dx, s.BBox.Y+dy, clampU8(base+t))
		}
	}
}
