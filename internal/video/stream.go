package video

import (
	"fmt"
	"math"
	"sort"

	"focus/internal/simrand"
	"focus/internal/vision"
)

// GenOptions controls one generation pass over a stream.
type GenOptions struct {
	// DurationSec is the simulated capture length in seconds. Experiments
	// use scaled-down durations; the paper's native window is 12 hours.
	DurationSec float64
	// SampleEvery emits every n-th native frame (1 = full 30 fps, 30 =
	// 1 fps), the frame-sampling knob of §6.6.
	SampleEvery int
}

func (o GenOptions) validate() error {
	if o.DurationSec <= 0 {
		return fmt.Errorf("video: non-positive duration %v", o.DurationSec)
	}
	if o.SampleEvery < 1 {
		return fmt.Errorf("video: SampleEvery must be >= 1, got %d", o.SampleEvery)
	}
	return nil
}

// EffectiveFPS returns the emitted frame rate under these options.
func (o GenOptions) EffectiveFPS() float64 { return NativeFPS / float64(o.SampleEvery) }

// object is one physical object's lifecycle within a stream.
type object struct {
	id         ObjectID
	class      vision.ClassID
	enterFrame FrameID
	exitFrame  FrameID // exclusive
	instance   vision.FeatureVec
	// motion state
	x, y   float64
	dx, dy float64 // per native frame
	w, h   int
	speed  float64
	// pose drift state: a mean-reverting (Ornstein–Uhlenbeck) walk in
	// feature space around the instance appearance, advanced once per
	// native frame. Bounded drift means sightings close in time look
	// alike while sightings far apart show a visibly different pose,
	// which is what limits how many sightings of one object share a
	// cluster in Focus's ingest clustering.
	drift    vision.FeatureVec
	driftSrc *simrand.Source
	// lastEmitFrame tracks the previous emitted sighting for pixel-distance
	// computation; -1 before the first emission.
	lastEmitFrame FrameID
	emitted       int // sightings emitted so far (TrackFrame counter)
}

// Stream is a deterministic synthetic video stream.
type Stream struct {
	Spec  StreamSpec
	Space *vision.Space

	src   *simrand.Source
	vocab []vision.ClassID // Zipf rank order: vocab[0] is the most frequent class
	zipf  *simrand.Zipf
}

// NewStream builds a stream from its spec over a shared feature space. The
// same (spec, space seed, stream seed) always generates identical video.
func NewStream(spec StreamSpec, space *vision.Space, seed uint64) (*Stream, error) {
	if spec.VocabSize <= 0 {
		return nil, fmt.Errorf("video: stream %q has non-positive vocabulary", spec.Name)
	}
	if spec.ArrivalPerSec <= 0 || spec.DwellMeanSec <= 0 {
		return nil, fmt.Errorf("video: stream %q has non-positive arrival or dwell", spec.Name)
	}
	st := &Stream{
		Spec:  spec,
		Space: space,
		src:   simrand.New(seed).Derive("video", spec.Name),
	}
	st.buildVocabulary()
	st.zipf = simrand.NewZipf(len(st.vocab), spec.ZipfAlpha)
	return st, nil
}

// poolSize returns the class-pool size the stream's vocabulary draws from:
// street-level video cannot contain arbitrary ImageNet classes, and news
// streams additionally draw studio/news classes (§2.2.2).
func (st *Stream) poolSize() int {
	if st.Spec.Type == News {
		return newsPoolSize
	}
	return streetPoolSize
}

// buildVocabulary selects which classes occur in this stream and their Zipf
// rank order: the domain core occupies the head (traffic streams are
// dominated by vehicles, news by people), the tail is a stream-specific
// sample from the domain pool.
func (st *Stream) buildVocabulary() {
	core := domainCore(st.Spec.Type)
	pool := st.poolSize()
	n := st.Spec.VocabSize
	if n > pool {
		n = pool
	}

	inVocab := make(map[vision.ClassID]bool, n)
	vocab := make([]vision.ClassID, 0, n)
	for _, c := range core {
		if len(vocab) >= n {
			break
		}
		if !inVocab[c] {
			inVocab[c] = true
			vocab = append(vocab, c)
		}
	}
	// Fill the tail with a stream-specific permutation of the pool.
	perm := st.src.Derive("vocab").Perm(pool)
	for _, p := range perm {
		if len(vocab) >= n {
			break
		}
		c := vision.ClassID(p)
		if !inVocab[c] {
			inVocab[c] = true
			vocab = append(vocab, c)
		}
	}
	st.vocab = vocab
}

// Vocabulary returns the stream's occurring classes in Zipf rank order
// (most frequent first). Callers must not mutate the returned slice.
func (st *Stream) Vocabulary() []vision.ClassID { return st.vocab }

// ClassProb returns the probability that a new object belongs to class c.
func (st *Stream) ClassProb(c vision.ClassID) float64 {
	for i, v := range st.vocab {
		if v == c {
			return st.zipf.Prob(i)
		}
	}
	return 0
}

// DominantClasses returns the stream's n most frequent classes, the classes
// the paper evaluates query latency over (§6.1).
func (st *Stream) DominantClasses(n int) []vision.ClassID {
	if n > len(st.vocab) {
		n = len(st.vocab)
	}
	out := make([]vision.ClassID, n)
	copy(out, st.vocab[:n])
	return out
}

// classBBox returns the nominal sprite size for a class: vehicles are wide,
// people tall, everything else small.
func classBBox(c vision.ClassID) (w, h int) {
	switch c {
	case 0, 2, 3, 12, 13, 20, 22, 23, 24, 25, 26, 27, 28, 29: // vehicles
		return 26, 14
	case 1: // person
		return 9, 20
	case 4, 5, 15, 16, 30: // bikes and boards
		return 14, 12
	default:
		return 12, 10
	}
}

// rotationViews is how many camera views a rotating stream cycles through.
const rotationViews = 5

// rotationOffset returns the appearance offset of the camera view active at
// time t for rotating streams (zero vector otherwise). Different views see
// objects from different angles, shifting their appearance and breaking
// cross-view visual similarity.
func (st *Stream) rotationOffset(t float64) vision.FeatureVec {
	if st.Spec.RotationPeriodSec <= 0 {
		return nil
	}
	view := int(t/st.Spec.RotationPeriodSec) % rotationViews
	src := st.src.DeriveN(int64(view), "rotation-view")
	v := make(vision.FeatureVec, vision.FeatureDim)
	for i := range v {
		v[i] = float32(src.NormFloat64() * 0.9)
	}
	return v
}

// buildObjects pre-generates every object lifecycle intersecting the
// generation window. Objects arrive in Poisson bursts during "busy" periods
// separated by idle gaps (so a controllable fraction of frames is empty,
// §2.2.1), at a rate modulated by a day/night cycle.
func (st *Stream) buildObjects(opts GenOptions) []*object {
	spec := st.Spec
	osrc := st.src.Derive("objects")
	totalFrames := FrameID(opts.DurationSec * NativeFPS)

	// Busy/idle alternation. Busy periods average busyMean seconds; idle
	// period lengths are set so the long-run fraction of EMPTY time equals
	// EmptyFrac. Objects arriving late in a busy period dwell into the
	// idle gap, so the gap must exceed the nominal idle share by roughly
	// one mean dwell time to actually leave the scene empty.
	const busyMean = 40.0
	idleMean := 0.0
	if spec.EmptyFrac > 0 && spec.EmptyFrac < 1 {
		idleMean = (spec.EmptyFrac*busyMean+spec.DwellMeanSec)/(1-spec.EmptyFrac) - spec.DwellMeanSec
		if idleMean < spec.DwellMeanSec/2 {
			idleMean = spec.DwellMeanSec / 2
		}
	}

	var objs []*object
	var id ObjectID
	t := 0.0
	busy := true
	if spec.EmptyFrac > 0 && osrc.Float64() < spec.EmptyFrac {
		busy = false
	}
	for t < opts.DurationSec {
		var periodLen float64
		if busy {
			periodLen = busyMean * (0.3 + 0.7*osrc.ExpFloat64())
		} else {
			periodLen = (idleMean + spec.DwellMeanSec) * (0.3 + 0.7*osrc.ExpFloat64())
			if idleMean == 0 {
				periodLen = 0
			}
		}
		end := math.Min(t+periodLen, opts.DurationSec)
		if busy {
			// Day/night modulation: the first half of the window is day.
			rate := spec.ArrivalPerSec
			if t >= opts.DurationSec/2 {
				rate *= spec.NightFactor
			}
			n := osrc.Poisson(rate * (end - t))
			for i := 0; i < n; i++ {
				at := t + osrc.Float64()*(end-t)
				objs = append(objs, st.newObject(id, at, osrc, totalFrames))
				id++
			}
		}
		t = end
		busy = !busy
	}
	sort.Slice(objs, func(i, j int) bool {
		if objs[i].enterFrame != objs[j].enterFrame {
			return objs[i].enterFrame < objs[j].enterFrame
		}
		return objs[i].id < objs[j].id
	})
	return objs
}

// newObject draws one object lifecycle entering at time `at` seconds.
func (st *Stream) newObject(id ObjectID, at float64, osrc *simrand.Source, totalFrames FrameID) *object {
	spec := st.Spec
	src := st.src.DeriveN(int64(id), "object")
	rank := st.zipf.Sample(src)
	class := st.vocab[rank]

	dwell := spec.DwellMeanSec * math.Exp(spec.DwellJitter*src.NormFloat64())
	if dwell < 0.5 {
		dwell = 0.5
	}
	// Cap the lognormal tail: a single extreme dwell would otherwise keep
	// the scene occupied across several idle gaps.
	if max := 3 * spec.DwellMeanSec; dwell > max {
		dwell = max
	}
	enter := FrameID(at * NativeFPS)
	exit := enter + FrameID(dwell*NativeFPS)
	// A rotating camera truncates every object at the next view switch: the
	// object is still there, but the camera is not looking at it.
	if spec.RotationPeriodSec > 0 {
		boundary := (math.Floor(at/spec.RotationPeriodSec) + 1) * spec.RotationPeriodSec
		if b := FrameID(boundary * NativeFPS); exit > b {
			exit = b
		}
	}
	if exit > totalFrames {
		exit = totalFrames
	}
	if exit <= enter {
		exit = enter + 1
	}

	w, h := classBBox(class)
	speed := spec.SpeedPxPerFrame * math.Exp(0.3*src.NormFloat64())
	angle := src.Float64() * 2 * math.Pi
	o := &object{
		id:            id,
		class:         class,
		enterFrame:    enter,
		exitFrame:     exit,
		instance:      st.Space.NewInstanceAppearance(class, src),
		x:             float64(src.Intn(SceneWidth - w)),
		y:             float64(src.Intn(SceneHeight - h)),
		dx:            speed * math.Cos(angle),
		dy:            speed * math.Sin(angle),
		w:             w,
		h:             h,
		speed:         speed,
		drift:         make(vision.FeatureVec, vision.FeatureDim),
		driftSrc:      st.src.DeriveN(int64(id), "drift"),
		lastEmitFrame: -1,
	}
	return o
}

// stepDrift advances the pose drift by n native frames of an OU process
// with time constant tau seconds and stationary per-coordinate amplitude
// amp: d ← d·(1−θ) + amp·sqrt(2θ−θ²)·N(0,I), which keeps the stationary
// std exactly amp for any θ = 1/(tau·fps) in (0, 1].
func (o *object) stepDrift(n int, tau, amp float64) {
	if tau <= 0 || amp <= 0 {
		return
	}
	theta := 1 / (tau * NativeFPS)
	if theta > 1 {
		theta = 1
	}
	noise := amp * math.Sqrt(2*theta-theta*theta)
	for i := 0; i < n; i++ {
		for d := range o.drift {
			o.drift[d] = o.drift[d]*float32(1-theta) + float32(noise*o.driftSrc.NormFloat64())
		}
	}
}

// step advances the object's position by n native frames, reflecting at
// scene edges so the bounding box stays in view for its whole dwell.
func (o *object) step(n int) {
	for i := 0; i < n; i++ {
		o.x += o.dx
		o.y += o.dy
		if o.x < 0 {
			o.x = -o.x
			o.dx = -o.dx
		}
		if o.y < 0 {
			o.y = -o.y
			o.dy = -o.dy
		}
		if maxX := float64(SceneWidth - o.w); o.x > maxX {
			o.x = 2*maxX - o.x
			o.dx = -o.dx
		}
		if maxY := float64(SceneHeight - o.h); o.y > maxY {
			o.y = 2*maxY - o.y
			o.dy = -o.dy
		}
	}
}

// Generate walks the stream frame by frame, invoking visit for every
// emitted frame in order. Frames with no moving objects are still visited
// (with empty Sightings) so consumers can measure occupancy; the ingest
// pipeline skips them exactly as background subtraction would.
//
// Generation is deterministic: the same stream and options always produce
// identical frames. visit returning an error aborts generation.
func (st *Stream) Generate(opts GenOptions, visit func(*Frame) error) error {
	if err := opts.validate(); err != nil {
		return err
	}
	objs := st.buildObjects(opts)
	totalFrames := FrameID(opts.DurationSec * NativeFPS)

	active := make([]*object, 0, 64)
	next := 0
	for f := FrameID(0); f < totalFrames; f += FrameID(opts.SampleEvery) {
		// Admit objects entering at or before f.
		for next < len(objs) && objs[next].enterFrame <= f {
			o := objs[next]
			next++
			if o.exitFrame > f {
				active = append(active, o)
			}
		}
		// Retire exited objects (order-preserving compaction keeps sighting
		// order deterministic).
		live := active[:0]
		for _, o := range active {
			if o.exitFrame > f {
				live = append(live, o)
			}
		}
		active = live

		t := float64(f) / NativeFPS
		frame := &Frame{ID: f, TimeSec: t}
		if len(active) > 0 {
			rot := st.rotationOffset(t)
			frame.Sightings = make([]Sighting, 0, len(active))
			for _, o := range active {
				frame.Sightings = append(frame.Sightings, st.emitSighting(o, f, t, rot))
			}
		}
		if err := visit(frame); err != nil {
			return err
		}
	}
	return nil
}

// pixelDistFirstSighting is the PixelDist reported for an object's first
// sighting: effectively "infinitely different" so pixel differencing never
// deduplicates it.
const pixelDistFirstSighting = 1e9

// emitSighting produces the Sighting of object o at frame f, advancing the
// object's motion state across the sampling gap.
func (st *Stream) emitSighting(o *object, f FrameID, t float64, rot vision.FeatureVec) Sighting {
	gap := 0
	if o.lastEmitFrame >= 0 {
		gap = int(f - o.lastEmitFrame)
		o.step(gap)
		o.stepDrift(gap, st.Spec.PoseDriftTau, st.Spec.PoseDriftAmp)
	}
	seed := int64(o.id)<<20 | int64(f-o.enterFrame)
	ssrc := st.src.DeriveN(seed, "sight")

	app := st.Space.SightingAppearance(o.instance, ssrc)
	for i := range app {
		app[i] += o.drift[i]
	}
	if rot != nil {
		for i := range app {
			app[i] += rot[i]
		}
	}

	// Pixel distance to the previous emitted sighting: a compression/sensor
	// noise floor plus motion across the gap plus heavy-tailed jitter.
	// Slow objects (news anchors, lingering pedestrians) fall under
	// typical differencing thresholds a third to half of the time; fast
	// vehicles almost never do.
	pixelDist := pixelDistFirstSighting
	if o.lastEmitFrame >= 0 {
		motion := o.speed * float64(gap)
		pixelDist = 1.2 + motion*1.5 + ssrc.ExpFloat64()*3.0
	}

	s := Sighting{
		Frame:      f,
		TimeSec:    t,
		Object:     o.id,
		TrackFrame: o.emitted,
		TrueClass:  o.class,
		Appearance: app,
		BBox:       Rect{X: int(o.x), Y: int(o.y), W: o.w, H: o.h},
		PixelDist:  pixelDist,
		Seed:       seed,
	}
	o.lastEmitFrame = f
	o.emitted++
	return s
}

// CNNSource returns the deterministic randomness source for one simulated
// CNN inference against the sighting with the given seed. purpose
// distinguishes independent inferences on the same sighting (one per model
// name, plus "gt" for ground-truth labelling). Every component — ingest,
// query, evaluation — derives through this method, so the GT-CNN gives the
// same answer for a sighting no matter which stage asks.
func (st *Stream) CNNSource(seed int64, purpose string) *simrand.Source {
	return st.src.DeriveN(seed, "cnn", purpose)
}

// CollectFrames is a convenience wrapper that materializes all frames of a
// generation pass. Intended for tests and small examples; large sweeps
// should stream via Generate.
func (st *Stream) CollectFrames(opts GenOptions) ([]*Frame, error) {
	var out []*Frame
	err := st.Generate(opts, func(f *Frame) error {
		out = append(out, f)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
