package ingest

import (
	"fmt"

	"focus/internal/cluster"
	"focus/internal/gpu"
	"focus/internal/index"
	"focus/internal/video"
	"focus/internal/vision"
)

// This file is the ingest worker's checkpoint seam. A snapshot taken between
// two ProcessFrame calls, together with the index records spilled so far,
// fully determines the rest of the ingestion: restoring it and replaying the
// remaining frames produces an index bit-identical to an uninterrupted run.
//
// The subtle state is the pixel-diff association table: its entries point at
// live cluster objects, so the snapshot stores cluster IDs and the restore
// re-links them against the restored engine (or a spilled placeholder, which
// preserves the AddDeduplicated-refuses-spilled fallback behavior).

// PrevEntrySnapshot is one persisted pixel-diff association entry.
type PrevEntrySnapshot struct {
	BBox      video.Rect
	Object    video.ObjectID
	ClusterID int64
	// Spilled marks entries whose cluster had already been spilled at
	// snapshot time.
	Spilled bool
}

// WorkerSnapshot is the persisted form of a worker mid-ingestion. It embeds
// the post-default ingest configuration (minus the model, which the caller
// persists as a reconstructible spec) so a restore does not depend on
// defaults staying constant across versions.
type WorkerSnapshot struct {
	Stats       Stats
	PrevFrameID video.FrameID
	WindowSec   float64

	K                     int
	ClusterThreshold      float64
	MaxActiveClusters     int
	PixelDiffThreshold    float64
	FrameStride           video.FrameID
	ClusterIdleTimeoutSec float64

	Prev   []PrevEntrySnapshot
	Engine cluster.EngineSnapshot
}

// Snapshot captures the worker's complete mutable state. It must be called
// between ProcessFrame calls (the worker's driving goroutine between
// frames), where the current-frame association table is empty.
func (w *Worker) Snapshot() (WorkerSnapshot, error) {
	if len(w.cur) != 0 {
		return WorkerSnapshot{}, fmt.Errorf("ingest: snapshot taken mid-frame")
	}
	snap := WorkerSnapshot{
		Stats:       w.stats,
		PrevFrameID: w.prevFrameID,
		WindowSec:   w.windowSec,

		K:                     w.cfg.K,
		ClusterThreshold:      w.cfg.ClusterThreshold,
		MaxActiveClusters:     w.cfg.MaxActiveClusters,
		PixelDiffThreshold:    w.cfg.PixelDiffThreshold,
		FrameStride:           w.cfg.FrameStride,
		ClusterIdleTimeoutSec: w.cfg.ClusterIdleTimeoutSec,

		Prev:   make([]PrevEntrySnapshot, len(w.prev)),
		Engine: w.engine.Snapshot(),
	}
	for i, pe := range w.prev {
		snap.Prev[i] = PrevEntrySnapshot{
			BBox:      pe.bbox,
			Object:    pe.object,
			ClusterID: pe.cluster.ID,
			Spilled:   pe.cluster.Spilled(),
		}
	}
	return snap, nil
}

// RestoreWorker rebuilds a worker from a snapshot over an already-restored
// index. model must be the same ingest CNN the snapshotted worker ran with
// (reconstructed from its persisted spec); stream must be a fresh replay of
// the same deterministic stream. The caller resumes by feeding the frames
// the snapshot had not yet processed (IDs > snap.PrevFrameID).
func RestoreWorker(stream *video.Stream, space *vision.Space, model *vision.Model,
	meter *gpu.Meter, ix *index.Index, snap WorkerSnapshot) (*Worker, error) {
	cfg := Config{
		Model:                 model,
		K:                     snap.K,
		ClusterThreshold:      snap.ClusterThreshold,
		MaxActiveClusters:     snap.MaxActiveClusters,
		PixelDiffThreshold:    snap.PixelDiffThreshold,
		FrameStride:           snap.FrameStride,
		ClusterIdleTimeoutSec: snap.ClusterIdleTimeoutSec,
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	w := &Worker{
		stream:      stream,
		space:       space,
		cfg:         cfg,
		meter:       meter,
		pacer:       meter.NewPacer(),
		ix:          ix,
		stats:       snap.Stats,
		prevFrameID: snap.PrevFrameID,
		windowSec:   snap.WindowSec,
	}
	// Mirror NewWorker's engine-config derivation exactly.
	threshold := cfg.ClusterThreshold
	if threshold == 0 {
		threshold = 1e-9
	}
	idle := cfg.ClusterIdleTimeoutSec
	if idle <= 0 {
		idle = DefaultClusterIdleTimeoutSec
	}
	var err error
	w.engine, err = cluster.NewEngineFromSnapshot(cluster.Config{
		Threshold:      threshold,
		MaxActive:      cfg.MaxActiveClusters,
		IdleTimeoutSec: idle,
		MaxMembers:     DefaultMaxClusterMembers,
	}, w.ix.AddCluster, snap.Engine)
	if err != nil {
		return nil, err
	}
	w.prev = make([]prevEntry, len(snap.Prev))
	for i, pe := range snap.Prev {
		var c *cluster.Cluster
		if pe.Spilled {
			c = cluster.SpilledPlaceholder(pe.ClusterID)
		} else if c = w.engine.FindActive(pe.ClusterID); c == nil {
			return nil, fmt.Errorf("ingest: snapshot prev entry references unknown active cluster %d", pe.ClusterID)
		}
		w.prev[i] = prevEntry{bbox: pe.BBox, object: pe.Object, cluster: c}
	}
	return w, nil
}
