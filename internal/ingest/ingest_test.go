package ingest_test

import (
	"testing"

	"focus/internal/gpu"
	"focus/internal/ingest"
	"focus/internal/video"
	"focus/internal/vision"
)

func testStream(t testing.TB, name string, seed uint64) (*video.Stream, *vision.Space) {
	t.Helper()
	space := vision.NewSpace(1)
	spec, ok := video.SpecByName(name)
	if !ok {
		t.Fatalf("no spec %q", name)
	}
	st, err := video.NewStream(spec, space, seed)
	if err != nil {
		t.Fatal(err)
	}
	return st, space
}

func defaultConfig(zoo *vision.Zoo) ingest.Config {
	return ingest.Config{
		Model:              zoo.ByName("resnet18"),
		K:                  60,
		ClusterThreshold:   3.0,
		PixelDiffThreshold: 3.0,
	}
}

func TestConfigValidation(t *testing.T) {
	st, space := testStream(t, "bend", 1)
	zoo := vision.NewZoo()
	var meter gpu.Meter
	bad := []ingest.Config{
		{Model: nil, K: 10},
		{Model: zoo.GT, K: 0},
		{Model: zoo.GT, K: 10, ClusterThreshold: -1},
		{Model: zoo.GT, K: 10, PixelDiffThreshold: -1},
	}
	for i, cfg := range bad {
		if _, err := ingest.NewWorker(st, space, cfg, &meter); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

func TestRunProducesIndex(t *testing.T) {
	st, space := testStream(t, "auburn_c", 7)
	zoo := vision.NewZoo()
	var meter gpu.Meter
	w, err := ingest.NewWorker(st, space, defaultConfig(zoo), &meter)
	if err != nil {
		t.Fatal(err)
	}
	opts := video.GenOptions{DurationSec: 60, SampleEvery: 1}
	ix, err := w.Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	ws := w.Stats()
	if ws.Sightings == 0 {
		t.Fatal("no sightings ingested")
	}
	if ws.Frames != int(60*video.NativeFPS) {
		t.Errorf("frames = %d", ws.Frames)
	}
	if ix.NumClusters() == 0 {
		t.Fatal("no clusters in index")
	}
	if ix.Meta().TotalSightings != ws.Sightings {
		t.Error("index TotalSightings mismatch")
	}
	if ix.Meta().DurationSec != 60 || ix.Meta().FPS != 30 {
		t.Errorf("index window = %v s @ %v fps", ix.Meta().DurationSec, ix.Meta().FPS)
	}
	if ix.Meta().ModelName != "resnet18" || ix.Meta().K != 60 {
		t.Errorf("index meta = %+v", ix.Meta())
	}
	// Every sighting is accounted for in exactly one cluster.
	if got := ix.Stats().Members; got != ws.Sightings {
		t.Errorf("index members = %d, sightings = %d", got, ws.Sightings)
	}
	// GPU accounting matches CNN inferences.
	snap := meter.Snapshot()
	if snap.IngestOps != int64(ws.CNNInferences) {
		t.Errorf("meter ops %d != CNN inferences %d", snap.IngestOps, ws.CNNInferences)
	}
	wantMS := float64(ws.CNNInferences) * zoo.ByName("resnet18").CostMS()
	if diff := snap.IngestMS - wantMS; diff > 1e-6 || diff < -1e-6 {
		t.Errorf("meter ms %v != expected %v", snap.IngestMS, wantMS)
	}
}

func TestDeterministicIngest(t *testing.T) {
	zoo := vision.NewZoo()
	opts := video.GenOptions{DurationSec: 30, SampleEvery: 1}
	run := func() (int, int, int) {
		st, space := testStream(t, "jacksonh", 11)
		var meter gpu.Meter
		w, err := ingest.NewWorker(st, space, defaultConfig(zoo), &meter)
		if err != nil {
			t.Fatal(err)
		}
		ix, err := w.Run(opts)
		if err != nil {
			t.Fatal(err)
		}
		ws := w.Stats()
		return ix.NumClusters(), ws.CNNInferences, ws.Deduplicated
	}
	c1, n1, d1 := run()
	c2, n2, d2 := run()
	if c1 != c2 || n1 != n2 || d1 != d2 {
		t.Errorf("ingest not deterministic: (%d,%d,%d) vs (%d,%d,%d)", c1, n1, d1, c2, n2, d2)
	}
}

func TestPixelDiffSavesCNNWork(t *testing.T) {
	// News streams have slow-moving objects; pixel differencing must
	// deduplicate a meaningful share of sightings (§4.2) and deduplicated
	// sightings must not run the CNN.
	st, space := testStream(t, "msnbc", 13)
	zoo := vision.NewZoo()
	var meter gpu.Meter
	w, err := ingest.NewWorker(st, space, defaultConfig(zoo), &meter)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Run(video.GenOptions{DurationSec: 120, SampleEvery: 1}); err != nil {
		t.Fatal(err)
	}
	ws := w.Stats()
	if ws.DedupRate() < 0.08 {
		t.Errorf("news dedup rate = %.2f, want >= 0.08", ws.DedupRate())
	}
	if ws.CNNInferences+ws.Deduplicated != ws.Sightings {
		t.Errorf("accounting: cnn %d + dedup %d != sightings %d",
			ws.CNNInferences, ws.Deduplicated, ws.Sightings)
	}
}

func TestPixelDiffDisabled(t *testing.T) {
	st, space := testStream(t, "msnbc", 13)
	zoo := vision.NewZoo()
	cfg := defaultConfig(zoo)
	cfg.PixelDiffThreshold = 0
	var meter gpu.Meter
	w, err := ingest.NewWorker(st, space, cfg, &meter)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Run(video.GenOptions{DurationSec: 60, SampleEvery: 1}); err != nil {
		t.Fatal(err)
	}
	ws := w.Stats()
	if ws.Deduplicated != 0 {
		t.Errorf("dedup with differencing disabled: %d", ws.Deduplicated)
	}
	if ws.CNNInferences != ws.Sightings {
		t.Error("every sighting should hit the CNN when differencing is off")
	}
}

func TestNoClusteringAblation(t *testing.T) {
	st, space := testStream(t, "auburn_c", 17)
	zoo := vision.NewZoo()
	cfg := defaultConfig(zoo)
	cfg.ClusterThreshold = 0 // ablation: no clustering
	cfg.PixelDiffThreshold = 0
	var meter gpu.Meter
	w, err := ingest.NewWorker(st, space, cfg, &meter)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := w.Run(video.GenOptions{DurationSec: 30, SampleEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	ws := w.Stats()
	if ix.NumClusters() != ws.Sightings {
		t.Errorf("no-clustering mode: clusters %d != sightings %d", ix.NumClusters(), ws.Sightings)
	}
}

func TestClusteringReducesClusters(t *testing.T) {
	zoo := vision.NewZoo()
	opts := video.GenOptions{DurationSec: 60, SampleEvery: 1}
	count := func(threshold float64) (int, int) {
		st, space := testStream(t, "auburn_c", 19)
		cfg := defaultConfig(zoo)
		cfg.ClusterThreshold = threshold
		var meter gpu.Meter
		w, err := ingest.NewWorker(st, space, cfg, &meter)
		if err != nil {
			t.Fatal(err)
		}
		ix, err := w.Run(opts)
		if err != nil {
			t.Fatal(err)
		}
		return ix.NumClusters(), w.Stats().Sightings
	}
	none, sightings := count(0)
	clustered, _ := count(3.0)
	if clustered >= none/4 {
		t.Errorf("clustering reduced clusters only from %d to %d (%d sightings)",
			none, clustered, sightings)
	}
}

func TestEmptyFramesCostNothing(t *testing.T) {
	st, space := testStream(t, "auburn_r", 23)
	zoo := vision.NewZoo()
	var meter gpu.Meter
	w, err := ingest.NewWorker(st, space, defaultConfig(zoo), &meter)
	if err != nil {
		t.Fatal(err)
	}
	w.ProcessFrame(&video.Frame{ID: 0, TimeSec: 0})
	w.ProcessFrame(&video.Frame{ID: 1, TimeSec: 1.0 / 30})
	ws := w.Stats()
	if ws.EmptyFrames != 2 || ws.Frames != 2 {
		t.Errorf("stats = %+v", ws)
	}
	if meter.Snapshot().IngestMS != 0 {
		t.Error("empty frames consumed GPU time")
	}
}

func TestSpecializedModelIngest(t *testing.T) {
	st, space := testStream(t, "auburn_c", 29)
	zoo := vision.NewZoo()
	// Specialize on the stream's actual head classes so OTHER is rare.
	classes := st.DominantClasses(10)
	spec, err := vision.TrainSpecialized(zoo.ByName("resnet18"), vision.DefaultSpecializations[1], classes)
	if err != nil {
		t.Fatal(err)
	}
	cfg := ingest.Config{Model: spec, K: 2, ClusterThreshold: 3.0, PixelDiffThreshold: 3.0}
	var meter gpu.Meter
	w, err := ingest.NewWorker(st, space, cfg, &meter)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := w.Run(video.GenOptions{DurationSec: 60, SampleEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !ix.Meta().Specialized {
		t.Error("index meta not marked specialized")
	}
	if len(ix.Meta().SpecialClasses) != len(classes) {
		t.Error("index meta class list wrong")
	}
	// The OTHER class must appear in the index so unspecialized classes
	// remain queryable (§4.3).
	if !ix.HasClass(vision.ClassOther) {
		t.Error("specialized index has no OTHER postings")
	}
	// Specialized ingest must be far cheaper than generic GT ingest.
	perSighting := meter.Snapshot().IngestMS / float64(w.Stats().CNNInferences)
	if factor := vision.GTCostMS / perSighting; factor < 30 {
		t.Errorf("specialized ingest only %.1f× cheaper than GT per inference", factor)
	}
}

func TestLowFrameRateReducesDedup(t *testing.T) {
	// §6.6: at lower frame rates there is less redundancy for pixel
	// differencing to exploit.
	zoo := vision.NewZoo()
	rate := func(sampleEvery int) float64 {
		st, space := testStream(t, "msnbc", 31)
		var meter gpu.Meter
		w, err := ingest.NewWorker(st, space, defaultConfig(zoo), &meter)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := w.Run(video.GenOptions{DurationSec: 120, SampleEvery: sampleEvery}); err != nil {
			t.Fatal(err)
		}
		return w.Stats().DedupRate()
	}
	full := rate(1)
	low := rate(30)
	if low >= full {
		t.Errorf("dedup at 1 fps (%.2f) should be below 30 fps (%.2f)", low, full)
	}
}

func BenchmarkIngestFrame(b *testing.B) {
	st, space := testStream(b, "auburn_c", 37)
	zoo := vision.NewZoo()
	frames, err := st.CollectFrames(video.GenOptions{DurationSec: 60, SampleEvery: 1})
	if err != nil {
		b.Fatal(err)
	}
	var meter gpu.Meter
	w, err := ingest.NewWorker(st, space, defaultConfig(zoo), &meter)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.ProcessFrame(frames[i%len(frames)])
	}
}
