package ingest_test

import (
	"testing"

	"focus/internal/gpu"
	"focus/internal/ingest"
	"focus/internal/video"
	"focus/internal/vision"
)

// mkFrame builds a one-sighting frame for one tracked object. PixelDist is
// what the stream measured against the object's previous emitted sighting.
func mkFrame(id video.FrameID, obj video.ObjectID, trackFrame int, pixelDist float64) *video.Frame {
	return &video.Frame{
		ID:      id,
		TimeSec: float64(id) / video.NativeFPS,
		Sightings: []video.Sighting{{
			Frame:      id,
			TimeSec:    float64(id) / video.NativeFPS,
			Object:     obj,
			TrackFrame: trackFrame,
			TrueClass:  0,
			Appearance: make(vision.FeatureVec, vision.FeatureDim),
			BBox:       video.Rect{X: 10, Y: 10, W: 20, H: 20},
			PixelDist:  pixelDist,
			Seed:       int64(id),
		}},
	}
}

// TestPixelDiffRequiresAdjacentFrame pins the stale-association fix: pixel
// differencing may only deduplicate against the immediately preceding
// processed frame. A frame arriving after a gap (dropped frames, a stride
// change) must be classified, not matched against the stale table — its
// PixelDist was measured against a frame the worker never saw the table
// for.
func TestPixelDiffRequiresAdjacentFrame(t *testing.T) {
	st, space := testStream(t, "bend", 1)
	zoo := vision.NewZoo()
	var meter gpu.Meter
	w, err := ingest.NewWorker(st, space, defaultConfig(zoo), &meter)
	if err != nil {
		t.Fatal(err)
	}

	w.ProcessFrame(mkFrame(0, 1, 0, 1e9)) // first sighting: always scored
	w.ProcessFrame(mkFrame(1, 1, 1, 1.0)) // adjacent, near-identical: dedup
	if got := w.Stats().Deduplicated; got != 1 {
		t.Fatalf("adjacent frame: %d deduplicated, want 1", got)
	}

	// Frames 2–4 are dropped. Frame 5's sighting still has a small
	// PixelDist (measured against frame 4, which this worker never
	// processed), and its bbox still overlaps the stale table entry — but
	// the association is no longer frame-adjacent, so it must be scored.
	w.ProcessFrame(mkFrame(5, 1, 5, 1.0))
	if got := w.Stats().Deduplicated; got != 1 {
		t.Fatalf("after frame gap: %d deduplicated, want still 1", got)
	}
	if got := w.Stats().CNNInferences; got != 2 {
		t.Fatalf("after frame gap: %d inferences, want 2", got)
	}

	// Adjacency restored: frame 6 immediately follows frame 5.
	w.ProcessFrame(mkFrame(6, 1, 6, 1.0))
	if got := w.Stats().Deduplicated; got != 2 {
		t.Fatalf("adjacency restored: %d deduplicated, want 2", got)
	}
}

// TestPixelDiffSurvivesSampling checks that a driver declaring its
// sampling stride (every n-th frame) keeps deduplicating: consecutively
// processed frames are "adjacent" in the processed sequence.
func TestPixelDiffSurvivesSampling(t *testing.T) {
	st, space := testStream(t, "bend", 1)
	zoo := vision.NewZoo()
	var meter gpu.Meter
	cfg := defaultConfig(zoo)
	cfg.FrameStride = 30
	w, err := ingest.NewWorker(st, space, cfg, &meter)
	if err != nil {
		t.Fatal(err)
	}
	w.ProcessFrame(mkFrame(0, 1, 0, 1e9))
	w.ProcessFrame(mkFrame(30, 1, 1, 1.0)) // stride locks to 30
	w.ProcessFrame(mkFrame(60, 1, 2, 1.0))
	if got := w.Stats().Deduplicated; got != 2 {
		t.Fatalf("constant stride: %d deduplicated, want 2", got)
	}
}
