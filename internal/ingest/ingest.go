// Package ingest implements Focus's ingest-time pipeline (§3 IT1–IT4, §5):
// for every moving-object sighting, run the cheap ingest CNN to obtain its
// top-K classes and feature vector (IT1), deduplicate visually identical
// sightings in adjacent frames by pixel differencing (§4.2), cluster
// similar objects by feature vector (IT2), and index each spilled cluster
// under its cluster-level top-K classes (IT3, IT4).
//
// One Worker ingests one stream, mirroring the paper's per-stream worker
// processes. GPU cost is accounted per CNN invocation through a gpu.Meter;
// clustering and indexing are CPU work and cost no GPU time, which is why
// clustering is nearly free at ingest (Figure 8a).
package ingest

import (
	"fmt"

	"focus/internal/cluster"
	"focus/internal/gpu"
	"focus/internal/index"
	"focus/internal/video"
	"focus/internal/vision"
)

// Config selects the ingest-time parameters chosen by the tuner (§4.4).
type Config struct {
	// Model is the cheap ingest CNN (generic compressed or specialized).
	Model *vision.Model
	// K is how many top classes to index per cluster.
	K int
	// ClusterThreshold is the clustering distance threshold T. Zero
	// disables clustering: every sighting becomes its own cluster (the
	// "no clustering" ablation of Figure 8).
	ClusterThreshold float64
	// MaxActiveClusters is the active-cluster cap M.
	MaxActiveClusters int
	// PixelDiffThreshold deduplicates a sighting whose pixels differ from
	// its predecessor in the previous frame by at most this much (§4.2).
	// Zero disables pixel differencing.
	PixelDiffThreshold float64
	// FrameStride is the frame-ID gap between consecutively processed
	// frames: 1 for native-rate drivers (the default), the sampling stride
	// for subsampled ones. Run overrides it from its options; callers
	// driving ProcessFrame directly at a non-native stride must set it,
	// or every frame looks gapped and pixel differencing never engages.
	FrameStride video.FrameID
	// ClusterIdleTimeoutSec retires clusters that stopped growing this
	// many stream-seconds ago. Zero uses the default.
	ClusterIdleTimeoutSec float64
}

// DefaultMaxActiveClusters is the default cap on active clusters.
const DefaultMaxActiveClusters = 256

// DefaultPixelDiffThreshold is the default pixel-differencing threshold, in
// mean-absolute-pixel-difference units.
const DefaultPixelDiffThreshold = 3.0

// DefaultClusterIdleTimeoutSec is the default idle-cluster retirement age.
const DefaultClusterIdleTimeoutSec = 20.0

// DefaultMaxClusterMembers bounds cluster growth: a cluster reaching this
// size is spilled and a fresh one takes over. Unbounded clusters accrete
// across near classes over long windows, silently hurting recall.
const DefaultMaxClusterMembers = 128

func (c Config) validate() error {
	if c.Model == nil {
		return fmt.Errorf("ingest: nil model")
	}
	if c.K < 1 {
		return fmt.Errorf("ingest: K must be >= 1, got %d", c.K)
	}
	if c.ClusterThreshold < 0 {
		return fmt.Errorf("ingest: negative cluster threshold")
	}
	if c.PixelDiffThreshold < 0 {
		return fmt.Errorf("ingest: negative pixel-diff threshold")
	}
	return nil
}

// Stats reports what the worker did.
type Stats struct {
	Frames        int
	EmptyFrames   int
	Sightings     int
	CNNInferences int // sightings actually classified (after dedup)
	Deduplicated  int // sightings assigned by pixel differencing
	Clusters      int // clusters spilled into the index
	IngestGPUMS   float64
}

// DedupRate returns the fraction of sightings skipped by pixel differencing.
func (s Stats) DedupRate() float64 {
	if s.Sightings == 0 {
		return 0
	}
	return float64(s.Deduplicated) / float64(s.Sightings)
}

// prevEntry remembers one sighting of the previous frame for pixel-diff
// association.
type prevEntry struct {
	bbox    video.Rect
	object  video.ObjectID
	cluster *cluster.Cluster
}

// Worker ingests one stream. Not safe for concurrent use; run one worker
// per stream (workers for different streams may run concurrently).
type Worker struct {
	stream *video.Stream
	space  *vision.Space
	cfg    Config
	meter  *gpu.Meter
	pacer  *gpu.Pacer
	engine *cluster.Engine
	ix     *index.Index
	stats  Stats

	prev, cur []prevEntry
	// prevFrameID is the frame the prev association table was built from;
	// -1 before any frame has been processed.
	prevFrameID video.FrameID
	// windowSec is the window length Begin/Run configured; Finish stamps it
	// as the SealSec of the clusters flushed at end of stream.
	windowSec float64
}

// NewWorker creates the ingest worker and its empty index.
func NewWorker(stream *video.Stream, space *vision.Space, cfg Config, meter *gpu.Meter) (*Worker, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.MaxActiveClusters <= 0 {
		cfg.MaxActiveClusters = DefaultMaxActiveClusters
	}
	if cfg.FrameStride <= 0 {
		cfg.FrameStride = 1
	}
	meta := index.IngestMeta{
		Stream:         stream.Spec.Name,
		ModelName:      cfg.Model.Name,
		Specialized:    cfg.Model.Specialized,
		SpecialClasses: cfg.Model.SpecialClasses,
		K:              cfg.K,
		FPS:            video.NativeFPS,
	}
	w := &Worker{
		stream:      stream,
		space:       space,
		cfg:         cfg,
		meter:       meter,
		pacer:       meter.NewPacer(),
		ix:          index.New(meta),
		prevFrameID: -1,
	}
	// ClusterThreshold == 0 is the no-clustering ablation (Figure 8): an
	// effectively zero threshold makes every scored sighting its own
	// cluster while keeping pixel-diff deduplication functional.
	threshold := cfg.ClusterThreshold
	if threshold == 0 {
		threshold = 1e-9
	}
	idle := cfg.ClusterIdleTimeoutSec
	if idle <= 0 {
		idle = DefaultClusterIdleTimeoutSec
	}
	var err error
	w.engine, err = cluster.NewEngine(cluster.Config{
		Threshold:      threshold,
		MaxActive:      cfg.MaxActiveClusters,
		IdleTimeoutSec: idle,
		MaxMembers:     DefaultMaxClusterMembers,
	}, w.ix.AddCluster)
	if err != nil {
		return nil, err
	}
	return w, nil
}

// Index returns the index under construction.
func (w *Worker) Index() *index.Index { return w.ix }

// Stats returns a snapshot of the worker's counters.
func (w *Worker) Stats() Stats { return w.stats }

// Begin configures the worker for a generation window before frames are fed
// through ProcessFrame. Run calls it internally; live ingestion (a session
// pumping frames incrementally) calls it once up front.
func (w *Worker) Begin(opts video.GenOptions) {
	w.ix.SetWindow(opts.DurationSec, opts.EffectiveFPS())
	w.cfg.FrameStride = video.FrameID(opts.SampleEvery)
	w.windowSec = opts.DurationSec
}

// ProcessFrame ingests one frame's sightings.
func (w *Worker) ProcessFrame(f *video.Frame) {
	w.stats.Frames++
	// Advance the index's ingest clock so clusters spilled while processing
	// this frame are stamped with its stream time (SealSec).
	w.ix.SetIngestSec(f.TimeSec)
	// The pixel-diff association table only describes the frame exactly
	// one stride back. A frame arriving at any other gap — dropped frames
	// in a live deployment, a sampling-rate change — makes the table
	// stale: a sighting's PixelDist was measured against its predecessor,
	// not against whatever frame the table still holds, so matching
	// against stale entries would deduplicate (and skip the CNN for)
	// sightings that were never compared pixel-to-pixel.
	if w.prevFrameID >= 0 && f.ID-w.prevFrameID != w.cfg.FrameStride {
		w.prev = w.prev[:0]
	}
	w.prevFrameID = f.ID
	if len(f.Sightings) == 0 {
		// Background subtraction found nothing moving: no GPU work at all,
		// for Focus and baselines alike (§6.1).
		w.stats.EmptyFrames++
		w.prev = w.prev[:0]
		return
	}
	for i := range f.Sightings {
		w.processSighting(&f.Sightings[i])
	}
	// Rotate the association table: this frame's sightings become the
	// "previous frame" for pixel differencing against the next one.
	w.prev, w.cur = w.cur, w.prev[:0]
}

// processSighting runs the dedup / classify / cluster path for one sighting.
func (w *Worker) processSighting(s *video.Sighting) {
	w.stats.Sightings++
	m := cluster.Member{
		Object:    s.Object,
		Frame:     s.Frame,
		TimeSec:   s.TimeSec,
		TrueClass: s.TrueClass,
		BBox:      s.BBox,
		Seed:      s.Seed,
	}

	// Pixel differencing (§4.2): find the best-overlapping sighting in the
	// previous frame; if it is the same physical object (near-identical
	// pixels) and the pixel distance is under threshold, skip the CNN and
	// join the predecessor's cluster directly.
	if w.cfg.PixelDiffThreshold > 0 {
		if p := w.matchPrev(s); p != nil && s.PixelDist <= w.cfg.PixelDiffThreshold {
			if w.engine.AddDeduplicated(p.cluster, m) {
				w.stats.Deduplicated++
				w.cur = append(w.cur, prevEntry{s.BBox, s.Object, p.cluster})
				return
			}
		}
	}

	// Cheap ingest CNN (IT1): top-K classes + feature vector. The rank
	// source is derived per (model, object): a weak model's errors repeat
	// across an object's sightings.
	out := w.cfg.Model.Classify(w.space, s.TrueClass, s.Appearance,
		w.stream.CNNSource(s.Seed, w.cfg.Model.Name),
		w.stream.CNNSource(int64(s.Object), w.cfg.Model.Name+"#rank"), w.cfg.K)
	w.meter.AddIngest(w.cfg.Model.CostMS())
	// Under a real-time pace the worker blocks here for the inference,
	// exactly like an ingest worker waiting on its GPU; workers for other
	// streams overlap the stall.
	w.pacer.Add(w.cfg.Model.CostMS())
	w.stats.CNNInferences++
	w.stats.IngestGPUMS += w.cfg.Model.CostMS()

	c := w.engine.Add(out.Features, m, out.Ranked)
	w.cur = append(w.cur, prevEntry{s.BBox, s.Object, c})
}

// matchPrev returns the previous-frame entry whose bounding box overlaps s
// best, provided it is the same physical object. The identity check stands
// in for the actual pixel comparison a real system performs: two different
// objects occupying the same region have very different pixels, so pixel
// differencing would never merge them.
func (w *Worker) matchPrev(s *video.Sighting) *prevEntry {
	best := -1
	bestArea := 0
	for i := range w.prev {
		if !w.prev[i].bbox.Intersects(s.BBox) {
			continue
		}
		// Use intersection area as the overlap score.
		ix := intersectionArea(w.prev[i].bbox, s.BBox)
		if ix > bestArea {
			bestArea = ix
			best = i
		}
	}
	if best < 0 {
		return nil
	}
	if w.prev[best].object != s.Object {
		return nil
	}
	return &w.prev[best]
}

func intersectionArea(a, b video.Rect) int {
	x0, x1 := maxInt(a.X, b.X), minInt(a.X+a.W, b.X+b.W)
	y0, y1 := maxInt(a.Y, b.Y), minInt(a.Y+a.H, b.Y+b.H)
	if x1 <= x0 || y1 <= y0 {
		return 0
	}
	return (x1 - x0) * (y1 - y0)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Finish flushes remaining clusters and seals the index. End-of-stream
// spills are stamped with the window end: they become visible exactly when
// the watermark reaches the horizon.
func (w *Worker) Finish() *index.Index {
	w.pacer.Flush()
	if w.windowSec > 0 {
		w.ix.SetIngestSec(w.windowSec)
	}
	w.engine.Flush()
	w.stats.Clusters = w.ix.NumClusters()
	w.ix.SetTotalSightings(w.stats.Sightings)
	return w.ix
}

// Run generates the stream with the given options and ingests every frame,
// returning the completed index. It is the one-call path used by
// experiments; live systems drive ProcessFrame per arriving frame.
func (w *Worker) Run(opts video.GenOptions) (*index.Index, error) {
	w.Begin(opts)
	err := w.stream.Generate(opts, func(f *video.Frame) error {
		w.ProcessFrame(f)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return w.Finish(), nil
}
