// Package kvstore is an embedded, log-structured key-value store: the
// stand-in for the MongoDB instance the paper's ingest workers write the
// top-K index into (§5).
//
// Design: an append-only log of checksummed records with a full in-memory
// map. Open replays the log (truncating a torn tail write), Put/Delete
// append, and Compact rewrites the log to contain only live records. The
// store favours simplicity and durability over write amplification — index
// records are written once per spilled cluster and read back at query time.
//
// A Store opened with an empty path is purely in-memory, used by tests and
// parameter sweeps that never persist.
package kvstore

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"log"
	"os"
	"sort"
	"strings"
	"sync"
)

// ErrClosed is returned by operations on a closed store.
var ErrClosed = errors.New("kvstore: store is closed")

const (
	magic          = "FKV1"
	flagTombstone  = 1
	maxKeyLen      = 1 << 16
	maxValueLen    = 1 << 28
	recordOverhead = 4 /*crc*/ + 1 /*flags*/
)

// Store is a single-writer, multi-reader embedded KV store. All methods are
// safe for concurrent use.
type Store struct {
	mu     sync.RWMutex
	path   string
	file   *os.File
	w      *bufio.Writer
	data   map[string][]byte
	closed bool
	// dead counts logically deleted/overwritten records, to advise
	// compaction.
	dead int
}

// Open opens (or creates) the store at path. An empty path opens an
// in-memory store with no persistence.
func Open(path string) (*Store, error) {
	s := &Store{path: path, data: make(map[string][]byte)}
	if path == "" {
		return s, nil
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("kvstore: open %s: %w", path, err)
	}
	if err := s.replay(f); err != nil {
		f.Close()
		return nil, err
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, fmt.Errorf("kvstore: seek %s: %w", path, err)
	}
	s.file = f
	s.w = bufio.NewWriterSize(f, 1<<16)
	return s, nil
}

// replay loads the log into memory, validating checksums. A corrupt or
// torn record truncates the log at that point (standard write-ahead-log
// recovery semantics).
func (s *Store) replay(f *os.File) error {
	info, err := f.Stat()
	if err != nil {
		return fmt.Errorf("kvstore: stat: %w", err)
	}
	if info.Size() < int64(len(magic)) {
		// Fresh file, or a header write torn mid-crash before any record
		// could have landed. Either way nothing is lost: rewrite the header
		// so the log is valid again.
		head := make([]byte, info.Size())
		if _, err := io.ReadFull(f, head); err != nil {
			return fmt.Errorf("kvstore: read header: %w", err)
		}
		if string(head) != magic[:len(head)] {
			return fmt.Errorf("kvstore: %s is not a kvstore file", s.path)
		}
		if info.Size() > 0 {
			log.Printf("kvstore: %s: dropping torn %d-byte header, rewriting", s.path, info.Size())
			if err := f.Truncate(0); err != nil {
				return fmt.Errorf("kvstore: truncate torn header: %w", err)
			}
			if _, err := f.Seek(0, io.SeekStart); err != nil {
				return fmt.Errorf("kvstore: seek: %w", err)
			}
		}
		if _, err := f.WriteString(magic); err != nil {
			return fmt.Errorf("kvstore: write header: %w", err)
		}
		return nil
	}
	r := bufio.NewReaderSize(f, 1<<16)
	head := make([]byte, len(magic))
	if _, err := io.ReadFull(r, head); err != nil || string(head) != magic {
		return fmt.Errorf("kvstore: %s is not a kvstore file", s.path)
	}
	offset := int64(len(magic))
	for {
		rec, n, err := readRecord(r)
		if err == io.EOF {
			break
		}
		if err != nil {
			// Torn tail: truncate and continue from here. Only the suffix a
			// crash interrupted is lost; every record before it replayed
			// with a valid checksum. Say exactly what was dropped so an
			// operator can correlate it with the crash.
			log.Printf("kvstore: %s: dropping %d-byte torn tail at offset %d (%v)",
				s.path, info.Size()-offset, offset, err)
			if terr := f.Truncate(offset); terr != nil {
				return fmt.Errorf("kvstore: truncate torn log: %v (after %v)", terr, err)
			}
			break
		}
		offset += int64(n)
		if rec.tombstone {
			if _, ok := s.data[rec.key]; ok {
				delete(s.data, rec.key)
			}
			s.dead++
		} else {
			if _, ok := s.data[rec.key]; ok {
				s.dead++
			}
			s.data[rec.key] = rec.value
		}
	}
	return nil
}

type record struct {
	key       string
	value     []byte
	tombstone bool
}

// readRecord decodes one record. Returns io.EOF cleanly at end of log and a
// non-EOF error for any malformed/torn record.
func readRecord(r *bufio.Reader) (record, int, error) {
	var rec record
	flags, err := r.ReadByte()
	if err == io.EOF {
		return rec, 0, io.EOF
	}
	if err != nil {
		return rec, 0, err
	}
	n := 1
	keyLen, kn, err := readUvarint(r)
	if err != nil {
		return rec, n, fmt.Errorf("kvstore: key length: %w", err)
	}
	n += kn
	if keyLen > maxKeyLen {
		return rec, n, fmt.Errorf("kvstore: key length %d exceeds limit", keyLen)
	}
	valLen, vn, err := readUvarint(r)
	if err != nil {
		return rec, n, fmt.Errorf("kvstore: value length: %w", err)
	}
	n += vn
	if valLen > maxValueLen {
		return rec, n, fmt.Errorf("kvstore: value length %d exceeds limit", valLen)
	}
	buf := make([]byte, keyLen+valLen+4)
	if _, err := io.ReadFull(r, buf); err != nil {
		return rec, n, fmt.Errorf("kvstore: truncated record: %w", err)
	}
	n += len(buf)
	key := buf[:keyLen]
	val := buf[keyLen : keyLen+valLen]
	stored := binary.LittleEndian.Uint32(buf[keyLen+valLen:])
	if stored != recordCRC(flags, key, val) {
		return rec, n, errors.New("kvstore: checksum mismatch")
	}
	rec.key = string(key)
	rec.tombstone = flags&flagTombstone != 0
	if !rec.tombstone {
		rec.value = append([]byte(nil), val...)
	}
	return rec, n, nil
}

func readUvarint(r *bufio.Reader) (uint64, int, error) {
	var v uint64
	var shift, n int
	for {
		b, err := r.ReadByte()
		if err != nil {
			return 0, n, err
		}
		n++
		v |= uint64(b&0x7f) << shift
		if b < 0x80 {
			return v, n, nil
		}
		shift += 7
		if shift > 63 {
			return 0, n, errors.New("kvstore: uvarint overflow")
		}
	}
}

func recordCRC(flags byte, key, val []byte) uint32 {
	h := crc32.NewIEEE()
	h.Write([]byte{flags})
	h.Write(key)
	h.Write(val)
	return h.Sum32()
}

// appendRecord writes one record to the log buffer.
func (s *Store) appendRecord(flags byte, key string, val []byte) error {
	if s.w == nil {
		return nil // in-memory store
	}
	var hdr [1 + 2*binary.MaxVarintLen64]byte
	hdr[0] = flags
	n := 1
	n += binary.PutUvarint(hdr[n:], uint64(len(key)))
	n += binary.PutUvarint(hdr[n:], uint64(len(val)))
	if _, err := s.w.Write(hdr[:n]); err != nil {
		return err
	}
	if _, err := s.w.WriteString(key); err != nil {
		return err
	}
	if _, err := s.w.Write(val); err != nil {
		return err
	}
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], recordCRC(flags, []byte(key), val))
	_, err := s.w.Write(crc[:])
	return err
}

// Put stores the value under key, overwriting any existing value. The
// value slice is copied.
func (s *Store) Put(key string, val []byte) error {
	if len(key) == 0 || len(key) > maxKeyLen {
		return fmt.Errorf("kvstore: invalid key length %d", len(key))
	}
	if len(val) > maxValueLen {
		return fmt.Errorf("kvstore: value too large (%d bytes)", len(val))
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if err := s.appendRecord(0, key, val); err != nil {
		return fmt.Errorf("kvstore: append: %w", err)
	}
	if _, ok := s.data[key]; ok {
		s.dead++
	}
	s.data[key] = append([]byte(nil), val...)
	return nil
}

// Get returns a copy of the value stored under key.
func (s *Store) Get(key string) ([]byte, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	v, ok := s.data[key]
	if !ok {
		return nil, false
	}
	return append([]byte(nil), v...), true
}

// Delete removes key. Deleting an absent key is a no-op.
func (s *Store) Delete(key string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if _, ok := s.data[key]; !ok {
		return nil
	}
	if err := s.appendRecord(flagTombstone, key, nil); err != nil {
		return fmt.Errorf("kvstore: append tombstone: %w", err)
	}
	delete(s.data, key)
	s.dead++
	return nil
}

// Len returns the number of live keys.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.data)
}

// DeadRecords returns the count of overwritten/deleted log records, a
// compaction heuristic for callers.
func (s *Store) DeadRecords() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.dead
}

// Scan invokes fn for every key with the given prefix, in ascending key
// order, until fn returns false. The value passed to fn must not be
// retained or mutated.
func (s *Store) Scan(prefix string, fn func(key string, val []byte) bool) {
	s.mu.RLock()
	keys := make([]string, 0, len(s.data))
	for k := range s.data {
		if strings.HasPrefix(k, prefix) {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	// Copy values under lock so fn runs without holding it.
	vals := make([][]byte, len(keys))
	for i, k := range keys {
		vals[i] = s.data[k]
	}
	s.mu.RUnlock()
	for i, k := range keys {
		if !fn(k, vals[i]) {
			return
		}
	}
}

// Sync flushes buffered writes to the OS and fsyncs the log.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.syncLocked()
}

func (s *Store) syncLocked() error {
	if s.closed {
		return ErrClosed
	}
	if s.w == nil {
		return nil
	}
	if err := s.w.Flush(); err != nil {
		return fmt.Errorf("kvstore: flush: %w", err)
	}
	if err := s.file.Sync(); err != nil {
		return fmt.Errorf("kvstore: fsync: %w", err)
	}
	return nil
}

// Compact rewrites the log so it contains exactly the live records, then
// atomically replaces the old log.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if s.w == nil {
		s.dead = 0
		return nil
	}
	tmpPath := s.path + ".compact"
	tmp, err := os.OpenFile(tmpPath, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("kvstore: compact: %w", err)
	}
	bw := bufio.NewWriterSize(tmp, 1<<16)
	if _, err := bw.WriteString(magic); err != nil {
		tmp.Close()
		return err
	}
	keys := make([]string, 0, len(s.data))
	for k := range s.data {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	old := s.w
	s.w = bw
	for _, k := range keys {
		if err := s.appendRecord(0, k, s.data[k]); err != nil {
			s.w = old
			tmp.Close()
			os.Remove(tmpPath)
			return fmt.Errorf("kvstore: compact write: %w", err)
		}
	}
	if err := bw.Flush(); err != nil {
		s.w = old
		tmp.Close()
		os.Remove(tmpPath)
		return err
	}
	if err := tmp.Sync(); err != nil {
		s.w = old
		tmp.Close()
		os.Remove(tmpPath)
		return err
	}
	if err := tmp.Close(); err != nil {
		s.w = old
		return err
	}
	if err := old.Flush(); err != nil {
		return err
	}
	if err := s.file.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmpPath, s.path); err != nil {
		return fmt.Errorf("kvstore: compact rename: %w", err)
	}
	f, err := os.OpenFile(s.path, os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("kvstore: reopen after compact: %w", err)
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return err
	}
	s.file = f
	s.w = bufio.NewWriterSize(f, 1<<16)
	s.dead = 0
	return nil
}

// Abandon closes the store WITHOUT flushing buffered writes or syncing:
// everything since the last Sync is lost, exactly as if the process had been
// SIGKILLed. It exists for crash testing — production shutdown paths use
// Close.
func (s *Store) Abandon() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if s.file != nil {
		return s.file.Close()
	}
	return nil
}

// Close flushes and closes the store. Further operations fail with
// ErrClosed.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	var err error
	if s.w != nil {
		err = s.syncLocked()
		if cerr := s.file.Close(); err == nil {
			err = cerr
		}
	}
	s.closed = true
	return err
}
