package kvstore

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"
)

func openTemp(t *testing.T) (*Store, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "test.kv")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	return s, path
}

func TestPutGet(t *testing.T) {
	s, _ := openTemp(t)
	defer s.Close()
	if err := s.Put("a", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	v, ok := s.Get("a")
	if !ok || string(v) != "hello" {
		t.Fatalf("Get = %q, %v", v, ok)
	}
	if _, ok := s.Get("missing"); ok {
		t.Error("missing key found")
	}
	if s.Len() != 1 {
		t.Errorf("Len = %d", s.Len())
	}
}

func TestOverwrite(t *testing.T) {
	s, _ := openTemp(t)
	defer s.Close()
	s.Put("k", []byte("v1"))
	s.Put("k", []byte("v2"))
	v, _ := s.Get("k")
	if string(v) != "v2" {
		t.Errorf("value = %q", v)
	}
	if s.DeadRecords() != 1 {
		t.Errorf("dead records = %d", s.DeadRecords())
	}
}

func TestDelete(t *testing.T) {
	s, _ := openTemp(t)
	defer s.Close()
	s.Put("k", []byte("v"))
	if err := s.Delete("k"); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("k"); ok {
		t.Error("deleted key still present")
	}
	if err := s.Delete("absent"); err != nil {
		t.Errorf("deleting absent key errored: %v", err)
	}
}

func TestGetReturnsCopy(t *testing.T) {
	s, _ := openTemp(t)
	defer s.Close()
	s.Put("k", []byte("abc"))
	v, _ := s.Get("k")
	v[0] = 'X'
	v2, _ := s.Get("k")
	if string(v2) != "abc" {
		t.Error("Get exposed internal buffer")
	}
}

func TestPutCopiesValue(t *testing.T) {
	s, _ := openTemp(t)
	defer s.Close()
	buf := []byte("abc")
	s.Put("k", buf)
	buf[0] = 'X'
	v, _ := s.Get("k")
	if string(v) != "abc" {
		t.Error("Put retained caller buffer")
	}
}

func TestPersistence(t *testing.T) {
	s, path := openTemp(t)
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("key-%03d", i)
		if err := s.Put(key, []byte(fmt.Sprintf("value-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	s.Delete("key-050")
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != 99 {
		t.Fatalf("reopened Len = %d, want 99", s2.Len())
	}
	v, ok := s2.Get("key-042")
	if !ok || string(v) != "value-42" {
		t.Errorf("key-042 = %q, %v", v, ok)
	}
	if _, ok := s2.Get("key-050"); ok {
		t.Error("tombstoned key survived reopen")
	}
}

func TestTornTailTruncated(t *testing.T) {
	s, path := openTemp(t)
	s.Put("good", []byte("value"))
	s.Close()

	// Append garbage simulating a torn write.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{0x00, 0x05, 0xFF, 0xFF}) // flags + keylen, then truncated
	f.Close()

	s2, err := Open(path)
	if err != nil {
		t.Fatalf("open after torn write: %v", err)
	}
	defer s2.Close()
	if v, ok := s2.Get("good"); !ok || string(v) != "value" {
		t.Error("good record lost after torn-tail recovery")
	}
	// The store must be writable after recovery and survive another cycle.
	if err := s2.Put("after", []byte("x")); err != nil {
		t.Fatal(err)
	}
	s2.Close()
	s3, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	if _, ok := s3.Get("after"); !ok {
		t.Error("record written after recovery lost")
	}
}

func TestCorruptChecksumTruncates(t *testing.T) {
	s, path := openTemp(t)
	s.Put("a", []byte("1"))
	s.Put("b", []byte("2"))
	s.Close()

	// Flip a bit in the last record's value region.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-5] ^= 0x40
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if _, ok := s2.Get("a"); !ok {
		t.Error("first record lost")
	}
	if _, ok := s2.Get("b"); ok {
		t.Error("corrupt record surfaced")
	}
}

func TestNotAStoreFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "junk")
	if err := os.WriteFile(path, []byte("this is not a kvstore"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path); err == nil {
		t.Error("junk file opened as store")
	}
}

func TestScanPrefixOrdered(t *testing.T) {
	s, _ := openTemp(t)
	defer s.Close()
	s.Put("b/2", []byte("y"))
	s.Put("a/1", []byte("x"))
	s.Put("b/1", []byte("z"))
	s.Put("b/3", []byte("w"))
	var keys []string
	s.Scan("b/", func(k string, v []byte) bool {
		keys = append(keys, k)
		return true
	})
	want := []string{"b/1", "b/2", "b/3"}
	if len(keys) != len(want) {
		t.Fatalf("scan keys = %v", keys)
	}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("scan keys = %v, want %v", keys, want)
		}
	}
	// Early termination.
	count := 0
	s.Scan("b/", func(string, []byte) bool {
		count++
		return false
	})
	if count != 1 {
		t.Errorf("scan did not stop early: %d", count)
	}
}

func TestCompact(t *testing.T) {
	s, path := openTemp(t)
	for i := 0; i < 50; i++ {
		s.Put("key", []byte(fmt.Sprintf("v%d", i))) // 49 dead records
	}
	s.Put("other", []byte("keep"))
	s.Sync()
	before, _ := os.Stat(path)
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	after, _ := os.Stat(path)
	if after.Size() >= before.Size() {
		t.Errorf("compact did not shrink log: %d -> %d", before.Size(), after.Size())
	}
	if s.DeadRecords() != 0 {
		t.Errorf("dead records after compact = %d", s.DeadRecords())
	}
	// Store still fully functional and durable after compaction.
	v, ok := s.Get("key")
	if !ok || string(v) != "v49" {
		t.Errorf("key = %q, %v", v, ok)
	}
	s.Put("post", []byte("compact"))
	s.Close()
	s2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	for _, k := range []string{"key", "other", "post"} {
		if _, ok := s2.Get(k); !ok {
			t.Errorf("key %q lost after compact+reopen", k)
		}
	}
}

func TestInMemoryStore(t *testing.T) {
	s, err := Open("")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if v, ok := s.Get("k"); !ok || string(v) != "v" {
		t.Error("in-memory put/get failed")
	}
	if err := s.Sync(); err != nil {
		t.Errorf("in-memory sync errored: %v", err)
	}
	if err := s.Compact(); err != nil {
		t.Errorf("in-memory compact errored: %v", err)
	}
}

func TestClosedStoreErrors(t *testing.T) {
	s, _ := openTemp(t)
	s.Close()
	if err := s.Put("k", []byte("v")); err != ErrClosed {
		t.Errorf("Put after close = %v", err)
	}
	if err := s.Delete("k"); err != ErrClosed {
		t.Errorf("Delete after close = %v", err)
	}
	if err := s.Sync(); err != ErrClosed {
		t.Errorf("Sync after close = %v", err)
	}
	if err := s.Compact(); err != ErrClosed {
		t.Errorf("Compact after close = %v", err)
	}
	if err := s.Close(); err != nil {
		t.Errorf("double close = %v", err)
	}
}

func TestKeyValidation(t *testing.T) {
	s, _ := openTemp(t)
	defer s.Close()
	if err := s.Put("", []byte("v")); err == nil {
		t.Error("empty key accepted")
	}
}

func TestEmptyValue(t *testing.T) {
	s, path := openTemp(t)
	s.Put("k", nil)
	s.Close()
	s2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	v, ok := s2.Get("k")
	if !ok || len(v) != 0 {
		t.Errorf("empty value roundtrip = %q, %v", v, ok)
	}
}

func TestBinaryValues(t *testing.T) {
	s, path := openTemp(t)
	val := make([]byte, 1024)
	for i := range val {
		val[i] = byte(i)
	}
	s.Put("bin", val)
	s.Close()
	s2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	got, _ := s2.Get("bin")
	if !bytes.Equal(got, val) {
		t.Error("binary value corrupted")
	}
}

func TestQuickRoundTrip(t *testing.T) {
	s, path := openTemp(t)
	state := map[string][]byte{}
	err := quick.Check(func(key string, val []byte, del bool) bool {
		if len(key) == 0 || len(key) > 64 {
			return true
		}
		if del {
			if err := s.Delete(key); err != nil {
				return false
			}
			delete(state, key)
		} else {
			if err := s.Put(key, val); err != nil {
				return false
			}
			state[key] = append([]byte(nil), val...)
		}
		got, ok := s.Get(key)
		want, wantOK := state[key]
		return ok == wantOK && bytes.Equal(got, want)
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	// Full state must survive a reopen.
	s2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != len(state) {
		t.Fatalf("reopened Len = %d, want %d", s2.Len(), len(state))
	}
	for k, want := range state {
		got, ok := s2.Get(k)
		if !ok || !bytes.Equal(got, want) {
			t.Fatalf("key %q mismatch after reopen", k)
		}
	}
}

func BenchmarkPut(b *testing.B) {
	s, err := Open(filepath.Join(b.TempDir(), "bench.kv"))
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	val := make([]byte, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Put(fmt.Sprintf("key-%d", i), val)
	}
}

func BenchmarkGet(b *testing.B) {
	s, err := Open("")
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 1000; i++ {
		s.Put(fmt.Sprintf("key-%d", i), []byte("value"))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Get(fmt.Sprintf("key-%d", i%1000))
	}
}

// TestCrashAtEveryByteOffset is the exhaustive crash simulation: a populated
// log is truncated at every possible byte offset — including inside the
// 4-byte header — and Open must always succeed, recover exactly the records
// wholly contained in the prefix, and leave the store writable. This is the
// contract the checkpoint commit protocol stands on: a crash can only ever
// cost the un-synced suffix.
func TestCrashAtEveryByteOffset(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "log.fkv")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	type op struct {
		del      bool
		key, val string
	}
	ops := []op{
		{key: "a", val: "1"},
		{key: "b", val: string(bytes.Repeat([]byte{0xAB}, 300))},
		{key: "a", val: "2"},
		{del: true, key: "b"},
		{key: "c", val: ""},
	}
	// sizes[i] is the file size after the first i operations: the record
	// boundaries every truncation offset is judged against.
	sizes := []int64{int64(len(magic))}
	for _, o := range ops {
		if o.del {
			err = s.Delete(o.key)
		} else {
			err = s.Put(o.key, []byte(o.val))
		}
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Sync(); err != nil {
			t.Fatal(err)
		}
		info, err := os.Stat(path)
		if err != nil {
			t.Fatal(err)
		}
		sizes = append(sizes, info.Size())
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	for cut := 0; cut <= len(full); cut++ {
		tpath := filepath.Join(dir, "cut.fkv")
		if err := os.WriteFile(tpath, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		s2, err := Open(tpath)
		if err != nil {
			t.Fatalf("offset %d: open failed: %v", cut, err)
		}
		// The expected state applies every operation whose record lies
		// wholly below the cut.
		n := 0
		for n < len(ops) && sizes[n+1] <= int64(cut) {
			n++
		}
		want := make(map[string]string)
		for _, o := range ops[:n] {
			if o.del {
				delete(want, o.key)
			} else {
				want[o.key] = o.val
			}
		}
		if s2.Len() != len(want) {
			t.Fatalf("offset %d: recovered %d keys, want %d", cut, s2.Len(), len(want))
		}
		for k, v := range want {
			got, ok := s2.Get(k)
			if !ok || string(got) != v {
				t.Fatalf("offset %d: key %q = %q, %v; want %q", cut, k, got, ok, v)
			}
		}
		// Recovery must leave the log writable and durable.
		if err := s2.Put("post-crash", []byte("p")); err != nil {
			t.Fatalf("offset %d: put after recovery: %v", cut, err)
		}
		if err := s2.Close(); err != nil {
			t.Fatalf("offset %d: close after recovery: %v", cut, err)
		}
		s3, err := Open(tpath)
		if err != nil {
			t.Fatalf("offset %d: reopen after recovery: %v", cut, err)
		}
		if _, ok := s3.Get("post-crash"); !ok {
			t.Fatalf("offset %d: record written after recovery lost", cut)
		}
		s3.Close()
	}
}

// TestAbandonDropsUnsynced verifies the crash-exit used by chaos tests: an
// Abandon after un-synced writes must lose exactly those writes, while
// everything synced before it survives reopen.
func TestAbandonDropsUnsynced(t *testing.T) {
	s, path := openTemp(t)
	if err := s.Put("durable", []byte("yes")); err != nil {
		t.Fatal(err)
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("buffered", []byte("no")); err != nil {
		t.Fatal(err)
	}
	if err := s.Abandon(); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("x", nil); err != ErrClosed {
		t.Fatalf("put after abandon: %v, want ErrClosed", err)
	}
	s2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if _, ok := s2.Get("durable"); !ok {
		t.Error("synced record lost by Abandon")
	}
	if _, ok := s2.Get("buffered"); ok {
		t.Error("un-synced record survived Abandon")
	}
}
