// Package simrand provides a deterministic, splittable random number source
// used by every simulation substrate in this repository.
//
// All stochastic behaviour in the system — synthetic video generation, CNN
// quality noise, feature perturbation — draws from a Source derived from a
// hierarchy of string and integer labels. Deriving a child source with the
// same labels always yields the same stream, so experiments are
// bit-reproducible regardless of evaluation order or parallelism.
//
// The generator is SplitMix64 for label hashing combined with a xoshiro256**
// core for the output stream. Both are well-studied, fast, and require no
// allocation per draw.
package simrand

import (
	"math"
	"math/bits"
)

// Source is a deterministic pseudo-random source. It is NOT safe for
// concurrent use; derive independent child sources for concurrent consumers
// instead of sharing one.
type Source struct {
	s [4]uint64
	// seed is the 64-bit value this source was constructed from. Derivation
	// is keyed off the seed, not the mutable stream state, so deriving a
	// child is independent of how many values the parent has produced.
	seed uint64
}

// splitmix64 advances a SplitMix64 state and returns the next output. It is
// used for seeding and label mixing only.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a Source seeded from the given 64-bit seed. Two sources built
// from the same seed produce identical streams.
func New(seed uint64) *Source {
	st := seed
	s := Source{seed: seed}
	for i := range s.s {
		s.s[i] = splitmix64(&st)
	}
	// xoshiro256** must not be seeded with all zeros; splitmix64 of any seed
	// cannot produce four zero outputs, but guard anyway.
	if s.s[0]|s.s[1]|s.s[2]|s.s[3] == 0 {
		s.s[0] = 0x9e3779b97f4a7c15
	}
	return &s
}

// hashLabel mixes a string label into a running hash (FNV-1a style over a
// 64-bit state followed by a SplitMix64 finalizer).
func hashLabel(h uint64, label string) uint64 {
	const prime = 0x100000001b3
	for i := 0; i < len(label); i++ {
		h ^= uint64(label[i])
		h *= prime
	}
	st := h
	return splitmix64(&st)
}

// Derive returns a child source whose stream is a pure function of the parent
// seed material and the given labels. The parent's own stream position is NOT
// consumed: deriving is side-effect free, so the derivation tree is stable no
// matter how many values the parent has produced.
func (s *Source) Derive(labels ...string) *Source {
	st := s.seed
	h := splitmix64(&st)
	for _, l := range labels {
		h = hashLabel(h, l)
	}
	return New(h)
}

// DeriveN returns a child source keyed by labels plus an integer index, for
// per-frame or per-object derivation without string formatting.
func (s *Source) DeriveN(n int64, labels ...string) *Source {
	st := s.seed
	h := splitmix64(&st)
	for _, l := range labels {
		h = hashLabel(h, l)
	}
	st = h ^ uint64(n)*0xd1342543de82ef95
	return New(splitmix64(&st))
}

// Uint64 returns the next 64 uniformly distributed bits (xoshiro256**).
func (s *Source) Uint64() uint64 {
	result := bits.RotateLeft64(s.s[1]*5, 7) * 9
	t := s.s[1] << 17
	s.s[2] ^= s.s[0]
	s.s[3] ^= s.s[1]
	s.s[1] ^= s.s[2]
	s.s[0] ^= s.s[3]
	s.s[2] ^= t
	s.s[3] = bits.RotateLeft64(s.s[3], 45)
	return result
}

// Float64 returns a uniform float64 in [0, 1).
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("simrand: Intn called with n <= 0")
	}
	// Lemire's nearly-divisionless bounded generation.
	v := s.Uint64()
	hi, lo := bits.Mul64(v, uint64(n))
	if lo < uint64(n) {
		thresh := uint64(-n) % uint64(n)
		for lo < thresh {
			v = s.Uint64()
			hi, lo = bits.Mul64(v, uint64(n))
		}
	}
	return int(hi)
}

// Int63 returns a non-negative 63-bit integer.
func (s *Source) Int63() int64 {
	return int64(s.Uint64() >> 1)
}

// NormFloat64 returns a standard normal variate (Box–Muller; one value per
// call, the pair's second value is discarded to keep the stream position a
// simple function of call count).
func (s *Source) NormFloat64() float64 {
	for {
		u1 := s.Float64()
		u2 := s.Float64()
		if u1 <= 1e-300 {
			continue
		}
		return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	}
}

// ExpFloat64 returns an exponential variate with rate 1 (mean 1).
func (s *Source) ExpFloat64() float64 {
	for {
		u := s.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// Perm returns a pseudo-random permutation of [0, n).
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle pseudo-randomizes the order of n elements using the provided swap
// function (Fisher–Yates).
func (s *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		swap(i, j)
	}
}

// Bernoulli returns true with probability p.
func (s *Source) Bernoulli(p float64) bool {
	return s.Float64() < p
}

// Poisson returns a Poisson variate with the given mean using Knuth's
// algorithm for small means and a normal approximation for large means.
func (s *Source) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 60 {
		// Normal approximation with continuity correction; adequate for the
		// arrival-rate modelling this package serves.
		v := mean + math.Sqrt(mean)*s.NormFloat64()
		if v < 0 {
			return 0
		}
		return int(v + 0.5)
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= s.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Geometric returns the number of failures before the first success in
// Bernoulli(p) trials; p must be in (0, 1].
func (s *Source) Geometric(p float64) int {
	if p >= 1 {
		return 0
	}
	if p <= 0 {
		panic("simrand: Geometric called with p <= 0")
	}
	// Inverse-transform sampling.
	u := s.Float64()
	for u == 0 {
		u = s.Float64()
	}
	return int(math.Floor(math.Log(u) / math.Log(1-p)))
}

// Zipf samples from a Zipf distribution over {0, ..., n-1} with exponent
// alpha > 0 using the precomputed cumulative weights in z.
type Zipf struct {
	cum []float64
}

// NewZipf prepares a Zipf sampler over n ranks with the given exponent.
// Rank 0 is the most probable.
func NewZipf(n int, alpha float64) *Zipf {
	if n <= 0 {
		panic("simrand: NewZipf called with n <= 0")
	}
	cum := make([]float64, n)
	total := 0.0
	for i := 0; i < n; i++ {
		total += 1 / math.Pow(float64(i+1), alpha)
		cum[i] = total
	}
	for i := range cum {
		cum[i] /= total
	}
	return &Zipf{cum: cum}
}

// N returns the number of ranks the sampler covers.
func (z *Zipf) N() int { return len(z.cum) }

// Prob returns the probability mass of rank i.
func (z *Zipf) Prob(i int) float64 {
	if i < 0 || i >= len(z.cum) {
		return 0
	}
	if i == 0 {
		return z.cum[0]
	}
	return z.cum[i] - z.cum[i-1]
}

// Sample draws a rank using the supplied source.
func (z *Zipf) Sample(s *Source) int {
	u := s.Float64()
	// Binary search over the cumulative distribution.
	lo, hi := 0, len(z.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cum[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
