package simrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at draw %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical draws out of 100", same)
	}
}

func TestDeriveIsPositionIndependent(t *testing.T) {
	parent1 := New(7)
	parent2 := New(7)
	// Consume from parent2 before deriving; derivation must not depend on
	// the parent's stream position.
	for i := 0; i < 57; i++ {
		parent2.Uint64()
	}
	c1 := parent1.Derive("video", "stream-3")
	c2 := parent2.Derive("video", "stream-3")
	for i := 0; i < 100; i++ {
		if c1.Uint64() != c2.Uint64() {
			t.Fatalf("derived streams diverged at draw %d", i)
		}
	}
}

func TestDeriveLabelsMatter(t *testing.T) {
	p := New(7)
	a := p.Derive("a")
	b := p.Derive("b")
	ab := p.Derive("a", "b")
	if a.Uint64() == b.Uint64() {
		t.Error("Derive(a) and Derive(b) coincide on first draw")
	}
	if a.Uint64() == ab.Uint64() {
		t.Error("Derive(a) and Derive(a,b) coincide")
	}
}

func TestDeriveNDistinct(t *testing.T) {
	p := New(9)
	seen := make(map[uint64]bool)
	for i := int64(0); i < 2000; i++ {
		v := p.DeriveN(i, "frame").Uint64()
		if seen[v] {
			t.Fatalf("DeriveN collision at index %d", i)
		}
		seen[v] = true
	}
}

func TestFloat64Range(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		s := New(seed)
		for i := 0; i < 100; i++ {
			f := s.Float64()
			if f < 0 || f >= 1 {
				return false
			}
		}
		return true
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestIntnRange(t *testing.T) {
	err := quick.Check(func(seed uint64, n uint16) bool {
		bound := int(n%1000) + 1
		s := New(seed)
		for i := 0; i < 50; i++ {
			v := s.Intn(bound)
			if v < 0 || v >= bound {
				return false
			}
		}
		return true
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestNormFloat64Moments(t *testing.T) {
	s := New(11)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := s.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("normal variance = %v, want ~1", variance)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	s := New(13)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += s.ExpFloat64()
	}
	if mean := sum / n; math.Abs(mean-1) > 0.02 {
		t.Errorf("exponential mean = %v, want ~1", mean)
	}
}

func TestPoissonMean(t *testing.T) {
	for _, mean := range []float64{0.3, 2, 8, 40, 120} {
		s := New(17)
		const n = 50000
		var sum float64
		for i := 0; i < n; i++ {
			sum += float64(s.Poisson(mean))
		}
		got := sum / n
		if math.Abs(got-mean) > 0.05*mean+0.05 {
			t.Errorf("Poisson(%v) sample mean = %v", mean, got)
		}
	}
}

func TestPoissonNonNegative(t *testing.T) {
	s := New(19)
	for i := 0; i < 10000; i++ {
		if s.Poisson(100) < 0 {
			t.Fatal("negative Poisson draw")
		}
	}
}

func TestGeometricMean(t *testing.T) {
	s := New(23)
	p := 0.2
	const n = 100000
	var sum float64
	for i := 0; i < n; i++ {
		sum += float64(s.Geometric(p))
	}
	want := (1 - p) / p // mean failures before success
	if got := sum / n; math.Abs(got-want) > 0.1 {
		t.Errorf("Geometric(%v) mean = %v, want %v", p, got, want)
	}
}

func TestGeometricPIsOne(t *testing.T) {
	s := New(29)
	for i := 0; i < 100; i++ {
		if s.Geometric(1) != 0 {
			t.Fatal("Geometric(1) must be 0")
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		s := New(seed)
		n := 1 + int(seed%64)
		p := s.Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestBernoulliRate(t *testing.T) {
	s := New(31)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if s.Bernoulli(0.3) {
			hits++
		}
	}
	rate := float64(hits) / n
	if math.Abs(rate-0.3) > 0.01 {
		t.Errorf("Bernoulli(0.3) rate = %v", rate)
	}
}

func TestZipfProbabilitiesSumToOne(t *testing.T) {
	z := NewZipf(100, 1.1)
	var sum float64
	for i := 0; i < z.N(); i++ {
		sum += z.Prob(i)
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("Zipf probabilities sum to %v", sum)
	}
}

func TestZipfSkew(t *testing.T) {
	z := NewZipf(1000, 1.2)
	s := New(37)
	counts := make([]int, 1000)
	const n = 200000
	for i := 0; i < n; i++ {
		counts[z.Sample(s)]++
	}
	if counts[0] <= counts[10] {
		t.Error("rank 0 should dominate rank 10")
	}
	// Head coverage: the top 5% of ranks should cover the large majority of
	// the mass for this exponent.
	var head int
	for i := 0; i < 50; i++ {
		head += counts[i]
	}
	if frac := float64(head) / n; frac < 0.5 {
		t.Errorf("top-50 ranks cover only %.2f of mass", frac)
	}
}

func TestZipfSampleMatchesProb(t *testing.T) {
	z := NewZipf(20, 1.0)
	s := New(41)
	counts := make([]int, 20)
	const n = 400000
	for i := 0; i < n; i++ {
		counts[z.Sample(s)]++
	}
	for i := 0; i < 20; i++ {
		got := float64(counts[i]) / n
		want := z.Prob(i)
		if math.Abs(got-want) > 0.01 {
			t.Errorf("rank %d: sample freq %v, prob %v", i, got, want)
		}
	}
}

func TestShufflePreservesElements(t *testing.T) {
	s := New(43)
	xs := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, v := range xs {
		sum += v
	}
	s.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	got := 0
	for _, v := range xs {
		got += v
	}
	if got != sum {
		t.Errorf("shuffle changed multiset: sum %d != %d", got, sum)
	}
}

func BenchmarkUint64(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		s.Uint64()
	}
}

func BenchmarkNormFloat64(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		s.NormFloat64()
	}
}

func BenchmarkDerive(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		s.DeriveN(int64(i), "frame")
	}
}
