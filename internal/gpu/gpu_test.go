package gpu

import (
	"math"
	"sync"
	"testing"
	"testing/quick"
)

func TestMeterAccumulates(t *testing.T) {
	var m Meter
	m.AddIngest(2)
	m.AddIngest(3)
	m.AddQuery(13)
	m.AddTraining(100)
	s := m.Snapshot()
	if s.IngestMS != 5 || s.IngestOps != 2 {
		t.Errorf("ingest = %v/%v", s.IngestMS, s.IngestOps)
	}
	if s.QueryMS != 13 || s.QueryOps != 1 {
		t.Errorf("query = %v/%v", s.QueryMS, s.QueryOps)
	}
	if s.TrainMS != 100 {
		t.Errorf("train = %v", s.TrainMS)
	}
	m.Reset()
	if s := m.Snapshot(); s.IngestMS != 0 || s.QueryOps != 0 {
		t.Error("reset did not zero counters")
	}
}

func TestMeterConcurrent(t *testing.T) {
	var m Meter
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				m.AddIngest(1)
				m.AddQuery(1)
			}
		}()
	}
	wg.Wait()
	s := m.Snapshot()
	if s.IngestOps != 8000 || s.QueryOps != 8000 {
		t.Errorf("ops = %d/%d, want 8000/8000", s.IngestOps, s.QueryOps)
	}
	if s.IngestMS != 8000 || s.QueryMS != 8000 {
		t.Errorf("ms = %v/%v", s.IngestMS, s.QueryMS)
	}
}

func TestPoolValidation(t *testing.T) {
	if _, err := NewPool(0); err == nil {
		t.Error("zero-size pool accepted")
	}
	if _, err := NewPool(-3); err == nil {
		t.Error("negative pool accepted")
	}
}

func TestPoolUniformTasks(t *testing.T) {
	p, err := NewPool(4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 400; i++ {
		p.Submit(1)
	}
	if got := p.MakespanMS(); got != 100 {
		t.Errorf("makespan = %v, want 100 (400 unit tasks over 4 GPUs)", got)
	}
	if got := p.TotalMS(); got != 400 {
		t.Errorf("total = %v, want 400", got)
	}
}

func TestPoolLeastLoaded(t *testing.T) {
	p, err := NewPool(2)
	if err != nil {
		t.Fatal(err)
	}
	p.Submit(10) // GPU A: 10
	p.Submit(1)  // GPU B: 1
	p.Submit(1)  // GPU B: 2
	p.Submit(1)  // GPU B: 3
	if got := p.MakespanMS(); got != 10 {
		t.Errorf("makespan = %v, want 10", got)
	}
	if got := p.TotalMS(); got != 13 {
		t.Errorf("total = %v, want 13", got)
	}
}

func TestPoolSingleGPU(t *testing.T) {
	p, _ := NewPool(1)
	var last float64
	for i := 1; i <= 10; i++ {
		last = p.Submit(2)
	}
	if last != 20 || p.MakespanMS() != 20 {
		t.Errorf("serial execution: last=%v makespan=%v, want 20", last, p.MakespanMS())
	}
}

func TestPoolReset(t *testing.T) {
	p, _ := NewPool(3)
	p.Submit(5)
	p.Reset()
	if p.MakespanMS() != 0 || p.TotalMS() != 0 {
		t.Error("reset did not clear load")
	}
	p.Submit(2)
	if p.MakespanMS() != 2 {
		t.Error("pool unusable after reset")
	}
}

func TestPoolMakespanBounds(t *testing.T) {
	// Property: for any workload, total/N <= makespan <= total/N + maxTask.
	err := quick.Check(func(seed uint16, nRaw uint8) bool {
		n := 1 + int(nRaw)%8
		p, err := NewPool(n)
		if err != nil {
			return false
		}
		maxTask := 0.0
		total := 0.0
		x := uint32(seed) + 1
		for i := 0; i < 100; i++ {
			x = x*1664525 + 1013904223
			cost := float64(x%1000)/100 + 0.01
			p.Submit(cost)
			total += cost
			if cost > maxTask {
				maxTask = cost
			}
		}
		ms := p.MakespanMS()
		lower := total / float64(n)
		return ms >= lower-1e-9 && ms <= lower+maxTask+1e-9 &&
			math.Abs(p.TotalMS()-total) < 1e-6
	}, &quick.Config{MaxCount: 100})
	if err != nil {
		t.Error(err)
	}
}

func TestMonthlyCost(t *testing.T) {
	// A full GPU kept busy (duty cycle 1) costs the paper's $250/month
	// headline; Focus's ~1/58 duty cycle lands near $4.
	if got := MonthlyCostDollars(1); got != 250 {
		t.Errorf("full duty = $%v", got)
	}
	got := MonthlyCostDollars(1.0 / 58)
	if got < 3.5 || got > 5 {
		t.Errorf("Focus-like duty cycle = $%.2f, want ≈ $4.3", got)
	}
}

func BenchmarkPoolSubmit(b *testing.B) {
	p, _ := NewPool(10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Submit(1)
	}
}
