package gpu

import (
	"testing"
	"time"
)

func TestPaceDisabledByDefault(t *testing.T) {
	var m Meter
	start := time.Now()
	p := m.NewPacer()
	p.Add(1e6) // a thousand simulated seconds
	p.Flush()
	if elapsed := time.Since(start); elapsed > 100*time.Millisecond {
		t.Fatalf("unpaced meter stalled for %v", elapsed)
	}
}

func TestPacerSleepsProportionally(t *testing.T) {
	var m Meter
	m.SetPace(100 * time.Microsecond) // 100µs real per simulated ms
	p := m.NewPacer()
	start := time.Now()
	for i := 0; i < 100; i++ {
		p.Add(1) // 100 simulated ms in total → ≥ 10ms real
	}
	p.Flush()
	elapsed := time.Since(start)
	if elapsed < 10*time.Millisecond {
		t.Fatalf("paced 100 simulated ms in %v, want >= 10ms", elapsed)
	}
	// No upper-bound assertion: sleeps only overshoot, and loaded CI
	// machines overshoot arbitrarily.
}

func TestPacerFlushClearsDebt(t *testing.T) {
	var m Meter
	m.SetPace(time.Millisecond)
	p := m.NewPacer()
	p.Add(1)
	p.Flush()
	start := time.Now()
	p.Flush() // nothing left to sleep
	if elapsed := time.Since(start); elapsed > 50*time.Millisecond {
		t.Fatalf("second flush slept %v", elapsed)
	}
}
