// Package gpu models the GPU resources Focus accounts for.
//
// The paper's two performance metrics are GPU-time based (§6.1): ingest
// cost is the GPU time spent indexing a video, and query latency is the GPU
// time of query-time classification divided across the provisioned GPUs
// ("with a 10-GPU cluster, the query latency on a 24-hour video goes down
// from one hour to less than two minutes"). Both metrics deliberately
// exclude CPU work (decode, background subtraction, clustering, index I/O)
// because the GPU is the bottleneck resource.
//
// This package provides (a) a Meter that accumulates simulated GPU
// milliseconds for ingest, query and (re)training work, and (b) a Pool that
// schedules query-time inferences across N simulated GPUs and reports the
// resulting makespan, i.e. the simulated query latency.
package gpu

import (
	"container/heap"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Meter accumulates simulated GPU time by activity. It is safe for
// concurrent use.
type Meter struct {
	mu        sync.Mutex
	ingestMS  float64
	queryMS   float64
	trainMS   float64
	ingestOps int64
	queryOps  int64
	// paceNSPerMS, when non-zero, is how many real nanoseconds each
	// simulated GPU millisecond costs through PaceMS.
	paceNSPerMS atomic.Int64
}

// SetPace makes PaceMS cost the given real duration per simulated GPU
// millisecond. Zero (the default) disables pacing entirely.
//
// Pacing turns the simulated GPU accounting into real elapsed time at a
// configurable scale, so wall-clock benchmarks observe what the paper's
// deployment observes: an ingest worker blocks on its GPU for the duration
// of each inference, and concurrent per-stream workers (or the query-time
// GPU pool) overlap those stalls. Correctness paths never enable it.
func (m *Meter) SetPace(perSimulatedMS time.Duration) {
	m.paceNSPerMS.Store(int64(perSimulatedMS))
}

// paceQuantum is the real sleep size a Pacer batches stalls into. Large
// against Linux timer overshoot (tens of microseconds), small against any
// measurement window, so paced elapsed time tracks the simulated total
// within a few percent whether one worker runs or sixteen.
const paceQuantum = 2 * time.Millisecond

// Pacer accumulates a worker's simulated GPU debt and sleeps it off in
// fixed real-time quanta, on the goroutine doing the simulated GPU work
// (never call it holding locks), so concurrent workers overlap their
// stalls. Per-inference sleeps of a few microseconds would be dominated
// by timer overshoot — and the overshoot shrinks when other goroutines
// keep the scheduler busy, which would fake superlinear scaling in
// wall-clock benchmarks. Batching makes the stall proportional to the
// simulated cost on every path. One Pacer per worker goroutine; not safe
// for concurrent use.
type Pacer struct {
	meter  *Meter
	debtNS float64
}

// NewPacer returns a pacer charging this meter's pace.
func (m *Meter) NewPacer() *Pacer { return &Pacer{meter: m} }

// Add charges costMS simulated milliseconds, sleeping whenever the
// accumulated debt reaches the quantum.
func (p *Pacer) Add(costMS float64) {
	ns := p.meter.paceNSPerMS.Load()
	if ns <= 0 || costMS <= 0 {
		return
	}
	p.debtNS += costMS * float64(ns)
	if d := time.Duration(p.debtNS); d >= paceQuantum {
		time.Sleep(d)
		p.debtNS = 0
	}
}

// Flush sleeps off any remaining debt. Call once when the worker finishes.
func (p *Pacer) Flush() {
	if d := time.Duration(p.debtNS); d > 0 {
		time.Sleep(d)
	}
	p.debtNS = 0
}

// AddIngest records one ingest-time inference of the given cost.
func (m *Meter) AddIngest(costMS float64) {
	m.mu.Lock()
	m.ingestMS += costMS
	m.ingestOps++
	m.mu.Unlock()
}

// AddQuery records one query-time inference of the given cost.
func (m *Meter) AddQuery(costMS float64) {
	m.mu.Lock()
	m.queryMS += costMS
	m.queryOps++
	m.mu.Unlock()
}

// AddTraining records GPU time spent retraining specialized models. The
// paper amortizes this ("retraining is relatively infrequent and done once
// every few days") and reports it separately from ingest cost.
func (m *Meter) AddTraining(costMS float64) {
	m.mu.Lock()
	m.trainMS += costMS
	m.mu.Unlock()
}

// Snapshot is a point-in-time copy of a Meter's counters.
type Snapshot struct {
	IngestMS  float64
	QueryMS   float64
	TrainMS   float64
	IngestOps int64
	QueryOps  int64
}

// Snapshot returns the current counters.
func (m *Meter) Snapshot() Snapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	return Snapshot{
		IngestMS:  m.ingestMS,
		QueryMS:   m.queryMS,
		TrainMS:   m.trainMS,
		IngestOps: m.ingestOps,
		QueryOps:  m.queryOps,
	}
}

// Reset zeroes all counters.
func (m *Meter) Reset() {
	m.mu.Lock()
	m.ingestMS, m.queryMS, m.trainMS = 0, 0, 0
	m.ingestOps, m.queryOps = 0, 0
	m.mu.Unlock()
}

// Pool schedules inference tasks over a set of identical simulated GPUs
// using an online least-loaded assignment, and reports the makespan: the
// simulated wall-clock time until the last GPU finishes. For uniform task
// costs the makespan approaches total/N, matching the paper's
// parallelize-across-GPUs query model.
type Pool struct {
	busyMS []float64 // per-GPU accumulated busy time
	h      gpuHeap
}

// NewPool creates a pool of n simulated GPUs. n must be positive.
func NewPool(n int) (*Pool, error) {
	if n <= 0 {
		return nil, fmt.Errorf("gpu: pool size must be positive, got %d", n)
	}
	p := &Pool{busyMS: make([]float64, n)}
	p.h = make(gpuHeap, n)
	for i := range p.h {
		p.h[i] = gpuSlot{gpu: i}
	}
	heap.Init(&p.h)
	return p, nil
}

// Size returns the number of GPUs in the pool.
func (p *Pool) Size() int { return len(p.busyMS) }

// Submit assigns a task of the given cost to the least-loaded GPU and
// returns the simulated completion time of that task.
func (p *Pool) Submit(costMS float64) float64 {
	slot := &p.h[0]
	slot.busyMS += costMS
	p.busyMS[slot.gpu] = slot.busyMS
	done := slot.busyMS
	heap.Fix(&p.h, 0)
	return done
}

// MakespanMS returns the simulated time at which all submitted work
// completes — the query latency for the batch submitted so far.
func (p *Pool) MakespanMS() float64 {
	var max float64
	for _, b := range p.busyMS {
		if b > max {
			max = b
		}
	}
	return max
}

// TotalMS returns the total GPU time submitted across all GPUs.
func (p *Pool) TotalMS() float64 {
	var sum float64
	for _, b := range p.busyMS {
		sum += b
	}
	return sum
}

// Reset clears all per-GPU load.
func (p *Pool) Reset() {
	for i := range p.busyMS {
		p.busyMS[i] = 0
	}
	for i := range p.h {
		p.h[i].busyMS = 0
	}
	heap.Init(&p.h)
}

type gpuSlot struct {
	gpu    int
	busyMS float64
}

type gpuHeap []gpuSlot

func (h gpuHeap) Len() int            { return len(h) }
func (h gpuHeap) Less(i, j int) bool  { return h[i].busyMS < h[j].busyMS }
func (h gpuHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *gpuHeap) Push(x interface{}) { *h = append(*h, x.(gpuSlot)) }
func (h *gpuHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// DollarsPerGPUMonth is the approximate cloud price of one GPU-month the
// paper uses for its cost headlines ($250/month/stream for Ingest-all with
// ResNet152, §1). One stream ingested continuously with the GT-CNN costs
// one GPU's full-time work times the model's duty cycle.
const DollarsPerGPUMonth = 250.0

// MonthlyCostDollars converts a GPU duty cycle (fraction of one GPU kept
// busy, e.g. ingest GPU-ms per ms of video) into a monthly dollar figure
// comparable to the paper's $250 → $4 headline.
func MonthlyCostDollars(dutyCycle float64) float64 {
	return DollarsPerGPUMonth * dutyCycle
}
