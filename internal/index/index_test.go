package index

import (
	"testing"

	"focus/internal/cluster"
	"focus/internal/kvstore"
	"focus/internal/video"
	"focus/internal/vision"
)

func testMeta() IngestMeta {
	return IngestMeta{
		Stream:      "teststream",
		ModelName:   "resnet18",
		K:           4,
		DurationSec: 60,
		FPS:         30,
	}
}

// buildCluster makes a spill-ready cluster through the clustering engine so
// the index test exercises the real handoff.
func buildCluster(t *testing.T, id int, classes []vision.ClassID, confs []float32, members int) *cluster.Cluster {
	t.Helper()
	var out *cluster.Cluster
	e, err := cluster.NewEngine(cluster.Config{Threshold: 100, MaxActive: 10},
		func(c *cluster.Cluster) { out = c })
	if err != nil {
		t.Fatal(err)
	}
	ranked := make([]vision.Prediction, len(classes))
	for i := range classes {
		ranked[i] = vision.Prediction{Class: classes[i], Confidence: confs[i]}
	}
	f := make(vision.FeatureVec, vision.FeatureDim)
	for i := 0; i < members; i++ {
		m := cluster.Member{
			Object:    video.ObjectID(id*100 + i),
			Frame:     video.FrameID(id*1000 + i*10),
			TimeSec:   float64(id*10 + i),
			TrueClass: classes[0],
			Seed:      int64(id*100 + i),
		}
		e.Add(f, m, ranked)
	}
	e.Flush()
	if out == nil {
		t.Fatal("no cluster spilled")
	}
	return out
}

func TestAddAndLookup(t *testing.T) {
	ix := New(testMeta())
	c1 := buildCluster(t, 1, []vision.ClassID{5, 9, 2}, []float32{0.8, 0.15, 0.05}, 3)
	c2 := buildCluster(t, 2, []vision.ClassID{9, 5}, []float32{0.9, 0.1}, 2)
	ix.AddCluster(c1)
	ix.AddCluster(c2)

	if ix.NumClusters() != 2 {
		t.Fatalf("clusters = %d", ix.NumClusters())
	}
	// Index-assigned IDs: c1 → 0, c2 → 1 in insertion order.
	// Class 5: rank 1 in c1, rank 2 in c2.
	recs := ix.Lookup(5, 0)
	if len(recs) != 2 {
		t.Fatalf("lookup(5) = %d records", len(recs))
	}
	if recs[0].ID != 0 {
		t.Errorf("rank-1 cluster should come first")
	}
	// Kx = 1 cuts to rank-1 postings only (§5 dynamic Kx).
	recs = ix.Lookup(5, 1)
	if len(recs) != 1 || recs[0].ID != 0 {
		t.Errorf("lookup(5, kx=1) = %v", recs)
	}
	recs = ix.Lookup(9, 1)
	if len(recs) != 1 || recs[0].ID != 1 {
		t.Errorf("lookup(9, kx=1) wrong")
	}
	if got := ix.Lookup(777, 0); len(got) != 0 {
		t.Errorf("lookup(absent) = %v", got)
	}
}

func TestLookupKxDefaultsToK(t *testing.T) {
	ix := New(testMeta())
	ix.AddCluster(buildCluster(t, 1, []vision.ClassID{1, 2, 3, 4, 5, 6}, []float32{6, 5, 4, 3, 2, 1}, 1))
	// K = 4: classes 5 and 6 fall outside the indexed top-K.
	if got := ix.Lookup(5, 0); len(got) != 0 {
		t.Errorf("class at rank 5 indexed despite K=4")
	}
	if got := ix.Lookup(4, 0); len(got) != 1 {
		t.Errorf("class at rank 4 not indexed")
	}
	// kx beyond K clamps to K.
	if got := ix.Lookup(5, 99); len(got) != 0 {
		t.Errorf("kx beyond K not clamped")
	}
}

func TestHasClassAndClasses(t *testing.T) {
	ix := New(testMeta())
	ix.AddCluster(buildCluster(t, 1, []vision.ClassID{7, 3}, []float32{0.9, 0.1}, 1))
	if !ix.HasClass(7) || !ix.HasClass(3) || ix.HasClass(8) {
		t.Error("HasClass wrong")
	}
	cs := ix.Classes()
	if len(cs) != 2 || cs[0] != 3 || cs[1] != 7 {
		t.Errorf("Classes = %v", cs)
	}
}

func TestRecordFields(t *testing.T) {
	ix := New(testMeta())
	c := buildCluster(t, 3, []vision.ClassID{1}, []float32{1}, 5)
	ix.AddCluster(c)
	rec := ix.Lookup(1, 0)[0]
	if rec.Size() != 5 {
		t.Errorf("size = %d", rec.Size())
	}
	if rec.MinTime != 30 || rec.MaxTime != 34 {
		t.Errorf("time range = [%v, %v]", rec.MinTime, rec.MaxTime)
	}
	if rec.Rep.Seed == 0 && rec.Rep.Object == 0 {
		t.Error("representative looks zero-valued")
	}
	if got := ix.Cluster(rec.ID); got != rec {
		t.Error("Cluster(id) lookup failed")
	}
	if ix.Cluster(999) != nil {
		t.Error("absent cluster id returned record")
	}
}

func TestIndexAssignsUniqueIDs(t *testing.T) {
	// Clusters from independent engines reuse engine-local IDs; the index
	// must assign its own.
	ix := New(testMeta())
	c1 := buildCluster(t, 1, []vision.ClassID{1}, []float32{1}, 1)
	c2 := buildCluster(t, 2, []vision.ClassID{1}, []float32{1}, 1)
	if c1.ID != c2.ID {
		t.Skip("engines no longer reuse IDs; test premise gone")
	}
	ix.AddCluster(c1)
	ix.AddCluster(c2)
	if ix.NumClusters() != 2 {
		t.Errorf("clusters = %d, want 2 despite engine ID collision", ix.NumClusters())
	}
}

func TestDuplicateRecordPanics(t *testing.T) {
	ix := New(testMeta())
	rec := &ClusterRecord{ID: 7}
	ix.mu.Lock()
	ix.addRecordLocked(rec)
	ix.mu.Unlock()
	defer func() {
		if recover() == nil {
			t.Error("duplicate record ID did not panic")
		}
	}()
	ix.mu.Lock()
	defer ix.mu.Unlock()
	ix.addRecordLocked(rec)
}

func TestStats(t *testing.T) {
	ix := New(testMeta())
	ix.AddCluster(buildCluster(t, 1, []vision.ClassID{1, 2}, []float32{2, 1}, 4))
	ix.AddCluster(buildCluster(t, 2, []vision.ClassID{1}, []float32{1}, 2))
	st := ix.Stats()
	if st.Clusters != 2 || st.Members != 6 || st.LargestCluster != 4 {
		t.Errorf("stats = %+v", st)
	}
	if st.MeanSize != 3 {
		t.Errorf("mean size = %v", st.MeanSize)
	}
	if st.Postings != 3 {
		t.Errorf("postings = %d", st.Postings)
	}
}

func TestSetTotalSightings(t *testing.T) {
	ix := New(testMeta())
	ix.SetTotalSightings(12345)
	if ix.Meta().TotalSightings != 12345 {
		t.Error("SetTotalSightings not reflected")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	store, err := kvstore.Open("")
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()

	ix := New(testMeta())
	ix.AddCluster(buildCluster(t, 1, []vision.ClassID{5, 9}, []float32{0.8, 0.2}, 3))
	ix.AddCluster(buildCluster(t, 2, []vision.ClassID{9}, []float32{1}, 2))
	ix.SetTotalSightings(5)
	if err := ix.Save(store); err != nil {
		t.Fatal(err)
	}

	loaded, err := Load(store, "teststream")
	if err != nil {
		t.Fatal(err)
	}
	if lm, im := loaded.Meta(), ix.Meta(); lm.Stream != im.Stream || lm.ModelName != im.ModelName || lm.K != im.K {
		t.Errorf("meta mismatch: %+v vs %+v", lm, im)
	}
	if loaded.NumClusters() != 2 {
		t.Fatalf("loaded clusters = %d", loaded.NumClusters())
	}
	orig := ix.Lookup(5, 0)
	got := loaded.Lookup(5, 0)
	if len(got) != len(orig) {
		t.Fatalf("lookup sizes differ: %d vs %d", len(got), len(orig))
	}
	for i := range got {
		if got[i].ID != orig[i].ID || got[i].Size() != orig[i].Size() {
			t.Errorf("record %d differs", i)
		}
		if got[i].Rep != orig[i].Rep {
			t.Errorf("representative differs")
		}
	}
	if loaded.Meta().TotalSightings != 5 {
		t.Errorf("TotalSightings = %d", loaded.Meta().TotalSightings)
	}
}

func TestSaveReplacesStale(t *testing.T) {
	store, err := kvstore.Open("")
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()

	ix1 := New(testMeta())
	ix1.AddCluster(buildCluster(t, 1, []vision.ClassID{5}, []float32{1}, 1))
	ix1.AddCluster(buildCluster(t, 2, []vision.ClassID{5}, []float32{1}, 1))
	if err := ix1.Save(store); err != nil {
		t.Fatal(err)
	}

	ix2 := New(testMeta())
	ix2.AddCluster(buildCluster(t, 7, []vision.ClassID{6}, []float32{1}, 1))
	if err := ix2.Save(store); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(store, "teststream")
	if err != nil {
		t.Fatal(err)
	}
	if loaded.NumClusters() != 1 {
		t.Errorf("stale clusters survived: %d", loaded.NumClusters())
	}
	if len(loaded.Lookup(5, 0)) != 0 {
		t.Error("stale postings survived")
	}
}

func TestLoadMissingStream(t *testing.T) {
	store, _ := kvstore.Open("")
	defer store.Close()
	if _, err := Load(store, "nope"); err == nil {
		t.Error("loading absent stream succeeded")
	}
}

func BenchmarkLookup(b *testing.B) {
	ix := New(IngestMeta{Stream: "s", K: 60})
	e, err := cluster.NewEngine(cluster.Config{Threshold: 0.01, MaxActive: 4096},
		ix.AddCluster)
	if err != nil {
		b.Fatal(err)
	}
	ranked := make([]vision.Prediction, 60)
	for i := range ranked {
		ranked[i] = vision.Prediction{Class: vision.ClassID(i), Confidence: float32(60 - i)}
	}
	f := make(vision.FeatureVec, vision.FeatureDim)
	for i := 0; i < 2000; i++ {
		f[0] = float32(i)
		e.Add(f, cluster.Member{Object: video.ObjectID(i)}, ranked)
	}
	e.Flush()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.Lookup(vision.ClassID(i%60), 30)
	}
}
