package index_test

import (
	"testing"

	"focus/internal/cluster"
	"focus/internal/index"
	"focus/internal/kvstore"
	"focus/internal/vision"
)

// addClusterAt spills one single-member cluster into ix with the ingest
// clock set to sealSec.
func addClusterAt(t *testing.T, ix *index.Index, sealSec float64, obj int64) {
	t.Helper()
	ix.SetIngestSec(sealSec)
	e, err := cluster.NewEngine(cluster.Config{Threshold: 1000, MaxActive: 4}, ix.AddCluster)
	if err != nil {
		t.Fatal(err)
	}
	f := make(vision.FeatureVec, vision.FeatureDim)
	e.Add(f, cluster.Member{Object: 1, Frame: 1, TimeSec: sealSec, Seed: obj},
		[]vision.Prediction{{Class: 0, Confidence: 1}})
	e.Flush()
}

func TestAddClusterStampsSealSec(t *testing.T) {
	ix := index.New(index.IngestMeta{Stream: "s", K: 1})
	addClusterAt(t, ix, 5, 1)
	addClusterAt(t, ix, 12.5, 2)
	recs := ix.Lookup(0, 0)
	if len(recs) != 2 {
		t.Fatalf("%d records, want 2", len(recs))
	}
	want := map[int64]float64{1: 5, 2: 12.5}
	for _, rec := range recs {
		if rec.SealSec != want[rec.Rep.Seed] {
			t.Errorf("cluster (seed %d) sealed at %v, want %v", rec.Rep.Seed, rec.SealSec, want[rec.Rep.Seed])
		}
	}
}

func TestSetIngestSecNeverRegresses(t *testing.T) {
	ix := index.New(index.IngestMeta{Stream: "s", K: 1})
	ix.SetIngestSec(10)
	ix.SetIngestSec(3) // a late SetIngestSec must not move the clock back
	addClusterAt(t, ix, 0, 7)
	recs := ix.Lookup(0, 0)
	if len(recs) != 1 || recs[0].SealSec != 10 {
		t.Fatalf("sealed at %v, want clock held at 10", recs[0].SealSec)
	}
}

func TestSealSecSurvivesSaveLoad(t *testing.T) {
	store, err := kvstore.Open("")
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	ix := index.New(index.IngestMeta{Stream: "s", K: 1})
	addClusterAt(t, ix, 33.25, 9)
	if err := ix.Save(store); err != nil {
		t.Fatal(err)
	}
	loaded, err := index.Load(store, "s")
	if err != nil {
		t.Fatal(err)
	}
	recs := loaded.Lookup(0, 0)
	if len(recs) != 1 || recs[0].SealSec != 33.25 {
		t.Fatalf("loaded SealSec %v, want 33.25", recs[0].SealSec)
	}
}
