package index

import (
	"testing"
	"testing/quick"

	"focus/internal/cluster"
	"focus/internal/kvstore"
	"focus/internal/simrand"
	"focus/internal/video"
	"focus/internal/vision"
)

// buildRandomIndex constructs an index with pseudo-random clusters driven
// by a seed, for property-based testing.
func buildRandomIndex(seed uint64, k int) *Index {
	src := simrand.New(seed)
	ix := New(IngestMeta{Stream: "prop", ModelName: "m", K: k, FPS: 30})
	nClusters := 3 + src.Intn(20)
	for c := 0; c < nClusters; c++ {
		var out *cluster.Cluster
		e, err := cluster.NewEngine(cluster.Config{Threshold: 1000, MaxActive: 4},
			func(cl *cluster.Cluster) { out = cl })
		if err != nil {
			panic(err)
		}
		nRanked := 1 + src.Intn(k)
		ranked := make([]vision.Prediction, 0, nRanked)
		seen := map[vision.ClassID]bool{}
		for len(ranked) < nRanked {
			cl := vision.ClassID(src.Intn(30))
			if seen[cl] {
				continue
			}
			seen[cl] = true
			ranked = append(ranked, vision.Prediction{
				Class: cl, Confidence: float32(1+src.Intn(100)) / 100,
			})
		}
		f := make(vision.FeatureVec, vision.FeatureDim)
		members := 1 + src.Intn(6)
		for m := 0; m < members; m++ {
			e.Add(f, cluster.Member{
				Object:  video.ObjectID(c*100 + m),
				Frame:   video.FrameID(src.Intn(1000)),
				TimeSec: src.Float64() * 100,
				Seed:    int64(c),
			}, ranked)
		}
		e.Flush()
		ix.AddCluster(out)
	}
	return ix
}

func TestQuickLookupMonotoneInKx(t *testing.T) {
	// Property: Lookup(c, kx) is a prefix-closed subset of Lookup(c, kx+1):
	// raising Kx never removes clusters and never reorders the shared ones.
	err := quick.Check(func(seed uint64, classRaw uint8) bool {
		ix := buildRandomIndex(seed, 8)
		c := vision.ClassID(classRaw % 30)
		var prev []*ClusterRecord
		for kx := 1; kx <= 8; kx++ {
			cur := ix.Lookup(c, kx)
			if len(cur) < len(prev) {
				return false
			}
			ids := map[ClusterID]bool{}
			for _, r := range cur {
				ids[r.ID] = true
			}
			for _, r := range prev {
				if !ids[r.ID] {
					return false
				}
			}
			prev = cur
		}
		return true
	}, &quick.Config{MaxCount: 60})
	if err != nil {
		t.Error(err)
	}
}

func TestQuickPostingsConsistent(t *testing.T) {
	// Property: every cluster is retrievable under each of its top-K
	// classes at exactly the rank the class holds, and under no other
	// class.
	err := quick.Check(func(seed uint64) bool {
		ix := buildRandomIndex(seed, 6)
		for _, c := range ix.Classes() {
			recs := ix.Lookup(c, 0)
			seen := map[ClusterID]bool{}
			for _, r := range recs {
				seen[r.ID] = true
				found := false
				for _, p := range r.TopK {
					if p.Class == c {
						found = true
					}
				}
				if !found {
					return false // retrieved under a class it does not index
				}
			}
		}
		return true
	}, &quick.Config{MaxCount: 40})
	if err != nil {
		t.Error(err)
	}
}

func TestQuickSaveLoadPreservesLookups(t *testing.T) {
	// Property: persisting and reloading an index preserves every lookup.
	err := quick.Check(func(seed uint64) bool {
		ix := buildRandomIndex(seed, 5)
		store, err := kvstore.Open("")
		if err != nil {
			return false
		}
		defer store.Close()
		if err := ix.Save(store); err != nil {
			return false
		}
		loaded, err := Load(store, "prop")
		if err != nil {
			return false
		}
		for _, c := range ix.Classes() {
			a := ix.Lookup(c, 0)
			b := loaded.Lookup(c, 0)
			if len(a) != len(b) {
				return false
			}
			for i := range a {
				if a[i].ID != b[i].ID || a[i].Size() != b[i].Size() {
					return false
				}
			}
		}
		return true
	}, &quick.Config{MaxCount: 25})
	if err != nil {
		t.Error(err)
	}
}
