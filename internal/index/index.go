// Package index implements Focus's top-K ingest index (§3, §4.1): the
// mapping from object classes to the clusters of objects that might belong
// to them, plus per-cluster records holding the centroid ("representative")
// object, the member sightings, and their frame IDs.
//
// Schema, following §3:
//
//	object class → ⟨cluster ID, rank of class in the cluster's top-K⟩
//	cluster ID   → [centroid object, ⟨objects⟩ in cluster, ⟨frame IDs⟩]
//
// Looking up class X with a cut-off Kx ≤ K returns exactly the clusters
// whose cluster-level top-Kx contains X, which is how the query engine
// implements the dynamically adjustable Kx of §5.
package index

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sort"
	"sync"

	"focus/internal/cluster"
	"focus/internal/kvstore"
	"focus/internal/vision"
)

// ClusterID identifies a cluster within one stream's index.
type ClusterID int64

// IngestMeta records how a stream was ingested: which cheap CNN built the
// index and with what K. The query engine needs it to route queries for
// unspecialized classes through the OTHER postings (§4.3).
type IngestMeta struct {
	// Stream is the stream name this index covers.
	Stream string
	// ModelName is the ingest CNN used.
	ModelName string
	// Specialized reports whether the ingest CNN was stream-specialized.
	Specialized bool
	// SpecialClasses is the specialized model's class list (nil when not
	// specialized).
	SpecialClasses []vision.ClassID
	// K is the number of top classes indexed per cluster.
	K int
	// DurationSec and FPS describe the ingested window.
	DurationSec float64
	FPS         float64
	// TotalSightings is the number of object sightings ingested, the
	// denominator for the Query-all baseline's work.
	TotalSightings int
}

// ClusterRecord is the persisted form of one spilled cluster.
type ClusterRecord struct {
	ID ClusterID
	// TopK is the cluster-level ranked class list (length ≤ K).
	TopK []vision.Prediction
	// Rep is the centroid object the GT-CNN classifies at query time.
	Rep cluster.Member
	// Members are all sightings in the cluster (frame IDs and timestamps
	// included), returned wholesale when the centroid matches the query.
	Members []cluster.Member
	// MinTime and MaxTime bound the members' timestamps for time-ranged
	// query pruning.
	MinTime, MaxTime float64
	// SealSec is the stream time at which this cluster was spilled into the
	// index: the ingest watermark it became visible at. A query executed "at
	// watermark W" considers exactly the clusters with SealSec <= W, which
	// makes its answer a pure function of (class, options, W) no matter how
	// far ingestion has advanced since — the consistency contract the serve
	// layer's result cache relies on. Spill times are per-frame-deterministic,
	// so two ingestions of the same stream stamp identical SealSecs
	// regardless of how the ingest window was chunked.
	SealSec float64
}

// Size returns the number of member sightings.
func (r *ClusterRecord) Size() int { return len(r.Members) }

// Posting is one entry of the class → clusters mapping.
type Posting struct {
	Cluster ClusterID
	// Rank is the 1-based position of the class within the cluster's
	// top-K; Lookup with cut-off kx returns postings with Rank <= kx.
	Rank int
}

// Index is one stream's top-K ingest index. Writes happen during ingest
// (single writer); reads happen at query time (many readers). All methods
// are safe for concurrent use.
type Index struct {
	mu       sync.RWMutex
	meta     IngestMeta
	clusters map[ClusterID]*ClusterRecord
	postings map[vision.ClassID][]Posting
	sorted   bool
	nextID   ClusterID
	// ingestSec is the stream time ingestion has reached; AddCluster stamps
	// it onto each spilled record as SealSec.
	ingestSec float64
}

// New creates an empty index for a stream.
func New(meta IngestMeta) *Index {
	return &Index{
		meta:     meta,
		clusters: make(map[ClusterID]*ClusterRecord),
		postings: make(map[vision.ClassID][]Posting),
	}
}

// Meta returns the ingest metadata.
func (ix *Index) Meta() IngestMeta {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.meta
}

// SetTotalSightings records the final sighting count after ingest.
func (ix *Index) SetTotalSightings(n int) {
	ix.mu.Lock()
	ix.meta.TotalSightings = n
	ix.mu.Unlock()
}

// SetIngestSec advances the stream time stamped onto newly spilled clusters
// (their SealSec). The ingest worker calls it once per processed frame.
func (ix *Index) SetIngestSec(sec float64) {
	ix.mu.Lock()
	if sec > ix.ingestSec {
		ix.ingestSec = sec
	}
	ix.mu.Unlock()
}

// SetWindow records the ingested window's duration and effective frame rate.
func (ix *Index) SetWindow(durationSec, fps float64) {
	ix.mu.Lock()
	ix.meta.DurationSec = durationSec
	ix.meta.FPS = fps
	ix.mu.Unlock()
}

// AddCluster ingests a spilled cluster: computes its cluster-level top-K
// from the aggregated class confidences and adds postings for each of those
// classes. The index assigns its own cluster IDs, so clusters from
// different engine instances never collide.
func (ix *Index) AddCluster(c *cluster.Cluster) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	topK := c.TopK(ix.meta.K)
	minT, maxT := c.TimeRange()
	rec := &ClusterRecord{
		ID:      ix.nextID,
		TopK:    topK,
		Rep:     c.Representative(),
		Members: c.Members,
		MinTime: minT,
		MaxTime: maxT,
		SealSec: ix.ingestSec,
	}
	ix.addRecordLocked(rec)
}

func (ix *Index) addRecordLocked(rec *ClusterRecord) {
	if _, dup := ix.clusters[rec.ID]; dup {
		panic(fmt.Sprintf("index: duplicate cluster ID %d", rec.ID))
	}
	ix.clusters[rec.ID] = rec
	if rec.ID >= ix.nextID {
		ix.nextID = rec.ID + 1
	}
	for i, p := range rec.TopK {
		ix.postings[p.Class] = append(ix.postings[p.Class], Posting{Cluster: rec.ID, Rank: i + 1})
	}
	ix.sorted = false
}

// ensureSorted orders every posting list by (rank, cluster) so Lookup can
// cut by rank and return deterministic results.
func (ix *Index) ensureSorted() {
	if ix.sorted {
		return
	}
	for c := range ix.postings {
		ps := ix.postings[c]
		sort.Slice(ps, func(i, j int) bool {
			if ps[i].Rank != ps[j].Rank {
				return ps[i].Rank < ps[j].Rank
			}
			return ps[i].Cluster < ps[j].Cluster
		})
	}
	ix.sorted = true
}

// Lookup returns the clusters whose cluster-level top-kx contains class c,
// most confident first. kx <= 0 or kx > K defaults to the index's K.
// The sort state is checked and the postings read under one lock hold: a
// concurrent AddCluster (live ingest) can never interleave between the sort
// and the binary search.
func (ix *Index) Lookup(c vision.ClassID, kx int) []*ClusterRecord {
	ix.mu.RLock()
	if !ix.sorted {
		// Upgrade to sort, then read while still holding the write lock —
		// dropping it first would let a concurrent AddCluster unsort the
		// postings under the binary search.
		ix.mu.RUnlock()
		ix.mu.Lock()
		ix.ensureSorted()
		out := ix.lookupLocked(c, kx)
		ix.mu.Unlock()
		return out
	}
	out := ix.lookupLocked(c, kx)
	ix.mu.RUnlock()
	return out
}

// lookupLocked performs the sorted-postings lookup; callers hold ix.mu (read
// or write) and have ensured the postings are sorted.
func (ix *Index) lookupLocked(c vision.ClassID, kx int) []*ClusterRecord {
	if kx <= 0 || kx > ix.meta.K {
		kx = ix.meta.K
	}
	ps := ix.postings[c]
	// Postings are sorted by rank: binary search the cut.
	cut := sort.Search(len(ps), func(i int) bool { return ps[i].Rank > kx })
	out := make([]*ClusterRecord, 0, cut)
	for _, p := range ps[:cut] {
		out = append(out, ix.clusters[p.Cluster])
	}
	return out
}

// ClustersSealedBy returns every cluster record visible at the given
// watermark, ascending by cluster ID. It follows the MaxSealSec convention
// used by the query layer: 0 means "everything indexed so far", a negative
// value means "empty horizon" (no clusters), and a positive value keeps
// exactly the records with SealSec <= maxSealSec. The track layer assembles
// tracks from this set, which makes a track population a pure function of
// the pinned watermark.
func (ix *Index) ClustersSealedBy(maxSealSec float64) []*ClusterRecord {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	if maxSealSec < 0 {
		return nil
	}
	out := make([]*ClusterRecord, 0, len(ix.clusters))
	for id := ClusterID(0); id < ix.nextID; id++ {
		rec := ix.clusters[id]
		if rec == nil {
			continue
		}
		if maxSealSec != 0 && rec.SealSec > maxSealSec {
			continue
		}
		out = append(out, rec)
	}
	return out
}

// HasClass reports whether any cluster indexes class c at any rank.
func (ix *Index) HasClass(c vision.ClassID) bool {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.postings[c]) > 0
}

// Classes returns every class with at least one posting, ascending.
func (ix *Index) Classes() []vision.ClassID {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	out := make([]vision.ClassID, 0, len(ix.postings))
	for c := range ix.postings {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// NumClusters returns the number of indexed clusters.
func (ix *Index) NumClusters() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.clusters)
}

// Cluster returns the record with the given ID, or nil.
func (ix *Index) Cluster(id ClusterID) *ClusterRecord {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.clusters[id]
}

// Stats summarizes the index for reporting.
type Stats struct {
	Clusters       int
	Postings       int
	Members        int
	MeanSize       float64
	LargestCluster int
}

// Stats computes summary statistics.
func (ix *Index) Stats() Stats {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	var st Stats
	st.Clusters = len(ix.clusters)
	for _, ps := range ix.postings {
		st.Postings += len(ps)
	}
	for _, c := range ix.clusters {
		st.Members += len(c.Members)
		if len(c.Members) > st.LargestCluster {
			st.LargestCluster = len(c.Members)
		}
	}
	if st.Clusters > 0 {
		st.MeanSize = float64(st.Members) / float64(st.Clusters)
	}
	return st
}

// ---- persistence ----

// metaKey and clusterKey define the store's key scheme.
func metaKey(stream string) string { return "focus/meta/" + stream }
func clusterKeyPrefix(stream string) string {
	return "focus/cluster/" + stream + "/"
}
func clusterKey(stream string, id ClusterID) string {
	return fmt.Sprintf("%s%016x", clusterKeyPrefix(stream), uint64(id))
}

// MetaKey returns the store key holding a stream's index metadata record.
// Exported for the stream-handoff path, which ships a stream's records
// between shards by key.
func MetaKey(stream string) string { return metaKey(stream) }

// ClusterKeyPrefix returns the store key prefix under which a stream's
// cluster records live; the suffix is the 16-hex-digit cluster ID, so a
// prefix scan visits records in ascending ID order.
func ClusterKeyPrefix(stream string) string { return clusterKeyPrefix(stream) }

// ClusterKeyID parses the cluster ID out of a cluster record key, given
// the stream's prefix. Returns false for keys that are not cluster records
// of that prefix.
func ClusterKeyID(key, prefix string) (ClusterID, bool) {
	if len(key) != len(prefix)+16 || key[:len(prefix)] != prefix {
		return 0, false
	}
	var id uint64
	for i := len(prefix); i < len(key); i++ {
		c := key[i]
		switch {
		case c >= '0' && c <= '9':
			id = id<<4 | uint64(c-'0')
		case c >= 'a' && c <= 'f':
			id = id<<4 | uint64(c-'a'+10)
		default:
			return 0, false
		}
	}
	return ClusterID(id), true
}

// Save persists the index into the store, replacing any previous index for
// the same stream.
func (ix *Index) Save(store *kvstore.Store) error {
	ix.mu.RLock()
	defer ix.mu.RUnlock()

	// Remove stale cluster records from a previous save of this stream.
	var stale []string
	store.Scan(clusterKeyPrefix(ix.meta.Stream), func(k string, _ []byte) bool {
		stale = append(stale, k)
		return true
	})
	for _, k := range stale {
		if err := store.Delete(k); err != nil {
			return fmt.Errorf("index: delete stale record: %w", err)
		}
	}

	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(ix.meta); err != nil {
		return fmt.Errorf("index: encode meta: %w", err)
	}
	if err := store.Put(metaKey(ix.meta.Stream), buf.Bytes()); err != nil {
		return err
	}
	for _, rec := range ix.clusters {
		buf.Reset()
		if err := gob.NewEncoder(&buf).Encode(rec); err != nil {
			return fmt.Errorf("index: encode cluster %d: %w", rec.ID, err)
		}
		if err := store.Put(clusterKey(ix.meta.Stream, rec.ID), buf.Bytes()); err != nil {
			return err
		}
	}
	return store.Sync()
}

// NextID returns the ID the next spilled cluster will be assigned. Cluster
// IDs are dense (0..NextID-1), so NextID doubles as a high-water mark:
// checkpoints record it, and LoadBounded restores exactly the records below
// it.
func (ix *Index) NextID() ClusterID {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.nextID
}

// IngestSec returns the stream time ingestion has reached (the SealSec that
// would be stamped on a cluster spilled right now).
func (ix *Index) IngestSec() float64 {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.ingestSec
}

// SaveDelta persists the metadata and every cluster record with ID >= fromID
// into the store, returning the next ID (the new high-water mark). Unlike
// Save it neither deletes previous records nor syncs: it is the incremental
// half of a checkpoint round, whose caller appends a snapshot record after
// it and syncs once. Records past a crash-interrupted round are harmless —
// the snapshot record that would commit them never landed, LoadBounded
// ignores them, and the deterministic tail replay regenerates them under the
// same IDs (hence the same keys).
func (ix *Index) SaveDelta(store *kvstore.Store, fromID ClusterID) (ClusterID, error) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()

	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(ix.meta); err != nil {
		return fromID, fmt.Errorf("index: encode meta: %w", err)
	}
	if err := store.Put(metaKey(ix.meta.Stream), buf.Bytes()); err != nil {
		return fromID, err
	}
	for id := fromID; id < ix.nextID; id++ {
		rec := ix.clusters[id]
		if rec == nil {
			return fromID, fmt.Errorf("index: missing cluster %d in dense ID range", id)
		}
		buf.Reset()
		if err := gob.NewEncoder(&buf).Encode(rec); err != nil {
			return fromID, fmt.Errorf("index: encode cluster %d: %w", rec.ID, err)
		}
		if err := store.Put(clusterKey(ix.meta.Stream, rec.ID), buf.Bytes()); err != nil {
			return fromID, err
		}
	}
	return ix.nextID, nil
}

// LoadBounded reads a stream's index back from the store, keeping only
// cluster records with ID < belowID: the committed prefix a checkpoint's
// snapshot record vouches for. Records at or past belowID (spilled after the
// snapshot was cut, or left by an interrupted checkpoint round) are skipped;
// the ingest tail replay regenerates them deterministically.
func LoadBounded(store *kvstore.Store, stream string, belowID ClusterID) (*Index, error) {
	raw, ok := store.Get(metaKey(stream))
	if !ok {
		return nil, fmt.Errorf("index: no index for stream %q", stream)
	}
	var meta IngestMeta
	if err := gob.NewDecoder(bytes.NewReader(raw)).Decode(&meta); err != nil {
		return nil, fmt.Errorf("index: decode meta: %w", err)
	}
	ix := New(meta)
	var loadErr error
	store.Scan(clusterKeyPrefix(stream), func(_ string, val []byte) bool {
		var rec ClusterRecord
		if err := gob.NewDecoder(bytes.NewReader(val)).Decode(&rec); err != nil {
			loadErr = fmt.Errorf("index: decode cluster: %w", err)
			return false
		}
		if rec.ID >= belowID {
			return true
		}
		ix.mu.Lock()
		ix.addRecordLocked(&rec)
		ix.mu.Unlock()
		return true
	})
	if loadErr != nil {
		return nil, loadErr
	}
	ix.mu.Lock()
	if ix.nextID != belowID {
		defer ix.mu.Unlock()
		return nil, fmt.Errorf("index: stream %q checkpoint expects %d cluster records, store has %d",
			stream, belowID, ix.nextID)
	}
	ix.mu.Unlock()
	return ix, nil
}

// Load reads a stream's index back from the store.
func Load(store *kvstore.Store, stream string) (*Index, error) {
	raw, ok := store.Get(metaKey(stream))
	if !ok {
		return nil, fmt.Errorf("index: no index for stream %q", stream)
	}
	var meta IngestMeta
	if err := gob.NewDecoder(bytes.NewReader(raw)).Decode(&meta); err != nil {
		return nil, fmt.Errorf("index: decode meta: %w", err)
	}
	ix := New(meta)
	var loadErr error
	store.Scan(clusterKeyPrefix(stream), func(_ string, val []byte) bool {
		var rec ClusterRecord
		if err := gob.NewDecoder(bytes.NewReader(val)).Decode(&rec); err != nil {
			loadErr = fmt.Errorf("index: decode cluster: %w", err)
			return false
		}
		ix.mu.Lock()
		ix.addRecordLocked(&rec)
		ix.mu.Unlock()
		return true
	})
	if loadErr != nil {
		return nil, loadErr
	}
	return ix, nil
}
