// Package track assembles object sightings into per-stream tracks and
// executes temporal predicates — Seq/Within spatial matchers plus
// duration, region, and velocity leaves — over them, following the
// coarse-then-refine idiom of MIRIS-style temporal video queries: track
// assembly is cheap (index-only bbox association across adjacent frames,
// no GPU time), and expensive GT-CNN refinement is spent only on clusters
// whose class predicates are still three-valued, through the query
// engine's shared BatchVerifier and per-cluster verdict cache.
//
// Tracks are a pure function of the pinned ingest watermark: the
// population is assembled from exactly the clusters sealed at or before
// the watermark, associated deterministically, so an execution pinned to
// a watermark vector returns bit-identical answers no matter how far
// ingestion has advanced — the same consistency contract the boolean
// plan path gives the serve cache and the router.
//
// Execution mirrors internal/plan: class leaves resolve three-valued
// against each track's dominant cluster (index rejection is free,
// confirmation costs one memoized GT verdict), results are ranked by
// aggregate class confidence, and a threshold cursor emits a track only
// once its rank is provably final, so paged reads concatenate to exactly
// the one-shot ranking.
package track

import (
	"sort"

	"focus/internal/index"
	"focus/internal/video"
)

// Sighting is one detection belonging to a track: where one object was in
// one frame, and which sealed cluster contributed it.
type Sighting struct {
	// Frame and TimeSec locate the sighting on the stream.
	Frame   video.FrameID
	TimeSec float64
	// Object is the physical object's identity.
	Object video.ObjectID
	// BBox is the detection's bounding box in frame coordinates.
	BBox video.Rect
	// Cluster is the sealed cluster whose member this sighting is.
	Cluster index.ClusterID
}

// Track is one assembled object track: a chain of sightings of the same
// physical object across adjacent frames, in frame order.
type Track struct {
	// ID is dense per assembly (0..n-1) in creation order — deterministic
	// for a given cluster population, hence for a given watermark.
	ID int64
	// Sightings are the track's detections, ascending by frame.
	Sightings []Sighting
	// Dominant is the cluster contributing the plurality of the track's
	// sightings (ties break to the lowest cluster ID). Class predicates
	// over the track are answered by this cluster's index standing and,
	// when still three-valued, one GT-CNN verdict of its representative.
	Dominant index.ClusterID
}

// StartSec returns the first sighting's timestamp.
func (t *Track) StartSec() float64 { return t.Sightings[0].TimeSec }

// EndSec returns the last sighting's timestamp.
func (t *Track) EndSec() float64 { return t.Sightings[len(t.Sightings)-1].TimeSec }

// DurationSec returns the track's time span (0 for single-sighting tracks).
func (t *Track) DurationSec() float64 { return t.EndSec() - t.StartSec() }

// Assemble builds the track population from a set of sealed cluster
// records, keeping only sightings within [startSec, endSec] (endSec <= 0
// means unbounded). Association mirrors the ingest pipeline's pixel-diff
// adjacency: sightings in consecutive frames (at the observed frame
// stride) join the same track when their bounding boxes overlap best and
// they are the same physical object — the identity check standing in for
// the pixel comparison a real tracker performs, exactly as in ingest
// deduplication. A frame gap other than one stride breaks every open
// track, like the ingest worker clearing its association table.
//
// The result is deterministic: records are consumed in ascending cluster
// ID, sightings sort by (frame, object, cluster), and track IDs are
// assigned in creation order.
func Assemble(recs []*index.ClusterRecord, startSec, endSec float64) []*Track {
	var all []Sighting
	for _, rec := range recs {
		for _, m := range rec.Members {
			if m.TimeSec < startSec {
				continue
			}
			if endSec > 0 && m.TimeSec > endSec {
				continue
			}
			all = append(all, Sighting{
				Frame:   m.Frame,
				TimeSec: m.TimeSec,
				Object:  m.Object,
				BBox:    m.BBox,
				Cluster: rec.ID,
			})
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Frame != all[j].Frame {
			return all[i].Frame < all[j].Frame
		}
		if all[i].Object != all[j].Object {
			return all[i].Object < all[j].Object
		}
		return all[i].Cluster < all[j].Cluster
	})
	// Each ingest sighting lands in exactly one cluster, so (frame, object)
	// is unique; drop duplicates defensively to keep association
	// well-defined on hand-built indexes.
	dedup := all[:0]
	for i, s := range all {
		if i > 0 && s.Frame == all[i-1].Frame && s.Object == all[i-1].Object {
			continue
		}
		dedup = append(dedup, s)
	}
	all = dedup
	if len(all) == 0 {
		return nil
	}

	// The observed stride: the smallest gap between consecutive distinct
	// frames. The ingest worker knows its configured FrameStride; here it
	// is recovered from the data so assembly stays a pure function of the
	// sealed records.
	stride := video.FrameID(0)
	for i := 1; i < len(all); i++ {
		if d := all[i].Frame - all[i-1].Frame; d > 0 && (stride == 0 || d < stride) {
			stride = d
		}
	}
	if stride == 0 {
		stride = 1
	}

	var tracks []*Track
	var prev, cur []prevEntry
	prevFrame := video.FrameID(-1)
	for i := 0; i < len(all); {
		j := i
		for j < len(all) && all[j].Frame == all[i].Frame {
			j++
		}
		// A gap other than one stride means the association table describes
		// a frame the current one was never adjacent to: clear it, breaking
		// open tracks (mirrors ingest.ProcessFrame).
		if prevFrame >= 0 && all[i].Frame-prevFrame != stride {
			prev = prev[:0]
		}
		prevFrame = all[i].Frame
		for _, s := range all[i:j] {
			ti := -1
			if p := matchPrev(prev, s); p >= 0 {
				ti = prev[p].track
				tracks[ti].Sightings = append(tracks[ti].Sightings, s)
			} else {
				ti = len(tracks)
				tracks = append(tracks, &Track{ID: int64(ti), Sightings: []Sighting{s}})
			}
			cur = append(cur, prevEntry{s.BBox, s.Object, ti})
		}
		// Rotate the association table, exactly as ingest does.
		prev, cur = cur, prev[:0]
		i = j
	}

	for _, tr := range tracks {
		tr.Dominant = dominantCluster(tr.Sightings)
	}
	return tracks
}

// prevEntry is the track layer's association-table entry, mirroring the
// ingest worker's: the previous frame's bounding boxes with the object
// and open track behind each.
type prevEntry struct {
	bbox   video.Rect
	object video.ObjectID
	track  int
}

// matchPrev returns the index of the previous-frame entry whose bounding
// box overlaps s best, provided it is the same physical object, or -1.
// This is the ingest worker's matchPrev over the track layer's table: the
// identity check stands in for the pixel comparison a real system
// performs (two different objects in the same region have very different
// pixels).
func matchPrev(prev []prevEntry, s Sighting) int {
	best := -1
	bestArea := 0
	for i := range prev {
		if a := intersectionArea(prev[i].bbox, s.BBox); a > bestArea {
			bestArea = a
			best = i
		}
	}
	if best < 0 || prev[best].object != s.Object {
		return -1
	}
	return best
}

// dominantCluster returns the cluster contributing the most sightings,
// ties to the lowest ID.
func dominantCluster(ss []Sighting) index.ClusterID {
	counts := make(map[index.ClusterID]int, 4)
	for _, s := range ss {
		counts[s.Cluster]++
	}
	bestID, bestN := index.ClusterID(-1), 0
	for id, n := range counts {
		if n > bestN || (n == bestN && id < bestID) {
			bestID, bestN = id, n
		}
	}
	return bestID
}

func intersectionArea(a, b video.Rect) int {
	x0 := maxInt(a.X, b.X)
	y0 := maxInt(a.Y, b.Y)
	x1 := minInt(a.X+a.W, b.X+b.W)
	y1 := minInt(a.Y+a.H, b.Y+b.H)
	if x1 <= x0 || y1 <= y0 {
		return 0
	}
	return (x1 - x0) * (y1 - y0)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
