package track

import (
	"fmt"
	"sort"

	"focus/internal/index"
	"focus/internal/parallel"
	"focus/internal/plan"
	"focus/internal/query"
	"focus/internal/video"
)

// Options tune one track execution. Targets are plan.Target — the track
// path executes against the same per-stream engines, watermarks, and GPU
// parallelism as the boolean path.
type Options struct {
	// TopK caps the ranked result; 0 returns every matching track.
	TopK int
	// DefaultLeaf applies to class leaves whose Opts are the zero value;
	// its StartSec/EndSec window and MaxClusters budget also shape track
	// assembly (which clusters contribute sightings).
	DefaultLeaf plan.LeafOptions
	// StepClusters is how many dominant clusters each stream refines per
	// round — the increment by which a Cursor extends the verification
	// budget. Default 8.
	StepClusters int
	// Workers bounds the cross-stream fan-out; 0 runs one worker per
	// stream, 1 is the sequential reference. Both are bit-identical.
	Workers int
}

// Item is one ranked result: a track on a stream with its aggregate
// confidence score — the sum, over the plan's positive class leaves the
// track satisfies, of the dominant cluster's indexed confidence for the
// class.
type Item struct {
	Stream string
	// Track is the track's ID within its stream's assembly at the pinned
	// watermark.
	Track int64
	// Object is the physical object the track follows.
	Object video.ObjectID
	// StartFrame/EndFrame and StartSec/EndSec bound the track.
	StartFrame video.FrameID
	EndFrame   video.FrameID
	StartSec   float64
	EndSec     float64
	// Sightings is the number of detections in the track.
	Sightings int
	// Score ranks the item (see RankBefore).
	Score float64
}

// RankBefore is the total result order: score descending, then stream
// name, then track start time, then track ID — the comparator both the
// cursor and the one-shot path emit in. Exported for the same reason as
// plan.RankBefore: the router's merge must interleave per-shard track
// rankings with exactly this order for a routed answer to be
// bit-identical to a single-node execution.
func RankBefore(a, b Item) bool {
	if a.Score != b.Score {
		return a.Score > b.Score
	}
	if a.Stream != b.Stream {
		return a.Stream < b.Stream
	}
	if a.StartSec != b.StartSec {
		return a.StartSec < b.StartSec
	}
	return a.Track < b.Track
}

// ClassStat reports one class leaf's work on one stream.
type ClassStat struct {
	Class    string
	ViaOther bool
	// InCut counts tracks whose dominant cluster indexes the class within
	// the leaf's Kx cut; Rejected counts tracks excluded by the index
	// alone (no GPU). Matched counts tracks the GT verdict confirmed.
	InCut    int
	Rejected int
	Matched  int
}

// StreamStats reports one stream's share of an execution.
type StreamStats struct {
	Watermark float64
	// Tracks is the assembled population size at the watermark.
	Tracks  int
	Classes []ClassStat
	// VerifiedClusters counts distinct dominant clusters resolved by GT
	// verification; SkippedClusters counts those short-circuited (every
	// dependent track already decided).
	VerifiedClusters int
	SkippedClusters  int
	GTInferences     int // GT-CNN invocations actually paid (verdict-cache misses)
	GPUTimeMS        float64
	LatencyMS        float64
}

// Stats aggregates an execution across streams.
type Stats struct {
	Canonical    string
	PerStream    map[string]*StreamStats
	Tracks       int
	GTInferences int
	GPUTimeMS    float64
	LatencyMS    float64 // slowest stream bounds the query, as in plan
	Done         bool
}

// Result is a completed one-shot execution.
type Result struct {
	Items []Item
	Stats Stats
}

// Execute runs the track plan to completion (or to TopK) and returns the
// ranked result. It is exactly NewCursor + one drain: paged and one-shot
// execution share every code path.
func Execute(p *Plan, targets []plan.Target, opts Options) (*Result, error) {
	cur, err := NewCursor(p, targets, opts)
	if err != nil {
		return nil, err
	}
	items, err := cur.Next(0)
	if err != nil {
		return nil, err
	}
	return &Result{Items: items, Stats: cur.Stats()}, nil
}

// Cursor is a paged track execution: Next(n) returns the next n items of
// the final ranking, refining dominant-cluster verdicts only as far as
// needed. An item is emitted only when no unresolved cluster anywhere
// could produce a higher-ranked track, so the concatenation of pages is
// bit-identical to the one-shot ranking regardless of page sizes —
// including pages that split mid-track population.
type Cursor struct {
	plan    *Plan
	opts    Options
	streams []*trackExec
	emitted int
	done    bool
}

// NewCursor prepares an execution over the targets: it assembles each
// stream's track population at its watermark (index-only, no GPU time),
// decides every temporal atom, and resolves class leaves against the
// index's Kx cut. GT verification starts lazily on the first Next.
func NewCursor(p *Plan, targets []plan.Target, opts Options) (*Cursor, error) {
	if len(targets) == 0 {
		return nil, fmt.Errorf("track: no target streams")
	}
	if opts.StepClusters <= 0 {
		opts.StepClusters = 8
	}
	c := &Cursor{plan: p, opts: opts}
	for _, t := range targets {
		if t.Engine == nil {
			return nil, fmt.Errorf("track: stream %q has no query engine", t.Stream)
		}
		s, err := newTrackExec(p, t, opts)
		if err != nil {
			return nil, err
		}
		c.streams = append(c.streams, s)
	}
	return c, nil
}

// Next returns up to n further items of the final ranking; n <= 0 drains
// the cursor. A short (or empty) return means the query is exhausted — or
// that TopK was reached.
func (c *Cursor) Next(n int) ([]Item, error) {
	var out []Item
	for !c.done && (n <= 0 || len(out) < n) {
		// The globally best ready item is final once it outranks every
		// stream's upper bound on any still-unresolved track's score.
		best := -1
		var bestItem Item
		maxBound := -1.0
		for si, s := range c.streams {
			if item, ok := s.peek(); ok && (best < 0 || RankBefore(item, bestItem)) {
				best, bestItem = si, item
			}
			if s.bound > maxBound {
				maxBound = s.bound
			}
		}
		if best >= 0 && bestItem.Score > maxBound {
			c.streams[best].pop()
			out = append(out, bestItem)
			c.emitted++
			if c.opts.TopK > 0 && c.emitted >= c.opts.TopK {
				c.done = true
			}
			continue
		}
		allResolved := true
		for _, s := range c.streams {
			if !s.resolvedAll {
				allResolved = false
				break
			}
		}
		if allResolved {
			c.done = true
			break
		}
		workers := parallel.StreamWorkers(len(c.streams), c.opts.Workers)
		err := parallel.ForEach(workers, len(c.streams), func(i int) error {
			c.streams[i].advance(c.opts.StepClusters)
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Done reports whether the cursor is exhausted (or reached TopK).
func (c *Cursor) Done() bool { return c.done }

// Stats snapshots the execution's cost counters so far.
func (c *Cursor) Stats() Stats {
	st := Stats{
		Canonical: c.plan.canonical,
		PerStream: make(map[string]*StreamStats, len(c.streams)),
		Done:      c.done,
	}
	for _, s := range c.streams {
		ss := &StreamStats{
			Watermark:        s.watermark,
			Tracks:           len(s.tracks),
			VerifiedClusters: len(s.uniqueVerified),
			SkippedClusters:  s.skipped,
			GTInferences:     s.verifier.Inferences,
			GPUTimeMS:        s.verifier.GPUTimeMS,
			LatencyMS:        s.verifier.LatencyMS(),
		}
		ss.Classes = append(ss.Classes, s.classStats...)
		st.PerStream[s.name] = ss
		st.Tracks += ss.Tracks
		st.GTInferences += ss.GTInferences
		st.GPUTimeMS += ss.GPUTimeMS
		if ss.LatencyMS > st.LatencyMS {
			st.LatencyMS = ss.LatencyMS
		}
	}
	return st
}

// ---- per-stream execution ----

const (
	jobUnresolved int8 = iota
	jobVerified
	jobSkipped
)

// trackState is one track's evaluation state.
type trackState struct {
	tr *Track
	// classTV and classConf are per class leaf: three-valued truth and the
	// dominant cluster's confidence for the class (the score contribution
	// when True).
	classTV   []int8
	classConf []float64
	// atomVals are the pre-decided temporal atoms.
	atomVals []int8
	emitted  bool
	dead     bool
}

// clusterJob is one dominant cluster awaiting a GT verdict, with the
// tracks depending on it.
type clusterJob struct {
	rec    *index.ClusterRecord
	tracks []int // indices into trackExec.states
	prio   float64
	state  int8
}

type trackExec struct {
	name      string
	watermark float64
	plan      *Plan
	verifier  *query.BatchVerifier

	tracks []*Track
	states []*trackState
	jobs   []*clusterJob
	next   int // first possibly-unresolved job

	uniqueVerified map[index.ClusterID]struct{}
	skipped        int
	classStats     []ClassStat

	ready       []Item
	readyPos    int
	bound       float64 // max possible score of any unready, undead track; -1 if none
	resolvedAll bool
}

func newTrackExec(p *Plan, t plan.Target, opts Options) (*trackExec, error) {
	verifier, err := t.Engine.NewBatchVerifier(t.NumGPUs)
	if err != nil {
		return nil, err
	}
	qopts := query.Options{
		StartSec:    opts.DefaultLeaf.StartSec,
		EndSec:      opts.DefaultLeaf.EndSec,
		MaxClusters: opts.DefaultLeaf.MaxClusters,
		MaxSealSec:  t.Watermark,
	}
	recs, err := t.Engine.SealedClusters(qopts)
	if err != nil {
		return nil, fmt.Errorf("track: stream %q: %w", t.Stream, err)
	}
	byID := make(map[index.ClusterID]*index.ClusterRecord, len(recs))
	for _, rec := range recs {
		byID[rec.ID] = rec
	}
	s := &trackExec{
		name:           t.Stream,
		watermark:      t.Watermark,
		plan:           p,
		verifier:       verifier,
		tracks:         Assemble(recs, opts.DefaultLeaf.StartSec, opts.DefaultLeaf.EndSec),
		uniqueVerified: make(map[index.ClusterID]struct{}),
		bound:          -1,
	}
	s.classStats = make([]ClassStat, len(p.leaves))
	for li, spec := range p.leaves {
		s.classStats[li].Class = spec.name
	}
	jobByCluster := make(map[index.ClusterID]*clusterJob)
	for ti, tr := range s.tracks {
		ts := &trackState{
			tr:        tr,
			classTV:   make([]int8, len(p.leaves)),
			classConf: make([]float64, len(p.leaves)),
			atomVals:  make([]int8, len(p.atoms)),
		}
		for ai, atom := range p.atoms {
			if atom(tr) {
				ts.atomVals[ai] = tvTrue
			} else {
				ts.atomVals[ai] = tvFalse
			}
		}
		dom := byID[tr.Dominant]
		needsVerdict := false
		for li, spec := range p.leaves {
			lopts := spec.opts
			if lopts == (plan.LeafOptions{}) {
				lopts = opts.DefaultLeaf
			}
			conf, inCut, viaOther := t.Engine.ClassStanding(dom, spec.class, lopts.Kx)
			s.classStats[li].ViaOther = viaOther
			if !inCut {
				// The index vouches the dominant cluster does not plausibly
				// contain the class: False without any GPU time.
				ts.classTV[li] = tvFalse
				s.classStats[li].Rejected++
				continue
			}
			ts.classTV[li] = tvUnknown
			ts.classConf[li] = conf
			s.classStats[li].InCut++
			needsVerdict = true
		}
		s.states = append(s.states, ts)
		if !needsVerdict {
			continue
		}
		job := jobByCluster[tr.Dominant]
		if job == nil {
			job = &clusterJob{rec: dom}
			jobByCluster[tr.Dominant] = job
			s.jobs = append(s.jobs, job)
		}
		job.tracks = append(job.tracks, ti)
		for li := range p.leaves {
			if ts.classTV[li] == tvUnknown && ts.classConf[li] > job.prio {
				job.prio = ts.classConf[li]
			}
		}
	}
	// Verification order: highest at-stake confidence first (ties by
	// cluster ID) — the track analog of the plan path's
	// confidence-descending candidate order, so the first verdicts settle
	// the highest-scoring tracks and the bound falls fastest.
	sort.Slice(s.jobs, func(i, j int) bool {
		if s.jobs[i].prio != s.jobs[j].prio {
			return s.jobs[i].prio > s.jobs[j].prio
		}
		return s.jobs[i].rec.ID < s.jobs[j].rec.ID
	})
	s.recompute()
	s.resolvedAll = s.next >= len(s.jobs)
	return s, nil
}

// settled reports that the track's ranked fate needs no further verdicts:
// its truth is True and no scoring leaf is still Unknown (the score can
// no longer grow). Dead tracks are handled separately.
func (s *trackExec) settled(ts *trackState) bool {
	if evalTV(s.plan.eval, ts.classTV, ts.atomVals) != tvTrue {
		return false
	}
	for li, spec := range s.plan.leaves {
		if spec.scoring && ts.classTV[li] == tvUnknown {
			return false
		}
	}
	return true
}

// needed reports whether verifying the job can still change the result.
func (s *trackExec) needed(job *clusterJob) bool {
	for _, ti := range job.tracks {
		ts := s.states[ti]
		if ts.dead || ts.emitted {
			continue
		}
		if !s.settled(ts) {
			return true
		}
	}
	return false
}

// advance resolves up to step cluster jobs: jobs whose dependent tracks
// are all already decided are skipped without GT cost; the rest are
// verified as one batch through the engine's shared verdict cache, and
// the single verdict settles every class leaf of every dependent track
// at once.
func (s *trackExec) advance(step int) {
	if s.resolvedAll {
		return
	}
	resolved := 0
	var batch []*index.ClusterRecord
	var batchJobs []*clusterJob
	for i := s.next; i < len(s.jobs) && resolved < step; i++ {
		job := s.jobs[i]
		if job.state != jobUnresolved {
			continue
		}
		if !s.needed(job) {
			job.state = jobSkipped
			s.skipped++
			resolved++
			continue
		}
		batch = append(batch, job.rec)
		batchJobs = append(batchJobs, job)
		resolved++
	}
	verdicts := s.verifier.Verify(batch)
	for j, job := range batchJobs {
		job.state = jobVerified
		s.uniqueVerified[job.rec.ID] = struct{}{}
		verdict := verdicts[j]
		for _, ti := range job.tracks {
			ts := s.states[ti]
			for li, spec := range s.plan.leaves {
				if ts.classTV[li] != tvUnknown {
					continue
				}
				if verdict == spec.class {
					ts.classTV[li] = tvTrue
					s.classStats[li].Matched++
				} else {
					ts.classTV[li] = tvFalse
					ts.classConf[li] = 0
				}
			}
		}
	}
	for s.next < len(s.jobs) && s.jobs[s.next].state != jobUnresolved {
		s.next++
	}
	s.resolvedAll = s.next >= len(s.jobs)
	s.recompute()
}

// recompute rebuilds the stream's ready list and score bound from the
// per-track truth state, mirroring the plan executor: a track is ready
// once the plan is True for it and no scoring leaf is still Unknown; the
// bound is the best score any not-yet-ready track could still reach.
func (s *trackExec) recompute() {
	s.ready = s.ready[:0]
	s.readyPos = 0
	s.bound = -1
	for _, ts := range s.states {
		if ts.emitted || ts.dead {
			continue
		}
		tv := evalTV(s.plan.eval, ts.classTV, ts.atomVals)
		if tv == tvFalse {
			ts.dead = true
			continue
		}
		score, settled := 0.0, true
		ub := 0.0
		for li, spec := range s.plan.leaves {
			if !spec.scoring {
				continue
			}
			switch ts.classTV[li] {
			case tvTrue:
				score += ts.classConf[li]
				ub += ts.classConf[li]
			case tvUnknown:
				settled = false
				ub += ts.classConf[li]
			}
		}
		if tv == tvTrue && settled {
			s.ready = append(s.ready, s.item(ts, score))
			continue
		}
		if ub > s.bound {
			s.bound = ub
		}
	}
	sort.Slice(s.ready, func(i, j int) bool { return RankBefore(s.ready[i], s.ready[j]) })
}

func (s *trackExec) item(ts *trackState, score float64) Item {
	tr := ts.tr
	return Item{
		Stream:     s.name,
		Track:      tr.ID,
		Object:     tr.Sightings[0].Object,
		StartFrame: tr.Sightings[0].Frame,
		EndFrame:   tr.Sightings[len(tr.Sightings)-1].Frame,
		StartSec:   tr.StartSec(),
		EndSec:     tr.EndSec(),
		Sightings:  len(tr.Sightings),
		Score:      score,
	}
}

func (s *trackExec) peek() (Item, bool) {
	if s.readyPos < len(s.ready) {
		return s.ready[s.readyPos], true
	}
	return Item{}, false
}

func (s *trackExec) pop() {
	// Track IDs are dense in assembly order, so the ID indexes states.
	s.states[s.ready[s.readyPos].Track].emitted = true
	s.readyPos++
}
