package track

import (
	"fmt"
	"math"

	"focus/internal/plan"
	"focus/internal/video"
	"focus/internal/vision"
)

// Three-valued truth, identical to the plan executor's convention: -1
// False, 0 Unknown, +1 True. And = min, Or = max, Not = negation.
const (
	tvFalse   int8 = -1
	tvUnknown int8 = 0
	tvTrue    int8 = 1
)

type opKind int8

const (
	opClass opKind = iota
	opAtom
	opAnd
	opOr
	opNot
)

// node is one compiled evaluation node. Class leaves index classes (the
// three-valued, GPU-priced part); atoms index pre-compiled temporal
// predicates (two-valued, decided at assembly time, no GPU).
type node struct {
	op   opKind
	leaf int
	atom int
	kids []*node
}

// classSpec is one deduplicated class leaf of a track plan.
type classSpec struct {
	idx   int
	name  string
	class vision.ClassID
	opts  plan.LeafOptions
	// scoring leaves (any positive occurrence) contribute their dominant
	// cluster's confidence to a matching track's score.
	scoring bool
}

// atomEval decides one temporal atom for one track.
type atomEval func(tr *Track) bool

// Plan is a compiled temporal track plan, the track-path analog of
// plan.Plan: a validated expression with resolved class leaves and
// pre-compiled temporal atoms, ready to execute against per-stream
// targets.
type Plan struct {
	root      plan.Expr
	eval      *node
	leaves    []*classSpec
	atoms     []atomEval
	atomNames []string
	canonical string
}

// Canonical returns the plan's canonical text form — the same canonical
// string plan.Canonical renders, and the serve layer's cache-key
// component for the tracks form.
func (p *Plan) Canonical() string { return p.canonical }

// Classes returns the distinct class leaf names, in first-mention order.
func (p *Plan) Classes() []string {
	out := make([]string, len(p.leaves))
	for i, l := range p.leaves {
		out[i] = l.name
	}
	return out
}

// Compile validates a temporal expression and resolves its class leaves.
// The expression must contain at least one temporal operator (otherwise
// it belongs on the boolean plan path); spatial matcher positions —
// Seq/Within children — accept only region, seq, and within; and every
// leaf's parameters are range-checked. Unlike the boolean path there is
// no anchoring requirement: the track population at a watermark is
// finite (every track is assembled from indexed sightings), so even a
// bare negation ranges over a bounded set.
func Compile(e plan.Expr, resolve plan.Resolver) (*Plan, error) {
	if e == nil {
		return nil, fmt.Errorf("track: empty expression")
	}
	if !plan.HasTemporal(e) {
		return nil, fmt.Errorf("track: %q has no temporal operator (use the boolean plan path)", plan.Canonical(e))
	}
	p := &Plan{root: e, canonical: plan.Canonical(e)}
	byKey := make(map[string]*classSpec)
	var compileErr error
	fail := func(format string, args ...any) {
		if compileErr == nil {
			compileErr = fmt.Errorf(format, args...)
		}
	}
	addAtom := func(x plan.Expr, fn atomEval) *node {
		n := &node{op: opAtom, atom: len(p.atoms)}
		p.atoms = append(p.atoms, fn)
		p.atomNames = append(p.atomNames, plan.Canonical(x))
		return n
	}
	var build func(e plan.Expr, positive bool) *node
	build = func(e plan.Expr, positive bool) *node {
		switch x := e.(type) {
		case *plan.Leaf:
			key := plan.Canonical(x)
			spec, ok := byKey[key]
			if !ok {
				class, err := resolve(x.Class)
				if err != nil {
					fail("track: leaf %q: %v", x.Class, err)
				}
				spec = &classSpec{idx: len(p.leaves), name: x.Class, class: class, opts: x.Opts}
				byKey[key] = spec
				p.leaves = append(p.leaves, spec)
			}
			if positive {
				spec.scoring = true
			}
			return &node{op: opClass, leaf: spec.idx}
		case *plan.And:
			n := &node{op: opAnd}
			for _, c := range x.Children {
				n.kids = append(n.kids, build(c, positive))
			}
			if len(n.kids) == 0 {
				fail("track: empty And")
			}
			return n
		case *plan.Or:
			n := &node{op: opOr}
			for _, c := range x.Children {
				n.kids = append(n.kids, build(c, positive))
			}
			if len(n.kids) == 0 {
				fail("track: empty Or")
			}
			return n
		case *plan.Not:
			return &node{op: opNot, kids: []*node{build(x.Child, !positive)}}
		case *plan.Dur:
			if x.MinSec < 0 || x.MaxSec < 0 {
				fail("track: dur bounds must be non-negative in %q", plan.Canonical(x))
			}
			if x.MaxSec > 0 && x.MaxSec < x.MinSec {
				fail("track: dur max %g below min %g", x.MaxSec, x.MinSec)
			}
			d := *x
			return addAtom(x, func(tr *Track) bool {
				dur := tr.DurationSec()
				return dur >= d.MinSec && (d.MaxSec <= 0 || dur <= d.MaxSec)
			})
		case *plan.Vel:
			if x.Min < 0 || x.Max < 0 {
				fail("track: vel bounds must be non-negative in %q", plan.Canonical(x))
			}
			if x.Max > 0 && x.Max < x.Min {
				fail("track: vel max %g below min %g", x.Max, x.Min)
			}
			v := *x
			return addAtom(x, func(tr *Track) bool {
				speed := meanSpeed(tr)
				return speed >= v.Min && (v.Max <= 0 || speed <= v.Max)
			})
		case *plan.Region, *plan.Seq, *plan.Within:
			m, err := compileMatcher(e)
			if err != nil {
				fail("%v", err)
				return &node{op: opAtom}
			}
			return addAtom(e, func(tr *Track) bool {
				_, _, ok := m(tr, 0)
				return ok
			})
		default:
			fail("track: unknown expression node %T", e)
			return &node{op: opAtom}
		}
	}
	p.eval = build(e, true)
	if compileErr != nil {
		return nil, compileErr
	}
	return p, nil
}

// matcher finds the earliest match within one track starting at or after
// sighting index from, returning the matched sighting index range
// [start, end] inclusive.
type matcher func(tr *Track, from int) (start, end int, ok bool)

// compileMatcher validates and compiles a spatial matcher: region, or
// seq/within over matchers. Class, dur, and vel leaves are whole-track
// predicates and cannot appear in matcher position.
func compileMatcher(e plan.Expr) (matcher, error) {
	switch x := e.(type) {
	case *plan.Region:
		if x.X1 <= x.X0 || x.Y1 <= x.Y0 {
			return nil, fmt.Errorf("track: degenerate region %q (need x1 > x0 and y1 > y0)", plan.Canonical(x))
		}
		rect := video.Rect{X: x.X0, Y: x.Y0, W: x.X1 - x.X0, H: x.Y1 - x.Y0}
		return func(tr *Track, from int) (int, int, bool) {
			for i := from; i < len(tr.Sightings); i++ {
				if intersectionArea(tr.Sightings[i].BBox, rect) > 0 {
					return i, i, true
				}
			}
			return 0, 0, false
		}, nil
	case *plan.Seq:
		if len(x.Children) < 2 {
			return nil, fmt.Errorf("track: seq needs at least 2 steps, got %d", len(x.Children))
		}
		kids := make([]matcher, len(x.Children))
		for i, c := range x.Children {
			m, err := compileMatcher(c)
			if err != nil {
				return nil, err
			}
			kids[i] = m
		}
		// Greedy earliest-completion subsequence match: each step matches
		// as early as possible at a strictly later sighting than the
		// previous step's end. For a fixed start this minimizes the end
		// index, which Within's restart scan relies on.
		return func(tr *Track, from int) (int, int, bool) {
			cur := from
			start, end := 0, 0
			for i, m := range kids {
				s, e, ok := m(tr, cur)
				if !ok {
					return 0, 0, false
				}
				if i == 0 {
					start = s
				}
				end = e
				cur = e + 1
			}
			return start, end, true
		}, nil
	case *plan.Within:
		if x.DSec < 0 || math.IsNaN(x.DSec) {
			return nil, fmt.Errorf("track: within duration must be non-negative, got %g", x.DSec)
		}
		child, err := compileMatcher(x.Child)
		if err != nil {
			return nil, err
		}
		d := x.DSec
		// Scan start positions: the child's greedy match at each start has
		// the minimal end, so if no start yields a span within d, no match
		// does.
		return func(tr *Track, from int) (int, int, bool) {
			probe := from
			for {
				s, e, ok := child(tr, probe)
				if !ok {
					return 0, 0, false
				}
				if tr.Sightings[e].TimeSec-tr.Sightings[s].TimeSec <= d {
					return s, e, true
				}
				probe = s + 1
			}
		}, nil
	default:
		return nil, fmt.Errorf("track: %q cannot appear inside seq/within (spatial matchers are region, seq, within)", plan.Canonical(e))
	}
}

// meanSpeed is the track's bbox-center path length divided by its
// duration, in pixels/second; single-sighting (or zero-duration) tracks
// move at speed 0.
func meanSpeed(tr *Track) float64 {
	dur := tr.DurationSec()
	if dur <= 0 {
		return 0
	}
	var dist float64
	for i := 1; i < len(tr.Sightings); i++ {
		x0, y0 := center(tr.Sightings[i-1].BBox)
		x1, y1 := center(tr.Sightings[i].BBox)
		dist += math.Hypot(x1-x0, y1-y0)
	}
	return dist / dur
}

func center(r video.Rect) (float64, float64) {
	return float64(r.X) + float64(r.W)/2, float64(r.Y) + float64(r.H)/2
}

// evalTV evaluates the three-valued truth of a compiled node given the
// per-track class-leaf states and atom values (And = min, Or = max, Not =
// negation — Unknown propagates only where it matters).
func evalTV(n *node, classState, atomVals []int8) int8 {
	switch n.op {
	case opClass:
		return classState[n.leaf]
	case opAtom:
		return atomVals[n.atom]
	case opAnd:
		v := tvTrue
		for _, k := range n.kids {
			if kv := evalTV(k, classState, atomVals); kv < v {
				v = kv
			}
		}
		return v
	case opOr:
		v := tvFalse
		for _, k := range n.kids {
			if kv := evalTV(k, classState, atomVals); kv > v {
				v = kv
			}
		}
		return v
	default: // opNot
		return -evalTV(n.kids[0], classState, atomVals)
	}
}
