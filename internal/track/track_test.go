package track_test

import (
	"reflect"
	"testing"

	"focus/internal/cluster"
	"focus/internal/gpu"
	"focus/internal/index"
	"focus/internal/plan"
	"focus/internal/query"
	"focus/internal/track"
	"focus/internal/video"
	"focus/internal/vision"
)

// sighting describes one member for the fixture: frame, object, and a
// bbox moving along X (bboxes overlap between adjacent frames when the
// per-frame step is below the width).
type sighting struct {
	frame  int64
	object int64
	x, y   int
}

// clusterSpec is one hand-built sealed cluster.
type clusterSpec struct {
	topK      []vision.ClassID
	verdict   vision.ClassID
	seal      float64
	sightings []sighting
}

const fps = 1.0 // timeSec == frame for readability

func bboxAt(x, y int) video.Rect { return video.Rect{X: x, Y: y, W: 60, H: 60} }

// buildIndex constructs an index whose clusters, members, bboxes, and
// seal times are exactly as specified, plus the matching GT oracle.
func buildIndex(t *testing.T, k int, specs []clusterSpec) (*index.Index, query.GTFunc) {
	t.Helper()
	ix := index.New(index.IngestMeta{Stream: "s", ModelName: "m", K: k, FPS: fps})
	verdicts := map[int64]vision.ClassID{}
	for i, cs := range specs {
		e, err := cluster.NewEngine(cluster.Config{Threshold: 1000, MaxActive: 10}, ix.AddCluster)
		if err != nil {
			t.Fatal(err)
		}
		ranked := make([]vision.Prediction, len(cs.topK))
		for j, c := range cs.topK {
			ranked[j] = vision.Prediction{Class: c, Confidence: float32(len(cs.topK) - j)}
		}
		f := make(vision.FeatureVec, vision.FeatureDim)
		for _, sg := range cs.sightings {
			m := cluster.Member{
				Object:  video.ObjectID(sg.object),
				Frame:   video.FrameID(sg.frame),
				TimeSec: float64(sg.frame) / fps,
				BBox:    bboxAt(sg.x, sg.y),
				Seed:    int64(i), // rep seed identifies the cluster to the oracle
			}
			e.Add(f, m, ranked)
		}
		ix.SetIngestSec(cs.seal)
		e.Flush()
		verdicts[int64(i)] = cs.verdict
	}
	gtFn := func(m cluster.Member) vision.ClassID { return verdicts[m.Seed] }
	return ix, gtFn
}

func newEngine(t *testing.T, ix *index.Index, gtFn query.GTFunc, meter *gpu.Meter) *query.Engine {
	t.Helper()
	e, err := query.NewEngine(ix, vision.NewZoo().GT, vision.NewSpace(1), gtFn, meter)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

const (
	carID    vision.ClassID = 3
	personID vision.ClassID = 4
	busID    vision.ClassID = 5
)

func resolver(name string) (vision.ClassID, error) {
	switch name {
	case "car":
		return carID, nil
	case "person":
		return personID, nil
	case "bus":
		return busID, nil
	}
	return 0, &unknownClassError{name}
}

type unknownClassError struct{ name string }

func (e *unknownClassError) Error() string { return "unknown class " + e.name }

func compile(t *testing.T, expr string) *track.Plan {
	t.Helper()
	ast, err := plan.Parse(expr)
	if err != nil {
		t.Fatalf("Parse(%q): %v", expr, err)
	}
	p, err := track.Compile(ast, resolver)
	if err != nil {
		t.Fatalf("Compile(%q): %v", expr, err)
	}
	return p
}

// crossingSpecs is the shared scenario: object 1 crosses the frame
// left-to-right over frames 1..6, its sightings split across two clusters
// sealed at different times (seal 3 and seal 6); object 2 loiters at a
// fixed position over frames 1..5 in a third cluster; object 1 reappears
// at frames 20..21 after a gap, in a fourth cluster.
func crossingSpecs() []clusterSpec {
	return []clusterSpec{
		{topK: []vision.ClassID{carID, busID}, verdict: carID, seal: 3,
			sightings: []sighting{{1, 1, 0, 0}, {2, 1, 50, 0}, {3, 1, 100, 0}}},
		{topK: []vision.ClassID{carID, busID}, verdict: carID, seal: 6,
			sightings: []sighting{{4, 1, 150, 0}, {5, 1, 200, 0}, {6, 1, 250, 0}}},
		{topK: []vision.ClassID{personID, carID}, verdict: personID, seal: 5,
			sightings: []sighting{{1, 2, 0, 500}, {2, 2, 0, 500}, {3, 2, 0, 500}, {4, 2, 0, 500}, {5, 2, 0, 500}}},
		{topK: []vision.ClassID{carID, busID}, verdict: busID, seal: 21,
			sightings: []sighting{{20, 1, 300, 0}, {21, 1, 350, 0}}},
	}
}

func targetsAt(e *query.Engine, wm float64) []plan.Target {
	return []plan.Target{{Stream: "s", Engine: e, Watermark: wm, NumGPUs: 1}}
}

// TestAssembleAcrossClusterSeals verifies that adjacent-frame association
// joins sightings from different clusters into one track (the "Seq across
// cluster seals" case) and that the gap at frame 20 starts a new track.
func TestAssembleAcrossClusterSeals(t *testing.T) {
	ix, _ := buildIndex(t, 2, crossingSpecs())
	recs := ix.ClustersSealedBy(0)
	tracks := track.Assemble(recs, 0, 0)
	if len(tracks) != 3 {
		t.Fatalf("%d tracks, want 3 (crossing, loiterer, reappearance)", len(tracks))
	}
	// Track 0: object 1 frames 1..6 across clusters 0 and 1.
	tr := tracks[0]
	if got := len(tr.Sightings); got != 6 {
		t.Errorf("track 0 has %d sightings, want 6", got)
	}
	if tr.StartSec() != 1 || tr.EndSec() != 6 {
		t.Errorf("track 0 spans [%g,%g], want [1,6]", tr.StartSec(), tr.EndSec())
	}
	if tr.Dominant != 0 {
		// 3 sightings each from clusters 0 and 1: plurality ties to the
		// lower ID.
		t.Errorf("track 0 dominant = %d, want 0 (tie to lowest)", tr.Dominant)
	}
	// Track 2: object 1 reappearing at frame 20 — the frame gap broke the
	// association, so it is a fresh track despite the same object.
	if got := tracks[2].Sightings[0].Frame; got != 20 {
		t.Errorf("track 2 starts at frame %d, want 20", got)
	}
}

// TestAssembleWatermark pins the pure-function-of-watermark contract: at
// watermark 3 only the first cluster is visible, so the crossing track is
// truncated; negative watermark is the empty horizon.
func TestAssembleWatermark(t *testing.T) {
	ix, _ := buildIndex(t, 2, crossingSpecs())
	tracks := track.Assemble(ix.ClustersSealedBy(3), 0, 0)
	if len(tracks) != 1 {
		t.Fatalf("%d tracks at watermark 3, want 1", len(tracks))
	}
	if got := len(tracks[0].Sightings); got != 3 {
		t.Errorf("truncated track has %d sightings, want 3", got)
	}
	if tracks := track.Assemble(ix.ClustersSealedBy(-1), 0, 0); len(tracks) != 0 {
		t.Errorf("negative watermark assembled %d tracks, want 0", len(tracks))
	}
}

func executeAt(t *testing.T, e *query.Engine, expr string, wm float64) *track.Result {
	t.Helper()
	res, err := track.Execute(compile(t, expr), targetsAt(e, wm), track.Options{})
	if err != nil {
		t.Fatalf("Execute(%q): %v", expr, err)
	}
	return res
}

func trackIDs(items []track.Item) []int64 {
	out := make([]int64, len(items))
	for i, it := range items {
		out[i] = it.Track
	}
	return out
}

// TestTemporalPredicates exercises each leaf and matcher against the
// crossing scenario.
func TestTemporalPredicates(t *testing.T) {
	ix, gtFn := buildIndex(t, 2, crossingSpecs())
	e := newEngine(t, ix, gtFn, nil)

	left := "region(0,0,120,100)"    // covers x 0..100 at y 0
	right := "region(200,0,400,100)" // covers x 200..350 at y 0
	cases := []struct {
		expr string
		want []int64 // expected track IDs, any order checked via set
	}{
		{"dur(4)", []int64{0, 1}},                                   // crossing spans 5s, loiterer 4s, reappearance 1s
		{"dur(0,2)", []int64{2}},                                    // only the short reappearance
		{"vel(30)", []int64{0, 2}},                                  // movers: 50 px/s
		{"vel(0,1)", []int64{1}},                                    // the loiterer
		{left, []int64{0}},                                          // loiterer is at y 500, reappearance at x >= 300: outside
		{"seq(" + left + "," + right + ")", []int64{0}},             // crosses left then right
		{"seq(" + right + "," + left + ")", []int64{}},              // never right-to-left
		{"within(3, seq(" + left + "," + right + "))", []int64{0}},  // frames 3→5 span 2s ≤ 3
		{"within(1, seq(" + left + "," + right + "))", []int64{0}},  // tightest crossing: frame 3 -> 4
		{"within(0.5, seq(" + left + "," + right + "))", []int64{}}, // no sub-second crossing
		{"car & dur(4)", []int64{0}},                                // loiterer's dominant is person
		{"person & dur(4)", []int64{1}},
		{"!car & dur(0)", []int64{1, 2}}, // reappearance verdict is bus
		{"bus & dur(0)", []int64{2}},
	}
	for _, tc := range cases {
		res := executeAt(t, e, tc.expr, 0)
		got := trackIDs(res.Items)
		if len(got) != len(tc.want) {
			t.Errorf("%q matched tracks %v, want %v", tc.expr, got, tc.want)
			continue
		}
		set := map[int64]bool{}
		for _, id := range got {
			set[id] = true
		}
		for _, id := range tc.want {
			if !set[id] {
				t.Errorf("%q matched tracks %v, want %v", tc.expr, got, tc.want)
				break
			}
		}
	}
}

// TestWithinAcrossWatermarkBoundary pins the watermark-purity of temporal
// matches: a within(...) that needs sightings from the cluster sealed at
// 6 fails at watermark 3 (the track is truncated to the sealed prefix)
// and succeeds at 6 — and the watermark-3 answer never changes as the
// index grows.
func TestWithinAcrossWatermarkBoundary(t *testing.T) {
	ix, gtFn := buildIndex(t, 2, crossingSpecs())
	e := newEngine(t, ix, gtFn, nil)
	expr := "within(5, seq(region(0,0,120,100), region(200,0,400,100)))"
	if res := executeAt(t, e, expr, 3); len(res.Items) != 0 {
		t.Errorf("watermark 3: matched %v, want none (right half not sealed)", trackIDs(res.Items))
	}
	if res := executeAt(t, e, expr, 6); len(res.Items) != 1 {
		t.Errorf("watermark 6: matched %v, want the crossing track", trackIDs(res.Items))
	}
	// Replay at the old watermark after the index has advanced: identical.
	if res := executeAt(t, e, expr, 3); len(res.Items) != 0 {
		t.Errorf("watermark 3 replay: matched %v, want none", trackIDs(res.Items))
	}
}

// TestSingleSightingTrack covers the single-sighting edge cases: duration
// and speed are 0, a region matcher can match, and a two-step seq cannot.
func TestSingleSightingTrack(t *testing.T) {
	ix, gtFn := buildIndex(t, 2, []clusterSpec{
		{topK: []vision.ClassID{carID}, verdict: carID, seal: 1,
			sightings: []sighting{{1, 1, 0, 0}}},
	})
	e := newEngine(t, ix, gtFn, nil)
	for expr, want := range map[string]int{
		"dur(0,0)":            1,
		"vel(0,0)":            1,
		"dur(1)":              0,
		"region(0,0,100,100)": 1,
		"seq(region(0,0,100,100), region(0,0,100,100))": 0, // needs two sightings
	} {
		if res := executeAt(t, e, expr, 0); len(res.Items) != want {
			t.Errorf("%q matched %d tracks, want %d", expr, len(res.Items), want)
		}
	}
}

// TestEmptyPopulation covers the no-tracks edge cases: empty horizon and
// a window excluding everything.
func TestEmptyPopulation(t *testing.T) {
	ix, gtFn := buildIndex(t, 2, crossingSpecs())
	e := newEngine(t, ix, gtFn, nil)
	if res := executeAt(t, e, "dur(0)", -1); len(res.Items) != 0 {
		t.Errorf("empty horizon matched %d tracks", len(res.Items))
	}
	res, err := track.Execute(compile(t, "dur(0)"), targetsAt(e, 0),
		track.Options{DefaultLeaf: plan.LeafOptions{StartSec: 1000, EndSec: 2000}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Items) != 0 {
		t.Errorf("out-of-window query matched %d tracks", len(res.Items))
	}
	if res.Stats.Tracks != 0 {
		t.Errorf("out-of-window population is %d, want 0", res.Stats.Tracks)
	}
}

// TestCompoundCostsOneVerdictPerCluster pins the coarse-then-refine
// budget discipline via gpu.Meter deltas: a compound temporal plan
// touching one dominant cluster with several class leaves pays exactly
// one GT verdict for it, and a second plan re-using the cluster pays
// nothing (the engine's verdict cache).
func TestCompoundCostsOneVerdictPerCluster(t *testing.T) {
	var meter gpu.Meter
	ix, gtFn := buildIndex(t, 2, crossingSpecs())
	e := newEngine(t, ix, gtFn, &meter)

	before := meter.Snapshot()
	res := executeAt(t, e, "car & !bus & dur(4)", 0)
	after := meter.Snapshot()
	// dur(4) keeps tracks 0 and 1; their dominant clusters (0 and 2) each
	// take one verdict resolving both the car and bus leaves at once.
	wantOps := int64(res.Stats.GTInferences)
	if got := after.QueryOps - before.QueryOps; got != wantOps || wantOps != 2 {
		t.Errorf("meter verdicts = %d (stats %d), want 2: one per dominant cluster, not per leaf",
			got, res.Stats.GTInferences)
	}

	// A different compound plan over the same clusters: all verdicts are
	// cache hits, zero new GPU time.
	res2 := executeAt(t, e, "(car | person) & dur(4)", 0)
	final := meter.Snapshot()
	if got := final.QueryOps - after.QueryOps; got != 0 {
		t.Errorf("re-using verified clusters cost %d verdicts, want 0", got)
	}
	if res2.Stats.GTInferences != 0 {
		t.Errorf("stats charged %d inferences on a fully cached plan", res2.Stats.GTInferences)
	}
	if len(res2.Items) != 2 {
		t.Errorf("cached plan matched %v, want tracks 0 and 1", trackIDs(res2.Items))
	}
}

// TestIndexRejectionIsFree verifies the other half of the budget
// discipline: a class leaf whose dominant cluster does not index the
// class within Kx resolves False with no GT verdict at all.
func TestIndexRejectionIsFree(t *testing.T) {
	var meter gpu.Meter
	ix, gtFn := buildIndex(t, 2, crossingSpecs())
	e := newEngine(t, ix, gtFn, &meter)
	// person & vel(30): the movers' dominant clusters do not index
	// person, so both tracks die on index standing alone; the loiterer
	// fails vel(30) before any class leaf is consulted.
	res := executeAt(t, e, "person & vel(30)", 0)
	if len(res.Items) != 0 {
		t.Errorf("matched %v, want none", trackIDs(res.Items))
	}
	if got := meter.Snapshot().QueryOps; got != 0 {
		t.Errorf("index-rejected plan paid %d verdicts, want 0", got)
	}
}

// TestPagedEqualsOneShot drives the cursor page by page (page size 1 —
// every page boundary splits the remaining population mid-stream) and
// checks the concatenation is bit-identical to the one-shot ranking.
func TestPagedEqualsOneShot(t *testing.T) {
	ix, gtFn := buildIndex(t, 2, crossingSpecs())
	e := newEngine(t, ix, gtFn, nil)
	p := compile(t, "(car | person | bus) & dur(0)")

	oneShot, err := track.Execute(p, targetsAt(e, 0), track.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(oneShot.Items) == 0 {
		t.Fatal("one-shot returned nothing; fixture broken")
	}

	cur, err := track.NewCursor(p, targetsAt(e, 0), track.Options{StepClusters: 1})
	if err != nil {
		t.Fatal(err)
	}
	var paged []track.Item
	for !cur.Done() {
		page, err := cur.Next(1)
		if err != nil {
			t.Fatal(err)
		}
		paged = append(paged, page...)
	}
	if !reflect.DeepEqual(paged, oneShot.Items) {
		t.Errorf("paged ranking differs from one-shot:\n  paged   %v\n  oneshot %v", paged, oneShot.Items)
	}
	// Ranking is in RankBefore order.
	for i := 1; i < len(oneShot.Items); i++ {
		if track.RankBefore(oneShot.Items[i], oneShot.Items[i-1]) {
			t.Errorf("items %d and %d out of order", i-1, i)
		}
	}
}

// TestCompileErrors pins the compile-time validation of temporal
// expressions.
func TestCompileErrors(t *testing.T) {
	bad := []string{
		"car",                          // no temporal operator
		"seq(car, region(0,0,9,9))",    // class leaf in matcher position
		"seq(dur(1), region(0,0,9,9))", // dur in matcher position
		"within(5, vel(1))",            // vel in matcher position
		"region(9,0,0,9)",              // degenerate region
		"region(0,9,9,9)",              // degenerate region
		"dur(5,1)",                     // max below min
		"vel(5,1)",                     // max below min
		"car & dur(0) & warp_drive & region(0,0,9,9)", // unknown class
	}
	for _, expr := range bad {
		ast, err := plan.Parse(expr)
		if err != nil {
			t.Errorf("Parse(%q) failed: %v", expr, err)
			continue
		}
		if _, err := track.Compile(ast, resolver); err == nil {
			t.Errorf("Compile(%q) accepted", expr)
		}
	}
	if _, err := track.Compile(nil, resolver); err == nil {
		t.Error("nil expression accepted")
	}
}
