package router

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func twoShards() *ShardMap {
	return &ShardMap{Shards: []ShardSpec{
		{Name: "shard-0", URL: "http://a"},
		{Name: "shard-1", URL: "http://b"},
	}}
}

func TestShardMapValidate(t *testing.T) {
	cases := []struct {
		name string
		m    ShardMap
		ok   bool
	}{
		{"empty", ShardMap{}, false},
		{"dup name", ShardMap{Shards: []ShardSpec{{Name: "s", URL: "http://a"}, {Name: "s", URL: "http://b"}}}, false},
		{"dup url", ShardMap{Shards: []ShardSpec{{Name: "a", URL: "http://x"}, {Name: "b", URL: "http://x"}}}, false},
		{"missing url", ShardMap{Shards: []ShardSpec{{Name: "a"}}}, false},
		{"bad pin", ShardMap{Shards: []ShardSpec{{Name: "a", URL: "http://x"}}, Pins: map[string]string{"st": "nope"}}, false},
		{"ok", ShardMap{Shards: []ShardSpec{{Name: "a", URL: "http://x"}}, Pins: map[string]string{"st": "a"}}, true},
	}
	for _, c := range cases {
		if err := c.m.Validate(); (err == nil) != c.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", c.name, err, c.ok)
		}
	}
}

func TestAssignIsDeterministicAndTotal(t *testing.T) {
	m := twoShards()
	streams := []string{"auburn_c", "jacksonh", "city_a_d", "bend", "msnbc", "oxford"}
	first := m.Assignment(streams)
	for i := 0; i < 10; i++ {
		if got := m.Assignment(streams); !reflect.DeepEqual(got, first) {
			t.Fatalf("assignment changed between calls: %v vs %v", got, first)
		}
	}
	for st, shard := range first {
		if _, ok := m.Shard(shard); !ok {
			t.Fatalf("stream %q assigned to unknown shard %q", st, shard)
		}
	}
}

func TestPinsOverrideHash(t *testing.T) {
	m := twoShards()
	hashed := m.Assign("auburn_c").Name
	other := "shard-0"
	if hashed == "shard-0" {
		other = "shard-1"
	}
	m.Pins = map[string]string{"auburn_c": other}
	if got := m.Assign("auburn_c").Name; got != other {
		t.Fatalf("pin ignored: got %q, want %q", got, other)
	}
}

// Rendezvous hashing's point: removing one shard reassigns only the
// streams that shard owned; everything else stays put.
func TestRendezvousStabilityUnderShardRemoval(t *testing.T) {
	full := &ShardMap{Shards: []ShardSpec{
		{Name: "shard-0", URL: "http://a"},
		{Name: "shard-1", URL: "http://b"},
		{Name: "shard-2", URL: "http://c"},
	}}
	streams := []string{"auburn_c", "jacksonh", "city_a_d", "bend", "msnbc", "oxford", "sittard", "coral"}
	before := full.Assignment(streams)
	reduced := &ShardMap{Shards: []ShardSpec{full.Shards[0], full.Shards[2]}}
	after := reduced.Assignment(streams)
	for _, st := range streams {
		if before[st] != "shard-1" && after[st] != before[st] {
			t.Errorf("stream %q moved from %q to %q although its shard survived", st, before[st], after[st])
		}
		if before[st] == "shard-1" && after[st] == "shard-1" {
			t.Errorf("stream %q still assigned to removed shard", st)
		}
	}
}

func TestLoadShardMap(t *testing.T) {
	path := filepath.Join(t.TempDir(), "map.json")
	body := `{
	  "shards": [
	    {"name": "shard-0", "url": "http://127.0.0.1:7071"},
	    {"name": "shard-1", "url": "http://127.0.0.1:7072"}
	  ],
	  "pins": {"auburn_c": "shard-1"}
	}`
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := LoadShardMap(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Assign("auburn_c").Name; got != "shard-1" {
		t.Fatalf("pinned stream assigned to %q", got)
	}
	if _, err := LoadShardMap(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("expected error for a missing file")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte(`{"shards": []}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadShardMap(bad); err == nil {
		t.Fatal("expected validation error for an empty roster")
	}
}

func TestStreamsFor(t *testing.T) {
	m := twoShards()
	streams := []string{"auburn_c", "jacksonh", "city_a_d", "bend"}
	total := 0
	for _, sh := range m.Shards {
		total += len(m.StreamsFor(sh.Name, streams))
	}
	if total != len(streams) {
		t.Fatalf("per-shard stream lists cover %d of %d streams", total, len(streams))
	}
}
