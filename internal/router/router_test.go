package router_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"
	"time"

	"focus"
	"focus/api"
	"focus/client"
	"focus/internal/loadgen"
	"focus/internal/router"
	"focus/internal/serve"
)

// testShard is one in-process shard: its own focus.System and serve.Server
// behind a real loopback listener — the process topology the router fronts
// in production, minus the process boundary.
type testShard struct {
	name string
	sys  *focus.System
	srv  *serve.Server
	http *httptest.Server
	// brk fronts the shard's handler; the crash-matrix tests sever it to
	// model the shard process dying. Passes through when healthy.
	brk *breaker
}

// testCluster boots shards (one per entry of placement, each owning that
// entry's streams), a router over them, and — when withRef — a reference
// focus.System holding every stream, tuned identically and ingested to the
// full window, the oracle the bit-identity assertions replay against.
type testCluster struct {
	t       *testing.T
	shards  []*testShard
	rt      *router.Router
	http    *httptest.Server
	cli     *client.Client
	ref     *focus.System
	streams []string
}

func focusConfig() focus.Config {
	return focus.Config{
		Seed:        1,
		Targets:     focus.Targets{Recall: 0.7, Precision: 0.7},
		TuneOptions: serve.QuickTuneOptions(),
	}
}

func bootTestCluster(t *testing.T, placement [][]string, scfg serve.Config, withRef bool) *testCluster {
	t.Helper()
	if scfg.Window.DurationSec <= 0 {
		scfg.Window = focus.GenOptions{DurationSec: 60, SampleEvery: 1}
	}
	if scfg.TuneWindow.DurationSec <= 0 {
		scfg.TuneWindow = focus.GenOptions{DurationSec: 30, SampleEvery: 1}
	}
	c := &testCluster{t: t}
	smap := &router.ShardMap{Pins: map[string]string{}}
	for i, streams := range placement {
		sys, err := focus.New(focusConfig())
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { sys.Close() })
		for _, st := range streams {
			if _, err := sys.AddTable1Stream(st); err != nil {
				t.Fatal(err)
			}
			c.streams = append(c.streams, st)
		}
		srv := serve.New(sys, scfg)
		brk := &breaker{h: srv.Handler()}
		ts := httptest.NewServer(brk)
		t.Cleanup(ts.Close)
		sh := &testShard{name: fmt.Sprintf("shard-%d", i), sys: sys, srv: srv, http: ts, brk: brk}
		c.shards = append(c.shards, sh)
		smap.Shards = append(smap.Shards, router.ShardSpec{Name: sh.name, URL: ts.URL})
		for _, st := range streams {
			smap.Pins[st] = sh.name
		}
	}

	// Boot shards (and the reference, when asked) concurrently: every
	// system tunes per stream, which dominates the fixture cost.
	var wg sync.WaitGroup
	errs := make([]error, len(c.shards)+1)
	for i, sh := range c.shards {
		wg.Add(1)
		go func(i int, sh *testShard) {
			defer wg.Done()
			if err := sh.srv.Start(); err != nil {
				errs[i] = err
				return
			}
			c.t.Cleanup(sh.srv.Stop)
		}(i, sh)
	}
	if withRef {
		ref, err := focus.New(focusConfig())
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { ref.Close() })
		for _, st := range c.streams {
			if _, err := ref.AddTable1Stream(st); err != nil {
				t.Fatal(err)
			}
		}
		c.ref = ref
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, sess := range ref.Sessions() {
				if err := sess.Tune(scfg.TuneWindow); err != nil {
					errs[len(errs)-1] = err
					return
				}
			}
			errs[len(errs)-1] = ref.IngestAll(scfg.Window)
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	rt, err := router.New(router.Config{Map: smap, Refresh: 100 * time.Millisecond, Timeout: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Stop)
	c.rt = rt
	c.http = httptest.NewServer(rt.Handler())
	t.Cleanup(c.http.Close)
	// Zero retries: tests must see raw overload/draining outcomes.
	c.cli = client.New(c.http.URL, client.WithRetries(0, 0))
	return c
}

// queryV1 issues one typed v1 request through the router.
func (c *testCluster) queryV1(req *api.QueryRequest) (*api.QueryResponse, error) {
	return c.cli.Query(context.Background(), req)
}

// advance moves one shard stream's watermark (NoBackgroundIngest fixtures).
func (c *testCluster) advance(stream string, toSec float64) {
	c.t.Helper()
	for _, sh := range c.shards {
		if sess := sh.sys.Session(stream); sess != nil {
			if _, err := sess.AdvanceLive(toSec); err != nil {
				c.t.Fatal(err)
			}
			return
		}
	}
	c.t.Fatalf("stream %q not on any shard", stream)
}

// getQuery hits the deprecated GET /query shim, decoding the legacy
// payload when 2xx.
func (c *testCluster) getQuery(params string) (*serve.QueryResponse, *http.Response) {
	c.t.Helper()
	resp, err := http.Get(c.http.URL + "/query?" + params)
	if err != nil {
		c.t.Fatal(err)
	}
	defer resp.Body.Close()
	var qr serve.QueryResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
			c.t.Fatal(err)
		}
	}
	return &qr, resp
}

// postPlan hits the deprecated POST /plan shim.
func (c *testCluster) postPlan(req map[string]any) (*serve.PlanResponse, *http.Response) {
	c.t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(c.http.URL+"/plan", "application/json", bytes.NewReader(body))
	if err != nil {
		c.t.Fatal(err)
	}
	defer resp.Body.Close()
	var pr serve.PlanResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
			c.t.Fatal(err)
		}
	}
	return &pr, resp
}

// waitShardState polls the router's view until the named shard reaches the
// wanted state.
func (c *testCluster) waitShardState(shard, state string) {
	c.t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		for _, ss := range c.rt.Snapshot().Shards {
			if ss.Name == shard && ss.State == state {
				return
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	c.t.Fatalf("shard %s never reached state %s: %+v", shard, state, c.rt.Snapshot().Shards)
}

// TestRoutedAnswersMatchDirect is the acceptance pin for the scatter-gather
// contract: with uneven shard sizes and uneven per-stream watermarks, every
// routed /query and /plan answer must be bit-identical to a direct
// execution on one focus.System holding all streams, pinned to the merged
// watermark vector the response reports.
func TestRoutedAnswersMatchDirect(t *testing.T) {
	if testing.Short() {
		t.Skip("boots a 2-shard cluster plus a reference system")
	}
	c := bootTestCluster(t,
		[][]string{{"auburn_c", "jacksonh"}, {"city_a_d"}},
		serve.Config{NoBackgroundIngest: true},
		true)
	// Uneven vector: nothing aligns across shards or streams.
	c.advance("auburn_c", 20)
	c.advance("jacksonh", 35)
	c.advance("city_a_d", 50)

	verify := loadgen.NewDirectVerifier(c.ref)
	for _, req := range []*api.QueryRequest{
		{Expr: "car"},
		{Expr: "person"},
		{Expr: "bus"},
		{Expr: "car", Streams: []string{"auburn_c", "city_a_d"}}, // spans both shards
		{Expr: "car", Streams: []string{"jacksonh"}},             // single shard
		{Expr: "person", Kx: 2},
		{Expr: "car", Start: 5, End: 30},
		// pinned below the snapshot
		{Expr: "car", At: api.WatermarkVector{"auburn_c": 10, "jacksonh": 35, "city_a_d": 25}},
	} {
		qr, err := c.queryV1(req)
		if err != nil {
			t.Fatalf("v1 query %+v: %v", req, err)
		}
		if qr.Form != api.FormFrames {
			t.Fatalf("v1 query %+v answered in %q form", req, qr.Form)
		}
		if err := verify(qr); err != nil {
			t.Errorf("routed v1 query %+v diverges from direct execution: %v", req, err)
		}
	}

	verifyPlan := loadgen.NewDirectPlanVerifier(c.ref)
	for _, req := range []*api.QueryRequest{
		{Expr: "car & person"},
		{Expr: "car & person & !bus", TopK: 7},
		{Expr: "(car | truck) & person", TopK: 5, Kx: 2},
		// One-leaf plan forced into the ranked form.
		{Expr: "car", Streams: []string{"auburn_c", "city_a_d"}, Form: api.FormRanked},
	} {
		pr, err := c.queryV1(req)
		if err != nil {
			t.Fatalf("v1 ranked query %+v: %v", req, err)
		}
		if pr.Form != api.FormRanked {
			t.Fatalf("v1 ranked query %+v answered in %q form", req, pr.Form)
		}
		if err := verifyPlan(pr); err != nil {
			t.Errorf("routed v1 plan %+v diverges from direct execution: %v", req, err)
		}
	}

	// The legacy shims must agree with the v1 surface answer for answer:
	// the same one-leaf query through GET /query, and the same compound
	// through POST /plan, both carrying the Deprecation marker.
	v1car, err := c.queryV1(&api.QueryRequest{Expr: "car", At: api.WatermarkVector{"auburn_c": 20, "jacksonh": 35, "city_a_d": 50}})
	if err != nil {
		t.Fatal(err)
	}
	legacyCar, resp := c.getQuery("class=car&at=auburn_c@20,jacksonh@35,city_a_d@50")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("legacy /query: status %d", resp.StatusCode)
	}
	if resp.Header.Get(api.DeprecationHeader) != "true" {
		t.Error("legacy /query response missing the Deprecation header")
	}
	if legacyCar.TotalFrames != v1car.TotalFrames || !reflect.DeepEqual(legacyCar.Streams, v1car.Streams) {
		t.Errorf("legacy shim diverges from v1: %d frames vs %d", legacyCar.TotalFrames, v1car.TotalFrames)
	}

	// Cursor paging through the router: pages at the pinned vector must
	// concatenate to exactly the one-shot ranking at that vector — and the
	// assembled read must verify against the reference system.
	oneShot, err := c.queryV1(&api.QueryRequest{Expr: "car & person", TopK: 9})
	if err != nil {
		t.Fatal(err)
	}
	assembled, err := c.cli.CollectPages(context.Background(),
		&api.QueryRequest{Expr: "car & person", TopK: 9}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(assembled.Watermarks, oneShot.Watermarks) {
		t.Fatalf("paged read pinned %v, one-shot %v", assembled.Watermarks, oneShot.Watermarks)
	}
	if !reflect.DeepEqual(assembled.Items, oneShot.Items) {
		t.Fatalf("cursor pages diverge from one-shot:\npaged: %+v\nfull:  %+v", assembled.Items, oneShot.Items)
	}
	if err := verifyPlan(assembled); err != nil {
		t.Errorf("assembled cursor read diverges from direct execution: %v", err)
	}

	// Legacy limit/offset paging (the shim) must slice the same merged
	// ranking.
	full, resp := c.postPlan(map[string]any{"expr": "car & person", "top_k": 9})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("unpaged plan: status %d", resp.StatusCode)
	}
	if resp.Header.Get(api.DeprecationHeader) != "true" {
		t.Error("legacy /plan response missing the Deprecation header")
	}
	var paged []serve.PlanItem
	for offset := 0; ; offset += 2 {
		page, resp := c.postPlan(map[string]any{
			"expr": "car & person", "top_k": 9, "limit": 2, "offset": offset,
			"at_watermarks": full.Watermarks,
		})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("page at offset %d: status %d", offset, resp.StatusCode)
		}
		if len(page.Items) == 0 {
			break
		}
		paged = append(paged, page.Items...)
	}
	if !reflect.DeepEqual(paged, full.Items) {
		t.Fatalf("paged items diverge from one-shot:\npaged: %+v\nfull:  %+v", paged, full.Items)
	}

	// Legacy traffic shows up in the migration gauge.
	if got := c.rt.Snapshot().LegacyRequests; got == 0 {
		t.Error("router legacy_requests counter never moved")
	}
}

// TestRoutedPinnedVectorStableUnderLiveIngest hammers one pinned-vector
// query from many goroutines while every shard's background ingester races
// ahead: all responses must agree on every answer field, and match the
// direct execution. (Cost counters legitimately vary — concurrent cache
// misses execute with warmer GT verdict caches.) Run under -race this also
// covers the router's poller/handler concurrency against live shards.
func TestRoutedPinnedVectorStableUnderLiveIngest(t *testing.T) {
	if testing.Short() {
		t.Skip("boots a live-ingesting 2-shard cluster plus a reference system")
	}
	c := bootTestCluster(t,
		[][]string{{"auburn_c"}, {"jacksonh", "city_a_d"}},
		serve.Config{
			Window:         focus.GenOptions{DurationSec: 90, SampleEvery: 1},
			ChunkSec:       2,
			IngestInterval: 20 * time.Millisecond,
		},
		true)

	// Wait until every stream has sealed past the pin while ingest keeps
	// racing toward the 90s window.
	pin := 10.0
	deadline := time.Now().Add(30 * time.Second)
	for {
		minWM := -1.0
		for _, sh := range c.shards {
			for _, sess := range sh.sys.Sessions() {
				if wm := sess.Watermark(); minWM < 0 || wm < minWM {
					minWM = wm
				}
			}
		}
		if minWM >= pin {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("watermarks never reached %g", pin)
		}
		time.Sleep(20 * time.Millisecond)
	}

	pinReq := &api.QueryRequest{Expr: "car",
		At: api.WatermarkVector{"auburn_c": 10, "jacksonh": 10, "city_a_d": 10}}
	verify := loadgen.NewDirectVerifier(c.ref)
	answers := make([]*api.QueryResponse, 24)
	var wg sync.WaitGroup
	errCh := make(chan error, len(answers))
	for i := range answers {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			qr, err := c.queryV1(pinReq)
			if err != nil {
				errCh <- err
				return
			}
			answers[i] = qr
		}(i)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	first := answerFields(answers[0])
	for i, qr := range answers {
		if got := answerFields(qr); !reflect.DeepEqual(got, first) {
			t.Fatalf("pinned-vector answer %d diverged:\n%+v\nvs\n%+v", i, got, first)
		}
	}
	if err := verify(answers[0]); err != nil {
		t.Fatalf("pinned routed answer diverges from direct execution: %v", err)
	}
}

// answerFields projects a response onto its answer (not cost) fields.
func answerFields(qr *api.QueryResponse) map[string]any {
	out := map[string]any{"total": qr.TotalFrames}
	for name, sr := range qr.Streams {
		out[name] = []any{sr.Watermark, sr.Frames, sr.Segments,
			sr.ExaminedClusters, sr.MatchedClusters, sr.ViaOther}
	}
	return out
}

// TestRouterPartialFailure pins the all-or-nothing semantics: a query
// touching a draining or down shard fails with an explicit, attributed
// 503 — never a silently partial answer — while queries confined to
// healthy shards keep working.
func TestRouterPartialFailure(t *testing.T) {
	if testing.Short() {
		t.Skip("boots a 2-shard cluster")
	}
	c := bootTestCluster(t,
		[][]string{{"auburn_c"}, {"jacksonh"}},
		serve.Config{
			Window:             focus.GenOptions{DurationSec: 40, SampleEvery: 1},
			TuneWindow:         focus.GenOptions{DurationSec: 20, SampleEvery: 1},
			NoBackgroundIngest: true,
		},
		false)
	c.advance("auburn_c", 20)
	c.advance("jacksonh", 20)

	if _, resp := c.getQuery("class=car"); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthy cluster query: status %d", resp.StatusCode)
	}

	// Drain shard-1 through its admin endpoint, as an operator would.
	dresp, err := http.Post(c.shards[1].http.URL+"/drain", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	c.waitShardState("shard-1", router.StateDraining)

	_, resp := c.getQuery("class=car") // touches both shards
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("query touching a draining shard: status %d, want 503", resp.StatusCode)
	}
	if got := resp.Header.Get(serve.DrainingHeader); got != "shard-1" {
		t.Fatalf("draining 503 should name the shard, got header %q", got)
	}
	// The v1 surface reports the same failure as a structured error code
	// naming the shard — no header sniffing.
	if _, err := c.queryV1(&api.QueryRequest{Expr: "car"}); !api.IsCode(err, api.CodeDraining) {
		t.Fatalf("v1 query touching a draining shard: %v, want code draining", err)
	} else if err.(*api.Error).Shard != "shard-1" {
		t.Fatalf("v1 draining error names shard %q, want shard-1", err.(*api.Error).Shard)
	}
	if _, resp := c.getQuery("class=car&streams=auburn_c"); resp.StatusCode != http.StatusOK {
		t.Fatalf("query on the healthy shard during drain: status %d", resp.StatusCode)
	}
	healthyOnly, err := c.queryV1(&api.QueryRequest{Expr: "car", Streams: []string{"auburn_c"}})
	if err != nil {
		t.Fatalf("v1 query on the healthy shard during drain: %v", err)
	}
	if healthyOnly.Partial != nil {
		t.Fatal("complete answer carries a partial marker")
	}

	// allow_partial opts into the degraded answer: the healthy shard's
	// merged result, explicitly marked with what is missing — and
	// bit-identical to the same query asked of the healthy subset alone.
	partial, err := c.queryV1(&api.QueryRequest{Expr: "car", AllowPartial: true})
	if err != nil {
		t.Fatalf("allow_partial query during drain: %v", err)
	}
	if partial.Partial == nil {
		t.Fatal("allow_partial answer with a drained shard carries no partial marker")
	}
	if !reflect.DeepEqual(partial.Partial.MissingShards, []string{"shard-1"}) ||
		!reflect.DeepEqual(partial.Partial.MissingStreams, []string{"jacksonh"}) {
		t.Fatalf("partial marker = %+v, want shard-1/jacksonh", partial.Partial)
	}
	if _, ok := partial.Watermarks["jacksonh"]; ok {
		t.Fatal("partial answer's watermark vector covers a missing stream")
	}
	if !reflect.DeepEqual(partial.Streams, healthyOnly.Streams) ||
		partial.TotalFrames != healthyOnly.TotalFrames {
		t.Fatalf("partial answer diverges from the healthy-subset execution:\npartial: %+v\nsubset:  %+v",
			partial.Streams, healthyOnly.Streams)
	}
	if _, presp := c.postPlan(map[string]any{"expr": "car & person"}); presp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("plan touching a draining shard: status %d, want 503", presp.StatusCode)
	}

	// Degraded but alive: the router keeps serving what it can.
	hresp, err := http.Get(c.http.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Status string            `json:"status"`
		Shards map[string]string `json:"shards"`
	}
	if err := json.NewDecoder(hresp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK || health.Status != "degraded" {
		t.Fatalf("healthz during drain: status %d body %+v, want 200/degraded", hresp.StatusCode, health)
	}

	// Kill shard-0 outright: ownership is sticky, so its streams fail with
	// "down", not "unknown stream".
	c.shards[0].http.Close()
	c.waitShardState("shard-0", router.StateDown)
	_, resp = c.getQuery("class=car&streams=auburn_c")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("query on a down shard: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get(serve.DrainingHeader) != "" {
		t.Fatal("down-shard 503 must not carry the draining marker")
	}
	if _, err := c.queryV1(&api.QueryRequest{Expr: "car", Streams: []string{"auburn_c"}}); !api.IsCode(err, api.CodeShardDown) {
		t.Fatalf("v1 query on a down shard: %v, want code shard_down", err)
	}

	// No healthy shard left at all.
	hresp, err = http.Get(c.http.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz with no healthy shards: status %d, want 503", hresp.StatusCode)
	}

	if _, resp := c.getQuery("class=car&streams=nosuch"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown stream: status %d, want 400", resp.StatusCode)
	}
}

// TestRouterStartRequiresShards pins the boot contract: discovery must
// reach every shard.
func TestRouterStartRequiresShards(t *testing.T) {
	rt, err := router.New(router.Config{
		Map: &router.ShardMap{Shards: []router.ShardSpec{
			{Name: "shard-0", URL: "http://127.0.0.1:1"}, // nothing listens here
		}},
		Refresh: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Start(); err == nil {
		rt.Stop()
		t.Fatal("Start succeeded with an unreachable shard")
	}
}
