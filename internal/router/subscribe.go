package router

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"sort"

	"focus/api"
	"focus/client"
)

// This file is the router's POST /v1/subscribe: a routed standing query
// fans out into one per-shard subscription leg per owning shard, and the
// legs' delta streams merge back into a single SSE stream whose deltas
// compose — exactly like the single-node contract — to the routed one-shot
// answer at every emitted vector. Streams are disjoint across shards, so
// each leg's delta is already a correct edit script for its slice of the
// merged answer; the router's job is bookkeeping, not re-ranking: it
// re-stamps every leg delta onto the merged watermark vector (From = the
// vector before, To = the vector with the leg's advance folded in) and
// keeps the running answer-size total. Reassembly via api.ApplyDeltaItems
// keeps the merged state in ItemRankBefore order because application is a
// rank-ordered merge — that is the "RankBefore lockstep" that makes the
// union of per-shard rankings bit-identical to a single node's ranking.
//
// Scope: routed subscriptions reject top_k and early-exit mode. A global
// top K is not a function of per-shard top-K delta streams (an item
// leaving the global top K is invisible to the shard that still ranks it),
// and early exit only exists to serve a top K cheaply. Unbounded standing
// queries lose nothing: the client truncates its reassembled ranking at
// read time.

// routedLegEvent is one shard leg's next outcome, tagged with its index.
type routedLegEvent struct {
	leg   int
	delta *api.Delta
	// reason is the leg's terminal bye reason; set when the leg ended
	// deliberately.
	reason string
	// err is a terminal leg failure (reconnects exhausted, protocol
	// violation); the routed subscription cannot continue past it.
	err error
}

// validateRoutedSubscription rejects request shapes the router cannot
// serve before any shard is contacted. Expression errors are left to the
// legs: shards own plan compilation, and their typed rejections pass
// through verbatim.
func validateRoutedSubscription(req *api.SubscribeRequest) *api.Error {
	if req.Expr == "" {
		return api.Errorf(api.CodeBadRequest, "missing required field: expr")
	}
	if req.TopK < 0 || req.Kx < 0 || req.MaxClusters < 0 || req.Start < 0 || req.End < 0 {
		return api.Errorf(api.CodeBadRequest, "negative query parameter")
	}
	if req.Form == api.FormFrames {
		return api.Errorf(api.CodeBadRequest,
			"subscriptions answer in the ranked or tracks form, not frames")
	}
	if req.TopK > 0 {
		return api.Errorf(api.CodeBadRequest,
			"routed subscriptions do not support top_k: a global top-K is not reconstructible from per-shard delta streams; subscribe unbounded and truncate client-side")
	}
	if req.Mode != "" {
		return api.Errorf(api.CodeBadRequest,
			"routed subscriptions are exact-mode only; omit mode (%q serves a top-K, which routed subscriptions reject)", api.ModeEarlyExit)
	}
	return nil
}

// mergedSubscribeHello combines the legs' hello frames into the routed
// subscription's echo. Every shard resolved the same request, so all
// fields but the stream list must agree — disagreement means mixed shard
// versions and fails loudly, exactly like the query-path merge.
func mergedSubscribeHello(legs []*client.Subscriber, streams []string) (*api.SubscribeHello, *api.Error) {
	out := *legs[0].Hello()
	for _, leg := range legs[1:] {
		h := leg.Hello()
		if h.Expr != out.Expr || h.Form != out.Form || h.TopK != out.TopK || h.Kx != out.Kx ||
			h.Start != out.Start || h.End != out.End || h.MaxClusters != out.MaxClusters || h.Mode != out.Mode {
			return nil, api.Errorf(api.CodeUnavailable,
				"shards disagree on the resolved subscription — mixed shard versions?")
		}
	}
	out.Streams = append([]string(nil), streams...)
	return &out, nil
}

// handleV1Subscribe is the router's POST /v1/subscribe. Errors before the
// hello frame are ordinary typed JSON; after it, the SSE stream is the
// contract: deltas as shards advance, a bye when every leg completes (or
// any leg drains), and a drop with reason shard_lost — resumable at the
// drop's vector — when a leg fails terminally.
func (r *Router) handleV1Subscribe(w http.ResponseWriter, req *http.Request) {
	if !r.ready.Load() {
		writeJSON(w, http.StatusServiceUnavailable, api.Envelope{Err: api.Errorf(api.CodeNotReady, "router not ready")})
		return
	}
	if req.Method != http.MethodPost {
		r.clientErrs.Add(1)
		writeJSON(w, http.StatusMethodNotAllowed, api.Envelope{
			Err: api.Errorf(api.CodeBadRequest, "POST a JSON body to %s", api.PathSubscribe)})
		return
	}
	var sreq api.SubscribeRequest
	if err := json.NewDecoder(req.Body).Decode(&sreq); err != nil {
		r.writeV1Error(w, api.Errorf(api.CodeBadRequest, "bad %s body: %v", api.PathSubscribe, err))
		return
	}
	if aerr := validateRoutedSubscription(&sreq); aerr != nil {
		r.writeV1Error(w, aerr)
		return
	}
	// Subscriptions are all-or-nothing: a partial delta stream would be a
	// wrong delta stream, so every owning shard must be routable.
	groups, _, aerr := r.groupByShard(api.NormalizeStreams(sreq.Streams), false)
	if aerr != nil {
		r.writeV1Error(w, aerr)
		return
	}
	resolved := make([]string, 0, len(groups))
	for _, g := range groups {
		resolved = append(resolved, g.streams...)
	}
	sort.Strings(resolved)
	if aerr := validateResumeVector(sreq.From, resolved); aerr != nil {
		r.writeV1Error(w, aerr)
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		r.writeV1Error(w, api.Errorf(api.CodeInternal, "response writer cannot stream"))
		return
	}

	// Open one leg per shard. Legs use the client's Subscriber so shard
	// blips heal transparently (reconnect with From at the leg's delivered
	// vector); the deliberately un-timeouted default transport is what a
	// long-lived SSE leg needs.
	ctx := req.Context()
	legs := make([]*client.Subscriber, len(groups))
	closeLegs := func() {
		for _, leg := range legs {
			if leg != nil {
				leg.Close()
			}
		}
	}
	for i, g := range groups {
		lreq := sreq
		lreq.Streams = g.streams
		lreq.From = subVector(sreq.From, g.streams)
		// Terminal moves: a leg points at one shard, so when that shard
		// hands a stream off the leg cannot re-resolve the new owner by
		// reconnecting — the moved bye must surface here and propagate to
		// the client, whose own reconnect re-resolves through the router.
		leg, err := client.New(g.spec.URL, client.WithTerminalMoves()).Subscribe(ctx, &lreq)
		if err != nil {
			closeLegs()
			var typed *api.Error
			if errors.As(err, &typed) {
				out := *typed
				out.Shard = g.spec.Name
				r.writeV1Error(w, &out)
				return
			}
			e := api.Errorf(api.CodeShardDown, "shard %q subscription failed: %v", g.spec.Name, err)
			e.Shard = g.spec.Name
			r.writeV1Error(w, e)
			return
		}
		legs[i] = leg
	}
	defer closeLegs()
	hello, aerr := mergedSubscribeHello(legs, resolved)
	if aerr != nil {
		r.upstreamErrs.Add(1)
		r.writeV1Error(w, aerr)
		return
	}

	r.subs.Add(1)
	r.subsActive.Add(1)
	defer r.subsActive.Add(-1)
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-store")
	if writeSSEFrame(w, flusher, &api.SubscribeEvent{V: api.SSEVersion, Type: api.EventHello, Hello: hello}) != nil {
		return
	}

	// Pump every leg into one channel. The done channel unblocks pumps
	// when the handler returns early (client gone, leg failure): Close on
	// a leg forces its pending Recv to error, and the pump's send then
	// falls through to done instead of leaking. Each pump holds after its
	// first delta — the leg's opening catch-up — until the merge loop has
	// barriered on every leg's opening, so no leg can race a second delta
	// into the barrier.
	events := make(chan routedLegEvent)
	done := make(chan struct{})
	barrierDone := make(chan struct{})
	defer close(done)
	for i, leg := range legs {
		go func(i int, leg *client.Subscriber) {
			first := true
			for {
				ev := routedLegEvent{leg: i}
				d, err := leg.Recv()
				switch {
				case err == nil:
					ev.delta = d
				case errors.Is(err, io.EOF):
					ev.reason = leg.Reason()
				default:
					ev.err = err
				}
				select {
				case events <- ev:
				case <-done:
					return
				}
				if ev.delta == nil {
					return
				}
				if first {
					first = false
					select {
					case <-barrierDone:
					case <-done:
						return
					}
				}
			}
		}(i, leg)
	}

	// The merged vector starts at the subscription's own starting point
	// and folds in each leg advance as it arrives; legTotal tracks each
	// leg's last declared answer size so every merged delta can state the
	// merged total exactly. Every leg's stream opens with a catch-up delta
	// (possibly empty), so the router barriers on one opening delta per
	// leg and folds them into a single merged catch-up — after which every
	// legTotal is authoritative and totals are exact even on a mid-stream
	// resume.
	vector := make(api.WatermarkVector, len(resolved))
	for _, name := range resolved {
		vector[name] = 0
	}
	for name, at := range sreq.From {
		vector[name] = at
	}
	legTotal := make([]int, len(groups))
	opening := make([]*api.Delta, len(groups))
	pendingLegs := len(groups)
	doneLegs := 0
	for {
		select {
		case <-ctx.Done():
			return
		case ev := <-events:
			switch {
			case ev.err != nil:
				// The leg is gone for good. Shed the subscription with an
				// honest resume point: everything written so far composes
				// to the answer at vector, so From=vector continues
				// gap-free once the shard is back.
				r.subDrops.Add(1)
				_ = writeSSEFrame(w, flusher, &api.SubscribeEvent{
					V: api.SSEVersion, Type: api.EventDrop,
					Reason: api.ReasonShardLost, Resume: vector.Clone()})
				return
			case ev.reason == api.ReasonComplete:
				doneLegs++
				if doneLegs == len(groups) {
					_ = writeSSEFrame(w, flusher, &api.SubscribeEvent{
						V: api.SSEVersion, Type: api.EventBye, Reason: api.ReasonComplete})
					return
				}
			case ev.reason != "":
				// A deliberate shutdown on one shard — draining, or a
				// stream handed off mid-reshard (moved) — ends the routed
				// subscription with that leg's typed reason: its deltas can
				// no longer cover the full stream set, and on moved the
				// client's reconnect re-resolves ownership through us.
				_ = writeSSEFrame(w, flusher, &api.SubscribeEvent{
					V: api.SSEVersion, Type: api.EventBye, Reason: ev.reason})
				return
			case pendingLegs > 0:
				// Barrier phase: each leg's first delta is its opening
				// catch-up. Hold them until every leg has stated its answer
				// size, then emit one merged catch-up delta.
				opening[ev.leg] = ev.delta
				legTotal[ev.leg] = ev.delta.TotalItems
				pendingLegs--
				if pendingLegs > 0 {
					continue
				}
				merged := &api.Delta{From: vector.Clone()}
				for _, d := range opening {
					for name, at := range d.To {
						vector[name] = at
					}
					merged.Items = append(merged.Items, d.Items...)
					merged.RemovedItems = append(merged.RemovedItems, d.RemovedItems...)
					merged.Tracks = append(merged.Tracks, d.Tracks...)
					merged.RemovedTracks = append(merged.RemovedTracks, d.RemovedTracks...)
					merged.GTInferences += d.GTInferences
					merged.GPUTimeMS += d.GPUTimeMS
					merged.TotalItems += d.TotalItems
				}
				merged.To = vector.Clone()
				sortDeltaEdits(merged)
				close(barrierDone)
				r.subDeltas.Add(1)
				if writeSSEFrame(w, flusher, &api.SubscribeEvent{
					V: api.SSEVersion, Type: api.EventDelta, Delta: merged}) != nil {
					return
				}
			default:
				d := ev.delta
				merged := &api.Delta{From: vector.Clone()}
				for name, at := range d.To {
					vector[name] = at
				}
				merged.To = vector.Clone()
				merged.Items, merged.RemovedItems = d.Items, d.RemovedItems
				merged.Tracks, merged.RemovedTracks = d.Tracks, d.RemovedTracks
				merged.GTInferences, merged.GPUTimeMS = d.GTInferences, d.GPUTimeMS
				legTotal[ev.leg] = d.TotalItems
				for _, n := range legTotal {
					merged.TotalItems += n
				}
				r.subDeltas.Add(1)
				if writeSSEFrame(w, flusher, &api.SubscribeEvent{
					V: api.SSEVersion, Type: api.EventDelta, Delta: merged}) != nil {
					return
				}
			}
		}
	}
}

// sortDeltaEdits restores rank order on a delta whose edit lists were
// concatenated from disjoint per-shard deltas. Each leg's lists are already
// rank-ordered, and streams are disjoint across shards, so sorting under
// the shared total order is exactly the RankBefore-lockstep merge.
func sortDeltaEdits(d *api.Delta) {
	sort.SliceStable(d.Items, func(i, j int) bool { return api.ItemRankBefore(d.Items[i], d.Items[j]) })
	sort.SliceStable(d.RemovedItems, func(i, j int) bool { return api.ItemRankBefore(d.RemovedItems[i], d.RemovedItems[j]) })
	sort.SliceStable(d.Tracks, func(i, j int) bool { return api.TrackRankBefore(d.Tracks[i], d.Tracks[j]) })
	sort.SliceStable(d.RemovedTracks, func(i, j int) bool { return api.TrackRankBefore(d.RemovedTracks[i], d.RemovedTracks[j]) })
}

// validateResumeVector mirrors the registry's rule on the router: a resume
// vector must cover exactly the subscription's resolved stream set, so
// each shard leg's slice covers exactly that leg's streams.
func validateResumeVector(from api.WatermarkVector, resolved []string) *api.Error {
	if len(from) == 0 {
		return nil
	}
	names := make(map[string]bool, len(resolved))
	for _, n := range resolved {
		if _, ok := from[n]; !ok {
			return api.Errorf(api.CodeBadRequest, "resume vector is missing stream %q", n)
		}
		names[n] = true
	}
	for n := range from {
		if !names[n] {
			return api.Errorf(api.CodeBadRequest, "resume vector pins stream %q, which is not among the subscription's streams", n)
		}
	}
	return nil
}

// writeSSEFrame emits one event as an SSE frame and flushes it; a write
// error means the client went away.
func writeSSEFrame(w http.ResponseWriter, f http.Flusher, ev *api.SubscribeEvent) error {
	frame, err := api.EncodeSSEFrame(ev)
	if err != nil {
		return err
	}
	if _, err := w.Write(frame); err != nil {
		return err
	}
	f.Flush()
	return nil
}
