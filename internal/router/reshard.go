package router

// This file is the router side of live resharding: POST /v1/admin/reshard
// takes a target shard map and transitions the cluster to it with zero
// downtime — every stream whose assignment changes is moved by the
// handoff protocol (internal/reshard) while queries, ingest, and
// subscriptions keep running, and the router's ownership table flips each
// stream atomically at its sealed watermark. Shard join and leave fall
// out of the same operation: a shard present only in the target map is
// health-gated into the roster and receives its rendezvous share; a shard
// absent from it drains by handing off every stream it owns and is then
// dropped from the roster.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"

	"focus/api"
	"focus/internal/reshard"
)

// adminToShardMap converts the wire form of a shard map to the router's.
func adminToShardMap(in api.AdminShardMap) *ShardMap {
	out := &ShardMap{Pins: in.Pins}
	for _, s := range in.Shards {
		out.Shards = append(out.Shards, ShardSpec{Name: s.Name, URL: s.URL})
	}
	return out
}

// planMoves diffs current stream ownership against the target map's
// assignment: every stream whose owner differs from its target becomes a
// planned move, in stream-name order (deterministic execution and
// output).
func (r *Router) planMoves(target *ShardMap) []reshard.Move {
	r.mu.RLock()
	defer r.mu.RUnlock()
	streams := make([]string, 0, len(r.owners))
	for st := range r.owners {
		streams = append(streams, st)
	}
	sort.Strings(streams)
	var moves []reshard.Move
	for _, st := range streams {
		cur := r.owners[st]
		want := target.Assign(st)
		if cur.shard == want.Name {
			continue
		}
		from, ok := r.shards[cur.shard]
		if !ok {
			continue
		}
		moves = append(moves, reshard.Move{
			Stream:  st,
			From:    cur.shard,
			To:      want.Name,
			FromURL: from.spec.URL,
			ToURL:   want.URL,
		})
	}
	return moves
}

// mergeRoster adds the target map's unknown shards to the live roster
// (down until polled) and returns their names, so a failed health gate
// can evict them again.
func (r *Router) mergeRoster(target *ShardMap) []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	var added []string
	for _, spec := range target.Shards {
		if _, ok := r.shards[spec.Name]; ok {
			continue
		}
		r.shards[spec.Name] = &shardState{spec: spec, state: StateDown, placementOK: true}
		added = append(added, spec.Name)
	}
	return added
}

// dropShards removes shards from the roster; used to roll a failed
// roster merge back and to retire departed shards that own nothing.
func (r *Router) dropShards(names []string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, n := range names {
		delete(r.shards, n)
	}
	r.rebuildOwnersLocked()
}

// gateTargetHealthy requires every shard of the target map to be healthy
// (a joining shard passes its first poll; an established shard is not
// down, draining, or in probation) before any stream moves.
func (r *Router) gateTargetHealthy(target *ShardMap) *api.Error {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, spec := range target.Shards {
		sh, ok := r.shards[spec.Name]
		if !ok {
			return api.Errorf(api.CodeNotReady, "shard %q is not in the roster", spec.Name)
		}
		if sh.state != StateHealthy {
			e := api.Errorf(api.CodeNotReady, "shard %q is %s: %s — reshard needs every target shard healthy",
				spec.Name, sh.state, sh.lastErr)
			e.Shard = spec.Name
			return e
		}
	}
	return nil
}

// departedShards lists roster shards absent from the target map that no
// longer own any stream — safe to retire after the moves completed.
func (r *Router) departedShards(target *ShardMap) []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	owned := make(map[string]int)
	for _, o := range r.owners {
		owned[o.shard]++
	}
	var gone []string
	for name := range r.shards {
		if _, ok := target.Shard(name); !ok && owned[name] == 0 {
			gone = append(gone, name)
		}
	}
	sort.Strings(gone)
	return gone
}

// handleAdminReshard is POST /v1/admin/reshard: transition the cluster to
// the posted shard map, live. The response reports every planned move and
// its outcome; dry_run plans without moving anything. One reshard runs at
// a time; the request is synchronous (operators curl it and read the
// moves back).
func (r *Router) handleAdminReshard(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodPost {
		r.writeV1Error(w, api.Errorf(api.CodeBadRequest, "POST a JSON body to %s", api.PathAdminReshard))
		return
	}
	var rr api.ReshardRequest
	if err := json.NewDecoder(req.Body).Decode(&rr); err != nil {
		r.writeV1Error(w, api.Errorf(api.CodeBadRequest, "bad %s body: %v", api.PathAdminReshard, err))
		return
	}
	target := adminToShardMap(rr.Map)
	if err := target.Validate(); err != nil {
		r.writeV1Error(w, api.Errorf(api.CodeBadRequest, "bad target map: %v", err))
		return
	}
	r.resharding.Lock()
	defer r.resharding.Unlock()

	if rr.DryRun {
		resp := api.ReshardResponse{DryRun: true, Moves: []api.ReshardMove{}}
		for _, m := range r.planMoves(target) {
			resp.Moves = append(resp.Moves, api.ReshardMove{
				Stream: m.Stream, From: m.From, To: m.To, State: api.MovePlanned,
			})
		}
		writeJSON(w, http.StatusOK, resp)
		return
	}

	// Join: unknown target shards enter the roster down, then must pass
	// the health gate below before any stream moves toward them.
	added := r.mergeRoster(target)
	r.refresh()
	if aerr := r.gateTargetHealthy(target); aerr != nil {
		r.dropShards(added)
		r.writeV1Error(w, aerr)
		return
	}
	r.reshards.Add(1)

	coord, err := reshard.New(reshard.Config{
		Client: r.client,
		Hooks:  reshard.Hooks{Flip: r.applyFlip, OnStep: r.reshardOnStep},
	})
	if err != nil {
		r.writeV1Error(w, api.Errorf(api.CodeInternal, "building coordinator: %v", err))
		return
	}
	moves := r.planMoves(target)
	resp := api.ReshardResponse{Moves: []api.ReshardMove{}}
	for _, res := range coord.Execute(moves) {
		out := api.ReshardMove{
			Stream:    res.Move.Stream,
			From:      res.Move.From,
			To:        res.Move.To,
			Watermark: res.Watermark,
			Epoch:     res.Epoch,
		}
		if res.Failed() {
			out.State = api.MoveFailed
			out.Error = fmt.Sprintf("%s: %v", res.Step, res.Err)
			resp.Failed++
			r.reshardErrs.Add(1)
		} else {
			out.State = api.MoveDone
			resp.Moved++
			r.reshardMoves.Add(1)
		}
		resp.Moves = append(resp.Moves, out)
	}

	// The target map becomes placement policy even if some moves failed:
	// failed moves were aborted in place (the source still owns and serves
	// the stream; placement_ok flags the mismatch) and a retried reshard
	// picks them up.
	r.mu.Lock()
	r.cfg.Map = target
	r.mu.Unlock()
	r.refresh()
	// Leave: roster shards outside the target map retire once they own
	// nothing (a failed move keeps its source alive until retried).
	r.dropShards(r.departedShards(target))
	writeJSON(w, http.StatusOK, resp)
}
