package router

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"sort"
)

// ShardSpec names one focus-serve backend.
type ShardSpec struct {
	// Name is the shard's stable identity — rendezvous hashing keys on it,
	// so renaming a shard reassigns streams while changing its URL does not.
	Name string `json:"name"`
	// URL is the shard's base URL, e.g. "http://10.0.0.7:7071".
	URL string `json:"url"`
}

// ShardMap is the cluster's placement policy: the shard roster plus
// optional explicit stream pins. Unpinned streams are assigned by
// rendezvous (highest-random-weight) hashing over (stream, shard name), so
// adding or removing one shard moves only the streams that hashed to it —
// the property a future rebalancer leans on. The JSON form is the shard-map
// file focus-router loads (see OPERATIONS.md):
//
//	{
//	  "shards": [
//	    {"name": "shard-0", "url": "http://127.0.0.1:7071"},
//	    {"name": "shard-1", "url": "http://127.0.0.1:7072"}
//	  ],
//	  "pins": {"auburn_c": "shard-0"}
//	}
type ShardMap struct {
	Shards []ShardSpec `json:"shards"`
	// Pins force named streams onto named shards, overriding the hash —
	// the escape hatch for capacity imbalances or migrations in flight.
	Pins map[string]string `json:"pins,omitempty"`
}

// LoadShardMap reads and validates a shard-map file.
func LoadShardMap(path string) (*ShardMap, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("router: reading shard map: %w", err)
	}
	var m ShardMap
	if err := json.Unmarshal(raw, &m); err != nil {
		return nil, fmt.Errorf("router: parsing shard map %s: %w", path, err)
	}
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("router: shard map %s: %w", path, err)
	}
	return &m, nil
}

// Validate checks the map's internal consistency: at least one shard,
// unique shard names and URLs, and pins that reference known shards.
func (m *ShardMap) Validate() error {
	if len(m.Shards) == 0 {
		return fmt.Errorf("no shards")
	}
	names := make(map[string]bool, len(m.Shards))
	urls := make(map[string]bool, len(m.Shards))
	for _, s := range m.Shards {
		if s.Name == "" || s.URL == "" {
			return fmt.Errorf("shard needs both name and url (got name=%q url=%q)", s.Name, s.URL)
		}
		if names[s.Name] {
			return fmt.Errorf("duplicate shard name %q", s.Name)
		}
		if urls[s.URL] {
			return fmt.Errorf("duplicate shard url %q", s.URL)
		}
		names[s.Name] = true
		urls[s.URL] = true
	}
	for stream, shard := range m.Pins {
		if !names[shard] {
			return fmt.Errorf("pin %q -> %q references an unknown shard", stream, shard)
		}
	}
	return nil
}

// Shard returns the spec for a shard name.
func (m *ShardMap) Shard(name string) (ShardSpec, bool) {
	for _, s := range m.Shards {
		if s.Name == name {
			return s, true
		}
	}
	return ShardSpec{}, false
}

// Assign returns the shard that owns a stream: its pin when one exists,
// otherwise the rendezvous winner — the shard maximizing
// hash(shardName, stream), ties broken by shard name so the assignment is
// a pure function of (map, stream).
func (m *ShardMap) Assign(stream string) ShardSpec {
	if pinned, ok := m.Pins[stream]; ok {
		if s, ok := m.Shard(pinned); ok {
			return s
		}
	}
	var best ShardSpec
	var bestHash uint64
	for _, s := range m.Shards {
		h := rendezvousHash(s.Name, stream)
		if best.Name == "" || h > bestHash || (h == bestHash && s.Name < best.Name) {
			best, bestHash = s, h
		}
	}
	return best
}

// Assignment maps every given stream to its owning shard name, the form
// operators use to derive each shard's -streams flag.
func (m *ShardMap) Assignment(streams []string) map[string]string {
	out := make(map[string]string, len(streams))
	for _, st := range streams {
		out[st] = m.Assign(st).Name
	}
	return out
}

// StreamsFor returns the sorted streams (of the given universe) that the
// map assigns to one shard.
func (m *ShardMap) StreamsFor(shard string, streams []string) []string {
	var out []string
	for _, st := range streams {
		if m.Assign(st).Name == shard {
			out = append(out, st)
		}
	}
	sort.Strings(out)
	return out
}

// rendezvousHash is FNV-1a over "shard\x00stream". Any stable 64-bit hash
// works; FNV keeps the assignment dependency-free and identical across
// binaries.
func rendezvousHash(shard, stream string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(shard))
	h.Write([]byte{0})
	h.Write([]byte(stream))
	return h.Sum64()
}
