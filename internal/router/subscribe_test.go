package router_test

import (
	"context"
	"io"
	"reflect"
	"testing"

	"focus/api"
	"focus/internal/loadgen"
	"focus/internal/serve"
)

// readTo drains merged deltas off a routed subscription until the
// delivered vector reaches want.
func readTo(t *testing.T, recv func() (*api.Delta, error), vector func() api.WatermarkVector, want api.WatermarkVector) {
	t.Helper()
	for !api.VectorsEqual(vector(), want) {
		if _, err := recv(); err != nil {
			t.Fatalf("reading toward %v (at %v): %v", want, vector(), err)
		}
	}
}

// TestRoutedSubscriptionsMatchDirect is the scatter-gather acceptance pin
// for standing queries: a subscription through the router — per-shard legs
// merged in RankBefore lockstep — must reassemble, at every delivered
// vector, to exactly the answer a single system holding all streams gives
// at that vector, in both forms; a resumed routed subscription must
// continue gap-free with exact declared totals; and the stream must end in
// a typed complete bye once every shard's window is exhausted.
func TestRoutedSubscriptionsMatchDirect(t *testing.T) {
	if testing.Short() {
		t.Skip("boots a 2-shard cluster plus a reference system")
	}
	c := bootTestCluster(t,
		[][]string{{"auburn_c", "jacksonh"}, {"city_a_d"}},
		serve.Config{NoBackgroundIngest: true},
		true)
	ctx := context.Background()
	allStreams := []string{"auburn_c", "city_a_d", "jacksonh"}
	// Uneven per-round vectors, deep enough that clusters seal (~20s lag).
	rounds := []api.WatermarkVector{
		{"auburn_c": 20, "jacksonh": 25, "city_a_d": 30},
		{"auburn_c": 35, "jacksonh": 45, "city_a_d": 50},
	}
	advanceAndPump := func(round api.WatermarkVector) {
		for st, to := range round {
			c.advance(st, to)
		}
		for _, sh := range c.shards {
			sh.srv.PumpSubscriptions()
		}
	}
	planVerify := loadgen.NewDirectPlanVerifier(c.ref)
	trackVerify := loadgen.NewDirectTrackVerifier(c.ref)

	t.Run("ranked", func(t *testing.T) {
		sub, err := c.cli.Subscribe(ctx, &api.SubscribeRequest{Expr: "car & person"})
		if err != nil {
			t.Fatal(err)
		}
		defer sub.Close()
		if h := sub.Hello(); h.Form != api.FormRanked || !reflect.DeepEqual(h.Streams, allStreams) {
			t.Fatalf("hello = %+v", h)
		}
		for _, round := range rounds {
			advanceAndPump(round)
			readTo(t, sub.Recv, sub.Vector, round)
			// The reassembled standing answer must equal the routed
			// one-shot pinned at the delivered vector — which the
			// reference system in turn verifies bit-identically.
			oneShot, err := c.queryV1(&api.QueryRequest{Expr: "car & person", At: round})
			if err != nil {
				t.Fatal(err)
			}
			if err := planVerify(oneShot); err != nil {
				t.Fatalf("one-shot at %v diverges from reference: %v", round, err)
			}
			if !reflect.DeepEqual(sub.Items(), oneShot.Items) {
				t.Fatalf("routed subscription at %v != one-shot:\ngot  %+v\nwant %+v",
					round, sub.Items(), oneShot.Items)
			}
		}
		if len(sub.Items()) == 0 {
			t.Fatal("subscription reassembled no items; pick denser windows")
		}

		// Resume: disconnect, let the cluster advance, resubscribe with
		// From at the delivered vector. The merged catch-up must continue
		// the old state gap-free — ApplyDeltaItems cross-checks the
		// barrier's exact merged totals.
		state := append([]api.Item(nil), sub.Items()...)
		from := sub.Vector()
		sub.Close()
		next := api.WatermarkVector{"auburn_c": 55, "jacksonh": 55, "city_a_d": 55}
		advanceAndPump(next)
		resumed, err := c.cli.Subscribe(ctx, &api.SubscribeRequest{Expr: "car & person", From: from})
		if err != nil {
			t.Fatal(err)
		}
		defer resumed.Close()
		catchup, err := resumed.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if !api.VectorsEqual(catchup.From, from) {
			t.Fatalf("merged catch-up From = %v, want the resume vector %v", catchup.From, from)
		}
		if state, err = api.ApplyDeltaItems(state, catchup); err != nil {
			t.Fatalf("applying merged catch-up: %v", err)
		}
		oneShot, err := c.queryV1(&api.QueryRequest{Expr: "car & person", At: resumed.Vector()})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(state, oneShot.Items) {
			t.Fatalf("resumed reassembly at %v != one-shot:\ngot  %+v\nwant %+v",
				resumed.Vector(), state, oneShot.Items)
		}
	})

	t.Run("tracks", func(t *testing.T) {
		sub, err := c.cli.Subscribe(ctx, &api.SubscribeRequest{Expr: "car & dur(1)"})
		if err != nil {
			t.Fatal(err)
		}
		defer sub.Close()
		if h := sub.Hello(); h.Form != api.FormTracks || !reflect.DeepEqual(h.Streams, allStreams) {
			t.Fatalf("hello = %+v", h)
		}
		final := api.WatermarkVector{"auburn_c": 60, "jacksonh": 60, "city_a_d": 60}
		advanceAndPump(final)
		readTo(t, sub.Recv, sub.Vector, final)
		oneShot, err := c.queryV1(&api.QueryRequest{Expr: "car & dur(1)", At: final})
		if err != nil {
			t.Fatal(err)
		}
		if err := trackVerify(oneShot); err != nil {
			t.Fatalf("one-shot at %v diverges from reference: %v", final, err)
		}
		if !reflect.DeepEqual(sub.Tracks(), oneShot.Tracks) {
			t.Fatalf("routed track subscription at %v != one-shot:\ngot  %+v\nwant %+v",
				final, sub.Tracks(), oneShot.Tracks)
		}
		if len(sub.Tracks()) == 0 {
			t.Fatal("subscription reassembled no tracks; pick denser windows")
		}
		// Every stream's 60s window is now exhausted: the shards complete
		// their registries and the router relays one merged complete bye.
		if _, err := sub.Recv(); err != io.EOF {
			t.Fatalf("after completion Recv = %v, want io.EOF", err)
		}
		if sub.Reason() != api.ReasonComplete {
			t.Fatalf("terminal reason = %q, want %q", sub.Reason(), api.ReasonComplete)
		}
	})

	st := c.rt.Snapshot()
	if st.Subscriptions < 3 || st.DeltaEvents == 0 {
		t.Fatalf("router stats = subscriptions %d, delta_events %d", st.Subscriptions, st.DeltaEvents)
	}
	if st.ActiveSubscriptions != 0 {
		t.Fatalf("router stats leak %d active subscriptions", st.ActiveSubscriptions)
	}
}

// TestRoutedSubscriptionRejections pins the router's pre-stream error
// surface: shapes a routed delta stream cannot honestly serve are refused
// with typed errors before any shard is contacted.
func TestRoutedSubscriptionRejections(t *testing.T) {
	if testing.Short() {
		t.Skip("boots a 2-shard cluster")
	}
	c := bootTestCluster(t,
		[][]string{{"auburn_c"}, {"city_a_d"}},
		serve.Config{NoBackgroundIngest: true},
		false)
	ctx := context.Background()
	cases := []struct {
		name string
		req  *api.SubscribeRequest
		code api.Code
	}{
		{"missing expr", &api.SubscribeRequest{}, api.CodeBadRequest},
		{"top_k", &api.SubscribeRequest{Expr: "car & person", TopK: 3}, api.CodeBadRequest},
		{"early exit", &api.SubscribeRequest{Expr: "car & person", Mode: api.ModeEarlyExit}, api.CodeBadRequest},
		{"frames form", &api.SubscribeRequest{Expr: "car", Form: api.FormFrames}, api.CodeBadRequest},
		{"unknown stream", &api.SubscribeRequest{Expr: "car", Streams: []string{"nope"}}, api.CodeUnknownStream},
		{"partial resume", &api.SubscribeRequest{Expr: "car & person",
			From: api.WatermarkVector{"auburn_c": 1}}, api.CodeBadRequest},
		{"alien resume", &api.SubscribeRequest{Expr: "car & person",
			From: api.WatermarkVector{"auburn_c": 1, "city_a_d": 1, "ghost": 1}}, api.CodeBadRequest},
		{"bad expr", &api.SubscribeRequest{Expr: "car &"}, api.CodeBadExpr},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := c.cli.Subscribe(ctx, tc.req); !api.IsCode(err, tc.code) {
				t.Fatalf("Subscribe(%+v) = %v, want code %q", tc.req, err, tc.code)
			}
		})
	}
}
