package router_test

import (
	"context"
	"reflect"
	"testing"

	"focus/api"
	"focus/internal/loadgen"
	"focus/internal/serve"
)

// TestRoutedEarlyExit pins the distributed half of the two-mode contract:
// the router forces the decided mode onto every scatter sub-request (a
// merge of exact and early-exit shard answers would splice two different
// pure functions), echoes it on the merged response and freezes it into
// continuation cursors, and the merged early-exit answer — which matches
// no single-node execution, since every shard runs its own sampler — still
// satisfies the subset contract against a reference system holding all
// streams.
func TestRoutedEarlyExit(t *testing.T) {
	if testing.Short() {
		t.Skip("boots a 2-shard cluster plus a reference system")
	}
	c := bootTestCluster(t,
		[][]string{{"auburn_c", "jacksonh"}, {"city_a_d"}},
		serve.Config{NoBackgroundIngest: true},
		true)
	c.advance("auburn_c", 30)
	c.advance("jacksonh", 30)
	c.advance("city_a_d", 30)

	const expr = "car & person"
	exact, err := c.queryV1(&api.QueryRequest{Expr: expr, TopK: 6})
	if err != nil {
		t.Fatal(err)
	}
	if exact.Mode != "" {
		t.Fatalf("routed exact response echoes mode %q", exact.Mode)
	}
	for _, sh := range c.shards {
		if n := sh.srv.Snapshot().EarlyExitQueries; n != 0 {
			t.Fatalf("shard %s counted %d early-exit queries before any were sent", sh.name, n)
		}
	}

	early, err := c.queryV1(&api.QueryRequest{Expr: expr, TopK: 6, Mode: api.ModeEarlyExit,
		At: exact.Watermarks})
	if err != nil {
		t.Fatal(err)
	}
	if early.Mode != api.ModeEarlyExit {
		t.Fatalf("routed early-exit response echoes mode %q", early.Mode)
	}
	if len(early.Items) == 0 || len(early.Items) > 6 {
		t.Fatalf("routed early exit returned %d items for top_k 6", len(early.Items))
	}
	// Forced scatter: every shard in the target set must have served its
	// sub-request in early-exit mode.
	for _, sh := range c.shards {
		if n := sh.srv.Snapshot().EarlyExitQueries; n == 0 {
			t.Errorf("shard %s never saw an early-exit sub-request: mode was not forced on the scatter", sh.name)
		}
	}
	// The merged answer satisfies the subset contract against the
	// reference system's exhaustive exact ranking.
	if err := loadgen.NewSubsetPlanVerifier(c.ref)(early); err != nil {
		t.Errorf("routed early-exit answer violates the subset contract: %v", err)
	}

	// Router-side accounting: early-exit is a subset of plan traffic.
	rs := c.rt.Snapshot()
	if rs.EarlyExitQueries != 1 || rs.PlanQueries < 2 {
		t.Errorf("router stats: early_exit_queries=%d plan_queries=%d, want 1 and >=2",
			rs.EarlyExitQueries, rs.PlanQueries)
	}

	// Cursor paging through the router: the token freezes the mode, and —
	// every shard's early-exit execution being deterministic at the pinned
	// vector — the pages reassemble to exactly the one-shot answer.
	assembled, err := c.cli.CollectPages(context.Background(),
		&api.QueryRequest{Expr: expr, TopK: 6, Mode: api.ModeEarlyExit, At: exact.Watermarks}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if assembled.Mode != api.ModeEarlyExit {
		t.Fatalf("assembled paged read echoes mode %q", assembled.Mode)
	}
	if !reflect.DeepEqual(assembled.Items, early.Items) {
		t.Fatalf("paged routed early-exit diverges from one-shot:\npaged: %+v\nfull:  %+v",
			assembled.Items, early.Items)
	}

	// Validation mirrors the single-node taxonomy at the router's edge.
	for name, req := range map[string]*api.QueryRequest{
		"no top_k":     {Expr: expr, Mode: api.ModeEarlyExit},
		"unknown mode": {Expr: expr, TopK: 5, Mode: "banana"},
		"temporal":     {Expr: "car & dur(2)", TopK: 5, Mode: api.ModeEarlyExit},
	} {
		if _, err := c.queryV1(req); !api.IsCode(err, api.CodeBadRequest) {
			t.Errorf("%s: got %v, want code bad_request", name, err)
		}
	}
}
