package router

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"focus/internal/serve"
)

// routeError is a request-scoped routing failure, produced before or after
// the scatter. drainingShard marks 503s caused by a draining shard so load
// tooling can tell a rolling restart from an outage.
type routeError struct {
	status        int
	msg           string
	drainingShard string
}

func (r *Router) writeRouteError(w http.ResponseWriter, e *routeError) {
	switch e.status {
	case http.StatusTooManyRequests:
		r.rejected.Add(1)
	case http.StatusBadRequest:
		r.clientErrs.Add(1)
	default:
		r.unavailable.Add(1)
	}
	if e.drainingShard != "" {
		w.Header().Set(serve.DrainingHeader, e.drainingShard)
	}
	writeJSON(w, e.status, serve.ErrorResponse{Error: e.msg})
}

// shardGroup is one shard's slice of a request: the streams it owns, in
// sorted order. Groups are emitted in shard-name order so every gather,
// merge, and error report is deterministic.
type shardGroup struct {
	spec    ShardSpec
	streams []string
}

// groupByShard resolves the requested streams (empty = every known stream)
// to per-shard groups, failing fast — with an explicit 503 naming the
// shard — when any owning shard is down or draining. Routed queries are
// all-or-nothing: a partial answer would silently change TotalFrames,
// rankings, and aggregates, so partial failure must be loud.
func (r *Router) groupByShard(requested []string) ([]shardGroup, *routeError) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	streams := requested
	if len(streams) == 0 {
		streams = make([]string, 0, len(r.owners))
		for st := range r.owners {
			streams = append(streams, st)
		}
		sort.Strings(streams)
	}
	if len(streams) == 0 {
		return nil, &routeError{status: http.StatusServiceUnavailable, msg: "no streams available (no shard ownership discovered)"}
	}
	byShard := make(map[string][]string)
	for _, st := range streams {
		owner, ok := r.owners[st]
		if !ok {
			return nil, &routeError{status: http.StatusBadRequest, msg: fmt.Sprintf("unknown stream %q", st)}
		}
		byShard[owner] = append(byShard[owner], st)
	}
	names := make([]string, 0, len(byShard))
	for n := range byShard {
		names = append(names, n)
	}
	sort.Strings(names)
	groups := make([]shardGroup, 0, len(names))
	for _, n := range names {
		sh := r.shards[n]
		switch sh.state {
		case StateDraining:
			return nil, &routeError{
				status:        http.StatusServiceUnavailable,
				msg:           fmt.Sprintf("shard %q is draining (owns %s)", n, strings.Join(byShard[n], ",")),
				drainingShard: n,
			}
		case StateDown:
			return nil, &routeError{
				status: http.StatusServiceUnavailable,
				msg:    fmt.Sprintf("shard %q is down: %s (owns %s)", n, sh.lastErr, strings.Join(byShard[n], ",")),
			}
		}
		groups = append(groups, shardGroup{spec: sh.spec, streams: byShard[n]})
	}
	return groups, nil
}

// shardReply is one sub-request's outcome.
type shardReply struct {
	shard    string
	status   int
	draining bool
	body     []byte
	err      error
}

// scatter issues one sub-request per group concurrently and gathers the
// replies in group (shard-name) order.
func (r *Router) scatter(groups []shardGroup, call func(g shardGroup) (*http.Response, error)) []shardReply {
	replies := make([]shardReply, len(groups))
	var wg sync.WaitGroup
	for i, g := range groups {
		wg.Add(1)
		go func(i int, g shardGroup) {
			defer wg.Done()
			r.shardReqs.Add(1)
			rep := &replies[i]
			rep.shard = g.spec.Name
			resp, err := call(g)
			if err != nil {
				rep.err = err
				return
			}
			defer resp.Body.Close()
			rep.status = resp.StatusCode
			rep.draining = resp.Header.Get(serve.DrainingHeader) != ""
			rep.body, rep.err = io.ReadAll(resp.Body)
		}(i, g)
	}
	wg.Wait()
	return replies
}

// gatherError maps the scattered replies to the single response status the
// client sees, or nil when every shard answered 2xx. Precedence: a client
// error (400) is the caller's bug and wins; then unavailability (transport
// errors, 5xx, draining) as 503 — retrying won't help until the shard
// recovers; then overload (429), where a retry is exactly right.
func gatherError(replies []shardReply) *routeError {
	classify := func(pick func(rep *shardReply) *routeError) *routeError {
		for i := range replies {
			if e := pick(&replies[i]); e != nil {
				return e
			}
		}
		return nil
	}
	if e := classify(func(rep *shardReply) *routeError {
		if rep.err == nil && rep.status == http.StatusBadRequest {
			return &routeError{status: http.StatusBadRequest, msg: shardErrorBody(rep)}
		}
		return nil
	}); e != nil {
		return e
	}
	if e := classify(func(rep *shardReply) *routeError {
		switch {
		case rep.err != nil:
			return &routeError{status: http.StatusServiceUnavailable,
				msg: fmt.Sprintf("shard %q unavailable: %v", rep.shard, rep.err)}
		case rep.status == http.StatusServiceUnavailable && rep.draining:
			return &routeError{status: http.StatusServiceUnavailable,
				msg:           fmt.Sprintf("shard %q is draining", rep.shard),
				drainingShard: rep.shard}
		case rep.status >= 500 || (rep.status >= 300 && rep.status != http.StatusTooManyRequests && rep.status != http.StatusBadRequest):
			return &routeError{status: http.StatusServiceUnavailable,
				msg: fmt.Sprintf("shard %q returned status %d: %s", rep.shard, rep.status, shardErrorBody(rep))}
		}
		return nil
	}); e != nil {
		return e
	}
	return classify(func(rep *shardReply) *routeError {
		if rep.status == http.StatusTooManyRequests {
			return &routeError{status: http.StatusTooManyRequests,
				msg: fmt.Sprintf("shard %q overloaded: %s", rep.shard, shardErrorBody(rep))}
		}
		return nil
	})
}

func shardErrorBody(rep *shardReply) string {
	var er serve.ErrorResponse
	if err := json.Unmarshal(rep.body, &er); err == nil && er.Error != "" {
		return er.Error
	}
	return strings.TrimSpace(string(rep.body))
}

func (r *Router) handleQuery(w http.ResponseWriter, req *http.Request) {
	if !r.ready.Load() {
		writeJSON(w, http.StatusServiceUnavailable, serve.ErrorResponse{Error: "router not ready"})
		return
	}
	q := req.URL.Query()
	class := q.Get("class")
	if class == "" {
		r.clientErrs.Add(1)
		writeJSON(w, http.StatusBadRequest, serve.ErrorResponse{Error: "missing required parameter: class"})
		return
	}
	var requested []string
	if v := q.Get("streams"); v != "" {
		requested = serve.NormalizeStreams(strings.Split(v, ","))
	}
	var pins map[string]float64
	if v := q.Get("at"); v != "" {
		var err error
		if pins, err = serve.ParseWatermarkVector(v); err != nil {
			r.clientErrs.Add(1)
			writeJSON(w, http.StatusBadRequest, serve.ErrorResponse{Error: err.Error()})
			return
		}
	}
	groups, rerr := r.groupByShard(requested)
	if rerr != nil {
		r.writeRouteError(w, rerr)
		return
	}
	if rerr := validatePins(pins, groups); rerr != nil {
		r.writeRouteError(w, rerr)
		return
	}
	r.queries.Add(1)

	replies := r.scatter(groups, func(g shardGroup) (*http.Response, error) {
		sub := url.Values{}
		sub.Set("class", class)
		sub.Set("streams", strings.Join(g.streams, ","))
		// Leaf options pass through verbatim: the shard parses and
		// validates, so router and single-node requests can never diverge
		// on parameter semantics.
		for _, p := range []string{"kx", "start", "end", "max_clusters"} {
			if v := q.Get(p); v != "" {
				sub.Set(p, v)
			}
		}
		if sv := subVector(pins, g.streams); len(sv) > 0 {
			sub.Set("at", serve.FormatWatermarkVector(sv))
		}
		return r.client.Get(g.spec.URL + "/query?" + sub.Encode())
	})
	if rerr := gatherError(replies); rerr != nil {
		r.writeRouteError(w, rerr)
		return
	}
	parts := make([]*serve.QueryResponse, len(replies))
	for i := range replies {
		parts[i] = new(serve.QueryResponse)
		if err := json.Unmarshal(replies[i].body, parts[i]); err != nil {
			r.upstreamErrs.Add(1)
			writeJSON(w, http.StatusServiceUnavailable, serve.ErrorResponse{
				Error: fmt.Sprintf("shard %q sent a bad /query body: %v", replies[i].shard, err)})
			return
		}
	}
	merged, err := mergeQueryResponses(class, parts)
	if err != nil {
		r.upstreamErrs.Add(1)
		writeJSON(w, http.StatusServiceUnavailable, serve.ErrorResponse{Error: err.Error()})
		return
	}
	setCacheHeader(w, merged.Cached)
	w.Header().Set(fanoutHeader, strconv.Itoa(len(groups)))
	writeJSON(w, http.StatusOK, merged)
}

func (r *Router) handlePlan(w http.ResponseWriter, req *http.Request) {
	if !r.ready.Load() {
		writeJSON(w, http.StatusServiceUnavailable, serve.ErrorResponse{Error: "router not ready"})
		return
	}
	if req.Method != http.MethodPost {
		r.clientErrs.Add(1)
		writeJSON(w, http.StatusMethodNotAllowed, serve.ErrorResponse{Error: "POST a JSON body to /plan"})
		return
	}
	var preq serve.PlanRequest
	if err := json.NewDecoder(req.Body).Decode(&preq); err != nil {
		r.clientErrs.Add(1)
		writeJSON(w, http.StatusBadRequest, serve.ErrorResponse{Error: "bad /plan body: " + err.Error()})
		return
	}
	if preq.Expr == "" {
		r.clientErrs.Add(1)
		writeJSON(w, http.StatusBadRequest, serve.ErrorResponse{Error: "missing required field: expr"})
		return
	}
	// Only the paging fields are validated here: the router consumes them
	// itself (shards always execute unpaged slices), whereas every other
	// parameter passes through verbatim and the shard's own validation
	// comes back as a 400 — one source of truth for plan semantics.
	if preq.Limit < 0 || preq.Offset < 0 {
		r.clientErrs.Add(1)
		writeJSON(w, http.StatusBadRequest, serve.ErrorResponse{Error: "negative plan parameter"})
		return
	}
	groups, rerr := r.groupByShard(serve.NormalizeStreams(preq.Streams))
	if rerr != nil {
		r.writeRouteError(w, rerr)
		return
	}
	if rerr := validatePins(preq.AtWatermarks, groups); rerr != nil {
		r.writeRouteError(w, rerr)
		return
	}
	r.planQueries.Add(1)

	replies := r.scatter(groups, func(g shardGroup) (*http.Response, error) {
		// Each shard executes its full slice of the plan: paging is the
		// router's job (a shard page would be a page of the wrong ranking),
		// and TopK stays — a shard's global top K is a superset of its
		// share of the merged top K.
		sub := preq
		sub.Streams = g.streams
		sub.AtWatermarks = subVector(preq.AtWatermarks, g.streams)
		sub.Limit, sub.Offset = 0, 0
		body, err := json.Marshal(&sub)
		if err != nil {
			return nil, err
		}
		return r.client.Post(g.spec.URL+"/plan", "application/json", bytes.NewReader(body))
	})
	if rerr := gatherError(replies); rerr != nil {
		r.writeRouteError(w, rerr)
		return
	}
	parts := make([]*serve.PlanResponse, len(replies))
	for i := range replies {
		parts[i] = new(serve.PlanResponse)
		if err := json.Unmarshal(replies[i].body, parts[i]); err != nil {
			r.upstreamErrs.Add(1)
			writeJSON(w, http.StatusServiceUnavailable, serve.ErrorResponse{
				Error: fmt.Sprintf("shard %q sent a bad /plan body: %v", replies[i].shard, err)})
			return
		}
	}
	merged, err := mergePlanResponses(&preq, parts)
	if err != nil {
		r.upstreamErrs.Add(1)
		writeJSON(w, http.StatusServiceUnavailable, serve.ErrorResponse{Error: err.Error()})
		return
	}
	setCacheHeader(w, merged.Cached)
	w.Header().Set(fanoutHeader, strconv.Itoa(len(groups)))
	out := *merged
	out.Items = serve.PagePlanItems(out.Items, preq.Limit, preq.Offset)
	writeJSON(w, http.StatusOK, &out)
}

// ShardStream is one entry of the router's /streams payload: the shard's
// own StreamStatus annotated with the owning shard name.
type ShardStream struct {
	Shard string `json:"shard"`
	serve.StreamStatus
}

// handleStreams scatters GET /streams to every responsive shard and merges
// the statuses, sorted by stream name. Unlike /query and /plan — where a
// partial answer would be a wrong answer — this is an operator surface:
// down shards are skipped and named in the X-Focus-Partial header so the
// rest of the cluster stays observable during an outage.
func (r *Router) handleStreams(w http.ResponseWriter, req *http.Request) {
	r.mu.RLock()
	var groups []shardGroup
	for _, name := range r.shardNamesLocked() {
		if sh := r.shards[name]; sh.state != StateDown {
			groups = append(groups, shardGroup{spec: sh.spec})
		}
	}
	r.mu.RUnlock()
	replies := r.scatter(groups, func(g shardGroup) (*http.Response, error) {
		return r.client.Get(g.spec.URL + "/streams")
	})
	// Non-nil so an all-shards-down cluster serializes as [], not null —
	// clients iterate this array.
	out := []ShardStream{}
	var partial []string
	for i := range replies {
		rep := &replies[i]
		var statuses []serve.StreamStatus
		if rep.err != nil || rep.status != http.StatusOK || json.Unmarshal(rep.body, &statuses) != nil {
			partial = append(partial, rep.shard)
			continue
		}
		for _, st := range statuses {
			out = append(out, ShardStream{Shard: rep.shard, StreamStatus: st})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	if len(partial) > 0 {
		sort.Strings(partial)
		w.Header().Set("X-Focus-Partial", strings.Join(partial, ","))
	}
	writeJSON(w, http.StatusOK, out)
}

// ShardStatus is one shard's entry in the router's /stats payload.
type ShardStatus struct {
	Name  string `json:"name"`
	URL   string `json:"url"`
	State string `json:"state"`
	Error string `json:"error,omitempty"`
	// Streams the shard currently owns (last successful discovery).
	Streams []string `json:"streams"`
	// Watermarks are the shard's per-stream ingest watermarks as of the
	// last poll — the router's (slightly stale) view; authoritative values
	// come back on every routed response.
	Watermarks map[string]float64 `json:"watermarks,omitempty"`
	// PlacementOK is false when the shard serves streams the shard map
	// assigns elsewhere (or that another shard also serves).
	PlacementOK bool `json:"placement_ok"`
}

// Stats is the router's /stats payload.
type Stats struct {
	UptimeSec      float64       `json:"uptime_sec"`
	Ready          bool          `json:"ready"`
	Queries        int64         `json:"queries"`
	PlanQueries    int64         `json:"plan_queries"`
	ShardRequests  int64         `json:"shard_requests"`
	Rejected       int64         `json:"rejected"`
	Unavailable    int64         `json:"unavailable"`
	ClientErrors   int64         `json:"client_errors"`
	UpstreamErrors int64         `json:"upstream_errors"`
	Shards         []ShardStatus `json:"shards"`
}

// Snapshot returns the router's counters and shard view (also served at
// /stats).
func (r *Router) Snapshot() Stats {
	var uptime float64
	if ns := r.startedNS.Load(); ns > 0 {
		uptime = time.Since(time.Unix(0, ns)).Seconds()
	}
	st := Stats{
		UptimeSec:      uptime,
		Ready:          r.ready.Load(),
		Queries:        r.queries.Load(),
		PlanQueries:    r.planQueries.Load(),
		ShardRequests:  r.shardReqs.Load(),
		Rejected:       r.rejected.Load(),
		Unavailable:    r.unavailable.Load(),
		ClientErrors:   r.clientErrs.Load(),
		UpstreamErrors: r.upstreamErrs.Load(),
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, name := range r.shardNamesLocked() {
		sh := r.shards[name]
		ss := ShardStatus{
			Name:        name,
			URL:         sh.spec.URL,
			State:       sh.state,
			Error:       sh.lastErr,
			Streams:     append([]string(nil), sh.streams...),
			PlacementOK: sh.placementOK,
		}
		if len(sh.watermarks) > 0 {
			ss.Watermarks = make(map[string]float64, len(sh.watermarks))
			for k, v := range sh.watermarks {
				ss.Watermarks[k] = v
			}
		}
		st.Shards = append(st.Shards, ss)
	}
	return st
}

func (r *Router) handleStats(w http.ResponseWriter, req *http.Request) {
	writeJSON(w, http.StatusOK, r.Snapshot())
}

// handleHealthz reports the cluster's aggregate health: "ok" when every
// shard is healthy, "degraded" (still 200 — the router can serve queries
// not touching the broken shards) when some are not, 503 when no shard is
// usable at all.
func (r *Router) handleHealthz(w http.ResponseWriter, req *http.Request) {
	if !r.ready.Load() {
		writeJSON(w, http.StatusServiceUnavailable, serve.ErrorResponse{Error: "router not ready"})
		return
	}
	r.mu.RLock()
	states := make(map[string]string, len(r.shards))
	healthy := 0
	for name, sh := range r.shards {
		states[name] = sh.state
		if sh.state == StateHealthy {
			healthy++
		}
	}
	r.mu.RUnlock()
	status := "ok"
	code := http.StatusOK
	switch {
	case healthy == 0:
		status, code = "unavailable", http.StatusServiceUnavailable
	case healthy < len(states):
		status = "degraded"
	}
	writeJSON(w, code, struct {
		Status string            `json:"status"`
		Shards map[string]string `json:"shards"`
	}{status, states})
}

// validatePins rejects pinned streams outside the resolved target set,
// mirroring serve.resolveVector: a silently dropped pin (typo, removed
// stream) would quietly unpin the read. Pins inside the set are split per
// shard by subVector, so every shard's slice passes its own check too.
func validatePins(pins map[string]float64, groups []shardGroup) *routeError {
	if len(pins) == 0 {
		return nil
	}
	resolved := make(map[string]bool)
	for _, g := range groups {
		for _, st := range g.streams {
			resolved[st] = true
		}
	}
	names := make([]string, 0, len(pins))
	for n := range pins {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if !resolved[n] {
			return &routeError{status: http.StatusBadRequest,
				msg: fmt.Sprintf("pinned stream %q is not among the query's streams", n)}
		}
	}
	return nil
}

// subVector returns the pins restricted to the given streams (nil when
// none apply): each shard only ever sees its own slice of a pinned vector.
func subVector(pins map[string]float64, streams []string) map[string]float64 {
	var out map[string]float64
	for _, st := range streams {
		if at, ok := pins[st]; ok {
			if out == nil {
				out = make(map[string]float64)
			}
			out[st] = at
		}
	}
	return out
}

// fanoutHeader reports how many shards a routed response was merged from.
const fanoutHeader = "X-Focus-Fanout"

func setCacheHeader(w http.ResponseWriter, cached bool) {
	if cached {
		w.Header().Set("X-Focus-Cache", "hit")
	} else {
		w.Header().Set("X-Focus-Cache", "miss")
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}
