package router

import (
	"bytes"
	"encoding/json"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"focus/api"
	"focus/internal/plan"
	"focus/internal/serve"
)

// The router speaks the v1 wire contract on both sides: clients POST
// /v1/query to the router, the router scatters per-shard v1 sub-requests
// to the owning shards, and gathered failures are classified by their
// structured error code — never by message strings or marker headers. The
// legacy endpoints (GET /query, POST /plan) remain as deprecated shims
// that translate into the same v1 routing core, exactly like a single
// focus-serve's shims.

// writeV1Error mirrors the error onto the router's counters and writes
// the structured envelope.
func (r *Router) writeV1Error(w http.ResponseWriter, e *api.Error) {
	r.countError(e)
	writeJSON(w, e.HTTPStatus(), api.Envelope{Err: e})
}

func (r *Router) countError(e *api.Error) {
	switch e.HTTPStatus() {
	case http.StatusTooManyRequests:
		r.rejected.Add(1)
	case http.StatusBadRequest:
		r.clientErrs.Add(1)
	default:
		r.unavailable.Add(1)
	}
}

// writeLegacyError translates a structured error back into the legacy
// wire format: bare message string, and the draining marker header naming
// the draining shard (pre-v1 load tooling sniffs it).
func (r *Router) writeLegacyError(w http.ResponseWriter, e *api.Error) {
	r.countError(e)
	if e.Code == api.CodeDraining && e.Shard != "" {
		w.Header().Set(serve.DrainingHeader, e.Shard)
	}
	writeJSON(w, e.HTTPStatus(), serve.ErrorResponse{Error: e.Message})
}

// shardGroup is one shard's slice of a request: the streams it owns, in
// sorted order. Groups are emitted in shard-name order so every gather,
// merge, and error report is deterministic.
type shardGroup struct {
	spec    ShardSpec
	streams []string
}

// groupByShard resolves the requested streams (empty = every known stream)
// to per-shard groups, failing fast — with an explicit error naming the
// shard — when any owning shard is down, draining, or in probation. Routed
// queries are all-or-nothing by default: a partial answer would silently
// change aggregates and rankings, so partial failure must be loud. With
// allowPartial, unroutable shards are returned as missing groups instead
// of an error — the caller merges the healthy subset and marks the answer
// partial — but only as long as at least one owning shard is routable.
func (r *Router) groupByShard(requested []string, allowPartial bool) (groups, missing []shardGroup, _ *api.Error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	streams := requested
	if len(streams) == 0 {
		streams = make([]string, 0, len(r.owners))
		for st := range r.owners {
			streams = append(streams, st)
		}
		sort.Strings(streams)
	}
	if len(streams) == 0 {
		return nil, nil, api.Errorf(api.CodeUnavailable, "no streams available (no shard ownership discovered)")
	}
	byShard := make(map[string][]string)
	for _, st := range streams {
		owner, ok := r.owners[st]
		if !ok {
			return nil, nil, api.Errorf(api.CodeUnknownStream, "unknown stream %q", st)
		}
		byShard[owner.shard] = append(byShard[owner.shard], st)
	}
	names := make([]string, 0, len(byShard))
	for n := range byShard {
		names = append(names, n)
	}
	sort.Strings(names)
	groups = make([]shardGroup, 0, len(names))
	for _, n := range names {
		sh := r.shards[n]
		var e *api.Error
		switch sh.state {
		case StateDraining:
			e = api.Errorf(api.CodeDraining, "shard %q is draining (owns %s)", n, strings.Join(byShard[n], ","))
		case StateDown:
			e = api.Errorf(api.CodeShardDown, "shard %q is down: %s (owns %s)", n, sh.lastErr, strings.Join(byShard[n], ","))
		case StateProbation:
			e = api.Errorf(api.CodeShardDown, "shard %q is %s (owns %s)", n, sh.lastErr, strings.Join(byShard[n], ","))
		}
		if e != nil {
			if allowPartial {
				missing = append(missing, shardGroup{spec: sh.spec, streams: byShard[n]})
				continue
			}
			e.Shard = n
			return nil, nil, e
		}
		groups = append(groups, shardGroup{spec: sh.spec, streams: byShard[n]})
	}
	if len(groups) == 0 {
		// allow_partial tolerates a degraded answer, not an absent one:
		// with no routable shard at all the request fails like the strict
		// path would.
		n := missing[0].spec.Name
		e := api.Errorf(api.CodeShardDown, "no routable shard: every owning shard is down, draining, or in probation (first: %q)", n)
		e.Shard = n
		return nil, nil, e
	}
	return groups, missing, nil
}

// shardReply is one sub-request's outcome.
type shardReply struct {
	shard  string
	status int
	body   []byte
	err    error
}

// apiError decodes the reply's structured error (degrading gracefully for
// non-envelope bodies).
func (rep *shardReply) apiError() *api.Error {
	return api.DecodeError(rep.status, rep.body)
}

// scatter issues one sub-request per group concurrently — each with the
// per-shard retry policy — and gathers the replies in group (shard-name)
// order.
func (r *Router) scatter(groups []shardGroup, call func(g shardGroup) (*http.Response, error)) []shardReply {
	replies := make([]shardReply, len(groups))
	var wg sync.WaitGroup
	for i, g := range groups {
		wg.Add(1)
		go func(i int, g shardGroup) {
			defer wg.Done()
			r.callShard(g, call, &replies[i])
		}(i, g)
	}
	wg.Wait()
	return replies
}

// callShard runs one sub-request with retries. Only transient shapes are
// retried — transport errors, structured "unavailable"/"not_ready" 5xxs,
// and overloaded 429s (whose Retry-After, when sent, sets the wait) — so a
// blip inside one scatter heals without surfacing to the client, while
// deterministic failures (client errors, draining, internal) come back
// immediately.
func (r *Router) callShard(g shardGroup, call func(g shardGroup) (*http.Response, error), rep *shardReply) {
	rep.shard = g.spec.Name
	for attempt := 0; ; attempt++ {
		r.shardReqs.Add(1)
		*rep = shardReply{shard: g.spec.Name}
		var retryAfter string
		resp, err := call(g)
		if err != nil {
			rep.err = err
		} else {
			rep.status = resp.StatusCode
			retryAfter = resp.Header.Get("Retry-After")
			rep.body, rep.err = io.ReadAll(resp.Body)
			resp.Body.Close()
		}
		if attempt >= r.cfg.ShardRetries || !retryableReply(rep) {
			return
		}
		r.shardRetried.Add(1)
		time.Sleep(r.shardRetryDelay(attempt, retryAfter))
	}
}

// retryableReply reports whether a sub-request failure is worth retrying.
func retryableReply(rep *shardReply) bool {
	if rep.err != nil {
		return true
	}
	if rep.status == http.StatusTooManyRequests {
		return true
	}
	if rep.status >= 500 {
		switch rep.apiError().Code {
		case api.CodeUnavailable, api.CodeNotReady:
			return true
		}
	}
	return false
}

// shardRetryMaxBackoff caps the exponential growth of sub-request retry
// waits; the router holds a client connection open while it retries, so
// the cap is tighter than a standalone client's.
const shardRetryMaxBackoff = 2 * time.Second

// shardRetryDelay mirrors the client package's policy in miniature:
// Retry-After (delta-seconds) wins; otherwise the base backoff doubles per
// attempt, capped, jittered over the upper half of the window.
func (r *Router) shardRetryDelay(attempt int, retryAfter string) time.Duration {
	if retryAfter != "" {
		if secs, err := strconv.ParseFloat(retryAfter, 64); err == nil && secs >= 0 {
			if d := time.Duration(secs * float64(time.Second)); d < shardRetryMaxBackoff {
				return d
			}
			return shardRetryMaxBackoff
		}
	}
	d := r.cfg.ShardBackoff << uint(attempt)
	if d > shardRetryMaxBackoff || d <= 0 {
		d = shardRetryMaxBackoff
	}
	return d/2 + time.Duration(rand.Int63n(int64(d/2)+1))
}

// gatherError maps the scattered replies to the single error the client
// sees, or nil when every shard answered 2xx — classified by the shards'
// structured error codes. Precedence: a client error (bad_*, pin_ahead,
// unknown_stream) is the caller's bug and wins, passed through verbatim;
// then unavailability (transport errors, draining, anything 5xx-ish) —
// retrying won't help until the shard recovers; then overload, where a
// retry is exactly right.
func gatherError(replies []shardReply) *api.Error {
	classify := func(pick func(rep *shardReply) *api.Error) *api.Error {
		for i := range replies {
			if e := pick(&replies[i]); e != nil {
				return e
			}
		}
		return nil
	}
	if e := classify(func(rep *shardReply) *api.Error {
		if rep.err == nil && rep.status == http.StatusBadRequest {
			return rep.apiError()
		}
		return nil
	}); e != nil {
		return e
	}
	if e := classify(func(rep *shardReply) *api.Error {
		switch {
		case rep.err != nil:
			e := api.Errorf(api.CodeShardDown, "shard %q unavailable: %v", rep.shard, rep.err)
			e.Shard = rep.shard
			return e
		case rep.status >= 200 && rep.status < 300, rep.status == http.StatusTooManyRequests:
			return nil
		default:
			se := rep.apiError()
			if se.Code == api.CodeDraining {
				e := api.Errorf(api.CodeDraining, "shard %q is draining", rep.shard)
				e.Shard = rep.shard
				return e
			}
			e := api.Errorf(api.CodeShardDown, "shard %q returned status %d: %s", rep.shard, rep.status, se.Message)
			e.Shard = rep.shard
			return e
		}
	}); e != nil {
		return e
	}
	return classify(func(rep *shardReply) *api.Error {
		if rep.status == http.StatusTooManyRequests {
			e := api.Errorf(api.CodeOverloaded, "shard %q overloaded: %s", rep.shard, rep.apiError().Message)
			e.Shard = rep.shard
			return e
		}
		return nil
	})
}

// routedExec is a resolved routed execution, the router-side analogue of
// the serve layer's v1Exec: predicate still textual (shards compile it),
// paging normalized, cursor expanded.
type routedExec struct {
	expr                  string
	streams               []string
	pins                  api.WatermarkVector
	topK, kx, maxClusters int
	start, end            float64
	limit, offset         int
	// mode is the execution mode in canonical form ("" = exact,
	// api.ModeEarlyExit = early exit), forced onto every scatter
	// sub-request so shards can never mix modes within one answer.
	mode   string
	ranked bool
	// tracked selects the tracks (temporal) form; set exactly when the
	// expression contains a temporal operator. Mutually exclusive with
	// ranked.
	tracked bool
	// allowPartial opts into a degraded answer when some owning shards
	// are unroutable or fail: the healthy subset is merged and the
	// response carries a PartialInfo marker. Never implicit.
	allowPartial bool
}

// resolveRouted normalizes a wire QueryRequest. The ranked/frames form
// decision is syntactic (plan.Parse, no class space needed) and must
// mirror the serve layer's rule; the router then forces the decided form
// on every shard so a scatter can never mix forms.
func resolveRouted(req *api.QueryRequest) (*routedExec, *api.Error) {
	if req.Limit < 0 {
		return nil, api.Errorf(api.CodeBadRequest, "negative query parameter")
	}
	if req.Cursor != "" {
		cur, aerr := api.CursorForRequest(req)
		if aerr != nil {
			return nil, aerr
		}
		return &routedExec{
			expr:        cur.Expr,
			streams:     cur.Streams,
			pins:        cur.At,
			topK:        cur.TopK,
			kx:          cur.Kx,
			start:       cur.Start,
			end:         cur.End,
			maxClusters: cur.MaxClusters,
			limit:       req.Limit,
			offset:      cur.Offset,
			mode:        cur.Mode,
			// The token's Form field tells a tracks continuation apart
			// from a ranked one (empty = ranked, for tokens minted before
			// the tracks form existed).
			ranked:  cur.Form != api.FormTracks,
			tracked: cur.Form == api.FormTracks,
			// A cursor minted from a partial answer already froze the
			// healthy stream subset; re-opting in only matters if further
			// shards fail mid-pagination.
			allowPartial: req.AllowPartial,
		}, nil
	}
	if req.Expr == "" {
		return nil, api.Errorf(api.CodeBadRequest, "missing required field: expr")
	}
	if req.TopK < 0 || req.Kx < 0 || req.MaxClusters < 0 || req.Start < 0 || req.End < 0 {
		return nil, api.Errorf(api.CodeBadRequest, "negative query parameter")
	}
	ast, err := plan.Parse(req.Expr)
	if err != nil {
		return nil, api.Errorf(api.CodeBadExpr, "%v", err)
	}
	mode, aerr := api.NormalizeMode(req.Mode, req.TopK)
	if aerr != nil {
		return nil, aerr
	}
	ex := &routedExec{
		expr:         req.Expr,
		streams:      api.NormalizeStreams(req.Streams),
		pins:         req.At,
		topK:         req.TopK,
		kx:           req.Kx,
		start:        req.Start,
		end:          req.End,
		maxClusters:  req.MaxClusters,
		limit:        req.Limit,
		mode:         mode,
		allowPartial: req.AllowPartial,
	}
	if plan.HasTemporal(ast) {
		if mode != "" {
			return nil, api.Errorf(api.CodeBadRequest,
				"mode %q applies to ranked executions only, not temporal (tracks-form) expressions", mode)
		}
		if req.Form != "" && req.Form != api.FormTracks {
			return nil, api.Errorf(api.CodeBadRequest,
				"temporal expressions answer in the %q form; form must be omitted or %q", api.FormTracks, api.FormTracks)
		}
		ex.tracked = true
		return ex, nil
	}
	if req.Form != "" && req.Form != api.FormRanked {
		return nil, api.Errorf(api.CodeBadRequest,
			"form must be omitted or %q (%q is for temporal expressions)", api.FormRanked, api.FormTracks)
	}
	ex.ranked = !plan.IsSingleLeafExpr(ast) || req.TopK != 0 || req.Limit != 0 || req.Form == api.FormRanked
	return ex, nil
}

// routeV1 is the routing core shared by the v1 handler and both legacy
// shims: group the target streams by owning shard, scatter one unpaged v1
// sub-request per shard (each pinned to its slice of the vector, forced
// to the decided form), gather, merge deterministically, then page the
// merged ranking router-side and mint the continuation cursor over the
// merged watermark vector.
func (r *Router) routeV1(ex *routedExec) (*api.QueryResponse, int, *api.Error) {
	groups, missing, aerr := r.groupByShard(ex.streams, ex.allowPartial)
	if aerr != nil {
		return nil, 0, aerr
	}
	// Pins are validated against the full resolved set, missing shards
	// included: a pin on a currently-down stream is a coherent ask (the
	// stream is in the target set), and allow_partial answers without it —
	// naming it in the partial marker — rather than flipping the request
	// into bad_request whenever a shard is out.
	if aerr := validatePins(ex.pins, append(append([]shardGroup(nil), groups...), missing...)); aerr != nil {
		return nil, 0, aerr
	}
	switch {
	case ex.tracked:
		r.trackQueries.Add(1)
	case ex.ranked:
		r.planQueries.Add(1)
		if ex.mode == api.ModeEarlyExit {
			r.earlyExitQueries.Add(1)
		}
	default:
		r.queries.Add(1)
	}

	form := ""
	switch {
	case ex.tracked:
		form = api.FormTracks
	case ex.ranked:
		// Shards must not fall into the frames form for one-leaf exprs the
		// router decided to rank (TopK/Limit/Cursor live router-side).
		form = api.FormRanked
	}
	replies := r.scatter(groups, func(g shardGroup) (*http.Response, error) {
		sub := api.QueryRequest{
			Expr:        ex.expr,
			Streams:     g.streams,
			TopK:        ex.topK, // a shard's top K is a superset of its share of the merged top K
			Kx:          ex.kx,
			Start:       ex.start,
			End:         ex.end,
			MaxClusters: ex.maxClusters,
			At:          subVector(ex.pins, g.streams),
			Form:        form,
			// The decided mode is forced on every shard: a scatter that
			// mixed exact and early-exit sub-answers would merge two
			// different pure functions into one response.
			Mode: ex.mode,
		}
		body, err := json.Marshal(&sub)
		if err != nil {
			return nil, err
		}
		return r.client.Post(g.spec.URL+api.PathQuery, "application/json", bytes.NewReader(body))
	})
	if ex.allowPartial {
		// Keep the 2xx subset; shard failures join the missing set. A 400
		// is the caller's bug — every shard would reject it — so partial
		// tolerance does not absorb it.
		var healthyGroups []shardGroup
		var healthyReplies []shardReply
		for i := range replies {
			rep := &replies[i]
			if rep.err == nil && rep.status >= 200 && rep.status < 300 {
				healthyGroups = append(healthyGroups, groups[i])
				healthyReplies = append(healthyReplies, *rep)
				continue
			}
			if rep.err == nil && rep.status == http.StatusBadRequest {
				return nil, 0, rep.apiError()
			}
			missing = append(missing, groups[i])
		}
		if len(healthyGroups) == 0 {
			return nil, 0, gatherError(replies)
		}
		groups, replies = healthyGroups, healthyReplies
	} else if aerr := gatherError(replies); aerr != nil {
		return nil, 0, aerr
	}
	parts := make([]*api.QueryResponse, len(replies))
	for i := range replies {
		parts[i] = new(api.QueryResponse)
		if err := json.Unmarshal(replies[i].body, parts[i]); err != nil {
			r.upstreamErrs.Add(1)
			e := api.Errorf(api.CodeUnavailable, "shard %q sent a bad %s body: %v", replies[i].shard, api.PathQuery, err)
			e.Shard = replies[i].shard
			return nil, 0, e
		}
	}
	var merged *api.QueryResponse
	var err error
	switch {
	case ex.tracked:
		merged, err = mergeTracks(ex.topK, parts)
	case ex.ranked:
		merged, err = mergeRanked(ex.topK, parts)
	default:
		merged, err = mergeFrames(parts)
	}
	if err != nil {
		r.upstreamErrs.Add(1)
		return nil, 0, api.Errorf(api.CodeUnavailable, "%v", err)
	}
	if len(missing) > 0 {
		// Only reachable with allowPartial (the strict path errored out
		// above). The marker names exactly what the answer lacks; the
		// echoed watermark vector already covers only the answering
		// streams, so verification against a direct execution of the
		// healthy subset still holds bit-exactly.
		sort.Slice(missing, func(i, j int) bool { return missing[i].spec.Name < missing[j].spec.Name })
		pi := &api.PartialInfo{}
		for _, m := range missing {
			pi.MissingShards = append(pi.MissingShards, m.spec.Name)
			pi.MissingStreams = append(pi.MissingStreams, m.streams...)
		}
		sort.Strings(pi.MissingStreams)
		merged.Partial = pi
		r.partials.Add(1)
	}
	if ex.ranked || ex.tracked {
		merged.Mode = ex.mode
		var names []string
		for _, g := range groups {
			names = append(names, g.streams...)
		}
		sort.Strings(names)
		cursor := api.Cursor{
			Expr:        merged.Expr,
			Streams:     names,
			TopK:        ex.topK,
			Kx:          ex.kx,
			Start:       ex.start,
			End:         ex.end,
			MaxClusters: ex.maxClusters,
			At:          merged.Watermarks,
			Mode:        ex.mode,
		}
		pageLen := 0
		if ex.tracked {
			cursor.Form = api.FormTracks
			merged.Tracks = api.PageTracks(merged.Tracks, ex.limit, ex.offset)
			pageLen = len(merged.Tracks)
		} else {
			merged.Items = api.PageItems(merged.Items, ex.limit, ex.offset)
			pageLen = len(merged.Items)
		}
		merged.Cursor = api.ContinuationToken(cursor, ex.limit, ex.offset, pageLen, merged.TotalItems)
	}
	return merged, len(groups), nil
}

// handleV1Query is the router's POST /v1/query.
func (r *Router) handleV1Query(w http.ResponseWriter, req *http.Request) {
	if !r.ready.Load() {
		writeJSON(w, http.StatusServiceUnavailable, api.Envelope{Err: api.Errorf(api.CodeNotReady, "router not ready")})
		return
	}
	if req.Method != http.MethodPost {
		r.clientErrs.Add(1)
		writeJSON(w, http.StatusMethodNotAllowed, api.Envelope{
			Err: api.Errorf(api.CodeBadRequest, "POST a JSON body to %s", api.PathQuery)})
		return
	}
	var qreq api.QueryRequest
	if err := json.NewDecoder(req.Body).Decode(&qreq); err != nil {
		r.writeV1Error(w, api.Errorf(api.CodeBadRequest, "bad %s body: %v", api.PathQuery, err))
		return
	}
	ex, aerr := resolveRouted(&qreq)
	if aerr != nil {
		r.writeV1Error(w, aerr)
		return
	}
	merged, fanout, aerr := r.routeV1(ex)
	if aerr != nil {
		r.writeV1Error(w, aerr)
		return
	}
	setCacheHeader(w, merged.Cached)
	w.Header().Set(fanoutHeader, strconv.Itoa(fanout))
	writeJSON(w, http.StatusOK, merged)
}

// handleLegacyQuery is the router's deprecated GET /query shim.
func (r *Router) handleLegacyQuery(w http.ResponseWriter, req *http.Request) {
	r.legacyReqs.Add(1)
	w.Header().Set(api.DeprecationHeader, "true")
	if !r.ready.Load() {
		writeJSON(w, http.StatusServiceUnavailable, serve.ErrorResponse{Error: "router not ready"})
		return
	}
	args, err := serve.ParseLegacyQueryArgs(req)
	if err != nil {
		r.clientErrs.Add(1)
		writeJSON(w, http.StatusBadRequest, serve.ErrorResponse{Error: err.Error()})
		return
	}
	merged, fanout, aerr := r.routeV1(&routedExec{
		expr:        args.Class,
		streams:     args.Streams,
		pins:        args.At,
		kx:          args.Kx,
		start:       args.Start,
		end:         args.End,
		maxClusters: args.MaxClusters,
	})
	if aerr != nil {
		r.writeLegacyError(w, legacyUnwrapLeafError(aerr))
		return
	}
	setCacheHeader(w, merged.Cached)
	w.Header().Set(fanoutHeader, strconv.Itoa(fanout))
	writeJSON(w, http.StatusOK, serve.LegacyQueryPayload(args.Class, merged))
}

// legacyUnwrapLeafError strips the plan-compile framing ("plan: leaf
// "x": …") off a one-leaf bad_expr error so the legacy /query shim
// reports unknown classes with the library's own text ("focus: unknown
// class …"), exactly as the pre-v1 router did.
func legacyUnwrapLeafError(e *api.Error) *api.Error {
	const prefix = "plan: leaf "
	if e.Code != api.CodeBadExpr || !strings.HasPrefix(e.Message, prefix) {
		return e
	}
	rest := e.Message[len(prefix):]
	if _, inner, ok := strings.Cut(rest, ": "); ok {
		out := *e
		out.Message = inner
		return &out
	}
	return e
}

// handleLegacyPlan is the router's deprecated POST /plan shim.
func (r *Router) handleLegacyPlan(w http.ResponseWriter, req *http.Request) {
	r.legacyReqs.Add(1)
	w.Header().Set(api.DeprecationHeader, "true")
	if !r.ready.Load() {
		writeJSON(w, http.StatusServiceUnavailable, serve.ErrorResponse{Error: "router not ready"})
		return
	}
	if req.Method != http.MethodPost {
		r.clientErrs.Add(1)
		writeJSON(w, http.StatusMethodNotAllowed, serve.ErrorResponse{Error: "POST a JSON body to /plan"})
		return
	}
	var preq serve.PlanRequest
	if err := json.NewDecoder(req.Body).Decode(&preq); err != nil {
		r.clientErrs.Add(1)
		writeJSON(w, http.StatusBadRequest, serve.ErrorResponse{Error: "bad /plan body: " + err.Error()})
		return
	}
	if preq.Expr == "" {
		r.clientErrs.Add(1)
		writeJSON(w, http.StatusBadRequest, serve.ErrorResponse{Error: "missing required field: expr"})
		return
	}
	if preq.TopK < 0 || preq.Kx < 0 || preq.MaxClusters < 0 || preq.Limit < 0 || preq.Offset < 0 ||
		preq.Start < 0 || preq.End < 0 {
		r.clientErrs.Add(1)
		writeJSON(w, http.StatusBadRequest, serve.ErrorResponse{Error: "negative plan parameter"})
		return
	}
	merged, fanout, aerr := r.routeV1(&routedExec{
		expr:        preq.Expr,
		streams:     api.NormalizeStreams(preq.Streams),
		pins:        preq.AtWatermarks,
		topK:        preq.TopK,
		kx:          preq.Kx,
		start:       preq.Start,
		end:         preq.End,
		maxClusters: preq.MaxClusters,
		limit:       preq.Limit,
		offset:      preq.Offset,
		ranked:      true,
	})
	if aerr != nil {
		r.writeLegacyError(w, aerr)
		return
	}
	setCacheHeader(w, merged.Cached)
	w.Header().Set(fanoutHeader, strconv.Itoa(fanout))
	writeJSON(w, http.StatusOK, serve.LegacyPlanPayload(merged))
}

// handleStreams scatters GET /v1/streams to every responsive shard and
// merges the statuses — shard-annotated, sorted by stream name. Unlike the
// query path — where a partial answer would be a wrong answer — this is an
// operator surface: down shards are skipped and named in the
// X-Focus-Partial header so the rest of the cluster stays observable
// during an outage. Served at both /v1/streams and the legacy /streams.
func (r *Router) handleStreams(w http.ResponseWriter, req *http.Request) {
	r.mu.RLock()
	var groups []shardGroup
	for _, name := range r.shardNamesLocked() {
		if sh := r.shards[name]; sh.state != StateDown {
			groups = append(groups, shardGroup{spec: sh.spec})
		}
	}
	owners := make(map[string]streamOwner, len(r.owners))
	for st, o := range r.owners {
		owners[st] = o
	}
	r.mu.RUnlock()
	replies := r.scatter(groups, func(g shardGroup) (*http.Response, error) {
		return r.client.Get(g.spec.URL + api.PathStreams)
	})
	// Non-nil so an all-shards-down cluster serializes as [], not null —
	// clients iterate this array.
	out := []api.StreamStatus{}
	var partial []string
	for i := range replies {
		rep := &replies[i]
		var statuses []api.StreamStatus
		if rep.err != nil || rep.status != http.StatusOK || json.Unmarshal(rep.body, &statuses) != nil {
			partial = append(partial, rep.shard)
			continue
		}
		for _, st := range statuses {
			// Mid-cutover a handoff's source and destination may both
			// report the stream for under a poll round; list only the
			// resolved owner's copy.
			if o, ok := owners[st.Name]; ok && o.shard != rep.shard {
				continue
			}
			st.Shard = rep.shard
			out = append(out, st)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	if len(partial) > 0 {
		sort.Strings(partial)
		w.Header().Set("X-Focus-Partial", strings.Join(partial, ","))
	}
	writeJSON(w, http.StatusOK, out)
}

// ShardStatus is one shard's entry in the router's /stats payload.
type ShardStatus struct {
	Name  string `json:"name"`
	URL   string `json:"url"`
	State string `json:"state"`
	Error string `json:"error,omitempty"`
	// Streams the shard currently owns (last successful discovery).
	Streams []string `json:"streams"`
	// Watermarks are the shard's per-stream ingest watermarks as of the
	// last poll — the router's (slightly stale) view; authoritative values
	// come back on every routed response.
	Watermarks map[string]float64 `json:"watermarks,omitempty"`
	// PlacementOK is false when the shard serves streams the shard map
	// assigns elsewhere (or that another shard also serves).
	PlacementOK bool `json:"placement_ok"`
}

// Stats is the router's /stats payload.
type Stats struct {
	UptimeSec   float64 `json:"uptime_sec"`
	Ready       bool    `json:"ready"`
	Queries     int64   `json:"queries"`
	PlanQueries int64   `json:"plan_queries"`
	// TrackQueries counts temporal (tracks-form) queries.
	TrackQueries int64 `json:"track_queries"`
	// EarlyExitQueries counts ranked queries routed in early-exit mode, a
	// subset of PlanQueries.
	EarlyExitQueries int64 `json:"early_exit_queries"`
	// LegacyRequests counts requests arriving through the deprecated
	// /query and /plan shims.
	LegacyRequests int64 `json:"legacy_requests"`
	ShardRequests  int64 `json:"shard_requests"`
	// ShardRetries counts retried shard sub-requests; PartialResponses
	// counts answers returned degraded under allow_partial.
	ShardRetries     int64 `json:"shard_retries"`
	PartialResponses int64 `json:"partial_responses"`
	Rejected         int64 `json:"rejected"`
	Unavailable      int64 `json:"unavailable"`
	ClientErrors     int64 `json:"client_errors"`
	UpstreamErrors   int64 `json:"upstream_errors"`
	// Subscriptions counts routed standing queries ever accepted;
	// ActiveSubscriptions the ones currently streaming; DeltaEvents the
	// merged delta frames emitted across all of them; SubscriptionDrops
	// the subscriptions shed (drop + shard_lost) after a per-shard leg
	// failed mid-stream.
	Subscriptions       int64 `json:"subscriptions"`
	ActiveSubscriptions int64 `json:"subscriptions_active"`
	DeltaEvents         int64 `json:"delta_events"`
	SubscriptionDrops   int64 `json:"subscription_drops"`
	// Reshards counts /v1/admin/reshard operations accepted; ReshardMoves
	// streams moved by them; ReshardErrors failed stream moves (each one
	// aborted or rolled forward per the handoff protocol — see
	// OPERATIONS.md §"Resharding").
	Reshards      int64         `json:"reshards"`
	ReshardMoves  int64         `json:"reshard_moves"`
	ReshardErrors int64         `json:"reshard_errors"`
	Shards        []ShardStatus `json:"shards"`
}

// Snapshot returns the router's counters and shard view (also served at
// /stats).
func (r *Router) Snapshot() Stats {
	var uptime float64
	if ns := r.startedNS.Load(); ns > 0 {
		uptime = time.Since(time.Unix(0, ns)).Seconds()
	}
	st := Stats{
		UptimeSec:        uptime,
		Ready:            r.ready.Load(),
		Queries:          r.queries.Load(),
		PlanQueries:      r.planQueries.Load(),
		TrackQueries:     r.trackQueries.Load(),
		EarlyExitQueries: r.earlyExitQueries.Load(),
		LegacyRequests:   r.legacyReqs.Load(),
		ShardRequests:    r.shardReqs.Load(),
		ShardRetries:     r.shardRetried.Load(),
		PartialResponses: r.partials.Load(),
		Rejected:         r.rejected.Load(),
		Unavailable:      r.unavailable.Load(),
		ClientErrors:     r.clientErrs.Load(),
		UpstreamErrors:   r.upstreamErrs.Load(),

		Subscriptions:       r.subs.Load(),
		ActiveSubscriptions: r.subsActive.Load(),
		DeltaEvents:         r.subDeltas.Load(),
		SubscriptionDrops:   r.subDrops.Load(),
		Reshards:            r.reshards.Load(),
		ReshardMoves:        r.reshardMoves.Load(),
		ReshardErrors:       r.reshardErrs.Load(),
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, name := range r.shardNamesLocked() {
		sh := r.shards[name]
		ss := ShardStatus{
			Name:        name,
			URL:         sh.spec.URL,
			State:       sh.state,
			Error:       sh.lastErr,
			Streams:     append([]string(nil), sh.streams...),
			PlacementOK: sh.placementOK,
		}
		if len(sh.watermarks) > 0 {
			ss.Watermarks = make(map[string]float64, len(sh.watermarks))
			for k, v := range sh.watermarks {
				ss.Watermarks[k] = v
			}
		}
		st.Shards = append(st.Shards, ss)
	}
	return st
}

func (r *Router) handleStats(w http.ResponseWriter, req *http.Request) {
	writeJSON(w, http.StatusOK, r.Snapshot())
}

// handleHealthz reports the cluster's aggregate health: "ok" when every
// shard is healthy, "degraded" (still 200 — the router can serve queries
// not touching the broken shards) when some are not, 503 when no shard is
// usable at all.
func (r *Router) handleHealthz(w http.ResponseWriter, req *http.Request) {
	if !r.ready.Load() {
		writeJSON(w, http.StatusServiceUnavailable, api.Envelope{Err: api.Errorf(api.CodeNotReady, "router not ready")})
		return
	}
	r.mu.RLock()
	states := make(map[string]string, len(r.shards))
	healthy := 0
	for name, sh := range r.shards {
		states[name] = sh.state
		if sh.state == StateHealthy {
			healthy++
		}
	}
	r.mu.RUnlock()
	status := "ok"
	code := http.StatusOK
	switch {
	case healthy == 0:
		status, code = "unavailable", http.StatusServiceUnavailable
	case healthy < len(states):
		status = "degraded"
	}
	writeJSON(w, code, struct {
		Status string            `json:"status"`
		Shards map[string]string `json:"shards"`
	}{status, states})
}

// validatePins rejects pinned streams outside the resolved target set,
// mirroring the serve layer's resolveVector: a silently dropped pin (a
// typo, a removed stream) would quietly unpin the read. Pins inside the
// set are split per shard by subVector, so every shard's slice passes its
// own check too.
func validatePins(pins api.WatermarkVector, groups []shardGroup) *api.Error {
	if len(pins) == 0 {
		return nil
	}
	resolved := make(map[string]bool)
	for _, g := range groups {
		for _, st := range g.streams {
			resolved[st] = true
		}
	}
	names := make([]string, 0, len(pins))
	for n := range pins {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if !resolved[n] {
			return api.Errorf(api.CodeBadRequest, "pinned stream %q is not among the query's streams", n)
		}
	}
	return nil
}

// subVector returns the pins restricted to the given streams (nil when
// none apply): each shard only ever sees its own slice of a pinned vector.
func subVector(pins api.WatermarkVector, streams []string) api.WatermarkVector {
	var out api.WatermarkVector
	for _, st := range streams {
		if at, ok := pins[st]; ok {
			if out == nil {
				out = make(api.WatermarkVector)
			}
			out[st] = at
		}
	}
	return out
}

// fanoutHeader reports how many shards a routed response was merged from.
const fanoutHeader = "X-Focus-Fanout"

func setCacheHeader(w http.ResponseWriter, cached bool) {
	if cached {
		w.Header().Set("X-Focus-Cache", "hit")
	} else {
		w.Header().Set("X-Focus-Cache", "miss")
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}
