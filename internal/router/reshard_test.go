package router_test

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"focus"
	"focus/api"
	"focus/client"
	"focus/internal/loadgen"
	"focus/internal/reshard"
	"focus/internal/router"
	"focus/internal/serve"
)

// breaker simulates a participant crash at the network level: while down,
// every connection is severed mid-request (the transport error a dead
// process produces), and a "restarted" process is modeled by restoring
// the passthrough. Every test shard is fronted by one.
type breaker struct {
	mu   sync.Mutex
	h    http.Handler
	down bool
}

func (b *breaker) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	b.mu.Lock()
	h, down := b.h, b.down
	b.mu.Unlock()
	if down {
		panic(http.ErrAbortHandler)
	}
	h.ServeHTTP(w, r)
}

func (b *breaker) kill()    { b.mu.Lock(); b.down = true; b.mu.Unlock() }
func (b *breaker) restore() { b.mu.Lock(); b.down = false; b.mu.Unlock() }

// bootEmptyShard boots one shard with zero streams — the elastic-tier
// join fixture: it comes up healthy and empty and receives its share
// through live handoff when a reshard targets it.
func bootEmptyShard(t *testing.T, name string, scfg serve.Config) *testShard {
	t.Helper()
	if scfg.Window.DurationSec <= 0 {
		scfg.Window = focus.GenOptions{DurationSec: 60, SampleEvery: 1}
	}
	if scfg.TuneWindow.DurationSec <= 0 {
		scfg.TuneWindow = focus.GenOptions{DurationSec: 30, SampleEvery: 1}
	}
	scfg.AllowNoStreams = true
	sys, err := focus.New(focusConfig())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sys.Close() })
	srv := serve.New(sys, scfg)
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Stop)
	brk := &breaker{h: srv.Handler()}
	ts := httptest.NewServer(brk)
	t.Cleanup(ts.Close)
	return &testShard{name: name, sys: sys, srv: srv, http: ts, brk: brk}
}

// adminMap builds the wire form of a target shard map from shards + pins.
func adminMap(pins map[string]string, shards ...*testShard) api.AdminShardMap {
	m := api.AdminShardMap{Pins: pins}
	for _, sh := range shards {
		m.Shards = append(m.Shards, api.AdminShardSpec{Name: sh.name, URL: sh.http.URL})
	}
	return m
}

// waitOwner polls the router's discovery view until the named shard owns
// the stream.
func (c *testCluster) waitOwner(stream, shard string) {
	c.t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		for _, ss := range c.rt.Snapshot().Shards {
			if ss.Name != shard {
				continue
			}
			for _, st := range ss.Streams {
				if st == stream {
					return
				}
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	c.t.Fatalf("shard %s never took ownership of %s: %+v", shard, stream, c.rt.Snapshot().Shards)
}

// waitIngestDone polls through the router until the stream's watermark
// reaches wm (background-ingest fixtures settling before assertions).
func (c *testCluster) waitIngestDone(stream string, wm float64) {
	c.t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		qr, err := c.cli.Query(context.Background(), &api.QueryRequest{Expr: "car", Streams: []string{stream}})
		if err == nil && qr.Watermarks[stream] >= wm {
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	c.t.Fatalf("stream %s never reached watermark %.0f", stream, wm)
}

// TestReshardDryRunPlansMoves pins the offline half of the admin surface:
// a dry-run reshard reports exactly the streams whose assignment changes,
// in stream order, and moves nothing.
func TestReshardDryRunPlansMoves(t *testing.T) {
	if testing.Short() {
		t.Skip("boots a 2-shard cluster")
	}
	c := bootTestCluster(t,
		[][]string{{"auburn_c", "jacksonh"}, {"city_a_d"}},
		serve.Config{NoBackgroundIngest: true},
		false)
	c.advance("auburn_c", 10)
	c.advance("jacksonh", 10)
	c.advance("city_a_d", 10)

	target := adminMap(map[string]string{
		"auburn_c": "shard-0", "jacksonh": "shard-1", "city_a_d": "shard-1",
	}, c.shards...)
	resp, err := c.cli.Reshard(context.Background(), target, true)
	if err != nil {
		t.Fatal(err)
	}
	if !resp.DryRun || len(resp.Moves) != 1 {
		t.Fatalf("dry run planned %+v, want exactly the jacksonh move", resp)
	}
	m := resp.Moves[0]
	if m.Stream != "jacksonh" || m.From != "shard-0" || m.To != "shard-1" || m.State != api.MovePlanned {
		t.Fatalf("planned move %+v, want jacksonh shard-0 -> shard-1 planned", m)
	}
	// Nothing moved: the source still owns and serves the stream.
	if _, err := c.cli.Query(context.Background(), &api.QueryRequest{Expr: "car", Streams: []string{"jacksonh"}}); err != nil {
		t.Fatalf("query after dry run: %v", err)
	}
	c.waitOwner("jacksonh", "shard-0")

	// An unreachable target shard fails the health gate with a typed
	// not_ready naming the shard — and rolls the roster merge back.
	bad := target
	bad.Shards = append([]api.AdminShardSpec{}, target.Shards...)
	bad.Shards = append(bad.Shards, api.AdminShardSpec{Name: "shard-x", URL: "http://127.0.0.1:1"})
	if _, err := c.cli.Reshard(context.Background(), bad, false); !api.IsCode(err, api.CodeNotReady) {
		t.Fatalf("reshard toward an unreachable shard: %v, want not_ready", err)
	}
	for _, ss := range c.rt.Snapshot().Shards {
		if ss.Name == "shard-x" {
			t.Fatalf("failed health gate left shard-x in the roster")
		}
	}
}

// trafficLog collects racing-traffic outcomes for the acceptance test: the
// contract is zero untyped errors, only transient typed codes, and every
// successful answer bit-identical to the reference execution.
type trafficLog struct {
	mu       sync.Mutex
	oks      int
	typed    map[api.Code]int
	untyped  []string
	verify   []string
	badTyped []string
}

func (l *trafficLog) record(err error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err == nil {
		l.oks++
		return
	}
	var typed *api.Error
	if !errors.As(err, &typed) {
		l.untyped = append(l.untyped, err.Error())
		return
	}
	switch typed.Code {
	case api.CodeNotReady, api.CodeUnavailable, api.CodeShardDown, api.CodeOverloaded:
		if l.typed == nil {
			l.typed = map[api.Code]int{}
		}
		l.typed[typed.Code]++
	default:
		l.badTyped = append(l.badTyped, typed.Error())
	}
}

func (l *trafficLog) recordVerify(err error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.verify = append(l.verify, err.Error())
}

func (l *trafficLog) assertClean(t *testing.T, what string) {
	t.Helper()
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.oks == 0 {
		t.Errorf("%s: no successful responses sampled", what)
	}
	for _, e := range l.untyped {
		t.Errorf("%s: untyped client-visible error during cutover: %s", what, e)
	}
	for _, e := range l.badTyped {
		t.Errorf("%s: unexpected typed error during cutover: %s", what, e)
	}
	for _, e := range l.verify {
		t.Errorf("%s: answer diverges from the reference execution: %s", what, e)
	}
	t.Logf("%s: %d verified answers, transient typed errors: %v", what, l.oks, l.typed)
}

// TestReshardBitIdenticalUnderLiveTraffic is the acceptance pin for the
// elastic shard tier: a live 2→3 shard-map transition followed by a 3→2
// one, under racing ingest + query + subscription traffic, with every
// sampled answer bit-identical to a reference single node holding all
// streams and zero untyped client-visible errors throughout.
func TestReshardBitIdenticalUnderLiveTraffic(t *testing.T) {
	if testing.Short() {
		t.Skip("boots a 3-shard cluster plus a reference system under live traffic")
	}
	scfg := serve.Config{ChunkSec: 2, IngestInterval: 250 * time.Millisecond}
	c := bootTestCluster(t,
		[][]string{{"auburn_c", "jacksonh"}, {"city_a_d"}},
		scfg, true)
	joined := bootEmptyShard(t, "shard-2", scfg)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	frames, ranked := &trafficLog{}, &trafficLog{}
	verify := loadgen.NewDirectVerifier(c.ref)
	verifyPlan := loadgen.NewDirectPlanVerifier(c.ref)

	// Racing queries: one worker on the frames form, one on the ranked
	// form, both verifying every successful answer against the reference.
	wg.Add(2)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			qr, err := c.cli.Query(ctx, &api.QueryRequest{Expr: "car"})
			frames.record(err)
			if err == nil {
				if verr := verify(qr); verr != nil {
					frames.recordVerify(verr)
				}
			}
			time.Sleep(40 * time.Millisecond)
		}
	}()
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			qr, err := c.cli.Query(ctx, &api.QueryRequest{Expr: "car & person", TopK: 5})
			ranked.record(err)
			if err == nil {
				if verr := verifyPlan(qr); verr != nil {
					ranked.recordVerify(verr)
				}
			}
			time.Sleep(40 * time.Millisecond)
		}
	}()

	// Racing subscription on the stream that moves, with enough retry
	// budget to ride the cutovers; the Subscriber itself verifies the
	// delta sequence stays contiguous across every transparent resume.
	subCli := client.New(c.http.URL, client.WithRetries(10, 50*time.Millisecond))
	sub, err := subCli.Subscribe(ctx, &api.SubscribeRequest{Expr: "car", Streams: []string{"jacksonh"}})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	var subDeltas int
	var subErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			if _, err := sub.Recv(); err != nil {
				select {
				case <-stop: // deliberate teardown below
				default:
					if err != io.EOF {
						subErr = err
					}
				}
				return
			}
			subDeltas++
		}
	}()

	// 2→3: shard-2 joins and takes jacksonh, live.
	grow := adminMap(map[string]string{
		"auburn_c": "shard-0", "jacksonh": "shard-2", "city_a_d": "shard-1",
	}, c.shards[0], c.shards[1], joined)
	resp, err := c.cli.Reshard(ctx, grow, false)
	if err != nil {
		t.Fatalf("2→3 reshard: %v", err)
	}
	if resp.Failed != 0 || resp.Moved != 1 || len(resp.Moves) != 1 {
		t.Fatalf("2→3 reshard outcome %+v, want one completed move", resp)
	}
	if m := resp.Moves[0]; m.Stream != "jacksonh" || m.State != api.MoveDone || m.Epoch != 1 {
		t.Fatalf("2→3 move %+v, want jacksonh done at epoch 1", m)
	}
	c.waitOwner("jacksonh", "shard-2")

	time.Sleep(1 * time.Second) // traffic against the 3-shard layout

	// 3→2: shard-2 drains its share back and leaves the roster.
	shrink := adminMap(map[string]string{
		"auburn_c": "shard-0", "jacksonh": "shard-0", "city_a_d": "shard-1",
	}, c.shards[0], c.shards[1])
	resp, err = c.cli.Reshard(ctx, shrink, false)
	if err != nil {
		t.Fatalf("3→2 reshard: %v", err)
	}
	if resp.Failed != 0 || resp.Moved != 1 {
		t.Fatalf("3→2 reshard outcome %+v, want one completed move", resp)
	}
	if m := resp.Moves[0]; m.Stream != "jacksonh" || m.State != api.MoveDone || m.Epoch != 2 {
		t.Fatalf("3→2 move %+v, want jacksonh done at epoch 2", m)
	}
	c.waitOwner("jacksonh", "shard-0")
	for _, ss := range c.rt.Snapshot().Shards {
		if ss.Name == "shard-2" {
			t.Fatalf("departed shard-2 still in the roster: %+v", ss)
		}
	}

	time.Sleep(1 * time.Second) // traffic against the restored 2-shard layout
	close(stop)
	sub.Close()
	cancel()
	wg.Wait()

	frames.assertClean(t, "frames queries")
	ranked.assertClean(t, "ranked queries")
	if subErr != nil {
		t.Errorf("subscription broke across the cutovers: %v", subErr)
	}
	if subDeltas == 0 {
		t.Error("subscription delivered no deltas under live ingest")
	}
	if sub.Reconnects() == 0 {
		t.Error("subscription rode zero reconnects across two moves of its stream")
	}
	t.Logf("subscription: %d deltas, %d transparent reconnects", subDeltas, sub.Reconnects())

	// The moved stream's answers stay pinned-replay bit-identical at rest.
	qr, err := client.New(c.http.URL).Query(context.Background(), &api.QueryRequest{Expr: "car", Streams: []string{"jacksonh"}})
	if err != nil {
		t.Fatal(err)
	}
	if err := verify(qr); err != nil {
		t.Errorf("post-reshard answer diverges from reference: %v", err)
	}
	st := c.rt.Snapshot()
	if st.ReshardMoves < 2 || st.Reshards < 2 {
		t.Errorf("reshard counters %d ops / %d moves, want ≥2 each", st.Reshards, st.ReshardMoves)
	}
}

// TestReshardCrashMatrix kills the source or the destination at each
// protocol step of a live handoff and asserts the crash-safety contract:
// the stream ends up owned by exactly one shard, every client-visible
// error during the disruption is typed, and once the dead participant
// heals the stream's answers are pinned-replay bit-identical to the
// reference execution.
func TestReshardCrashMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("boots a 3-shard cluster plus a reference system")
	}
	// Short handoff TTL: half-done state (a sealed source, an unactivated
	// import) must self-heal fast enough to observe. Full-speed background
	// ingest: the matrix runs against quiescent finished streams so every
	// scenario sees identical watermarks.
	scfg := serve.Config{HandoffTTL: 500 * time.Millisecond}
	c := bootTestCluster(t,
		[][]string{{"auburn_c", "jacksonh"}, {"city_a_d"}},
		scfg, true)
	joined := bootEmptyShard(t, "shard-2", scfg)
	for _, st := range c.streams {
		c.waitIngestDone(st, 60)
	}

	// Every test shard is fronted by a breaker (the harness wires one in);
	// the matrix severs the source's or the destination's.
	srcBrk, dstBrk := c.shards[0].brk, joined.brk
	target := adminMap(map[string]string{
		"auburn_c": "shard-0", "jacksonh": "shard-2", "city_a_d": "shard-1",
	}, c.shards[0], c.shards[1], joined)

	verify := loadgen.NewDirectVerifier(c.ref)
	ctx := context.Background()
	// healSource waits out the source's recovery: breaker restored, the
	// router's probation passed, and any sealed state TTL-resumed.
	healSource := func() {
		t.Helper()
		srcBrk.restore()
		c.waitShardState("shard-0", router.StateHealthy)
		deadline := time.Now().Add(5 * time.Second)
		for c.shards[0].srv.Sealed("jacksonh") {
			if time.Now().After(deadline) {
				t.Fatal("sealed source never TTL-resumed")
			}
			time.Sleep(25 * time.Millisecond)
		}
	}
	assertOwnedBySource := func(step reshard.Step) {
		t.Helper()
		c.waitOwner("jacksonh", "shard-0")
		qr, err := c.cli.Query(ctx, &api.QueryRequest{Expr: "car", Streams: []string{"jacksonh"}})
		if err != nil {
			t.Fatalf("kill at %s: query after recovery: %v", step, err)
		}
		if err := verify(qr); err != nil {
			t.Errorf("kill at %s: recovered answer diverges from reference: %v", step, err)
		}
	}

	matrix := []struct {
		step reshard.Step
		brk  *breaker
		who  string
	}{
		{reshard.StepSeal, srcBrk, "source"},
		{reshard.StepExport, srcBrk, "source"},
		{reshard.StepImport, dstBrk, "destination"},
		{reshard.StepActivate, dstBrk, "destination"},
	}
	for _, m := range matrix {
		t.Logf("killing %s before %s", m.who, m.step)
		c.rt.SetReshardOnStep(func(mv reshard.Move, step reshard.Step) error {
			if step == m.step {
				m.brk.kill()
			}
			return nil
		})
		resp, err := c.cli.Reshard(ctx, target, false)
		if err != nil {
			t.Fatalf("kill at %s: reshard request itself failed: %v", m.step, err)
		}
		if resp.Failed != 1 || resp.Moved != 0 {
			t.Fatalf("kill at %s: outcome %+v, want the move aborted", m.step, resp)
		}
		if mv := resp.Moves[0]; mv.State != api.MoveFailed || !strings.Contains(mv.Error, string(m.step)) {
			t.Fatalf("kill at %s: move %+v, want failure at that step", m.step, mv)
		}
		// While the participant is dead, the stream must answer with typed
		// errors only — owned by the (possibly unreachable) source, never
		// half-owned by the destination.
		if _, err := c.cli.Query(ctx, &api.QueryRequest{Expr: "car", Streams: []string{"jacksonh"}}); err != nil {
			var typed *api.Error
			if !errors.As(err, &typed) {
				t.Fatalf("kill at %s: untyped error during disruption: %v", m.step, err)
			}
		}
		m.brk.restore()
		healSource()
		c.waitShardState("shard-2", router.StateHealthy)
		// A dest that crashed holding an unactivated import must TTL-
		// discard it (never cold-start into serving); wait it out so the
		// next scenario starts from a clean destination.
		discardDeadline := time.Now().Add(5 * time.Second)
		for joined.sys.Session("jacksonh") != nil {
			if time.Now().After(discardDeadline) {
				t.Fatalf("kill at %s: destination never discarded its unactivated import", m.step)
			}
			time.Sleep(25 * time.Millisecond)
		}
		assertOwnedBySource(m.step)
	}

	// Post-flip crash: the source dies before release. The cutover already
	// committed, so the protocol rolls forward — the destination owns and
	// serves the stream, and the dead source's stale claim loses to the
	// destination's higher ownership epoch when it comes back.
	c.rt.SetReshardOnStep(func(mv reshard.Move, step reshard.Step) error {
		if step == reshard.StepRelease {
			srcBrk.kill()
		}
		return nil
	})
	resp, err := c.cli.Reshard(ctx, target, false)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Failed != 0 || resp.Moved != 1 {
		t.Fatalf("kill at release: outcome %+v, want roll-forward to done", resp)
	}
	c.waitOwner("jacksonh", "shard-2")
	qr, err := c.cli.Query(ctx, &api.QueryRequest{Expr: "car", Streams: []string{"jacksonh"}})
	if err != nil {
		t.Fatalf("query against the destination after roll-forward: %v", err)
	}
	if err := verify(qr); err != nil {
		t.Errorf("destination answer diverges from reference: %v", err)
	}

	// The source heals still holding its pre-move copy (its release never
	// ran). Both shards now report the stream; the router must resolve the
	// duplicate by ownership epoch — the destination's import (epoch 1)
	// beats the source's never-moved copy (epoch 0) — and keep routing to
	// the destination with bit-identical answers.
	srcBrk.restore()
	c.waitShardState("shard-0", router.StateHealthy)
	time.Sleep(300 * time.Millisecond) // a few discovery rounds with both claims live
	c.waitOwner("jacksonh", "shard-2")
	qr, err = c.cli.Query(ctx, &api.QueryRequest{Expr: "car", Streams: []string{"jacksonh"}})
	if err != nil {
		t.Fatal(err)
	}
	if err := verify(qr); err != nil {
		t.Errorf("epoch-resolved answer diverges from reference: %v", err)
	}
}
