package router

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"focus/api"
)

// fakeShard is a scriptable backend for poller tests: /healthz flips
// between ok and 500 via the up flag, /v1/streams always reports the
// shard's streams. No focus.System behind it — these tests exercise the
// router's state machine, not query execution.
type fakeShard struct {
	name    string
	streams []string
	up      atomic.Bool
	http    *httptest.Server
}

func newFakeShard(t *testing.T, name string, streams ...string) *fakeShard {
	t.Helper()
	f := &fakeShard{name: name, streams: streams}
	f.up.Store(true)
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		if !f.up.Load() {
			w.WriteHeader(http.StatusInternalServerError)
			return
		}
		fmt.Fprintln(w, `{"status":"ok"}`)
	})
	mux.HandleFunc(api.PathStreams, func(w http.ResponseWriter, r *http.Request) {
		var out []api.StreamStatus
		for _, st := range f.streams {
			out = append(out, api.StreamStatus{Name: st, Watermark: 10})
		}
		_ = json.NewEncoder(w).Encode(out)
	})
	f.http = httptest.NewServer(mux)
	t.Cleanup(f.http.Close)
	return f
}

func probationRouter(t *testing.T, polls int, shards ...*fakeShard) *Router {
	t.Helper()
	smap := &ShardMap{Pins: map[string]string{}}
	for _, f := range shards {
		smap.Shards = append(smap.Shards, ShardSpec{Name: f.name, URL: f.http.URL})
		for _, st := range f.streams {
			smap.Pins[st] = f.name
		}
	}
	r, err := New(Config{Map: smap, ProbationPolls: polls, Timeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func (r *Router) stateOf(name string) string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.shards[name].state
}

// TestFlappingShardProbation drives the poller's state machine by hand: a
// recovered shard must string together ProbationPolls consecutive healthy
// polls before it is routed to again, so a flapping shard (up one poll,
// down the next) never re-enters rotation — and its stream ownership stays
// sticky the whole time.
func TestFlappingShardProbation(t *testing.T) {
	a := newFakeShard(t, "shard-a", "left")
	b := newFakeShard(t, "shard-b", "right")
	r := probationRouter(t, 3, a, b)

	// First-ever poll: healthy shards readmit directly (no probation at
	// boot — Start's discovery must be able to succeed).
	r.refresh()
	if got := r.stateOf("shard-b"); got != StateHealthy {
		t.Fatalf("first healthy poll left shard-b %q, want healthy", got)
	}

	// Outage: down on the next poll, ownership sticky.
	b.up.Store(false)
	r.refresh()
	if got := r.stateOf("shard-b"); got != StateDown {
		t.Fatalf("down shard reads %q, want down", got)
	}
	if _, _, aerr := r.groupByShard([]string{"right"}, false); !api.IsCode(aerr, api.CodeShardDown) {
		t.Fatalf("query for a down shard's stream: %v, want shard_down (sticky ownership)", aerr)
	}

	// Recovery: each healthy poll advances probation; routing stays closed
	// until the streak completes.
	b.up.Store(true)
	for i := 1; i <= 2; i++ {
		r.refresh()
		if got := r.stateOf("shard-b"); got != StateProbation {
			t.Fatalf("after %d healthy polls shard-b reads %q, want probation", i, got)
		}
		if _, _, aerr := r.groupByShard([]string{"right"}, false); !api.IsCode(aerr, api.CodeShardDown) {
			t.Fatalf("probation shard routed after %d polls: %v, want shard_down", i, aerr)
		}
	}
	r.refresh()
	if got := r.stateOf("shard-b"); got != StateHealthy {
		t.Fatalf("after 3 consecutive healthy polls shard-b reads %q, want healthy", got)
	}
	if _, _, aerr := r.groupByShard([]string{"right"}, false); aerr != nil {
		t.Fatalf("readmitted shard still unroutable: %v", aerr)
	}

	// Flapping: up one poll, down the next. The streak resets on every
	// down observation, so the shard must never reach healthy.
	for round := 0; round < 4; round++ {
		b.up.Store(false)
		r.refresh()
		if got := r.stateOf("shard-b"); got != StateDown {
			t.Fatalf("flap round %d: down poll reads %q", round, got)
		}
		b.up.Store(true)
		r.refresh()
		if got := r.stateOf("shard-b"); got != StateProbation {
			t.Fatalf("flap round %d: single healthy poll reads %q, want probation", round, got)
		}
	}

	// The healthy shard never budged through any of this: no thrash.
	if got := r.stateOf("shard-a"); got != StateHealthy {
		t.Fatalf("uninvolved shard-a reads %q, want healthy", got)
	}

	// allow_partial during probation: the probation shard's streams are
	// reported missing, the healthy shard's group survives.
	groups, missing, aerr := r.groupByShard(nil, true)
	if aerr != nil {
		t.Fatal(aerr)
	}
	if len(groups) != 1 || groups[0].spec.Name != "shard-a" {
		t.Fatalf("partial groups = %+v, want only shard-a", groups)
	}
	if len(missing) != 1 || missing[0].spec.Name != "shard-b" || missing[0].streams[0] != "right" {
		t.Fatalf("partial missing = %+v, want shard-b owning right", missing)
	}
	// …but with every owning shard unroutable, allow_partial still fails.
	if _, _, aerr := r.groupByShard([]string{"right"}, true); !api.IsCode(aerr, api.CodeShardDown) {
		t.Fatalf("allow_partial with no routable shard: %v, want shard_down", aerr)
	}
}

// TestCallShardRetriesTransientFailures pins the sub-request retry policy:
// transport errors and typed unavailable/overloaded replies are retried
// (honoring Retry-After), deterministic failures are not.
func TestCallShardRetriesTransientFailures(t *testing.T) {
	r, err := New(Config{
		Map:          &ShardMap{Shards: []ShardSpec{{Name: "s", URL: "http://unused"}}},
		ShardRetries: 3,
		ShardBackoff: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	g := shardGroup{spec: ShardSpec{Name: "s"}}

	reply := func(status int, code api.Code, retryAfter string) *http.Response {
		rec := httptest.NewRecorder()
		if retryAfter != "" {
			rec.Header().Set("Retry-After", retryAfter)
		}
		rec.WriteHeader(status)
		_ = json.NewEncoder(rec).Encode(api.Envelope{Err: api.Errorf(code, "injected")})
		return rec.Result()
	}

	// Transport errors retry until the budget runs out.
	calls := 0
	var rep shardReply
	r.callShard(g, func(shardGroup) (*http.Response, error) {
		calls++
		return nil, fmt.Errorf("connection refused")
	}, &rep)
	if calls != 4 || rep.err == nil {
		t.Fatalf("transport error: %d calls (want 4 = 1+3 retries), err %v", calls, rep.err)
	}

	// Typed unavailable heals on the third attempt.
	calls = 0
	r.callShard(g, func(shardGroup) (*http.Response, error) {
		calls++
		if calls < 3 {
			return reply(http.StatusServiceUnavailable, api.CodeUnavailable, ""), nil
		}
		return reply(http.StatusOK, "", ""), nil
	}, &rep)
	if calls != 3 || rep.err != nil || rep.status != http.StatusOK {
		t.Fatalf("unavailable retry: %d calls, status %d, err %v", calls, rep.status, rep.err)
	}

	// Overloaded with Retry-After: 0 retries promptly and succeeds.
	calls = 0
	start := time.Now()
	r.callShard(g, func(shardGroup) (*http.Response, error) {
		calls++
		if calls == 1 {
			return reply(http.StatusTooManyRequests, api.CodeOverloaded, "0"), nil
		}
		return reply(http.StatusOK, "", ""), nil
	}, &rep)
	if calls != 2 || rep.status != http.StatusOK {
		t.Fatalf("overloaded retry: %d calls, status %d", calls, rep.status)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("Retry-After 0 ignored: took %v", elapsed)
	}

	// Draining is deliberate, not transient: no retry.
	calls = 0
	r.callShard(g, func(shardGroup) (*http.Response, error) {
		calls++
		return reply(http.StatusServiceUnavailable, api.CodeDraining, ""), nil
	}, &rep)
	if calls != 1 {
		t.Fatalf("draining was retried: %d calls, want 1", calls)
	}

	// Client errors are final too.
	calls = 0
	r.callShard(g, func(shardGroup) (*http.Response, error) {
		calls++
		return reply(http.StatusBadRequest, api.CodeBadRequest, ""), nil
	}, &rep)
	if calls != 1 {
		t.Fatalf("bad_request was retried: %d calls, want 1", calls)
	}
	if r.shardRetried.Load() == 0 {
		t.Error("shard_retries counter never moved")
	}
}
