package router

import (
	"reflect"
	"testing"

	"focus/api"
	"focus/internal/plan"
	"focus/internal/simrand"
	"focus/internal/video"
)

func TestMergeFramesAggregates(t *testing.T) {
	parts := []*api.QueryResponse{
		{Form: api.FormFrames, Streams: map[string]*api.StreamResult{
			"b": {Frames: []int64{4, 5}, GPUTimeMS: 2.5, LatencyMS: 9},
			"c": {Frames: []int64{6}, GPUTimeMS: 1.25, LatencyMS: 3},
		}, Watermarks: api.WatermarkVector{"b": 30, "c": 30}, Cached: true},
		{Form: api.FormFrames, Streams: map[string]*api.StreamResult{
			"a": {Frames: []int64{1, 2, 3}, GPUTimeMS: 0.5, LatencyMS: 7},
		}, Watermarks: api.WatermarkVector{"a": 30}, Cached: false},
	}
	out, err := mergeFrames(parts)
	if err != nil {
		t.Fatal(err)
	}
	if out.TotalFrames != 6 {
		t.Fatalf("TotalFrames = %d, want 6", out.TotalFrames)
	}
	// Sum order mirrors a direct query: sorted stream names, not shard
	// arrival order.
	if want := 0.5 + 2.5 + 1.25; out.GPUTimeMS != want {
		t.Fatalf("GPUTimeMS = %g, want %g", out.GPUTimeMS, want)
	}
	if out.LatencyMS != 9 {
		t.Fatalf("LatencyMS = %g, want max 9", out.LatencyMS)
	}
	if out.Cached {
		t.Fatal("merged response claims cached although one shard missed")
	}
	if len(out.Streams) != 3 || len(out.Watermarks) != 3 {
		t.Fatalf("merged %d streams / %d watermarks, want 3/3", len(out.Streams), len(out.Watermarks))
	}
}

func TestMergeFramesRejectsDuplicateStream(t *testing.T) {
	parts := []*api.QueryResponse{
		{Form: api.FormFrames, Streams: map[string]*api.StreamResult{"a": {}}},
		{Form: api.FormFrames, Streams: map[string]*api.StreamResult{"a": {}}},
	}
	if _, err := mergeFrames(parts); err == nil {
		t.Fatal("expected an error for a stream answered by two shards")
	}
}

func TestMergeRejectsMixedForms(t *testing.T) {
	if _, err := mergeFrames([]*api.QueryResponse{{Form: api.FormRanked}}); err == nil {
		t.Fatal("mergeFrames accepted a ranked part")
	}
	if _, err := mergeRanked(0, []*api.QueryResponse{{Form: api.FormFrames}}); err == nil {
		t.Fatal("mergeRanked accepted a frames part")
	}
}

// itemRanksBefore must agree with plan.RankBefore on every pair — the
// router's merge order IS the single-node emission order.
func TestItemOrderMatchesPlanRankBefore(t *testing.T) {
	src := simrand.New(7).DeriveN(0, "merge-order")
	items := make([]api.Item, 200)
	for i := range items {
		items[i] = api.Item{
			Stream: []string{"a", "b", "c"}[src.Intn(3)],
			Frame:  int64(src.Intn(50)),
			// Coarse scores force plenty of ties through the stream/frame
			// tie-breakers.
			Score: float64(src.Intn(4)),
		}
	}
	for i := range items {
		for j := range items {
			a, b := items[i], items[j]
			pa := plan.Item{Stream: a.Stream, Frame: video.FrameID(a.Frame), Score: a.Score}
			pb := plan.Item{Stream: b.Stream, Frame: video.FrameID(b.Frame), Score: b.Score}
			if itemRanksBefore(a, b) != plan.RankBefore(pa, pb) {
				t.Fatalf("order disagreement for %+v vs %+v", a, b)
			}
		}
	}
}

func TestMergeRankedTopKAndOrder(t *testing.T) {
	parts := []*api.QueryResponse{
		{
			Form: api.FormRanked,
			Expr: "(car&person)",
			Items: []api.Item{
				{Stream: "a", Frame: 1, Score: 5},
				{Stream: "a", Frame: 9, Score: 2},
			},
			TotalItems:   2,
			Watermarks:   api.WatermarkVector{"a": 30},
			GTInferences: 4, GPUTimeMS: 2, LatencyMS: 10,
			Cached: true,
		},
		{
			Form: api.FormRanked,
			Expr: "(car&person)",
			Items: []api.Item{
				{Stream: "b", Frame: 2, Score: 7},
				{Stream: "b", Frame: 3, Score: 2},
			},
			TotalItems:   2,
			Watermarks:   api.WatermarkVector{"b": 25},
			GTInferences: 6, GPUTimeMS: 3, LatencyMS: 8,
			Cached: true,
		},
	}
	out, err := mergeRanked(3, parts)
	if err != nil {
		t.Fatal(err)
	}
	want := []api.Item{
		{Stream: "b", Frame: 2, Score: 7},
		{Stream: "a", Frame: 1, Score: 5},
		// Score tie at 2: stream "a" ranks before "b".
		{Stream: "a", Frame: 9, Score: 2},
	}
	if !reflect.DeepEqual(out.Items, want) {
		t.Fatalf("merged items %+v, want %+v", out.Items, want)
	}
	if out.TotalItems != 3 {
		t.Fatalf("TotalItems = %d, want 3 (TopK)", out.TotalItems)
	}
	if out.GTInferences != 10 || out.GPUTimeMS != 5 || out.LatencyMS != 10 {
		t.Fatalf("cost merge wrong: %+v", out)
	}
	if !out.Cached {
		t.Fatal("all shards cached; merged response should be cached")
	}
	if out.Watermarks["a"] != 30 || out.Watermarks["b"] != 25 {
		t.Fatalf("watermark union wrong: %v", out.Watermarks)
	}
}

func TestMergeRankedFailsLoudly(t *testing.T) {
	if _, err := mergeRanked(0, []*api.QueryResponse{
		{Form: api.FormRanked, Expr: "car"}, {Form: api.FormRanked, Expr: "(car&person)"},
	}); err == nil {
		t.Fatal("expected an error for disagreeing canonical forms")
	}
	if _, err := mergeRanked(0, []*api.QueryResponse{
		{Form: api.FormRanked, Expr: "car", Items: []api.Item{{Stream: "a"}}, TotalItems: 5},
	}); err == nil {
		t.Fatal("expected an error for a paged shard response")
	}
	if _, err := mergeRanked(0, []*api.QueryResponse{
		{Form: api.FormRanked, Expr: "car", Watermarks: api.WatermarkVector{"a": 1}},
		{Form: api.FormRanked, Expr: "car", Watermarks: api.WatermarkVector{"a": 2}},
	}); err == nil {
		t.Fatal("expected an error for overlapping stream ownership")
	}
}
